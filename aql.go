// Package aql is a query language for multidimensional arrays: a complete
// Go implementation of AQL and its core calculus NRCA from Libkin, Machlin
// and Wong, "A Query Language for Multidimensional Arrays: Design,
// Implementation, and Optimization Techniques" (SIGMOD 1996).
//
// AQL treats arrays as functions from rectangular index sets to values
// rather than as collection types. Three array constructs — tabulation,
// subscripting and dimension extraction — together with nested relational
// calculus, arithmetic and summation express subslabs, regridding, zip,
// transpose, matrix product and the other array operations of scientific
// data management; the equational theory of the calculus powers a rewriting
// optimizer whose array rules (β^p, η^p, δ^p) avoid materializing
// intermediate arrays.
//
// # Quick start
//
//	s, err := aql.NewSession()
//	if err != nil { ... }
//	v, typ, err := s.Query(`{d | \d <- gen!30, d % 7 = 0}`)
//	fmt.Println(typ, v)   // {nat} {0, 7, 14, 21, 28}
//
// A Session is the paper's open top-level environment: external primitives,
// data readers/writers, macros, vals and optimizer rules can all be
// registered at runtime. The NetCDF classic-format driver ships in
// (readers NETCDF, NETCDF1..NETCDF4), as does a reader/writer for the
// complex-object data exchange format (EXCHANGE).
package aql

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/coord"
	"github.com/aqldb/aql/internal/env"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/opt"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/trace"
	"github.com/aqldb/aql/internal/typecheck"
	"github.com/aqldb/aql/internal/types"
)

// Value is a runtime complex object: a boolean, natural, real, string,
// tuple, set, bag, multidimensional array, or the error value ⊥.
type Value = object.Value

// Type is an AQL object type, e.g. [[real]]_3 or {nat * string}.
type Type = types.Type

// Expr is a compiled core-calculus query.
type Expr = ast.Expr

// Result is the outcome of one top-level statement executed by Exec.
type Result = repl.Result

// Reader inputs a complex object given a parameter object; register one
// with RegisterReader to make `readval X using NAME at e` work.
type Reader = env.Reader

// Writer outputs a complex object; the counterpart for `writeval`.
type Writer = env.Writer

// Rule is an optimizer rewrite rule; register with AddRule.
type Rule = opt.Rule

// Limits bounds the resources one query may consume: evaluator steps,
// collection/array cells, recursion depth, and wall-clock time. The zero
// value is unlimited. Install with Session.SetLimits.
type Limits = eval.Limits

// ResourceError is the structured error returned when a query exceeds a
// resource budget, times out, or is cancelled; its Kind field
// distinguishes steps, cells, depth, timeout and cancelled. Unwrap with
// errors.As.
type ResourceError = eval.ResourceError

// ResourceKind names the budget a ResourceError reports against.
type ResourceKind = eval.ResourceKind

// The possible ResourceError kinds.
const (
	ResourceSteps     = eval.ResourceSteps
	ResourceCells     = eval.ResourceCells
	ResourceDepth     = eval.ResourceDepth
	ResourceTimeout   = eval.ResourceTimeout
	ResourceCancelled = eval.ResourceCancelled
)

// PanicError is the error returned when an internal panic was recovered at
// the session boundary; it carries the query source and a stack trace.
type PanicError = repl.PanicError

// QueryReport is the per-query observability record: phase wall times,
// evaluator work counters, NetCDF I/O counters, and the optimizer rule
// trace. Obtain the most recent one with Session.LastReport.
type QueryReport = trace.QueryReport

// TraceTotals is the session-cumulative observability counters.
type TraceTotals = trace.Totals

// TraceSink receives finished QueryReports; install with
// Session.SetTraceSink. NewSlogSink and NewJSONSink construct the two
// standard sinks.
type TraceSink = trace.Sink

// NewSlogSink returns a sink that logs one structured record per query via
// log/slog.
func NewSlogSink(l *slog.Logger) TraceSink { return trace.NewSlogSink(l) }

// NewJSONSink returns a sink that writes one JSON object per line per
// finished query.
func NewJSONSink(w io.Writer) TraceSink { return trace.NewJSONSink(w) }

// Session is a live AQL environment: the top-level read-eval-print state
// of section 4 of the paper.
//
// # Concurrency
//
// A Session's query methods (Query, Exec, Eval, ...) are sequential: each
// runs the pipeline against the session's single trace recorder and binds
// `it`, so interleaving them from multiple goroutines is not supported.
// The layers underneath are safe to share, and that is the audited
// contract the query server (cmd/aqld) builds on: the environment is
// mutex-guarded with a monotone epoch (EnvEpoch) bumped on every mutation,
// the optimizer's statistics are lock-protected with per-call trace hooks,
// and a compiled program keeps all run-time state (counters, budgets,
// cancellation, recursion depth) on a per-execution machine, so one
// prepared plan can serve many concurrent executions — verified under
// -race by the internal/compile and internal/server suites. To serve one
// environment to many clients, run aqld (or internal/server) rather than
// sharing a Session.
type Session struct {
	s *repl.Session
}

// NewSession returns a session with the standard environment: the derived
// primitives (min, max, member, count, not), the standard external
// primitives (heatindex, sunset, scalar math), the standard macros of
// section 3 (dom, rng, subseq, zip, zip_3, reverse, evenpos, transpose,
// proj_col, ...), the NetCDF and EXCHANGE drivers, and the three-phase
// optimizer of section 5.
func NewSession() (*Session, error) {
	s, err := repl.New()
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Query compiles, optimizes and evaluates a single AQL expression,
// returning its value and type.
func (s *Session) Query(src string) (Value, *Type, error) {
	return s.s.Query(src)
}

// QueryCtx is Query under a context: cancelling ctx (or exceeding its
// deadline) interrupts the evaluation itself, returning a *ResourceError.
func (s *Session) QueryCtx(ctx context.Context, src string) (Value, *Type, error) {
	return s.s.QueryCtx(ctx, src)
}

// Exec runs a sequence of top-level statements (`val`, `macro`, `readval`,
// `writeval`, and bare queries), each terminated by a semicolon.
func (s *Session) Exec(src string) ([]Result, error) {
	return s.s.Exec(src)
}

// ExecCtx is Exec under a context; a cancelled statement aborts the
// sequence, returning the results completed so far.
func (s *Session) ExecCtx(ctx context.Context, src string) ([]Result, error) {
	return s.s.ExecCtx(ctx, src)
}

// EvalCtx evaluates a compiled query under a context.
func (s *Session) EvalCtx(ctx context.Context, e Expr) (Value, error) {
	return s.s.EvalCtx(ctx, e)
}

// Compile runs the front half of the pipeline — parse, desugar (figure 2),
// macro substitution, typecheck — without optimizing or evaluating.
func (s *Session) Compile(src string) (Expr, *Type, error) {
	return s.s.Compile(src)
}

// Optimize rewrites a compiled query through the session's optimizer
// phases.
func (s *Session) Optimize(e Expr) Expr { return s.s.Optimize(e) }

// Eval evaluates a compiled query.
func (s *Session) Eval(e Expr) (Value, error) { return s.s.Eval(e) }

// SetOptimizerEnabled toggles the optimizer for subsequent queries; the
// benchmark harness uses this to isolate the optimizer's effect.
func (s *Session) SetOptimizerEnabled(on bool) { s.s.SkipOptimizer = !on }

// LastSteps reports the evaluator step count of the most recent query —
// a machine-independent work measure. It is reported even for queries
// aborted by a budget, cancellation, or recovered panic.
func (s *Session) LastSteps() int64 { return s.s.LastSteps }

// LastCells reports the collection/array cells charged by the most recent
// query, on the same terms as LastSteps.
func (s *Session) LastCells() int64 { return s.s.LastCells }

// LastReport returns the full observability report of the most recent
// query — phase wall times, evaluator counters, I/O counters and the
// optimizer rule trace — or nil if tracing is disabled or no query has
// run.
func (s *Session) LastReport() *QueryReport { return s.s.Trace.Last() }

// TraceTotals returns the session-cumulative observability counters.
func (s *Session) TraceTotals() TraceTotals { return s.s.Trace.Totals() }

// SetTraceEnabled toggles per-query observability recording. Sessions
// start with tracing enabled; its disabled-path cost is a few atomic
// checks per query, and its enabled cost is bounded per query, not per
// evaluator step.
func (s *Session) SetTraceEnabled(on bool) { s.s.Trace.SetEnabled(on) }

// SetTraceSink directs finished per-query reports to a sink, in addition
// to the session's built-in fleet aggregator and flight recorder (nil
// removes a previously installed sink; the built-ins stay attached).
func (s *Session) SetTraceSink(sink TraceSink) { s.s.SetTraceSink(sink) }

// SetProfiling sets the operator-profiling level for subsequent queries:
// "off" (no span instrumentation at all), "sampled" (coarse operators,
// 1-in-64 invocations measured; low overhead), or "full" (every core
// operator, every invocation; exact counter attribution). Span trees
// appear in QueryReport.Spans and through the REPL's :top.
func (s *Session) SetProfiling(level string) error { return s.s.SetProfiling(level) }

// ProfilingLevel reports the current operator-profiling level.
func (s *Session) ProfilingLevel() string { return s.s.Profiling.String() }

// Explain compiles and optimizes src without evaluating it, returning a
// rendering of the optimized query and the optimizer rule trace — the
// REPL's :explain.
func (s *Session) Explain(src string) (string, error) { return s.s.Explain(src) }

// Profile runs src and returns the finished report's phase/counter table —
// the REPL's :profile.
func (s *Session) Profile(ctx context.Context, src string) (string, error) {
	return s.s.Profile(ctx, src)
}

// ExplainAnalyze runs src at full profiling and returns the result plus the
// per-operator estimate-vs-actual table — the REPL's :explain analyze.
func (s *Session) ExplainAnalyze(ctx context.Context, src string) (string, error) {
	return s.s.ExplainAnalyze(ctx, src)
}

// IsCommand reports whether an input line is a session colon-command
// (":explain", ":profile", ":stats", ":help") rather than an AQL
// statement.
func IsCommand(line string) bool { return repl.IsCommand(line) }

// Command executes a colon-command line and returns its rendered output.
func (s *Session) Command(ctx context.Context, line string) (string, error) {
	return s.s.Command(ctx, line)
}

// MetricsHandler returns an http.Handler serving the session's
// observability surface — the endpoint behind the -metricsaddr flag of
// cmd/aql:
//
//	GET /              JSON summary: cumulative totals + recent queries
//	GET /metrics       Prometheus text exposition (latency histogram,
//	                   phase/rule/eval/I-O counters)
//	GET /debug/queries flight recorder: last N full reports as JSON
//	GET /debug/slow    slowest queries seen
//	/debug/pprof/...   standard net/http/pprof handlers
func (s *Session) MetricsHandler() http.Handler {
	return trace.NewHandler(s.s.Trace, s.s.Fleet, s.s.Flight)
}

// FleetSnapshot returns a copy of the session's cross-query aggregates:
// latency histogram, per-phase and per-rule totals, and the slow-query
// log — the REPL's :fleet.
func (s *Session) FleetSnapshot() trace.AggregateSnapshot { return s.s.Fleet.Snapshot() }

// FlightReports returns the flight recorder's retained full QueryReports,
// oldest first.
func (s *Session) FlightReports() []QueryReport { return s.s.Flight.Reports() }

// SetEngine selects the execution engine for subsequent queries:
// "compiled" (the default — core queries are lowered to Go closures with
// slot-resolved variables and parallel tabulation) or "interp" (the
// tree-walking reference interpreter). The engines are observationally
// identical; interp exists as the executable semantics and differential
// baseline.
func (s *Session) SetEngine(name string) error { return s.s.SetEngine(name) }

// EngineName reports the execution engine subsequent queries will use.
func (s *Session) EngineName() string { return s.s.Engine }

// SetMaxSteps bounds the evaluator steps per query (0 = unlimited); queries
// that exceed the budget fail with a *ResourceError instead of running
// away. Equivalent to SetLimits with only MaxSteps set.
func (s *Session) SetMaxSteps(n int64) { s.s.MaxSteps = n }

// SetLimits installs per-query resource budgets; the zero Limits removes
// them. Queries that exceed a budget fail with a *ResourceError whose Kind
// names the exhausted resource.
func (s *Session) SetLimits(l Limits) { s.s.Limits = l }

// SetTileConfig tunes the session's out-of-core tile cache: tileCells per
// tile and budget bytes of residency (zero values select the defaults).
// Call it before reading data; see repl.Session.SetTileConfig.
func (s *Session) SetTileConfig(tileCells int, budget int64) {
	s.s.SetTileConfig(tileCells, budget, false)
}

// SetLazyReads selects lazy (tiled, on-demand) NetCDF reads, the default;
// false restores eager whole-slab materialization. Both modes produce
// byte-identical values.
func (s *Session) SetLazyReads(lazy bool) { s.s.SetLazyReads(lazy) }

// Close releases the session's out-of-core resources: open NetCDF handles,
// the tile cache, and the spill file. Lazy values bound by the session must
// not be read afterwards.
func (s *Session) Close() error { return s.s.Close() }

// RegisterPrimitive makes a Go function available as an AQL primitive with
// the given type (in concrete syntax, e.g. "(real * real * nat) -> nat") —
// the paper's RegisterCO.
func (s *Session) RegisterPrimitive(name, typ string, fn func(Value) (Value, error)) error {
	t, err := types.Parse(typ)
	if err != nil {
		return fmt.Errorf("aql: primitive %s: %w", name, err)
	}
	return s.s.Env.RegisterPrimitive(name, fn, t)
}

// RegisterReader registers a data reader for `readval`.
func (s *Session) RegisterReader(name string, r Reader) { s.s.Env.RegisterReader(name, r) }

// RegisterWriter registers a data writer for `writeval`.
func (s *Session) RegisterWriter(name string, w Writer) { s.s.Env.RegisterWriter(name, w) }

// AddRule appends an optimizer rule to the named phase ("normalize",
// "constraints", "motion", or a new phase name), as section 4.1's open
// architecture allows.
func (s *Session) AddRule(phase string, r Rule) { s.s.Env.Optimizer.AddRule(phase, r) }

// OptimizerStats returns a copy of the cumulative rule-firing counters.
// Mutating the returned map does not affect the optimizer's own counts.
func (s *Session) OptimizerStats() map[string]int { return s.s.Env.Optimizer.StatsSnapshot() }

// RegisterAxis installs a coordinate axis (strictly monotone values, e.g.
// latitudes) as the primitives <name>_index, <name>_coord and
// <name>_range, letting queries address arrays by physical coordinates —
// the second piece of future work in section 7 of the paper.
func (s *Session) RegisterAxis(name string, values []float64) error {
	axis, err := coord.NewAxis(name, values)
	if err != nil {
		return err
	}
	return coord.Register(s.s.Env, axis)
}

// SetVal binds a complex object to a top-level name, inferring its type.
func (s *Session) SetVal(name string, v Value) error {
	t, err := typecheck.TypeOf(v)
	if err != nil {
		return fmt.Errorf("aql: val %s: %w", name, err)
	}
	s.s.Env.SetVal(name, v, t)
	return nil
}

// Val returns a top-level val (including `it`, the last query result).
func (s *Session) Val(name string) (Value, bool) { return s.s.Env.Val(name) }

// EnvEpoch reports the environment's mutation epoch: a monotone counter
// bumped by every val binding, macro definition, and reader/writer or
// primitive registration. Anything derived from the environment (such as
// a prepared plan) is valid only for the epoch it was built at; the query
// server keys its plan cache on it.
func (s *Session) EnvEpoch() uint64 { return s.s.Env.Epoch() }

// --- Value constructors, re-exported for host programs ---------------------

// Bool, Nat, Real, Str, Tup, SetOf, BagOf, ArrayOf and Bottom construct
// complex objects from Go values.
var (
	Bool = object.Bool
	Nat  = object.Nat
	Real = object.Real
	Str  = object.String_
	Tup  = object.Tuple
)

// SetOf builds a canonical set.
func SetOf(elems ...Value) Value { return object.Set(elems...) }

// BagOf builds a canonical bag.
func BagOf(elems ...Value) Value { return object.Bag(elems...) }

// ArrayOf builds a k-dimensional array from a shape and row-major data.
func ArrayOf(shape []int, data []Value) (Value, error) { return object.Array(shape, data) }

// VectorOf builds a one-dimensional array.
func VectorOf(data ...Value) Value { return object.Vector(data...) }

// Bottom is the error value ⊥.
func Bottom(msg string) Value { return object.Bottom(msg) }

// Equal reports semantic equality of two complex objects.
func Equal(a, b Value) bool { return object.Equal(a, b) }

// ParseType parses a type in concrete syntax.
func ParseType(src string) (*Type, error) { return types.Parse(src) }
