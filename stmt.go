package aql

import (
	"context"
	"fmt"

	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/repl"
)

// BindError is the typed error for prepared-statement argument failures: a
// placeholder left unbound, an argument naming no placeholder, a Go value
// with no AQL scalar representation, or a type mismatch against the
// placeholder's inferred type. Unwrap with errors.As.
type BindError = repl.BindError

// Stmt is a prepared parameterized statement: an AQL template whose $name
// placeholders are typed holes, compiled once through the whole pipeline
// (parse, desugar, macros, typecheck, optimize, codegen) and executable many
// times with different arguments. On the compiled engine all executions
// share one immutable program; each Exec gets its own argument frame,
// counters and budgets, so concurrent Exec calls are safe.
type Stmt struct {
	p *repl.Prepared
}

// Prepare compiles tmpl as a parameterized statement. Placeholder types are
// inferred at prepare time — `$i < len!A` types $i as nat — so a mismatched
// argument later is a *BindError, never a runtime surprise. A template with
// no placeholders is simply a statement prepared for cheap re-execution.
func (s *Session) Prepare(tmpl string) (*Stmt, error) {
	p, err := s.s.Prepare(tmpl)
	if err != nil {
		return nil, err
	}
	return &Stmt{p: p}, nil
}

// ParamNames returns the statement's placeholder names, sorted.
func (st *Stmt) ParamNames() []string { return st.p.ParamNames() }

// Type returns the statement's inferred result type.
func (st *Stmt) Type() *Type { return st.p.Type }

// Exec runs the statement with args as its argument frame and returns the
// result (also bound to `it`). Arguments accept Go natives — int kinds map
// to nat (negative values are a *BindError; use a float for reals), float32
// and float64 to real, string to string, bool to bool — or any Value for
// structured arguments. Binding is strict: every placeholder must be bound,
// every argument must name a placeholder, and every value must unify with
// the placeholder's inferred type; violations are *BindError.
//
// If the session's environment changed since Prepare (a val rebinding, a
// registration), Exec transparently re-prepares against the current
// globals first.
func (st *Stmt) Exec(ctx context.Context, args map[string]any) (Value, error) {
	frame := make(map[string]object.Value, len(args))
	for name, a := range args {
		v, err := toValue(name, a)
		if err != nil {
			return Value{}, err
		}
		frame[name] = v
	}
	return st.p.Exec(ctx, frame)
}

// toValue converts one Go-native argument to a complex object.
func toValue(name string, a any) (object.Value, error) {
	switch x := a.(type) {
	case object.Value:
		return x, nil
	case bool:
		return object.Bool(x), nil
	case string:
		return object.String_(x), nil
	case float64:
		return object.Real(x), nil
	case float32:
		return object.Real(float64(x)), nil
	case int:
		return natArg(name, int64(x))
	case int8:
		return natArg(name, int64(x))
	case int16:
		return natArg(name, int64(x))
	case int32:
		return natArg(name, int64(x))
	case int64:
		return natArg(name, x)
	case uint:
		return object.Nat(int64(x)), nil
	case uint8:
		return object.Nat(int64(x)), nil
	case uint16:
		return object.Nat(int64(x)), nil
	case uint32:
		return object.Nat(int64(x)), nil
	case uint64:
		return object.Nat(int64(x)), nil
	}
	return object.Value{}, &BindError{Name: name,
		Msg: fmt.Sprintf("argument $%s: no AQL representation for Go type %T", name, a)}
}

// natArg maps a signed integer to nat, rejecting negatives (AQL naturals
// are non-negative; reals carry sign).
func natArg(name string, n int64) (object.Value, error) {
	if n < 0 {
		return object.Value{}, &BindError{Name: name,
			Msg: fmt.Sprintf("argument $%s: naturals are non-negative, got %d (bind a real for signed values)", name, n)}
	}
	return object.Nat(n), nil
}
