// Span-profiling overhead: the off level must cost nothing (its closures
// are byte-identical to unprofiled compilation) and the sampled level must
// stay within its 10% budget on the tabulation-heavy e19 workload.
package aql

import (
	"context"
	"os"
	"testing"
	"time"

	"github.com/aqldb/aql/internal/bench"
	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/eval"
)

// BenchmarkSpanOverhead times the compiled engine on the pure-tabulation
// workload at each profiling level; compare the sub-benchmarks to read the
// per-level cost directly from one run.
func BenchmarkSpanOverhead(b *testing.B) {
	s := bench.MustSession()
	core, _, err := s.Compile(`[[ (i*i + 7) % 93 | \i < 300000 ]]`)
	if err != nil {
		b.Fatal(err)
	}
	globals := s.Env.Globals()
	for _, level := range []eval.ProfLevel{eval.ProfOff, eval.ProfSampled, eval.ProfFull} {
		b.Run(level.String(), func(b *testing.B) {
			ce := compile.New(globals)
			ce.SetProfiling(level)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ce.EvalExpr(ctx, core); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestSpanOverheadSmoke enforces the profiling cost budgets on the e19
// pure-tabulation workload, best-of-N within one process so machine speed
// divides out:
//
//   - "off" within 2% of an engine whose profiling API was never touched
//     (catches any failure to fully de-instrument after full→off), and
//   - "sampled" within 10% of "off" (the sampling budget).
//
// Timing gates are meaningless under the race detector and too noisy to
// run on every `go test`, so the test only runs when AQL_SPAN_SMOKE=1 —
// CI's bench-smoke job sets it.
func TestSpanOverheadSmoke(t *testing.T) {
	if os.Getenv("AQL_SPAN_SMOKE") == "" {
		t.Skip("set AQL_SPAN_SMOKE=1 to run the span-overhead gate")
	}
	s := bench.MustSession()
	core, _, err := s.Compile(`[[ (i*i + 7) % 93 | \i < 200000 ]]`)
	if err != nil {
		t.Fatal(err)
	}
	globals := s.Env.Globals()
	ctx := context.Background()

	baseline := compile.New(globals) // profiling never enabled
	off := compile.New(globals)      // enabled, then switched back off
	off.SetProfiling(eval.ProfFull)
	off.SetProfiling(eval.ProfOff)
	sampled := compile.New(globals)
	sampled.SetProfiling(eval.ProfSampled)

	measure := func(ce *compile.Engine) time.Duration {
		t0 := time.Now()
		if _, err := ce.EvalExpr(ctx, core); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	min := func(a, b time.Duration) time.Duration {
		if b < a {
			return b
		}
		return a
	}

	// Interleave rounds and keep per-config minima: the minimum of many
	// runs of identical code converges, so the ratios gate real overhead,
	// not scheduler noise. Stop early once both gates pass.
	const maxRounds = 24
	baseMin, offMin, sampledMin := time.Duration(1<<62), time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < maxRounds; r++ {
		baseMin = min(baseMin, measure(baseline))
		offMin = min(offMin, measure(off))
		sampledMin = min(sampledMin, measure(sampled))
		if r >= 4 &&
			float64(offMin) <= 1.02*float64(baseMin) &&
			float64(sampledMin) <= 1.10*float64(offMin) {
			break
		}
	}
	t.Logf("baseline %v, off %v (%.3fx), sampled %v (%.3fx vs off)",
		baseMin, offMin, float64(offMin)/float64(baseMin),
		sampledMin, float64(sampledMin)/float64(offMin))
	if float64(offMin) > 1.02*float64(baseMin) {
		t.Errorf("profiling-off overhead %.1f%% exceeds the 2%% budget",
			100*(float64(offMin)/float64(baseMin)-1))
	}
	if float64(sampledMin) > 1.10*float64(offMin) {
		t.Errorf("sampled-profiling overhead %.1f%% exceeds the 10%% budget",
			100*(float64(sampledMin)/float64(offMin)-1))
	}
}
