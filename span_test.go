// Tests for operator-level profiling: structural identity of the span
// trees across engines, exact counter attribution at the full level, the
// off level's guarantee of zero instrumentation, and race-freedom of
// profiled parallel tabulation.
package aql

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/eval"
)

// spanShape renders a span tree's structure — operators, nesting and
// invocation counts, no timings — for cross-engine comparison.
func spanShape(n *eval.SpanNode) string {
	var b strings.Builder
	var walk func(n *eval.SpanNode, depth int)
	walk = func(n *eval.SpanNode, depth int) {
		fmt.Fprintf(&b, "%s%s inv=%d\n", strings.Repeat(" ", depth), n.Op, n.Invocations)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// TestSpanTreeStructuralDifferential holds both engines to structurally
// identical span trees on the differential corpus: same operators, same
// parent/child shape, same invocation counts. Only timings may differ.
// Checked at both profiling levels — sampled trees are sparser, but the
// sparsification (which operators get spans) is decided by the shared
// pre-walk, so it too must agree.
func TestSpanTreeStructuralDifferential(t *testing.T) {
	s := diffSession(t)
	globals := s.Env.Globals()
	for _, level := range []eval.ProfLevel{eval.ProfSampled, eval.ProfFull} {
		t.Run(level.String(), func(t *testing.T) {
			for _, src := range diffCorpus {
				t.Run(src, func(t *testing.T) {
					core, _, err := s.Compile(src)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					in, ce := diffEngines(globals, 0, eval.Limits{})
					in.SetProfiling(level)
					ce.SetProfiling(level)
					_, _ = in.EvalExpr(context.Background(), core)
					_, _ = ce.EvalExpr(context.Background(), core)
					it, ct := in.SpanTree(), ce.SpanTree()
					if it == nil || ct == nil {
						t.Fatalf("span tree missing: interp %v, compiled %v", it != nil, ct != nil)
					}
					if is, cs := spanShape(it), spanShape(ct); is != cs {
						t.Errorf("span trees differ:\ninterp:\n%s\ncompiled:\n%s", is, cs)
					}
				})
			}
		})
	}
}

// TestSpanCounterAttribution pins the accounting identity at the full
// level: the per-operator self counters over the whole tree sum exactly to
// the engine's flat counters, and the root's cumulative counters equal the
// flat counters (the root span wraps the entire evaluation).
func TestSpanCounterAttribution(t *testing.T) {
	s := diffSession(t)
	globals := s.Env.Globals()
	for _, src := range diffCorpus {
		t.Run(src, func(t *testing.T) {
			core, _, err := s.Compile(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			in, ce := diffEngines(globals, 0, eval.Limits{})
			in.SetProfiling(eval.ProfFull)
			ce.SetProfiling(eval.ProfFull)
			_, _ = in.EvalExpr(context.Background(), core)
			_, _ = ce.EvalExpr(context.Background(), core)
			for _, eng := range []interface {
				Counters() eval.Counters
				SpanTree() *eval.SpanNode
				Name() string
			}{in, ce} {
				root := eng.SpanTree()
				if root == nil {
					t.Fatalf("%s: no span tree at full level", eng.Name())
				}
				flat := eng.Counters()
				var self eval.Counters
				root.Walk(func(n *eval.SpanNode) {
					self.Steps += n.Steps
					self.Cells += n.Cells
					self.Tabs += n.Tabs
					self.SetOps += n.SetOps
					self.Iters += n.Iters
					if n.Measured != n.Invocations {
						t.Errorf("%s: %s measured %d of %d invocations at full level",
							eng.Name(), n.Op, n.Measured, n.Invocations)
					}
				})
				if self != flat {
					t.Errorf("%s: sum of span self counters %+v != flat counters %+v",
						eng.Name(), self, flat)
				}
				cum := root.CumCounters()
				if cum != flat {
					t.Errorf("%s: root cumulative counters %+v != flat counters %+v",
						eng.Name(), cum, flat)
				}
			}
		})
	}
}

// TestProfOffNoInstrumentation pins the off level's contract: no span plan
// is ever built (so the compiled closures carry no wrappers and the
// interpreter takes its one nil-check branch), and no tree is reported.
func TestProfOffNoInstrumentation(t *testing.T) {
	s := diffSession(t)
	core, _, err := s.Compile(`[[ i * i | \i < 100 ]]`)
	if err != nil {
		t.Fatal(err)
	}
	if plan := eval.NewSpanPlan(core, eval.ProfOff); plan != nil {
		t.Errorf("NewSpanPlan at off level built a plan: %+v", plan)
	}
	for _, eng := range []eval.Engine{eval.New(s.Env.Globals()), compile.New(s.Env.Globals())} {
		sp := eng.(eval.SpanProfiler)
		if sp.Profiling() != eval.ProfOff {
			t.Fatalf("%s: default profiling level = %v, want off", eng.Name(), sp.Profiling())
		}
		if _, err := eng.EvalExpr(context.Background(), core); err != nil {
			t.Fatal(err)
		}
		if tree := sp.SpanTree(); tree != nil {
			t.Errorf("%s: span tree present at off level", eng.Name())
		}
	}
}

// TestParallelTabulationProfiling profiles a million-cell parallel
// tabulation — including one whose head calls a closure compiled outside
// the tabulation, the escaped-closure shape — at both profiling levels.
// Run under -race (as CI does) this is the regression test for concurrent
// span recording from workers: forked per-worker slot arrays merged into
// the parent, worker ranges recorded under the plan lock.
func TestParallelTabulationProfiling(t *testing.T) {
	if testing.Short() {
		t.Skip("million-cell tabulation")
	}
	const cells = 1_000_000
	s := diffSession(t)
	globals := s.Env.Globals()
	queries := []string{
		`[[ (i*i + 7) % 93 | \i < 1000000 ]]`,
		`[[ f!(i % 1000) | \i < 1000000 ]]`, // f escapes from diffSetup's globals
	}
	for _, level := range []eval.ProfLevel{eval.ProfSampled, eval.ProfFull} {
		t.Run(level.String(), func(t *testing.T) {
			for _, src := range queries {
				t.Run(src, func(t *testing.T) {
					core, _, err := s.Compile(src)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					ce := compile.New(globals)
					ce.Threshold = 1024 // well below a million cells: force the parallel path
					ce.Workers = 4      // independent of GOMAXPROCS, so single-core CI still fans out
					ce.SetProfiling(level)
					if _, err := ce.EvalExpr(context.Background(), core); err != nil {
						t.Fatal(err)
					}
					root := ce.SpanTree()
					if root == nil {
						t.Fatal("no span tree")
					}
					var tab *eval.SpanNode
					root.Walk(func(n *eval.SpanNode) {
						if n.Op == "ArrayTab" && tab == nil {
							tab = n
						}
					})
					if tab == nil {
						t.Fatalf("no ArrayTab span in tree:\n%s", spanShape(root))
					}
					if tab.Invocations != 1 {
						t.Errorf("ArrayTab invocations = %d, want 1", tab.Invocations)
					}
					if len(tab.Workers) == 0 {
						t.Fatal("no worker spans recorded for the parallel tabulation")
					}
					covered := 0
					for _, w := range tab.Workers {
						if w.End <= w.Start || w.Start < 0 || w.End > cells {
							t.Errorf("worker %d range [%d,%d) out of bounds", w.Worker, w.Start, w.End)
						}
						if w.Busy <= 0 {
							t.Errorf("worker %d busy = %v, want > 0", w.Worker, w.Busy)
						}
						covered += w.End - w.Start
					}
					if covered != cells {
						t.Errorf("worker ranges cover %d cells, want %d", covered, cells)
					}
					if flat := ce.Counters(); flat.Cells < cells {
						t.Errorf("flat cells = %d, want >= %d", flat.Cells, cells)
					}
					if level == eval.ProfFull {
						if cum := root.CumCounters(); cum != ce.Counters() {
							t.Errorf("cumulative counters %+v != flat %+v under parallel merge",
								cum, ce.Counters())
						}
					}
				})
			}
		})
	}
}
