// Estimator exactness over the differential corpus: the cost estimator
// promises exact-or-unknown — on a single node, every cardinality or cost
// it claims to know must agree with the recorded actuals to the cell and
// the step (q-error exactly 1.0), and anything parameter- or data-dependent
// must be the explicit unknown marker, never a fabricated number. Running
// the whole corpus holds that promise across every construct the surface
// language can reach.
package aql

import (
	"context"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/object"
)

func TestExplainAnalyzeCorpusExactness(t *testing.T) {
	for _, q := range diffCorpus {
		t.Run(q, func(t *testing.T) {
			s := diffSession(t)
			table, _, v, err := s.ExplainAnalyzeTable(context.Background(), q)
			if err != nil {
				t.Fatalf("explain analyze: %v", err)
			}
			// The estimator describes a total evaluation. A ⊥ result means
			// evaluation short-circuited — siblings of the ⊥ site never ran,
			// so known estimates are upper bounds there, not exact.
			if v.Kind == object.KBottom {
				t.Skipf("⊥ result: evaluation short-circuited")
			}
			// Single-node full profile must always join per-operator: the
			// estimate tree mirrors the span tree's pre-order walk.
			if table.Mode != "operator" {
				t.Fatalf("join mode = %q, want operator", table.Mode)
			}
			for _, row := range table.Rows {
				if row.EstCells.Known && row.EstCells.N != row.ActCells {
					t.Errorf("%s: est cells %d != act cells %d", row.Path, row.EstCells.N, row.ActCells)
				}
				if row.EstCost.Known && row.EstCost.N != row.ActSelfSteps {
					t.Errorf("%s: est cost %d != act self steps %d", row.Path, row.EstCost.N, row.ActSelfSteps)
				}
				// Known estimates are exact, so nothing may ever be flagged
				// on a single node; a flag here means a fabricated number.
				if row.Flagged {
					t.Errorf("%s: flagged with q-error %v on a single-node run", row.Path, row.QError)
				}
			}
		})
	}
}

// TestExplainAnalyzeRendersTable covers the REPL surface end to end: the
// :explain analyze command output carries the type, the result and the
// joined table.
func TestExplainAnalyzeCommand(t *testing.T) {
	s := diffSession(t)
	out, err := s.Command(context.Background(), ":explain analyze [[ i*i | \\i < 8 ]]")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"type:", "result:", "mode=operator", "est cells", "misestimates:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
