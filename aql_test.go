package aql

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQuickstart(t *testing.T) {
	s := newSession(t)
	v, typ, err := s.Query(`{d | \d <- gen!30, d % 7 = 0}`)
	if err != nil {
		t.Fatal(err)
	}
	if typ.String() != "{nat}" {
		t.Errorf("type = %s", typ)
	}
	want := SetOf(Nat(0), Nat(7), Nat(14), Nat(21), Nat(28))
	if !Equal(v, want) {
		t.Errorf("value = %s, want %s", v, want)
	}
}

func TestRegisterPrimitive(t *testing.T) {
	s := newSession(t)
	err := s.RegisterPrimitive("triple", "nat -> nat", func(v Value) (Value, error) {
		return Nat(v.N * 3), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := s.Query("triple!14")
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(v, Nat(42)) {
		t.Errorf("triple!14 = %s", v)
	}
	// Bad type syntax is rejected.
	if err := s.RegisterPrimitive("bad", "nat ->", nil); err == nil {
		t.Error("bad type should be rejected")
	}
	// Non-function types are rejected.
	if err := s.RegisterPrimitive("bad", "nat", nil); err == nil {
		t.Error("non-function type should be rejected")
	}
}

func TestSetValAndVal(t *testing.T) {
	s := newSession(t)
	if err := s.SetVal("A", VectorOf(Nat(5), Nat(6))); err != nil {
		t.Fatal(err)
	}
	v, _, err := s.Query("A[1] + A[0]")
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(v, Nat(11)) {
		t.Errorf("got %s", v)
	}
	if _, ok := s.Val("A"); !ok {
		t.Error("Val(A) not found")
	}
	// `it` is bound after Exec queries.
	if _, err := s.Exec("1 + 1;"); err != nil {
		t.Fatal(err)
	}
	if it, ok := s.Val("it"); !ok || !Equal(it, Nat(2)) {
		t.Errorf("it = %v, %v", it, ok)
	}
}

func TestOptimizerToggleAndStats(t *testing.T) {
	s := newSession(t)
	// A query that the optimizer collapses: subscripting a tabulation.
	src := `[[ i * i | \i < 1000 ]][7]`
	if _, _, err := s.Query(src); err != nil {
		t.Fatal(err)
	}
	optimizedSteps := s.LastSteps()
	s.SetOptimizerEnabled(false)
	if _, _, err := s.Query(src); err != nil {
		t.Fatal(err)
	}
	naiveSteps := s.LastSteps()
	if optimizedSteps*10 > naiveSteps {
		t.Errorf("optimizer saved too little: %d vs %d steps", optimizedSteps, naiveSteps)
	}
	if s.OptimizerStats()["beta-p"] == 0 {
		t.Error("beta-p should have fired")
	}
}

func TestCompileOptimizeEval(t *testing.T) {
	s := newSession(t)
	e, typ, err := s.Compile(`transpose![[2, 2; 1, 2, 3, 4]]`)
	if err != nil {
		t.Fatal(err)
	}
	if typ.String() != "[[nat]]_2" {
		t.Errorf("type = %s", typ)
	}
	v, err := s.Eval(s.Optimize(e))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ArrayOf([]int{2, 2}, []Value{Nat(1), Nat(3), Nat(2), Nat(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(v, want) {
		t.Errorf("got %s, want %s", v, want)
	}
}

func TestAddRule(t *testing.T) {
	s := newSession(t)
	s.AddRule("normalize", Rule{
		Name: "user-rule",
		Apply: func(e Expr) (Expr, bool) {
			return e, false
		},
	})
	if _, _, err := s.Query("1 + 1"); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsSurface(t *testing.T) {
	s := newSession(t)
	_, _, err := s.Query(`1 + "two"`)
	if err == nil || !strings.Contains(err.Error(), "unify") {
		t.Errorf("err = %v", err)
	}
	// Language-level partiality is a value, not an error.
	v, _, err := s.Query(`[[1, 2]][9]`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsBottom() {
		t.Errorf("out-of-bounds = %s, want bottom", v)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	s := newSession(t)
	s.SetMaxSteps(100)
	if _, _, err := s.Query(`summap(fn \i => i)!(gen!100000)`); err == nil {
		t.Error("runaway query not aborted")
	}
	s.SetMaxSteps(0)
	if _, _, err := s.Query(`1 + 1`); err != nil {
		t.Errorf("unlimited session broken: %v", err)
	}
}

func TestRegisterAxisPublicAPI(t *testing.T) {
	s := newSession(t)
	if err := s.RegisterAxis("lon", []float64{0, 90, 180}); err != nil {
		t.Fatal(err)
	}
	v, _, err := s.Query(`lon_index!85.0`)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(v, Nat(1)) {
		t.Errorf("lon_index!85.0 = %s", v)
	}
	if err := s.RegisterAxis("bad", []float64{1, 1}); err == nil {
		t.Error("non-monotone axis accepted")
	}
}

// The acceptance scenario for resource governance: a tabulation demanding
// 10^9 cells under a million-cell budget must die on the budget — quickly,
// before the array is allocated — and report a typed error.
func TestAcceptanceRunawayTabulate(t *testing.T) {
	s := newSession(t)
	s.SetLimits(Limits{MaxCells: 1_000_000, Timeout: time.Second})
	start := time.Now()
	_, _, err := s.Query(`[[ i | \i < 1000000000 ]]`)
	elapsed := time.Since(start)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("expected *ResourceError, got %T: %v", err, err)
	}
	if re.Kind != ResourceCells {
		t.Errorf("kind = %s, want %s (cell budget should trip before the timeout)", re.Kind, ResourceCells)
	}
	if elapsed > time.Second {
		t.Errorf("abort took %s; the pre-allocation charge should fail fast", elapsed)
	}
	if s.LastCells() < 1_000_000 {
		t.Errorf("LastCells = %d, want the charged demand visible on abort", s.LastCells())
	}
}

func TestMaxCellsNestedSetComprehension(t *testing.T) {
	s := newSession(t)
	s.SetLimits(Limits{MaxCells: 10_000})
	// 1000 inner sets of 1000 elements: 10^6 cells of demand.
	_, _, err := s.Query(`{ {i * 1000 + j | \j <- gen!1000} | \i <- gen!1000 }`)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("expected *ResourceError, got %T: %v", err, err)
	}
	if re.Kind != ResourceCells {
		t.Errorf("kind = %s, want %s", re.Kind, ResourceCells)
	}
}

func TestTimeoutStepHeavyQuery(t *testing.T) {
	s := newSession(t)
	s.SetLimits(Limits{Timeout: 30 * time.Millisecond})
	_, _, err := s.Query(`summap(fn \i => summap(fn \j => i*j)!(gen!1000))!(gen!100000)`)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("expected *ResourceError, got %T: %v", err, err)
	}
	if re.Kind != ResourceTimeout {
		t.Errorf("kind = %s, want %s", re.Kind, ResourceTimeout)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("timeout should unwrap to context.DeadlineExceeded")
	}
}

func TestQueryCtxPublicAPI(t *testing.T) {
	s := newSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, _, err := s.QueryCtx(ctx, `summap(fn \i => summap(fn \j => i*j)!(gen!1000))!(gen!100000)`)
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("expected *ResourceError, got %T: %v", err, err)
	}
	if re.Kind != ResourceCancelled {
		t.Errorf("kind = %s, want %s", re.Kind, ResourceCancelled)
	}
}

func TestPanicErrorPublicAPI(t *testing.T) {
	s := newSession(t)
	if err := s.RegisterPrimitive("explode", "nat -> nat", func(Value) (Value, error) {
		panic("internal invariant violated")
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Query("explode!1")
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *PanicError, got %T: %v", err, err)
	}
	// The session survives the recovered panic.
	if _, _, err := s.Query("2 * 3"); err != nil {
		t.Errorf("session dead after recovered panic: %v", err)
	}
}

func TestOptimizerStatsReturnsCopy(t *testing.T) {
	s := newSession(t)
	if _, _, err := s.Query(`[[ i | \i < 10 ]][3]`); err != nil {
		t.Fatal(err)
	}
	stats := s.OptimizerStats()
	if stats["beta-p"] == 0 {
		t.Fatal("beta-p should have fired")
	}
	// Mutating the returned map must not corrupt the live counters.
	stats["beta-p"] = -42
	stats["forged"] = 1
	again := s.OptimizerStats()
	if again["beta-p"] <= 0 {
		t.Errorf("caller mutation leaked into live stats: beta-p = %d", again["beta-p"])
	}
	if _, ok := again["forged"]; ok {
		t.Error("caller-inserted key leaked into live stats")
	}
}

func TestLastReportAndTotals(t *testing.T) {
	s := newSession(t)
	if s.LastReport() != nil {
		t.Error("fresh session has a last report")
	}
	if _, _, err := s.Query(`[[ i * 2 | \i < 5 ]]`); err != nil {
		t.Fatal(err)
	}
	rep := s.LastReport()
	if rep == nil {
		t.Fatal("no report after query")
	}
	if rep.Eval.Tabulations != 1 || rep.Eval.Cells != 5 {
		t.Errorf("counters = %+v", rep.Eval)
	}
	if rep.Eval.Steps != s.LastSteps() {
		t.Errorf("report steps %d != LastSteps %d", rep.Eval.Steps, s.LastSteps())
	}
	tot := s.TraceTotals()
	if tot.Queries != 1 {
		t.Errorf("totals queries = %d, want 1", tot.Queries)
	}
	s.SetTraceEnabled(false)
	if _, _, err := s.Query("1+1"); err != nil {
		t.Fatal(err)
	}
	if got := s.TraceTotals().Queries; got != 1 {
		t.Errorf("disabled trace still counted: %d queries", got)
	}
	s.SetTraceEnabled(true)
}

func TestExplainAndProfilePublicAPI(t *testing.T) {
	s := newSession(t)
	out, err := s.Explain(`[[ i | \i < 8 ]][2]`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "beta-p") {
		t.Errorf("Explain missing rule trace:\n%s", out)
	}
	out, err = s.Profile(context.Background(), `gen!6`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "profile of gen!6") || !strings.Contains(out, "steps") {
		t.Errorf("Profile output:\n%s", out)
	}
}

func TestTraceJSONSink(t *testing.T) {
	s := newSession(t)
	var buf strings.Builder
	s.SetTraceSink(NewJSONSink(&buf))
	if _, _, err := s.Query("gen!3"); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if !strings.Contains(line, `"query":"gen!3"`) {
		t.Errorf("sink received %q", line)
	}
}

func TestMetricsHandler(t *testing.T) {
	s := newSession(t)
	if _, _, err := s.Query("gen!3"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"totals"`) || !strings.Contains(string(body), "gen!3") {
		t.Errorf("metrics payload:\n%s", body)
	}
}
