// Differential testing of prepared (parameterized) statements: a template
// executed with an argument frame must behave byte-identically — value
// rendering, ⊥ payloads, error text, work counters — to the same query with
// the arguments substituted as literals, under both engines. This is the
// contract that makes template-keyed plan caching sound: serving a cached
// parameterized plan is observationally the same as preparing the
// substituted query from scratch.
package aql

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/trace"
)

// preparedCorpus pairs templates with argument frames and the literal
// substitution they must match. Arguments are scalars — the substitution
// that can be written as a literal in source text.
var preparedCorpus = []struct {
	name string
	tmpl string
	args map[string]object.Value
	lit  string
}{
	{"arith", `$n + 2 * $n`,
		map[string]object.Value{"n": object.Nat(7)}, `7 + 2 * 7`},
	{"tabulation", `[[ i * i + $a * i + $b | \i < 20 ]]`,
		map[string]object.Value{"a": object.Nat(3), "b": object.Nat(5)},
		`[[ i * i + 3 * i + 5 | \i < 20 ]]`},
	{"comprehension", `{x | \x <- S, x > $t}`,
		map[string]object.Value{"t": object.Nat(2)}, `{x | \x <- S, x > 2}`},
	{"subscript", `A[$i] + A[$i]`,
		map[string]object.Value{"i": object.Nat(4)}, `A[4] + A[4]`},
	{"string-compare", `$s = "tokyo"`,
		map[string]object.Value{"s": object.String_("tokyo")}, `"tokyo" = "tokyo"`},
	{"real", `$x * 2.5`,
		map[string]object.Value{"x": object.Real(1.5)}, `1.5 * 2.5`},
	{"bool-branch", `if $b then count!S else 0`,
		map[string]object.Value{"b": object.Bool(true)}, `if true then count!S else 0`},
	{"shared-var", `$a = $b`,
		map[string]object.Value{"a": object.Nat(1), "b": object.Nat(2)}, `1 = 2`},
	// ⊥ producers: the diagnostic must render identically.
	{"bottom-subscript", `A[$i]`,
		map[string]object.Value{"i": object.Nat(100)}, `A[100]`},
	{"bottom-div", `$x / $y`,
		map[string]object.Value{"x": object.Nat(1), "y": object.Nat(0)}, `1 / 0`},
	{"bottom-in-tab", `[[ A[i + $k] | \i < 20 ]]`,
		map[string]object.Value{"k": object.Nat(0)}, `[[ A[i + 0] | \i < 20 ]]`},
}

// lastEval returns the evaluator counters of the session's most recent
// statement.
func lastEval(t *testing.T, s *repl.Session) trace.EvalCounters {
	t.Helper()
	rep := s.Trace.Last()
	if rep == nil {
		t.Fatal("no trace report recorded")
	}
	return rep.Eval
}

// TestPreparedDifferential runs the corpus on both engines. Unoptimized,
// the identity is exact: a placeholder read costs precisely what a literal
// leaf costs, so values, error text AND counters must match the substituted
// query byte-for-byte. Optimized, values and errors must still match, but
// counters legitimately may not — the optimizer constant-folds literals
// (`7 + 2*7` → 21) while a placeholder is an opaque leaf.
func TestPreparedDifferential(t *testing.T) {
	ctx := context.Background()
	for _, engine := range []string{repl.EngineInterp, repl.EngineCompiled} {
		t.Run(engine, func(t *testing.T) {
			for _, optimize := range []bool{false, true} {
				name := "unoptimized"
				if optimize {
					name = "optimized"
				}
				t.Run(name, func(t *testing.T) {
					s := diffSession(t)
					if err := s.SetEngine(engine); err != nil {
						t.Fatal(err)
					}
					s.SkipOptimizer = !optimize
					for _, c := range preparedCorpus {
						t.Run(c.name, func(t *testing.T) {
							p, err := s.Prepare(c.tmpl)
							if err != nil {
								t.Fatalf("prepare: %v", err)
							}
							pv, perr := p.Exec(ctx, c.args)
							pc := lastEval(t, s)
							lv, _, lerr := s.QueryCtx(ctx, c.lit)
							lc := lastEval(t, s)

							switch {
							case perr != nil && lerr == nil:
								t.Errorf("prepared errored (%v), literal succeeded (%s)", perr, lv)
							case perr == nil && lerr != nil:
								t.Errorf("literal errored (%v), prepared succeeded (%s)", lerr, pv)
							case perr != nil:
								if perr.Error() != lerr.Error() {
									t.Errorf("error text differs:\nprepared %q\nliteral  %q", perr, lerr)
								}
							default:
								// Optimized, a literal ⊥ producer may fold to an
								// explicit ⊥ whose diagnostic names the fold, while
								// the opaque placeholder form reports the runtime
								// operation; ⊥-ness must still agree.
								if optimize && pv.IsBottom() && lv.IsBottom() {
									break
								}
								if pv.String() != lv.String() {
									t.Errorf("values differ:\nprepared %s\nliteral  %s", pv, lv)
								}
							}
							if !optimize && pc != lc {
								t.Errorf("counters differ:\nprepared %+v\nliteral  %+v", pc, lc)
							}
						})
					}
				})
			}
		})
	}
}

// TestPreparedRepeatedExec: one Prepared, many argument frames — every
// execution matches its own literal substitution (no frame leaks between
// executions of the shared plan).
func TestPreparedRepeatedExec(t *testing.T) {
	ctx := context.Background()
	s := diffSession(t)
	p, err := s.Prepare(`[[ (i * $a + $b) % 31 | \i < 50 ]]`)
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(1); a <= 5; a++ {
		for b := int64(0); b <= 2; b++ {
			pv, err := p.Exec(ctx, map[string]object.Value{"a": object.Nat(a), "b": object.Nat(b)})
			if err != nil {
				t.Fatalf("exec(a=%d, b=%d): %v", a, b, err)
			}
			lit := strings.NewReplacer("$a", object.Nat(a).String(), "$b", object.Nat(b).String()).
				Replace(`[[ (i * $a + $b) % 31 | \i < 50 ]]`)
			lv, _, err := s.QueryCtx(ctx, lit)
			if err != nil {
				t.Fatalf("literal %q: %v", lit, err)
			}
			if pv.String() != lv.String() {
				t.Errorf("a=%d b=%d: prepared %s != literal %s", a, b, pv, lv)
			}
		}
	}
}

// TestPreparedEpochInvalidation: a val rebinding after Prepare must be
// visible to the next Exec — the statement transparently re-prepares when
// the environment epoch moves, mirroring the server plan cache's epoch
// keying.
func TestPreparedEpochInvalidation(t *testing.T) {
	ctx := context.Background()
	s := diffSession(t)
	if _, err := s.Exec(`val N = 10;`); err != nil {
		t.Fatal(err)
	}
	p, err := s.Prepare(`N + $a`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Exec(ctx, map[string]object.Value{"a": object.Nat(5)})
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "15" {
		t.Fatalf("before rebind: got %s, want 15", v)
	}
	if _, err := s.Exec(`val N = 100;`); err != nil {
		t.Fatal(err)
	}
	v, err = p.Exec(ctx, map[string]object.Value{"a": object.Nat(5)})
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "105" {
		t.Fatalf("after rebind: got %s, want 105 (stale plan served?)", v)
	}
}

// TestPreparedBindErrors: strict binding — unbound placeholder, stray
// argument, and type mismatch are all *repl.BindError raised before any
// evaluation.
func TestPreparedBindErrors(t *testing.T) {
	ctx := context.Background()
	s := diffSession(t)
	p, err := s.Prepare(`$n + A[$i]`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args map[string]object.Value
		want string
	}{
		{"missing", map[string]object.Value{"n": object.Nat(1)},
			"missing argument for parameter $i"},
		{"unknown", map[string]object.Value{"n": object.Nat(1), "i": object.Nat(2), "zz": object.Nat(3)},
			`argument "zz" does not name a parameter`},
		{"mismatch", map[string]object.Value{"n": object.Nat(1), "i": object.String_("x")},
			"argument $i: expected nat, got string"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := p.Exec(ctx, c.args)
			var be *repl.BindError
			if !errors.As(err, &be) {
				t.Fatalf("err = %v, want *repl.BindError", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %q, want substring %q", err, c.want)
			}
		})
	}
	// A well-typed frame still works after the failures.
	v, err := p.Exec(ctx, map[string]object.Value{"n": object.Nat(10), "i": object.Nat(0)})
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "11" {
		t.Fatalf("got %s, want 11", v)
	}
}

// TestPreparedTypeInference: placeholder types are solved at prepare time;
// a template whose placeholder usages conflict is a prepare-time type
// error, not a runtime surprise.
func TestPreparedTypeInference(t *testing.T) {
	s := diffSession(t)
	p, err := s.Prepare(`[[ A[i] | \i < $n ]]`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Params["n"].String(); got != "nat" {
		t.Errorf("inferred $n : %s, want nat", got)
	}
	if _, err := s.Prepare(`($x + 1, $x = "s")`); err == nil {
		t.Error("conflicting placeholder usages prepared without error")
	}
}

// TestStmtGoBinding: the public API converts Go natives to complex objects
// with typed failures for values AQL cannot represent.
func TestStmtGoBinding(t *testing.T) {
	ctx := context.Background()
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Prepare(`[[ i * $a | \i < $n ]]`)
	if err != nil {
		t.Fatal(err)
	}
	if names := st.ParamNames(); len(names) != 2 || names[0] != "a" || names[1] != "n" {
		t.Fatalf("ParamNames = %v, want [a n]", names)
	}
	v, err := st.Exec(ctx, map[string]any{"a": 3, "n": int64(4)})
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != `[[0, 3, 6, 9]]` {
		t.Fatalf("got %s, want [[0, 3, 6, 9]]", v)
	}

	var be *BindError
	if _, err := st.Exec(ctx, map[string]any{"a": -1, "n": 4}); !errors.As(err, &be) {
		t.Errorf("negative int: err = %v, want *BindError", err)
	}
	if _, err := st.Exec(ctx, map[string]any{"a": struct{}{}, "n": 4}); !errors.As(err, &be) {
		t.Errorf("unrepresentable type: err = %v, want *BindError", err)
	}
	if _, err := st.Exec(ctx, map[string]any{"a": 2.5, "n": 4}); !errors.As(err, &be) {
		t.Errorf("real where nat inferred: err = %v, want *BindError", err)
	}

	// Value passthrough and float/string/bool conversion.
	st2, err := s.Prepare(`($x, $s, $b)`)
	if err != nil {
		t.Fatal(err)
	}
	v, err = st2.Exec(ctx, map[string]any{"x": 2.5, "s": "hi", "b": true})
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != `(2.5, "hi", true)` {
		t.Fatalf("got %s, want (2.5, \"hi\", true)", v)
	}
}

// TestPreparedInterpUnbound pins the unbound-parameter error's laziness and
// text on the interpreter: only evaluated placeholders fail, with the same
// message the compiled engine produces.
func TestPreparedInterpUnbound(t *testing.T) {
	s := diffSession(t)
	if err := s.SetEngine(repl.EngineInterp); err != nil {
		t.Fatal(err)
	}
	ev := eval.New(s.Env.Globals())
	core, _, err := s.Compile(`if false then $x else 42`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ev.EvalExpr(context.Background(), core)
	if err != nil {
		t.Fatalf("untaken branch with unbound placeholder failed: %v", err)
	}
	if v.String() != "42" {
		t.Fatalf("got %s, want 42", v)
	}
	core, _, err = s.Compile(`$x + 1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.EvalExpr(context.Background(), core); err == nil ||
		!strings.Contains(err.Error(), "unbound parameter $x") {
		t.Fatalf("err = %v, want unbound parameter $x", err)
	}
}
