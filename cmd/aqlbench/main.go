// Command aqlbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per experiment of DESIGN.md's index, reporting
// wall-clock time and evaluator steps (a machine-independent work measure)
// for each rival implementation.
//
// Usage:
//
//	aqlbench            run every experiment
//	aqlbench -exp e7    run one experiment (e4, e6, e7, e8, e9, e10, e11, e15, e17, e19, e21, e22, e23, e24, e25, a1)
//	aqlbench -quick     smaller sweeps, for smoke testing
//	aqlbench -report reports.jsonl
//	                    additionally write one trace.QueryReport JSON object
//	                    per timed query (phase times, steps, cells, I/O);
//	                    each line records which execution engine evaluated it
//	aqlbench -engine interp
//	                    run the experiments on the named engine (interp or
//	                    compiled) instead of the session default
//	aqlbench -exp e19 -engjson BENCH_engine.json -failworse
//	                    compare the engines on the tabulation workloads, write
//	                    the comparison as JSON, and fail if compiled is slower
//	                    than interp on the pure-tabulation workload
//	aqlbench -proflevel sampled -report reports.jsonl
//	                    run with operator profiling on, so each emitted report
//	                    carries a span tree attributing time to core operators
//	aqlbench -exp e19 -trajectory BENCH_trajectory.json -stamp v1.4
//	                    append the e19 measurements to the named trajectory
//	                    file (a JSON array, one entry per recorded run); the
//	                    entry label comes from -stamp so runs are reproducible
//	                    and diffable rather than wall-clock-dependent
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/bench"
	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/opt"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/trace"
)

var quick = flag.Bool("quick", false, "smaller sweeps")

// reportSink, when set by -report, receives one QueryReport per timed
// query as a line of JSON.
var reportSink trace.Sink

func main() {
	exp := flag.String("exp", "", "run a single experiment (e4, e6, e7, e8, e9, e10, e11, e15, e17, e19, e21, e22, e23, e24, e25, e26, a1)")
	report := flag.String("report", "", "write per-query trace.QueryReport JSON lines to this file (- for stdout)")
	engine := flag.String("engine", "", "execution engine for the experiments: interp or compiled (default: the session default)")
	engJSON := flag.String("engjson", "", "with e19: write the engine-comparison results as JSON to this file (e.g. BENCH_engine.json)")
	failWorse := flag.Bool("failworse", false, "with e19/e24/e25/e26: exit nonzero if the compiled engine is slower than interp on the pure-tabulation workload, the templated plan-cache hit rate falls below 99%, the estimate join adds more than 10% to a full-profile run, or the out-of-core sequential-scan tile hit rate falls below 90%")
	profLevel := flag.String("proflevel", "off", "operator profiling level for the experiments: off, sampled, or full")
	trajectory := flag.String("trajectory", "", "with e19: append the measurements to this JSON trajectory file (e.g. BENCH_trajectory.json)")
	stamp := flag.String("stamp", "", "label for the -trajectory entry (a version or commit id; kept a flag so runs are reproducible)")
	flag.Parse()
	if *engine != "" {
		bench.Engine = *engine
	}
	bench.Profiling = *profLevel
	if *report != "" {
		w := os.Stdout
		if *report != "-" {
			f, err := os.Create(*report)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aqlbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		reportSink = trace.NewJSONSink(w)
	}

	all := []struct {
		id   string
		name string
		run  func()
	}{
		{"e4", "the motivating query (section 1)", runE4},
		{"e6", "zip: arrays O(n) vs set join O(n^2) (section 1)", runE6},
		{"e7", "hist O(n*m) vs hist' O(m + n log n) (section 2)", runE7},
		{"e8", "literal arrays: append chain O(n^2) vs row-major O(n) (section 3)", runE8},
		{"e9", "the array rules beta^p / eta^p / delta^p (section 5)", runE9},
		{"e10", "fused transpose (section 5)", runE10},
		{"e11", "zip-subseq commutation (sections 1 and 5)", runE11},
		{"e19", "execution engines: interp vs compiled on tabulation workloads", runE19},
		{"e21", "query server: cold vs cached-plan latency, sustained QPS", runE21},
		{"e22", "cluster: scatter-gather speedup, hedged straggler tail latency", runE22},
		{"e23", "per-plan stats store: templated workload profiles in /debug/planstats", runE23},
		{"e24", "prepared templates: plan-cache hit rate and latency vs literal substitution", runE24},
		{"e25", "explain analyze: estimate-vs-actual join overhead and estimator accuracy", runE25},
		{"e26", "out-of-core: tiled lazy scan under a cache budget vs eager materialization", runE26},
		{"e15", "NetCDF subslab reads (section 4.1)", runE15},
		{"e17", "predictive caching for strided reads (section 7)", runE17},
		{"a1", "ablation: optimizer phase structure", runA1},
	}
	ran := false
	for _, e := range all {
		if *exp != "" && e.id != *exp {
			continue
		}
		fmt.Printf("## %s — %s\n\n", strings.ToUpper(e.id), e.name)
		e.run()
		fmt.Println()
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "aqlbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
	if *engJSON != "" {
		if engResults == nil {
			fmt.Fprintln(os.Stderr, "aqlbench: -engjson requires the e19 experiment to have run")
			os.Exit(1)
		}
		data, err := json.MarshalIndent(engResults, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "aqlbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*engJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "aqlbench:", err)
			os.Exit(1)
		}
	}
	if *trajectory != "" {
		if engResults == nil && srvResults == nil && clusterResults == nil && tmplResults == nil && e26Results == nil {
			fmt.Fprintln(os.Stderr, "aqlbench: -trajectory requires the e19, e21, e22, e24 or e26 experiment to have run")
			os.Exit(1)
		}
		if err := appendTrajectory(*trajectory, *stamp, engResults, srvResults, clusterResults, tmplResults); err != nil {
			fmt.Fprintln(os.Stderr, "aqlbench:", err)
			os.Exit(1)
		}
	}
	if *failWorse && engResults != nil {
		for _, eb := range engResults.Benchmarks {
			if eb.Name == "puretab" && eb.Speedup < 1.0 {
				fmt.Fprintf(os.Stderr, "aqlbench: compiled engine slower than interp on %s (%.2fx)\n", eb.Name, eb.Speedup)
				os.Exit(1)
			}
		}
	}
	if *failWorse && tmplResults != nil {
		if tmplResults.TemplatedHitRate < 0.99 {
			fmt.Fprintf(os.Stderr, "aqlbench: templated workload plan-cache hit rate %.1f%%, want >= 99%%\n",
				100*tmplResults.TemplatedHitRate)
			os.Exit(1)
		}
	}
	if *failWorse && e26Results != nil {
		if e26Results.TileHitRate < e26MinHitRate {
			fmt.Fprintf(os.Stderr, "aqlbench: out-of-core sequential-scan tile hit rate %.1f%%, want >= %.0f%%\n",
				100*e26Results.TileHitRate, 100*e26MinHitRate)
			os.Exit(1)
		}
		if e26Results.PeakBytes > e26Results.BudgetBytes {
			fmt.Fprintf(os.Stderr, "aqlbench: out-of-core peak residency %d exceeds budget %d\n",
				e26Results.PeakBytes, e26Results.BudgetBytes)
			os.Exit(1)
		}
	}
	if *failWorse && e25Results != nil {
		for _, eb := range e25Results.Benchmarks {
			if eb.Overhead > e25MaxOverhead {
				fmt.Fprintf(os.Stderr, "aqlbench: estimate join adds %.1f%% to %s at prof level full, want <= %.0f%%\n",
					100*eb.Overhead, eb.Name, 100*e25MaxOverhead)
				os.Exit(1)
			}
		}
	}
}

// engineBench is one row of the e19 comparison; ns_per_op figures are the
// best of the measurement repetitions, as in testing.B output.
type engineBench struct {
	Name       string  `json:"name"`
	InterpNs   int64   `json:"interp_ns_per_op"`
	CompiledNs int64   `json:"compiled_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// engineReport is the -engjson payload (BENCH_engine.json in CI).
type engineReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	Benchmarks []engineBench `json:"benchmarks"`
}

// engResults holds the e19 measurements for -engjson / -failworse.
var engResults *engineReport

// trajectoryEntry is one recorded run of the engine comparison; the
// trajectory file is a JSON array of these, oldest first, so performance
// history accumulates across runs instead of being overwritten.
type trajectoryEntry struct {
	Stamp      string        `json:"stamp,omitempty"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Profiling  string        `json:"proflevel,omitempty"`
	Benchmarks []engineBench `json:"benchmarks,omitempty"`
	// Server carries the e21 query-server measurements when that
	// experiment ran (cold vs cached-plan latency, sustained QPS).
	Server *serverReport `json:"server,omitempty"`
	// Cluster carries the e22 scatter-gather measurements when that
	// experiment ran (distributed speedup, hedged tail latency).
	Cluster *clusterReport `json:"cluster,omitempty"`
	// Templated carries the e24 prepared-template measurements when that
	// experiment ran (plan-cache hit rate, cached-exec latency).
	Templated *templatedReport `json:"templated,omitempty"`
	// OutOfCore carries the e26 tiled-scan measurements when that
	// experiment ran (tile hit rate, bytes scanned vs. returned).
	OutOfCore *oocReport `json:"ooc,omitempty"`
}

// appendTrajectory appends one entry to the trajectory file, creating it
// (as a one-element array) if absent. A malformed existing file is an
// error rather than silently replaced — the history is the point. Any
// report may be nil; at least one is present (checked by the caller).
func appendTrajectory(path, stamp string, r *engineReport, sr *serverReport, cr *clusterReport, tr *templatedReport) error {
	var entries []trajectoryEntry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("trajectory %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entry := trajectoryEntry{
		Stamp:      stamp,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Profiling:  bench.Profiling,
		Server:     sr,
		Cluster:    cr,
		Templated:  tr,
		OutOfCore:  e26Results,
	}
	if r != nil {
		entry.GOMAXPROCS = r.GOMAXPROCS
		entry.Benchmarks = r.Benchmarks
	}
	entries = append(entries, entry)
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runE19() {
	workloads := []struct{ name, query string }{
		{"puretab", bench.PureTabQuery},
		{"matmul", bench.MatmulQuery},
	}
	reps := 5
	if *quick {
		reps = 3
	}
	engResults = &engineReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	fmt.Printf("| workload | interp | steps | compiled | steps | speedup |\n|---|---|---|---|---|---|\n")
	for _, w := range workloads {
		var best [2]time.Duration
		var steps [2]int64
		for ei, eng := range []string{repl.EngineInterp, repl.EngineCompiled} {
			s := bench.MustSession()
			if err := s.SetEngine(eng); err != nil {
				panic(err)
			}
			if _, err := s.Exec(bench.EngineSetup); err != nil {
				panic(err)
			}
			for r := 0; r < reps; r++ {
				start := time.Now()
				if _, err := s.Exec(w.query); err != nil {
					fmt.Fprintln(os.Stderr, "aqlbench:", err)
					os.Exit(1)
				}
				d := time.Since(start)
				if r == 0 || d < best[ei] {
					best[ei] = d
				}
				steps[ei] = s.LastSteps
				if reportSink != nil {
					if rep := s.Trace.Last(); rep != nil {
						reportSink.Emit(rep)
					}
				}
			}
		}
		speedup := float64(best[0]) / float64(best[1])
		fmt.Printf("| %s | %v | %d | %v | %d | %.2fx |\n",
			w.name, best[0].Round(time.Microsecond), steps[0],
			best[1].Round(time.Microsecond), steps[1], speedup)
		engResults.Benchmarks = append(engResults.Benchmarks, engineBench{
			Name:       w.name,
			InterpNs:   best[0].Nanoseconds(),
			CompiledNs: best[1].Nanoseconds(),
			Speedup:    speedup,
		})
	}
}

// timeQuery reports wall time and evaluator steps for one evaluation of a
// compiled query. Each evaluation runs under an open trace report labelled
// for the experiment table, so -report captures phase times and counters
// per timed query.
func timeQuery(s *repl.Session, label string, core ast.Expr) (time.Duration, int64) {
	s.Trace.Begin(label)
	start := time.Now()
	_, err := s.Eval(core)
	d := time.Since(start)
	rep := s.Trace.End(err)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqlbench:", err)
		os.Exit(1)
	}
	if reportSink != nil && rep != nil {
		reportSink.Emit(rep)
	}
	return d, s.LastSteps
}

func compile(s *repl.Session, src string, optimize bool) ast.Expr {
	core, _, err := s.Compile(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqlbench:", err)
		os.Exit(1)
	}
	if optimize {
		core = s.Env.Optimizer.Optimize(core)
	}
	return core
}

func runE4() {
	s := bench.MustSession()
	bench.SetupWeather(s)
	core := compile(s, bench.MotivatingQuery, true)
	d, steps := timeQuery(s, "e4:motivating", core)
	v, err := s.Eval(core)
	if err != nil {
		panic(err)
	}
	fmt.Printf("| result | wall time | evaluator steps |\n|---|---|---|\n")
	fmt.Printf("| %s | %v | %d |\n", v, d.Round(time.Microsecond), steps)
}

func runE6() {
	sizes := []int{100, 200, 400, 800}
	if *quick {
		sizes = []int{100, 200}
	}
	fmt.Printf("| n | zip (arrays) | steps | zip (set join) | steps | slowdown |\n|---|---|---|---|---|---|\n")
	for _, n := range sizes {
		s := bench.MustSession()
		bench.SetupZip(s, n)
		arr := compile(s, bench.ZipArrayQuery, true)
		setj := compile(s, bench.ZipSetsQuery, true)
		dA, stA := timeQuery(s, fmt.Sprintf("e6:zip-arrays n=%d", n), arr)
		dS, stS := timeQuery(s, fmt.Sprintf("e6:zip-sets n=%d", n), setj)
		fmt.Printf("| %d | %v | %d | %v | %d | %.1fx |\n",
			n, dA.Round(time.Microsecond), stA, dS.Round(time.Microsecond), stS,
			float64(dS)/float64(dA))
	}
}

func runE7() {
	sizes := []struct{ n, m int }{{100, 100}, {100, 400}, {100, 1600}, {400, 400}, {400, 1600}}
	if *quick {
		sizes = sizes[:2]
	}
	fmt.Printf("| n | m | hist | steps | hist' | steps | speedup |\n|---|---|---|---|---|---|---|\n")
	for _, sz := range sizes {
		s := bench.MustSession()
		if _, err := s.Exec(bench.HistMacros); err != nil {
			panic(err)
		}
		bench.SetupHist(s, sz.n, sz.m)
		slow := compile(s, "hist!A", true)
		fast := compile(s, "hist'!A", true)
		dS, stS := timeQuery(s, fmt.Sprintf("e7:hist n=%d m=%d", sz.n, sz.m), slow)
		dF, stF := timeQuery(s, fmt.Sprintf("e7:hist' n=%d m=%d", sz.n, sz.m), fast)
		fmt.Printf("| %d | %d | %v | %d | %v | %d | %.1fx |\n",
			sz.n, sz.m, dS.Round(time.Microsecond), stS, dF.Round(time.Microsecond), stF,
			float64(dS)/float64(dF))
	}
}

func runE8() {
	sizes := []int{50, 100, 200, 400}
	if *quick {
		sizes = sizes[:2]
	}
	fmt.Printf("| n | append chain | steps | row-major | steps | ratio |\n|---|---|---|---|---|---|\n")
	for _, n := range sizes {
		s := bench.MustSession()
		chain := bench.AppendChainExpr(n)
		row := bench.RowMajorExpr(n)
		dC, stC := timeQuery(s, fmt.Sprintf("e8:append-chain n=%d", n), chain)
		dR, stR := timeQuery(s, fmt.Sprintf("e8:row-major n=%d", n), row)
		fmt.Printf("| %d | %v | %d | %v | %d | %.1fx |\n",
			n, dC.Round(time.Microsecond), stC, dR.Round(time.Microsecond), stR,
			float64(dC)/float64(dR))
	}
}

func runE9() {
	n := 100000
	if *quick {
		n = 10000
	}
	fmt.Printf("| rule | query | naive steps | optimized steps |\n|---|---|---|---|\n")
	rows := []struct {
		rule string
		q    string
		e    ast.Expr
	}{
		{"beta^p", "[[ i*i | \\i < n ]][n/2]", bench.BetaPExpr(n)},
		{"eta^p", "[[ A[i] | \\i < len A ]]", bench.EtaPExpr()},
		{"delta^p", "len([[ i*i | \\i < n ]])", bench.DeltaPExpr(n)},
	}
	for _, r := range rows {
		s := bench.MustSession()
		bench.SetupVector(s, n)
		_, naive := timeQuery(s, "e9:"+r.rule+" naive", r.e)
		_, opt := timeQuery(s, "e9:"+r.rule+" optimized", s.Env.Optimizer.Optimize(r.e))
		fmt.Printf("| %s | `%s` | %d | %d |\n", r.rule, r.q, naive, opt)
	}
}

func runE10() {
	m, n := 300, 300
	if *quick {
		m, n = 60, 60
	}
	s := bench.MustSession()
	bench.SetupTranspose(s, m, n)
	naive := compile(s, bench.TransposeQuery, false)
	opt := compile(s, bench.TransposeQuery, true)
	dN, stN := timeQuery(s, "e10:transpose naive", naive)
	dO, stO := timeQuery(s, "e10:transpose fused", opt)
	fmt.Printf("| variant | wall time | steps |\n|---|---|---|\n")
	fmt.Printf("| transpose of a %dx%d tabulation, naive | %v | %d |\n", m, n, dN.Round(time.Microsecond), stN)
	fmt.Printf("| same, after normalization (fused) | %v | %d |\n", dO.Round(time.Microsecond), stO)
}

func runE11() {
	n := 4000
	if *quick {
		n = 500
	}
	fmt.Printf("| order | wall time | steps |\n|---|---|---|\n")
	for _, tc := range []struct{ name, q string }{
		{"subseq(zip(A,B))", bench.ZipThenSubseqQuery},
		{"zip(subseq A, subseq B)", bench.SubseqThenZipQuery},
	} {
		s := bench.MustSession()
		bench.SetupZipSubseq(s, n)
		core := compile(s, tc.q, true)
		d, st := timeQuery(s, "e11:"+tc.name, core)
		fmt.Printf("| %s | %v | %d |\n", tc.name, d.Round(time.Microsecond), st)
	}
}

func runE17() {
	dir, err := os.MkdirTemp("", "aqlbench")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "cache.nc")
	nb := netcdf.NewBuilder()
	ti, _ := nb.AddDim("time", 4000)
	la, _ := nb.AddDim("lat", 50)
	data := make([]float64, 4000*50)
	for i := range data {
		data[i] = float64(i % 89)
	}
	if err := nb.AddVar("temp", netcdf.Double, []int{ti, la}, nil, data); err != nil {
		panic(err)
	}
	if err := nb.WriteFile(path); err != nil {
		panic(err)
	}
	colScan := func(f *netcdf.File) time.Duration {
		start := time.Now()
		for c := 0; c < 50; c++ {
			if _, err := f.ReadSlab("temp", []int{0, c}, []int{4000, 1}); err != nil {
				panic(err)
			}
		}
		return time.Since(start)
	}
	plain, err := netcdf.Open(path)
	if err != nil {
		panic(err)
	}
	defer plain.Close()
	cached, err := netcdf.OpenCached(path, 1<<16, 64)
	if err != nil {
		panic(err)
	}
	defer cached.Close()
	dP := colScan(plain)
	dC := colScan(cached)
	fmt.Printf("| reader | 50 strided column reads | speedup |\n|---|---|---|\n")
	fmt.Printf("| uncached | %v | 1.0x |\n", dP.Round(time.Microsecond))
	fmt.Printf("| cached + readahead | %v | %.1fx |\n", dC.Round(time.Microsecond), float64(dP)/float64(dC))
	fmt.Printf("\nio stats: %+v\n", cached.IOStats())
}

func runA1() {
	s := bench.MustSession()
	bench.SetupWeather(s)
	core, _, err := s.Compile(bench.MotivatingQuery)
	if err != nil {
		panic(err)
	}
	fmt.Printf("| optimizer | wall time | steps |\n|---|---|---|\n")
	for _, variant := range []struct {
		name string
		e    ast.Expr
	}{
		{"none", core},
		{"normalize only", opt.NewNormalizeOnly().Optimize(core)},
		{"full pipeline", opt.New().Optimize(core)},
	} {
		d, steps := timeQuery(s, "a1:"+variant.name, variant.e)
		fmt.Printf("| %s | %v | %d |\n", variant.name, d.Round(time.Microsecond), steps)
	}
}

func runE15() {
	dir, err := os.MkdirTemp("", "aqlbench")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.nc")
	nb := netcdf.NewBuilder()
	ti, _ := nb.AddDim("time", 2000)
	la, _ := nb.AddDim("lat", 10)
	lo, _ := nb.AddDim("lon", 10)
	data := make([]float64, 2000*10*10)
	for i := range data {
		data[i] = float64(i % 97)
	}
	if err := nb.AddVar("temp", netcdf.Double, []int{ti, la, lo}, nil, data); err != nil {
		panic(err)
	}
	if err := nb.WriteFile(path); err != nil {
		panic(err)
	}
	f, err := netcdf.Open(path)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	fmt.Printf("| slab | wall time | MB/s |\n|---|---|---|\n")
	for _, count := range [][]int{{720, 10, 10}, {2000, 10, 10}, {2000, 1, 1}} {
		start := time.Now()
		slab, err := f.ReadSlab("temp", []int{0, 0, 0}, count)
		if err != nil {
			panic(err)
		}
		d := time.Since(start)
		mb := float64(slab.Size()*8) / (1 << 20)
		fmt.Printf("| %v | %v | %.0f |\n", count, d.Round(time.Microsecond), mb/d.Seconds())
	}
}
