package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aqldb/aql/internal/bench"
	"github.com/aqldb/aql/internal/server"
	"github.com/aqldb/aql/internal/trace"
)

// serverReport is the e21 payload: prepared-plan cache effect on request
// latency, and sustained throughput under concurrent load.
type serverReport struct {
	GOMAXPROCS  int     `json:"gomaxprocs"`
	ColdNs      int64   `json:"cold_ns_per_query"`
	CachedNs    int64   `json:"cached_ns_per_query"`
	Speedup     float64 `json:"speedup"`
	Concurrency int     `json:"qps_concurrency"`
	QPS         float64 `json:"sustained_qps"`
}

// srvResults holds the e21 measurements for -trajectory.
var srvResults *serverReport

// e21Query is the benchmarked request: heavy in the front half of the
// pipeline — zip/dom macro-expand into nested tabulations the optimizer
// then rewrites — and light in evaluation, so the cold/cached gap isolates
// what the plan cache saves.
const e21Query = `count!(dom!(zip!([[ i*i | \i < 64 ]], reverse!([[ i+1 | \i < 64 ]]))))`

func runE21() {
	sess := bench.MustSession()
	srv := server.New(sess, server.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(query string) time.Duration {
		body, err := json.Marshal(server.QueryRequest{Query: query})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintln(os.Stderr, "aqlbench:", err)
			os.Exit(1)
		}
		d := time.Since(start)
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "aqlbench: e21 query status %d\n", resp.StatusCode)
			os.Exit(1)
		}
		resp.Body.Close()
		return d
	}

	cold, warm := 40, 400
	window := 2 * time.Second
	if *quick {
		cold, warm = 10, 50
		window = 300 * time.Millisecond
	}

	// Cold latency: every query distinct, so every request pays a full
	// prepare (the +k constant folds away in evaluation cost).
	var coldTotal time.Duration
	for k := 0; k < cold; k++ {
		coldTotal += post(fmt.Sprintf("%s + %d", e21Query, k))
	}
	coldNs := coldTotal.Nanoseconds() / int64(cold)

	// Cached latency: one plan, executed repeatedly (first request warms).
	post(e21Query)
	var warmTotal time.Duration
	for k := 0; k < warm; k++ {
		warmTotal += post(e21Query)
	}
	cachedNs := warmTotal.Nanoseconds() / int64(warm)

	// Sustained QPS: GOMAXPROCS-many workers hammering the cached plan for
	// a fixed window.
	workers := runtime.GOMAXPROCS(0)
	var done atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(window)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				post(e21Query)
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	qps := float64(done.Load()) / window.Seconds()

	speedup := float64(coldNs) / float64(cachedNs)
	srvResults = &serverReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		ColdNs:      coldNs,
		CachedNs:    cachedNs,
		Speedup:     speedup,
		Concurrency: workers,
		QPS:         qps,
	}

	cs := srv.CacheStats()
	fmt.Printf("| metric | value |\n|---|---|\n")
	fmt.Printf("| cold request (full prepare), mean of %d | %v |\n", cold, time.Duration(coldNs).Round(time.Microsecond))
	fmt.Printf("| cached-plan request, mean of %d | %v |\n", warm, time.Duration(cachedNs).Round(time.Microsecond))
	fmt.Printf("| cold / cached | %.1fx |\n", speedup)
	fmt.Printf("| sustained QPS (%d workers, %v) | %.0f |\n", workers, window, qps)
	fmt.Printf("| plan cache | %d hits, %d misses |\n", cs.Hits, cs.Misses)
}

// runE23 exercises the per-plan stats store: a templated workload — a few
// distinct query shapes, each executed at different frequencies — runs
// through the server, then /debug/planstats is scraped and its per-plan
// profiles (execution counts, cache-hit ratios, cell and latency EWMAs)
// are tabulated. The store is the substrate the feedback-directed
// optimizer roadmap item reads: it must attribute work to plans, not to
// individual requests.
func runE23() {
	sess := bench.MustSession()
	srv := server.New(sess, server.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(query string) {
		body, err := json.Marshal(server.QueryRequest{Query: query})
		if err != nil {
			panic(err)
		}
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintln(os.Stderr, "aqlbench:", err)
			os.Exit(1)
		}
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "aqlbench: e23 query status %d\n", resp.StatusCode)
			os.Exit(1)
		}
		resp.Body.Close()
	}

	n, hot := 20000, 60
	if *quick {
		n, hot = 2000, 12
	}

	// A skewed workload over three plan shapes: one hot plan executed
	// repeatedly (all cache hits after the first), one warm plan with a
	// different cell count, and a spread of cold one-off template
	// instances that each pay a full prepare.
	hotQ := fmt.Sprintf(`[[ (i*i + 11*i + 7) %% 97 | \i < %d ]]`, n)
	warmQ := fmt.Sprintf(`count!(dom!([[ i + 1 | \i < %d ]]))`, n/2)
	for k := 0; k < hot; k++ {
		post(hotQ)
	}
	for k := 0; k < hot/3; k++ {
		post(warmQ)
	}
	for k := 0; k < 5; k++ {
		post(fmt.Sprintf("%s + %d", e21Query, k))
	}

	resp, err := http.Get(ts.URL + "/debug/planstats")
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqlbench:", err)
		os.Exit(1)
	}
	var snap trace.PlanStatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		fmt.Fprintln(os.Stderr, "aqlbench: decode /debug/planstats:", err)
		os.Exit(1)
	}
	resp.Body.Close()

	fmt.Printf("| plan (cache key, truncated) | queries | cache hits | cells EWMA | latency EWMA |\n|---|---|---|---|---|\n")
	for _, p := range snap.Plans {
		key := p.Key
		if len(key) > 40 {
			key = key[:37] + "..."
		}
		fmt.Printf("| `%s` | %d | %d | %.0f | %v |\n",
			key, p.Queries, p.CacheHits, p.CellsEWMA, p.LatencyEWMA.Round(time.Microsecond))
	}
	fmt.Printf("\n%d plans tracked, %d evicted; profiles outlive the flight recorder's per-report ring\n",
		len(snap.Plans), snap.Evictions)
}
