package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/aqldb/aql/internal/bench"
	"github.com/aqldb/aql/internal/cluster"
	"github.com/aqldb/aql/internal/server"
)

// clusterReport is the e22 payload: scatter-gather cost relative to a
// single-node baseline, and hedging's effect on tail latency when one
// shard deterministically straggles. Ratio is local/distributed: above 1
// the scatter paid off, below 1 the coordination overhead dominated
// (expected whenever GOMAXPROCS gives the in-process workers no extra
// cores to run on).
type clusterReport struct {
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Workers       int     `json:"workers"`
	LocalNs       int64   `json:"local_ns_per_query"`
	DistNs        int64   `json:"distributed_ns_per_query"`
	Ratio         float64 `json:"local_over_distributed"`
	TailQueries   int     `json:"tail_queries"`
	UnhedgedP50Ns int64   `json:"unhedged_p50_ns"`
	UnhedgedP99Ns int64   `json:"unhedged_p99_ns"`
	HedgedP50Ns   int64   `json:"hedged_p50_ns"`
	HedgedP99Ns   int64   `json:"hedged_p99_ns"`
	HedgeWins     int64   `json:"hedge_wins"`
}

// clusterResults holds the e22 measurements for -trajectory.
var clusterResults *clusterReport

// e22Workers is the worker count of the scatter-gather comparison. Every
// node runs with Workers=1 (no intra-node fan-out), so any speedup is the
// cluster's, not the tabulation kernel's.
const e22Workers = 2

// e22Query is the scatter workload: a compute-heavy head (an inner
// reduction per element), so shard transport and merge cost is amortized
// and the scatter has real work to divide. The reduction length depends
// on i — a constant one is loop-invariant and the optimizer would hoist
// it into a let, taking the tabulation out of top-level (and thus
// shardable) position.
func e22Query(n int) string {
	return fmt.Sprintf(`[[ summap(fn \j => (i*j) %% 7)!(gen!(100 + i %% 101)) | \i < %d ]]`, n)
}

// e22TailQuery is the straggler workload: deliberately cheap, so a
// shard's wall time is transport-dominated and the injected stall — a
// timer, not compute — towers over it. Hedging then pays even on one
// core: the hedge re-dispatch costs milliseconds of real work and saves
// the full stall.
func e22TailQuery(n int) string {
	return fmt.Sprintf(`[[ (i*i + 11*i + 7) %% 97 | \i < %d ]]`, n)
}

// newE22Worker starts an in-process worker aqld with intra-node
// parallelism off.
func newE22Worker() *httptest.Server {
	return httptest.NewServer(server.New(bench.MustSession(), server.Config{Workers: 1}))
}

func postE22(ts *httptest.Server, query string) (time.Duration, string) {
	body, err := json.Marshal(server.QueryRequest{Query: query})
	if err != nil {
		panic(err)
	}
	start := time.Now()
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "aqlbench:", err)
		os.Exit(1)
	}
	d := time.Since(start)
	var qr server.QueryResponse
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "aqlbench: e22 query status %d\n", resp.StatusCode)
		os.Exit(1)
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		fmt.Fprintln(os.Stderr, "aqlbench:", err)
		os.Exit(1)
	}
	resp.Body.Close()
	return d, qr.Mode
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func runE22() {
	n, tailN, reps, tailQ := 6000, 4000, 12, 120
	stragglerDelay := 60 * time.Millisecond
	hedgeAfter := 10 * time.Millisecond
	if *quick {
		n, tailN, reps, tailQ = 2000, 2000, 4, 30
		stragglerDelay = 40 * time.Millisecond
	}
	query := e22Query(n)

	// Single-node baseline: same server code, no coordinator, Workers=1.
	local := newE22Worker()
	defer local.Close()
	postE22(local, query) // warm the plan cache
	var localTotal time.Duration
	for k := 0; k < reps; k++ {
		d, _ := postE22(local, query)
		localTotal += d
	}
	localNs := localTotal.Nanoseconds() / int64(reps)

	// Scatter-gather over e22Workers in-process workers.
	workers := make([]string, e22Workers)
	for i := range workers {
		w := newE22Worker()
		defer w.Close()
		workers[i] = w.URL
	}
	coord := cluster.New(cluster.Config{
		Workers:   workers,
		Transport: &cluster.HTTPTransport{},
		MinCells:  1,
	})
	dist := httptest.NewServer(server.New(bench.MustSession(), server.Config{Workers: 1, Coordinator: coord}))
	defer dist.Close()
	postE22(dist, query) // warm coordinator and worker caches
	var distTotal time.Duration
	for k := 0; k < reps; k++ {
		d, mode := postE22(dist, query)
		distTotal += d
		if mode != "distributed" {
			fmt.Fprintf(os.Stderr, "aqlbench: e22 scatter ran in mode %q, want distributed\n", mode)
			os.Exit(1)
		}
	}
	distNs := distTotal.Nanoseconds() / int64(reps)
	ratio := float64(localNs) / float64(distNs)

	// Tail latency: shard 0's first attempt always straggles (a
	// deterministic ChaosTransport stall — the benchmark analogue of a
	// slow replica; the worker is delayed, not working). Unhedged, every
	// query eats the stall; hedged, a second dispatch races it after
	// hedgeAfter and wins.
	tq := e22TailQuery(tailN)
	tail := func(hedge time.Duration) ([]time.Duration, int64) {
		chaos := &cluster.ChaosTransport{Inner: &cluster.HTTPTransport{}}
		// The schedule is keyed (shard, attempt) and attempt numbers
		// restart per query, so one entry covers every query's shard 0.
		chaos.Fail(0, 0, cluster.ChaosFault{Kind: cluster.FaultDelay, Delay: stragglerDelay})
		c := cluster.New(cluster.Config{
			Workers:    workers,
			Transport:  chaos,
			MinCells:   1,
			HedgeAfter: hedge,
		})
		ts := httptest.NewServer(server.New(bench.MustSession(), server.Config{Workers: 1, Coordinator: c}))
		defer ts.Close()
		postE22(ts, tq)
		winsBefore := c.Stats().HedgeWins.Load() // exclude the warm-up query
		lat := make([]time.Duration, tailQ)
		for k := range lat {
			d, _ := postE22(ts, tq)
			lat[k] = d
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat, c.Stats().HedgeWins.Load() - winsBefore
	}
	unhedged, _ := tail(0)
	hedged, wins := tail(hedgeAfter)

	clusterResults = &clusterReport{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       e22Workers,
		LocalNs:       localNs,
		DistNs:        distNs,
		Ratio:         ratio,
		TailQueries:   tailQ,
		UnhedgedP50Ns: percentile(unhedged, 0.5).Nanoseconds(),
		UnhedgedP99Ns: percentile(unhedged, 0.99).Nanoseconds(),
		HedgedP50Ns:   percentile(hedged, 0.5).Nanoseconds(),
		HedgedP99Ns:   percentile(hedged, 0.99).Nanoseconds(),
		HedgeWins:     wins,
	}

	r := clusterResults
	fmt.Printf("| metric | value |\n|---|---|\n")
	fmt.Printf("| single-node query (Workers=1), mean of %d | %v |\n", reps, time.Duration(r.LocalNs).Round(time.Microsecond))
	fmt.Printf("| scatter-gather over %d workers, mean of %d | %v |\n", e22Workers, reps, time.Duration(r.DistNs).Round(time.Microsecond))
	fmt.Printf("| local / distributed (GOMAXPROCS=%d) | %.2fx |\n", r.GOMAXPROCS, r.Ratio)
	fmt.Printf("| straggler (%v stall on one shard), unhedged p50 / p99 of %d | %v / %v |\n",
		stragglerDelay, tailQ, time.Duration(r.UnhedgedP50Ns).Round(time.Microsecond), time.Duration(r.UnhedgedP99Ns).Round(time.Microsecond))
	fmt.Printf("| hedged (hedge-after %v) p50 / p99 | %v / %v |\n",
		hedgeAfter, time.Duration(r.HedgedP50Ns).Round(time.Microsecond), time.Duration(r.HedgedP99Ns).Round(time.Microsecond))
	fmt.Printf("| hedge wins | %d of %d |\n", r.HedgeWins, tailQ)
}
