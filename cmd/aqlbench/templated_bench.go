package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"github.com/aqldb/aql/internal/bench"
	"github.com/aqldb/aql/internal/server"
)

// templatedReport is the e24 payload: the plan-cache effect of shipping a
// workload as one $-placeholder template with per-request argument frames,
// against the same workload with the arguments substituted as literals
// (every request a distinct cache key, every request a full prepare).
type templatedReport struct {
	GOMAXPROCS       int     `json:"gomaxprocs"`
	Executions       int     `json:"executions"`
	LiteralNs        int64   `json:"literal_ns_per_query"`
	TemplatedNs      int64   `json:"templated_ns_per_query"`
	Speedup          float64 `json:"speedup"`
	LiteralHitRate   float64 `json:"literal_hit_rate"`
	TemplatedHitRate float64 `json:"templated_hit_rate"`
}

// tmplResults holds the e24 measurements for -trajectory / -failworse.
var tmplResults *templatedReport

// e24Template is e21Query with the workload's varying constants lifted to
// placeholders: heavy in the front half of the pipeline (macro expansion
// into nested tabulations the optimizer rewrites), light in evaluation, so
// the literal/templated gap isolates what template-keyed caching saves.
const e24Template = `count!(dom!(zip!([[ i*i + $a | \i < 64 ]], reverse!([[ i + $b | \i < 64 ]]))))`

func runE24() {
	n := 400
	if *quick {
		n = 60
	}

	post := func(ts *httptest.Server, req server.QueryRequest) time.Duration {
		body, err := json.Marshal(req)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintln(os.Stderr, "aqlbench:", err)
			os.Exit(1)
		}
		d := time.Since(start)
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "aqlbench: e24 query status %d\n", resp.StatusCode)
			os.Exit(1)
		}
		resp.Body.Close()
		return d
	}

	// Literal workload: each argument pair substituted into the text, so
	// every request is a distinct plan key and pays a full prepare.
	litSrv := server.New(bench.MustSession(), server.Config{})
	litTS := httptest.NewServer(litSrv)
	defer litTS.Close()
	var litTotal time.Duration
	for k := 0; k < n; k++ {
		q := fmt.Sprintf(`count!(dom!(zip!([[ i*i + %d | \i < 64 ]], reverse!([[ i + %d | \i < 64 ]]))))`, k, k+1)
		litTotal += post(litTS, server.QueryRequest{Query: q})
	}
	litCS := litSrv.CacheStats()
	litHitRate := float64(litCS.Hits) / float64(litCS.Hits+litCS.Misses)
	litNs := litTotal.Nanoseconds() / int64(n)

	// Templated workload: the same argument pairs bound as frames against
	// one template. One warming request pays the prepare; the measured
	// requests all hit the template-keyed plan.
	tmplSrv := server.New(bench.MustSession(), server.Config{})
	tmplTS := httptest.NewServer(tmplSrv)
	defer tmplTS.Close()
	post(tmplTS, server.QueryRequest{Query: e24Template,
		Args: map[string]string{"a": "0", "b": "1"}})
	before := tmplSrv.CacheStats()
	var tmplTotal time.Duration
	for k := 0; k < n; k++ {
		tmplTotal += post(tmplTS, server.QueryRequest{Query: e24Template,
			Args: map[string]string{"a": fmt.Sprint(k), "b": fmt.Sprint(k + 1)}})
	}
	after := tmplSrv.CacheStats()
	tmplHitRate := float64(after.Hits-before.Hits) / float64(n)
	tmplNs := tmplTotal.Nanoseconds() / int64(n)

	speedup := float64(litNs) / float64(tmplNs)
	tmplResults = &templatedReport{
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Executions:       n,
		LiteralNs:        litNs,
		TemplatedNs:      tmplNs,
		Speedup:          speedup,
		LiteralHitRate:   litHitRate,
		TemplatedHitRate: tmplHitRate,
	}

	fmt.Printf("| workload (%d executions, distinct argument pairs) | ns/query | plan-cache hit rate |\n|---|---|---|\n", n)
	fmt.Printf("| literal substitution (distinct query text each) | %v | %.1f%% |\n",
		time.Duration(litNs).Round(time.Microsecond), 100*litHitRate)
	fmt.Printf("| one template + argument frames | %v | %.1f%% |\n",
		time.Duration(tmplNs).Round(time.Microsecond), 100*tmplHitRate)
	fmt.Printf("| templated speedup | %.1fx | |\n", speedup)
}
