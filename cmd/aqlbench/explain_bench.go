package main

// e25 puts the estimate-vs-actual observability layer itself under the
// microscope: what does joining prepare-time estimates against the full
// profile's span tree add to a query's wall time, and how accurate are the
// estimates on statically-bounded workloads? The join overhead is gated in
// CI via -failworse (<= 10% over the plain full-profile run, matching the
// span-overhead budget); the accuracy tally is the E25 table of
// EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/aqldb/aql/internal/bench"
	"github.com/aqldb/aql/internal/cost"
	"github.com/aqldb/aql/internal/repl"
)

// explainBench is one row of the e25 join-overhead comparison; ns figures
// are the best of the measurement repetitions, as in e19.
type explainBench struct {
	Name     string  `json:"name"`
	FullNs   int64   `json:"full_prof_ns_per_op"`
	JoinNs   int64   `json:"full_prof_join_ns_per_op"`
	Overhead float64 `json:"join_overhead"`
}

// explainReport is the e25 payload: the join overhead per workload plus the
// estimator's accuracy tally over the statically-bounded corpus.
type explainReport struct {
	Benchmarks  []explainBench `json:"benchmarks"`
	RowsExact   int            `json:"rows_exact"`
	RowsKnown   int            `json:"rows_known"`
	RowsUnknown int            `json:"rows_unknown"`
	RowsFlagged int            `json:"rows_flagged"`
	WorstQError float64        `json:"worst_q_error"`
}

// e25Results holds the e25 measurements for -failworse.
var e25Results *explainReport

// e25MaxOverhead is the -failworse gate: the estimate join may add at most
// this fraction to a full-profile run's wall time.
const e25MaxOverhead = 0.10

func newE25Session() *repl.Session {
	s := bench.MustSession()
	if err := s.SetProfiling("full"); err != nil {
		panic(err)
	}
	if _, err := s.Exec(bench.EngineSetup); err != nil {
		panic(err)
	}
	return s
}

func runE25() {
	reps := 5
	if *quick {
		reps = 3
	}
	e25Results = &explainReport{}

	// Join overhead: the same full-profile evaluation, with and without the
	// estimate-vs-actual join folded into the report. The estimate tree is
	// computed once outside the loop — at a server it is built at prepare
	// time and rides the cached plan, so per-execution cost is the join
	// alone.
	workloads := []struct{ name, query string }{
		{"matmul", `[[ summap(fn \k => A[i,k] * B[k,j])!(gen!n) | \i < n, \j < n ]]`},
		{"puretab", `[[ (i*i + 7) % 93 | \i < 100000 ]]`},
	}
	fmt.Printf("| workload | full prof | full prof + join | overhead |\n|---|---|---|---|\n")
	for _, w := range workloads {
		s := newE25Session()
		core, _, err := s.Compile(w.query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aqlbench:", err)
			os.Exit(1)
		}
		opt := s.Optimize(core)
		est := cost.Estimate(opt, s.Env.Globals())
		var base, joined time.Duration
		for r := 0; r < reps; r++ {
			s.Trace.Begin("e25:" + w.name)
			start := time.Now()
			_, err := s.Eval(opt)
			d := time.Since(start)
			s.Trace.End(err)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aqlbench:", err)
				os.Exit(1)
			}
			if r == 0 || d < base {
				base = d
			}

			s.Trace.Begin("e25:" + w.name + "+join")
			start = time.Now()
			_, err = s.Eval(opt)
			s.Trace.JoinExplain(est, 0)
			d = time.Since(start)
			rep := s.Trace.End(err)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aqlbench:", err)
				os.Exit(1)
			}
			if rep == nil || rep.Explain == nil {
				fmt.Fprintln(os.Stderr, "aqlbench: e25: no explain table joined")
				os.Exit(1)
			}
			if r == 0 || d < joined {
				joined = d
			}
		}
		overhead := float64(joined)/float64(base) - 1
		fmt.Printf("| %s | %v | %v | %+.1f%% |\n",
			w.name, base.Round(time.Microsecond), joined.Round(time.Microsecond), 100*overhead)
		e25Results.Benchmarks = append(e25Results.Benchmarks, explainBench{
			Name:     w.name,
			FullNs:   base.Nanoseconds(),
			JoinNs:   joined.Nanoseconds(),
			Overhead: overhead,
		})
	}

	// Estimator accuracy: run the statically-bounded corpus through the
	// full :explain analyze pipeline and tally the per-operator rows. Known
	// estimates are exact by construction (q-error 1.0); parameter- and
	// data-dependent operators must report unknown rather than a fabricated
	// number, so they land in the unknown bucket, never the flagged one.
	corpus := []struct{ name, query string }{
		{"matmul", `[[ summap(fn \k => A[i,k] * B[k,j])!(gen!n) | \i < n, \j < n ]]`},
		{"puretab", `[[ (i*i + 7) % 93 | \i < 2000 ]]`},
		{"gen", `gen!500`},
		{"sumsq", `summap(fn \x => x * x)!(gen!200)`},
	}
	fmt.Printf("\n| query | rows | exact (q=1) | known | unknown | flagged | worst q-err |\n|---|---|---|---|---|---|---|\n")
	for _, c := range corpus {
		s := newE25Session()
		table, _, _, err := s.ExplainAnalyzeTable(context.Background(), c.query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aqlbench:", err)
			os.Exit(1)
		}
		exact, known, unknown, flagged := 0, 0, 0, 0
		worst := 0.0
		for _, row := range table.Rows {
			switch {
			case !row.EstCells.Known && !row.EstCost.Known:
				unknown++
			case row.QError == 1.0:
				exact++
				known++
			default:
				known++
			}
			if row.Flagged {
				flagged++
			}
			if row.QError > worst {
				worst = row.QError
			}
		}
		fmt.Printf("| %s | %d | %d | %d | %d | %d | %.2f |\n",
			c.name, len(table.Rows), exact, known, unknown, flagged, worst)
		e25Results.RowsExact += exact
		e25Results.RowsKnown += known
		e25Results.RowsUnknown += unknown
		e25Results.RowsFlagged += flagged
		if worst > e25Results.WorstQError {
			e25Results.WorstQError = worst
		}
	}
}
