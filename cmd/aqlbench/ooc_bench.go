package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
	"unsafe"

	"github.com/aqldb/aql/internal/bench"
	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/repl"
)

// oocReport is the e26 payload: out-of-core execution of a sequential scan
// over a NetCDF variable several times the tile-cache budget. The headline
// figures are the tile hit rate (per-cell lookups served from resident
// tiles) and bytes scanned vs. returned (read amplification); CI gates the
// hit rate with -failworse.
type oocReport struct {
	Cells         int     `json:"cells"`
	TileCells     int     `json:"tile_cells"`
	BudgetBytes   int64   `json:"budget_bytes"`
	PeakBytes     int64   `json:"peak_bytes"`
	LazyNs        int64   `json:"lazy_ns"`
	EagerNs       int64   `json:"eager_ns"`
	TileHitRate   float64 `json:"tile_hit_rate"`
	PrefetchRate  float64 `json:"prefetch_useful_rate"`
	BytesScanned  int64   `json:"bytes_scanned"`
	BytesReturned int64   `json:"bytes_returned"`
	Evictions     int64   `json:"evictions"`
}

// e26Results holds the e26 measurements for -trajectory / -failworse.
var e26Results *oocReport

// e26MinHitRate is the CI gate: a sequential scan with prefetch must serve
// at least this fraction of cell lookups from resident tiles.
const e26MinHitRate = 0.90

func runE26() {
	cells := 1 << 18 // 256k cells, 2 MiB of doubles on disk
	tileCells := 4096
	if *quick {
		cells = 1 << 14
		tileCells = 1024
	}
	cellBytes := int64(unsafe.Sizeof(object.Value{}))
	// A budget admitting ~1/8th of the variable (at least 4 tiles, so the
	// demand tile and its readahead never thrash): the scan must evict.
	budgetCells := cells / 8
	if min := 4 * tileCells; budgetCells < min {
		budgetCells = min
	}
	budget := int64(budgetCells) * cellBytes

	dir, err := os.MkdirTemp("", "aqlbench")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ooc.nc")
	nb := netcdf.NewBuilder()
	d0, _ := nb.AddDim("x", cells)
	data := make([]float64, cells)
	for i := range data {
		data[i] = float64(i % 97)
	}
	if err := nb.AddVar("series", netcdf.Double, []int{d0}, nil, data); err != nil {
		panic(err)
	}
	if err := nb.WriteFile(path); err != nil {
		panic(err)
	}

	read := fmt.Sprintf(`readval \W using NETCDF at (%q, "series");`, path)
	scan := fmt.Sprintf(`summap(fn \i => W[i])!(gen!%d);`, cells)

	run := func(cfg func(*repl.Session)) (time.Duration, *repl.Session) {
		s := bench.MustSession()
		cfg(s)
		if _, err := s.Exec(read); err != nil {
			panic(err)
		}
		start := time.Now()
		if _, err := s.Exec(scan); err != nil {
			panic(err)
		}
		d := time.Since(start)
		if reportSink != nil {
			if rep := s.Trace.Last(); rep != nil {
				reportSink.Emit(rep)
			}
		}
		return d, s
	}

	dEager, se := run(func(s *repl.Session) { s.SetLazyReads(false) })
	se.Close()
	dLazy, sl := run(func(s *repl.Session) { s.SetTileConfig(tileCells, budget, false) })
	defer sl.Close()

	st := sl.TileCache().Stats()
	lookups := st.TileHits + st.TileMisses
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(st.TileHits) / float64(lookups)
	}
	prefRate := 0.0
	if st.Prefetches > 0 {
		prefRate = float64(st.PrefetchUseful) / float64(st.Prefetches)
	}
	e26Results = &oocReport{
		Cells:         cells,
		TileCells:     tileCells,
		BudgetBytes:   budget,
		PeakBytes:     sl.TileCache().PeakResident(),
		LazyNs:        dLazy.Nanoseconds(),
		EagerNs:       dEager.Nanoseconds(),
		TileHitRate:   hitRate,
		PrefetchRate:  prefRate,
		BytesScanned:  st.BytesScanned,
		BytesReturned: st.BytesReturned,
		Evictions:     st.Evictions,
	}

	fmt.Printf("| cells | budget | peak resident | eager scan | lazy scan | hit rate | prefetch useful | scanned/returned | evictions |\n")
	fmt.Printf("|---|---|---|---|---|---|---|---|---|\n")
	fmt.Printf("| %d | %d B | %d B | %v | %v | %.1f%% | %.1f%% | %d/%d | %d |\n",
		cells, budget, e26Results.PeakBytes,
		dEager.Round(time.Microsecond), dLazy.Round(time.Microsecond),
		100*hitRate, 100*prefRate, st.BytesScanned, st.BytesReturned, st.Evictions)
	if e26Results.PeakBytes > budget {
		fmt.Printf("\nWARNING: peak residency %d exceeds the %d-byte budget\n", e26Results.PeakBytes, budget)
	}
}
