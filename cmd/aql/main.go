// Command aql is the AQL read-eval-print loop (section 4.2 of the paper).
//
// Usage:
//
//	aql                 interactive loop; statements end with ';'
//	aql -f script.aql   execute a script of top-level statements
//	aql -q 'query'      run one query and print its value
//
// The loop echoes declarations the way the paper's session does:
//
//	: {d | \d <- gen!30, d % 7 = 0};
//	typ it : {nat}
//	val it = {0, 7, 14, 21, 28}
//
// Ctrl-C while a query is running cancels that query (the evaluator aborts
// with a structured cancellation error) and returns to the prompt; Ctrl-C
// at an idle prompt exits as usual. The -maxsteps, -maxcells, -maxdepth and
// -timeout flags bound what any single query may consume.
//
// Queries run on the compiled execution engine by default; `-engine interp`
// selects the reference tree-walking interpreter instead, and the
// interactive `:engine` command switches mid-session.
//
// Observability: `-explain` and `-profile` (with -q) print the optimizer
// rule trace or the per-phase timing report for the query; the interactive
// loop accepts the same as :explain/:profile/:stats commands plus :top
// (hottest operators of the last query), :fleet (cross-query aggregates),
// :prof (profiling level) and :trace (export the last query as Chrome
// trace-event JSON). `-tracejson file.json` (with -q) writes the same
// export non-interactively. `-proflevel off|sampled|full` sets the
// operator-profiling level (default sampled), and `-metricsaddr :8080`
// serves a JSON summary on /, Prometheus text on /metrics (OpenMetrics
// with exemplars via Accept negotiation), the flight recorder on
// /debug/queries, per-report Chrome traces on /debug/trace/{id}, the
// slow-query log on /debug/slow, and the standard pprof handlers under
// /debug/pprof/.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"github.com/aqldb/aql"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/trace"
)

func main() {
	file := flag.String("f", "", "execute a script file of AQL statements")
	query := flag.String("q", "", "run a single query and exit")
	limit := flag.Int("limit", 12, "maximum collection elements to print (0 = all)")
	maxSteps := flag.Int64("maxsteps", 0, "abort queries after this many evaluator steps (0 = unlimited)")
	maxCells := flag.Int64("maxcells", 0, "abort queries that allocate more than this many collection/array cells (0 = unlimited)")
	maxDepth := flag.Int("maxdepth", 0, "abort queries that recurse deeper than this many evaluator frames (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort queries that run longer than this, e.g. 5s (0 = unlimited)")
	explain := flag.Bool("explain", false, "with -q: print the optimized query and the optimizer rule trace instead of evaluating")
	explainAnalyze := flag.Bool("explain-analyze", false, "with -q: run the query at full profiling and print the per-operator estimate-vs-actual table")
	profile := flag.Bool("profile", false, "with -q: after the value, print per-phase wall times and work counters")
	traceJSON := flag.String("tracejson", "", "with -q: write the query's trace as Chrome trace-event JSON to this file")
	metricsAddr := flag.String("metricsaddr", "", "serve observability counters as JSON over HTTP on this address, e.g. :8080")
	engine := flag.String("engine", "compiled", "execution engine: compiled (closure-compiled, parallel tabulation) or interp (reference interpreter)")
	profLevel := flag.String("proflevel", "sampled", "operator profiling level: off, sampled, or full")
	tileCells := flag.Int("tilesize", 0, "out-of-core tile size in cells (0 = default 4096)")
	tileBudget := flag.Int64("tilebudget", 0, "out-of-core tile cache budget in bytes (0 = default 64 MiB)")
	eagerReads := flag.Bool("eagerreads", false, "materialize NetCDF reads eagerly instead of lazily tiling them")
	flag.Parse()

	s, err := aql.NewSession()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aql:", err)
		os.Exit(1)
	}
	defer s.Close()
	if *tileCells > 0 || *tileBudget > 0 {
		s.SetTileConfig(*tileCells, *tileBudget)
	}
	if *eagerReads {
		s.SetLazyReads(false)
	}
	if err := s.SetEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "aql:", err)
		os.Exit(1)
	}
	if err := s.SetProfiling(*profLevel); err != nil {
		fmt.Fprintln(os.Stderr, "aql:", err)
		os.Exit(1)
	}
	s.SetLimits(aql.Limits{
		MaxSteps: *maxSteps,
		MaxCells: *maxCells,
		MaxDepth: *maxDepth,
		Timeout:  *timeout,
	})
	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, s.MetricsHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "aql: metrics:", err)
			}
		}()
	}

	switch {
	case *query != "" && *explain:
		out, err := s.Explain(*query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aql:", err)
			os.Exit(1)
		}
		fmt.Print(out)
	case *query != "" && *explainAnalyze:
		out, err := func() (string, error) {
			ctx, stop := repl.NotifyInterrupt(context.Background())
			defer stop()
			return s.ExplainAnalyze(ctx, *query)
		}()
		if err != nil {
			fmt.Fprintln(os.Stderr, "aql:", err)
			os.Exit(1)
		}
		fmt.Print(out)
	case *query != "":
		v, typ, err := func() (aql.Value, *aql.Type, error) {
			ctx, stop := repl.NotifyInterrupt(context.Background())
			defer stop()
			return s.QueryCtx(ctx, *query)
		}()
		if err != nil {
			fmt.Fprintln(os.Stderr, "aql:", err)
			os.Exit(1)
		}
		fmt.Printf("typ it : %s\n", typ)
		fmt.Printf("val it = %s\n", v.Pretty(*limit))
		if *profile {
			if rep := s.LastReport(); rep != nil {
				fmt.Print(rep.FormatProfile())
			}
		}
		if *traceJSON != "" {
			rep := s.LastReport()
			if rep == nil {
				fmt.Fprintln(os.Stderr, "aql: -tracejson: no report recorded (tracing disabled?)")
				os.Exit(1)
			}
			if err := writeTraceFile(*traceJSON, rep); err != nil {
				fmt.Fprintln(os.Stderr, "aql:", err)
				os.Exit(1)
			}
		}
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aql:", err)
			os.Exit(1)
		}
		results, err := func() ([]aql.Result, error) {
			ctx, stop := repl.NotifyInterrupt(context.Background())
			defer stop()
			return s.ExecCtx(ctx, string(src))
		}()
		for _, r := range results {
			printResult(r, *limit)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "aql:", err)
			os.Exit(1)
		}
	default:
		interact(s, *limit)
	}
}

// interact runs the interactive loop, accumulating input lines until a
// statement-terminating semicolon. Each statement batch runs under a
// SIGINT-cancelled context so Ctrl-C aborts the running query and the loop
// survives to read the next one.
func interact(s *aql.Session, limit int) {
	fmt.Println("AQL — a query language for multidimensional arrays (SIGMOD 1996)")
	fmt.Println(`End statements with ';'. Ctrl-D exits; Ctrl-C cancels a running query.`)
	fmt.Println(`Commands: :explain <q>  :profile <q>  :stats  :top  :trace  :fleet  :prof  :engine  :help`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := ": "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		// Colon-commands are line-oriented: dispatch immediately, no
		// semicolon needed, and don't mix into a pending statement.
		if buf.Len() == 0 && aql.IsCommand(line) {
			out, err := func() (string, error) {
				ctx, stop := repl.NotifyInterrupt(context.Background())
				defer stop()
				return s.Command(ctx, strings.TrimSuffix(strings.TrimSpace(line), ";"))
			}()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(out)
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = ":: "
			continue
		}
		src := buf.String()
		buf.Reset()
		prompt = ": "
		results, err := func() ([]aql.Result, error) {
			ctx, stop := repl.NotifyInterrupt(context.Background())
			defer stop()
			return s.ExecCtx(ctx, src)
		}()
		for _, r := range results {
			printResult(r, limit)
		}
		if err != nil {
			fmt.Println("error:", err)
		}
	}
}

// writeTraceFile exports a report as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto.
func writeTraceFile(path string, rep *aql.QueryReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printResult(r aql.Result, limit int) {
	switch r.Kind {
	case "macro":
		fmt.Printf("typ %s : %s\n", r.Name, r.Type)
		if r.Source != "" {
			fmt.Printf("val %s = %s registered as macro.\n", r.Name, r.Source)
		} else {
			fmt.Printf("val %s registered as macro.\n", r.Name)
		}
	case "writeval":
		fmt.Println("written.")
	default:
		if r.Type != nil {
			fmt.Printf("typ %s : %s\n", r.Name, r.Type)
		}
		if r.HasValue {
			fmt.Printf("val %s = %s\n", r.Name, r.Value.Pretty(limit))
		}
	}
}
