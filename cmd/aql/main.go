// Command aql is the AQL read-eval-print loop (section 4.2 of the paper).
//
// Usage:
//
//	aql                 interactive loop; statements end with ';'
//	aql -f script.aql   execute a script of top-level statements
//	aql -q 'query'      run one query and print its value
//
// The loop echoes declarations the way the paper's session does:
//
//	: {d | \d <- gen!30, d % 7 = 0};
//	typ it : {nat}
//	val it = {0, 7, 14, 21, 28}
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/aqldb/aql"
)

func main() {
	file := flag.String("f", "", "execute a script file of AQL statements")
	query := flag.String("q", "", "run a single query and exit")
	limit := flag.Int("limit", 12, "maximum collection elements to print (0 = all)")
	maxSteps := flag.Int64("maxsteps", 0, "abort queries after this many evaluator steps (0 = unlimited)")
	flag.Parse()

	s, err := aql.NewSession()
	if err != nil {
		fmt.Fprintln(os.Stderr, "aql:", err)
		os.Exit(1)
	}
	s.SetMaxSteps(*maxSteps)

	switch {
	case *query != "":
		v, typ, err := s.Query(*query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aql:", err)
			os.Exit(1)
		}
		fmt.Printf("typ it : %s\n", typ)
		fmt.Printf("val it = %s\n", v.Pretty(*limit))
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aql:", err)
			os.Exit(1)
		}
		results, err := s.Exec(string(src))
		for _, r := range results {
			printResult(r, *limit)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "aql:", err)
			os.Exit(1)
		}
	default:
		interact(s, *limit)
	}
}

// interact runs the interactive loop, accumulating input lines until a
// statement-terminating semicolon.
func interact(s *aql.Session, limit int) {
	fmt.Println("AQL — a query language for multidimensional arrays (SIGMOD 1996)")
	fmt.Println(`End statements with ';'. Ctrl-D exits.`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := ": "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = ":: "
			continue
		}
		results, err := s.Exec(buf.String())
		buf.Reset()
		prompt = ": "
		for _, r := range results {
			printResult(r, limit)
		}
		if err != nil {
			fmt.Println("error:", err)
		}
	}
}

func printResult(r aql.Result, limit int) {
	switch r.Kind {
	case "macro":
		fmt.Printf("typ %s : %s\n", r.Name, r.Type)
		if r.Source != "" {
			fmt.Printf("val %s = %s registered as macro.\n", r.Name, r.Source)
		} else {
			fmt.Printf("val %s registered as macro.\n", r.Name)
		}
	case "writeval":
		fmt.Println("written.")
	default:
		if r.Type != nil {
			fmt.Printf("typ %s : %s\n", r.Name, r.Type)
		}
		if r.HasValue {
			fmt.Printf("val %s = %s\n", r.Name, r.Value.Pretty(limit))
		}
	}
}
