// Command aqld is the AQL query server: one shared session environment
// served concurrently over HTTP/JSON, with a prepared-plan cache and
// admission control (see internal/server).
//
// Usage:
//
//	aqld -addr :8080
//	aqld -addr :8080 -init setup.aql -maxconcurrent 16 -cachesize 512
//
// Endpoints:
//
//	POST /query          {"query": "...", "max_steps"?: n, "timeout_ms"?: n}
//	GET  /val/{name}     a top-level val, in the data exchange format
//	POST /val/{name}     bind a val from an exchange-format body
//	GET  /metrics        Prometheus text: fleet metrics + aqld_* series
//	GET  /debug/queries  flight recorder, full reports as JSON
//	GET  /debug/server   plan-cache and admission counters
//	GET  /healthz        liveness
//
// The -init script runs through the ordinary session pipeline before the
// listener opens, so vals, macros and readval statements registered there
// are visible to every query. Cancelling a request (closing the
// connection) aborts its evaluation; exceeding -maxconcurrent queues the
// request, and overflowing the queue rejects it with HTTP 429.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aqld:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	initFile := flag.String("init", "", "AQL script of setup statements to execute before serving")
	cacheSize := flag.Int("cachesize", server.DefaultCacheSize, "prepared-plan cache capacity (entries)")
	maxConcurrent := flag.Int("maxconcurrent", server.DefaultMaxConcurrent, "queries executing at once")
	maxQueued := flag.Int("maxqueued", server.DefaultMaxQueued, "queries waiting for a slot before 429s")
	queueTimeout := flag.Duration("queuetimeout", server.DefaultQueueTimeout, "longest a query waits for a slot before 503")
	maxSteps := flag.Int64("maxsteps", 0, "per-query evaluator step budget (0 = unlimited)")
	maxCells := flag.Int64("maxcells", 0, "per-query collection/array cell budget (0 = unlimited)")
	maxDepth := flag.Int("maxdepth", 0, "per-query recursion depth bound, compiled into cached plans (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "per-query evaluation wall-clock budget (0 = unlimited)")
	flag.Parse()

	sess, err := repl.New()
	if err != nil {
		return err
	}
	if *initFile != "" {
		src, err := os.ReadFile(*initFile)
		if err != nil {
			return err
		}
		if _, err := sess.Exec(string(src)); err != nil {
			return fmt.Errorf("init script: %w", err)
		}
		// Setup statements went through the instrumented pipeline; reset so
		// the metrics endpoints report served queries only.
		sess.Trace.Reset()
	}

	h := server.New(sess, server.Config{
		CacheSize:     *cacheSize,
		MaxConcurrent: *maxConcurrent,
		MaxQueued:     *maxQueued,
		QueueTimeout:  *queueTimeout,
		Limits: eval.Limits{
			MaxSteps: *maxSteps,
			MaxCells: *maxCells,
			MaxDepth: *maxDepth,
			Timeout:  *timeout,
		},
	})

	srv := &http.Server{Addr: *addr, Handler: h}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "aqld: serving on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "aqld: %s, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
