// Command aqld is the AQL query server: one shared session environment
// served concurrently over HTTP/JSON, with a prepared-plan cache and
// admission control (see internal/server).
//
// Usage:
//
//	aqld -addr :8080
//	aqld -addr :8080 -init setup.aql -maxconcurrent 16 -cachesize 512
//
// Endpoints:
//
//	POST /query             {"query": "...", "max_steps"?: n, "timeout_ms"?: n}
//	POST /shard             a range-restricted tabulation shard (cluster worker)
//	GET  /val/{name}        a top-level val, in the data exchange format
//	POST /val/{name}        bind a val from an exchange-format body
//	GET  /metrics           Prometheus text: fleet metrics + aqld_* series
//	                        (OpenMetrics with trace-id exemplars via Accept)
//	GET  /debug/queries     flight recorder, full reports as JSON
//	GET  /debug/trace/{id}  one recorded query as Chrome trace-event JSON,
//	                        looked up by request id or trace id
//	GET  /debug/planstats   per-plan execution profiles, keyed like the cache
//	GET  /debug/server      plan-cache and admission counters
//	GET  /healthz           liveness
//
// Distributed tracing: POST /query honors an inbound W3C traceparent
// header (minting a context when absent) and an X-Request-ID header
// (sanitized), echoing both on the response; the coordinator propagates
// the trace to every POST /shard, and workers return their span tree for
// stitching, so one flight-recorder report holds the whole multi-node
// trace, exportable via /debug/trace/{id}.
//
// The -init script runs through the ordinary session pipeline before the
// listener opens, so vals, macros and readval statements registered there
// are visible to every query. Cancelling a request (closing the
// connection) aborts its evaluation; exceeding -maxconcurrent queues the
// request, and overflowing the queue rejects it with HTTP 429.
//
// Coordinator mode (-coordinator -workers http://w1:8080,http://w2:8080)
// scatters parallel-eligible tabulations across worker aqld processes as
// contiguous row-major shards via POST /shard, with per-shard retry,
// optional hedging (-hedge-after), circuit breaking of failing workers and
// graceful degradation to local execution (reported as mode
// "degraded:local") when no worker is reachable. Workers need the same
// -init environment as the coordinator: shards re-prepare the query
// against the worker's own globals.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/aqldb/aql/internal/cluster"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/server"
)

// splitWorkers parses the -workers list, dropping empty entries.
func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(w); w != "" {
			out = append(out, w)
		}
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aqld:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	initFile := flag.String("init", "", "AQL script of setup statements to execute before serving")
	cacheSize := flag.Int("cachesize", server.DefaultCacheSize, "prepared-plan cache capacity (entries)")
	maxConcurrent := flag.Int("maxconcurrent", server.DefaultMaxConcurrent, "queries executing at once")
	maxQueued := flag.Int("maxqueued", server.DefaultMaxQueued, "queries waiting for a slot before 429s")
	queueTimeout := flag.Duration("queuetimeout", server.DefaultQueueTimeout, "longest a query waits for a slot before 503")
	maxSteps := flag.Int64("maxsteps", 0, "per-query evaluator step budget (0 = unlimited)")
	maxCells := flag.Int64("maxcells", 0, "per-query collection/array cell budget (0 = unlimited)")
	maxDepth := flag.Int("maxdepth", 0, "per-query recursion depth bound, compiled into cached plans (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "per-query evaluation wall-clock budget (0 = unlimited)")
	coordinator := flag.Bool("coordinator", false, "scatter parallel-eligible queries across -workers")
	workers := flag.String("workers", "", "comma-separated worker base URLs (requires -coordinator)")
	hedgeAfter := flag.Duration("hedge-after", 0, "re-dispatch a straggler shard to a second worker after this long (0 = no hedging)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard dispatch attempt deadline (0 = none)")
	shardRetries := flag.Int("shard-attempts", 0, "remote dispatch attempts per shard before local fallback (0 = default)")
	minCells := flag.Int64("min-shard-cells", 0, "smallest element space worth scattering (0 = default)")
	localWorkers := flag.Int("workers-local", 0, "local tabulation fan-out per query (0 = GOMAXPROCS)")
	qerrThreshold := flag.Float64("qerror-threshold", 0, "q-error above which a per-operator estimate counts as a misestimate (0 = default 2.0)")
	tileCells := flag.Int("tilesize", 0, "out-of-core tile size in cells (0 = default 4096)")
	tileBudget := flag.Int64("tilebudget", 0, "out-of-core tile cache budget in bytes (0 = default 64 MiB)")
	eagerReads := flag.Bool("eagerreads", false, "materialize NetCDF reads eagerly instead of lazily tiling them")
	flag.Parse()

	sess, err := repl.New()
	if err != nil {
		return err
	}
	defer sess.Close()
	if *tileCells > 0 || *tileBudget > 0 {
		sess.SetTileConfig(*tileCells, *tileBudget, false)
	}
	if *eagerReads {
		sess.SetLazyReads(false)
	}
	if *initFile != "" {
		src, err := os.ReadFile(*initFile)
		if err != nil {
			return err
		}
		if _, err := sess.Exec(string(src)); err != nil {
			return fmt.Errorf("init script: %w", err)
		}
		// Setup statements went through the instrumented pipeline; reset so
		// the metrics endpoints report served queries only.
		sess.Trace.Reset()
	}

	cfg := server.Config{
		CacheSize:     *cacheSize,
		MaxConcurrent: *maxConcurrent,
		MaxQueued:     *maxQueued,
		QueueTimeout:  *queueTimeout,
		Limits: eval.Limits{
			MaxSteps: *maxSteps,
			MaxCells: *maxCells,
			MaxDepth: *maxDepth,
			Timeout:  *timeout,
		},
		Workers:         *localWorkers,
		QErrorThreshold: *qerrThreshold,
	}
	if *coordinator {
		urls := splitWorkers(*workers)
		if len(urls) == 0 {
			return fmt.Errorf("-coordinator requires -workers")
		}
		cfg.Coordinator = cluster.New(cluster.Config{
			Workers:      urls,
			HedgeAfter:   *hedgeAfter,
			ShardTimeout: *shardTimeout,
			MaxAttempts:  *shardRetries,
			MinCells:     *minCells,
		})
		fmt.Fprintf(os.Stderr, "aqld: coordinator over %d workers: %s\n", len(urls), strings.Join(urls, ", "))
	} else if *workers != "" {
		return fmt.Errorf("-workers requires -coordinator")
	}
	h := server.New(sess, cfg)

	srv := &http.Server{Addr: *addr, Handler: h}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "aqld: serving on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "aqld: %s, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
