module github.com/aqldb/aql

go 1.22
