// Package prim provides the standard external primitives that ship with
// the AQL system, mirroring how the paper's prototype registers SML
// functions as complex-object primitives (section 4, RegisterCO).
//
// Each primitive carries a declared type, since function values cannot be
// typed structurally. The set includes the scalar math functions that
// domain primitives need, and the two external algorithms used by the
// paper's examples:
//
//   - heatindex: the "predefined algorithm" of the motivating query
//     (section 1), implemented as the NWS Rothfusz heat-index regression
//     over a day's worth of (temperature °F, relative humidity %, wind
//     speed) readings, returning the day's maximum heat index;
//   - sunset: the external function of the session example (section 4.2),
//     implemented with the standard solar-declination approximation,
//     returning the local solar hour of sunset.
//
// The paper's authors used proprietary implementations of both; these
// stand-ins exercise the same code paths (externally registered scalar
// functions over array and tuple arguments).
package prim

import (
	"fmt"
	"math"

	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/types"
)

// Primitive is a named external function with its declared type.
type Primitive struct {
	Name string
	Fn   object.Value
	Type *types.Type
}

// Standard returns the standard primitive library.
func Standard() []Primitive {
	prims := []Primitive{
		{Name: "heatindex", Fn: object.Func(heatindexPrim),
			Type: types.MustParse("[[real * real * real]] -> real")},
		{Name: "sunset", Fn: object.Func(sunsetPrim),
			Type: types.MustParse("(real * real * nat * nat * nat) -> nat")},
		{Name: "real", Fn: object.Func(realPrim),
			Type: types.MustParse("nat -> real")},
		{Name: "trunc", Fn: object.Func(truncPrim),
			Type: types.MustParse("real -> nat")},
		{Name: "round", Fn: object.Func(roundPrim),
			Type: types.MustParse("real -> nat")},
		{Name: "neg", Fn: object.Func(negPrim),
			Type: types.MustParse("real -> real")},
	}
	unary := []struct {
		name string
		fn   func(float64) float64
	}{
		{"sqrt", math.Sqrt}, {"exp", math.Exp}, {"ln", math.Log},
		{"sin", math.Sin}, {"cos", math.Cos}, {"tan", math.Tan},
		{"asin", math.Asin}, {"acos", math.Acos}, {"atan", math.Atan},
		{"abs", math.Abs},
	}
	for _, u := range unary {
		fn := u.fn
		name := u.name
		prims = append(prims, Primitive{
			Name: name,
			Type: types.MustParse("real -> real"),
			Fn: object.Func(func(v object.Value) (object.Value, error) {
				f, err := v.AsReal()
				if err != nil {
					return object.Value{}, fmt.Errorf("%s: %w", name, err)
				}
				r := fn(f)
				if !object.IsFinite(r) {
					return object.Bottom(name + ": non-finite result"), nil
				}
				return object.Real(r), nil
			}),
		})
	}
	prims = append(prims, Primitive{
		Name: "pow",
		Type: types.MustParse("real * real -> real"),
		Fn: object.Func(func(v object.Value) (object.Value, error) {
			if v.Kind != object.KTuple || len(v.Elems) != 2 {
				return object.Value{}, fmt.Errorf("pow: expected a pair")
			}
			a, err := v.Elems[0].AsReal()
			if err != nil {
				return object.Value{}, fmt.Errorf("pow: %w", err)
			}
			b, err := v.Elems[1].AsReal()
			if err != nil {
				return object.Value{}, fmt.Errorf("pow: %w", err)
			}
			r := math.Pow(a, b)
			if !object.IsFinite(r) {
				return object.Bottom("pow: non-finite result"), nil
			}
			return object.Real(r), nil
		}),
	})
	return prims
}

// negPrim: real -> real. Naturals have no negation (subtraction is monus),
// so unary minus is a real operation; the surface parser desugars `-e`
// into neg!e.
func negPrim(v object.Value) (object.Value, error) {
	f, err := v.AsReal()
	if err != nil {
		return object.Value{}, fmt.Errorf("neg: %w", err)
	}
	return object.Real(-f), nil
}

func realPrim(v object.Value) (object.Value, error) {
	n, err := v.AsNat()
	if err != nil {
		return object.Value{}, fmt.Errorf("real: %w", err)
	}
	return object.Real(float64(n)), nil
}

func truncPrim(v object.Value) (object.Value, error) {
	f, err := v.AsReal()
	if err != nil {
		return object.Value{}, fmt.Errorf("trunc: %w", err)
	}
	if f < 0 {
		return object.Bottom("trunc: negative real has no natural truncation"), nil
	}
	return object.Nat(int64(f)), nil
}

func roundPrim(v object.Value) (object.Value, error) {
	f, err := v.AsReal()
	if err != nil {
		return object.Value{}, fmt.Errorf("round: %w", err)
	}
	r := math.Round(f)
	if r < 0 {
		return object.Bottom("round: negative real has no natural rounding"), nil
	}
	return object.Nat(int64(r)), nil
}

// HeatIndex computes the NWS (Rothfusz 1990) heat-index regression for a
// temperature in °F and relative humidity in percent, with the standard
// low-humidity and high-humidity adjustments.
func HeatIndex(tempF, rh float64) float64 {
	if tempF < 80 {
		// The simple Steadman average used below 80°F.
		return 0.5 * (tempF + 61 + (tempF-68)*1.2 + rh*0.094)
	}
	t, r := tempF, rh
	hi := -42.379 + 2.04901523*t + 10.14333127*r -
		0.22475541*t*r - 6.83783e-3*t*t - 5.481717e-2*r*r +
		1.22874e-3*t*t*r + 8.5282e-4*t*r*r - 1.99e-6*t*t*r*r
	switch {
	case r < 13 && t >= 80 && t <= 112:
		hi -= ((13 - r) / 4) * math.Sqrt((17-math.Abs(t-95))/17)
	case r > 85 && t >= 80 && t <= 87:
		hi += ((r - 85) / 10) * ((87 - t) / 5)
	}
	return hi
}

// heatindexPrim: [[real * real * real]] -> real. The input is a day's
// array of hourly (temperature °F, relative humidity %, wind speed)
// readings; the result is the maximum heat index over the day. Wind speed
// is accepted for interface fidelity with the paper's query but does not
// enter the NWS regression.
func heatindexPrim(v object.Value) (object.Value, error) {
	if v.Kind != object.KArray || len(v.Shape) != 1 {
		return object.Value{}, fmt.Errorf("heatindex: expected a one-dimensional array, got %s", v.Kind)
	}
	cells, err := v.Cells()
	if err != nil {
		return object.Value{}, err
	}
	if len(cells) == 0 {
		return object.Bottom("heatindex: empty day"), nil
	}
	maxHI := math.Inf(-1)
	for i, reading := range cells {
		if reading.Kind != object.KTuple || len(reading.Elems) != 3 {
			return object.Value{}, fmt.Errorf("heatindex: reading %d is not a (temp, rh, ws) triple", i)
		}
		t, err := reading.Elems[0].AsReal()
		if err != nil {
			return object.Value{}, fmt.Errorf("heatindex: reading %d: %w", i, err)
		}
		rh, err := reading.Elems[1].AsReal()
		if err != nil {
			return object.Value{}, fmt.Errorf("heatindex: reading %d: %w", i, err)
		}
		if hi := HeatIndex(t, rh); hi > maxHI {
			maxHI = hi
		}
	}
	return object.Real(maxHI), nil
}

// Sunset computes the local solar hour (0-23) of sunset for the given
// latitude/longitude and date, using the standard solar-declination
// approximation: δ = -23.45° · cos(360/365 · (d + 10)) and the sunset hour
// angle cos ω = -tan φ · tan δ. Longitude shifts local solar time within
// the hour only, so it contributes through rounding.
func Sunset(lat, lon float64, month, day, year int) int {
	d := daysSinceJan1(month, day, year)
	decl := -23.45 * math.Pi / 180 * math.Cos(2*math.Pi/365*float64(d+10))
	phi := lat * math.Pi / 180
	cosOmega := -math.Tan(phi) * math.Tan(decl)
	switch {
	case cosOmega <= -1:
		return 23 // midnight sun: no sunset; clamp to end of day
	case cosOmega >= 1:
		return 12 // polar night: clamp to noon
	}
	omega := math.Acos(cosOmega) // hour angle in radians
	hours := omega * 12 / math.Pi
	// Fractional longitude offset from the timezone meridian.
	frac := math.Mod(lon, 15) / 15
	h := int(math.Round(12 + hours - frac))
	if h < 0 {
		h = 0
	}
	if h > 23 {
		h = 23
	}
	return h
}

func daysSinceJan1(month, day, year int) int {
	lens := [12]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
		lens[1] = 29
	}
	d := day - 1
	for m := 0; m < month-1 && m < 12; m++ {
		d += lens[m]
	}
	return d
}

// sunsetPrim: (real * real * nat * nat * nat) -> nat, matching the paper's
// sunset(lat, lon, month, day, year) registration.
func sunsetPrim(v object.Value) (object.Value, error) {
	if v.Kind != object.KTuple || len(v.Elems) != 5 {
		return object.Value{}, fmt.Errorf("sunset: expected (lat, lon, month, day, year)")
	}
	lat, err := v.Elems[0].AsReal()
	if err != nil {
		return object.Value{}, fmt.Errorf("sunset: lat: %w", err)
	}
	lon, err := v.Elems[1].AsReal()
	if err != nil {
		return object.Value{}, fmt.Errorf("sunset: lon: %w", err)
	}
	var nats [3]int64
	for i := 0; i < 3; i++ {
		n, err := v.Elems[2+i].AsNat()
		if err != nil {
			return object.Value{}, fmt.Errorf("sunset: date component %d: %w", i, err)
		}
		nats[i] = n
	}
	return object.Nat(int64(Sunset(lat, lon, int(nats[0]), int(nats[1]), int(nats[2])))), nil
}
