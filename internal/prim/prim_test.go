package prim

import (
	"math"
	"testing"

	"github.com/aqldb/aql/internal/object"
)

func findPrim(t *testing.T, name string) Primitive {
	t.Helper()
	for _, p := range Standard() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("no primitive %q", name)
	return Primitive{}
}

func call(t *testing.T, name string, arg object.Value) object.Value {
	t.Helper()
	p := findPrim(t, name)
	got, err := p.Fn.Fn(arg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return got
}

func TestStandardHaveTypes(t *testing.T) {
	for _, p := range Standard() {
		if p.Type == nil {
			t.Errorf("%s has no declared type", p.Name)
		}
		if p.Fn.Kind != object.KFunc {
			t.Errorf("%s is not a function value", p.Name)
		}
	}
}

func TestHeatIndexRegression(t *testing.T) {
	// Published NWS reference point: 95°F at 55%% RH gives a heat index of
	// about 110°F.
	hi := HeatIndex(95, 55)
	if hi < 107 || hi > 113 {
		t.Errorf("HeatIndex(95, 55) = %.1f, want ~110", hi)
	}
	// Below 80°F the simple formula applies and stays close to the input.
	mild := HeatIndex(70, 50)
	if mild < 65 || mild > 75 {
		t.Errorf("HeatIndex(70, 50) = %.1f, want near 70", mild)
	}
	// Monotone in humidity at high temperature.
	if HeatIndex(95, 80) <= HeatIndex(95, 40) {
		t.Error("heat index should increase with humidity at 95°F")
	}
}

func TestHeatindexPrimitive(t *testing.T) {
	day := object.Vector(
		object.Tuple(object.Real(82), object.Real(40), object.Real(5)),
		object.Tuple(object.Real(95), object.Real(55), object.Real(3)),
		object.Tuple(object.Real(88), object.Real(60), object.Real(8)),
	)
	got := call(t, "heatindex", day)
	want := HeatIndex(95, 55) // the max over the day
	if math.Abs(got.R-want) > 1e-9 {
		t.Errorf("heatindex = %v, want %v", got.R, want)
	}
	// Empty day is ⊥.
	if got := call(t, "heatindex", object.Vector()); !got.IsBottom() {
		t.Errorf("heatindex([]) = %s, want bottom", got)
	}
	// Wrong shapes are errors.
	p := findPrim(t, "heatindex")
	if _, err := p.Fn.Fn(object.Nat(1)); err == nil {
		t.Error("heatindex of a nat should error")
	}
}

func TestSunset(t *testing.T) {
	// New York in late June: sunset around 19-20 local solar time.
	h := Sunset(40.7, -74.0, 6, 25, 1995)
	if h < 18 || h > 21 {
		t.Errorf("Sunset(NYC, June 25) = %d, want evening", h)
	}
	// Winter sunset is earlier than summer sunset.
	if w := Sunset(40.7, -74.0, 12, 21, 1995); w >= h {
		t.Errorf("winter sunset %d should be before summer sunset %d", w, h)
	}
	// Southern hemisphere is reversed.
	if s := Sunset(-35.0, 149.0, 12, 21, 1995); s <= Sunset(-35.0, 149.0, 6, 21, 1995) {
		t.Errorf("southern summer sunset %d should be after southern winter", s)
	}
	// Polar regions clamp rather than fail.
	if h := Sunset(89.0, 0, 6, 21, 1995); h != 23 {
		t.Errorf("midnight sun should clamp to 23, got %d", h)
	}
	if h := Sunset(89.0, 0, 12, 21, 1995); h != 12 {
		t.Errorf("polar night should clamp to 12, got %d", h)
	}
}

func TestSunsetPrimitive(t *testing.T) {
	arg := object.Tuple(object.Real(40.7), object.Real(-74.0),
		object.Nat(6), object.Nat(25), object.Nat(1995))
	got := call(t, "sunset", arg)
	if got.Kind != object.KNat {
		t.Fatalf("sunset returned %s", got.Kind)
	}
	if got.N < 18 || got.N > 21 {
		t.Errorf("sunset hour = %d", got.N)
	}
}

func TestMathPrimitives(t *testing.T) {
	if got := call(t, "sqrt", object.Real(9)); got.R != 3 {
		t.Errorf("sqrt(9) = %v", got)
	}
	if got := call(t, "pow", object.Tuple(object.Real(2), object.Real(10))); got.R != 1024 {
		t.Errorf("2^10 = %v", got)
	}
	if got := call(t, "sqrt", object.Real(-1)); !got.IsBottom() {
		t.Errorf("sqrt(-1) = %s, want bottom", got)
	}
	if got := call(t, "real", object.Nat(3)); got.Kind != object.KReal || got.R != 3 {
		t.Errorf("real(3) = %s", got)
	}
	if got := call(t, "trunc", object.Real(3.9)); got.N != 3 {
		t.Errorf("trunc(3.9) = %s", got)
	}
	if got := call(t, "round", object.Real(3.9)); got.N != 4 {
		t.Errorf("round(3.9) = %s", got)
	}
	if got := call(t, "trunc", object.Real(-1)); !got.IsBottom() {
		t.Errorf("trunc(-1) = %s, want bottom", got)
	}
}

func TestDaysSinceJan1(t *testing.T) {
	if d := daysSinceJan1(1, 1, 1995); d != 0 {
		t.Errorf("Jan 1 = %d", d)
	}
	if d := daysSinceJan1(3, 1, 1995); d != 59 {
		t.Errorf("Mar 1 non-leap = %d, want 59", d)
	}
	if d := daysSinceJan1(3, 1, 1996); d != 60 {
		t.Errorf("Mar 1 leap = %d, want 60", d)
	}
	if d := daysSinceJan1(3, 1, 1900); d != 59 {
		t.Errorf("Mar 1 1900 (not leap) = %d, want 59", d)
	}
	if d := daysSinceJan1(3, 1, 2000); d != 60 {
		t.Errorf("Mar 1 2000 (leap) = %d, want 60", d)
	}
}
