// Package cost estimates, at prepare time, the per-operator output
// cardinality and cost of an optimized core query.
//
// The estimator is exact-or-unknown: every number it produces is derived
// purely from the expression and the global environment snapshot (nat
// bounds, global array shapes, global set/bag cardinalities), in the same
// units the evaluator charges — steps per node evaluation, cells per
// constructor/tabulation charge. Anything parameter- or data-dependent is
// the explicit marker "unknown", never a guess, so a known estimate can be
// held to exact agreement with the recorded actuals (q-error 1.0).
//
// The estimate tree mirrors the evaluator's SpanPlan walk exactly — same
// pre-order, same first-visit-wins deduplication of shared subtrees — so
// trace.JoinEstimates aligns estimates with a full-profile span tree
// positionally, with no node identifiers crossing package boundaries.
package cost

import (
	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/trace"
)

// Estimate annotates every operator of the optimized core expression e with
// estimated output cardinality, total cell charge and self cost, against a
// snapshot of the global environment. The returned tree is immutable; it is
// computed once per prepared plan and shared by every execution.
func Estimate(e ast.Expr, globals map[string]object.Value) *trace.EstNode {
	if e == nil {
		return nil
	}
	es := &estimator{
		globals: globals,
		refs:    map[ast.Expr]int{},
		seen:    map[ast.Expr]bool{},
	}
	es.countRefs(e)
	root := &holder{}
	es.walk(e, root, known(1), nil)
	if len(root.kids) == 0 {
		return nil
	}
	if tiles, ok := es.tilesEstimate(e); ok {
		root.kids[0].Tiles = &tiles
	}
	return root.kids[0]
}

// tileCounter is implemented by lazy-array backings that store cells in
// fixed-size tiles (tile.Array); the estimator probes for it rather than
// importing the tile package.
type tileCounter interface{ TileCount() int }

// tilesEstimate predicts the storage tiles a query touches: the sum of the
// tile counts of every distinct lazy global it references. Exact for full
// scans — the dominant out-of-core pattern — and an upper bound for
// selective access. ok is false when the query references no lazy arrays;
// the estimate is unknown when a referenced lazy array's backing does not
// expose its tile count.
func (es *estimator) tilesEstimate(root ast.Expr) (trace.Card, bool) {
	total := int64(0)
	sawLazy, allKnown := false, true
	counted := map[string]bool{}
	visited := map[ast.Expr]bool{}
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		if e == nil || visited[e] {
			return
		}
		visited[e] = true
		if v, ok := e.(*ast.Var); ok && !counted[v.Name] {
			counted[v.Name] = true
			if g, ok := es.globals[v.Name]; ok && g.IsLazy() {
				sawLazy = true
				if tc, ok := g.Backing().(tileCounter); ok {
					total += int64(tc.TileCount())
				} else {
					allKnown = false
				}
			}
		}
		for _, kid := range e.Children() {
			visit(kid)
		}
	}
	visit(root)
	if !sawLazy {
		return trace.Card{}, false
	}
	if !allKnown {
		return unknown(), true
	}
	return known(total), true
}

type estimator struct {
	globals map[string]object.Value
	// refs counts incoming edges per node. The optimizer may alias
	// subtrees; a node referenced from more than one context accumulates
	// invocations from all of them in the span tree, so its static
	// invocation count is unknown.
	refs map[ast.Expr]int
	// seen mirrors the SpanPlan dedup: a shared subtree is attributed
	// (and estimated) at its first pre-order occurrence only.
	seen map[ast.Expr]bool
}

// countRefs counts incoming edges, visiting each unique node once.
func (es *estimator) countRefs(root ast.Expr) {
	visited := map[ast.Expr]bool{}
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		if e == nil || visited[e] {
			return
		}
		visited[e] = true
		for _, kid := range e.Children() {
			if kid != nil {
				es.refs[kid]++
			}
			visit(kid)
		}
	}
	es.refs[root]++
	visit(root)
}

// holder lets the root hang off a synthetic parent during the walk.
type holder struct{ kids []*trace.EstNode }

func (h *holder) add(n *trace.EstNode) { h.kids = append(h.kids, n) }

type parent interface{ add(*trace.EstNode) }

func (n *estParent) add(c *trace.EstNode) { n.n.Children = append(n.n.Children, c) }

type estParent struct{ n *trace.EstNode }

// Card helpers, aliased for brevity.
func known(n int64) trace.Card       { return trace.KnownCard(n) }
func unknown() trace.Card            { return trace.UnknownCard() }
func mul(a, b trace.Card) trace.Card { return trace.MulCard(a, b) }
func add(a, b trace.Card) trace.Card { return trace.AddCard(a, b) }

// walk creates the estimate node for e (unless e is a shared subtree
// already attributed), computes its per-invocation charge and output
// cardinality, and recurses into children in Children() order with each
// child's own invocation estimate.
//
// inv is the estimated number of times e is evaluated during the query.
// The evaluator charges exactly one step per node evaluation, so a node's
// self cost estimate IS its invocation estimate.
func (es *estimator) walk(e ast.Expr, par parent, inv trace.Card, env *scope) {
	if e == nil || es.seen[e] {
		return
	}
	es.seen[e] = true
	if es.refs[e] > 1 {
		// Shared subtree: the span accumulates invocations from every
		// referencing context; a single static count would be wrong.
		inv = unknown()
	}
	node := &trace.EstNode{Op: ast.NodeName(e), Cost: inv}
	par.add(node)
	self := &estParent{n: node}
	node.Card = cardOf(es.sval(e, env))

	switch n := e.(type) {
	case *ast.ArrayTab:
		// Bounds are evaluated once per tabulation; the head once per
		// cell. The whole size is charged as cells before tabulating.
		size := known(1)
		for _, b := range n.Bounds {
			size = mul(size, natOf(es.sval(b, env)))
		}
		node.Cells = mul(inv, size)
		headEnv := env
		for _, name := range n.Idx {
			headEnv = headEnv.bind(name, scalarSval())
		}
		es.walk(n.Head, self, mul(inv, size), headEnv)
		for _, b := range n.Bounds {
			es.walk(b, self, inv, env)
		}

	case *ast.MkArray:
		// Dims evaluate first; a size/element-count mismatch is ⊥
		// without charging or evaluating the elements.
		size, allKnown := known(1), true
		for _, d := range n.Dims {
			dv := natOf(es.sval(d, env))
			size = mul(size, dv)
			allKnown = allKnown && dv.Known
		}
		elemInv := unknown()
		node.Cells = unknown()
		if allKnown && size.Known {
			if size.N == int64(len(n.Elems)) {
				node.Cells = mul(inv, known(int64(len(n.Elems))))
				elemInv = inv
			} else {
				node.Cells = known(0)
				elemInv = known(0)
			}
		}
		for _, d := range n.Dims {
			es.walk(d, self, inv, env)
		}
		for _, el := range n.Elems {
			es.walk(el, self, elemInv, env)
		}

	case *ast.Gen:
		node.Cells = mul(inv, natOf(es.sval(n.N, env)))
		es.walk(n.N, self, inv, env)

	case *ast.Singleton:
		node.Cells = inv
		es.walk(n.Elem, self, inv, env)
	case *ast.SingletonBag:
		node.Cells = inv
		es.walk(n.Elem, self, inv, env)

	case *ast.EmptySet, *ast.EmptyBag:
		node.Cells = known(0)

	case *ast.Union:
		node.Cells = mul(inv, add(cardOf(es.sval(n.L, env)), cardOf(es.sval(n.R, env))))
		es.walk(n.L, self, inv, env)
		es.walk(n.R, self, inv, env)
	case *ast.BagUnion:
		node.Cells = mul(inv, add(cardOf(es.sval(n.L, env)), cardOf(es.sval(n.R, env))))
		es.walk(n.L, self, inv, env)
		es.walk(n.R, self, inv, env)

	case *ast.BigUnion:
		es.comprehension(n.Head, n.Var, "", n.Over, node, self, inv, env, true)
	case *ast.BigBagUnion:
		es.comprehension(n.Head, n.Var, "", n.Over, node, self, inv, env, true)
	case *ast.RankUnion:
		es.comprehension(n.Head, n.Var, n.RankVar, n.Over, node, self, inv, env, true)
	case *ast.RankBagUnion:
		es.comprehension(n.Head, n.Var, n.RankVar, n.Over, node, self, inv, env, true)

	case *ast.Sum:
		// Σ charges iterations but no cells.
		es.comprehension(n.Head, n.Var, "", n.Over, node, self, inv, env, false)

	case *ast.Index:
		// index_k's cell charge is the extent of the keys in the data.
		node.Cells = unknown()
		es.walk(n.Set, self, inv, env)

	case *ast.If:
		// Exactly one branch runs per evaluation; which one is
		// data-dependent.
		node.Cells = known(0)
		es.walk(n.Cond, self, inv, env)
		es.walk(n.Then, self, unknown(), env)
		es.walk(n.Else, self, unknown(), env)

	case *ast.App:
		if lam, ok := n.Fn.(*ast.Lam); ok && es.refs[lam] <= 1 && !es.seen[lam] {
			// Let pattern: the body is part of this plan and runs once
			// per application, under the argument's static value.
			node.Cells = known(0)
			es.seen[lam] = true
			lamNode := &trace.EstNode{
				Op:    ast.NodeName(lam),
				Card:  known(1),
				Cells: known(0),
				Cost:  inv,
			}
			self.add(lamNode)
			es.walk(lam.Body, &estParent{n: lamNode}, inv, env.bind(lam.Param, es.sval(n.Arg, env)))
			es.walk(n.Arg, self, inv, env)
		} else {
			// The callee may be a global closure or primitive whose body
			// is not in this plan: its steps and cells attribute to the
			// App span itself, so neither is statically known.
			node.Cells = unknown()
			node.Cost = unknown()
			es.walk(n.Fn, self, inv, env)
			es.walk(n.Arg, self, inv, env)
		}

	case *ast.Lam:
		// A lambda evaluated on its own builds a closure; the body runs
		// only on application, an unknown number of times.
		node.Cells = known(0)
		es.walk(n.Body, self, unknown(), env.bind(n.Param, sval{}))

	default:
		// Leaves and per-child-once scalar operators (Var, Param,
		// literals, Arith, Cmp, Tuple, Proj, Dim, Subscript, Get,
		// Bottom): no cell charge; every child evaluates once per
		// evaluation of the parent.
		node.Cells = known(0)
		for _, kid := range e.Children() {
			es.walk(kid, self, inv, env)
		}
	}
}

// comprehension estimates the shared shape of Σ, ⋃, ⊎ and their ranked
// forms: the head runs once per element of over; set/bag unions charge the
// head's result cardinality per iteration, Σ charges nothing.
func (es *estimator) comprehension(head ast.Expr, varName, rankVar string, over ast.Expr,
	node *trace.EstNode, self *estParent, inv trace.Card, env *scope, chargesCells bool) {
	overCard := cardOf(es.sval(over, env))
	headEnv := env.bind(varName, sval{})
	if rankVar != "" {
		headEnv = headEnv.bind(rankVar, scalarSval())
	}
	if chargesCells {
		headCard := cardOf(es.sval(head, headEnv))
		node.Cells = mul(inv, mul(overCard, headCard))
	} else {
		node.Cells = known(0)
	}
	es.walk(head, self, mul(inv, overCard), headEnv)
	es.walk(over, self, inv, env)
}
