package cost

import (
	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/trace"
)

// sval is the static abstraction of a runtime value: what the estimator
// can know about an expression's value without running it. The zero sval
// is "unknown". Fields are independent facts; a nat literal is both a
// known nat and a known cardinality-1 scalar.
type sval struct {
	natKnown bool
	nat      int64

	// cardKnown is the output cardinality: element count for sets and
	// bags, total cells for arrays, 1 for scalars and tuples.
	cardKnown bool
	card      int64

	shapeKnown bool
	shape      []int64

	tupleKnown bool
	elems      []sval
}

// scalarSval is a value known to be a single scalar (card 1) of unknown
// magnitude.
func scalarSval() sval { return sval{cardKnown: true, card: 1} }

func natSval(n int64) sval { return sval{natKnown: true, nat: n, cardKnown: true, card: 1} }

func collSval(card int64) sval { return sval{cardKnown: true, card: card} }

// cardOf projects the output-cardinality fact onto a trace.Card.
func cardOf(v sval) trace.Card {
	if v.cardKnown {
		return known(v.card)
	}
	return unknown()
}

// natOf projects the known-nat fact onto a trace.Card.
func natOf(v sval) trace.Card {
	if v.natKnown {
		return known(v.nat)
	}
	return unknown()
}

// scope is the static environment of comprehension- and lambda-bound
// variables. A binding shadows the global of the same name even when its
// static value is unknown.
type scope struct {
	parent *scope
	name   string
	v      sval
}

func (sc *scope) bind(name string, v sval) *scope {
	if name == "" {
		return sc
	}
	return &scope{parent: sc, name: name, v: v}
}

func (sc *scope) lookup(name string) (sval, bool) {
	for s := sc; s != nil; s = s.parent {
		if s.name == name {
			return s.v, true
		}
	}
	return sval{}, false
}

// globalSval abstracts a global's runtime value.
func globalSval(v object.Value) sval {
	switch v.Kind {
	case object.KNat:
		return natSval(v.N)
	case object.KBool, object.KReal, object.KString, object.KBase, object.KFunc:
		return scalarSval()
	case object.KSet, object.KBag:
		return collSval(int64(len(v.Elems)))
	case object.KArray:
		shape := make([]int64, len(v.Shape))
		for i, d := range v.Shape {
			shape[i] = int64(d)
		}
		return sval{shapeKnown: true, shape: shape, cardKnown: true, card: int64(v.Size())}
	case object.KTuple:
		elems := make([]sval, len(v.Elems))
		for i, el := range v.Elems {
			elems[i] = globalSval(el)
		}
		return sval{tupleKnown: true, elems: elems, cardKnown: true, card: 1}
	}
	return sval{}
}

// mulNat multiplies two naturals, reporting overflow.
func mulNat(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/a != b || p < 0 {
		return 0, false
	}
	return p, true
}

// natArith applies a nat-typed arithmetic operator statically, mirroring
// the evaluator exactly: subtraction is monus, division or modulus by zero
// is ⊥ (not ok here), overflow is not ok.
func natArith(op ast.ArithOp, a, b int64) (int64, bool) {
	switch op {
	case ast.OpAdd:
		s := a + b
		return s, s >= 0
	case ast.OpSub:
		if a < b {
			return 0, true
		}
		return a - b, true
	case ast.OpMul:
		return mulNat(a, b)
	case ast.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ast.OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	}
	return 0, false
}

// sval statically evaluates e under env: known nats propagate through
// arithmetic, projections, dim of global arrays, gen, desugared lets;
// known cardinalities through set/bag constructors. Anything it cannot
// prove is the zero sval, "unknown".
func (es *estimator) sval(e ast.Expr, env *scope) sval {
	switch n := e.(type) {
	case *ast.NatLit:
		return natSval(n.Val)
	case *ast.BoolLit, *ast.RealLit, *ast.StringLit:
		return scalarSval()

	case *ast.Var:
		if v, ok := env.lookup(n.Name); ok {
			return v
		}
		if g, ok := es.globals[n.Name]; ok {
			return globalSval(g)
		}
		return sval{}
	case *ast.Param:
		// A prepared-query placeholder: by definition unknown until
		// execution.
		return sval{}

	case *ast.Arith:
		l, r := es.sval(n.L, env), es.sval(n.R, env)
		if l.natKnown && r.natKnown {
			if v, ok := natArith(n.Op, l.nat, r.nat); ok {
				return natSval(v)
			}
			return sval{} // ⊥ (div by zero) or overflow
		}
		return scalarSval()
	case *ast.Cmp, *ast.Sum:
		return scalarSval()

	case *ast.Tuple:
		elems := make([]sval, len(n.Elems))
		for i, el := range n.Elems {
			elems[i] = es.sval(el, env)
		}
		return sval{tupleKnown: true, elems: elems, cardKnown: true, card: 1}
	case *ast.Proj:
		t := es.sval(n.Tuple, env)
		if t.tupleKnown && n.I >= 1 && n.I <= len(t.elems) {
			return t.elems[n.I-1]
		}
		return sval{}

	case *ast.Dim:
		a := es.sval(n.Arr, env)
		if a.shapeKnown && len(a.shape) == n.K {
			if n.K == 1 {
				return natSval(a.shape[0])
			}
			elems := make([]sval, len(a.shape))
			for i, d := range a.shape {
				elems[i] = natSval(d)
			}
			return sval{tupleKnown: true, elems: elems, cardKnown: true, card: 1}
		}
		return scalarSval()

	case *ast.ArrayTab:
		shape := make([]int64, len(n.Bounds))
		total := int64(1)
		for i, b := range n.Bounds {
			bv := es.sval(b, env)
			if !bv.natKnown {
				return sval{}
			}
			shape[i] = bv.nat
			var ok bool
			if total, ok = mulNat(total, bv.nat); !ok {
				return sval{}
			}
		}
		return sval{shapeKnown: true, shape: shape, cardKnown: true, card: total}

	case *ast.MkArray:
		shape := make([]int64, len(n.Dims))
		total := int64(1)
		for i, d := range n.Dims {
			dv := es.sval(d, env)
			if !dv.natKnown {
				return sval{}
			}
			shape[i] = dv.nat
			var ok bool
			if total, ok = mulNat(total, dv.nat); !ok {
				return sval{}
			}
		}
		if total != int64(len(n.Elems)) {
			return sval{} // ⊥: element count mismatch
		}
		return sval{shapeKnown: true, shape: shape, cardKnown: true, card: total}

	case *ast.Subscript, *ast.Get, *ast.Index, *ast.If, *ast.Bottom:
		return sval{}

	case *ast.Gen:
		m := es.sval(n.N, env)
		if m.natKnown {
			return collSval(m.nat) // {0..m-1}: m distinct naturals
		}
		return sval{}

	case *ast.EmptySet, *ast.EmptyBag:
		return collSval(0)
	case *ast.Singleton, *ast.SingletonBag:
		return collSval(1)

	case *ast.Union:
		l, r := es.sval(n.L, env), es.sval(n.R, env)
		// Set union deduplicates, so the result cardinality is only
		// known when one side is statically empty.
		if l.cardKnown && l.card == 0 && r.cardKnown {
			return collSval(r.card)
		}
		if r.cardKnown && r.card == 0 && l.cardKnown {
			return collSval(l.card)
		}
		return sval{}
	case *ast.BagUnion:
		l, r := es.sval(n.L, env), es.sval(n.R, env)
		if l.cardKnown && r.cardKnown {
			return collSval(l.card + r.card)
		}
		return sval{}

	case *ast.BigUnion:
		return es.bigUnionSval(n.Head, n.Var, "", n.Over, env, true)
	case *ast.BigBagUnion:
		return es.bigUnionSval(n.Head, n.Var, "", n.Over, env, false)
	case *ast.RankUnion:
		return es.bigUnionSval(n.Head, n.Var, n.RankVar, n.Over, env, true)
	case *ast.RankBagUnion:
		return es.bigUnionSval(n.Head, n.Var, n.RankVar, n.Over, env, false)

	case *ast.App:
		if lam, ok := n.Fn.(*ast.Lam); ok {
			// Desugared let: the application's value is the body's under
			// the bound argument.
			return es.sval(lam.Body, env.bind(lam.Param, es.sval(n.Arg, env)))
		}
		return sval{}
	case *ast.Lam:
		return scalarSval()
	}
	return sval{}
}

// bigUnionSval is the static value of ⋃/⊎/⋃_r/⊎_r: bags concatenate
// (cardinalities multiply when the head's is binding-independent); sets
// deduplicate, so only the statically-empty cases are known.
func (es *estimator) bigUnionSval(head ast.Expr, varName, rankVar string, over ast.Expr,
	env *scope, dedup bool) sval {
	ov := es.sval(over, env)
	if ov.cardKnown && ov.card == 0 {
		return collSval(0)
	}
	headEnv := env.bind(varName, sval{})
	if rankVar != "" {
		headEnv = headEnv.bind(rankVar, scalarSval())
	}
	hd := es.sval(head, headEnv)
	if ov.cardKnown && hd.cardKnown && hd.card == 0 {
		return collSval(0)
	}
	if !dedup && ov.cardKnown && hd.cardKnown {
		if total, ok := mulNat(ov.card, hd.card); ok {
			return collSval(total)
		}
	}
	return sval{}
}
