package cost_test

import (
	"testing"

	"github.com/aqldb/aql/internal/cost"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/trace"
)

// estimate compiles, optimizes and estimates a query in a fresh session
// with the given setup statements.
func estimate(t *testing.T, setup, query string) *trace.EstNode {
	t.Helper()
	s, err := repl.New()
	if err != nil {
		t.Fatal(err)
	}
	if setup != "" {
		if _, err := s.Exec(setup); err != nil {
			t.Fatalf("setup: %v", err)
		}
	}
	core, _, err := s.Compile(query)
	if err != nil {
		t.Fatalf("compile %s: %v", query, err)
	}
	est := cost.Estimate(s.Optimize(core), s.Env.Globals())
	if est == nil {
		t.Fatalf("no estimate tree for %s", query)
	}
	return est
}

// find returns the first node with the given op in pre-order, or nil.
func find(n *trace.EstNode, op string) *trace.EstNode {
	var hit *trace.EstNode
	n.Walk(func(c *trace.EstNode) {
		if hit == nil && c.Op == op {
			hit = c
		}
	})
	return hit
}

func known(n int64) trace.Card { return trace.KnownCard(n) }

func TestEstimateStaticTabulation(t *testing.T) {
	est := estimate(t, "", `[[ i*i | \i < 20 ]]`)
	if est.Op != "ArrayTab" {
		t.Fatalf("root op = %q", est.Op)
	}
	if est.Card != known(20) {
		t.Errorf("card = %v, want 20", est.Card)
	}
	if est.Cells != known(20) {
		t.Errorf("cells = %v, want 20", est.Cells)
	}
	if est.Cost != known(1) {
		t.Errorf("cost = %v, want 1 (one root invocation)", est.Cost)
	}
	// The head runs once per cell.
	if head := est.Children[0]; head.Cost != known(20) {
		t.Errorf("head cost = %v, want 20", head.Cost)
	}
}

func TestEstimateMultiDimShape(t *testing.T) {
	est := estimate(t, "val n = 6;", `[[ i + j | \i < n, \j < 4 ]]`)
	if est.Cells != known(24) {
		t.Errorf("cells = %v, want 24 (6x4, n resolved from globals)", est.Cells)
	}
	if head := est.Children[0]; head.Cost != known(24) {
		t.Errorf("head cost = %v, want 24", head.Cost)
	}
}

func TestEstimateDataDependentBoundUnknown(t *testing.T) {
	est := estimate(t, "val S = {1, 2, 3};", `[[ i | \i < count!S ]]`)
	// count!S is a closure application over set data: the estimator must
	// report unknown, never a fabricated number.
	if est.Cells.Known {
		t.Errorf("data-dependent tabulation cells = %v, want unknown", est.Cells)
	}
}

func TestEstimateParamUnknown(t *testing.T) {
	s, err := repl.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Prepare(`[[ i * $a | \i < $n ]]`)
	if err != nil {
		t.Fatal(err)
	}
	est := cost.Estimate(p.Core, s.Env.Globals())
	if est == nil {
		t.Fatal("no estimate tree for the prepared template")
	}
	if est.Cells.Known || est.Card.Known {
		t.Errorf("parameter-bounded tabulation = card %v cells %v, want unknown", est.Card, est.Cells)
	}
}

func TestEstimateGeneralAppUnknownCost(t *testing.T) {
	est := estimate(t, `val f = fn \x => x * x;`, `f!3`)
	app := find(est, "App")
	if app == nil {
		t.Fatal("no app node in the estimate tree")
	}
	// A global closure's body attributes its steps to the app's self
	// counters, so a known cost would be wrong. Unknown, not fabricated.
	if app.Cost.Known {
		t.Errorf("general app cost = %v, want unknown", app.Cost)
	}
}

func TestEstimateLetChainStaysKnown(t *testing.T) {
	// Compiled let chains are App{Lam} patterns; static values must flow
	// through the binding so the inner tabulation's bound stays known.
	est := estimate(t, "", `[[ i | \i < 5 ]]`)
	if est.Cells != known(5) {
		t.Fatalf("baseline cells = %v", est.Cells)
	}
	// gen!m: a set of m distinct naturals.
	est = estimate(t, "", `gen!7`)
	gen := find(est, "Gen")
	if gen == nil {
		t.Fatal("no gen node")
	}
	if gen.Card != known(7) || gen.Cells != known(7) {
		t.Errorf("gen card/cells = %v/%v, want 7/7", gen.Card, gen.Cells)
	}
}

func TestEstimateUnionCardinalities(t *testing.T) {
	// Set union deduplicates, so output cardinality is data-dependent even
	// with statically known sides.
	est := estimate(t, "", `{1, 2} union {2, 3}`)
	u := find(est, "Union")
	if u == nil {
		t.Fatal("no union node")
	}
	if u.Card.Known {
		t.Errorf("set union card = %v, want unknown (dedup)", u.Card)
	}
	// Bag union concatenates: cardinalities add, and the charged cells are
	// statically known.
	est = estimate(t, "", `{| 1, 2 |} uplus {| 2, 3 |}`)
	b := find(est, "BagUnion")
	if b == nil {
		t.Fatal("no bag union node")
	}
	if b.Card != known(4) {
		t.Errorf("bag union card = %v, want 4", b.Card)
	}
	if b.Cells != known(4) {
		t.Errorf("bag union cells = %v, want 4", b.Cells)
	}
}

func TestEstimateMirrorsSpanStructure(t *testing.T) {
	// The estimate tree must be joinable per-operator against a full
	// profile's span tree: run a query at prof level full and require the
	// operator-mode join with no structural fallback.
	s, err := repl.New()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetProfiling("full"); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`[[ i*i | \i < 12 ]]`,
		`{x * 2 | \x <- gen!5}`,
		`[[ i + j | \i < 3, \j < 4 ]][1, 2]`,
	} {
		core, _, err := s.Compile(q)
		if err != nil {
			t.Fatalf("compile %s: %v", q, err)
		}
		opt := s.Optimize(core)
		est := cost.Estimate(opt, s.Env.Globals())

		s.Trace.Begin(q)
		_, evalErr := s.Eval(opt)
		s.Trace.JoinExplain(est, 0)
		rep := s.Trace.End(evalErr)
		if evalErr != nil {
			t.Fatalf("eval %s: %v", q, evalErr)
		}
		if rep.Explain == nil {
			t.Fatalf("%s: no joined table", q)
		}
		if rep.Explain.Mode != "operator" {
			t.Errorf("%s: join degraded to %q — estimate tree does not mirror the span tree", q, rep.Explain.Mode)
		}
	}
}
