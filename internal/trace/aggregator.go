package trace

import (
	"sort"
	"sync"
	"time"
)

// The fleet layer: cross-query aggregates and a flight recorder. Both types
// implement Sink, so a session wires them up by pointing its Recorder at a
// MultiSink; both are safe for concurrent Emit and snapshot calls (the
// metrics handler reads them from HTTP goroutines while queries run).

// Latency histogram buckets: log-2 from 1µs to ~34s (2^25 µs), plus an
// implicit +Inf. Queries land in the first bucket whose bound is >= wall.
const nLatencyBuckets = 26

// LatencyBucketBound returns the inclusive upper bound of bucket i.
func LatencyBucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// DefaultSlowCap is how many slow queries the aggregator retains.
const DefaultSlowCap = 16

// DefaultFlightCap is the default flight-recorder capacity.
const DefaultFlightCap = 64

// SlowQuery is one entry of the bounded slow-query log.
type SlowQuery struct {
	Query   string        `json:"query"`
	ID      string        `json:"id,omitempty"`
	TraceID string        `json:"trace_id,omitempty"`
	Engine  string        `json:"engine,omitempty"`
	Start   time.Time     `json:"start"`
	Wall    time.Duration `json:"wall_ns"`
	Err     string        `json:"err,omitempty"`
}

// Aggregator accumulates fleet-wide statistics across queries: a
// log-bucketed latency histogram, per-phase wall totals, per-rule firing
// counts, evaluator and NetCDF I/O totals, and a bounded slow-query log.
// It implements Sink; attach it to a Recorder (possibly via MultiSink).
type Aggregator struct {
	mu        sync.Mutex
	totals    Totals
	buckets   [nLatencyBuckets + 1]int64 // per-bucket counts; last is +Inf
	exemplars [nLatencyBuckets + 1]*Exemplar
	rules     map[string]int64
	slow      []SlowQuery // sorted by Wall, slowest first
	slowCap   int
}

// NewAggregator returns an aggregator keeping the slowCap slowest queries
// (DefaultSlowCap when slowCap <= 0).
func NewAggregator(slowCap int) *Aggregator {
	if slowCap <= 0 {
		slowCap = DefaultSlowCap
	}
	return &Aggregator{rules: map[string]int64{}, slowCap: slowCap}
}

// Emit folds one finished report into the aggregates; part of Sink.
func (a *Aggregator) Emit(r *QueryReport) {
	if a == nil || r == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.totals.add(r)
	bi := bucketFor(r.Wall)
	a.buckets[bi]++
	if r.TraceID != "" {
		// Latest traced observation per bucket becomes the exemplar: the
		// OpenMetrics hook from "this bucket is hot" to a concrete trace.
		a.exemplars[bi] = &Exemplar{
			TraceID: r.TraceID,
			Value:   r.Wall.Seconds(),
			Ts:      float64(r.Start.Add(r.Wall).UnixNano()) / 1e9,
		}
	}
	for _, f := range r.Rules {
		a.rules[f.Rule]++
	}
	sq := SlowQuery{Query: r.Query, ID: r.ID, TraceID: r.TraceID, Engine: r.Engine, Start: r.Start, Wall: r.Wall, Err: r.Err}
	i := sort.Search(len(a.slow), func(i int) bool { return a.slow[i].Wall < sq.Wall })
	if i < a.slowCap {
		a.slow = append(a.slow, SlowQuery{})
		copy(a.slow[i+1:], a.slow[i:])
		a.slow[i] = sq
		if len(a.slow) > a.slowCap {
			a.slow = a.slow[:a.slowCap]
		}
	}
}

// bucketFor maps a wall time to its histogram bucket index.
func bucketFor(d time.Duration) int {
	for i := 0; i < nLatencyBuckets; i++ {
		if d <= LatencyBucketBound(i) {
			return i
		}
	}
	return nLatencyBuckets
}

// AggregateSnapshot is a consistent copy of an Aggregator's state.
type AggregateSnapshot struct {
	Totals Totals `json:"totals"`
	// Buckets holds per-bucket query counts; Buckets[i] counts queries with
	// wall time in (LatencyBucketBound(i-1), LatencyBucketBound(i)], and the
	// final element counts the overflow (+Inf) bucket.
	Buckets []int64 `json:"latency_buckets"`
	// Exemplars holds, per latency bucket, the most recent traced
	// observation that landed there (nil for untraced buckets); indexes
	// parallel Buckets. Rendered only by the OpenMetrics exposition.
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
	// Rules counts optimizer rule firings by rule name.
	Rules map[string]int64 `json:"rule_firings"`
	// Slow lists the slowest queries seen, slowest first.
	Slow []SlowQuery `json:"slow"`
}

// Snapshot returns a copy of the aggregates safe to read without locks.
func (a *Aggregator) Snapshot() AggregateSnapshot {
	if a == nil {
		return AggregateSnapshot{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := AggregateSnapshot{
		Totals:    a.totals.clone(),
		Buckets:   make([]int64, len(a.buckets)),
		Exemplars: make([]*Exemplar, len(a.exemplars)),
		Rules:     make(map[string]int64, len(a.rules)),
		Slow:      make([]SlowQuery, len(a.slow)),
	}
	copy(s.Buckets, a.buckets[:])
	for i, ex := range a.exemplars {
		if ex != nil {
			cp := *ex
			s.Exemplars[i] = &cp
		}
	}
	for k, v := range a.rules {
		s.Rules[k] = v
	}
	copy(s.Slow, a.slow)
	return s
}

// Reset clears all aggregates.
func (a *Aggregator) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.totals = Totals{}
	a.buckets = [nLatencyBuckets + 1]int64{}
	a.exemplars = [nLatencyBuckets + 1]*Exemplar{}
	a.rules = map[string]int64{}
	a.slow = nil
	a.mu.Unlock()
}

// FlightRecorder is a fixed-capacity ring of the last N full QueryReports,
// for post-hoc inspection through /debug/queries. It implements Sink.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []QueryReport
	next  int
	full  bool
	total int64
}

// NewFlightRecorder returns a recorder retaining the last n reports
// (DefaultFlightCap when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightCap
	}
	return &FlightRecorder{buf: make([]QueryReport, n)}
}

// Emit stores a copy of the report, evicting the oldest at capacity; part
// of Sink.
func (f *FlightRecorder) Emit(r *QueryReport) {
	if f == nil || r == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.next] = *r
	f.next++
	if f.next == len(f.buf) {
		f.next, f.full = 0, true
	}
	f.total++
	f.mu.Unlock()
}

// Cap returns the configured capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.buf)
}

// Total returns how many reports have ever been recorded.
func (f *FlightRecorder) Total() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Find returns a copy of the newest retained report whose request ID or
// trace ID equals id. This is what /debug/trace/{id} serves: the retention
// story for stitched traces is simply that they ride the flight recorder's
// ring alongside every other report.
func (f *FlightRecorder) Find(id string) (QueryReport, bool) {
	if f == nil || id == "" {
		return QueryReport{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.buf)
	if !f.full {
		n = f.next
	}
	// Scan newest to oldest.
	for k := 1; k <= n; k++ {
		i := (f.next - k + len(f.buf)) % len(f.buf)
		if f.buf[i].ID == id || f.buf[i].TraceID == id {
			return f.buf[i], true
		}
	}
	return QueryReport{}, false
}

// Reports returns the retained reports, oldest first.
func (f *FlightRecorder) Reports() []QueryReport {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []QueryReport
	if f.full {
		out = make([]QueryReport, 0, len(f.buf))
		out = append(out, f.buf[f.next:]...)
		out = append(out, f.buf[:f.next]...)
	} else {
		out = make([]QueryReport, f.next)
		copy(out, f.buf[:f.next])
	}
	return out
}

// ExemplarHistogram is a concurrency-safe log-2 latency histogram whose
// buckets carry trace-id exemplars, for histograms outside the Aggregator's
// fleet snapshot (the coordinator's shard round-trip distribution).
type ExemplarHistogram struct {
	mu        sync.Mutex
	buckets   [nLatencyBuckets + 1]int64
	exemplars [nLatencyBuckets + 1]*Exemplar
	sum       time.Duration
	count     int64
}

// Observe folds one observation in; ts is when it completed.
func (h *ExemplarHistogram) Observe(d time.Duration, traceID string, ts time.Time) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	bi := bucketFor(d)
	h.buckets[bi]++
	h.sum += d
	h.count++
	if traceID != "" {
		h.exemplars[bi] = &Exemplar{TraceID: traceID, Value: d.Seconds(), Ts: float64(ts.UnixNano()) / 1e9}
	}
}

// HistogramSnapshot is a consistent copy of an ExemplarHistogram, in the
// shape MetricWriter.Histogram renders: per-bucket counts (last is +Inf)
// with parallel exemplars, plus sum and count.
type HistogramSnapshot struct {
	Buckets   []int64       `json:"buckets"`
	Exemplars []*Exemplar   `json:"exemplars,omitempty"`
	Sum       time.Duration `json:"sum_ns"`
	Count     int64         `json:"count"`
}

// Snapshot returns a copy safe to read without locks.
func (h *ExemplarHistogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Buckets:   make([]int64, len(h.buckets)),
		Exemplars: make([]*Exemplar, len(h.exemplars)),
		Sum:       h.sum,
		Count:     h.count,
	}
	copy(s.Buckets, h.buckets[:])
	for i, ex := range h.exemplars {
		if ex != nil {
			cp := *ex
			s.Exemplars[i] = &cp
		}
	}
	return s
}
