package trace

import (
	"encoding/json"
	"net/http"
)

// metricsPayload is the JSON document the metrics endpoint serves:
// expvar-style cumulative counters plus recent per-query summaries.
type metricsPayload struct {
	Totals Totals         `json:"totals"`
	Recent []querySummary `json:"recent"`
}

// querySummary is the compact per-query line of the metrics endpoint; the
// full optimizer trace stays out of it (fetch reports via a JSON sink for
// that).
type querySummary struct {
	Query       string       `json:"query"`
	WallNanos   int64        `json:"wall_ns"`
	Eval        EvalCounters `json:"eval"`
	IO          IOCounters   `json:"io,omitempty"`
	RuleFirings int          `json:"rule_firings"`
	NodesBefore int          `json:"nodes_before"`
	NodesAfter  int          `json:"nodes_after"`
	Err         string       `json:"err,omitempty"`
}

// Handler serves the recorder's cumulative totals and recent per-query
// summaries as JSON on any GET — the -metricsaddr endpoint of cmd/aql.
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		recent := r.Recent()
		payload := metricsPayload{Totals: r.Totals(), Recent: make([]querySummary, 0, len(recent))}
		for i := range recent {
			rep := &recent[i]
			payload.Recent = append(payload.Recent, querySummary{
				Query:       rep.Query,
				WallNanos:   int64(rep.Wall),
				Eval:        rep.Eval,
				IO:          rep.IO,
				RuleFirings: len(rep.Rules) + rep.RulesDropped,
				NodesBefore: rep.NodesBefore,
				NodesAfter:  rep.NodesAfter,
				Err:         rep.Err,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}
