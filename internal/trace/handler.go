package trace

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// metricsPayload is the JSON document the summary endpoint serves:
// expvar-style cumulative counters plus recent per-query summaries.
type metricsPayload struct {
	Totals Totals         `json:"totals"`
	Recent []querySummary `json:"recent"`
}

// querySummary is the compact per-query line of the summary endpoint; the
// full reports (span trees included) live on /debug/queries. It mirrors
// every dimension a debugging session pivots on: request/trace ids,
// admission queue wait, execution mode and per-shard dispatch outcomes were
// once dropped here, which made the summary view useless for exactly the
// overloaded-cluster investigations it exists for.
type querySummary struct {
	Query       string       `json:"query"`
	ID          string       `json:"id,omitempty"`
	TraceID     string       `json:"trace_id,omitempty"`
	WallNanos   int64        `json:"wall_ns"`
	QueueWait   int64        `json:"queue_wait_ns,omitempty"`
	Mode        string       `json:"mode,omitempty"`
	Eval        EvalCounters `json:"eval"`
	IO          IOCounters   `json:"io,omitempty"`
	RuleFirings int          `json:"rule_firings"`
	NodesBefore int          `json:"nodes_before"`
	NodesAfter  int          `json:"nodes_after"`
	Shards      []ShardSpan  `json:"shards,omitempty"`
	Err         string       `json:"err,omitempty"`
}

// summarize renders one report as its summary line.
func summarize(rep *QueryReport) querySummary {
	return querySummary{
		Query:       rep.Query,
		ID:          rep.ID,
		TraceID:     rep.TraceID,
		WallNanos:   int64(rep.Wall),
		QueueWait:   int64(rep.QueueWait),
		Mode:        rep.Mode,
		Eval:        rep.Eval,
		IO:          rep.IO,
		RuleFirings: len(rep.Rules) + rep.RulesDropped,
		NodesBefore: rep.NodesBefore,
		NodesAfter:  rep.NodesAfter,
		Shards:      rep.Shards,
		Err:         rep.Err,
	}
}

// Handler serves the recorder-only observability endpoints; kept for
// callers without fleet aggregation. Equivalent to NewHandler(r, nil, nil).
func Handler(r *Recorder) http.Handler { return NewHandler(r, nil, nil) }

// NewHandler routes the -metricsaddr observability surface:
//
//	GET /                JSON summary: cumulative totals + recent queries
//	GET /metrics         Prometheus text exposition (requires agg); serves
//	                     OpenMetrics with exemplars when Accept asks for it
//	GET /debug/queries   flight-recorder contents as JSON (requires flight)
//	GET /debug/trace/{id} one retained report as Chrome trace-event JSON,
//	                     looked up by request or trace id (requires flight)
//	GET /debug/slow      slow-query log as JSON (requires agg)
//	/debug/pprof/...     standard net/http/pprof handlers
//
// Every endpoint sets its Content-Type; unknown paths get 404 and non-GET
// methods on known paths get 405. Endpoints whose backing component is nil
// respond 404, so a partial wiring degrades to "not found" rather than
// serving empty documents.
func NewHandler(r *Recorder, agg *Aggregator, flight *FlightRecorder) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, req *http.Request) {
		recent := r.Recent()
		payload := metricsPayload{Totals: r.Totals(), Recent: make([]querySummary, 0, len(recent))}
		for i := range recent {
			payload.Recent = append(payload.Recent, summarize(&recent[i]))
		}
		serveJSON(w, payload)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		if agg == nil {
			http.NotFound(w, req)
			return
		}
		if AcceptsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			b := NewMetricWriter(w, true)
			writeFleetMetrics(b, agg.Snapshot())
			b.WriteEOF()
			return
		}
		w.Header().Set("Content-Type", PrometheusContentType)
		_ = WritePrometheus(w, agg.Snapshot())
	})

	mux.HandleFunc("GET /debug/trace/{id}", func(w http.ResponseWriter, req *http.Request) {
		if flight == nil {
			http.NotFound(w, req)
			return
		}
		rep, ok := flight.Find(req.PathValue("id"))
		if !ok {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, &rep)
	})

	mux.HandleFunc("GET /debug/queries", func(w http.ResponseWriter, req *http.Request) {
		if flight == nil {
			http.NotFound(w, req)
			return
		}
		serveJSON(w, struct {
			Capacity int           `json:"capacity"`
			Total    int64         `json:"total"`
			Reports  []QueryReport `json:"reports"`
		}{flight.Cap(), flight.Total(), flight.Reports()})
	})

	mux.HandleFunc("GET /debug/slow", func(w http.ResponseWriter, req *http.Request) {
		if agg == nil {
			http.NotFound(w, req)
			return
		}
		serveJSON(w, struct {
			Slow []SlowQuery `json:"slow"`
		}{agg.Snapshot().Slow})
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// serveJSON writes v as indented JSON with the JSON content type.
func serveJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
