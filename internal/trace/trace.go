// Package trace is the query observability layer: it records, per query,
// where the time, the evaluator work, and the I/O bytes went.
//
// Section 5 of the paper justifies the optimizer empirically — rule
// firings, intermediate-result sizes and I/O volume are what Libkin,
// Machlin and Wong measured by hand. A QueryReport captures exactly those
// dimensions for every query a Session runs:
//
//   - per-phase wall times for the section 4.1 pipeline
//     (parse -> desugar -> macro -> typecheck -> optimize -> eval)
//   - evaluator counters: steps, cells, tabulations, set operations,
//     comprehension iterations
//   - NetCDF I/O counters: slab reads, bytes, cache hits/misses/prefetches,
//     retries, injected faults
//   - the optimizer trace: each rule firing with its phase and the AST
//     node count of the rewritten subtree before and after
//
// Reports flow through a pluggable Sink (no-op by default; slog and
// JSON-lines sinks ship in the package) and accumulate into
// session-cumulative Totals served by the HTTP Handler.
package trace

import (
	"time"
)

// Pipeline phase names, in pipeline order. PhaseParse covers scanning and
// parsing together (the parser lexes inline).
const (
	PhaseParse     = "parse"
	PhaseDesugar   = "desugar"
	PhaseMacro     = "macro"
	PhaseTypecheck = "typecheck"
	PhaseOptimize  = "optimize"
	PhaseCompile   = "compile"
	PhaseEval      = "eval"
)

// PhaseOrder lists the pipeline phases in execution order, for stable
// rendering of reports. PhaseCompile appears only on paths that prepare a
// reusable compiled plan (the query server); the one-shot engines fold
// closure compilation into PhaseEval.
var PhaseOrder = []string{
	PhaseParse, PhaseDesugar, PhaseMacro, PhaseTypecheck, PhaseOptimize, PhaseCompile, PhaseEval,
}

// PhaseTime is one timed pipeline phase.
type PhaseTime struct {
	Name  string        `json:"name"`
	Wall  time.Duration `json:"wall_ns"`
	Count int           `json:"count"` // number of spans folded in (readval compiles twice)
}

// EvalCounters is the evaluator's work, in machine-independent units.
type EvalCounters struct {
	// Steps counts evaluated core-calculus nodes.
	Steps int64 `json:"steps"`
	// Cells counts collection/array cells charged by constructors,
	// tabulation, gen and index.
	Cells int64 `json:"cells"`
	// Tabulations counts array tabulations performed ([[ e | i < n ]]).
	Tabulations int64 `json:"tabulations"`
	// SetOps counts set/bag algebra operations (unions, big unions, gen,
	// index, ranked unions).
	SetOps int64 `json:"set_ops"`
	// Iterations counts comprehension loop-body evaluations (big unions,
	// ranked unions, summation).
	Iterations int64 `json:"iterations"`
}

// Add accumulates other into c.
func (c *EvalCounters) Add(other EvalCounters) {
	c.Steps += other.Steps
	c.Cells += other.Cells
	c.Tabulations += other.Tabulations
	c.SetOps += other.SetOps
	c.Iterations += other.Iterations
}

// IOCounters is the NetCDF I/O work observed while a query ran.
type IOCounters struct {
	// SlabReads counts hyperslab read requests served.
	SlabReads int64 `json:"slab_reads"`
	// BytesRead counts external data bytes delivered to slab decoding.
	BytesRead int64 `json:"bytes_read"`
	// CacheHits / CacheMisses / Prefetches report block-cache behaviour
	// when a file was opened through a CachedReaderAt.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Prefetches  int64 `json:"prefetches"`
	// Retries counts transient-error re-reads by a RetryingReaderAt.
	Retries int64 `json:"retries"`
	// Faults counts injected faults observed by a FaultyReaderAt (tests
	// and soak runs).
	Faults int64 `json:"faults"`
	// Tile-cache counters (out-of-core lazy arrays): demand lookups served
	// from cache vs. faulted in, readahead fetches and how many of them a
	// later demand actually used, nominal bytes fetched from storage vs.
	// delivered to the query, and spill-file traffic.
	TileHits           int64 `json:"tile_hits,omitempty"`
	TileMisses         int64 `json:"tile_misses,omitempty"`
	TilePrefetches     int64 `json:"tile_prefetches,omitempty"`
	TilePrefetchUseful int64 `json:"tile_prefetch_useful,omitempty"`
	BytesScanned       int64 `json:"bytes_scanned,omitempty"`
	BytesReturned      int64 `json:"bytes_returned,omitempty"`
	SpillBytesWritten  int64 `json:"spill_bytes_written,omitempty"`
	SpillBytesRead     int64 `json:"spill_bytes_read,omitempty"`
}

// Add accumulates other into c.
func (c *IOCounters) Add(other IOCounters) {
	c.SlabReads += other.SlabReads
	c.BytesRead += other.BytesRead
	c.CacheHits += other.CacheHits
	c.CacheMisses += other.CacheMisses
	c.Prefetches += other.Prefetches
	c.Retries += other.Retries
	c.Faults += other.Faults
	c.TileHits += other.TileHits
	c.TileMisses += other.TileMisses
	c.TilePrefetches += other.TilePrefetches
	c.TilePrefetchUseful += other.TilePrefetchUseful
	c.BytesScanned += other.BytesScanned
	c.BytesReturned += other.BytesReturned
	c.SpillBytesWritten += other.SpillBytesWritten
	c.SpillBytesRead += other.SpillBytesRead
}

// IsZero reports whether no I/O was observed.
func (c IOCounters) IsZero() bool { return c == IOCounters{} }

// RuleFiring records one optimizer rule application: which rule, in which
// phase, and the node count of the rewritten subtree before and after —
// the per-rewrite size accounting that makes EXPLAIN output diffable.
type RuleFiring struct {
	Phase       string `json:"phase"`
	Rule        string `json:"rule"`
	NodesBefore int    `json:"nodes_before"`
	NodesAfter  int    `json:"nodes_after"`
}

// QueryReport is the observability record of one query (or top-level
// statement): phase timings, evaluator counters, I/O counters, and the
// optimizer trace.
type QueryReport struct {
	// Query is the source text (or a statement label like "readval x
	// using NETCDF").
	Query string `json:"query"`
	// ID is the request id of the query: client-supplied (X-Request-ID,
	// sanitized) or server-minted. Empty outside the query server.
	ID string `json:"id,omitempty"`
	// TraceID is the distributed trace id (32 hex digits) the query ran
	// under: honored from an inbound traceparent header or minted at the
	// coordinator, and shared by every worker-side shard report of the same
	// logical query. Empty when no trace context was in play.
	TraceID string `json:"trace_id,omitempty"`
	// Start is when the pipeline began; Wall is total elapsed time.
	Start time.Time     `json:"start"`
	Wall  time.Duration `json:"wall_ns"`
	// Phases holds per-phase wall times in pipeline order.
	Phases []PhaseTime `json:"phases"`
	// Engine names the execution engine that ran the evaluation ("interp"
	// or "compiled"), so perf trajectories in report sinks are attributable
	// to an engine. Empty for statements that evaluated nothing.
	Engine string `json:"engine,omitempty"`
	// Eval and IO are the work counters.
	Eval EvalCounters `json:"eval"`
	IO   IOCounters   `json:"io"`
	// Rules is the optimizer trace; RulesDropped counts firings beyond
	// the recording cap.
	Rules        []RuleFiring `json:"rules,omitempty"`
	RulesDropped int          `json:"rules_dropped,omitempty"`
	// NodesBefore/NodesAfter are whole-query AST node counts around the
	// optimizer.
	NodesBefore int `json:"nodes_before"`
	NodesAfter  int `json:"nodes_after"`
	// Spans is the operator-level span tree of the evaluation, present when
	// the session's profiling level was sampled or full; ProfLevel records
	// which. Cumulative wall times and self counters per operator; see
	// eval.SpanNode for the exact semantics at each level.
	Spans     *SpanNode `json:"spans,omitempty"`
	ProfLevel string    `json:"prof_level,omitempty"`
	// Explain is the joined estimate-vs-actual table of the run, present
	// when the query executed from a plan carrying prepare-time estimates
	// (see JoinEstimates). Immutable once recorded, so report copies share
	// the pointer.
	Explain *ExplainTable `json:"explain,omitempty"`
	// Cached reports that the query executed from a prepared-plan cache
	// hit: no parse/typecheck/optimize/compile phase ran for this request
	// (their PhaseTime entries are absent or zero).
	Cached bool `json:"cached,omitempty"`
	// QueueWait is the time the request spent queued in admission control
	// before a slot freed (zero when admitted on the fast path), so overload
	// investigations can separate queueing from evaluation.
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	// Mode records how a coordinator executed the query: "distributed" (all
	// shards remote), "distributed:partial" (some shards fell back to local
	// execution), "degraded:local" (no worker reachable, everything local)
	// or "local" (not sharded). Empty outside coordinator mode.
	Mode string `json:"mode,omitempty"`
	// Shards holds per-shard dispatch outcomes of a coordinator execution.
	Shards []ShardSpan `json:"shards,omitempty"`
	// Err is the error text when the query failed, "" otherwise.
	Err string `json:"err,omitempty"`
}

// ShardSpan is the dispatch record of one scatter-gather shard: its
// row-major range, the worker whose response won ("local" when the shard
// fell back to in-process execution), how many dispatch attempts it took
// (retries and hedges each count one), whether a hedge was launched, and
// the shard's wall time from first dispatch to winning response.
//
// Since distributed tracing (DESIGN.md §10) a ShardSpan also carries the
// cross-node stitching payload: the winning worker's span subtree grafted
// under an attempt span, sibling attempt spans for every retry/hedge
// dispatch annotated won/lost/cancelled, and the winning worker's
// admission queue wait.
type ShardSpan struct {
	Shard    int           `json:"shard"`
	Start    int64         `json:"start"`
	End      int64         `json:"end"`
	Worker   string        `json:"worker"`
	Attempts int           `json:"attempts"`
	Hedged   bool          `json:"hedged,omitempty"`
	Wall     time.Duration `json:"wall_ns"`
	// QueueWait is the winning worker's admission-queue wait for this
	// shard (zero for local execution or an immediately-admitted shard).
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	// AttemptSpans records every dispatch attempt of the shard in launch
	// order: exactly one has Outcome "won"; failed dispatches are "lost"
	// and abandoned in-flight dispatches (hedge losers) are "cancelled".
	AttemptSpans []AttemptSpan `json:"attempt_spans,omitempty"`
	// Spans is the shard's stitched span subtree: a "shard" node whose
	// children are the attempt spans, with the winning attempt carrying the
	// worker's own span tree (or a local "eval" span after fallback).
	// Counters appear only under the winning attempt — the one whose work
	// the merged totals count.
	Spans *SpanNode `json:"spans,omitempty"`
}

// AttemptSpan records one dispatch attempt of a shard. StartOff is the
// attempt's launch time relative to the shard's first dispatch, so hedges
// render as overlapping spans in exported traces.
type AttemptSpan struct {
	Attempt int    `json:"attempt"`
	Worker  string `json:"worker"`
	// Outcome is "won" (this response was used), "lost" (the dispatch
	// completed with a failure) or "cancelled" (abandoned in flight when a
	// sibling won or the shard moved on).
	Outcome string `json:"outcome"`
	// Hedge marks attempts launched by the hedging timer rather than the
	// retry loop.
	Hedge    bool          `json:"hedge,omitempty"`
	StartOff time.Duration `json:"start_off_ns"`
	Wall     time.Duration `json:"wall_ns"`
	Err      string        `json:"err,omitempty"`
}

// SpanNode is one profiled operator of a query's span tree: invocation
// counts, cumulative and self wall time, self work counters, and — for
// parallel tabulations — per-worker ranges and busy times. The trace
// package keeps its own mirror of eval.SpanNode so it stays decoupled from
// the engines (it depends only on the standard library).
type SpanNode struct {
	Op string `json:"op"`
	// Node names the process the span executed on, for stitched multi-node
	// trees: a worker base URL, "local", or "coordinator". Empty in
	// single-process trees.
	Node string `json:"node,omitempty"`
	// Outcome annotates shard attempt spans: "won", "lost" or "cancelled".
	Outcome string `json:"outcome,omitempty"`
	// StartOff is a stitched attempt span's launch offset relative to its
	// parent shard span's start, so exported traces show retries as
	// sequential and hedges as overlapping. Zero elsewhere.
	StartOff    time.Duration `json:"start_off_ns,omitempty"`
	Invocations int64         `json:"invocations"`
	Measured    int64         `json:"measured,omitempty"`
	WallCum     time.Duration `json:"wall_cum_ns"`
	WallSelf    time.Duration `json:"wall_self_ns"`
	Steps       int64         `json:"steps,omitempty"`
	Cells       int64         `json:"cells,omitempty"`
	Tabulations int64         `json:"tabulations,omitempty"`
	SetOps      int64         `json:"set_ops,omitempty"`
	Iterations  int64         `json:"iterations,omitempty"`

	Workers        []WorkerSpan `json:"workers,omitempty"`
	WorkersDropped int          `json:"workers_dropped,omitempty"`

	Children []*SpanNode `json:"children,omitempty"`
}

// WorkerSpan records one parallel-tabulation worker: its contiguous
// row-major element range, loop busy time, and steps charged.
type WorkerSpan struct {
	Worker int           `json:"worker"`
	Start  int           `json:"start"`
	End    int           `json:"end"`
	Busy   time.Duration `json:"busy_ns"`
	Steps  int64         `json:"steps"`
}

// Walk calls fn for the node and every descendant, depth-first.
func (n *SpanNode) Walk(fn func(*SpanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Phase returns the accumulated wall time of the named phase.
func (r *QueryReport) Phase(name string) time.Duration {
	for _, p := range r.Phases {
		if p.Name == name {
			return p.Wall
		}
	}
	return 0
}

// addPhase folds a span into the named phase's total.
func (r *QueryReport) addPhase(name string, d time.Duration) {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			r.Phases[i].Wall += d
			r.Phases[i].Count++
			return
		}
	}
	r.Phases = append(r.Phases, PhaseTime{Name: name, Wall: d, Count: 1})
}

// Totals is the session-cumulative view served by the metrics handler and
// the REPL's :stats command.
type Totals struct {
	// Queries counts finished reports; Errors counts the failed ones.
	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors"`
	// Wall is total pipeline wall time across reports.
	Wall time.Duration `json:"wall_ns"`
	// PhaseWall is cumulative wall time by phase name.
	PhaseWall map[string]time.Duration `json:"phase_wall_ns"`
	// Eval and IO accumulate the per-query counters.
	Eval EvalCounters `json:"eval"`
	IO   IOCounters   `json:"io"`
	// RuleFirings counts optimizer rewrites across queries.
	RuleFirings int64 `json:"rule_firings"`
}

// add folds one finished report into the totals.
func (t *Totals) add(r *QueryReport) {
	t.Queries++
	if r.Err != "" {
		t.Errors++
	}
	t.Wall += r.Wall
	if t.PhaseWall == nil {
		t.PhaseWall = map[string]time.Duration{}
	}
	for _, p := range r.Phases {
		t.PhaseWall[p.Name] += p.Wall
	}
	t.Eval.Add(r.Eval)
	t.IO.Add(r.IO)
	t.RuleFirings += int64(len(r.Rules) + r.RulesDropped)
}

// clone returns a deep copy safe to hand out under no lock.
func (t *Totals) clone() Totals {
	out := *t
	out.PhaseWall = make(map[string]time.Duration, len(t.PhaseWall))
	for k, v := range t.PhaseWall {
		out.PhaseWall[k] = v
	}
	return out
}
