package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	tc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || tc.ParentSpanID != "00f067aa0ba902b7" || !tc.Sampled {
		t.Fatalf("parsed = %+v", tc)
	}
	if tc2, ok := ParseTraceparent("00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-00"); !ok {
		t.Fatal("uppercase traceparent rejected")
	} else if tc2.TraceID != tc.TraceID || tc2.Sampled {
		t.Fatalf("uppercase parse = %+v", tc2)
	}
	// Future versions parse forward-compatibly (extra fields allowed).
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Fatal("future-version traceparent rejected")
	}
	bad := []string{
		"",
		"00-short-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // version ff forbidden
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",          // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 takes exactly 4 fields
		"00-zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // non-hex
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if len(tc.TraceID) != 32 || len(tc.ParentSpanID) != 16 || !tc.Sampled {
		t.Fatalf("minted context = %+v", tc)
	}
	back, ok := ParseTraceparent(tc.Traceparent())
	if !ok || back != tc {
		t.Fatalf("round trip: %+v -> %q -> %+v", tc, tc.Traceparent(), back)
	}
	child := tc.Child("00f067aa0ba902b7")
	if child.TraceID != tc.TraceID || child.ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("child = %+v", child)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"req-42", "req-42"},
		{"a b\nc", "abc"},
		{"x;rm -rf /;y", "xrm-rfy"},
		{"trace:load.test_1", "trace:load.test_1"},
		{"\x00\x1b[31m", "31m"},
		{"", ""},
		{strings.Repeat("a", 100), strings.Repeat("a", 64)},
	}
	for _, c := range cases {
		if got := SanitizeRequestID(c.in); got != c.want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// stitchedFixture builds a well-formed two-attempt stitched tree (one lost
// dispatch, one hedged winner carrying a worker subtree) and the flat
// counters it must sum to.
func stitchedFixture() (*SpanNode, EvalCounters) {
	planC := EvalCounters{Steps: 10, Cells: 5, Iterations: 2}
	evalC := EvalCounters{Steps: 90, Cells: 45, Tabulations: 2, Iterations: 8}
	flat := planC
	flat.Add(evalC)

	eval := NewSpan(SpanEval, "http://w1", 50*time.Millisecond).SetCounters(evalC).FinalizeSelf()
	qw := NewSpan(SpanQueueWait, "http://w1", 5*time.Millisecond).FinalizeSelf()
	worker := NewSpan(SpanWorker, "http://w1", 60*time.Millisecond)
	worker.Children = []*SpanNode{qw, eval}
	worker.FinalizeSelf()

	won := NewSpan(SpanAttempt, "http://w1", 70*time.Millisecond)
	won.Outcome = "won"
	won.StartOff = 10 * time.Millisecond
	won.Children = []*SpanNode{worker}
	won.FinalizeSelf()

	lost := NewSpan(SpanAttempt, "http://w2", 10*time.Millisecond).FinalizeSelf()
	lost.Outcome = "lost"

	shard := NewSpan(SpanShard, "", 80*time.Millisecond)
	shard.Children = []*SpanNode{lost, won}
	shard.FinalizeSelf()

	plan := NewSpan(SpanPlan, "coordinator", 10*time.Millisecond).SetCounters(planC).FinalizeSelf()
	root := NewSpan(SpanScatter, "coordinator", 100*time.Millisecond)
	root.Children = []*SpanNode{plan, shard}
	root.FinalizeSelf()
	return root, flat
}

func TestCheckStitchedAccepts(t *testing.T) {
	root, flat := stitchedFixture()
	if err := CheckStitched(root, flat); err != nil {
		t.Fatalf("well-formed tree rejected: %v", err)
	}
}

func TestCheckStitchedRejects(t *testing.T) {
	t.Run("nil tree", func(t *testing.T) {
		if CheckStitched(nil, EvalCounters{}) == nil {
			t.Fatal("nil tree accepted")
		}
	})
	t.Run("counter mismatch", func(t *testing.T) {
		root, flat := stitchedFixture()
		flat.Steps++
		if CheckStitched(root, flat) == nil {
			t.Fatal("skewed counters accepted")
		}
	})
	t.Run("self-time skew", func(t *testing.T) {
		root, flat := stitchedFixture()
		root.Children[1].WallSelf += time.Millisecond
		if CheckStitched(root, flat) == nil {
			t.Fatal("inconsistent self time accepted")
		}
	})
	t.Run("counters on lost attempt", func(t *testing.T) {
		root, flat := stitchedFixture()
		shard := root.Children[1]
		shard.Children[0].Steps = 3 // the lost attempt
		flat.Steps += 3             // keep the sum exact: the attempt rule must fire
		if CheckStitched(root, flat) == nil {
			t.Fatal("lost attempt with counters accepted")
		}
	})
	t.Run("two winners", func(t *testing.T) {
		root, flat := stitchedFixture()
		shard := root.Children[1]
		shard.Children[0].Outcome = "won"
		if CheckStitched(root, flat) == nil {
			t.Fatal("two winning attempts accepted")
		}
	})
	t.Run("no winner", func(t *testing.T) {
		root, _ := stitchedFixture()
		shard := root.Children[1]
		shard.Children[1].Outcome = "cancelled"
		// Strip the winner's counters so only the sum rule could save it.
		shard.Walk(func(n *SpanNode) { *n = *NewSpan(n.Op, n.Node, n.WallCum).FinalizeSelf() })
		if CheckStitched(root, EvalCounters{Steps: 10, Cells: 5, Iterations: 2}) == nil {
			t.Fatal("shard without a winner accepted")
		}
	})
	t.Run("unknown outcome", func(t *testing.T) {
		root, flat := stitchedFixture()
		root.Children[1].Children[0].Outcome = "maybe"
		if CheckStitched(root, flat) == nil {
			t.Fatal("unknown attempt outcome accepted")
		}
	})
}

func TestWriteChromeTrace(t *testing.T) {
	spans, flat := stitchedFixture()
	rep := &QueryReport{
		Query:   "[i+j | i<100, j<100]",
		ID:      "q000042",
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		Start:   time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Wall:    100 * time.Millisecond,
		Phases: []PhaseTime{
			{Name: PhaseParse, Wall: time.Millisecond},
			{Name: PhaseEval, Wall: 90 * time.Millisecond},
		},
		Eval:      flat,
		QueueWait: 2 * time.Millisecond,
		Mode:      "scatter",
		ProfLevel: ProfStitched,
		Spans:     spans,
		Shards: []ShardSpan{{
			Shard: 0, Start: 0, End: 10000, Worker: "http://w1", Attempts: 2, Hedged: true,
			Wall:  80 * time.Millisecond,
			Spans: spans.Children[1],
			AttemptSpans: []AttemptSpan{
				{Attempt: 1, Worker: "http://w2", Outcome: "lost", Wall: 10 * time.Millisecond},
				{Attempt: 2, Worker: "http://w1", Outcome: "won", Hedge: true, StartOff: 10 * time.Millisecond, Wall: 70 * time.Millisecond},
			},
		}},
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData["id"] != "q000042" || doc.OtherData["trace_id"] != rep.TraceID {
		t.Fatalf("otherData ids = %v", doc.OtherData)
	}
	var complete, meta int
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("event %q has negative timing: ts=%v dur=%v", e.Name, e.Ts, e.Dur)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q on event %q", e.Ph, e.Name)
		}
		names[e.Name] = true
	}
	if complete == 0 || meta == 0 {
		t.Fatalf("events: %d complete, %d metadata", complete, meta)
	}
	for _, want := range []string{"queue_wait", PhaseParse, PhaseEval, SpanShard, "attempt (won)", "attempt (lost)", SpanWorker, SpanEval} {
		if !names[want] {
			t.Errorf("export missing %q span; have %v", want, names)
		}
	}
	if WriteChromeTrace(&buf, nil) == nil {
		t.Fatal("nil report exported")
	}
}

func TestFlightRecorderFind(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.Emit(&QueryReport{Query: fmt.Sprintf("q%d", i), ID: fmt.Sprintf("id%d", i), TraceID: fmt.Sprintf("%032d", i)})
	}
	if _, ok := f.Find("id1"); ok {
		t.Fatal("evicted report found")
	}
	rep, ok := f.Find("id4")
	if !ok || rep.Query != "q4" {
		t.Fatalf("Find(id4) = %+v, %v", rep, ok)
	}
	if rep, ok = f.Find(fmt.Sprintf("%032d", 5)); !ok || rep.ID != "id5" {
		t.Fatalf("Find by trace id = %+v, %v", rep, ok)
	}
	if _, ok = f.Find("nope"); ok {
		t.Fatal("unknown id found")
	}
	if _, ok = f.Find(""); ok {
		t.Fatal("empty id found")
	}
}

func TestPlanStatsStore(t *testing.T) {
	s := NewPlanStatsStore(2)
	spans, flat := stitchedFixture()
	rep := &QueryReport{
		Query: "q", Start: time.Unix(1000, 0), Wall: 100 * time.Millisecond,
		Eval: flat, Cached: true, Spans: spans, ProfLevel: ProfStitched,
		Shards: []ShardSpan{
			{Shard: 0, Worker: "http://w1", Attempts: 2, Hedged: true, Wall: 80 * time.Millisecond},
			{Shard: 1, Worker: "local", Attempts: 1, Wall: 40 * time.Millisecond},
		},
	}
	s.Observe("q@e1", rep)
	s.Observe("q@e1", rep)

	p, ok := s.Get("q@e1")
	if !ok {
		t.Fatal("observed plan not tracked")
	}
	if p.Queries != 2 || p.CacheHits != 2 || p.Errors != 0 {
		t.Fatalf("counts = %+v", p)
	}
	if p.CellsLast != flat.Cells || p.CellsTotal != 2*flat.Cells {
		t.Fatalf("cells = last %d total %d", p.CellsLast, p.CellsTotal)
	}
	// The first observation seeds the EWMA, so two identical observations
	// leave it exactly at the observed level.
	if p.CellsEWMA != float64(flat.Cells) {
		t.Fatalf("cells EWMA = %v, want %v", p.CellsEWMA, float64(flat.Cells))
	}
	if p.LatencyLast != rep.Wall || p.LatencyEWMA != rep.Wall {
		t.Fatalf("latency = last %v ewma %v", p.LatencyLast, p.LatencyEWMA)
	}
	if p.ShardsPlanned != 4 || p.ShardsRemote != 2 || p.ShardsLocal != 2 || p.ShardRetries != 2 || p.ShardHedges != 2 {
		t.Fatalf("shard profile = %+v", p)
	}
	// max/mean = 80ms / 60ms; the first observation seeds the EWMA.
	wantBal := float64(80*time.Millisecond) / float64(60*time.Millisecond)
	if got := p.BalanceEWMA; got < wantBal-1e-9 || got > wantBal+1e-9 {
		t.Fatalf("balance EWMA = %v, want %v", got, wantBal)
	}
	if p.SelfTime[SpanEval] == nil || p.SelfTime[SpanEval].Steps != 2*90 {
		t.Fatalf("self-time profile = %+v", p.SelfTime)
	}

	// Eviction: capacity 2, oldest LastSeen goes first.
	later := &QueryReport{Query: "r", Start: time.Unix(2000, 0), Wall: time.Millisecond}
	s.Observe("r@e1", later)
	newest := &QueryReport{Query: "s", Start: time.Unix(3000, 0), Wall: time.Millisecond}
	s.Observe("s@e1", newest)
	if _, ok := s.Get("q@e1"); ok {
		t.Fatal("least-recently-seen plan survived eviction")
	}
	snap := s.Snapshot()
	if len(snap.Plans) != 2 || snap.Evictions != 1 {
		t.Fatalf("snapshot = %d plans, %d evictions", len(snap.Plans), snap.Evictions)
	}
	if snap.Plans[0].Key > snap.Plans[1].Key {
		t.Fatalf("snapshot not sorted: %q > %q", snap.Plans[0].Key, snap.Plans[1].Key)
	}

	var nilStore *PlanStatsStore
	nilStore.Observe("k", rep)
	if _, ok := nilStore.Get("k"); ok {
		t.Fatal("nil store tracked a plan")
	}
	if n := nilStore.Snapshot(); len(n.Plans) != 0 {
		t.Fatal("nil store snapshot non-empty")
	}
}

func TestAcceptsOpenMetrics(t *testing.T) {
	yes := []string{
		"application/openmetrics-text",
		"application/openmetrics-text; version=1.0.0; charset=utf-8",
		"text/plain, application/openmetrics-text;q=0.9",
		"APPLICATION/OPENMETRICS-TEXT",
	}
	no := []string{"", "text/plain", "*/*", "application/json"}
	for _, a := range yes {
		if !AcceptsOpenMetrics(a) {
			t.Errorf("AcceptsOpenMetrics(%q) = false", a)
		}
	}
	for _, a := range no {
		if AcceptsOpenMetrics(a) {
			t.Errorf("AcceptsOpenMetrics(%q) = true", a)
		}
	}
}

// omSampleRe matches one OpenMetrics sample line, optionally carrying an
// exemplar: name{labels} value [# {labels} value timestamp].
var omSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ #]+( # \{[^{}]*\} [^ ]+ [0-9]+\.[0-9]+)?$`)

// checkOpenMetrics validates exposition text against the OpenMetrics text
// grammar closely enough to catch malformed lines: HELP/TYPE pairs, sample
// lines (with optional exemplars), and a final # EOF.
func checkOpenMetrics(t *testing.T, text string) (exemplars int) {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "# EOF" {
		t.Fatalf("exposition does not end with # EOF: %q", lines[len(lines)-1])
	}
	families := map[string]string{} // name -> type
	for i, line := range lines[:len(lines)-1] {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			// # HELP <name> <docstring>
			rest := strings.TrimPrefix(line, "# HELP ")
			if name, _, ok := strings.Cut(rest, " "); !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if strings.HasSuffix(name, "_total") {
				t.Fatalf("line %d: OpenMetrics counter family keeps _total: %q", i+1, line)
			}
			families[name] = typ
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", i+1, line)
		default:
			if !omSampleRe.MatchString(line) {
				t.Fatalf("line %d: malformed sample %q", i+1, line)
			}
			if strings.Contains(line, " # {") {
				exemplars++
				name, _, _ := strings.Cut(line, "{")
				name, _, _ = strings.Cut(name, " ")
				if !strings.HasSuffix(name, "_bucket") && !strings.HasSuffix(name, "_total") {
					t.Fatalf("line %d: exemplar on non-bucket, non-counter sample %q", i+1, line)
				}
			}
		}
	}
	if len(families) == 0 {
		t.Fatal("no metric families in exposition")
	}
	return exemplars
}

func TestWriteOpenMetricsGrammar(t *testing.T) {
	agg := NewAggregator(8)
	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	agg.Emit(&QueryReport{
		Query: "q", ID: "id1", TraceID: traceID,
		Start: time.Unix(1754650000, 0), Wall: 3 * time.Millisecond,
		Eval:   EvalCounters{Steps: 10, Cells: 4},
		Phases: []PhaseTime{{Name: PhaseEval, Wall: 3 * time.Millisecond}},
	})
	agg.Emit(&QueryReport{Query: "r", Start: time.Unix(1754650001, 0), Wall: time.Millisecond})

	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, agg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(OpenMetricsEOF)
	ex := checkOpenMetrics(t, buf.String())
	if ex == 0 {
		t.Fatal("no exemplars in exposition despite a traced observation")
	}
	if !strings.Contains(buf.String(), `# {trace_id="`+traceID+`"}`) {
		t.Fatalf("exemplar does not carry the trace id:\n%s", buf.String())
	}

	// The classic rendering of the same snapshot must carry no exemplars
	// and keep _total family names.
	var classic bytes.Buffer
	if err := WritePrometheus(&classic, agg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "# {") || strings.Contains(classic.String(), "# EOF") {
		t.Fatal("classic exposition leaked OpenMetrics syntax")
	}
	if !strings.Contains(classic.String(), "# TYPE aql_queries_total counter") {
		t.Fatal("classic exposition dropped the _total family name")
	}
}

func TestExemplarHistogram(t *testing.T) {
	var h ExemplarHistogram
	h.Observe(3*time.Millisecond, "", time.Unix(1, 0))
	h.Observe(4*time.Millisecond, "aaaa", time.Unix(2, 0))
	h.Observe(time.Hour, "bbbb", time.Unix(3, 0))
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 7*time.Millisecond+time.Hour {
		t.Fatalf("snapshot = count %d sum %v", s.Count, s.Sum)
	}
	var total int64
	var withEx int
	for _, n := range s.Buckets {
		total += n
	}
	for _, ex := range s.Exemplars {
		if ex != nil {
			withEx++
		}
	}
	if total != 3 {
		t.Fatalf("bucket total = %d", total)
	}
	// The 3ms (untraced) and 4ms (traced) observations share a bucket; the
	// traced one must be its exemplar. The 1h one lands in +Inf.
	if withEx != 2 {
		t.Fatalf("exemplar count = %d, want 2", withEx)
	}
}

// TestSummaryViewGolden locks the rendered summary entry: the debug JSON
// view once dropped queue_wait_ns and the shard spans, so the fields are
// pinned by name here.
func TestSummaryViewGolden(t *testing.T) {
	rep := &QueryReport{
		Query:       "len!A",
		ID:          "q000007",
		TraceID:     "4bf92f3577b34da6a3ce929d0e0e4736",
		Wall:        5 * time.Millisecond,
		QueueWait:   2 * time.Millisecond,
		Mode:        "scatter",
		Eval:        EvalCounters{Steps: 11, Cells: 3},
		NodesBefore: 4,
		NodesAfter:  2,
		Shards: []ShardSpan{{
			Shard: 0, Start: 0, End: 8, Worker: "http://w1", Attempts: 1,
			Wall: 3 * time.Millisecond, QueueWait: time.Millisecond,
		}},
	}
	got, err := json.Marshal(summarize(rep))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"query":"len!A","id":"q000007","trace_id":"4bf92f3577b34da6a3ce929d0e0e4736",` +
		`"wall_ns":5000000,"queue_wait_ns":2000000,"mode":"scatter",` +
		`"eval":{"steps":11,"cells":3,"tabulations":0,"set_ops":0,"iterations":0},` +
		`"io":{"slab_reads":0,"bytes_read":0,"cache_hits":0,"cache_misses":0,"prefetches":0,"retries":0,"faults":0},` +
		`"rule_firings":0,"nodes_before":4,"nodes_after":2,` +
		`"shards":[{"shard":0,"start":0,"end":8,"worker":"http://w1","attempts":1,"wall_ns":3000000,"queue_wait_ns":1000000}]}`
	if string(got) != want {
		t.Fatalf("summary entry drifted:\n got %s\nwant %s", got, want)
	}
}

func TestHandlerSummaryAndTraceEndpoints(t *testing.T) {
	rec := NewRecorder(nil)
	flight := NewFlightRecorder(8)
	agg := NewAggregator(8)
	rec.SetSink(MultiSink{flight, agg})
	rec.Begin("len!A")
	rec.RecordID("q000001")
	rec.RecordTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	rec.RecordQueueWait(2 * time.Millisecond)
	rec.RecordMode("scatter")
	rec.RecordShards([]ShardSpan{{Shard: 0, End: 8, Worker: "local", Attempts: 1, Wall: time.Millisecond}})
	rec.RecordEval(EvalCounters{Steps: 5})
	rec.End(nil)

	h := NewHandler(rec, agg, flight)

	// The summary view carries ids, queue wait, mode and shard spans.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/", nil))
	var payload struct {
		Recent []map[string]any `json:"recent"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &payload); err != nil || len(payload.Recent) != 1 {
		t.Fatalf("summary decode: %v (%d entries)", err, len(payload.Recent))
	}
	entry := payload.Recent[0]
	for _, key := range []string{"id", "trace_id", "queue_wait_ns", "mode", "shards"} {
		if _, ok := entry[key]; !ok {
			t.Errorf("summary entry missing %q: %v", key, entry)
		}
	}

	// /debug/trace/{id} serves the report by request id and by trace id.
	for _, id := range []string{"q000001", "4bf92f3577b34da6a3ce929d0e0e4736"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/trace/"+id, nil))
		if w.Code != 200 {
			t.Fatalf("GET /debug/trace/%s = %d", id, w.Code)
		}
		var doc map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
			t.Fatalf("trace export not JSON: %v", err)
		}
		if _, ok := doc["traceEvents"]; !ok {
			t.Fatal("trace export missing traceEvents")
		}
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/trace/unknown", nil))
	if w.Code != 404 {
		t.Fatalf("GET /debug/trace/unknown = %d, want 404", w.Code)
	}

	// /metrics negotiates OpenMetrics via Accept.
	w = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	h.ServeHTTP(w, req)
	if ct := w.Header().Get("Content-Type"); ct != OpenMetricsContentType {
		t.Fatalf("negotiated Content-Type = %q", ct)
	}
	checkOpenMetrics(t, w.Body.String())
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if ct := w.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("default Content-Type = %q", ct)
	}
}
