package trace

import (
	"testing"
	"time"
)

// TestPlanStatsEWMASeededFromFirstObservation pins the seeding fix: the
// first observation IS the moving average. Starting the recurrence from
// zero would bias early readings low by (1-α)^n of the true level — a plan
// observed once would report a cells EWMA of 0.2×actual.
func TestPlanStatsEWMASeededFromFirstObservation(t *testing.T) {
	store := NewPlanStatsStore(4)
	rep := &QueryReport{
		Start: time.Now(),
		Wall:  50 * time.Millisecond,
		Eval:  EvalCounters{Cells: 1000},
	}
	store.Observe("k", rep)
	p, ok := store.Get("k")
	if !ok {
		t.Fatal("plan not tracked")
	}
	if p.CellsEWMA != 1000 {
		t.Fatalf("first-observation cells EWMA = %v, want exactly 1000", p.CellsEWMA)
	}
	if p.LatencyEWMA != 50*time.Millisecond {
		t.Fatalf("first-observation latency EWMA = %v, want exactly 50ms", p.LatencyEWMA)
	}

	// From the second observation on, the standard recurrence applies.
	store.Observe("k", &QueryReport{
		Start: time.Now(),
		Wall:  100 * time.Millisecond,
		Eval:  EvalCounters{Cells: 2000},
	})
	p, _ = store.Get("k")
	if want := 1000 + ewmaAlpha*(2000-1000); p.CellsEWMA != want {
		t.Fatalf("second-observation cells EWMA = %v, want %v", p.CellsEWMA, want)
	}
	wantLat := 50*time.Millisecond + time.Duration(ewmaAlpha*float64(50*time.Millisecond))
	if p.LatencyEWMA != wantLat {
		t.Fatalf("second-observation latency EWMA = %v, want %v", p.LatencyEWMA, wantLat)
	}
}

// TestPlanStatsMisestimateProfile: joined explain tables fold into the
// plan's misestimate profile — flagged-operator counts, the last and
// EWMA-smoothed worst q-error (seeded from the first sample like the other
// EWMAs), and the offending operator path.
func TestPlanStatsMisestimateProfile(t *testing.T) {
	store := NewPlanStatsStore(4)
	rep := func(mis int, worst float64, op string) *QueryReport {
		return &QueryReport{
			Start:   time.Now(),
			Explain: &ExplainTable{Misestimates: mis, WorstQError: worst, WorstOp: op},
		}
	}

	store.Observe("k", rep(2, 4.0, "tab/index"))
	p, _ := store.Get("k")
	if p.Misestimates != 2 {
		t.Fatalf("misestimates = %d, want 2", p.Misestimates)
	}
	if p.WorstQErrorLast != 4.0 || p.WorstQErrorEWMA != 4.0 {
		t.Fatalf("worst q-error last/ewma = %v/%v, want seed 4.0", p.WorstQErrorLast, p.WorstQErrorEWMA)
	}
	if p.WorstQErrorOp != "tab/index" {
		t.Fatalf("worst op = %q", p.WorstQErrorOp)
	}

	store.Observe("k", rep(1, 9.0, "tab/app"))
	p, _ = store.Get("k")
	if p.Misestimates != 3 {
		t.Fatalf("misestimates = %d, want 3", p.Misestimates)
	}
	if want := 4.0 + ewmaAlpha*(9.0-4.0); p.WorstQErrorEWMA != want {
		t.Fatalf("worst q-error EWMA = %v, want %v", p.WorstQErrorEWMA, want)
	}
	if p.WorstQErrorLast != 9.0 || p.WorstQErrorOp != "tab/app" {
		t.Fatalf("last = %v at %q", p.WorstQErrorLast, p.WorstQErrorOp)
	}

	// A run with estimates joined but nothing flagged leaves the worst
	// q-error profile alone (WorstQError 0 means "no scored rows", not "a
	// perfect estimate") while still counting toward the plan's queries.
	store.Observe("k", &QueryReport{Start: time.Now(), Explain: &ExplainTable{}})
	p, _ = store.Get("k")
	if p.WorstQErrorLast != 9.0 || p.Misestimates != 3 {
		t.Fatalf("no-misestimate run disturbed the profile: %+v", p)
	}

	// Reports without a joined table at all leave the profile untouched.
	store.Observe("k", &QueryReport{Start: time.Now()})
	p, _ = store.Get("k")
	if p.Misestimates != 3 || p.WorstQErrorEWMA == 0 {
		t.Fatalf("table-less run disturbed the profile: %+v", p)
	}
}
