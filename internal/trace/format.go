package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FormatProfile renders the report as the :profile table: per-phase wall
// times with their share of the total, then the evaluator and I/O
// counters.
func (r *QueryReport) FormatProfile() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile of %s\n", r.Query)
	fmt.Fprintf(&b, "  wall total      %12s\n", fmtDur(r.Wall))
	for _, name := range PhaseOrder {
		d := r.Phase(name)
		if d == 0 {
			continue
		}
		share := 0.0
		if r.Wall > 0 {
			share = 100 * float64(d) / float64(r.Wall)
		}
		fmt.Fprintf(&b, "  %-15s %12s  %5.1f%%\n", name, fmtDur(d), share)
	}
	// Phases outside the standard pipeline (custom instrumentation).
	for _, p := range r.Phases {
		if !isStandardPhase(p.Name) {
			fmt.Fprintf(&b, "  %-15s %12s\n", p.Name, fmtDur(p.Wall))
		}
	}
	fmt.Fprintf(&b, "  steps           %12d\n", r.Eval.Steps)
	fmt.Fprintf(&b, "  cells           %12d\n", r.Eval.Cells)
	fmt.Fprintf(&b, "  tabulations     %12d\n", r.Eval.Tabulations)
	fmt.Fprintf(&b, "  set ops         %12d\n", r.Eval.SetOps)
	fmt.Fprintf(&b, "  iterations      %12d\n", r.Eval.Iterations)
	fmt.Fprintf(&b, "  rule firings    %12d  (AST %d -> %d nodes)\n",
		len(r.Rules)+r.RulesDropped, r.NodesBefore, r.NodesAfter)
	if !r.IO.IsZero() {
		fmt.Fprintf(&b, "  slab reads      %12d\n", r.IO.SlabReads)
		fmt.Fprintf(&b, "  bytes read      %12d\n", r.IO.BytesRead)
		fmt.Fprintf(&b, "  cache hits      %12d\n", r.IO.CacheHits)
		fmt.Fprintf(&b, "  cache misses    %12d\n", r.IO.CacheMisses)
		fmt.Fprintf(&b, "  prefetches      %12d\n", r.IO.Prefetches)
		if r.IO.Retries > 0 || r.IO.Faults > 0 {
			fmt.Fprintf(&b, "  retries         %12d\n", r.IO.Retries)
			fmt.Fprintf(&b, "  faults          %12d\n", r.IO.Faults)
		}
	}
	if r.Err != "" {
		fmt.Fprintf(&b, "  error: %s\n", r.Err)
	}
	return b.String()
}

// FormatRules renders the optimizer trace as the :explain firing table:
// one line per firing in application order, then per-rule totals.
func (r *QueryReport) FormatRules() string {
	var b strings.Builder
	if len(r.Rules) == 0 {
		b.WriteString("no optimizer rules fired\n")
		return b.String()
	}
	fmt.Fprintf(&b, "rule firings (%d), AST %d -> %d nodes:\n",
		len(r.Rules)+r.RulesDropped, r.NodesBefore, r.NodesAfter)
	counts := map[string]int{}
	for i, f := range r.Rules {
		fmt.Fprintf(&b, "  %3d. [%s] %-24s %d -> %d nodes\n",
			i+1, f.Phase, f.Rule, f.NodesBefore, f.NodesAfter)
		counts[f.Rule]++
	}
	if r.RulesDropped > 0 {
		fmt.Fprintf(&b, "  ... %d further firings not recorded\n", r.RulesDropped)
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("totals by rule:\n")
	for _, name := range names {
		fmt.Fprintf(&b, "  %-28s %d\n", name, counts[name])
	}
	return b.String()
}

// FormatTotals renders session-cumulative counters for :stats.
func (t Totals) FormatTotals() string {
	var b strings.Builder
	fmt.Fprintf(&b, "session totals over %d queries (%d errors)\n", t.Queries, t.Errors)
	fmt.Fprintf(&b, "  wall total      %12s\n", fmtDur(t.Wall))
	for _, name := range PhaseOrder {
		if d, ok := t.PhaseWall[name]; ok && d > 0 {
			fmt.Fprintf(&b, "  %-15s %12s\n", name, fmtDur(d))
		}
	}
	fmt.Fprintf(&b, "  steps           %12d\n", t.Eval.Steps)
	fmt.Fprintf(&b, "  cells           %12d\n", t.Eval.Cells)
	fmt.Fprintf(&b, "  tabulations     %12d\n", t.Eval.Tabulations)
	fmt.Fprintf(&b, "  set ops         %12d\n", t.Eval.SetOps)
	fmt.Fprintf(&b, "  iterations      %12d\n", t.Eval.Iterations)
	fmt.Fprintf(&b, "  rule firings    %12d\n", t.RuleFirings)
	if !t.IO.IsZero() {
		fmt.Fprintf(&b, "  slab reads      %12d\n", t.IO.SlabReads)
		fmt.Fprintf(&b, "  bytes read      %12d\n", t.IO.BytesRead)
		fmt.Fprintf(&b, "  cache hits      %12d\n", t.IO.CacheHits)
		fmt.Fprintf(&b, "  cache misses    %12d\n", t.IO.CacheMisses)
		fmt.Fprintf(&b, "  prefetches      %12d\n", t.IO.Prefetches)
		fmt.Fprintf(&b, "  retries         %12d\n", t.IO.Retries)
	}
	return b.String()
}

func isStandardPhase(name string) bool {
	for _, p := range PhaseOrder {
		if p == name {
			return true
		}
	}
	return false
}

// fmtDur rounds a duration for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.String()
}

// FormatTop renders the hottest operators of the report's span tree for
// :top — the n spans with the largest self wall time, with their tree
// position flattened into "parent>child" paths when ambiguous.
func (r *QueryReport) FormatTop(n int) string {
	if r.Spans == nil {
		return "no span tree recorded (profiling is off; try :prof sampled)\n"
	}
	if n <= 0 {
		n = 10
	}
	type row struct {
		node *SpanNode
		path string
	}
	var rows []row
	var walk func(s *SpanNode, path string)
	walk = func(s *SpanNode, path string) {
		if path == "" {
			path = s.Op
		} else {
			path = path + ">" + s.Op
		}
		rows = append(rows, row{s, path})
		for _, c := range s.Children {
			walk(c, path)
		}
	}
	walk(r.Spans, "")
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].node.WallSelf != rows[j].node.WallSelf {
			return rows[i].node.WallSelf > rows[j].node.WallSelf
		}
		return rows[i].node.Steps > rows[j].node.Steps
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top operators of %s (%s profiling, eval %s)\n",
		r.Query, r.ProfLevel, fmtDur(r.Spans.WallCum))
	fmt.Fprintf(&b, "  %-12s %12s %12s %10s %12s\n", "op", "self", "cum", "invocs", "steps")
	for _, rw := range rows {
		s := rw.node
		fmt.Fprintf(&b, "  %-12s %12s %12s %10d %12d\n",
			s.Op, fmtDur(s.WallSelf), fmtDur(s.WallCum), s.Invocations, s.Steps)
		for _, w := range s.Workers {
			fmt.Fprintf(&b, "    worker %2d [%d,%d) busy %s steps %d\n",
				w.Worker, w.Start, w.End, fmtDur(w.Busy), w.Steps)
		}
		if s.WorkersDropped > 0 {
			fmt.Fprintf(&b, "    ... %d further worker records dropped\n", s.WorkersDropped)
		}
	}
	return b.String()
}

// FormatSpans renders the span tree as an indented profile for reports.
func (r *QueryReport) FormatSpans() string {
	if r.Spans == nil {
		return "no span tree recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "span tree of %s (%s profiling)\n", r.Query, r.ProfLevel)
	var walk func(s *SpanNode, depth int)
	walk = func(s *SpanNode, depth int) {
		fmt.Fprintf(&b, "  %*s%-*s cum %s self %s x%d steps %d\n",
			2*depth, "", 14-2*depth, s.Op, fmtDur(s.WallCum), fmtDur(s.WallSelf), s.Invocations, s.Steps)
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(r.Spans, 0)
	return b.String()
}

// FormatFleet renders an aggregate snapshot for :fleet — the cross-query
// histogram, phase totals, hottest rules, I/O totals and the slow log.
func (s AggregateSnapshot) FormatFleet() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet over %d queries (%d errors), wall %s\n",
		s.Totals.Queries, s.Totals.Errors, fmtDur(s.Totals.Wall))
	if s.Totals.Queries > 0 {
		b.WriteString("latency histogram:\n")
		for i, n := range s.Buckets {
			if n == 0 {
				continue
			}
			le := "+Inf"
			if i < len(s.Buckets)-1 {
				le = fmtDur(LatencyBucketBound(i))
			}
			fmt.Fprintf(&b, "  <= %-10s %8d\n", le, n)
		}
	}
	phased := false
	for _, name := range PhaseOrder {
		if d, ok := s.Totals.PhaseWall[name]; ok && d > 0 {
			if !phased {
				b.WriteString("phase totals:\n")
				phased = true
			}
			fmt.Fprintf(&b, "  %-15s %12s\n", name, fmtDur(d))
		}
	}
	if len(s.Rules) > 0 {
		names := make([]string, 0, len(s.Rules))
		for name := range s.Rules {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			if s.Rules[names[i]] != s.Rules[names[j]] {
				return s.Rules[names[i]] > s.Rules[names[j]]
			}
			return names[i] < names[j]
		})
		b.WriteString("rule firings:\n")
		for _, name := range names {
			fmt.Fprintf(&b, "  %-28s %d\n", name, s.Rules[name])
		}
	}
	if !s.Totals.IO.IsZero() {
		fmt.Fprintf(&b, "io: %d slab reads, %d bytes, %d hits, %d misses\n",
			s.Totals.IO.SlabReads, s.Totals.IO.BytesRead, s.Totals.IO.CacheHits, s.Totals.IO.CacheMisses)
	}
	if len(s.Slow) > 0 {
		b.WriteString("slowest queries:\n")
		for i, q := range s.Slow {
			if i >= 5 {
				fmt.Fprintf(&b, "  ... %d more\n", len(s.Slow)-i)
				break
			}
			line := q.Query
			if len(line) > 48 {
				line = line[:45] + "..."
			}
			fmt.Fprintf(&b, "  %12s  %s\n", fmtDur(q.Wall), line)
		}
	}
	return b.String()
}
