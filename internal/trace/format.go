package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FormatProfile renders the report as the :profile table: per-phase wall
// times with their share of the total, then the evaluator and I/O
// counters.
func (r *QueryReport) FormatProfile() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile of %s\n", r.Query)
	fmt.Fprintf(&b, "  wall total      %12s\n", fmtDur(r.Wall))
	for _, name := range PhaseOrder {
		d := r.Phase(name)
		if d == 0 {
			continue
		}
		share := 0.0
		if r.Wall > 0 {
			share = 100 * float64(d) / float64(r.Wall)
		}
		fmt.Fprintf(&b, "  %-15s %12s  %5.1f%%\n", name, fmtDur(d), share)
	}
	// Phases outside the standard pipeline (custom instrumentation).
	for _, p := range r.Phases {
		if !isStandardPhase(p.Name) {
			fmt.Fprintf(&b, "  %-15s %12s\n", p.Name, fmtDur(p.Wall))
		}
	}
	fmt.Fprintf(&b, "  steps           %12d\n", r.Eval.Steps)
	fmt.Fprintf(&b, "  cells           %12d\n", r.Eval.Cells)
	fmt.Fprintf(&b, "  tabulations     %12d\n", r.Eval.Tabulations)
	fmt.Fprintf(&b, "  set ops         %12d\n", r.Eval.SetOps)
	fmt.Fprintf(&b, "  iterations      %12d\n", r.Eval.Iterations)
	fmt.Fprintf(&b, "  rule firings    %12d  (AST %d -> %d nodes)\n",
		len(r.Rules)+r.RulesDropped, r.NodesBefore, r.NodesAfter)
	if !r.IO.IsZero() {
		fmt.Fprintf(&b, "  slab reads      %12d\n", r.IO.SlabReads)
		fmt.Fprintf(&b, "  bytes read      %12d\n", r.IO.BytesRead)
		fmt.Fprintf(&b, "  cache hits      %12d\n", r.IO.CacheHits)
		fmt.Fprintf(&b, "  cache misses    %12d\n", r.IO.CacheMisses)
		fmt.Fprintf(&b, "  prefetches      %12d\n", r.IO.Prefetches)
		if r.IO.Retries > 0 || r.IO.Faults > 0 {
			fmt.Fprintf(&b, "  retries         %12d\n", r.IO.Retries)
			fmt.Fprintf(&b, "  faults          %12d\n", r.IO.Faults)
		}
	}
	if r.Err != "" {
		fmt.Fprintf(&b, "  error: %s\n", r.Err)
	}
	return b.String()
}

// FormatRules renders the optimizer trace as the :explain firing table:
// one line per firing in application order, then per-rule totals.
func (r *QueryReport) FormatRules() string {
	var b strings.Builder
	if len(r.Rules) == 0 {
		b.WriteString("no optimizer rules fired\n")
		return b.String()
	}
	fmt.Fprintf(&b, "rule firings (%d), AST %d -> %d nodes:\n",
		len(r.Rules)+r.RulesDropped, r.NodesBefore, r.NodesAfter)
	counts := map[string]int{}
	for i, f := range r.Rules {
		fmt.Fprintf(&b, "  %3d. [%s] %-24s %d -> %d nodes\n",
			i+1, f.Phase, f.Rule, f.NodesBefore, f.NodesAfter)
		counts[f.Rule]++
	}
	if r.RulesDropped > 0 {
		fmt.Fprintf(&b, "  ... %d further firings not recorded\n", r.RulesDropped)
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("totals by rule:\n")
	for _, name := range names {
		fmt.Fprintf(&b, "  %-28s %d\n", name, counts[name])
	}
	return b.String()
}

// FormatTotals renders session-cumulative counters for :stats.
func (t Totals) FormatTotals() string {
	var b strings.Builder
	fmt.Fprintf(&b, "session totals over %d queries (%d errors)\n", t.Queries, t.Errors)
	fmt.Fprintf(&b, "  wall total      %12s\n", fmtDur(t.Wall))
	for _, name := range PhaseOrder {
		if d, ok := t.PhaseWall[name]; ok && d > 0 {
			fmt.Fprintf(&b, "  %-15s %12s\n", name, fmtDur(d))
		}
	}
	fmt.Fprintf(&b, "  steps           %12d\n", t.Eval.Steps)
	fmt.Fprintf(&b, "  cells           %12d\n", t.Eval.Cells)
	fmt.Fprintf(&b, "  tabulations     %12d\n", t.Eval.Tabulations)
	fmt.Fprintf(&b, "  set ops         %12d\n", t.Eval.SetOps)
	fmt.Fprintf(&b, "  iterations      %12d\n", t.Eval.Iterations)
	fmt.Fprintf(&b, "  rule firings    %12d\n", t.RuleFirings)
	if !t.IO.IsZero() {
		fmt.Fprintf(&b, "  slab reads      %12d\n", t.IO.SlabReads)
		fmt.Fprintf(&b, "  bytes read      %12d\n", t.IO.BytesRead)
		fmt.Fprintf(&b, "  cache hits      %12d\n", t.IO.CacheHits)
		fmt.Fprintf(&b, "  cache misses    %12d\n", t.IO.CacheMisses)
		fmt.Fprintf(&b, "  prefetches      %12d\n", t.IO.Prefetches)
		fmt.Fprintf(&b, "  retries         %12d\n", t.IO.Retries)
	}
	return b.String()
}

func isStandardPhase(name string) bool {
	for _, p := range PhaseOrder {
		if p == name {
			return true
		}
	}
	return false
}

// fmtDur rounds a duration for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.String()
}
