package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Begin("q")
	r.SetEnabled(true)
	r.SetSink(NopSink{})
	sp := r.StartPhase(PhaseParse)
	sp.End()
	r.RuleFired("normalize", "beta", 3, 1)
	r.RecordNodes(3, 1)
	r.RecordEval(EvalCounters{Steps: 1})
	r.RecordIO(IOCounters{SlabReads: 1})
	if rep := r.End(nil); rep != nil {
		t.Fatalf("nil recorder End = %v, want nil", rep)
	}
	if r.Enabled() || r.Active() {
		t.Fatal("nil recorder reports enabled/active")
	}
	if r.Last() != nil || len(r.Recent()) != 0 {
		t.Fatal("nil recorder retains reports")
	}
	if got := r.Totals(); got.Queries != 0 {
		t.Fatalf("nil recorder totals = %+v", got)
	}
	r.Reset()
}

func TestDisabledRecorderRecordsNothing(t *testing.T) {
	r := NewRecorder(nil)
	r.SetEnabled(false)
	r.Begin("q")
	if r.Active() {
		t.Fatal("disabled recorder opened a report")
	}
	r.RecordEval(EvalCounters{Steps: 5})
	if rep := r.End(nil); rep != nil {
		t.Fatalf("disabled End = %+v, want nil", rep)
	}
	if tot := r.Totals(); tot.Queries != 0 {
		t.Fatalf("disabled recorder accumulated totals: %+v", tot)
	}
}

func TestRecorderLifecycle(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin("len!A")
	if !r.Active() {
		t.Fatal("no open report after Begin")
	}
	sp := r.StartPhase(PhaseParse)
	sp.End()
	sp = r.StartPhase(PhaseEval)
	sp.End()
	sp = r.StartPhase(PhaseEval) // readval compiles+evals twice; spans fold
	sp.End()
	r.RuleFired("normalize", "beta^p", 7, 3)
	r.RuleFired("motion", "delta^p", 5, 4)
	r.RecordNodes(12, 8)
	r.RecordEval(EvalCounters{Steps: 10, Cells: 4, Tabulations: 1})
	r.RecordEval(EvalCounters{Steps: 2})
	r.RecordIO(IOCounters{SlabReads: 1, BytesRead: 800})
	rep := r.End(errors.New("boom"))
	if rep == nil {
		t.Fatal("End returned nil for an open report")
	}
	if rep.Query != "len!A" || rep.Err != "boom" {
		t.Fatalf("report header = %q / %q", rep.Query, rep.Err)
	}
	if rep.Eval.Steps != 12 || rep.Eval.Cells != 4 || rep.Eval.Tabulations != 1 {
		t.Fatalf("eval counters = %+v", rep.Eval)
	}
	if rep.IO.SlabReads != 1 || rep.IO.BytesRead != 800 {
		t.Fatalf("io counters = %+v", rep.IO)
	}
	if len(rep.Rules) != 2 || rep.Rules[0].Rule != "beta^p" || rep.Rules[1].Phase != "motion" {
		t.Fatalf("rules = %+v", rep.Rules)
	}
	if rep.NodesBefore != 12 || rep.NodesAfter != 8 {
		t.Fatalf("nodes = %d -> %d", rep.NodesBefore, rep.NodesAfter)
	}
	var evalPhase PhaseTime
	for _, p := range rep.Phases {
		if p.Name == PhaseEval {
			evalPhase = p
		}
	}
	if evalPhase.Count != 2 {
		t.Fatalf("eval phase folded %d spans, want 2", evalPhase.Count)
	}
	if r.Active() {
		t.Fatal("report still open after End")
	}
	if r.Last() != rep {
		t.Fatal("Last != finished report")
	}
	tot := r.Totals()
	if tot.Queries != 1 || tot.Errors != 1 || tot.RuleFirings != 2 || tot.Eval.Steps != 12 {
		t.Fatalf("totals = %+v", tot)
	}
	// Mutating the returned totals must not affect the recorder.
	tot.PhaseWall[PhaseEval] = 0
	if r.Totals().PhaseWall[PhaseEval] == 0 && rep.Phase(PhaseEval) > 0 {
		t.Fatal("Totals returned the live phase map")
	}
}

func TestEndWithoutBegin(t *testing.T) {
	r := NewRecorder(nil)
	if rep := r.End(nil); rep != nil {
		t.Fatalf("End without Begin = %+v", rep)
	}
	if tot := r.Totals(); tot.Queries != 0 {
		t.Fatalf("phantom query in totals: %+v", tot)
	}
}

func TestRuleFiringCap(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin("q")
	for i := 0; i < maxRuleFirings+10; i++ {
		r.RuleFired("normalize", "beta^p", 2, 1)
	}
	rep := r.End(nil)
	if len(rep.Rules) != maxRuleFirings {
		t.Fatalf("kept %d firings, want %d", len(rep.Rules), maxRuleFirings)
	}
	if rep.RulesDropped != 10 {
		t.Fatalf("RulesDropped = %d, want 10", rep.RulesDropped)
	}
	if tot := r.Totals(); tot.RuleFirings != int64(maxRuleFirings+10) {
		t.Fatalf("totals count %d firings, want %d", tot.RuleFirings, maxRuleFirings+10)
	}
}

func TestRecentRing(t *testing.T) {
	r := NewRecorder(nil)
	for i := 0; i < recentCap+5; i++ {
		r.Begin(fmt.Sprintf("q%d", i))
		r.End(nil)
	}
	recent := r.Recent()
	if len(recent) != recentCap {
		t.Fatalf("ring holds %d, want %d", len(recent), recentCap)
	}
	if recent[0].Query != "q5" || recent[recentCap-1].Query != fmt.Sprintf("q%d", recentCap+4) {
		t.Fatalf("ring order wrong: first=%s last=%s", recent[0].Query, recent[recentCap-1].Query)
	}
	r.Reset()
	if len(r.Recent()) != 0 || r.Last() != nil || r.Totals().Queries != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestJSONSink(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(NewJSONSink(&buf))
	r.Begin("gen!3")
	r.RecordEval(EvalCounters{Steps: 4})
	r.End(nil)
	r.Begin("gen!4")
	r.End(errors.New("nope"))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2", len(lines))
	}
	var rep QueryReport
	if err := json.Unmarshal([]byte(lines[0]), &rep); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rep.Query != "gen!3" || rep.Eval.Steps != 4 {
		t.Fatalf("decoded report = %+v", rep)
	}
	if !strings.Contains(lines[1], `"err":"nope"`) {
		t.Fatalf("error line missing err field: %s", lines[1])
	}
}

func TestSlogSink(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, nil))
	r := NewRecorder(NewSlogSink(l))
	r.Begin("gen!3")
	r.RecordEval(EvalCounters{Steps: 4})
	r.End(nil)
	r.Begin("bad")
	r.End(errors.New("boom"))
	out := buf.String()
	if !strings.Contains(out, "query=gen!3") || !strings.Contains(out, "steps=4") {
		t.Fatalf("slog output missing fields:\n%s", out)
	}
	if !strings.Contains(out, "level=ERROR") || !strings.Contains(out, "err=boom") {
		t.Fatalf("failed query not logged at error level:\n%s", out)
	}
}

func TestMultiSink(t *testing.T) {
	var a, b bytes.Buffer
	sink := MultiSink{NewJSONSink(&a), nil, NewJSONSink(&b)}
	r := NewRecorder(sink)
	r.Begin("q")
	r.End(nil)
	if a.Len() == 0 || b.Len() == 0 {
		t.Fatal("MultiSink did not fan out")
	}
}

func TestHandler(t *testing.T) {
	r := NewRecorder(nil)
	r.Begin("len!A")
	r.RecordEval(EvalCounters{Steps: 3})
	r.RuleFired("normalize", "beta^p", 2, 1)
	r.End(nil)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET = %d", resp.StatusCode)
	}
	var payload struct {
		Totals Totals `json:"totals"`
		Recent []struct {
			Query       string `json:"query"`
			RuleFirings int    `json:"rule_firings"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Totals.Queries != 1 || payload.Totals.Eval.Steps != 3 {
		t.Fatalf("totals = %+v", payload.Totals)
	}
	if len(payload.Recent) != 1 || payload.Recent[0].Query != "len!A" || payload.Recent[0].RuleFirings != 1 {
		t.Fatalf("recent = %+v", payload.Recent)
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST = %d, want 405", post.StatusCode)
	}
}

func TestFormatProfile(t *testing.T) {
	rep := &QueryReport{
		Query: "len!A",
		Wall:  10 * time.Millisecond,
		Phases: []PhaseTime{
			{Name: PhaseParse, Wall: time.Millisecond, Count: 1},
			{Name: PhaseEval, Wall: 8 * time.Millisecond, Count: 1},
		},
		Eval:        EvalCounters{Steps: 42, Cells: 7, Tabulations: 1},
		IO:          IOCounters{SlabReads: 2, BytesRead: 1600},
		NodesBefore: 9,
		NodesAfter:  5,
	}
	out := rep.FormatProfile()
	for _, want := range []string{"profile of len!A", "parse", "eval", "steps", "42", "slab reads", "1600", "AST 9 -> 5 nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q:\n%s", want, out)
		}
	}
}

func TestFormatRules(t *testing.T) {
	rep := &QueryReport{
		Rules: []RuleFiring{
			{Phase: "normalize", Rule: "beta^p", NodesBefore: 7, NodesAfter: 3},
			{Phase: "normalize", Rule: "beta^p", NodesBefore: 3, NodesAfter: 2},
			{Phase: "motion", Rule: "delta^p", NodesBefore: 4, NodesAfter: 4},
		},
		NodesBefore: 12, NodesAfter: 6,
	}
	out := rep.FormatRules()
	for _, want := range []string{"rule firings (3)", "[normalize] beta^p", "[motion] delta^p", "totals by rule", "7 -> 3 nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("rules missing %q:\n%s", want, out)
		}
	}
	empty := (&QueryReport{}).FormatRules()
	if !strings.Contains(empty, "no optimizer rules fired") {
		t.Errorf("empty trace rendered as %q", empty)
	}
}

func TestFormatTotals(t *testing.T) {
	tot := Totals{Queries: 3, Errors: 1, Eval: EvalCounters{Steps: 99}}
	out := tot.FormatTotals()
	if !strings.Contains(out, "3 queries (1 errors)") || !strings.Contains(out, "99") {
		t.Errorf("totals rendering:\n%s", out)
	}
}
