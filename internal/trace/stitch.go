package trace

import (
	"fmt"
	"time"
)

// Cross-node span stitching: helpers that assemble one whole-query span
// tree from a coordinator's shard dispatch records and the span subtrees
// workers return inside their shard responses.
//
// The stitched tree obeys two invariants, checked by CheckStitched:
//
//   - Counter exactness: summing the self work counters over every node of
//     the tree reproduces the query's flat merged counters exactly. Only
//     the coordinator's plan prologue and the winning attempt of each
//     shard carry counters — lost and cancelled attempts contribute zero,
//     mirroring the merge contract's "counters from exactly one attempt".
//   - Self-time consistency: every node's WallSelf equals its WallCum
//     minus the cumulative wall of its children (clamped at zero for
//     spans, like hedges, whose children overlap the parent's tail).
//
// Span node vocabulary of stitched trees: "scatter" (coordinator root),
// "plan" (shard-planning prologue), "shard", "attempt", "worker" (a
// worker's response subtree root), "queue_wait", the prepare phase names,
// and "eval".

// Stitched-tree operator names.
const (
	SpanScatter   = "scatter"
	SpanPlan      = "plan"
	SpanShard     = "shard"
	SpanAttempt   = "attempt"
	SpanWorker    = "worker"
	SpanQueueWait = "queue_wait"
	SpanEval      = "eval"
)

// ProfStitched is the QueryReport.ProfLevel value of stitched multi-node
// trees (the single-process levels are "sampled" and "full").
const ProfStitched = "stitched"

// NewSpan returns a span node with the given operator, node label and
// cumulative wall time (self time is finalized later by FinalizeSelf).
func NewSpan(op, node string, wall time.Duration) *SpanNode {
	return &SpanNode{Op: op, Node: node, Invocations: 1, Measured: 1, WallCum: wall}
}

// SetCounters attaches evaluator self-counters to the node.
func (n *SpanNode) SetCounters(c EvalCounters) *SpanNode {
	n.Steps, n.Cells, n.Tabulations, n.SetOps, n.Iterations = c.Steps, c.Cells, c.Tabulations, c.SetOps, c.Iterations
	return n
}

// SelfCounters returns the node's self evaluator counters.
func (n *SpanNode) SelfCounters() EvalCounters {
	return EvalCounters{Steps: n.Steps, Cells: n.Cells, Tabulations: n.Tabulations,
		SetOps: n.SetOps, Iterations: n.Iterations}
}

// CumCounters sums the self counters over the node and its descendants.
func (n *SpanNode) CumCounters() EvalCounters {
	var c EvalCounters
	n.Walk(func(s *SpanNode) { c.Add(s.SelfCounters()) })
	return c
}

// FinalizeSelf sets the node's WallSelf to WallCum minus the children's
// cumulative wall, clamped at zero, and returns the node. Call it after
// the children are attached.
func (n *SpanNode) FinalizeSelf() *SpanNode {
	var kids time.Duration
	for _, c := range n.Children {
		kids += c.WallCum
	}
	n.WallSelf = n.WallCum - kids
	if n.WallSelf < 0 {
		n.WallSelf = 0
	}
	return n
}

// CheckStitched verifies the stitching invariants of a multi-node span
// tree against the query's flat merged counters: exact counter sums, and
// self-time consistency at every node. Returns nil when the tree is
// well-formed. Used by tests and by callers that refuse to serve trees a
// buggy (or hostile) worker skewed.
func CheckStitched(root *SpanNode, flat EvalCounters) error {
	if root == nil {
		return fmt.Errorf("trace: stitched tree is nil")
	}
	if got := root.CumCounters(); got != flat {
		return fmt.Errorf("trace: stitched counters %+v != flat counters %+v", got, flat)
	}
	var err error
	root.Walk(func(n *SpanNode) {
		if err != nil {
			return
		}
		var kids time.Duration
		for _, c := range n.Children {
			kids += c.WallCum
		}
		want := n.WallCum - kids
		if want < 0 {
			want = 0
		}
		if n.WallSelf != want {
			err = fmt.Errorf("trace: span %q self %v != cum %v - children %v", n.Op, n.WallSelf, n.WallCum, kids)
		}
	})
	if err != nil {
		return err
	}
	// One winning attempt per shard, and counters only under winners.
	root.Walk(func(n *SpanNode) {
		if err != nil || n.Op != SpanShard {
			return
		}
		won := 0
		for _, a := range n.Children {
			if a.Op != SpanAttempt {
				continue
			}
			switch a.Outcome {
			case "won":
				won++
			case "lost", "cancelled":
				if c := a.CumCounters(); c != (EvalCounters{}) {
					err = fmt.Errorf("trace: %s attempt on %s carries counters %+v", a.Outcome, a.Node, c)
				}
			default:
				err = fmt.Errorf("trace: attempt on %s has unknown outcome %q", a.Node, a.Outcome)
			}
		}
		if err == nil && won != 1 {
			err = fmt.Errorf("trace: shard span has %d winning attempts, want exactly 1", won)
		}
	})
	return err
}
