package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// PrometheusContentType is the content type of the classic text exposition
// format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the content type of the OpenMetrics 1.0 text
// format (the one that admits exemplars).
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Exemplar links one histogram observation to the distributed trace that
// produced it: the OpenMetrics mechanism by which "the p99 bucket is hot"
// dereferences to a concrete slow query's stitched trace.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"` // the observation, in the metric's unit
	Ts      float64 `json:"ts"`    // unix seconds
}

// WritePrometheus renders the aggregate snapshot in the Prometheus text
// exposition format (version 0.0.4), hand-rolled so the trace package stays
// dependency-free. Output is deterministic: labelled series are sorted by
// label value (phases in pipeline order first).
func WritePrometheus(w io.Writer, s AggregateSnapshot) error {
	b := NewMetricWriter(w, false)
	writeFleetMetrics(b, s)
	return b.Err()
}

// WriteOpenMetrics renders the snapshot in the OpenMetrics 1.0 text format,
// with trace-id exemplars attached to the latency histogram buckets. It
// does NOT write the terminating "# EOF" line — callers appending their own
// metric families (the query server does) write it once at the very end via
// MetricWriter.WriteEOF or the OpenMetricsEOF constant.
func WriteOpenMetrics(w io.Writer, s AggregateSnapshot) error {
	b := NewMetricWriter(w, true)
	writeFleetMetrics(b, s)
	return b.Err()
}

// OpenMetricsEOF terminates an OpenMetrics exposition.
const OpenMetricsEOF = "# EOF\n"

// AcceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics format (how Prometheus scrapers opt into exemplars).
func AcceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if strings.EqualFold(mt, "application/openmetrics-text") {
			return true
		}
	}
	return false
}

func writeFleetMetrics(b *MetricWriter, s AggregateSnapshot) {
	b.Header("aql_queries_total", "counter", "Queries executed.")
	b.Val("aql_queries_total", "", s.Totals.Queries)
	b.Header("aql_query_errors_total", "counter", "Queries that ended in an error.")
	b.Val("aql_query_errors_total", "", s.Totals.Errors)

	b.Header("aql_query_duration_seconds", "histogram", "Query wall time, log-2 buckets.")
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		le := "+Inf"
		if i < nLatencyBuckets {
			le = strconv.FormatFloat(LatencyBucketBound(i).Seconds(), 'g', -1, 64)
		}
		var ex *Exemplar
		if i < len(s.Exemplars) {
			ex = s.Exemplars[i]
		}
		b.ValEx("aql_query_duration_seconds_bucket", `le="`+le+`"`, cum, ex)
	}
	b.Valf("aql_query_duration_seconds_sum", "", s.Totals.Wall.Seconds())
	b.Val("aql_query_duration_seconds_count", "", s.Totals.Queries)

	b.Header("aql_phase_seconds_total", "counter", "Wall time by pipeline phase.")
	for _, name := range phaseNames(s.Totals.PhaseWall) {
		b.Valf("aql_phase_seconds_total", `phase="`+name+`"`, s.Totals.PhaseWall[name].Seconds())
	}

	b.Header("aql_rule_firings_total", "counter", "Optimizer rule applications by rule.")
	rules := make([]string, 0, len(s.Rules))
	for r := range s.Rules {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		b.Val("aql_rule_firings_total", `rule="`+r+`"`, s.Rules[r])
	}

	b.Header("aql_eval_steps_total", "counter", "Evaluator steps charged.")
	b.Val("aql_eval_steps_total", "", s.Totals.Eval.Steps)
	b.Header("aql_eval_cells_total", "counter", "Collection/array cells charged.")
	b.Val("aql_eval_cells_total", "", s.Totals.Eval.Cells)
	b.Header("aql_eval_tabulations_total", "counter", "Array tabulations performed.")
	b.Val("aql_eval_tabulations_total", "", s.Totals.Eval.Tabulations)
	b.Header("aql_eval_set_ops_total", "counter", "Set/bag algebra operations.")
	b.Val("aql_eval_set_ops_total", "", s.Totals.Eval.SetOps)
	b.Header("aql_eval_iterations_total", "counter", "Comprehension loop iterations.")
	b.Val("aql_eval_iterations_total", "", s.Totals.Eval.Iterations)

	b.Header("aql_io_slab_reads_total", "counter", "NetCDF hyperslab reads.")
	b.Val("aql_io_slab_reads_total", "", s.Totals.IO.SlabReads)
	b.Header("aql_io_bytes_read_total", "counter", "NetCDF data bytes read.")
	b.Val("aql_io_bytes_read_total", "", s.Totals.IO.BytesRead)
	b.Header("aql_io_cache_hits_total", "counter", "NetCDF block-cache hits.")
	b.Val("aql_io_cache_hits_total", "", s.Totals.IO.CacheHits)
	b.Header("aql_io_cache_misses_total", "counter", "NetCDF block-cache misses.")
	b.Val("aql_io_cache_misses_total", "", s.Totals.IO.CacheMisses)
	b.Header("aql_io_prefetches_total", "counter", "NetCDF block-cache prefetches.")
	b.Val("aql_io_prefetches_total", "", s.Totals.IO.Prefetches)
	b.Header("aql_io_retries_total", "counter", "NetCDF transient-error retries.")
	b.Val("aql_io_retries_total", "", s.Totals.IO.Retries)
	b.Header("aql_io_faults_total", "counter", "NetCDF injected faults observed.")
	b.Val("aql_io_faults_total", "", s.Totals.IO.Faults)
	b.Header("aql_io_tile_hits_total", "counter", "Tile-cache demand hits.")
	b.Val("aql_io_tile_hits_total", "", s.Totals.IO.TileHits)
	b.Header("aql_io_tile_misses_total", "counter", "Tile-cache demand misses (tiles faulted in).")
	b.Val("aql_io_tile_misses_total", "", s.Totals.IO.TileMisses)
	b.Header("aql_io_tile_prefetches_total", "counter", "Tile readahead fetches.")
	b.Val("aql_io_tile_prefetches_total", "", s.Totals.IO.TilePrefetches)
	b.Header("aql_io_tile_prefetch_useful_total", "counter", "Prefetched tiles later served on demand.")
	b.Val("aql_io_tile_prefetch_useful_total", "", s.Totals.IO.TilePrefetchUseful)
	b.Header("aql_io_bytes_scanned_total", "counter", "Nominal bytes fetched from storage into the tile cache.")
	b.Val("aql_io_bytes_scanned_total", "", s.Totals.IO.BytesScanned)
	b.Header("aql_io_bytes_returned_total", "counter", "Nominal bytes of cells delivered to queries.")
	b.Val("aql_io_bytes_returned_total", "", s.Totals.IO.BytesReturned)
	b.Header("aql_io_spill_bytes_written_total", "counter", "Bytes written to the spill file.")
	b.Val("aql_io_spill_bytes_written_total", "", s.Totals.IO.SpillBytesWritten)
	b.Header("aql_io_spill_bytes_read_total", "counter", "Bytes read back from the spill file.")
	b.Val("aql_io_spill_bytes_read_total", "", s.Totals.IO.SpillBytesRead)
}

// phaseNames orders phase labels: standard pipeline phases first (those
// present), then any extras alphabetically.
func phaseNames(m map[string]time.Duration) []string {
	out := make([]string, 0, len(m))
	std := make(map[string]bool, len(PhaseOrder))
	for _, name := range PhaseOrder {
		std[name] = true
		if _, ok := m[name]; ok {
			out = append(out, name)
		}
	}
	var extra []string
	for name := range m {
		if !std[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// MetricWriter renders metric families in either the classic Prometheus
// text format (version 0.0.4) or the OpenMetrics 1.0 text format. The two
// differ in family naming (OpenMetrics TYPE/HELP lines name a counter
// family without its _total suffix) and in what OpenMetrics adds: exemplars
// on histogram buckets and the terminating # EOF line. The query server
// shares this writer with the fleet exposition so its aqld_* families
// content-negotiate identically.
type MetricWriter struct {
	w   io.Writer
	om  bool
	err error
}

// NewMetricWriter returns a writer in the chosen flavor.
func NewMetricWriter(w io.Writer, openMetrics bool) *MetricWriter {
	return &MetricWriter{w: w, om: openMetrics}
}

// OpenMetrics reports the writer's flavor.
func (b *MetricWriter) OpenMetrics() bool { return b.om }

// Err returns the first write error.
func (b *MetricWriter) Err() error { return b.err }

// Header writes the HELP and TYPE lines of one metric family. name is the
// sample name of the family's principal series (counters keep their _total
// suffix here); in OpenMetrics mode the family name drops the suffix, as
// the spec requires.
func (b *MetricWriter) Header(name, typ, help string) {
	if b.err != nil {
		return
	}
	family := name
	if b.om && typ == "counter" {
		family = strings.TrimSuffix(family, "_total")
	}
	_, b.err = fmt.Fprintf(b.w, "# HELP %s %s\n# TYPE %s %s\n", family, help, family, typ)
}

// Val writes one integer sample.
func (b *MetricWriter) Val(name, labels string, v int64) { b.ValEx(name, labels, v, nil) }

// ValEx writes one integer sample with an optional exemplar (rendered only
// in OpenMetrics mode; histogram buckets and counters admit them).
func (b *MetricWriter) ValEx(name, labels string, v int64, ex *Exemplar) {
	if b.err != nil {
		return
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, b.err = fmt.Fprintf(b.w, "%s%s %d%s\n", name, labels, v, b.exemplar(ex))
}

// Valf writes one float sample.
func (b *MetricWriter) Valf(name, labels string, v float64) {
	if b.err != nil {
		return
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, b.err = fmt.Fprintf(b.w, "%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// Histogram writes a whole histogram family from a snapshot: cumulative
// buckets (with exemplars where available), the +Inf bucket, sum and count.
func (b *MetricWriter) Histogram(name, help string, h HistogramSnapshot) {
	b.Header(name, "histogram", help)
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		le := "+Inf"
		if i < len(h.Buckets)-1 {
			le = strconv.FormatFloat(LatencyBucketBound(i).Seconds(), 'g', -1, 64)
		}
		var ex *Exemplar
		if i < len(h.Exemplars) {
			ex = h.Exemplars[i]
		}
		b.ValEx(name+"_bucket", `le="`+le+`"`, cum, ex)
	}
	b.Valf(name+"_sum", "", h.Sum.Seconds())
	b.Val(name+"_count", "", h.Count)
}

// exemplar renders an exemplar suffix, or "" outside OpenMetrics mode.
func (b *MetricWriter) exemplar(ex *Exemplar) string {
	if !b.om || ex == nil || ex.TraceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %s", ex.TraceID,
		strconv.FormatFloat(ex.Value, 'g', -1, 64),
		strconv.FormatFloat(ex.Ts, 'f', 3, 64))
}

// WriteEOF terminates an OpenMetrics exposition (no-op in classic mode).
func (b *MetricWriter) WriteEOF() {
	if b.err != nil || !b.om {
		return
	}
	_, b.err = io.WriteString(b.w, OpenMetricsEOF)
}
