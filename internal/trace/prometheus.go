package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// PrometheusContentType is the content type of the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the aggregate snapshot in the Prometheus text
// exposition format (version 0.0.4), hand-rolled so the trace package stays
// dependency-free. Output is deterministic: labelled series are sorted by
// label value (phases in pipeline order first).
func WritePrometheus(w io.Writer, s AggregateSnapshot) error {
	b := &promWriter{w: w}

	b.header("aql_queries_total", "counter", "Queries executed.")
	b.val("aql_queries_total", "", s.Totals.Queries)
	b.header("aql_query_errors_total", "counter", "Queries that ended in an error.")
	b.val("aql_query_errors_total", "", s.Totals.Errors)

	b.header("aql_query_duration_seconds", "histogram", "Query wall time, log-2 buckets.")
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		le := "+Inf"
		if i < nLatencyBuckets {
			le = strconv.FormatFloat(LatencyBucketBound(i).Seconds(), 'g', -1, 64)
		}
		b.val("aql_query_duration_seconds_bucket", `le="`+le+`"`, cum)
	}
	b.valf("aql_query_duration_seconds_sum", "", s.Totals.Wall.Seconds())
	b.val("aql_query_duration_seconds_count", "", s.Totals.Queries)

	b.header("aql_phase_seconds_total", "counter", "Wall time by pipeline phase.")
	for _, name := range phaseNames(s.Totals.PhaseWall) {
		b.valf("aql_phase_seconds_total", `phase="`+name+`"`, s.Totals.PhaseWall[name].Seconds())
	}

	b.header("aql_rule_firings_total", "counter", "Optimizer rule applications by rule.")
	rules := make([]string, 0, len(s.Rules))
	for r := range s.Rules {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		b.val("aql_rule_firings_total", `rule="`+r+`"`, s.Rules[r])
	}

	b.header("aql_eval_steps_total", "counter", "Evaluator steps charged.")
	b.val("aql_eval_steps_total", "", s.Totals.Eval.Steps)
	b.header("aql_eval_cells_total", "counter", "Collection/array cells charged.")
	b.val("aql_eval_cells_total", "", s.Totals.Eval.Cells)
	b.header("aql_eval_tabulations_total", "counter", "Array tabulations performed.")
	b.val("aql_eval_tabulations_total", "", s.Totals.Eval.Tabulations)
	b.header("aql_eval_set_ops_total", "counter", "Set/bag algebra operations.")
	b.val("aql_eval_set_ops_total", "", s.Totals.Eval.SetOps)
	b.header("aql_eval_iterations_total", "counter", "Comprehension loop iterations.")
	b.val("aql_eval_iterations_total", "", s.Totals.Eval.Iterations)

	b.header("aql_io_slab_reads_total", "counter", "NetCDF hyperslab reads.")
	b.val("aql_io_slab_reads_total", "", s.Totals.IO.SlabReads)
	b.header("aql_io_bytes_read_total", "counter", "NetCDF data bytes read.")
	b.val("aql_io_bytes_read_total", "", s.Totals.IO.BytesRead)
	b.header("aql_io_cache_hits_total", "counter", "NetCDF block-cache hits.")
	b.val("aql_io_cache_hits_total", "", s.Totals.IO.CacheHits)
	b.header("aql_io_cache_misses_total", "counter", "NetCDF block-cache misses.")
	b.val("aql_io_cache_misses_total", "", s.Totals.IO.CacheMisses)
	b.header("aql_io_prefetches_total", "counter", "NetCDF block-cache prefetches.")
	b.val("aql_io_prefetches_total", "", s.Totals.IO.Prefetches)
	b.header("aql_io_retries_total", "counter", "NetCDF transient-error retries.")
	b.val("aql_io_retries_total", "", s.Totals.IO.Retries)
	b.header("aql_io_faults_total", "counter", "NetCDF injected faults observed.")
	b.val("aql_io_faults_total", "", s.Totals.IO.Faults)

	return b.err
}

// phaseNames orders phase labels: standard pipeline phases first (those
// present), then any extras alphabetically.
func phaseNames(m map[string]time.Duration) []string {
	out := make([]string, 0, len(m))
	std := make(map[string]bool, len(PhaseOrder))
	for _, name := range PhaseOrder {
		std[name] = true
		if _, ok := m[name]; ok {
			out = append(out, name)
		}
	}
	var extra []string
	for name := range m {
		if !std[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

type promWriter struct {
	w   io.Writer
	err error
}

func (b *promWriter) header(name, typ, help string) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (b *promWriter) val(name, labels string, v int64) {
	if b.err != nil {
		return
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, b.err = fmt.Fprintf(b.w, "%s%s %d\n", name, labels, v)
}

func (b *promWriter) valf(name, labels string, v float64) {
	if b.err != nil {
		return
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, b.err = fmt.Fprintf(b.w, "%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}
