package trace

import (
	"testing"
	"time"
)

// Degenerate stitched trees. Each case is a shape the coordinator actually
// produces at the edges of sharding — a query kept local by the
// min-shard-cells floor, a single-cell tabulation, a shard whose every
// dispatch attempt was lost — and each must either verify as flat
// attribution or be rejected with a diagnostic, never panic or
// mis-attribute counters.

// TestCheckStitchedZeroShards: the min-shard-cells floor kept the query
// local, so the tree has no shard spans at all — just the plan prologue and
// a local eval. All work attributes flat to those two nodes, and the
// per-shard attempt rules have nothing to fire on.
func TestCheckStitchedZeroShards(t *testing.T) {
	planC := EvalCounters{Steps: 5, Iterations: 1}
	evalC := EvalCounters{Steps: 100, Cells: 50, Tabulations: 1}
	flat := planC
	flat.Add(evalC)

	plan := NewSpan(SpanPlan, "coordinator", 2*time.Millisecond).SetCounters(planC).FinalizeSelf()
	eval := NewSpan(SpanEval, "local", 10*time.Millisecond).SetCounters(evalC).FinalizeSelf()
	root := NewSpan(SpanScatter, "coordinator", 15*time.Millisecond)
	root.Children = []*SpanNode{plan, eval}
	root.FinalizeSelf()

	if err := CheckStitched(root, flat); err != nil {
		t.Fatalf("zero-shard local tree rejected: %v", err)
	}
}

// TestCheckStitchedSingleCell: a one-cell tabulation scattered anyway (the
// floor disabled) produces one shard whose winning attempt carries exactly
// one cell. The smallest possible distributed run must still verify.
func TestCheckStitchedSingleCell(t *testing.T) {
	evalC := EvalCounters{Steps: 3, Cells: 1, Tabulations: 1}

	eval := NewSpan(SpanEval, "http://w1", time.Millisecond).SetCounters(evalC).FinalizeSelf()
	worker := NewSpan(SpanWorker, "http://w1", 2*time.Millisecond)
	worker.Children = []*SpanNode{eval}
	worker.FinalizeSelf()
	won := NewSpan(SpanAttempt, "http://w1", 3*time.Millisecond)
	won.Outcome = "won"
	won.Children = []*SpanNode{worker}
	won.FinalizeSelf()
	shard := NewSpan(SpanShard, "", 3*time.Millisecond)
	shard.Children = []*SpanNode{won}
	shard.FinalizeSelf()
	root := NewSpan(SpanScatter, "coordinator", 4*time.Millisecond)
	root.Children = []*SpanNode{shard}
	root.FinalizeSelf()

	if err := CheckStitched(root, evalC); err != nil {
		t.Fatalf("single-cell shard tree rejected: %v", err)
	}
}

// TestCheckStitchedAllAttemptsLost: a shard whose every attempt was lost has
// no winner to attribute work to. The checker must reject the tree with a
// diagnostic — never panic, and never let the lost attempts' zero counters
// masquerade as a verified flat attribution.
func TestCheckStitchedAllAttemptsLost(t *testing.T) {
	lost1 := NewSpan(SpanAttempt, "http://w1", time.Millisecond).FinalizeSelf()
	lost1.Outcome = "lost"
	lost2 := NewSpan(SpanAttempt, "http://w2", time.Millisecond).FinalizeSelf()
	lost2.Outcome = "lost"
	shard := NewSpan(SpanShard, "", 2*time.Millisecond)
	shard.Children = []*SpanNode{lost1, lost2}
	shard.FinalizeSelf()
	root := NewSpan(SpanScatter, "coordinator", 3*time.Millisecond)
	root.Children = []*SpanNode{shard}
	root.FinalizeSelf()

	err := CheckStitched(root, EvalCounters{})
	if err == nil {
		t.Fatal("shard with every attempt lost verified as well-formed")
	}

	// A lost attempt that does carry counters is the mis-attribution the
	// attempt rule exists to catch, even when the sums happen to balance.
	lost1.SetCounters(EvalCounters{Steps: 7})
	if CheckStitched(root, EvalCounters{Steps: 7}) == nil {
		t.Fatal("lost attempt carrying counters accepted")
	}
}
