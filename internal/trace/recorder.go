package trace

import (
	"sync"
	"time"
)

// maxRuleFirings caps the optimizer trace kept per report; firings beyond
// it are counted in RulesDropped. The optimizer's own application budget
// is 100k, far beyond what a report can usefully show.
const maxRuleFirings = 4096

// recentCap is how many per-query summaries the recorder retains for the
// metrics handler.
const recentCap = 32

// Recorder accumulates QueryReports for one session: at most one report is
// under construction at a time (sessions evaluate queries sequentially),
// finished reports flow to the Sink and into cumulative Totals.
//
// Every method is safe on a nil *Recorder and cheap when the recorder is
// disabled, so instrumentation hooks can stay unconditional at call sites.
// The hot evaluator path does not call the recorder per node — per-node
// work is counted in the evaluator's own integer fields and folded in once
// per query — so tracing overhead is bounded by a handful of clock reads
// and mutex operations per query, not per step.
type Recorder struct {
	mu      sync.Mutex
	enabled bool
	sink    Sink
	cur     *QueryReport
	last    *QueryReport
	totals  Totals
	recent  []QueryReport // ring of finished reports, newest last
}

// NewRecorder returns an enabled recorder emitting to sink (nil means
// reports are retained for Last/Totals but emitted nowhere).
func NewRecorder(sink Sink) *Recorder {
	return &Recorder{enabled: true, sink: sink}
}

// SetEnabled toggles recording. While disabled, Begin/End and every
// recording method are no-ops; Totals and Last remain readable.
func (r *Recorder) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.enabled = on
	if !on {
		r.cur = nil
	}
	r.mu.Unlock()
}

// Enabled reports whether the recorder is recording.
func (r *Recorder) Enabled() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.enabled
}

// SetSink replaces the sink for subsequently finished reports.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = s
	r.mu.Unlock()
}

// Begin opens a report for the given query source. An unfinished previous
// report is dropped (the pipeline Ends every report it Begins; a drop means
// an instrumentation bug, not user error, and must not wedge recording).
func (r *Recorder) Begin(query string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.enabled {
		r.cur = &QueryReport{Query: query, Start: time.Now()}
	}
	r.mu.Unlock()
}

// Active reports whether a report is currently under construction; hooks
// that have a per-call cost worth avoiding (optimizer node counting) check
// it before doing work.
func (r *Recorder) Active() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur != nil
}

// Span is an open phase timing; obtain with StartPhase, close with End.
// The zero Span is a no-op.
type Span struct {
	r     *Recorder
	name  string
	start time.Time
}

// StartPhase starts timing the named pipeline phase of the open report.
// Returns a no-op Span when the recorder is nil, disabled, or has no open
// report.
func (r *Recorder) StartPhase(name string) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	open := r.cur != nil
	r.mu.Unlock()
	if !open {
		return Span{}
	}
	return Span{r: r, name: name, start: time.Now()}
}

// End folds the span's elapsed time into its phase.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := time.Since(s.start)
	s.r.mu.Lock()
	if s.r.cur != nil {
		s.r.cur.addPhase(s.name, d)
	}
	s.r.mu.Unlock()
}

// RuleFired appends one optimizer rule application to the open report's
// trace; the signature matches opt.Optimizer's Trace hook.
func (r *Recorder) RuleFired(phase, rule string, nodesBefore, nodesAfter int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		if len(r.cur.Rules) < maxRuleFirings {
			r.cur.Rules = append(r.cur.Rules, RuleFiring{
				Phase: phase, Rule: rule,
				NodesBefore: nodesBefore, NodesAfter: nodesAfter,
			})
		} else {
			r.cur.RulesDropped++
		}
	}
	r.mu.Unlock()
}

// RecordNodes records the whole-query AST node count before and after
// optimization.
func (r *Recorder) RecordNodes(before, after int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.NodesBefore, r.cur.NodesAfter = before, after
	}
	r.mu.Unlock()
}

// RecordEval folds evaluator counters into the open report; called once
// per evaluation, with counters the evaluator accumulated in plain fields.
func (r *Recorder) RecordEval(c EvalCounters) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.Eval.Add(c)
	}
	r.mu.Unlock()
}

// RecordEngine stamps the execution engine name on the open report;
// called once per evaluation alongside RecordEval.
func (r *Recorder) RecordEngine(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.Engine = name
	}
	r.mu.Unlock()
}

// RecordSpans attaches the evaluation's operator span tree and the
// profiling level that produced it to the open report; called once per
// evaluation alongside RecordEval, after the engine has folded the tree
// (so the tree is immutable and safe to share across report copies).
func (r *Recorder) RecordSpans(root *SpanNode, level string) {
	if r == nil || root == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.Spans = root
		r.cur.ProfLevel = level
	}
	r.mu.Unlock()
}

// JoinExplain joins a prepare-time estimate tree against the open report's
// recorded actuals (flat counters, span tree, shard spans) and attaches the
// resulting table. Call it after RecordEval/RecordSpans/RecordShards and
// before End, so the table rides every copy of the finished report (recent
// ring, flight recorder, sinks). A threshold <= 0 selects
// DefaultQErrorThreshold.
func (r *Recorder) JoinExplain(est *EstNode, threshold float64) {
	if r == nil || est == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.Explain = JoinEstimates(est, r.cur, threshold)
	}
	r.mu.Unlock()
}

// RecordID stamps the request id on the open report.
func (r *Recorder) RecordID(id string) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.ID = id
	}
	r.mu.Unlock()
}

// RecordTraceID stamps the distributed trace id on the open report.
func (r *Recorder) RecordTraceID(id string) {
	if r == nil || id == "" {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.TraceID = id
	}
	r.mu.Unlock()
}

// RecordCached marks the open report as having executed from a
// prepared-plan cache hit.
func (r *Recorder) RecordCached(hit bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.Cached = hit
	}
	r.mu.Unlock()
}

// RecordQueueWait stamps the admission-queue wait time on the open report.
func (r *Recorder) RecordQueueWait(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.QueueWait = d
	}
	r.mu.Unlock()
}

// RecordMode stamps the coordinator execution mode on the open report.
func (r *Recorder) RecordMode(mode string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.Mode = mode
	}
	r.mu.Unlock()
}

// RecordShards attaches a coordinator execution's per-shard dispatch
// records to the open report.
func (r *Recorder) RecordShards(spans []ShardSpan) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.Shards = spans
	}
	r.mu.Unlock()
}

// RecordIO folds I/O counters into the open report; the NetCDF readers
// call it once per file read.
func (r *Recorder) RecordIO(c IOCounters) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.IO.Add(c)
	}
	r.mu.Unlock()
}

// End finishes the open report: stamps total wall time and the error (if
// any), folds it into Totals, emits it to the sink, and returns it.
// Returns nil when no report was open.
func (r *Recorder) End(err error) *QueryReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	rep := r.cur
	r.cur = nil
	if rep == nil {
		r.mu.Unlock()
		return nil
	}
	rep.Wall = time.Since(rep.Start)
	if err != nil {
		rep.Err = err.Error()
	}
	r.totals.add(rep)
	r.last = rep
	if len(r.recent) == recentCap {
		copy(r.recent, r.recent[1:])
		r.recent = r.recent[:recentCap-1]
	}
	r.recent = append(r.recent, *rep)
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink.Emit(rep)
	}
	return rep
}

// Last returns the most recently finished report, or nil.
func (r *Recorder) Last() *QueryReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// Totals returns a copy of the session-cumulative counters.
func (r *Recorder) Totals() Totals {
	if r == nil {
		return Totals{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totals.clone()
}

// Recent returns copies of the most recently finished reports, oldest
// first.
func (r *Recorder) Recent() []QueryReport {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueryReport, len(r.recent))
	copy(out, r.recent)
	return out
}

// Reset clears totals, recent reports and the last report; the session
// uses it to exclude its own setup statements from user-visible stats.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.totals = Totals{}
	r.recent = nil
	r.last = nil
	r.mu.Unlock()
}
