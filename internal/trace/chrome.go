package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Chrome trace-event export: renders a QueryReport — phases, shard
// dispatches, and the stitched (or profiled) span tree — as the Trace
// Event Format JSON that chrome://tracing and Perfetto load directly.
//
// The exporter has durations, not per-span absolute timestamps, so it lays
// spans out deterministically: pipeline phases run back-to-back on the
// pipeline track starting at the report's start; each shard gets its own
// track ("thread") positioned at the eval phase's start; attempt spans use
// their recorded launch offsets, so retries appear sequential and hedges
// genuinely overlap; nested worker spans are laid out back-to-back inside
// their parent. The layout is faithful to every recorded duration and to
// the relative timing the coordinator observed.

// chromeEvent is one entry of the traceEvents array. Complete events
// (ph "X") carry ts+dur; metadata events (ph "M") name processes/threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the exported document.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace renders the report as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, r *QueryReport) error {
	if r == nil {
		return fmt.Errorf("trace: no report to export")
	}
	b := &chromeBuilder{}
	b.meta(0, "process_name", map[string]any{"name": "aql query"})
	b.meta(0, "thread_name", map[string]any{"name": "pipeline"})

	// Pipeline phases, back to back on the pipeline track. Queue wait
	// precedes them (it is not a recorded phase).
	ts := 0.0
	if r.QueueWait > 0 {
		b.span("queue_wait", "admission", 0, ts, us(r.QueueWait), nil)
		ts += us(r.QueueWait)
	}
	evalStart := ts
	for _, name := range PhaseOrder {
		d := r.Phase(name)
		if d == 0 {
			continue
		}
		if name == PhaseEval {
			evalStart = ts
		}
		b.span(name, "phase", 0, ts, us(d), nil)
		ts += us(d)
	}
	for _, p := range r.Phases {
		if !isStandardPhase(p.Name) {
			b.span(p.Name, "phase", 0, ts, us(p.Wall), nil)
			ts += us(p.Wall)
		}
	}

	// Shard dispatch records: one track per shard, positioned at eval
	// start; the stitched subtree (when present) supersedes the flat span.
	nextTid := 1
	for i := range r.Shards {
		sh := &r.Shards[i]
		tid := nextTid
		nextTid++
		b.meta(tid, "thread_name", map[string]any{"name": fmt.Sprintf("shard %d [%d,%d)", sh.Shard, sh.Start, sh.End)})
		if sh.Spans != nil {
			b.tree(sh.Spans, tid, evalStart)
			continue
		}
		b.span(fmt.Sprintf("shard %d", sh.Shard), "shard", tid, evalStart, us(sh.Wall), map[string]any{
			"worker": sh.Worker, "attempts": sh.Attempts, "hedged": sh.Hedged,
		})
	}

	// A profiled (single-process) span tree gets its own track.
	if r.Spans != nil && len(r.Shards) == 0 {
		tid := nextTid
		b.meta(tid, "thread_name", map[string]any{"name": "spans (" + r.ProfLevel + ")"})
		b.tree(r.Spans, tid, evalStart)
	}

	doc := chromeTrace{
		TraceEvents:     b.events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"query":      r.Query,
			"start":      r.Start.Format(time.RFC3339Nano),
			"mode":       r.Mode,
			"prof_level": r.ProfLevel,
		},
	}
	if r.ID != "" {
		doc.OtherData["id"] = r.ID
	}
	if r.TraceID != "" {
		doc.OtherData["trace_id"] = r.TraceID
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(doc)
}

type chromeBuilder struct {
	events []chromeEvent
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func (b *chromeBuilder) meta(tid int, name string, args map[string]any) {
	b.events = append(b.events, chromeEvent{Name: name, Ph: "M", Pid: 0, Tid: tid, Args: args})
}

func (b *chromeBuilder) span(name, cat string, tid int, ts, dur float64, args map[string]any) {
	b.events = append(b.events, chromeEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Pid: 0, Tid: tid, Args: args})
}

// tree lays a span subtree out on one track starting at ts: the node spans
// [ts, ts+cum); attempt children use their recorded launch offsets, other
// children run back to back from the parent's start.
func (b *chromeBuilder) tree(n *SpanNode, tid int, ts float64) {
	if n == nil {
		return
	}
	name := n.Op
	if n.Outcome != "" {
		name += " (" + n.Outcome + ")"
	}
	args := map[string]any{"wall_self_ns": int64(n.WallSelf)}
	if n.Node != "" {
		args["node"] = n.Node
	}
	if n.Invocations > 1 {
		args["invocations"] = n.Invocations
	}
	if c := n.SelfCounters(); c != (EvalCounters{}) {
		args["steps"], args["cells"] = c.Steps, c.Cells
		if c.Tabulations != 0 {
			args["tabulations"] = c.Tabulations
		}
		if c.SetOps != 0 {
			args["set_ops"] = c.SetOps
		}
		if c.Iterations != 0 {
			args["iterations"] = c.Iterations
		}
	}
	b.span(name, spanCat(n), tid, ts, us(n.WallCum), args)
	child := ts
	for _, c := range n.Children {
		if c.Op == SpanAttempt && c.StartOff > 0 {
			b.tree(c, tid, ts+us(c.StartOff))
			continue
		}
		b.tree(c, tid, child)
		child += us(c.WallCum)
	}
}

func spanCat(n *SpanNode) string {
	switch n.Op {
	case SpanScatter, SpanShard, SpanAttempt:
		return "cluster"
	case SpanWorker, SpanQueueWait, SpanPlan:
		return "worker"
	}
	return "op"
}
