package trace

import (
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// Distributed trace context: the identity a query carries across processes
// so one logical execution — a client call fanning out to a coordinator and
// N worker aqlds — assembles into a single trace. The wire format is the
// W3C Trace Context `traceparent` header,
//
//	00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// which aqld honors inbound on POST /query (adopting the caller's trace id)
// and forwards on every POST /shard, so external tracing infrastructure and
// aqld's own stitched QueryReports agree on trace identity.

// TraceContext identifies one distributed trace: the trace id shared by
// every span of the query, the span id of the caller's span (the parent of
// whatever span the receiver opens), and the sampled flag.
type TraceContext struct {
	// TraceID is 32 lowercase hex digits, non-zero.
	TraceID string `json:"trace_id"`
	// ParentSpanID is 16 lowercase hex digits, non-zero.
	ParentSpanID string `json:"parent_span_id"`
	// Sampled is the W3C sampled flag (01); aqld echoes it downstream.
	Sampled bool `json:"sampled"`
}

// IsZero reports whether the context carries no trace identity.
func (tc TraceContext) IsZero() bool { return tc.TraceID == "" }

// Traceparent renders the context as a W3C traceparent header value.
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	parent := tc.ParentSpanID
	if parent == "" {
		parent = "0000000000000001"
	}
	return "00-" + tc.TraceID + "-" + parent + "-" + flags
}

// Child returns a context with the same trace id but spanID as the parent:
// what a server forwards downstream after opening its own span.
func (tc TraceContext) Child(spanID string) TraceContext {
	return TraceContext{TraceID: tc.TraceID, ParentSpanID: spanID, Sampled: tc.Sampled}
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version whose first four fields are laid out like version 00 (per the
// spec, unknown versions parse forward-compatibly) and rejects malformed,
// all-zero, or wrong-length ids.
func ParseTraceparent(h string) (TraceContext, bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isHex(version) || version == "ff" {
		return TraceContext{}, false
	}
	if version == "00" && len(parts) != 4 {
		return TraceContext{}, false
	}
	if len(traceID) != 32 || !isHex(traceID) || allZero(traceID) {
		return TraceContext{}, false
	}
	if len(spanID) != 16 || !isHex(spanID) || allZero(spanID) {
		return TraceContext{}, false
	}
	if len(flags) != 2 || !isHex(flags) {
		return TraceContext{}, false
	}
	return TraceContext{
		TraceID:      strings.ToLower(traceID),
		ParentSpanID: strings.ToLower(spanID),
		Sampled:      hexByte(flags)&0x01 != 0,
	}, true
}

// NewTraceContext mints a fresh sampled context with random trace and span
// ids (the root of a new trace).
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), ParentSpanID: NewSpanID(), Sampled: true}
}

// NewSpanID mints a random 16-hex-digit span id.
func NewSpanID() string { return randHex(8) }

// randHex returns 2n lowercase hex digits of cryptographic randomness,
// guaranteed non-zero.
func randHex(n int) string {
	b := make([]byte, n)
	for {
		if _, err := rand.Read(b); err != nil {
			// crypto/rand never fails on supported platforms; if it somehow
			// does, a fixed id is still a valid (if colliding) identity.
			for i := range b {
				b[i] = byte(i + 1)
			}
		}
		if !bytesAllZero(b) {
			return hex.EncodeToString(b)
		}
	}
}

func bytesAllZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return len(s) > 0
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

func hexByte(s string) byte {
	v, _ := hex.DecodeString(strings.ToLower(s))
	if len(v) == 0 {
		return 0
	}
	return v[0]
}

// requestIDMaxLen caps client-supplied request ids (X-Request-ID).
const requestIDMaxLen = 64

// SanitizeRequestID makes a client-supplied request id safe to echo in
// logs, reports and headers: only [A-Za-z0-9._:-] survive, length is capped
// at 64, and an id that sanitizes to nothing returns "" (callers then mint
// their own).
func SanitizeRequestID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id) && b.Len() < requestIDMaxLen; i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == ':', c == '-':
			b.WriteByte(c)
		}
	}
	return b.String()
}
