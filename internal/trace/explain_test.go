package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCardJSONRoundTrip(t *testing.T) {
	cases := []struct {
		in   Card
		want string
	}{
		{KnownCard(0), `0`},
		{KnownCard(42), `42`},
		{UnknownCard(), `"unknown"`},
	}
	for _, c := range cases {
		b, err := json.Marshal(c.in)
		if err != nil {
			t.Fatalf("marshal %v: %v", c.in, err)
		}
		if string(b) != c.want {
			t.Errorf("marshal %v = %s, want %s", c.in, b, c.want)
		}
		var back Card
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != c.in {
			t.Errorf("round trip %v -> %v", c.in, back)
		}
	}
	var bad Card
	if err := json.Unmarshal([]byte(`"lots"`), &bad); err == nil {
		t.Error("unmarshal of a non-marker string succeeded")
	}
}

func TestCardArithmetic(t *testing.T) {
	if got := AddCard(KnownCard(2), KnownCard(3)); got != KnownCard(5) {
		t.Errorf("2+3 = %v", got)
	}
	if got := AddCard(KnownCard(2), UnknownCard()); got.Known {
		t.Errorf("2+? = %v, want unknown", got)
	}
	if got := AddCard(KnownCard(mathMaxInt64), KnownCard(1)); got.Known {
		t.Errorf("overflow add = %v, want unknown", got)
	}
	if got := MulCard(KnownCard(4), KnownCard(5)); got != KnownCard(20) {
		t.Errorf("4*5 = %v", got)
	}
	if got := MulCard(KnownCard(4), UnknownCard()); got.Known {
		t.Errorf("4*? = %v, want unknown", got)
	}
	// Zero invocations charge zero work no matter what one invocation
	// would have cost.
	if got := MulCard(KnownCard(0), UnknownCard()); got != KnownCard(0) {
		t.Errorf("0*? = %v, want known 0", got)
	}
	if got := MulCard(UnknownCard(), KnownCard(0)); got != KnownCard(0) {
		t.Errorf("?*0 = %v, want known 0", got)
	}
	if got := MulCard(KnownCard(mathMaxInt64), KnownCard(2)); got.Known {
		t.Errorf("overflow mul = %v, want unknown", got)
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, act int64
		want     float64
	}{
		{10, 10, 1},
		{20, 10, 2},
		{10, 20, 2},
		{0, 0, 1}, // both clamp to 1
		{0, 5, 5}, // zero estimate clamps, not divides
		{5, 0, 5}, // zero actual likewise
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%d, %d) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

// estFixture builds a two-level estimate tree and the structurally matching
// full-profile span tree whose actuals agree exactly on the first child and
// disagree 4x on the second.
func estFixture() (*EstNode, *SpanNode) {
	est := &EstNode{
		Op: "array_tab", Card: KnownCard(100), Cells: KnownCard(100), Cost: KnownCard(1),
		Children: []*EstNode{
			{Op: "arith", Card: KnownCard(1), Cells: KnownCard(0), Cost: KnownCard(100)},
			{Op: "index", Card: UnknownCard(), Cells: KnownCard(25), Cost: KnownCard(100)},
		},
	}
	spans := &SpanNode{
		Op: "array_tab", Invocations: 1, Cells: 100, Steps: 1,
		Children: []*SpanNode{
			{Op: "arith", Invocations: 100, Cells: 0, Steps: 100},
			{Op: "index", Invocations: 100, Cells: 100, Steps: 100},
		},
	}
	return est, spans
}

func TestJoinEstimatesOperatorMode(t *testing.T) {
	est, spans := estFixture()
	rep := &QueryReport{Spans: spans, ProfLevel: ProfFull}
	tab := JoinEstimates(est, rep, 2.0)
	if tab.Mode != "operator" {
		t.Fatalf("mode = %q, want operator", tab.Mode)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	root, arith, index := tab.Rows[0], tab.Rows[1], tab.Rows[2]
	if root.QError != 1 || root.Flagged {
		t.Errorf("exact root row scored %v flagged=%v", root.QError, root.Flagged)
	}
	if arith.Path != "array_tab/arith" || arith.Depth != 1 {
		t.Errorf("arith row path=%q depth=%d", arith.Path, arith.Depth)
	}
	if arith.QError != 1 || arith.Flagged {
		t.Errorf("exact arith row scored %v flagged=%v", arith.QError, arith.Flagged)
	}
	// est cells 25 vs act 100: q-error 4, above the threshold of 2.
	if index.QError != 4 || !index.Flagged {
		t.Errorf("index row q=%v flagged=%v, want 4 flagged", index.QError, index.Flagged)
	}
	if tab.Misestimates != 1 || tab.WorstQError != 4 || tab.WorstOp != "array_tab/index" {
		t.Errorf("summary = %d worst %v at %q", tab.Misestimates, tab.WorstQError, tab.WorstOp)
	}
}

func TestJoinEstimatesRootMode(t *testing.T) {
	est, spans := estFixture()
	// Sampled profile: the join must degrade to a single row of totals
	// rather than trusting sampled self counters.
	rep := &QueryReport{
		Spans:     spans,
		ProfLevel: "sampled",
		Eval:      EvalCounters{Steps: 201, Cells: 125},
	}
	tab := JoinEstimates(est, rep, 0) // 0 selects the default threshold
	if tab.Mode != "root" {
		t.Fatalf("mode = %q, want root", tab.Mode)
	}
	if tab.Threshold != DefaultQErrorThreshold {
		t.Fatalf("threshold = %v, want default", tab.Threshold)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tab.Rows))
	}
	row := tab.Rows[0]
	if row.EstCells != KnownCard(125) {
		t.Errorf("est cells total = %v, want 125", row.EstCells)
	}
	if row.EstCost != KnownCard(201) {
		t.Errorf("est cost total = %v, want 201", row.EstCost)
	}
	if row.QError != 1 || row.Flagged {
		t.Errorf("exact totals scored q=%v flagged=%v", row.QError, row.Flagged)
	}

	// A mismatched span structure (stale estimate vs a different plan)
	// must also fall back to root mode, not mis-attribute rows.
	est2, spans2 := estFixture()
	spans2.Children = spans2.Children[:1]
	rep2 := &QueryReport{Spans: spans2, ProfLevel: ProfFull, Eval: EvalCounters{Steps: 201, Cells: 125}}
	if tab := JoinEstimates(est2, rep2, 0); tab.Mode != "root" {
		t.Errorf("structure mismatch joined in mode %q, want root", tab.Mode)
	}
}

func TestJoinEstimatesUnknownNeverScores(t *testing.T) {
	est := &EstNode{Op: "app", Card: UnknownCard(), Cells: UnknownCard(), Cost: UnknownCard()}
	spans := &SpanNode{Op: "app", Invocations: 7, Cells: 9999, Steps: 12345}
	rep := &QueryReport{Spans: spans, ProfLevel: ProfFull}
	tab := JoinEstimates(est, rep, 2.0)
	row := tab.Rows[0]
	if row.QError != 0 || row.Flagged {
		t.Errorf("all-unknown row scored q=%v flagged=%v, want 0 unflagged", row.QError, row.Flagged)
	}
	if tab.Misestimates != 0 || tab.WorstQError != 0 {
		t.Errorf("all-unknown table summary = %d worst %v", tab.Misestimates, tab.WorstQError)
	}
}

func TestJoinEstimatesShardActuals(t *testing.T) {
	est, spans := estFixture()
	mkShard := func(shard int, worker string, steps, cells int64) ShardSpan {
		sh := NewSpan(SpanShard, "", time.Millisecond)
		att := NewSpan(SpanAttempt, worker, time.Millisecond)
		att.Outcome = "won"
		att.SetCounters(EvalCounters{Steps: steps, Cells: cells})
		sh.Children = []*SpanNode{att}
		return ShardSpan{Shard: shard, Worker: worker, Spans: sh}
	}
	rep := &QueryReport{
		Spans: spans, ProfLevel: ProfFull,
		Shards: []ShardSpan{
			mkShard(0, "http://w1", 50, 60),
			mkShard(1, "http://w2", 70, 40),
		},
	}
	tab := JoinEstimates(est, rep, 2.0)
	if len(tab.Shards) != 2 {
		t.Fatalf("shard rows = %d, want 2", len(tab.Shards))
	}
	if tab.Shards[0] != (ShardActuals{Shard: 0, Worker: "http://w1", Cells: 60, Steps: 50}) {
		t.Errorf("shard 0 actuals = %+v", tab.Shards[0])
	}
	if tab.Shards[1] != (ShardActuals{Shard: 1, Worker: "http://w2", Cells: 40, Steps: 70}) {
		t.Errorf("shard 1 actuals = %+v", tab.Shards[1])
	}
}

func TestExplainTableFormat(t *testing.T) {
	est, spans := estFixture()
	rep := &QueryReport{Spans: spans, ProfLevel: ProfFull,
		Shards: []ShardSpan{{Shard: 0, Worker: "local"}}}
	out := JoinEstimates(est, rep, 2.0).Format()
	for _, want := range []string{
		"mode=operator", "est cells", "act steps",
		"array_tab", "  index", // depth-indented child
		"?",  // the unknown card marker
		" !", // the misestimate flag
		"shard 0", "misestimates: 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	var nilTab *ExplainTable
	if !strings.Contains(nilTab.Format(), "unavailable") {
		t.Error("nil table Format did not degrade gracefully")
	}
}

func TestExplainTableJSONRoundTrip(t *testing.T) {
	est, spans := estFixture()
	rep := &QueryReport{Spans: spans, ProfLevel: ProfFull}
	tab := JoinEstimates(est, rep, 2.0)
	b, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var back ExplainTable
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Rows) != len(tab.Rows) {
		t.Fatalf("rows = %d, want %d", len(back.Rows), len(tab.Rows))
	}
	for i := range tab.Rows {
		if back.Rows[i] != tab.Rows[i] {
			t.Errorf("row %d: %+v != %+v", i, back.Rows[i], tab.Rows[i])
		}
	}
}

// TestJoinExplainConcurrent hammers the estimate joiner while concurrent
// readers drain the flight recorder the reports land in — the CI -race run
// for the joiner. The recorder copies reports into the ring at End, and the
// joined table is immutable once recorded, so readers must never observe a
// torn table.
func TestJoinExplainConcurrent(t *testing.T) {
	flight := NewFlightRecorder(16)
	rec := NewRecorder(flight)
	rec.SetEnabled(true)
	est, _ := estFixture()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rep := range flight.Reports() {
					if rep.Explain == nil {
						continue
					}
					for _, row := range rep.Explain.Rows {
						_ = row.QError
						_ = row.EstCells.String()
					}
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		rec.Begin("concurrent-join")
		rec.RecordID("cj")
		_, spans := estFixture()
		rec.RecordSpans(spans, ProfFull)
		rec.RecordEval(EvalCounters{Steps: 201, Cells: 125})
		rec.JoinExplain(est, 2.0)
		if rep := rec.End(nil); rep == nil || rep.Explain == nil {
			t.Fatal("joined report lost")
		}
	}
	close(stop)
	wg.Wait()
}
