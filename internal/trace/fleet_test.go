package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fleetReport builds a synthetic finished report with a fixed wall time, so
// the fleet tests are deterministic (no clock reads feed the assertions).
func fleetReport(query string, wall time.Duration, err string) *QueryReport {
	return &QueryReport{
		Query: query,
		Wall:  wall,
		Phases: []PhaseTime{
			{Name: PhaseParse, Wall: wall / 4, Count: 1},
			{Name: PhaseEval, Wall: wall / 2, Count: 1},
		},
		Eval:  EvalCounters{Steps: 100, Cells: 20, Tabulations: 2, SetOps: 3, Iterations: 40},
		IO:    IOCounters{SlabReads: 1, BytesRead: 4096, CacheHits: 3, CacheMisses: 1},
		Rules: []RuleFiring{{Phase: "normalize", Rule: "beta"}, {Phase: "normalize", Rule: "beta"}},
		Err:   err,
	}
}

func TestAggregatorHistogramAndTotals(t *testing.T) {
	a := NewAggregator(0)
	walls := []time.Duration{
		500 * time.Nanosecond, // bucket 0 (<= 1µs)
		time.Microsecond,      // bucket 0 (inclusive bound)
		3 * time.Microsecond,  // bucket 2 (<= 4µs)
		time.Second,           // bucket 20 (<= ~1.05s)
		48 * time.Hour,        // +Inf bucket
	}
	for i, w := range walls {
		errText := ""
		if i == 0 {
			errText = "boom"
		}
		a.Emit(fleetReport(fmt.Sprintf("q%d", i), w, errText))
	}
	s := a.Snapshot()
	if s.Totals.Queries != 5 || s.Totals.Errors != 1 {
		t.Fatalf("totals = %d queries / %d errors, want 5 / 1", s.Totals.Queries, s.Totals.Errors)
	}
	if got := len(s.Buckets); got != nLatencyBuckets+1 {
		t.Fatalf("len(buckets) = %d, want %d", got, nLatencyBuckets+1)
	}
	wantBuckets := map[int]int64{0: 2, 2: 1, 20: 1, nLatencyBuckets: 1}
	var sum int64
	for i, n := range s.Buckets {
		sum += n
		if n != wantBuckets[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, wantBuckets[i])
		}
	}
	if sum != s.Totals.Queries {
		t.Errorf("bucket sum %d != queries %d", sum, s.Totals.Queries)
	}
	if s.Rules["beta"] != 10 {
		t.Errorf("beta firings = %d, want 10", s.Rules["beta"])
	}
	if s.Totals.IO.BytesRead != 5*4096 {
		t.Errorf("bytes read = %d, want %d", s.Totals.IO.BytesRead, 5*4096)
	}
	a.Reset()
	if s := a.Snapshot(); s.Totals.Queries != 0 || len(s.Rules) != 0 {
		t.Errorf("after Reset: %+v", s)
	}
}

func TestAggregatorSlowLog(t *testing.T) {
	a := NewAggregator(3)
	for i := 1; i <= 10; i++ {
		a.Emit(fleetReport(fmt.Sprintf("q%d", i), time.Duration(i)*time.Millisecond, ""))
	}
	slow := a.Snapshot().Slow
	if len(slow) != 3 {
		t.Fatalf("slow log holds %d entries, want 3", len(slow))
	}
	for i, want := range []time.Duration{10 * time.Millisecond, 9 * time.Millisecond, 8 * time.Millisecond} {
		if slow[i].Wall != want {
			t.Errorf("slow[%d].Wall = %v, want %v", i, slow[i].Wall, want)
		}
	}
}

func TestFlightRecorderExactCapacity(t *testing.T) {
	const cap, emitted = 4, 11
	f := NewFlightRecorder(cap)
	for i := 0; i < emitted; i++ {
		f.Emit(fleetReport(fmt.Sprintf("q%d", i), time.Millisecond, ""))
	}
	if f.Cap() != cap {
		t.Fatalf("Cap() = %d, want %d", f.Cap(), cap)
	}
	if f.Total() != emitted {
		t.Fatalf("Total() = %d, want %d", f.Total(), emitted)
	}
	reports := f.Reports()
	if len(reports) != cap {
		t.Fatalf("retained %d reports, want exactly %d", len(reports), cap)
	}
	for i, r := range reports {
		if want := fmt.Sprintf("q%d", emitted-cap+i); r.Query != want {
			t.Errorf("reports[%d].Query = %q, want %q (oldest first)", i, r.Query, want)
		}
	}
}

// TestWritePrometheusGolden pins the exact exposition text for a small
// fixed snapshot; any format drift (metric names, label ordering, float
// rendering) must show up as a diff here.
func TestWritePrometheusGolden(t *testing.T) {
	a := NewAggregator(0)
	a.Emit(fleetReport("q1", 3*time.Microsecond, ""))
	a.Emit(fleetReport("q2", time.Second, "boom"))
	var b strings.Builder
	if err := WritePrometheus(&b, a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	const golden = `# HELP aql_queries_total Queries executed.
# TYPE aql_queries_total counter
aql_queries_total 2
# HELP aql_query_errors_total Queries that ended in an error.
# TYPE aql_query_errors_total counter
aql_query_errors_total 1
`
	if !strings.HasPrefix(got, golden) {
		t.Errorf("exposition prefix:\n%s\nwant:\n%s", got[:min(len(got), len(golden)+80)], golden)
	}
	for _, line := range []string{
		`aql_query_duration_seconds_bucket{le="1e-06"} 0`,
		`aql_query_duration_seconds_bucket{le="4e-06"} 1`,
		`aql_query_duration_seconds_bucket{le="+Inf"} 2`,
		`aql_query_duration_seconds_sum 1.000003`,
		`aql_query_duration_seconds_count 2`,
		`aql_phase_seconds_total{phase="parse"} 0.25000075`,
		`aql_rule_firings_total{rule="beta"} 4`,
		`aql_eval_steps_total 200`,
		`aql_eval_iterations_total 80`,
		`aql_io_bytes_read_total 8192`,
		`aql_io_cache_hits_total 6`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q\nfull output:\n%s", line, got)
		}
	}
	// Histogram buckets must be cumulative and monotone.
	var prev int64 = -1
	for _, line := range strings.Split(got, "\n") {
		if !strings.HasPrefix(line, "aql_query_duration_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("unparseable bucket line %q", line)
		}
		if v < prev {
			t.Errorf("bucket counts not monotone at %q", line)
		}
		prev = v
	}
}

// TestNewHandlerEndpoints checks each endpoint's status and Content-Type,
// and that unknown paths 404 rather than falling through to the summary.
func TestNewHandlerEndpoints(t *testing.T) {
	r := NewRecorder(nil)
	agg := NewAggregator(0)
	flight := NewFlightRecorder(2)
	rep := fleetReport("q", time.Millisecond, "")
	agg.Emit(rep)
	flight.Emit(rep)
	srv := httptest.NewServer(NewHandler(r, agg, flight))
	defer srv.Close()

	cases := []struct {
		path        string
		status      int
		contentType string
	}{
		{"/", 200, "application/json"},
		{"/metrics", 200, PrometheusContentType},
		{"/debug/queries", 200, "application/json"},
		{"/debug/slow", 200, "application/json"},
		{"/debug/pprof/", 200, ""},
		{"/nope", 404, ""},
		{"/metrics/extra", 404, ""},
	}
	for _, tc := range cases {
		resp, err := srv.Client().Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.status)
		}
		if tc.contentType != "" && resp.Header.Get("Content-Type") != tc.contentType {
			t.Errorf("GET %s Content-Type = %q, want %q", tc.path, resp.Header.Get("Content-Type"), tc.contentType)
		}
		resp.Body.Close()
	}

	// Fleet endpoints degrade to 404 when their component is absent.
	bare := httptest.NewServer(Handler(r))
	defer bare.Close()
	for _, path := range []string{"/metrics", "/debug/queries", "/debug/slow"} {
		resp, err := bare.Client().Get(bare.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 404 {
			t.Errorf("GET %s without fleet wiring = %d, want 404", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The flight-recorder endpoint serves the capacity and full reports.
	resp, err := srv.Client().Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Capacity int           `json:"capacity"`
		Total    int64         `json:"total"`
		Reports  []QueryReport `json:"reports"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Capacity != 2 || payload.Total != 1 || len(payload.Reports) != 1 {
		t.Errorf("flight payload = %+v", payload)
	}
	if payload.Reports[0].Query != "q" {
		t.Errorf("flight report query = %q", payload.Reports[0].Query)
	}
}
