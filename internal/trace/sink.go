package trace

import (
	"encoding/json"
	"io"
	"log/slog"
	"sync"
)

// Sink receives finished QueryReports. Emit is called outside the
// recorder's lock, once per report, in completion order.
type Sink interface {
	Emit(*QueryReport)
}

// NopSink discards reports; the default when observability is plumbed but
// not pointed anywhere.
type NopSink struct{}

// Emit discards the report.
func (NopSink) Emit(*QueryReport) {}

// SlogSink emits one structured log record per report — the operational
// sink for servers that already aggregate slog output.
type SlogSink struct {
	l *slog.Logger
}

// NewSlogSink returns a sink logging to l (slog.Default() when nil).
func NewSlogSink(l *slog.Logger) *SlogSink {
	if l == nil {
		l = slog.Default()
	}
	return &SlogSink{l: l}
}

// Emit logs the report's headline numbers at Info level.
func (s *SlogSink) Emit(r *QueryReport) {
	attrs := []any{
		slog.String("query", r.Query),
		slog.Duration("wall", r.Wall),
		slog.Int64("steps", r.Eval.Steps),
		slog.Int64("cells", r.Eval.Cells),
		slog.Int64("tabulations", r.Eval.Tabulations),
		slog.Int64("set_ops", r.Eval.SetOps),
		slog.Int64("iterations", r.Eval.Iterations),
		slog.Int("rule_firings", len(r.Rules)+r.RulesDropped),
		slog.Int("nodes_before", r.NodesBefore),
		slog.Int("nodes_after", r.NodesAfter),
	}
	for _, p := range r.Phases {
		attrs = append(attrs, slog.Duration("phase_"+p.Name, p.Wall))
	}
	if !r.IO.IsZero() {
		attrs = append(attrs,
			slog.Int64("io_slab_reads", r.IO.SlabReads),
			slog.Int64("io_bytes", r.IO.BytesRead),
			slog.Int64("io_cache_hits", r.IO.CacheHits),
			slog.Int64("io_cache_misses", r.IO.CacheMisses),
			slog.Int64("io_retries", r.IO.Retries),
		)
	}
	if r.Err != "" {
		attrs = append(attrs, slog.String("err", r.Err))
		s.l.Error("aql query", attrs...)
		return
	}
	s.l.Info("aql query", attrs...)
}

// JSONSink writes one JSON-encoded QueryReport per line — the bench
// harness's sink, so BENCH_*.json gains optimizer and I/O dimensions.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink returns a sink encoding reports to w, one per line.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Emit writes the report; encoding errors are ignored (a broken report
// stream must not fail queries).
func (s *JSONSink) Emit(r *QueryReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(r)
}

// MultiSink fans a report out to several sinks.
type MultiSink []Sink

// Emit forwards to every sink in order.
func (m MultiSink) Emit(r *QueryReport) {
	for _, s := range m {
		if s != nil {
			s.Emit(r)
		}
	}
}
