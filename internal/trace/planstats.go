package trace

import (
	"sort"
	"sync"
	"time"
)

// Per-plan runtime statistics: the durable substrate the feedback-directed
// optimizer roadmap item reads. A PlanStatsStore aggregates stitched
// QueryReports by plan-cache key into per-plan profiles — observed cell
// counts, a span self-time profile by operator, worker busy-balance, shard
// retry/hedge rates, and an EWMA latency — that survive individual
// reports' eviction from the flight recorder.

// ewmaAlpha weights new observations in the exponentially-weighted moving
// averages (≈ the last ~10 queries dominate).
const ewmaAlpha = 0.2

// DefaultPlanStatsCap bounds how many distinct plans a store tracks.
const DefaultPlanStatsCap = 1024

// OpProfile is the cumulative self-profile of one span operator across a
// plan's executions.
type OpProfile struct {
	SelfNS int64 `json:"self_ns"`
	Steps  int64 `json:"steps,omitempty"`
	Cells  int64 `json:"cells,omitempty"`
}

// PlanStats is the aggregated runtime profile of one prepared plan.
type PlanStats struct {
	// Key is the plan-cache key the stats aggregate over.
	Key string `json:"key"`
	// Queries / Errors / CacheHits count executions of the plan.
	Queries   int64 `json:"queries"`
	Errors    int64 `json:"errors,omitempty"`
	CacheHits int64 `json:"cache_hits"`
	// Cells tracks observed cell counts: the last execution's, the total,
	// and an EWMA (the adaptive threshold chooser's input).
	CellsLast  int64   `json:"cells_last"`
	CellsTotal int64   `json:"cells_total"`
	CellsEWMA  float64 `json:"cells_ewma"`
	// LatencyLast / LatencyEWMA track wall time per execution.
	LatencyLast time.Duration `json:"latency_last_ns"`
	LatencyEWMA time.Duration `json:"latency_ewma_ns"`
	// SelfTime profiles where evaluation time went, by span operator,
	// accumulated from the report's (stitched or profiled) span tree.
	SelfTime map[string]*OpProfile `json:"self_time_by_op,omitempty"`
	// Shard dispatch profile of distributed executions.
	ShardsPlanned int64 `json:"shards_planned,omitempty"`
	ShardsRemote  int64 `json:"shards_remote,omitempty"`
	ShardsLocal   int64 `json:"shards_local,omitempty"`
	ShardRetries  int64 `json:"shard_retries,omitempty"`
	ShardHedges   int64 `json:"shard_hedges,omitempty"`
	// BalanceEWMA tracks worker busy-balance: max shard wall over mean
	// shard wall per distributed execution (1.0 = perfectly balanced),
	// smoothed. Zero when the plan never scattered.
	BalanceEWMA float64 `json:"balance_ewma,omitempty"`
	// Misestimate profile, fed from the report's joined estimate-vs-actual
	// table: Misestimates counts flagged operators across executions,
	// WorstQErrorLast/WorstQErrorEWMA track the run's worst q-error (the
	// EWMA seeded with the first sample), and WorstQErrorOp is the operator
	// path of the last run's worst offender. Zero/empty when the plan never
	// executed with estimates joined.
	Misestimates    int64   `json:"misestimates,omitempty"`
	WorstQErrorLast float64 `json:"worst_q_error_last,omitempty"`
	WorstQErrorEWMA float64 `json:"worst_q_error_ewma,omitempty"`
	WorstQErrorOp   string  `json:"worst_q_error_op,omitempty"`
	// LastSeen orders eviction and tells drift detectors how stale the
	// profile is.
	LastSeen time.Time `json:"last_seen"`
}

// observe folds one report into the stats.
func (p *PlanStats) observe(r *QueryReport) {
	p.Queries++
	if r.Err != "" {
		p.Errors++
	}
	if r.Cached {
		p.CacheHits++
	}
	p.CellsLast = r.Eval.Cells
	p.CellsTotal += r.Eval.Cells
	p.LatencyLast = r.Wall
	// EWMAs are seeded with the first sample: starting the recurrence from
	// zero would bias early readings low by (1-α)^n of the true level.
	if p.Queries == 1 {
		p.CellsEWMA = float64(r.Eval.Cells)
		p.LatencyEWMA = r.Wall
	} else {
		p.CellsEWMA += ewmaAlpha * (float64(r.Eval.Cells) - p.CellsEWMA)
		p.LatencyEWMA += time.Duration(ewmaAlpha * float64(r.Wall-p.LatencyEWMA))
	}
	p.LastSeen = r.Start.Add(r.Wall)

	if ex := r.Explain; ex != nil {
		p.Misestimates += int64(ex.Misestimates)
		if ex.WorstQError > 0 {
			p.WorstQErrorLast = ex.WorstQError
			p.WorstQErrorOp = ex.WorstOp
			if p.WorstQErrorEWMA == 0 {
				p.WorstQErrorEWMA = ex.WorstQError
			} else {
				p.WorstQErrorEWMA += ewmaAlpha * (ex.WorstQError - p.WorstQErrorEWMA)
			}
		}
	}

	if r.Spans != nil {
		if p.SelfTime == nil {
			p.SelfTime = map[string]*OpProfile{}
		}
		r.Spans.Walk(func(n *SpanNode) {
			op := p.SelfTime[n.Op]
			if op == nil {
				op = &OpProfile{}
				p.SelfTime[n.Op] = op
			}
			op.SelfNS += int64(n.WallSelf)
			op.Steps += n.Steps
			op.Cells += n.Cells
		})
	}

	if len(r.Shards) > 0 {
		var sum, max time.Duration
		for i := range r.Shards {
			sh := &r.Shards[i]
			p.ShardsPlanned++
			if sh.Worker == "local" {
				p.ShardsLocal++
			} else {
				p.ShardsRemote++
			}
			if sh.Attempts > 1 {
				p.ShardRetries += int64(sh.Attempts - 1)
			}
			if sh.Hedged {
				p.ShardHedges++
			}
			sum += sh.Wall
			if sh.Wall > max {
				max = sh.Wall
			}
		}
		if mean := sum / time.Duration(len(r.Shards)); mean > 0 {
			balance := float64(max) / float64(mean)
			if p.BalanceEWMA == 0 {
				p.BalanceEWMA = balance
			} else {
				p.BalanceEWMA += ewmaAlpha * (balance - p.BalanceEWMA)
			}
		}
	}
}

// clone deep-copies the stats for lock-free reading.
func (p *PlanStats) clone() PlanStats {
	out := *p
	if p.SelfTime != nil {
		out.SelfTime = make(map[string]*OpProfile, len(p.SelfTime))
		for k, v := range p.SelfTime {
			cp := *v
			out.SelfTime[k] = &cp
		}
	}
	return out
}

// PlanStatsStore is a concurrency-safe store of PlanStats keyed by
// plan-cache key. At capacity, observing a new key evicts the
// least-recently-seen plan.
type PlanStatsStore struct {
	mu  sync.Mutex
	cap int
	m   map[string]*PlanStats
	// evictions counts plans dropped at capacity.
	evictions int64
}

// NewPlanStatsStore returns a store tracking at most capacity plans
// (DefaultPlanStatsCap when capacity <= 0).
func NewPlanStatsStore(capacity int) *PlanStatsStore {
	if capacity <= 0 {
		capacity = DefaultPlanStatsCap
	}
	return &PlanStatsStore{cap: capacity, m: map[string]*PlanStats{}}
}

// Observe folds one finished report into the stats of the plan key.
func (s *PlanStatsStore) Observe(key string, r *QueryReport) {
	if s == nil || r == nil || key == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.m[key]
	if p == nil {
		if len(s.m) >= s.cap {
			s.evictOldestLocked()
		}
		p = &PlanStats{Key: key}
		s.m[key] = p
	}
	p.observe(r)
}

// evictOldestLocked drops the least-recently-seen plan.
func (s *PlanStatsStore) evictOldestLocked() {
	var oldestKey string
	var oldest time.Time
	first := true
	for k, p := range s.m {
		if first || p.LastSeen.Before(oldest) {
			oldestKey, oldest, first = k, p.LastSeen, false
		}
	}
	if oldestKey != "" {
		delete(s.m, oldestKey)
		s.evictions++
	}
}

// Get returns a copy of the stats for key, if tracked.
func (s *PlanStatsStore) Get(key string) (PlanStats, bool) {
	if s == nil {
		return PlanStats{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[key]
	if !ok {
		return PlanStats{}, false
	}
	return p.clone(), true
}

// PlanStatsSnapshot is the /debug/planstats document.
type PlanStatsSnapshot struct {
	Plans     []PlanStats `json:"plans"`
	Evictions int64       `json:"evictions,omitempty"`
}

// Snapshot returns copies of every tracked plan's stats, sorted by key.
func (s *PlanStatsStore) Snapshot() PlanStatsSnapshot {
	if s == nil {
		return PlanStatsSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := PlanStatsSnapshot{Plans: make([]PlanStats, 0, len(s.m)), Evictions: s.evictions}
	for _, p := range s.m {
		out.Plans = append(out.Plans, p.clone())
	}
	sort.Slice(out.Plans, func(i, j int) bool { return out.Plans[i].Key < out.Plans[j].Key })
	return out
}
