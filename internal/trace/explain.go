package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultQErrorThreshold is the q-error above which a per-operator estimate
// is flagged as a misestimate when no explicit threshold is configured. A
// q-error of 2 means the estimate was off by 2x in either direction.
const DefaultQErrorThreshold = 2.0

// Card is an estimated cardinality or cost: either a known exact value or
// the explicit marker "unknown". The estimator never fabricates a number —
// anything parameter- or data-dependent is unknown, so a known Card can be
// held to exact agreement with the recorded actuals.
type Card struct {
	Known bool
	N     int64
}

// KnownCard returns a known cardinality.
func KnownCard(n int64) Card { return Card{Known: true, N: n} }

// UnknownCard returns the explicit unknown marker.
func UnknownCard() Card { return Card{} }

// String renders a known value as digits and unknown as "?".
func (c Card) String() string {
	if !c.Known {
		return "?"
	}
	return strconv.FormatInt(c.N, 10)
}

// MarshalJSON writes a known Card as a JSON number and an unknown one as
// the string "unknown", so API consumers cannot mistake a marker for zero.
func (c Card) MarshalJSON() ([]byte, error) {
	if !c.Known {
		return []byte(`"unknown"`), nil
	}
	return []byte(strconv.FormatInt(c.N, 10)), nil
}

// UnmarshalJSON accepts the two encodings MarshalJSON produces.
func (c *Card) UnmarshalJSON(b []byte) error {
	s := string(b)
	if s == `"unknown"` || s == "null" {
		*c = Card{}
		return nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return fmt.Errorf("card: want a number or \"unknown\", got %s", s)
	}
	*c = Card{Known: true, N: n}
	return nil
}

// AddCard sums two cards; unknown poisons the sum.
func AddCard(a, b Card) Card {
	if !a.Known || !b.Known {
		return UnknownCard()
	}
	if a.N > 0 && b.N > mathMaxInt64-a.N {
		return UnknownCard()
	}
	return KnownCard(a.N + b.N)
}

// MulCard multiplies two cards. A known zero factor yields a known zero even
// when the other factor is unknown: zero invocations charge zero work no
// matter what one invocation would have cost.
func MulCard(a, b Card) Card {
	if a.Known && a.N == 0 {
		return KnownCard(0)
	}
	if b.Known && b.N == 0 {
		return KnownCard(0)
	}
	if !a.Known || !b.Known {
		return UnknownCard()
	}
	p := a.N * b.N
	if a.N != 0 && (p/a.N != b.N || p < 0) {
		return UnknownCard()
	}
	return KnownCard(p)
}

const mathMaxInt64 = int64(^uint64(0) >> 1)

// EstNode is one operator of the estimate tree produced at prepare time by
// the cost estimator (internal/cost). The tree mirrors the SpanPlan span
// tree exactly — same pre-order walk, same shared-subtree deduplication —
// so estimates and actuals join positionally.
type EstNode struct {
	Op string `json:"op"`
	// Card is the estimated output cardinality of one evaluation of this
	// operator: cells for tabulations and arrays, rows for set and bag
	// operations, 1 for scalars.
	Card Card `json:"card"`
	// Cells is the estimated total cells this operator charges across all
	// of its invocations; Cost is the estimated steps charged to the
	// operator itself (its invocation count — the evaluator charges one
	// step per node evaluation).
	Cells Card `json:"cells"`
	Cost  Card `json:"cost"`

	// Tiles, set on the root node only, is the estimated number of storage
	// tiles the query touches: the sum of the tile counts of every lazy
	// (out-of-core) global it references, i.e. an exact count for full
	// scans and an upper bound for selective access. Nil when the query
	// references no lazy arrays.
	Tiles *Card `json:"tiles,omitempty"`

	Children []*EstNode `json:"children,omitempty"`
}

// Walk calls fn for the node and every descendant, depth-first.
func (n *EstNode) Walk(fn func(*EstNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// ExplainRow is one operator of the joined estimate-vs-actual table.
type ExplainRow struct {
	// Path is the slash-separated operator path from the root; Depth is
	// the tree depth, for indentation.
	Path  string `json:"path"`
	Op    string `json:"op"`
	Depth int    `json:"depth"`

	EstCard  Card `json:"est_card"`
	EstCells Card `json:"est_cells"`
	EstCost  Card `json:"est_cost"`

	ActInvocations int64 `json:"act_invocations"`
	ActCells       int64 `json:"act_cells"`
	ActSelfSteps   int64 `json:"act_self_steps"`

	// QError is the worst q-error across the known estimate dimensions
	// (cells, cost); 0 when every estimate on the row is unknown.
	QError  float64 `json:"q_error,omitempty"`
	Flagged bool    `json:"flagged,omitempty"`
}

// ShardActuals is one shard's merged worker actuals appended to a
// cluster query's joined table: the counters recorded under the shard's
// winning attempt. Per-shard estimates are not fabricated — the estimate
// tree describes the whole query, and shard boundaries are data-dependent.
type ShardActuals struct {
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
	Cells  int64  `json:"cells"`
	Steps  int64  `json:"steps"`
}

// ExplainTable is the joined estimate-vs-actual table of one query run.
type ExplainTable struct {
	// Mode is "operator" when the span tree was recorded at prof level
	// full and aligns with the estimate tree (one row per operator), and
	// "root" when only flat counters were available (a single row of query
	// totals).
	Mode string `json:"mode"`
	// Threshold is the q-error above which a row is flagged.
	Threshold float64 `json:"threshold"`

	Rows []ExplainRow `json:"rows"`
	// Shards carries per-shard worker actuals for cluster queries.
	Shards []ShardActuals `json:"shards,omitempty"`

	// EstTiles is the estimator's full-scan tile count over the lazy
	// arrays the query references (nil when it references none); ActTiles
	// is the number of tiles actually fetched from storage during the run
	// (demand misses plus prefetches — cache hits touch no storage).
	EstTiles *Card `json:"est_tiles,omitempty"`
	ActTiles int64 `json:"act_tiles,omitempty"`

	// Misestimates counts flagged rows; WorstQError/WorstOp identify the
	// worst offender.
	Misestimates int     `json:"misestimates"`
	WorstQError  float64 `json:"worst_q_error,omitempty"`
	WorstOp      string  `json:"worst_op,omitempty"`
}

// QError is the standard multiplicative estimation error
// max(est/act, act/est), computed on values clamped to >= 1 so zero
// estimates and zero actuals are comparable. An exact estimate has
// q-error exactly 1.
func QError(est, act int64) float64 {
	e, a := float64(est), float64(act)
	if e < 1 {
		e = 1
	}
	if a < 1 {
		a = 1
	}
	if e > a {
		return e / a
	}
	return a / e
}

// JoinEstimates aligns an estimate tree with a finished query report,
// producing the per-operator estimate-vs-actual table. When the report
// carries a full-profile span tree that structurally matches the estimate
// tree (it must: both are the same pre-order walk of the optimized query),
// the join is per-operator; otherwise it degrades to a single row joining
// whole-query totals. Cluster reports contribute per-shard worker actuals.
// A threshold <= 0 selects DefaultQErrorThreshold.
func JoinEstimates(est *EstNode, rep *QueryReport, threshold float64) *ExplainTable {
	if est == nil || rep == nil {
		return nil
	}
	if threshold <= 0 {
		threshold = DefaultQErrorThreshold
	}
	t := &ExplainTable{Threshold: threshold}

	if rep.Spans != nil && rep.ProfLevel == ProfFull && structuresMatch(est, rep.Spans) {
		t.Mode = "operator"
		joinWalk(t, est, rep.Spans, est.Op, 0)
	} else {
		t.Mode = "root"
		cells, cost := estTotals(est)
		row := ExplainRow{
			Path:           est.Op,
			Op:             est.Op,
			EstCard:        est.Card,
			EstCells:       cells,
			EstCost:        cost,
			ActInvocations: 1,
			ActCells:       rep.Eval.Cells,
			ActSelfSteps:   rep.Eval.Steps,
		}
		scoreRow(t, &row)
		t.Rows = append(t.Rows, row)
	}

	t.EstTiles = est.Tiles
	t.ActTiles = rep.IO.TileMisses + rep.IO.TilePrefetches

	for _, sh := range rep.Shards {
		sa := ShardActuals{Shard: sh.Shard, Worker: sh.Worker}
		sh.Spans.Walk(func(n *SpanNode) {
			sa.Cells += n.Cells
			sa.Steps += n.Steps
		})
		t.Shards = append(t.Shards, sa)
	}
	return t
}

// ProfFull is the span-profile level name at which span self counters are
// exact per-operator attributions (it mirrors eval.ProfFull.String()).
const ProfFull = "full"

// structuresMatch reports whether the estimate and span trees are the same
// shape — same operators, same child counts, recursively. They always are
// when both come from the same optimized expression; the check guards
// against joining a stale estimate against a different plan's spans.
func structuresMatch(e *EstNode, s *SpanNode) bool {
	if e == nil || s == nil || e.Op != s.Op || len(e.Children) != len(s.Children) {
		return false
	}
	for i := range e.Children {
		if !structuresMatch(e.Children[i], s.Children[i]) {
			return false
		}
	}
	return true
}

func joinWalk(t *ExplainTable, e *EstNode, s *SpanNode, path string, depth int) {
	row := ExplainRow{
		Path:           path,
		Op:             e.Op,
		Depth:          depth,
		EstCard:        e.Card,
		EstCells:       e.Cells,
		EstCost:        e.Cost,
		ActInvocations: s.Invocations,
		ActCells:       s.Cells,
		ActSelfSteps:   s.Steps,
	}
	scoreRow(t, &row)
	t.Rows = append(t.Rows, row)
	for i := range e.Children {
		joinWalk(t, e.Children[i], s.Children[i], path+"/"+e.Children[i].Op, depth+1)
	}
}

// scoreRow computes the row's q-error over its known estimate dimensions
// and updates the table's misestimate summary.
func scoreRow(t *ExplainTable, row *ExplainRow) {
	q := 0.0
	if row.EstCells.Known {
		q = QError(row.EstCells.N, row.ActCells)
	}
	if row.EstCost.Known {
		if qc := QError(row.EstCost.N, row.ActSelfSteps); qc > q {
			q = qc
		}
	}
	row.QError = q
	if q > t.Threshold {
		row.Flagged = true
		t.Misestimates++
	}
	if q > t.WorstQError {
		t.WorstQError = q
		t.WorstOp = row.Path
	}
}

// estTotals sums an estimate tree's cells and cost; unknown anywhere in the
// tree poisons the corresponding total.
func estTotals(est *EstNode) (cells, cost Card) {
	cells, cost = KnownCard(0), KnownCard(0)
	est.Walk(func(n *EstNode) {
		cells = AddCard(cells, n.Cells)
		cost = AddCard(cost, n.Cost)
	})
	return cells, cost
}

// Format renders the joined table for the REPL and CLI: one row per
// operator, estimate columns ("?" marks unknown), actual columns, q-error
// ("-" when every estimate on the row is unknown) and a trailing "!" flag
// on misestimates.
func (t *ExplainTable) Format() string {
	if t == nil {
		return "no explain table (estimates unavailable)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "explain analyze  mode=%s  q-error threshold=%.2f\n", t.Mode, t.Threshold)
	fmt.Fprintf(&b, "  %-34s %9s %10s %10s %10s %10s %8s\n",
		"operator", "est card", "est cells", "est cost", "act cells", "act steps", "q-err")
	for _, r := range t.Rows {
		name := strings.Repeat("  ", r.Depth) + r.Op
		if len(name) > 34 {
			name = name[:31] + "..."
		}
		qe := "-"
		if r.QError > 0 {
			qe = fmt.Sprintf("%.2f", r.QError)
		}
		flag := ""
		if r.Flagged {
			flag = " !"
		}
		fmt.Fprintf(&b, "  %-34s %9s %10s %10s %10d %10d %8s%s\n",
			name, r.EstCard, r.EstCells, r.EstCost, r.ActCells, r.ActSelfSteps, qe, flag)
	}
	for _, sh := range t.Shards {
		fmt.Fprintf(&b, "  shard %-2d worker=%s  cells=%d steps=%d\n",
			sh.Shard, sh.Worker, sh.Cells, sh.Steps)
	}
	if t.EstTiles != nil || t.ActTiles > 0 {
		est := "?"
		if t.EstTiles != nil {
			est = t.EstTiles.String()
		}
		fmt.Fprintf(&b, "tiles: est %s (full scan), fetched %d\n", est, t.ActTiles)
	}
	if t.Misestimates > 0 {
		fmt.Fprintf(&b, "misestimates: %d (worst q-error %.2f at %s)\n",
			t.Misestimates, t.WorstQError, t.WorstOp)
	} else {
		b.WriteString("misestimates: none\n")
	}
	return b.String()
}
