package parser

import "testing"

func mustExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestPrecedence(t *testing.T) {
	// 1 + 2 * 3 parses as 1 + (2 * 3).
	e := mustExpr(t, "1 + 2 * 3").(*Bin)
	if e.Op != "+" {
		t.Fatalf("top op = %q", e.Op)
	}
	if r, ok := e.R.(*Bin); !ok || r.Op != "*" {
		t.Errorf("right operand should be *, got %#v", e.R)
	}
	// a < b and c < d parses as (a < b) and (c < d).
	e2 := mustExpr(t, "a < b and c < d").(*Bin)
	if e2.Op != "and" {
		t.Fatalf("top op = %q", e2.Op)
	}
	// f!x + 1 parses as (f!x) + 1.
	e3 := mustExpr(t, "f!x + 1").(*Bin)
	if e3.Op != "+" {
		t.Fatalf("top op = %q", e3.Op)
	}
	if _, ok := e3.L.(*AppE); !ok {
		t.Errorf("left operand should be an application, got %#v", e3.L)
	}
	// not a or b parses as (not a) or b.
	e4 := mustExpr(t, "not a or b").(*Bin)
	if e4.Op != "or" {
		t.Fatalf("top op = %q", e4.Op)
	}
}

func TestIfInOperandPosition(t *testing.T) {
	// The session macro writes `d + ... + if m>2 and y%4=0 then 1 else 0`.
	e := mustExpr(t, "d + if m > 2 then 1 else 0").(*Bin)
	if e.Op != "+" {
		t.Fatalf("top op = %q", e.Op)
	}
	if _, ok := e.R.(*IfE); !ok {
		t.Errorf("right operand should be if, got %#v", e.R)
	}
}

func TestApplicationChain(t *testing.T) {
	// f!x!y parses as (f!x)!y.
	e := mustExpr(t, "f!x!y").(*AppE)
	if _, ok := e.Fn.(*AppE); !ok {
		t.Errorf("application should be left-associative, got %#v", e.Fn)
	}
}

func TestSubscripts(t *testing.T) {
	e := mustExpr(t, "A[i][j]").(*SubE)
	if _, ok := e.Arr.(*SubE); !ok {
		t.Errorf("chained subscript, got %#v", e.Arr)
	}
	e2 := mustExpr(t, "M[i, j]").(*SubE)
	if len(e2.Indices) != 2 {
		t.Errorf("M[i,j] should have 2 indices, got %d", len(e2.Indices))
	}
}

func TestComprehensionQualifiers(t *testing.T) {
	e := mustExpr(t, `{d | \d <- gen!30, \A == f!d, g!A > t}`).(*Comp)
	if len(e.Quals) != 3 {
		t.Fatalf("quals = %d, want 3", len(e.Quals))
	}
	if _, ok := e.Quals[0].(*GenQ); !ok {
		t.Errorf("qual 0 should be a generator: %#v", e.Quals[0])
	}
	if _, ok := e.Quals[1].(*BindQ); !ok {
		t.Errorf("qual 1 should be a binding: %#v", e.Quals[1])
	}
	if _, ok := e.Quals[2].(*FilterQ); !ok {
		t.Errorf("qual 2 should be a filter: %#v", e.Quals[2])
	}
}

func TestArrayGeneratorQualifier(t *testing.T) {
	e := mustExpr(t, `{d | [(\h,_,_):\t] <- T, t > 85.0}`).(*Comp)
	ag, ok := e.Quals[0].(*ArrGenQ)
	if !ok {
		t.Fatalf("qual 0 = %#v", e.Quals[0])
	}
	pt, ok := ag.IdxPat.(*PTuple)
	if !ok || len(pt.Elems) != 3 {
		t.Errorf("index pattern = %#v", ag.IdxPat)
	}
	if _, ok := ag.ValPat.(*PVar); !ok {
		t.Errorf("value pattern = %#v", ag.ValPat)
	}
}

func TestSetVsComprehension(t *testing.T) {
	if _, ok := mustExpr(t, "{1, 2, 3}").(*SetE); !ok {
		t.Error("{1,2,3} should be a set literal")
	}
	if _, ok := mustExpr(t, "{x | \\x <- S}").(*Comp); !ok {
		t.Error("{x | ...} should be a comprehension")
	}
	if _, ok := mustExpr(t, "{}").(*SetE); !ok {
		t.Error("{} should be the empty set")
	}
	if c, ok := mustExpr(t, "{| x | \\x <- B |}").(*Comp); !ok || !c.Bag {
		t.Error("{| x | ... |} should be a bag comprehension")
	}
	if _, ok := mustExpr(t, "{| 1, 2 |}").(*BagE); !ok {
		t.Error("{|1,2|} should be a bag literal")
	}
}

func TestArrayLiterals(t *testing.T) {
	a := mustExpr(t, "[[1, 2, 3]]").(*ArrayE)
	if a.Dims != nil || len(a.Elems) != 3 {
		t.Errorf("1-d literal: %#v", a)
	}
	b := mustExpr(t, "[[2, 3; 1, 2, 3, 4, 5, 6]]").(*ArrayE)
	if len(b.Dims) != 2 || len(b.Elems) != 6 {
		t.Errorf("row-major literal: dims=%d elems=%d", len(b.Dims), len(b.Elems))
	}
	empty := mustExpr(t, "[[]]").(*ArrayE)
	if len(empty.Elems) != 0 {
		t.Errorf("empty literal: %#v", empty)
	}
}

func TestTuplesAndUnit(t *testing.T) {
	if tp, ok := mustExpr(t, "(1, 2, 3)").(*TupleE); !ok || len(tp.Elems) != 3 {
		t.Error("(1,2,3) should be a 3-tuple")
	}
	if _, ok := mustExpr(t, "(1)").(*NatLit); !ok {
		t.Error("(1) should be just 1")
	}
	if u, ok := mustExpr(t, "()").(*TupleE); !ok || len(u.Elems) != 0 {
		t.Error("() should be unit")
	}
}

func TestStatements(t *testing.T) {
	src := `val \months = [[0, 31, 28]];
	macro \f = fn \x => x + 1;
	readval \T using NETCDF3 at ("temp.nc", "temp", (0,0,0), (9,0,0));
	writeval T using PRINT at "out.txt";
	{d | \d <- gen!30};`
	stmts, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 5 {
		t.Fatalf("stmts = %d, want 5", len(stmts))
	}
	if v, ok := stmts[0].(*ValDecl); !ok || v.Name != "months" {
		t.Errorf("stmt 0 = %#v", stmts[0])
	}
	if m, ok := stmts[1].(*MacroDecl); !ok || m.Name != "f" {
		t.Errorf("stmt 1 = %#v", stmts[1])
	}
	if r, ok := stmts[2].(*ReadVal); !ok || r.Reader != "NETCDF3" || r.Name != "T" {
		t.Errorf("stmt 2 = %#v", stmts[2])
	}
	if w, ok := stmts[3].(*WriteVal); !ok || w.Writer != "PRINT" {
		t.Errorf("stmt 3 = %#v", stmts[3])
	}
	if _, ok := stmts[4].(*ExprStmt); !ok {
		t.Errorf("stmt 4 = %#v", stmts[4])
	}
}

func TestFullPaperQueries(t *testing.T) {
	srcs := []string{
		// The motivating query of section 1.
		`{d | \d <- gen!30,
		   \WS' == evenpos!(proj_col!(WS, 0)),
		   \TRW == zip_3!(T, RH, WS'),
		   \A == subseq!(TRW, d*24, d*24+23),
		   heatindex!(A) > threshold}`,
		// The session query of section 4.2.
		`{d | [(\h,_,_):\t] <- T, \d == h/24+1,
		   h > june_sunset!(NYlat, NYlon, d), t > 85.0}`,
		// The macro from the session.
		`fn (\m,\d,\y) =>
		   d + summap(fn \i => months[i])!(gen!m) +
		   if m > 2 and y % 4 = 0 then 1 else 0`,
	}
	for _, src := range srcs {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "{x | }", "fn => 1", "let in 1 end", "if 1 then 2",
		"(1, 2", "[[1, 2", "f!", "val x", "A[", "{x | \\x <-}",
		"let val \\x = 1 in x", // missing end
	}
	for _, src := range bad {
		if e, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) = %#v, want error", src, e)
		}
	}
}
