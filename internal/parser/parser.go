package parser

import (
	"fmt"

	"github.com/aqldb/aql/internal/scan"
)

// ParseExpr parses a single AQL expression.
func ParseExpr(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != scan.EOF {
		return nil, p.errf("unexpected %s after expression", p.peek().Kind)
	}
	return e, nil
}

// ParseProgram parses a sequence of top-level statements, each terminated
// by a semicolon.
func ParseProgram(src string) ([]Stmt, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.peek().Kind != scan.EOF {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

type parser struct {
	toks []scan.Token
	pos  int
}

func newParser(src string) (*parser, error) {
	toks, err := scan.Scan(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) peek() scan.Token { return p.toks[p.pos] }
func (p *parser) peekAt(n int) scan.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) advance() scan.Token {
	t := p.toks[p.pos]
	if t.Kind != scan.EOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parse: %s: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *parser) eat(k scan.Kind) bool {
	if p.peek().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) eatKeyword(kw string) bool {
	if t := p.peek(); t.Kind == scan.KEYWORD && t.Text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k scan.Kind) (scan.Token, error) {
	if p.peek().Kind != k {
		return scan.Token{}, p.errf("expected %s, got %s", k, p.peek().Kind)
	}
	return p.advance(), nil
}

// expectRBracket consumes a single `]`. Adjacent closing brackets lex as
// the array-literal terminator `]]`, so nested subscripts like A[B[i]]
// arrive as RARR; splitting the token here restores the intended reading.
func (p *parser) expectRBracket() error {
	switch p.peek().Kind {
	case scan.RBRACK:
		p.advance()
		return nil
	case scan.RARR:
		p.toks[p.pos] = scan.Token{Kind: scan.RBRACK, Pos: p.peek().Pos}
		return nil
	}
	return p.errf("expected %s, got %s", scan.RBRACK, p.peek().Kind)
}

func (p *parser) expectKeyword(kw string) error {
	if t := p.peek(); t.Kind != scan.KEYWORD || t.Text != kw {
		return p.errf("expected %q, got %s", kw, p.peek().Kind)
	}
	p.advance()
	return nil
}

// --- Statements ------------------------------------------------------------

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	if t.Kind == scan.KEYWORD {
		switch t.Text {
		case "val":
			// Distinguish a top-level `val \x = e;` from the start of an
			// expression (a bare `val` cannot start an expression anyway).
			p.advance()
			name, err := p.bindingName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(scan.EQ); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(scan.SEMI); err != nil {
				return nil, err
			}
			return &ValDecl{Name: name, E: e}, nil
		case "macro":
			p.advance()
			name, err := p.bindingName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(scan.EQ); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(scan.SEMI); err != nil {
				return nil, err
			}
			return &MacroDecl{Name: name, E: e}, nil
		case "readval":
			p.advance()
			name, err := p.bindingName()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("using"); err != nil {
				return nil, err
			}
			rd, err := p.expect(scan.IDENT)
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("at"); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(scan.SEMI); err != nil {
				return nil, err
			}
			return &ReadVal{Name: name, Reader: rd.Text, At: e}, nil
		case "writeval":
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("using"); err != nil {
				return nil, err
			}
			wr, err := p.expect(scan.IDENT)
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("at"); err != nil {
				return nil, err
			}
			at, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(scan.SEMI); err != nil {
				return nil, err
			}
			return &WriteVal{E: e, Writer: wr.Text, At: at}, nil
		}
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(scan.SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{E: e}, nil
}

// bindingName parses `\name` (the backslash is optional, accepting both
// `val \x = ...` as in the paper's session and plain `val x = ...`).
func (p *parser) bindingName() (string, error) {
	p.eat(scan.BACKSLASH)
	t, err := p.expect(scan.IDENT)
	if err != nil {
		return "", err
	}
	return t.Text, nil
}

// --- Expressions -------------------------------------------------------------
//
// Precedence, loosest first:
//
//	or
//	and
//	not (prefix)
//	= <> < > <= >= mem        (non-associative)
//	+ -
//	* / %
//	f!e                       (application, left-associative)
//	e[i,...]                  (subscript, postfix)
//	atoms; if/fn/let parse greedily wherever an operand may start.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

// special returns a greedy prefix form (if/fn/let) if one starts here.
func (p *parser) special() (Expr, bool, error) {
	t := p.peek()
	if t.Kind != scan.KEYWORD {
		return nil, false, nil
	}
	switch t.Text {
	case "if":
		p.advance()
		cond, err := p.expr()
		if err != nil {
			return nil, false, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, false, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, false, err
		}
		if err := p.expectKeyword("else"); err != nil {
			return nil, false, err
		}
		els, err := p.expr()
		if err != nil {
			return nil, false, err
		}
		return &IfE{Cond: cond, Then: then, Else: els, At: t.Pos}, true, nil
	case "fn":
		p.advance()
		pat, err := p.pattern()
		if err != nil {
			return nil, false, err
		}
		if _, err := p.expect(scan.DARROW); err != nil {
			return nil, false, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, false, err
		}
		return &Fn{Pat: pat, Body: body, At: t.Pos}, true, nil
	case "let":
		p.advance()
		var decls []LetDecl
		for p.eatKeyword("val") {
			pat, err := p.pattern()
			if err != nil {
				return nil, false, err
			}
			if _, err := p.expect(scan.EQ); err != nil {
				return nil, false, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, false, err
			}
			decls = append(decls, LetDecl{Pat: pat, E: e})
		}
		if len(decls) == 0 {
			return nil, false, p.errf("let block needs at least one val declaration")
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, false, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, false, err
		}
		if err := p.expectKeyword("end"); err != nil {
			return nil, false, err
		}
		return &Let{Decls: decls, Body: body, At: t.Pos}, true, nil
	}
	return nil, false, nil
}

func (p *parser) orExpr() (Expr, error) {
	if e, ok, err := p.special(); ok || err != nil {
		return e, err
	}
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == scan.KEYWORD && t.Text == "or" {
			p.advance()
			r, err := p.andExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "or", L: l, R: r, At: t.Pos}
			continue
		}
		return l, nil
	}
}

func (p *parser) andExpr() (Expr, error) {
	if e, ok, err := p.special(); ok || err != nil {
		return e, err
	}
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == scan.KEYWORD && t.Text == "and" {
			p.advance()
			r, err := p.notExpr()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "and", L: l, R: r, At: t.Pos}
			continue
		}
		return l, nil
	}
}

func (p *parser) notExpr() (Expr, error) {
	if t := p.peek(); t.Kind == scan.KEYWORD && t.Text == "not" {
		p.advance()
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Not{E: e, At: t.Pos}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[scan.Kind]string{
	scan.EQ: "=", scan.NE: "<>", scan.LT: "<", scan.GT: ">",
	scan.LE: "<=", scan.GE: ">=",
}

func (p *parser) cmpExpr() (Expr, error) {
	if e, ok, err := p.special(); ok || err != nil {
		return e, err
	}
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if op, ok := cmpOps[t.Kind]; ok {
		p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: op, L: l, R: r, At: t.Pos}, nil
	}
	if t.Kind == scan.KEYWORD && t.Text == "mem" {
		p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Bin{Op: "mem", L: l, R: r, At: t.Pos}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	if e, ok, err := p.special(); ok || err != nil {
		return e, err
	}
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op string
		switch {
		case t.Kind == scan.PLUS:
			op = "+"
		case t.Kind == scan.MINUS:
			op = "-"
		case t.Kind == scan.KEYWORD && t.Text == "union":
			op = "union"
		case t.Kind == scan.KEYWORD && t.Text == "uplus":
			op = "uplus"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r, At: t.Pos}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	if e, ok, err := p.special(); ok || err != nil {
		return e, err
	}
	l, err := p.appExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op string
		switch t.Kind {
		case scan.STAR:
			op = "*"
		case scan.SLASH:
			op = "/"
		case scan.PERCENT:
			op = "%"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.appExpr()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r, At: t.Pos}
	}
}

// appExpr parses f!e chains, including the summap(f)!e special form and
// unary minus (desugared to the neg primitive; reals only, since naturals
// subtract by monus).
func (p *parser) appExpr() (Expr, error) {
	if e, ok, err := p.special(); ok || err != nil {
		return e, err
	}
	if t := p.peek(); t.Kind == scan.MINUS {
		p.advance()
		e, err := p.appExpr()
		if err != nil {
			return nil, err
		}
		return &AppE{Fn: &Ident{Name: "neg", At: t.Pos}, Arg: e, At: t.Pos}, nil
	}
	// summap(f)!e
	if t := p.peek(); t.Kind == scan.IDENT && t.Text == "summap" && p.peekAt(1).Kind == scan.LPAREN {
		p.advance()
		p.advance()
		f, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(scan.RPAREN); err != nil {
			return nil, err
		}
		if _, err := p.expect(scan.BANG); err != nil {
			return nil, err
		}
		over, err := p.postfixExpr()
		if err != nil {
			return nil, err
		}
		return &SumMap{F: f, Over: over, At: t.Pos}, nil
	}
	l, err := p.postfixExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != scan.BANG {
			return l, nil
		}
		p.advance()
		// The argument of ! is a postfix expression (or a greedy special
		// form), so `gen!m + 1` parses as `(gen!m) + 1`.
		if e, ok, err := p.special(); ok || err != nil {
			if err != nil {
				return nil, err
			}
			l = &AppE{Fn: l, Arg: e, At: t.Pos}
			continue
		}
		arg, err := p.postfixExpr()
		if err != nil {
			return nil, err
		}
		l = &AppE{Fn: l, Arg: arg, At: t.Pos}
	}
}

// postfixExpr parses an atom followed by any number of subscripts.
func (p *parser) postfixExpr() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == scan.LBRACK {
		at := p.advance().Pos
		var idx []Expr
		for {
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			idx = append(idx, i)
			if p.eat(scan.COMMA) {
				continue
			}
			break
		}
		if err := p.expectRBracket(); err != nil {
			return nil, err
		}
		e = &SubE{Arr: e, Indices: idx, At: at}
	}
	return e, nil
}

func (p *parser) atom() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case scan.NAT:
		p.advance()
		return &NatLit{Val: t.Nat, At: t.Pos}, nil
	case scan.REAL:
		p.advance()
		return &RealLit{Val: t.Real, At: t.Pos}, nil
	case scan.STRING:
		p.advance()
		return &StringLit{Val: t.Text, At: t.Pos}, nil
	case scan.BOTTOM:
		p.advance()
		return &BottomLit{At: t.Pos}, nil
	case scan.PARAM:
		p.advance()
		return &ParamE{Name: t.Text, At: t.Pos}, nil
	case scan.IDENT:
		p.advance()
		return &Ident{Name: t.Text, At: t.Pos}, nil
	case scan.KEYWORD:
		switch t.Text {
		case "true", "false":
			p.advance()
			return &BoolLit{Val: t.Text == "true", At: t.Pos}, nil
		case "if", "fn", "let":
			e, _, err := p.special()
			return e, err
		}
		return nil, p.errf("unexpected keyword %q", t.Text)
	case scan.LPAREN:
		p.advance()
		if p.eat(scan.RPAREN) {
			return &TupleE{At: t.Pos}, nil // unit
		}
		first, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.peek().Kind == scan.COMMA {
			elems := []Expr{first}
			for p.eat(scan.COMMA) {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
			}
			if _, err := p.expect(scan.RPAREN); err != nil {
				return nil, err
			}
			return &TupleE{Elems: elems, At: t.Pos}, nil
		}
		if _, err := p.expect(scan.RPAREN); err != nil {
			return nil, err
		}
		return first, nil
	case scan.LBRACE:
		return p.braces(t.Pos, false)
	case scan.LBAG:
		return p.braces(t.Pos, true)
	case scan.LARR:
		return p.arrayLit(t.Pos)
	}
	return nil, p.errf("unexpected %s", t.Kind)
}

// braces parses { ... } or {| ... |}: a (possibly empty) literal or a
// comprehension, depending on whether a | follows the first expression.
func (p *parser) braces(at scan.Pos, bag bool) (Expr, error) {
	close, compSep := scan.RBRACE, scan.BAR
	if bag {
		close = scan.RBAG
	}
	p.advance() // { or {|
	if p.eat(close) {
		if bag {
			return &BagE{At: at}, nil
		}
		return &SetE{At: at}, nil
	}
	first, err := p.expr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.peek().Kind == compSep:
		p.advance()
		quals, err := p.quals()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(close); err != nil {
			return nil, err
		}
		return &Comp{Head: first, Quals: quals, Bag: bag, At: at}, nil
	case p.peek().Kind == scan.COMMA:
		elems := []Expr{first}
		for p.eat(scan.COMMA) {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		if _, err := p.expect(close); err != nil {
			return nil, err
		}
		if bag {
			return &BagE{Elems: elems, At: at}, nil
		}
		return &SetE{Elems: elems, At: at}, nil
	default:
		if _, err := p.expect(close); err != nil {
			return nil, err
		}
		if bag {
			return &BagE{Elems: []Expr{first}, At: at}, nil
		}
		return &SetE{Elems: []Expr{first}, At: at}, nil
	}
}

// arrayLit parses [[ ... ]]: empty, element list, the row-major
// dims-then-values form with a semicolon, or a tabulation
// [[ e | \i < n, ... ]].
func (p *parser) arrayLit(at scan.Pos) (Expr, error) {
	p.advance() // [[
	if p.eat(scan.RARR) {
		return &ArrayE{At: at}, nil
	}
	var elems []Expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		if p.eat(scan.COMMA) {
			continue
		}
		break
	}
	if len(elems) == 1 && p.eat(scan.BAR) {
		// Tabulation: a bound list \i < e, ....
		var idx []string
		var bounds []Expr
		for {
			if _, err := p.expect(scan.BACKSLASH); err != nil {
				return nil, err
			}
			iv, err := p.expect(scan.IDENT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(scan.LT); err != nil {
				return nil, err
			}
			b, err := p.expr()
			if err != nil {
				return nil, err
			}
			idx = append(idx, iv.Text)
			bounds = append(bounds, b)
			if p.eat(scan.COMMA) {
				continue
			}
			break
		}
		if _, err := p.expect(scan.RARR); err != nil {
			return nil, err
		}
		return &TabE{Head: elems[0], Idx: idx, Bounds: bounds, At: at}, nil
	}
	if p.eat(scan.SEMI) {
		dims := elems
		var vals []Expr
		if !p.eat(scan.RARR) {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				vals = append(vals, e)
				if p.eat(scan.COMMA) {
					continue
				}
				break
			}
			if _, err := p.expect(scan.RARR); err != nil {
				return nil, err
			}
		}
		return &ArrayE{Dims: dims, Elems: vals, At: at}, nil
	}
	if _, err := p.expect(scan.RARR); err != nil {
		return nil, err
	}
	return &ArrayE{Elems: elems, At: at}, nil
}

// quals parses the comma-separated qualifier list of a comprehension.
func (p *parser) quals() ([]Qual, error) {
	var quals []Qual
	for {
		q, err := p.qual()
		if err != nil {
			return nil, err
		}
		quals = append(quals, q)
		if p.eat(scan.COMMA) {
			continue
		}
		return quals, nil
	}
}

func (p *parser) qual() (Qual, error) {
	// Array generator: [P1 : P2] <- e.
	if p.peek().Kind == scan.LBRACK {
		p.advance()
		ip, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(scan.COLON); err != nil {
			return nil, err
		}
		vp, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if err := p.expectRBracket(); err != nil {
			return nil, err
		}
		if _, err := p.expect(scan.ARROW); err != nil {
			return nil, err
		}
		src, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ArrGenQ{IdxPat: ip, ValPat: vp, Src: src}, nil
	}
	// Generator or binding: try a pattern followed by <- or ==; otherwise
	// backtrack and parse a filter expression.
	save := p.pos
	if pat, err := p.pattern(); err == nil {
		switch p.peek().Kind {
		case scan.ARROW:
			p.advance()
			src, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &GenQ{Pat: pat, Src: src}, nil
		case scan.BIND:
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &BindQ{Pat: pat, E: e}, nil
		}
	}
	p.pos = save
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &FilterQ{E: e}, nil
}

// pattern parses P ::= (P1,...,Pk) | _ | c | x | \x.
func (p *parser) pattern() (Pat, error) {
	t := p.peek()
	switch t.Kind {
	case scan.BACKSLASH:
		p.advance()
		id, err := p.expect(scan.IDENT)
		if err != nil {
			return nil, err
		}
		return &PVar{Name: id.Text}, nil
	case scan.WILD:
		p.advance()
		return &PWild{}, nil
	case scan.IDENT:
		p.advance()
		return &PRef{Name: t.Text}, nil
	case scan.NAT:
		p.advance()
		return &PConst{E: &NatLit{Val: t.Nat, At: t.Pos}}, nil
	case scan.REAL:
		p.advance()
		return &PConst{E: &RealLit{Val: t.Real, At: t.Pos}}, nil
	case scan.STRING:
		p.advance()
		return &PConst{E: &StringLit{Val: t.Text, At: t.Pos}}, nil
	case scan.KEYWORD:
		if t.Text == "true" || t.Text == "false" {
			p.advance()
			return &PConst{E: &BoolLit{Val: t.Text == "true", At: t.Pos}}, nil
		}
	case scan.LPAREN:
		p.advance()
		var elems []Pat
		if !p.eat(scan.RPAREN) {
			for {
				sub, err := p.pattern()
				if err != nil {
					return nil, err
				}
				elems = append(elems, sub)
				if p.eat(scan.COMMA) {
					continue
				}
				break
			}
			if _, err := p.expect(scan.RPAREN); err != nil {
				return nil, err
			}
		}
		if len(elems) == 1 {
			return elems[0], nil
		}
		return &PTuple{Elems: elems}, nil
	}
	return nil, p.errf("expected a pattern, got %s", t.Kind)
}
