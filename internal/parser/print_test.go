package parser

import (
	"math/rand"
	"testing"
)

// reprint asserts the print → parse → print fixpoint.
func reprint(t *testing.T, src string) string {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	out := Print(e)
	e2, err := ParseExpr(out)
	if err != nil {
		t.Fatalf("re-parse of printed %q failed: %v", out, err)
	}
	out2 := Print(e2)
	if out != out2 {
		t.Fatalf("print not a fixpoint:\n 1: %s\n 2: %s", out, out2)
	}
	return out
}

func TestPrintBasics(t *testing.T) {
	tests := []struct{ src, want string }{
		{"x", "x"},
		{"42", "42"},
		{"85.0", "85.0"},
		{`"nc"`, `"nc"`},
		{"true", "true"},
		{"_|_", "_|_"},
		{"(1, 2)", "(1, 2)"},
		{"{1, 2}", "{1, 2}"},
		{"{||}", "{||}"},
		{"[[1, 2]]", "[[1, 2]]"},
		{"[[2, 2; 1, 2, 3, 4]]", "[[2, 2; 1, 2, 3, 4]]"},
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"1 - 2 - 3", "1 - 2 - 3"},
		{"1 - (2 - 3)", "1 - (2 - 3)"},
		{"a < b and c < d or e", "a < b and c < d or e"},
		{"not a and b", "not a and b"},
		{"f!x!y", "f!x!y"},
		{"A[i, j]", "A[i, j]"},
		{"A[i][j]", "A[i][j]"},
		{"x mem S", "x mem S"},
		{"A union B", "A union B"},
		{"fn \\x => x + 1", "fn \\x => x + 1"},
		{"summap(fn \\i => i)!(gen!5)", "summap(fn \\i => i)!(gen!5)"},
	}
	for _, tt := range tests {
		if got := reprint(t, tt.src); got != tt.want {
			t.Errorf("Print(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestPrintGreedyFormsParenthesized(t *testing.T) {
	// if/fn/let in operand position need parentheses to survive re-parsing.
	srcs := []string{
		"1 + (if a then 2 else 3)",
		"(if a then 1 else 2) + 3",
		"(fn \\x => x)!5",
		"(let val \\x = 1 in x end) * 2",
		"d + (if m > 2 and y % 4 = 0 then 1 else 0)",
	}
	for _, src := range srcs {
		reprint(t, src)
	}
}

func TestPrintComprehensionsAndPatterns(t *testing.T) {
	srcs := []string{
		`{x | \x <- S}`,
		`{(x, y) | (\x, \y) <- R, (y, \z) <- S, z > 0}`,
		`{x | (_, 0, \x) <- R}`,
		`{i | [\i : \x] <- A, x > 90}`,
		`{d | [(\h, _, _) : \t] <- T, \d == h / 24 + 1, t > 85.0}`,
		`{| x * 2 | \x <- B |}`,
		`[[ A[i + k] | \k < (j + 1) - i ]]`,
		`[[ M[i, j] | \j < dim_2_2!M, \i < dim_1_2!M ]]`,
		`let val \x = 1 val (\a, \b) = p in a + b + x end`,
		`fn (\m, \d, \y) => d + summap(fn \i => months[i])!(gen!m)`,
	}
	for _, src := range srcs {
		reprint(t, src)
	}
}

func TestPrintPat(t *testing.T) {
	e := mustExpr(t, `{x | (\a, _, 0, b) <- S, \x == a}`).(*Comp)
	gen := e.Quals[0].(*GenQ)
	if got := PrintPat(gen.Pat); got != `(\a, _, 0, b)` {
		t.Errorf("PrintPat = %q", got)
	}
}

// randomSurface builds a random surface expression for the fixpoint
// property test.
func randomSurface(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &Ident{Name: string(rune('a' + rng.Intn(6)))}
		case 1:
			return &NatLit{Val: int64(rng.Intn(100))}
		case 2:
			return &RealLit{Val: float64(rng.Intn(100)) / 4}
		default:
			return &BoolLit{Val: rng.Intn(2) == 0}
		}
	}
	sub := func() Expr { return randomSurface(rng, depth-1) }
	switch rng.Intn(12) {
	case 0:
		ops := []string{"+", "-", "*", "/", "%", "and", "or", "=", "<", "<=", "mem", "union"}
		return &Bin{Op: ops[rng.Intn(len(ops))], L: sub(), R: sub()}
	case 1:
		return &Not{E: sub()}
	case 2:
		return &IfE{Cond: sub(), Then: sub(), Else: sub()}
	case 3:
		return &AppE{Fn: &Ident{Name: "f"}, Arg: sub()}
	case 4:
		return &SubE{Arr: &Ident{Name: "A"}, Indices: []Expr{sub()}}
	case 5:
		return &TupleE{Elems: []Expr{sub(), sub()}}
	case 6:
		return &SetE{Elems: []Expr{sub()}}
	case 7:
		return &Fn{Pat: &PVar{Name: "x"}, Body: sub()}
	case 8:
		return &TabE{Head: sub(), Idx: []string{"i"}, Bounds: []Expr{sub()}}
	case 9:
		return &Comp{Head: sub(), Quals: []Qual{
			&GenQ{Pat: &PVar{Name: "x"}, Src: sub()},
			&FilterQ{E: sub()},
		}}
	case 10:
		return &Let{Decls: []LetDecl{{Pat: &PVar{Name: "v"}, E: sub()}}, Body: sub()}
	default:
		return &SumMap{F: sub(), Over: &Ident{Name: "S"}}
	}
}

func TestPropPrintParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 500; trial++ {
		e := randomSurface(rng, 4)
		out := Print(e)
		e2, err := ParseExpr(out)
		if err != nil {
			t.Fatalf("trial %d: printed form does not re-parse: %v\n%s", trial, err, out)
		}
		out2 := Print(e2)
		if out != out2 {
			t.Fatalf("trial %d: not a fixpoint:\n 1: %s\n 2: %s", trial, out, out2)
		}
	}
}
