// Package parser implements the AQL surface syntax (section 3 of the paper):
// comprehensions with generators and filters, patterns, pattern-matching
// lambdas (fn P => e), let blocks, infix operators, literals for all complex
// object types, and the top-level declaration forms of section 4 (val, macro,
// readval, writeval).
//
// The parser produces a surface AST; package desugar translates it into the
// core calculus of package ast using the tables of figure 2.
package parser

import "github.com/aqldb/aql/internal/scan"

// Expr is a surface expression.
type Expr interface{ Pos() scan.Pos }

// Ident is a variable or primitive reference.
type Ident struct {
	Name string
	At   scan.Pos
}

// NatLit is a natural literal.
type NatLit struct {
	Val int64
	At  scan.Pos
}

// RealLit is a real literal.
type RealLit struct {
	Val float64
	At  scan.Pos
}

// StringLit is a string literal.
type StringLit struct {
	Val string
	At  scan.Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Val bool
	At  scan.Pos
}

// BottomLit is the error literal _|_.
type BottomLit struct{ At scan.Pos }

// ParamE is the input placeholder $name: a typed hole filled per execution
// from the argument frame of a prepared query.
type ParamE struct {
	Name string
	At   scan.Pos
}

// TupleE is (e1, ..., ek); k = 0 is the unit value. (e) parses as e.
type TupleE struct {
	Elems []Expr
	At    scan.Pos
}

// SetE is the set literal {e1, ..., en}.
type SetE struct {
	Elems []Expr
	At    scan.Pos
}

// BagE is the bag literal {|e1, ..., en|}.
type BagE struct {
	Elems []Expr
	At    scan.Pos
}

// ArrayE is an array literal: [[e1, ..., en]] or the row-major form
// [[n1, ..., nk; e0, ..., e_{n1*...*nk-1}]] of section 3.
type ArrayE struct {
	Dims  []Expr // nil for the 1-dimensional bracket form
	Elems []Expr
	At    scan.Pos
}

// TabE is the array tabulation [[ e | \i1 < e1, ..., \ik < ek ]] — the
// paper's core construct for defining a k-dimensional array from a function
// of its indices (section 2).
type TabE struct {
	Head   Expr
	Idx    []string
	Bounds []Expr
	At     scan.Pos
}

func (e *TabE) Pos() scan.Pos { return e.At }

// Comp is a comprehension { e | Q1, ..., Qn } (or a bag comprehension with
// {| |} brackets).
type Comp struct {
	Head  Expr
	Quals []Qual
	Bag   bool
	At    scan.Pos
}

// Fn is a pattern-matching lambda: fn P => e.
type Fn struct {
	Pat  Pat
	Body Expr
	At   scan.Pos
}

// LetDecl is one `val P = e` declaration of a let block.
type LetDecl struct {
	Pat Pat
	E   Expr
}

// Let is let val P1 = e1 ... val Pn = en in e end.
type Let struct {
	Decls []LetDecl
	Body  Expr
	At    scan.Pos
}

// IfE is if e1 then e2 else e3.
type IfE struct {
	Cond, Then, Else Expr
	At               scan.Pos
}

// Bin is an infix application: arithmetic (+ - * / %), comparison
// (= <> < > <= >=), logical (and, or), and membership (mem).
type Bin struct {
	Op   string
	L, R Expr
	At   scan.Pos
}

// Not is the prefix logical negation.
type Not struct {
	E  Expr
	At scan.Pos
}

// AppE is function application f!e.
type AppE struct {
	Fn, Arg Expr
	At      scan.Pos
}

// SubE is array subscripting e[i1, ..., ik].
type SubE struct {
	Arr     Expr
	Indices []Expr
	At      scan.Pos
}

// SumMap is summap(f)!e, the surface notation for Σ{ f(x) | x ∈ e }
// (section 4.2).
type SumMap struct {
	F, Over Expr
	At      scan.Pos
}

func (e *Ident) Pos() scan.Pos     { return e.At }
func (e *NatLit) Pos() scan.Pos    { return e.At }
func (e *RealLit) Pos() scan.Pos   { return e.At }
func (e *StringLit) Pos() scan.Pos { return e.At }
func (e *BoolLit) Pos() scan.Pos   { return e.At }
func (e *BottomLit) Pos() scan.Pos { return e.At }
func (e *ParamE) Pos() scan.Pos    { return e.At }
func (e *TupleE) Pos() scan.Pos    { return e.At }
func (e *SetE) Pos() scan.Pos      { return e.At }
func (e *BagE) Pos() scan.Pos      { return e.At }
func (e *ArrayE) Pos() scan.Pos    { return e.At }
func (e *Comp) Pos() scan.Pos      { return e.At }
func (e *Fn) Pos() scan.Pos        { return e.At }
func (e *Let) Pos() scan.Pos       { return e.At }
func (e *IfE) Pos() scan.Pos       { return e.At }
func (e *Bin) Pos() scan.Pos       { return e.At }
func (e *Not) Pos() scan.Pos       { return e.At }
func (e *AppE) Pos() scan.Pos      { return e.At }
func (e *SubE) Pos() scan.Pos      { return e.At }
func (e *SumMap) Pos() scan.Pos    { return e.At }

// Qual is a comprehension qualifier: a generator, an array generator, a
// binding, or a filter.
type Qual interface{ qual() }

// GenQ is the generator P <- e.
type GenQ struct {
	Pat Pat
	Src Expr
}

// ArrGenQ is the array generator [P1 : P2] <- e, sugar for iterating over
// the domain of the array e, matching the index against P1 and the value
// against P2 (section 3).
type ArrGenQ struct {
	IdxPat, ValPat Pat
	Src            Expr
}

// BindQ is the binding P == e, shorthand for P <- {e}.
type BindQ struct {
	Pat Pat
	E   Expr
}

// FilterQ is a boolean filter expression.
type FilterQ struct{ E Expr }

func (*GenQ) qual()    {}
func (*ArrGenQ) qual() {}
func (*BindQ) qual()   {}
func (*FilterQ) qual() {}

// Pat is a pattern: P ::= (P1,...,Pk) | _ | c | x | \x (section 3).
type Pat interface{ pat() }

// PVar is the binding pattern \x.
type PVar struct{ Name string }

// PRef is the non-binding pattern x: matches only the value currently bound
// to x.
type PRef struct{ Name string }

// PWild is the wildcard pattern _.
type PWild struct{}

// PConst is a constant pattern: matches only that constant.
type PConst struct{ E Expr }

// PTuple is the tuple pattern (P1, ..., Pk).
type PTuple struct{ Elems []Pat }

func (*PVar) pat()   {}
func (*PRef) pat()   {}
func (*PWild) pat()  {}
func (*PConst) pat() {}
func (*PTuple) pat() {}

// Stmt is a top-level statement in the AQL read-eval-print loop
// (section 4).
type Stmt interface{ stmt() }

// ValDecl is `val \x = e;`: evaluate e and keep the complex object.
type ValDecl struct {
	Name string
	E    Expr
}

// MacroDecl is `macro \m = e;`: keep the query for substitution into later
// queries.
type MacroDecl struct {
	Name string
	E    Expr
}

// ReadVal is `readval \x using READER at e;` (section 4.1).
type ReadVal struct {
	Name   string
	Reader string
	At     Expr
}

// WriteVal is `writeval e using WRITER at e';`.
type WriteVal struct {
	E      Expr
	Writer string
	At     Expr
}

// ExprStmt is a bare query `e;`.
type ExprStmt struct{ E Expr }

func (*ValDecl) stmt()   {}
func (*MacroDecl) stmt() {}
func (*ReadVal) stmt()   {}
func (*WriteVal) stmt()  {}
func (*ExprStmt) stmt()  {}
