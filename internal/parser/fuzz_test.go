package parser

import "testing"

// FuzzParseExpr asserts the parser never panics, and that anything it
// accepts survives the print → parse → print fixpoint.
func FuzzParseExpr(f *testing.F) {
	seeds := []string{
		`{d | \d <- gen!30, d % 7 = 0}`,
		`{d | [(\h,_,_):\t] <- T, \d == h/24+1, t > 85.0}`,
		`fn (\m,\d,\y) => d + summap(fn \i => months[i])!(gen!m)`,
		`[[ A[i+k] | \k < (j+1)-i ]]`,
		`let val \x = 1 in x end`,
		`[[2, 2; 1, 2, 3, 4]]`,
		`{| x | \x <- B |}`,
		`A[B[i]]`,
		`-2.5 + -x`,
		`(* comment *) 1`,
		`_|_`,
		"\\", "{", "[[", "]]", "!!", "f!!", "1e", "\"", "{|", "%",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		out := Print(e)
		e2, err := ParseExpr(out)
		if err != nil {
			t.Fatalf("accepted %q but printed form %q does not re-parse: %v", src, out, err)
		}
		if out2 := Print(e2); out != out2 {
			t.Fatalf("print not a fixpoint for %q:\n 1: %s\n 2: %s", src, out, out2)
		}
	})
}

// FuzzParseProgram asserts the statement parser never panics.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		`val \x = 1; macro \m = fn \y => y; x;`,
		`readval \T using NETCDF3 at ("f", "v", (0,0,0), (1,1,1));`,
		`writeval x using W at "p";`,
		`val`, `;;;`, `macro = 1;`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseProgram(src)
	})
}
