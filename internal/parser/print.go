package parser

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a surface expression back into concrete AQL syntax. The
// output re-parses to the same expression (up to source positions):
// Print(ParseExpr(Print(e))) == Print(e). The REPL uses it to echo macro
// definitions.
func Print(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0)
	return b.String()
}

// PrintPat renders a pattern.
func PrintPat(p Pat) string {
	var b strings.Builder
	writePat(&b, p)
	return b.String()
}

// Precedence levels, mirroring the parser:
//
//	0 or | 1 and | 2 not | 3 cmp/mem | 4 add | 5 mul | 6 app | 7 postfix | 8 atom
const (
	precOr = iota
	precAnd
	precNot
	precCmp
	precAdd
	precMul
	precApp
	precPostfix
	precAtom
)

func binPrec(op string) int {
	switch op {
	case "or":
		return precOr
	case "and":
		return precAnd
	case "=", "<>", "<", ">", "<=", ">=", "mem":
		return precCmp
	case "+", "-", "union", "uplus":
		return precAdd
	case "*", "/", "%":
		return precMul
	}
	return precAtom
}

// writeExpr renders e, parenthesizing when its precedence is below the
// context's.
func writeExpr(b *strings.Builder, e Expr, ctx int) {
	switch n := e.(type) {
	case *Ident:
		b.WriteString(n.Name)
	case *NatLit:
		fmt.Fprintf(b, "%d", n.Val)
	case *RealLit:
		s := strconv.FormatFloat(n.Val, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		if n.Val < 0 {
			// Negative literals only arise programmatically; render via neg.
			b.WriteString("(-" + strconv.FormatFloat(-n.Val, 'g', -1, 64))
			if !strings.ContainsAny(s, "eE") && !strings.Contains(s[1:], ".") {
				b.WriteString(".0")
			}
			b.WriteString(")")
			return
		}
		b.WriteString(s)
	case *StringLit:
		fmt.Fprintf(b, "%q", n.Val)
	case *BoolLit:
		if n.Val {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case *BottomLit:
		b.WriteString("_|_")
	case *TupleE:
		b.WriteString("(")
		for i, x := range n.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, x, 0)
		}
		b.WriteString(")")
	case *SetE:
		writeCollection(b, "{", "}", n.Elems)
	case *BagE:
		writeCollection(b, "{|", "|}", n.Elems)
	case *ArrayE:
		b.WriteString("[[")
		if n.Dims != nil {
			for i, d := range n.Dims {
				if i > 0 {
					b.WriteString(", ")
				}
				writeExpr(b, d, 0)
			}
			b.WriteString("; ")
		}
		for i, x := range n.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, x, 0)
		}
		b.WriteString("]]")
	case *TabE:
		b.WriteString("[[ ")
		writeExpr(b, n.Head, 0)
		b.WriteString(" | ")
		for j := range n.Idx {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "\\%s < ", n.Idx[j])
			writeExpr(b, n.Bounds[j], 0)
		}
		b.WriteString(" ]]")
	case *Comp:
		open, close := "{", "}"
		if n.Bag {
			open, close = "{|", "|}"
		}
		b.WriteString(open)
		writeExpr(b, n.Head, 0)
		b.WriteString(" | ")
		for i, q := range n.Quals {
			if i > 0 {
				b.WriteString(", ")
			}
			writeQual(b, q)
		}
		b.WriteString(close)
	case *Fn:
		maybeParen(b, ctx, precAtom, func() {
			b.WriteString("fn ")
			writePat(b, n.Pat)
			b.WriteString(" => ")
			writeExpr(b, n.Body, 0)
		})
	case *Let:
		maybeParen(b, ctx, precAtom, func() {
			b.WriteString("let")
			for _, d := range n.Decls {
				b.WriteString(" val ")
				writePat(b, d.Pat)
				b.WriteString(" = ")
				writeExpr(b, d.E, 0)
			}
			b.WriteString(" in ")
			writeExpr(b, n.Body, 0)
			b.WriteString(" end")
		})
	case *IfE:
		maybeParen(b, ctx, precAtom, func() {
			b.WriteString("if ")
			writeExpr(b, n.Cond, 0)
			b.WriteString(" then ")
			writeExpr(b, n.Then, 0)
			b.WriteString(" else ")
			writeExpr(b, n.Else, 0)
		})
	case *Bin:
		p := binPrec(n.Op)
		maybeParen(b, ctx, p, func() {
			// Left operand at the operator's own level (left-assoc);
			// comparisons are non-associative, so bump both sides.
			lp, rp := p, p+1
			if p == precCmp {
				lp = p + 1
			}
			writeExpr(b, n.L, lp)
			fmt.Fprintf(b, " %s ", n.Op)
			writeExpr(b, n.R, rp)
		})
	case *Not:
		maybeParen(b, ctx, precNot, func() {
			b.WriteString("not ")
			writeExpr(b, n.E, precNot)
		})
	case *AppE:
		maybeParen(b, ctx, precApp, func() {
			writeExpr(b, n.Fn, precApp)
			b.WriteString("!")
			writeExpr(b, n.Arg, precPostfix)
		})
	case *SubE:
		maybeParen(b, ctx, precPostfix, func() {
			writeExpr(b, n.Arr, precPostfix)
			b.WriteString("[")
			for i, x := range n.Indices {
				if i > 0 {
					b.WriteString(", ")
				}
				// An index that itself starts with '[' would lex the
				// opening brackets as the array-literal token `[[`;
				// parenthesize to keep the subscript readable.
				var inner strings.Builder
				writeExpr(&inner, x, 0)
				s := inner.String()
				if strings.HasPrefix(s, "[") {
					b.WriteString("(" + s + ")")
				} else {
					b.WriteString(s)
				}
			}
			b.WriteString("]")
		})
	case *SumMap:
		maybeParen(b, ctx, precApp, func() {
			b.WriteString("summap(")
			writeExpr(b, n.F, 0)
			b.WriteString(")!")
			writeExpr(b, n.Over, precPostfix)
		})
	default:
		fmt.Fprintf(b, "<?%T?>", e)
	}
}

// maybeParen wraps the rendering in parentheses when the node's precedence
// is lower than the context requires. Greedy forms (fn/if/let) always wrap
// in a non-zero context since they extend maximally.
func maybeParen(b *strings.Builder, ctx, prec int, f func()) {
	need := prec < ctx || (prec == precAtom && ctx > 0)
	if need {
		b.WriteString("(")
	}
	f()
	if need {
		b.WriteString(")")
	}
}

func writeCollection(b *strings.Builder, open, close string, elems []Expr) {
	b.WriteString(open)
	for i, x := range elems {
		if i > 0 {
			b.WriteString(", ")
		}
		writeExpr(b, x, 0)
	}
	b.WriteString(close)
}

func writeQual(b *strings.Builder, q Qual) {
	switch n := q.(type) {
	case *GenQ:
		writePat(b, n.Pat)
		b.WriteString(" <- ")
		writeExpr(b, n.Src, 0)
	case *ArrGenQ:
		b.WriteString("[")
		writePat(b, n.IdxPat)
		b.WriteString(" : ")
		writePat(b, n.ValPat)
		b.WriteString("] <- ")
		writeExpr(b, n.Src, 0)
	case *BindQ:
		writePat(b, n.Pat)
		b.WriteString(" == ")
		writeExpr(b, n.E, 0)
	case *FilterQ:
		writeExpr(b, n.E, 0)
	default:
		fmt.Fprintf(b, "<?%T?>", q)
	}
}

func writePat(b *strings.Builder, p Pat) {
	switch n := p.(type) {
	case *PVar:
		b.WriteString("\\" + n.Name)
	case *PRef:
		b.WriteString(n.Name)
	case *PWild:
		b.WriteString("_")
	case *PConst:
		writeExpr(b, n.E, precAtom)
	case *PTuple:
		b.WriteString("(")
		for i, sub := range n.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			writePat(b, sub)
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "<?%T?>", p)
	}
}
