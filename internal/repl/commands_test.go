package repl

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/trace"
)

func TestIsCommand(t *testing.T) {
	for _, tc := range []struct {
		line string
		want bool
	}{
		{":explain gen!3", true},
		{"  :stats", true},
		{":help", true},
		{"gen!3;", false},
		{"", false},
		{"val \\x = 3;", false},
	} {
		if got := IsCommand(tc.line); got != tc.want {
			t.Errorf("IsCommand(%q) = %v, want %v", tc.line, got, tc.want)
		}
	}
}

func TestCommandExplain(t *testing.T) {
	s := newSession(t)
	out, err := s.Command(context.Background(), `:explain [[ i*i | \i < 10 ]][4]`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"type: nat", "core:", "optimized:", "beta-p"} {
		if !strings.Contains(out, want) {
			t.Errorf(":explain output missing %q:\n%s", want, out)
		}
	}
	// beta^p collapses the subscripted tabulation; the optimized query must
	// be smaller than the core one and mention no tabulation.
	if !strings.Contains(out, "rule firings") {
		t.Errorf(":explain missing firing table:\n%s", out)
	}
}

func TestCommandExplainNoRules(t *testing.T) {
	s := newSession(t)
	out, err := s.Command(context.Background(), ":explain 7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no optimizer rules fired") {
		t.Errorf("trivial query should fire no rules:\n%s", out)
	}
}

func TestCommandProfile(t *testing.T) {
	s := newSession(t)
	out, err := s.Command(context.Background(), `:profile summap(fn \i => i)!(gen!100)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"profile of", "wall total", "eval", "steps", "cells"} {
		if !strings.Contains(out, want) {
			t.Errorf(":profile output missing %q:\n%s", want, out)
		}
	}
	// The profiled query still binds `it`.
	v, _, err := s.Query("it")
	if err != nil {
		t.Fatal(err)
	}
	if v.N != 4950 {
		t.Errorf("it = %s after :profile, want 4950", v)
	}
}

func TestCommandProfileFailingQuery(t *testing.T) {
	s := newSession(t)
	s.Limits.MaxSteps = 10
	out, err := s.Command(context.Background(), `:profile summap(fn \i => i)!(gen!10000)`)
	if err != nil {
		t.Fatalf(":profile of failing query should render, got error %v", err)
	}
	if !strings.Contains(out, "error:") {
		t.Errorf("profile of failing query must show the error:\n%s", out)
	}
}

func TestCommandStats(t *testing.T) {
	s := newSession(t)
	if _, _, err := s.Query("gen!5"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query("1+1"); err != nil {
		t.Fatal(err)
	}
	out, err := s.Command(context.Background(), ":stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 queries") {
		t.Errorf(":stats should report 2 queries:\n%s", out)
	}
	if !strings.Contains(out, "steps") {
		t.Errorf(":stats missing counters:\n%s", out)
	}
}

func TestCommandHelpAndErrors(t *testing.T) {
	s := newSession(t)
	out, err := s.Command(context.Background(), ":help")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{":explain", ":profile", ":stats"} {
		if !strings.Contains(out, want) {
			t.Errorf(":help missing %q", want)
		}
	}
	if _, err := s.Command(context.Background(), ":bogus"); err == nil {
		t.Error("unknown command should error")
	}
	if _, err := s.Command(context.Background(), ":explain"); err == nil {
		t.Error(":explain without a query should error")
	}
	if _, err := s.Command(context.Background(), ":profile"); err == nil {
		t.Error(":profile without a query should error")
	}
}

func TestProfileReportsNetCDFIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "io.nc")
	b := netcdf.NewBuilder()
	d0, _ := b.AddDim("x", 8)
	data := make([]float64, 8)
	for i := range data {
		data[i] = float64(i)
	}
	if err := b.AddVar("v", netcdf.Double, []int{d0}, nil, data); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	s := newSession(t)
	src := fmt.Sprintf(`readval \V using NETCDF at (%q, "v");`, path)
	if _, err := s.Exec(src); err != nil {
		t.Fatal(err)
	}
	rep := s.Trace.Last()
	if rep == nil {
		t.Fatal("no report for readval")
	}
	if !strings.HasPrefix(rep.Query, "readval V using NETCDF") {
		t.Errorf("report label = %q", rep.Query)
	}
	// Reads are lazy: the readval binds a tiled array without touching the
	// data region; the I/O lands on the query that scans it.
	if _, _, err := s.Query(`[[ V[i] | \i < 8 ]]`); err != nil {
		t.Fatal(err)
	}
	rep = s.Trace.Last()
	if rep.IO.SlabReads != 1 {
		t.Errorf("SlabReads = %d, want 1", rep.IO.SlabReads)
	}
	if rep.IO.BytesRead != 8*8 {
		t.Errorf("BytesRead = %d, want 64", rep.IO.BytesRead)
	}
	if rep.IO.TileMisses == 0 {
		t.Errorf("TileMisses = 0, want > 0 after a lazy scan")
	}
	if rep.IO.BytesScanned == 0 || rep.IO.BytesReturned == 0 {
		t.Errorf("bytes scanned/returned = %d/%d, want non-zero", rep.IO.BytesScanned, rep.IO.BytesReturned)
	}
	// :stats shows the I/O block once any I/O happened.
	out, err := s.Command(context.Background(), ":stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "slab reads") {
		t.Errorf(":stats missing I/O counters after readval:\n%s", out)
	}
}

func TestEvalCounterAccuracy(t *testing.T) {
	s := newSession(t)
	// A 6-element tabulation: exactly one tabulation, exactly 6 cells.
	if _, _, err := s.Query(`[[ i | \i < 6 ]]`); err != nil {
		t.Fatal(err)
	}
	rep := s.Trace.Last()
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.Eval.Tabulations != 1 {
		t.Errorf("Tabulations = %d, want 1", rep.Eval.Tabulations)
	}
	if rep.Eval.Cells != 6 {
		t.Errorf("Cells = %d, want 6", rep.Eval.Cells)
	}
	if rep.Eval.Steps != s.LastSteps {
		t.Errorf("report steps %d != LastSteps %d", rep.Eval.Steps, s.LastSteps)
	}

	// gen! is one set operation producing n cells.
	if _, _, err := s.Query(`gen!4`); err != nil {
		t.Fatal(err)
	}
	rep = s.Trace.Last()
	if rep.Eval.SetOps == 0 {
		t.Errorf("gen recorded no set ops: %+v", rep.Eval)
	}
	if rep.Eval.Cells != 4 {
		t.Errorf("gen!4 Cells = %d, want 4", rep.Eval.Cells)
	}

	// Summation over a 10-element set iterates 10 times.
	if _, _, err := s.Query(`summap(fn \i => i)!(gen!10)`); err != nil {
		t.Fatal(err)
	}
	rep = s.Trace.Last()
	if rep.Eval.Iterations < 10 {
		t.Errorf("summap over 10 elements iterated %d times", rep.Eval.Iterations)
	}
}

func TestTraceDisabledSessionStillWorks(t *testing.T) {
	s := newSession(t)
	s.Trace.SetEnabled(false)
	v, _, err := s.Query("1+2")
	if err != nil {
		t.Fatal(err)
	}
	if v.N != 3 {
		t.Fatalf("1+2 = %s", v)
	}
	if s.Trace.Last() != nil {
		t.Error("disabled trace produced a report")
	}
	out, err := s.Command(context.Background(), `:profile 1+2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tracing disabled") {
		t.Errorf(":profile with tracing off = %q", out)
	}
}

func TestSetupStatementsExcludedFromStats(t *testing.T) {
	s := newSession(t)
	if got := s.Trace.Totals().Queries; got != 0 {
		t.Errorf("fresh session already counts %d queries (setup leaked into stats)", got)
	}
}

func TestQueryReportPhases(t *testing.T) {
	s := newSession(t)
	if _, _, err := s.Query(`[[ i+1 | \i < 3 ]]`); err != nil {
		t.Fatal(err)
	}
	rep := s.Trace.Last()
	for _, phase := range []string{trace.PhaseParse, trace.PhaseDesugar, trace.PhaseMacro, trace.PhaseTypecheck, trace.PhaseOptimize, trace.PhaseEval} {
		found := false
		for _, p := range rep.Phases {
			if p.Name == phase {
				found = true
			}
		}
		if !found {
			t.Errorf("report missing phase %q (has %+v)", phase, rep.Phases)
		}
	}
}
