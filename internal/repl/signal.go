package repl

import (
	"context"
	"os"
	"os/signal"
	"sync"
)

// NotifyInterrupt returns a child of parent that is cancelled by the next
// SIGINT, and a stop function that releases the signal handler. The REPL
// wraps each statement in one so Ctrl-C cancels the running query — the
// evaluator notices the cancellation at its amortized check and returns a
// *eval.ResourceError — instead of killing the process. While no query is
// running the handler is not installed, so Ctrl-C at the prompt keeps its
// usual meaning.
func NotifyInterrupt(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	done := make(chan struct{})
	go func() {
		select {
		case <-ch:
			cancel()
		case <-done:
		}
		signal.Stop(ch)
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() { close(done) })
		cancel()
	}
	return ctx, stop
}
