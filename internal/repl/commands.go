package repl

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/aqldb/aql/internal/cost"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/scan"
	"github.com/aqldb/aql/internal/trace"
	"github.com/aqldb/aql/internal/types"
)

// writeChromeTraceFile exports one report as Chrome trace-event JSON.
func writeChromeTraceFile(path string, rep *trace.QueryReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// IsCommand reports whether an input line is a session colon-command
// (":explain", ":profile", ":stats", ":help") rather than an AQL statement.
func IsCommand(line string) bool {
	return strings.HasPrefix(strings.TrimSpace(line), ":")
}

// command is one colon-command: its usage line and summary feed :help, so
// a command registered here can never be missing from the help text.
type command struct {
	usage   string // e.g. ":explain <query>", aligned into the help column
	summary string
	run     func(s *Session, ctx context.Context, arg string) (string, error)
}

// commands is the session command table, keyed by the colon-name. Commands
// that take a query accept it with or without a trailing semicolon.
var commands = map[string]command{
	":explain": {
		usage:   ":explain [analyze] <query>",
		summary: "show the optimized query; analyze: run it and join est/act",
		run: func(s *Session, ctx context.Context, arg string) (string, error) {
			if arg == "" || arg == "analyze" {
				return "", fmt.Errorf("usage: :explain [analyze] <query>")
			}
			if strings.HasPrefix(arg, "analyze ") {
				return s.ExplainAnalyze(ctx, strings.TrimSpace(strings.TrimPrefix(arg, "analyze ")))
			}
			return s.Explain(arg)
		},
	},
	":profile": {
		usage:   ":profile <query>",
		summary: "run the query; show phase times and work counters",
		run: func(s *Session, ctx context.Context, arg string) (string, error) {
			if arg == "" {
				return "", fmt.Errorf("usage: :profile <query>")
			}
			return s.Profile(ctx, arg)
		},
	},
	":stats": {
		usage:   ":stats",
		summary: "session-cumulative totals",
		run: func(s *Session, _ context.Context, _ string) (string, error) {
			return s.Trace.Totals().FormatTotals(), nil
		},
	},
	":io": {
		usage:   ":io [lazy on|off | tile <cells> <budget-bytes>]",
		summary: "out-of-core state: tile cache, open files; tune lazy reads",
		run: func(s *Session, _ context.Context, arg string) (string, error) {
			fields := strings.Fields(arg)
			switch {
			case len(fields) == 0:
				return s.IOStatus(), nil
			case fields[0] == "lazy" && len(fields) == 2 && (fields[1] == "on" || fields[1] == "off"):
				s.SetLazyReads(fields[1] == "on")
				return fmt.Sprintf("lazy reads: %v\n", s.LazyReads()), nil
			case fields[0] == "tile" && len(fields) == 3:
				var cells int
				var budget int64
				if _, err := fmt.Sscanf(fields[1], "%d", &cells); err != nil || cells <= 0 {
					return "", fmt.Errorf(":io tile: bad cell count %q", fields[1])
				}
				if _, err := fmt.Sscanf(fields[2], "%d", &budget); err != nil || budget <= 0 {
					return "", fmt.Errorf(":io tile: bad budget %q", fields[2])
				}
				s.SetTileConfig(cells, budget, false)
				return s.IOStatus(), nil
			}
			return "", fmt.Errorf("usage: :io [lazy on|off | tile <cells> <budget-bytes>]")
		},
	},
	":top": {
		usage:   ":top [n]",
		summary: "hottest operators of the last query (needs :prof on)",
		run: func(s *Session, _ context.Context, arg string) (string, error) {
			n := 0
			if arg != "" {
				if _, err := fmt.Sscanf(arg, "%d", &n); err != nil {
					return "", fmt.Errorf("usage: :top [n]")
				}
			}
			rep := s.Trace.Last()
			if rep == nil {
				return "no query recorded yet\n", nil
			}
			return rep.FormatTop(n), nil
		},
	},
	":fleet": {
		usage:   ":fleet",
		summary: "cross-query aggregates: histogram, rules, slow queries",
		run: func(s *Session, _ context.Context, _ string) (string, error) {
			if s.Fleet == nil {
				return "no fleet aggregator attached\n", nil
			}
			return s.Fleet.Snapshot().FormatFleet(), nil
		},
	},
	":prof": {
		usage:   ":prof [level]",
		summary: "show or set the profiling level (off, sampled, full)",
		run: func(s *Session, _ context.Context, arg string) (string, error) {
			if arg != "" {
				if err := s.SetProfiling(arg); err != nil {
					return "", err
				}
			}
			return fmt.Sprintf("profiling: %s\n", s.Profiling), nil
		},
	},
	":trace": {
		usage:   ":trace [file]",
		summary: "export the last query as Chrome trace-event JSON",
		run: func(s *Session, _ context.Context, arg string) (string, error) {
			rep := s.Trace.Last()
			if rep == nil {
				return "no query recorded yet\n", nil
			}
			file := arg
			if file == "" {
				file = "aql-trace.json"
			}
			if err := writeChromeTraceFile(file, rep); err != nil {
				return "", err
			}
			return fmt.Sprintf("wrote %s (load in chrome://tracing or Perfetto)\n", file), nil
		},
	},
	":prepare": {
		usage:   ":prepare [query]",
		summary: "prepare a parameterized query ($name placeholders) for :exec",
		run: func(s *Session, _ context.Context, arg string) (string, error) {
			if arg == "" {
				if s.prepared == nil {
					return "no prepared statement (use :prepare <query>)\n", nil
				}
				return formatPrepared(s.prepared), nil
			}
			p, err := s.Prepare(arg)
			if err != nil {
				return "", err
			}
			s.prepared = p
			return formatPrepared(p), nil
		},
	},
	":exec": {
		usage:   ":exec [name=value, ...]",
		summary: "run the prepared statement with scalar arguments",
		run: func(s *Session, ctx context.Context, arg string) (string, error) {
			if s.prepared == nil {
				return "", fmt.Errorf("no prepared statement (use :prepare <query>)")
			}
			args, err := parseExecArgs(arg)
			if err != nil {
				return "", err
			}
			v, err := s.prepared.Exec(ctx, args)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("val it = %s : %s\n", v, s.prepared.Type), nil
		},
	},
	":engine": {
		usage:   ":engine [name]",
		summary: "show or switch the execution engine (interp, compiled)",
		run: func(s *Session, _ context.Context, arg string) (string, error) {
			if arg != "" {
				if err := s.SetEngine(arg); err != nil {
					return "", err
				}
			}
			return fmt.Sprintf("engine: %s\n", s.Engine), nil
		},
	},
}

// :help renders the table it lives in; registering it in init breaks the
// initialization cycle between the table and helpText.
func init() {
	commands[":help"] = command{
		usage:   ":help",
		summary: "this help",
		run: func(*Session, context.Context, string) (string, error) {
			return helpText(), nil
		},
	}
}

// CommandNames returns the registered colon-command names, sorted.
func CommandNames() []string {
	names := make([]string, 0, len(commands))
	for name := range commands {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// helpText renders the command table, usage column aligned; generated from
// the table so every registered command appears.
func helpText() string {
	width := 0
	for _, c := range commands {
		if len(c.usage) > width {
			width = len(c.usage)
		}
	}
	var b strings.Builder
	b.WriteString("commands:\n")
	for _, name := range CommandNames() {
		c := commands[name]
		fmt.Fprintf(&b, "  %-*s  %s\n", width, c.usage, c.summary)
	}
	return b.String()
}

// Command executes a colon-command and returns its rendered output. The
// supported commands are the observability surface of the session; see the
// command table (or :help) for the list.
func (s *Session) Command(ctx context.Context, line string) (string, error) {
	line = strings.TrimSpace(line)
	name, arg, _ := strings.Cut(line, " ")
	arg = strings.TrimSuffix(strings.TrimSpace(arg), ";")
	c, ok := commands[name]
	if !ok {
		return "", fmt.Errorf("unknown command %s (try :help)", name)
	}
	return c.run(s, ctx, arg)
}

// formatPrepared renders a prepared statement's template, type and
// placeholder types for the loop.
func formatPrepared(p *Prepared) string {
	var b strings.Builder
	fmt.Fprintf(&b, "prepared: %s\n", p.Text)
	fmt.Fprintf(&b, "type: %s\n", p.Type)
	for _, name := range p.ParamNames() {
		fmt.Fprintf(&b, "  $%s : %s\n", name, p.Params[name])
	}
	return b.String()
}

// parseExecArgs parses :exec's argument list — `name=value` pairs separated
// by commas, where value is a scalar literal (natural, real, string, true,
// false; reals may be negated). The name may be written bare or with its $
// sigil. Structured arguments go through the host API or the server, which
// accept full exchange-format values.
func parseExecArgs(src string) (map[string]object.Value, error) {
	args := map[string]object.Value{}
	if strings.TrimSpace(src) == "" {
		return args, nil
	}
	toks, err := scan.Scan(src)
	if err != nil {
		return nil, err
	}
	i := 0
	for {
		name := ""
		switch toks[i].Kind {
		case scan.IDENT, scan.PARAM:
			name = toks[i].Text
		default:
			return nil, fmt.Errorf(":exec: expected argument name, got %s", toks[i].Kind)
		}
		i++
		if toks[i].Kind != scan.EQ {
			return nil, fmt.Errorf(":exec: expected = after %s", name)
		}
		i++
		neg := false
		if toks[i].Kind == scan.MINUS {
			neg = true
			i++
		}
		var v object.Value
		switch t := toks[i]; t.Kind {
		case scan.NAT:
			if neg {
				return nil, fmt.Errorf(":exec: %s: naturals are non-negative (use a real: -%d.0)", name, t.Nat)
			}
			v = object.Nat(t.Nat)
		case scan.REAL:
			r := t.Real
			if neg {
				r = -r
			}
			v = object.Real(r)
		case scan.STRING:
			if neg {
				return nil, fmt.Errorf(":exec: %s: cannot negate a string", name)
			}
			v = object.String_(t.Text)
		case scan.KEYWORD:
			if neg || (t.Text != "true" && t.Text != "false") {
				return nil, fmt.Errorf(":exec: %s: expected a scalar literal, got %q", name, t.Text)
			}
			v = object.Bool(t.Text == "true")
		default:
			return nil, fmt.Errorf(":exec: %s: expected a scalar literal, got %s", name, t.Kind)
		}
		if _, dup := args[name]; dup {
			return nil, fmt.Errorf(":exec: duplicate argument %s", name)
		}
		args[name] = v
		i++
		if toks[i].Kind == scan.EOF {
			return args, nil
		}
		if toks[i].Kind != scan.COMMA {
			return nil, fmt.Errorf(":exec: expected , or end of arguments, got %s", toks[i].Kind)
		}
		i++
	}
}

// Explain compiles and optimizes src without evaluating it, and renders
// the optimized core query, its type, and the optimizer rule-firing trace.
// The compile-only run is recorded like any query (it appears in :stats
// with zero evaluator work).
func (s *Session) Explain(src string) (string, error) {
	s.Trace.Begin(":explain " + src)
	core, typ, err := s.Compile(src)
	if err != nil {
		s.Trace.End(err)
		return "", err
	}
	opt := s.Optimize(core)
	rep := s.Trace.End(nil)

	var b strings.Builder
	fmt.Fprintf(&b, "type: %s\n", typ)
	fmt.Fprintf(&b, "core:      %s\n", core)
	fmt.Fprintf(&b, "optimized: %s\n", opt)
	if rep != nil {
		b.WriteString(rep.FormatRules())
	} else if s.SkipOptimizer {
		b.WriteString("optimizer disabled\n")
	}
	return b.String(), nil
}

// ExplainAnalyze runs src at full span profiling, joins the prepare-time
// cost/cardinality estimates against the recorded per-operator actuals,
// and renders the annotated tree: est/act columns, q-errors, and flags on
// misestimates above the session's threshold.
func (s *Session) ExplainAnalyze(ctx context.Context, src string) (string, error) {
	table, typ, v, err := s.ExplainAnalyzeTable(ctx, src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "type: %s\n", typ)
	fmt.Fprintf(&b, "result: %s\n", v.Pretty(8))
	b.WriteString(table.Format())
	return b.String(), nil
}

// ExplainAnalyzeTable is ExplainAnalyze's data form: compile and optimize
// src, estimate every operator's cardinality and cost (internal/cost),
// evaluate at eval.ProfFull regardless of the session's profiling level
// (the per-operator join needs exact attribution), and join estimates with
// the recorded span tree. The run is recorded like any query, with the
// joined table riding the report into the flight recorder and sinks.
func (s *Session) ExplainAnalyzeTable(ctx context.Context, src string) (*trace.ExplainTable, *types.Type, object.Value, error) {
	s.Trace.Begin(":explain analyze " + src)
	core, typ, err := s.Compile(src)
	if err != nil {
		s.Trace.End(err)
		return nil, nil, object.Value{}, err
	}
	opt := s.Optimize(core)
	est := cost.Estimate(opt, s.Env.Globals())
	saved := s.Profiling
	s.Profiling = eval.ProfFull
	v, err := s.evalGuarded(ctx, opt, src)
	s.Profiling = saved
	s.Trace.JoinExplain(est, s.QErrorThreshold)
	rep := s.Trace.End(err)
	if err != nil {
		return nil, nil, object.Value{}, err
	}
	if rep == nil || rep.Explain == nil {
		// Tracing disabled: no report to join against; join the estimate
		// tree with nothing recorded so the caller still sees estimates.
		return nil, nil, object.Value{}, fmt.Errorf(":explain analyze requires tracing (enable with Trace.SetEnabled(true))")
	}
	return rep.Explain, typ, v, nil
}

// Profile runs the full pipeline on src and renders the finished report's
// phase table. The query's effects (binding `it`) happen as usual.
func (s *Session) Profile(ctx context.Context, src string) (string, error) {
	_, _, err := s.QueryCtx(ctx, src)
	rep := s.Trace.Last()
	if rep == nil {
		if err != nil {
			return "", err
		}
		return "tracing disabled; enable with Trace.SetEnabled(true)\n", nil
	}
	// The error, if any, is part of the report; render it rather than
	// failing so a profile of a failing query still shows where time went.
	return rep.FormatProfile(), nil
}
