package repl

import (
	"context"
	"fmt"
	"strings"
)

// IsCommand reports whether an input line is a session colon-command
// (":explain", ":profile", ":stats", ":help") rather than an AQL statement.
func IsCommand(line string) bool {
	return strings.HasPrefix(strings.TrimSpace(line), ":")
}

// Command executes a colon-command and returns its rendered output. The
// supported commands are the observability surface of the session:
//
//	:explain <query>   compile and optimize only; show the optimized core
//	                   query, its type, and the optimizer rule trace
//	:profile <query>   run the query and show per-phase wall times and
//	                   evaluator/I/O counters
//	:stats             session-cumulative totals since startup
//	:top [n]           hottest operators of the last query's span tree
//	:fleet             cross-query aggregates (histogram, rules, slow log)
//	:prof [level]      show or set the profiling level (off/sampled/full)
//	:engine [name]     show or switch the execution engine
//	:help              list commands
//
// Commands that take a query accept it with or without a trailing
// semicolon.
func (s *Session) Command(ctx context.Context, line string) (string, error) {
	line = strings.TrimSpace(line)
	name, arg, _ := strings.Cut(line, " ")
	arg = strings.TrimSuffix(strings.TrimSpace(arg), ";")
	switch name {
	case ":explain":
		if arg == "" {
			return "", fmt.Errorf("usage: :explain <query>")
		}
		return s.Explain(arg)
	case ":profile":
		if arg == "" {
			return "", fmt.Errorf("usage: :profile <query>")
		}
		return s.Profile(ctx, arg)
	case ":stats":
		return s.Trace.Totals().FormatTotals(), nil
	case ":top":
		n := 0
		if arg != "" {
			if _, err := fmt.Sscanf(arg, "%d", &n); err != nil {
				return "", fmt.Errorf("usage: :top [n]")
			}
		}
		rep := s.Trace.Last()
		if rep == nil {
			return "no query recorded yet\n", nil
		}
		return rep.FormatTop(n), nil
	case ":fleet":
		if s.Fleet == nil {
			return "no fleet aggregator attached\n", nil
		}
		return s.Fleet.Snapshot().FormatFleet(), nil
	case ":prof":
		if arg == "" {
			return fmt.Sprintf("profiling: %s\n", s.Profiling), nil
		}
		if err := s.SetProfiling(arg); err != nil {
			return "", err
		}
		return fmt.Sprintf("profiling: %s\n", s.Profiling), nil
	case ":engine":
		if arg == "" {
			return fmt.Sprintf("engine: %s\n", s.Engine), nil
		}
		if err := s.SetEngine(arg); err != nil {
			return "", err
		}
		return fmt.Sprintf("engine: %s\n", s.Engine), nil
	case ":help":
		return helpText, nil
	}
	return "", fmt.Errorf("unknown command %s (try :help)", name)
}

const helpText = `commands:
  :explain <query>   show the optimized query and the optimizer rule trace
  :profile <query>   run the query; show phase times and work counters
  :stats             session-cumulative totals
  :top [n]           hottest operators of the last query (needs :prof on)
  :fleet             cross-query aggregates: histogram, rules, slow queries
  :prof [level]      show or set the profiling level (off, sampled, full)
  :engine [name]     show or switch the execution engine (interp, compiled)
  :help              this help
`

// Explain compiles and optimizes src without evaluating it, and renders
// the optimized core query, its type, and the optimizer rule-firing trace.
// The compile-only run is recorded like any query (it appears in :stats
// with zero evaluator work).
func (s *Session) Explain(src string) (string, error) {
	s.Trace.Begin(":explain " + src)
	core, typ, err := s.Compile(src)
	if err != nil {
		s.Trace.End(err)
		return "", err
	}
	opt := s.Optimize(core)
	rep := s.Trace.End(nil)

	var b strings.Builder
	fmt.Fprintf(&b, "type: %s\n", typ)
	fmt.Fprintf(&b, "core:      %s\n", core)
	fmt.Fprintf(&b, "optimized: %s\n", opt)
	if rep != nil {
		b.WriteString(rep.FormatRules())
	} else if s.SkipOptimizer {
		b.WriteString("optimizer disabled\n")
	}
	return b.String(), nil
}

// Profile runs the full pipeline on src and renders the finished report's
// phase table. The query's effects (binding `it`) happen as usual.
func (s *Session) Profile(ctx context.Context, src string) (string, error) {
	_, _, err := s.QueryCtx(ctx, src)
	rep := s.Trace.Last()
	if rep == nil {
		if err != nil {
			return "", err
		}
		return "tracing disabled; enable with Trace.SetEnabled(true)\n", nil
	}
	// The error, if any, is part of the report; render it rather than
	// failing so a profile of a failing query still shows where time went.
	return rep.FormatProfile(), nil
}
