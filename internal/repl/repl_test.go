package repl

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/prim"
	"github.com/aqldb/aql/internal/types"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func query(t *testing.T, s *Session, src string) (object.Value, *types.Type) {
	t.Helper()
	v, typ, err := s.Query(src)
	if err != nil {
		t.Fatalf("Query(%q): %v", src, err)
	}
	return v, typ
}

func expectQuery(t *testing.T, s *Session, src string, want object.Value) {
	t.Helper()
	got, _ := query(t, s, src)
	if !object.Equal(got, want) {
		t.Errorf("%q = %s, want %s", src, got, want)
	}
}

func TestStandardMacros(t *testing.T) {
	s := newSession(t)
	s.Env.SetVal("A", object.NatVector(10, 20, 30, 40, 50), types.MustParse("[[nat]]"))
	M := object.MustArray([]int{2, 3}, []object.Value{
		object.Nat(1), object.Nat(2), object.Nat(3),
		object.Nat(4), object.Nat(5), object.Nat(6)})
	s.Env.SetVal("M", M, types.MustParse("[[nat]]_2"))

	expectQuery(t, s, "dom!A", object.Set(object.Nat(0), object.Nat(1), object.Nat(2), object.Nat(3), object.Nat(4)))
	expectQuery(t, s, "rng!A", object.Set(object.Nat(10), object.Nat(20), object.Nat(30), object.Nat(40), object.Nat(50)))
	expectQuery(t, s, "subseq!(A, 1, 3)", object.NatVector(20, 30, 40))
	expectQuery(t, s, "reverse!A", object.NatVector(50, 40, 30, 20, 10))
	expectQuery(t, s, "evenpos!A", object.NatVector(10, 30))
	expectQuery(t, s, "oddpos!A", object.NatVector(20, 40))
	expectQuery(t, s, "zip!(A, reverse!A)", object.Vector(
		object.Tuple(object.Nat(10), object.Nat(50)),
		object.Tuple(object.Nat(20), object.Nat(40)),
		object.Tuple(object.Nat(30), object.Nat(30)),
		object.Tuple(object.Nat(40), object.Nat(20)),
		object.Tuple(object.Nat(50), object.Nat(10))))
	expectQuery(t, s, "transpose!M", object.MustArray([]int{3, 2}, []object.Value{
		object.Nat(1), object.Nat(4),
		object.Nat(2), object.Nat(5),
		object.Nat(3), object.Nat(6)}))
	expectQuery(t, s, "proj_col!(M, 1)", object.NatVector(2, 5))
	expectQuery(t, s, "proj_row!(M, 1)", object.NatVector(4, 5, 6))
	expectQuery(t, s, "fst!(7, 8)", object.Nat(7))
	expectQuery(t, s, "snd!(7, 8)", object.Nat(8))
	expectQuery(t, s, "append!(subseq!(A,0,1), subseq!(A,3,4))", object.NatVector(10, 20, 40, 50))
	expectQuery(t, s, "filter!(fn \\x => x > 25, rng!A)",
		object.Set(object.Nat(30), object.Nat(40), object.Nat(50)))
	expectQuery(t, s, "forall_in!(fn \\x => x > 5, rng!A)", object.True)
	expectQuery(t, s, "exists_in!(fn \\x => x > 45, rng!A)", object.True)
	expectQuery(t, s, "exists_in!(fn \\x => x > 99, rng!A)", object.False)
}

func TestZip3MatchesPaper(t *testing.T) {
	s := newSession(t)
	s.Env.SetVal("T", object.RealVector(70, 71), types.MustParse("[[real]]"))
	s.Env.SetVal("RH", object.RealVector(50, 51), types.MustParse("[[real]]"))
	s.Env.SetVal("WS", object.RealVector(5, 6), types.MustParse("[[real]]"))
	want := object.Vector(
		object.Tuple(object.Real(70), object.Real(50), object.Real(5)),
		object.Tuple(object.Real(71), object.Real(51), object.Real(6)))
	expectQuery(t, s, "zip_3!(T, RH, WS)", want)
}

func TestExecValMacroIt(t *testing.T) {
	s := newSession(t)
	results, err := s.Exec(`
	  val \months = [[0,31,28,31,30,31,30,31,31,30,31,30]];
	  macro \double = fn \x => x * 2;
	  double!(months[1]);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Kind != "val" || results[0].Name != "months" {
		t.Errorf("result 0 = %+v", results[0])
	}
	if results[0].Type.String() != "[[nat]]" {
		t.Errorf("months type = %s", results[0].Type)
	}
	if results[1].Kind != "macro" || results[1].Type.String() != "nat -> nat" {
		t.Errorf("result 1 = %+v type %s", results[1], results[1].Type)
	}
	if !object.Equal(results[2].Value, object.Nat(62)) {
		t.Errorf("query = %s", results[2].Value)
	}
	// `it` is bound to the last query result.
	expectQuery(t, s, "it + 1", object.Nat(63))
}

func TestQueryTypeEchoes(t *testing.T) {
	s := newSession(t)
	_, typ := query(t, s, `{d | \d <- gen!3}`)
	if typ.String() != "{nat}" {
		t.Errorf("type = %s", typ)
	}
}

func TestExchangeRoundTrip(t *testing.T) {
	s := newSession(t)
	path := filepath.Join(t.TempDir(), "out.co")
	if _, err := s.Exec(fmt.Sprintf(`writeval {(1, "a"), (2, "b")} using EXCHANGE at %q;`, path)); err != nil {
		t.Fatal(err)
	}
	results, err := s.Exec(fmt.Sprintf(`readval \X using EXCHANGE at %q;`, path))
	if err != nil {
		t.Fatal(err)
	}
	want := object.Set(
		object.Tuple(object.Nat(1), object.String_("a")),
		object.Tuple(object.Nat(2), object.String_("b")))
	if !object.Equal(results[0].Value, want) {
		t.Errorf("read back %s", results[0].Value)
	}
	// The read value is typed and usable in queries.
	expectQuery(t, s, `{x | (\x, _) <- X}`, object.Set(object.Nat(1), object.Nat(2)))
}

func TestNetCDFReader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.nc")
	b := netcdf.NewBuilder()
	ti, _ := b.AddDim("time", 4)
	la, _ := b.AddDim("lat", 2)
	lo, _ := b.AddDim("lon", 2)
	data := make([]float64, 16)
	for i := range data {
		data[i] = float64(i)
	}
	if err := b.AddVar("temp", netcdf.Double, []int{ti, la, lo}, nil, data); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	s := newSession(t)
	src := fmt.Sprintf(`readval \T using NETCDF3 at (%q, "temp", (1,0,0), (2,1,1));`, path)
	results, err := s.Exec(src)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Type.String() != "[[real]]_3" {
		t.Errorf("T type = %s", results[0].Type)
	}
	got := results[0].Value
	if got.Shape[0] != 2 || got.Shape[1] != 2 || got.Shape[2] != 2 {
		t.Fatalf("shape = %v", got.Shape)
	}
	// T[0,0,0] should be the file's temp[1,0,0] = 4.
	expectQuery(t, s, "T[0,0,0]", object.Real(4))
	expectQuery(t, s, "T[1,1,1]", object.Real(11))
	// Whole-variable reader.
	if _, err := s.Exec(fmt.Sprintf(`readval \W using NETCDF at (%q, "temp");`, path)); err != nil {
		t.Fatal(err)
	}
	expectQuery(t, s, "dim_3!W", object.Tuple(object.Nat(4), object.Nat(2), object.Nat(2)))
}

func TestNetCDFReaderErrors(t *testing.T) {
	s := newSession(t)
	if _, err := s.Exec(`readval \T using NETCDF3 at ("/nonexistent.nc", "x", (0,0,0), (0,0,0));`); err == nil {
		t.Error("missing file should error")
	}
	if _, err := s.Exec(`readval \T using NOPE at "x";`); err == nil {
		t.Error("unregistered reader should error")
	}
}

// TestSection42Session reproduces the complete sample session of
// section 4.2 (experiment E5): register june_sunset, define the
// days_since_1_1 macro, read the June subslab of a year's hourly
// temperature file through NETCDF3, and run the final query. The synthetic
// temperature data places post-sunset heat on June 25, 27 and 28, so the
// result reproduces the paper's
//
//	val it = {25,27,28}
func TestSection42Session(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "temp.nc")
	writeYearTempFile(t, path, []int{25, 27, 28})

	s := newSession(t)

	// The SML-side registration of june_sunset (lat, lon, d). The paper's
	// query compares it against the hour index within the June array, so
	// the primitive returns sunset in month-hours: (d-1)*24 + sunset hour.
	err := s.Env.RegisterPrimitive("june_sunset",
		func(v object.Value) (object.Value, error) {
			lat, _ := v.Elems[0].AsReal()
			lon, _ := v.Elems[1].AsReal()
			d, _ := v.Elems[2].AsNat()
			h := prim.Sunset(lat, lon, 6, int(d), 1995)
			return object.Nat((d-1)*24 + int64(h)), nil
		},
		types.MustParse("(real * real * nat) -> nat"))
	if err != nil {
		t.Fatal(err)
	}

	// The session's declarations, verbatim up to the lat/lon index macros
	// (our synthetic grid has a single cell at NYC).
	session := fmt.Sprintf(`
	  val \months = [[0,31,28,31,30,31,30,31,31,30,31,30]];
	  macro \days_since_1_1 = fn (\m,\d,\y) =>
	    d + summap(fn \i => months[i])!(gen!m) +
	    if m > 2 and y %% 4 = 0 then 1 else 0;
	  macro \lat_index = fn _ => 0;
	  macro \lon_index = fn _ => 0;
	  val \NYlat = 40.7;
	  val \NYlon = 74.0;
	  readval \T using NETCDF3 at
	    (%q, "temp",
	     (days_since_1_1!(6,1,95)*24,
	      lat_index!(NYlat), lon_index!(NYlon)),
	     (days_since_1_1!(6,30,95)*24 + 23,
	      lat_index!(NYlat), lon_index!(NYlon)));
	  {d | [(\h,_,_):\t] <- T, \d == h/24+1,
	       h > june_sunset!(NYlat, NYlon, d), t > 85.0};
	`, path)
	results, err := s.Exec(session)
	if err != nil {
		t.Fatal(err)
	}

	// typ days_since_1_1 : nat * nat * nat -> nat, as the paper echoes.
	if got := results[1].Type.String(); got != "(nat * nat * nat) -> nat" {
		t.Errorf("days_since_1_1 type = %s", got)
	}
	// typ T : [[real]]_3
	if got := results[6].Type.String(); got != "[[real]]_3" {
		t.Errorf("T type = %s", got)
	}
	// val it = {25,27,28}
	final := results[len(results)-1]
	want := object.Set(object.Nat(25), object.Nat(27), object.Nat(28))
	if !object.Equal(final.Value, want) {
		t.Errorf("it = %s, want %s", final.Value, want)
	}
	if final.Type.String() != "{nat}" {
		t.Errorf("it type = %s", final.Type)
	}
}

// writeYearTempFile writes a year's worth of hourly temperatures over a
// 1x1 grid, hot after sunset only on the given June days.
func writeYearTempFile(t *testing.T, path string, hotJuneDays []int) {
	t.Helper()
	hot := map[int]bool{}
	for _, d := range hotJuneDays {
		hot[d] = true
	}
	const hoursPerYear = 365 * 24
	// Aligned with the session's days_since_1_1 indexing, which maps
	// June 1 1995 to day 152 (it adds the 1-based day of month).
	juneStart := 152 * 24
	data := make([]float64, hoursPerYear)
	for h := range data {
		data[h] = 60 // a mild default
		if h >= juneStart && h < juneStart+30*24 {
			juneHour := h - juneStart
			d := juneHour/24 + 1
			hourOfDay := juneHour % 24
			switch {
			case hot[d] && hourOfDay >= 21:
				data[h] = 88 // hot after sunset
			case hourOfDay >= 12 && hourOfDay <= 16:
				data[h] = 84 // warm afternoons everywhere, below threshold
			default:
				data[h] = 72
			}
		}
	}
	b := netcdf.NewBuilder()
	ti, err := b.AddDim("time", hoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := b.AddDim("lat", 1)
	lo, _ := b.AddDim("lon", 1)
	if err := b.AddVar("temp", netcdf.Double, []int{ti, la, lo}, nil, data); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestSkipOptimizer(t *testing.T) {
	s := newSession(t)
	s.SkipOptimizer = true
	expectQuery(t, s, "subseq!([[1,2,3,4]], 1, 2)", object.NatVector(2, 3))
}

func TestQueryErrors(t *testing.T) {
	s := newSession(t)
	if _, _, err := s.Query("1 +"); err == nil {
		t.Error("parse error expected")
	}
	if _, _, err := s.Query("1 + true"); err == nil {
		t.Error("type error expected")
	}
	if _, _, err := s.Query("undefined_name"); err == nil || !strings.Contains(err.Error(), "unknown identifier") {
		t.Errorf("unknown identifier expected, got %v", err)
	}
}

// The hour index in the June array must line up with days_since_1_1: a
// sanity check on the session's index arithmetic.
func TestDaysSinceMacroValue(t *testing.T) {
	s := newSession(t)
	if _, err := s.Exec(`
	  val \months = [[0,31,28,31,30,31,30,31,31,30,31,30]];
	  macro \days_since_1_1 = fn (\m,\d,\y) =>
	    d + summap(fn \i => months[i])!(gen!m) +
	    if m > 2 and y % 4 = 0 then 1 else 0;
	`); err != nil {
		t.Fatal(err)
	}
	// June 1 1995: 31+28+31+30+31 + 1 = 152 (the macro counts from 1).
	expectQuery(t, s, "days_since_1_1!(6, 1, 95)", object.Nat(152))
	// Leap year 1996 adds one.
	expectQuery(t, s, "days_since_1_1!(6, 1, 96)", object.Nat(153))
}

func TestNetCDFWriterRoundTrip(t *testing.T) {
	s := newSession(t)
	path := filepath.Join(t.TempDir(), "out.nc")
	src := fmt.Sprintf(`writeval [[ real!(i * 10 + j) | \i < 3, \j < 4 ]]
	                     using NETCDF at (%q, "grid");`, path)
	if _, err := s.Exec(src); err != nil {
		t.Fatal(err)
	}
	results, err := s.Exec(fmt.Sprintf(`readval \G using NETCDF2 at (%q, "grid", (0,0), (2,3));`, path))
	if err != nil {
		t.Fatal(err)
	}
	G := results[0].Value
	if G.Shape[0] != 3 || G.Shape[1] != 4 {
		t.Fatalf("shape = %v", G.Shape)
	}
	expectQuery(t, s, "G[2, 3]", object.Real(23))
	expectQuery(t, s, "G[0, 1]", object.Real(1))
}

func TestPrintWriter(t *testing.T) {
	s := newSession(t)
	var buf strings.Builder
	RegisterPrint(s.Env, &buf)
	if _, err := s.Exec(`writeval {1, 2, 3} using PRINT at "S";`); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "S = {1, 2, 3}\n" {
		t.Errorf("PRINT wrote %q", got)
	}
}

func TestUnaryMinus(t *testing.T) {
	s := newSession(t)
	expectQuery(t, s, `-2.5`, object.Real(-2.5))
	expectQuery(t, s, `-2.5 + 1.0`, object.Real(-1.5))
	expectQuery(t, s, `3.0 * -2.0`, object.Real(-6))
	expectQuery(t, s, `--2.5`, object.Real(2.5))
	// Unary minus is a real operation; naturals subtract by monus.
	if _, _, err := s.Query(`-2`); err == nil {
		t.Error("negating a nat should be a type error")
	}
}

// TestODMGSimulation exercises the section 7 claim that AQL simulates the
// ODMG-93 array operations (create, insert, update, subscript, resize).
func TestODMGSimulation(t *testing.T) {
	s := newSession(t)
	expectQuery(t, s, `odmg_create!(3, 7)`, object.NatVector(7, 7, 7))
	expectQuery(t, s, `odmg_subscript!([[5, 6, 7]], 1)`, object.Nat(6))
	expectQuery(t, s, `odmg_update!([[5, 6, 7]], 1, 99)`, object.NatVector(5, 99, 7))
	expectQuery(t, s, `odmg_insert!([[5, 6, 7]], 1, 99)`, object.NatVector(5, 99, 6, 7))
	expectQuery(t, s, `odmg_insert!([[5, 6, 7]], 0, 99)`, object.NatVector(99, 5, 6, 7))
	expectQuery(t, s, `odmg_insert!([[5, 6, 7]], 3, 99)`, object.NatVector(5, 6, 7, 99))
	expectQuery(t, s, `odmg_remove!([[5, 6, 7]], 1)`, object.NatVector(5, 7))
	expectQuery(t, s, `odmg_resize!([[5, 6]], 4, 0)`, object.NatVector(5, 6, 0, 0))
	expectQuery(t, s, `odmg_resize!([[5, 6, 7]], 2, 0)`, object.NatVector(5, 6))
	// Chained edits compose like a mutable array's history.
	expectQuery(t, s,
		`odmg_update!(odmg_insert!(odmg_create!(2, 0), 1, 5), 0, 9)`,
		object.NatVector(9, 5, 0))
	// Out-of-bounds subscript stays the error value.
	got, _ := query(t, s, `odmg_subscript!([[1]], 5)`)
	if !got.IsBottom() {
		t.Errorf("oob = %s", got)
	}
}

// TestPropWellTypedQueriesEvaluate is the pipeline soundness property: any
// random surface expression that typechecks must evaluate without a Go
// error (⊥ values are fine), optimized or not, and both evaluations agree.
func TestPropWellTypedQueriesEvaluate(t *testing.T) {
	s := newSession(t)
	s.Env.SetVal("A", object.NatVector(3, 1, 4, 1, 5), types.MustParse("[[nat]]"))
	s.Env.SetVal("S", object.Set(object.Nat(1), object.Nat(2), object.Nat(7)), types.MustParse("{nat}"))
	s.Env.SetVal("n", object.Nat(6), types.Nat)
	rng := rand.New(rand.NewSource(4242))
	accepted := 0
	for trial := 0; trial < 600; trial++ {
		src := randomQuery(rng, 3)
		core, _, err := s.Compile(src)
		if err != nil {
			continue // ill-typed or ill-formed; not this property's concern
		}
		accepted++
		naive, err := s.Eval(core)
		if err != nil {
			t.Fatalf("trial %d: %s\n naive eval: %v", trial, src, err)
		}
		opt, err := s.Eval(s.Env.Optimizer.Optimize(core))
		if err != nil {
			t.Fatalf("trial %d: %s\n optimized eval: %v", trial, src, err)
		}
		// δ^p may erase a ⊥ hidden in a dead tabulation (accepted by the
		// paper); otherwise results agree.
		if !naive.IsBottom() && !object.Equal(naive, opt) {
			t.Fatalf("trial %d: %s\n naive %s\n opt   %s", trial, src, naive, opt)
		}
	}
	if accepted < 400 {
		t.Fatalf("only %d/600 random queries typechecked; generator too wild", accepted)
	}
}

// randomQuery builds random nat-valued AQL source over the globals A, S,
// n, using x only where a comprehension has bound it.
func randomQuery(rng *rand.Rand, depth int) string { return natQ(rng, depth, false) }

func natQ(rng *rand.Rand, depth int, xInScope bool) string {
	if depth <= 0 {
		leaves := []string{"0", "1", "2", "n"}
		if xInScope {
			leaves = append(leaves, "x", "x")
		}
		return leaves[rng.Intn(len(leaves))]
	}
	sub := func() string { return natQ(rng, depth-1, xInScope) }
	switch rng.Intn(10) {
	case 0:
		op := []string{"+", "-", "*", "/", "%"}[rng.Intn(5)]
		return fmt.Sprintf("(%s %s %s)", sub(), op, sub())
	case 1:
		return fmt.Sprintf("(if %s then %s else %s)", boolQ(rng, depth-1, xInScope), sub(), sub())
	case 2:
		return fmt.Sprintf("A[%s]", sub())
	case 3:
		return fmt.Sprintf("[[ %s | \\i < %s ]][%s]", sub(), sub(), sub())
	case 4:
		return "len!A"
	case 5:
		return fmt.Sprintf("summap(fn \\x => %s)!(%s)", natQ(rng, depth-1, true), setQ(rng, depth-1, xInScope))
	case 6:
		return fmt.Sprintf("min!{%s, %s}", sub(), sub())
	case 7:
		return fmt.Sprintf("count!(%s)", setQ(rng, depth-1, xInScope))
	case 8:
		return fmt.Sprintf("(let val \\v = %s in v + %s end)", sub(), sub())
	default:
		return fmt.Sprintf("len![[ %s | \\i < %s ]]", sub(), sub())
	}
}

func boolQ(rng *rand.Rand, depth int, xInScope bool) string {
	op := []string{"=", "<>", "<", "<=", ">", ">="}[rng.Intn(6)]
	return fmt.Sprintf("(%s %s %s)", natQ(rng, depth, xInScope), op, natQ(rng, depth, xInScope))
}

func setQ(rng *rand.Rand, depth int, xInScope bool) string {
	if depth <= 0 {
		return []string{"S", "gen!3", "{}"}[rng.Intn(3)]
	}
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("gen!(%s)", natQ(rng, depth-1, xInScope))
	case 1:
		return fmt.Sprintf("{%s | \\x <- %s}", natQ(rng, depth-1, true), setQ(rng, depth-1, xInScope))
	case 2:
		return fmt.Sprintf("{x | \\x <- %s, %s}", setQ(rng, depth-1, xInScope), boolQ(rng, depth-1, true))
	default:
		return "S"
	}
}

// TestRankAndSort exercises the section 6 rank operator from the surface
// language and the sort macro derived from it ("adding arrays amounts to
// adding ranking").
func TestRankAndSort(t *testing.T) {
	s := newSession(t)
	expectQuery(t, s, `rank!{30, 10, 20}`, object.Set(
		object.Tuple(object.Nat(10), object.Nat(1)),
		object.Tuple(object.Nat(20), object.Nat(2)),
		object.Tuple(object.Nat(30), object.Nat(3))))
	expectQuery(t, s, `sort!{30, 10, 20}`, object.NatVector(10, 20, 30))
	expectQuery(t, s, `sort!{}`, object.Vector())
	expectQuery(t, s, `sort!{"b", "a", "c"}`, object.Vector(
		object.String_("a"), object.String_("b"), object.String_("c")))
	// sort ∘ rng sorts an array's values.
	s.Env.SetVal("A", object.NatVector(5, 3, 9, 1), types.MustParse("[[nat]]"))
	expectQuery(t, s, `sort!(rng!A)`, object.NatVector(1, 3, 5, 9))
}

// TestScriptFile executes a multi-statement script from testdata — the
// same path the REPL's -f flag drives.
func TestScriptFile(t *testing.T) {
	src, err := os.ReadFile("testdata/session.aql")
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t)
	results, err := s.Exec(string(src))
	if err != nil {
		t.Fatal(err)
	}
	final := results[len(results)-1]
	want := object.Tuple(
		object.NatVector(30, 40, 90, 110, 150),
		object.Set(object.Nat(2), object.Nat(3), object.Nat(4)),
		object.NatVector(10, 20, 30, 40, 50),
	)
	if !object.Equal(final.Value, want) {
		t.Errorf("script result = %s,\n want %s", final.Value, want)
	}
	if final.Type.String() != "[[nat]] * {nat} * [[nat]]" {
		t.Errorf("script type = %s", final.Type)
	}
	// Macro results carry their pretty-printed source.
	if results[1].Kind != "macro" || results[1].Source == "" {
		t.Errorf("macro result = %+v", results[1])
	}
}
