package repl

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/trace"
)

// newProfiledSession returns a session at the given profiling level.
func newProfiledSession(t *testing.T, level string) *Session {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetProfiling(level); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReportCarriesSpans checks the session plumbing end to end: a query
// run at sampled or full level yields a QueryReport whose span tree is
// present, labelled with the level, and rooted at an operator with one
// invocation; at off the report has no spans. Both engines.
func TestReportCarriesSpans(t *testing.T) {
	for _, engine := range []string{EngineInterp, EngineCompiled} {
		for _, level := range []string{"off", "sampled", "full"} {
			t.Run(engine+"/"+level, func(t *testing.T) {
				s := newProfiledSession(t, level)
				if err := s.SetEngine(engine); err != nil {
					t.Fatal(err)
				}
				if _, _, err := s.Query(`[[ i * i | \i < 50 ]]`); err != nil {
					t.Fatal(err)
				}
				rep := s.Trace.Last()
				if rep == nil {
					t.Fatal("no report")
				}
				if level == "off" {
					if rep.Spans != nil {
						t.Fatalf("spans present at off level: %+v", rep.Spans)
					}
					return
				}
				if rep.Spans == nil {
					t.Fatal("no span tree in report")
				}
				if rep.ProfLevel != level {
					t.Errorf("report level = %q, want %q", rep.ProfLevel, level)
				}
				if rep.Spans.Invocations != 1 {
					t.Errorf("root invocations = %d, want 1", rep.Spans.Invocations)
				}
				if rep.Spans.WallCum <= 0 {
					t.Errorf("root cumulative wall = %v, want > 0", rep.Spans.WallCum)
				}
				var tabs int64
				rep.Spans.Walk(func(n *trace.SpanNode) { tabs += n.Tabulations })
				if tabs != rep.Eval.Tabulations {
					t.Errorf("span tabulations %d != flat %d", tabs, rep.Eval.Tabulations)
				}
				if level == "full" {
					var steps int64
					rep.Spans.Walk(func(n *trace.SpanNode) { steps += n.Steps })
					if steps != rep.Eval.Steps {
						t.Errorf("span steps %d != flat %d at full level", steps, rep.Eval.Steps)
					}
				}
			})
		}
	}
}

// TestFlightRecorderUnderSession drives more queries than the flight
// recorder holds and checks it retains exactly its capacity, newest-last.
func TestFlightRecorderUnderSession(t *testing.T) {
	s := newProfiledSession(t, "sampled")
	s.Flight = trace.NewFlightRecorder(5)
	s.SetTraceSink(nil) // recompose the sink chain over the replaced recorder
	const n = 13
	for i := 0; i < n; i++ {
		if _, _, err := s.Query(fmt.Sprintf(`%d + 1`, i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Flight.Total(); got != n {
		t.Fatalf("flight total = %d, want %d", got, n)
	}
	reports := s.Flight.Reports()
	if len(reports) != 5 {
		t.Fatalf("flight retained %d, want exactly 5", len(reports))
	}
	for i, rep := range reports {
		if want := fmt.Sprintf("%d + 1", n-5+i); rep.Query != want {
			t.Errorf("reports[%d].Query = %q, want %q", i, rep.Query, want)
		}
	}
	// The fleet aggregator saw every query (it shares the sink chain).
	if got := s.Fleet.Snapshot().Totals.Queries; got != n {
		t.Errorf("fleet counted %d queries, want %d", got, n)
	}
}

// TestTopFleetProfCommands exercises the three new colon-commands.
func TestTopFleetProfCommands(t *testing.T) {
	ctx := context.Background()
	s := newProfiledSession(t, "full")

	out, err := s.Command(ctx, ":prof")
	if err != nil || !strings.Contains(out, "full") {
		t.Fatalf(":prof = %q, %v", out, err)
	}
	if _, err := s.Command(ctx, ":prof banana"); err == nil {
		t.Fatal(":prof banana accepted")
	}
	if out, err = s.Command(ctx, ":prof sampled"); err != nil || !strings.Contains(out, "sampled") {
		t.Fatalf(":prof sampled = %q, %v", out, err)
	}
	if s.Profiling != eval.ProfSampled {
		t.Fatalf("session level = %v after :prof sampled", s.Profiling)
	}

	out, err = s.Command(ctx, ":top")
	if err != nil || !strings.Contains(out, "no query recorded yet") {
		t.Fatalf(":top before any query = %q, %v", out, err)
	}
	if _, _, err := s.Query(`[[ i + 1 | \i < 2000 ]]`); err != nil {
		t.Fatal(err)
	}
	out, err = s.Command(ctx, ":top 3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ArrayTab") {
		t.Errorf(":top output missing the tabulation operator:\n%s", out)
	}
	out, err = s.Command(ctx, ":fleet")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "queries") || !strings.Contains(out, "1") {
		t.Errorf(":fleet output missing the query count:\n%s", out)
	}

	// :top with profiling off explains itself rather than erroring.
	if _, err := s.Command(ctx, ":prof off"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query(`1 + 1`); err != nil {
		t.Fatal(err)
	}
	out, err = s.Command(ctx, ":top")
	if err != nil || !strings.Contains(out, "profiling is off") {
		t.Fatalf(":top at off level = %q, %v", out, err)
	}
}

// TestUserSinkComposesWithFleet checks SetTraceSink adds the user's sink
// without disconnecting the built-in aggregator and flight recorder.
func TestUserSinkComposesWithFleet(t *testing.T) {
	s := newProfiledSession(t, "sampled")
	var got []string
	s.SetTraceSink(sinkFunc(func(r *trace.QueryReport) { got = append(got, r.Query) }))
	if _, _, err := s.Query(`2 * 3`); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "2 * 3" {
		t.Fatalf("user sink saw %v", got)
	}
	if s.Fleet.Snapshot().Totals.Queries != 1 {
		t.Error("fleet aggregator disconnected by SetTraceSink")
	}
	if s.Flight.Total() != 1 {
		t.Error("flight recorder disconnected by SetTraceSink")
	}
}

type sinkFunc func(*trace.QueryReport)

func (f sinkFunc) Emit(r *trace.QueryReport) { f(r) }
