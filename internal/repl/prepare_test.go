package repl

import (
	"context"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/object"
)

// TestCommandPrepareExec drives the loop's prepared-statement surface:
// :prepare compiles the template and reports the placeholder types,
// :exec binds scalar literals and runs it, and re-:exec with new arguments
// reuses the statement.
func TestCommandPrepareExec(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()

	out, err := s.Command(ctx, `:prepare [[ i * $a + $b | \i < 5 ]]`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"type: [[nat]]", "$a : nat", "$b : nat"} {
		if !strings.Contains(out, want) {
			t.Errorf(":prepare output missing %q:\n%s", want, out)
		}
	}

	out, err = s.Command(ctx, `:exec a=2, b=1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[[1, 3, 5, 7, 9]]") {
		t.Errorf(":exec output = %q, want tabulated values", out)
	}
	// `it` is bound, as for a bare query.
	if v, ok := s.Env.Val("it"); !ok || v.String() != "[[1, 3, 5, 7, 9]]" {
		t.Errorf("it = %v (ok=%v), want the exec result", v, ok)
	}

	// $-sigil argument names and fresh values work on the same statement.
	out, err = s.Command(ctx, `:exec $a=0, $b=9`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[[9, 9, 9, 9, 9]]") {
		t.Errorf("re-:exec output = %q", out)
	}

	// Bare :prepare shows the current statement.
	out, err = s.Command(ctx, `:prepare`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "prepared: [[ i * $a + $b | \\i < 5 ]]") {
		t.Errorf("bare :prepare = %q", out)
	}
}

// TestCommandExecErrors: :exec without a statement, with malformed
// arguments, and with bind failures all answer with errors, not panics.
func TestCommandExecErrors(t *testing.T) {
	s := newSession(t)
	ctx := context.Background()

	if _, err := s.Command(ctx, `:exec a=1`); err == nil ||
		!strings.Contains(err.Error(), "no prepared statement") {
		t.Errorf("exec without prepare: err = %v", err)
	}
	if _, err := s.Command(ctx, `:prepare $n + 1`); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ line, want string }{
		{`:exec n`, "expected ="},
		{`:exec n=`, "expected a scalar literal"},
		{`:exec n=1, n=2`, "duplicate argument"},
		{`:exec n=1 m=2`, "expected , or end"},
		{`:exec n=1, m=2`, "does not name a parameter"},
		{`:exec n="s"`, "expected nat, got string"},
		{`:exec`, "missing argument for parameter $n"},
		{`:exec n=-3`, "naturals are non-negative"},
	} {
		if _, err := s.Command(ctx, c.line); err == nil ||
			!strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.line, err, c.want)
		}
	}
	// Still usable after every failure.
	out, err := s.Command(ctx, `:exec n=41`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "42") {
		t.Errorf(":exec n=41 = %q, want 42", out)
	}
}

// TestParseExecArgs covers the literal kinds the loop accepts.
func TestParseExecArgs(t *testing.T) {
	args, err := parseExecArgs(`n=3, x=-1.5, s="a b", t=true, f=false`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]object.Value{
		"n": object.Nat(3), "x": object.Real(-1.5),
		"s": object.String_("a b"), "t": object.Bool(true), "f": object.Bool(false),
	}
	if len(args) != len(want) {
		t.Fatalf("args = %v", args)
	}
	for k, w := range want {
		if got, ok := args[k]; !ok || got.String() != w.String() {
			t.Errorf("args[%s] = %v, want %v", k, got, w)
		}
	}
	if empty, err := parseExecArgs("  "); err != nil || len(empty) != 0 {
		t.Errorf("blank args = %v, %v", empty, err)
	}
}

// TestPreparedInterpEngine: the prepared path honors the session's engine
// selection — the interpreter threads the frame through its Params field.
func TestPreparedInterpEngine(t *testing.T) {
	s := newSession(t)
	if err := s.SetEngine(EngineInterp); err != nil {
		t.Fatal(err)
	}
	p, err := s.Prepare(`$a * 6`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Exec(context.Background(), map[string]object.Value{"a": object.Nat(7)})
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "42" {
		t.Fatalf("interp exec = %s, want 42", v)
	}
}
