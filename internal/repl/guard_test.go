package repl

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/types"
)

// registerPanicking installs a nat -> nat primitive whose body runs fn,
// exercising the session's recovery boundary against real panic sites in
// the object/types layers.
func registerPanicking(t *testing.T, s *Session, name string, fn func()) {
	t.Helper()
	err := s.Env.RegisterPrimitive(name,
		func(object.Value) (object.Value, error) {
			fn()
			return object.Nat(0), nil
		},
		types.MustParse("nat -> nat"))
	if err != nil {
		t.Fatal(err)
	}
}

func wantPanicError(t *testing.T, err error, srcFragment string) *PanicError {
	t.Helper()
	if err == nil {
		t.Fatal("expected *PanicError, got nil")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *PanicError, got %T: %v", err, err)
	}
	if !strings.Contains(pe.Src, srcFragment) {
		t.Errorf("PanicError.Src = %q, want it to contain %q", pe.Src, srcFragment)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
	return pe
}

func TestPanicFromPrimitiveRecovered(t *testing.T) {
	s := newSession(t)
	registerPanicking(t, s, "boom", func() { panic("kaboom") })
	_, _, err := s.Query("boom!1")
	pe := wantPanicError(t, err, "boom")
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("error %q should mention the panic value", pe.Error())
	}

	// The session must survive: the boundary isolates the fault.
	v, _, err := s.Query("1 + 1")
	if err != nil || v.N != 2 {
		t.Fatalf("session dead after recovered panic: %v, %v", v, err)
	}
}

func TestPanicNegativeNatRecovered(t *testing.T) {
	// object.Nat panics on negative inputs (value.go); a buggy primitive
	// hitting it must surface as an error, not a crash.
	s := newSession(t)
	registerPanicking(t, s, "negnat", func() { object.Nat(-1) })
	_, _, err := s.Query("negnat!1")
	wantPanicError(t, err, "negnat")
}

func TestPanicCompareFuncsRecovered(t *testing.T) {
	// object.Compare panics on function values (compare.go); a primitive
	// that tries to canonicalize a set of closures must be contained.
	s := newSession(t)
	id := object.Func(func(v object.Value) (object.Value, error) { return v, nil })
	registerPanicking(t, s, "cmpfuncs", func() { object.Compare(id, id) })
	_, _, err := s.Query("cmpfuncs!1")
	wantPanicError(t, err, "cmpfuncs")
}

func TestPanicTypesElemRecovered(t *testing.T) {
	// types.Elem panics on non-collection types; primitives poking at
	// types at runtime are isolated the same way.
	s := newSession(t)
	registerPanicking(t, s, "badelem", func() { types.Nat.Elem() })
	_, _, err := s.Query("badelem!1")
	wantPanicError(t, err, "badelem")
}

func TestLastStepsReportedOnAbort(t *testing.T) {
	s := newSession(t)
	s.Limits.MaxSteps = 500
	_, _, err := s.Query(`summap(fn \i => i)!(gen!100000)`)
	var re *eval.ResourceError
	if !errors.As(err, &re) || re.Kind != eval.ResourceSteps {
		t.Fatalf("expected steps ResourceError, got %v", err)
	}
	if s.LastSteps <= 500 {
		t.Errorf("LastSteps = %d, want > 500 (consumption visible on abort)", s.LastSteps)
	}
}

func TestLastCellsReportedOnAbort(t *testing.T) {
	s := newSession(t)
	s.Limits.MaxCells = 1000
	_, _, err := s.Query("[[ i | \\i < 1000000000 ]]")
	var re *eval.ResourceError
	if !errors.As(err, &re) || re.Kind != eval.ResourceCells {
		t.Fatalf("expected cells ResourceError, got %v", err)
	}
	if s.LastCells < 1000 {
		t.Errorf("LastCells = %d, want >= limit on abort", s.LastCells)
	}
}

func TestQueryCtxCancellation(t *testing.T) {
	s := newSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := s.QueryCtx(ctx, `summap(fn \i => summap(fn \j => i*j)!(gen!1000))!(gen!100000)`)
	var re *eval.ResourceError
	if !errors.As(err, &re) || re.Kind != eval.ResourceCancelled {
		t.Fatalf("expected cancelled ResourceError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error should unwrap to context.Canceled")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s to observe", elapsed)
	}
}

func TestExecCtxTimeout(t *testing.T) {
	s := newSession(t)
	s.Limits.Timeout = 30 * time.Millisecond
	_, err := s.Exec(`val \x = summap(fn \i => summap(fn \j => i*j)!(gen!1000))!(gen!100000);`)
	var re *eval.ResourceError
	if !errors.As(err, &re) || re.Kind != eval.ResourceTimeout {
		t.Fatalf("expected timeout ResourceError, got %v", err)
	}
}
