package repl

import (
	"fmt"
	"io"
	"os"

	"github.com/aqldb/aql/internal/env"
	"github.com/aqldb/aql/internal/exchange"
	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/trace"
)

// RegisterNetCDF registers the NetCDF readers of section 4.1: NETCDF1,
// NETCDF2, NETCDF3 and NETCDF4 input k-dimensional subslabs. Each takes
// (filename, variable, lower, upper) where lower and upper are inclusive
// index bounds — a nat for k = 1, k-tuples of nats otherwise — exactly as
// the session example uses NETCDF3. A fifth reader, NETCDF, reads a whole
// variable at its natural rank.
//
// Each reader reports the file's I/O counters (slab reads, bytes,
// cache/retry behaviour) to rec after reading, attributing I/O to the
// statement that caused it; rec may be nil.
func RegisterNetCDF(e *env.Env, rec *trace.Recorder) {
	for k := 1; k <= 4; k++ {
		e.RegisterReader(fmt.Sprintf("NETCDF%d", k), netcdfSlabReader(k, rec))
	}
	e.RegisterReader("NETCDF", netcdfWholeReader(rec))
}

// recordIO folds a file's I/O counters into the recorder's open report.
func recordIO(rec *trace.Recorder, f *netcdf.File) {
	st := f.IOStats()
	rec.RecordIO(trace.IOCounters{
		SlabReads:   st.SlabReads,
		BytesRead:   st.BytesRead,
		CacheHits:   st.CacheHits,
		CacheMisses: st.CacheMisses,
		Prefetches:  st.Prefetches,
		Retries:     st.Retries,
		Faults:      st.Faults,
	})
}

// netcdfSlabReader builds the k-dimensional subslab reader.
func netcdfSlabReader(k int, rec *trace.Recorder) env.Reader {
	return func(arg object.Value) (object.Value, error) {
		if arg.Kind != object.KTuple || len(arg.Elems) != 4 {
			return object.Value{}, fmt.Errorf("NETCDF%d: expected (file, variable, lower, upper)", k)
		}
		if arg.Elems[0].Kind != object.KString || arg.Elems[1].Kind != object.KString {
			return object.Value{}, fmt.Errorf("NETCDF%d: file and variable must be strings", k)
		}
		path, varName := arg.Elems[0].S, arg.Elems[1].S
		lower, err := object.IndexOf(arg.Elems[2], k)
		if err != nil {
			return object.Value{}, fmt.Errorf("NETCDF%d: lower bound: %w", k, err)
		}
		upper, err := object.IndexOf(arg.Elems[3], k)
		if err != nil {
			return object.Value{}, fmt.Errorf("NETCDF%d: upper bound: %w", k, err)
		}
		f, err := netcdf.Open(path)
		if err != nil {
			return object.Value{}, err
		}
		defer f.Close()
		defer recordIO(rec, f)
		v, err := f.Var(varName)
		if err != nil {
			return object.Value{}, err
		}
		if len(v.Dims) != k {
			return object.Value{}, fmt.Errorf("NETCDF%d: variable %q has rank %d", k, varName, len(v.Dims))
		}
		start := make([]int, k)
		count := make([]int, k)
		for d := 0; d < k; d++ {
			if upper[d] < lower[d] {
				return object.Value{}, fmt.Errorf("NETCDF%d: empty bound range in dimension %d", k, d+1)
			}
			start[d] = lower[d]
			count[d] = upper[d] - lower[d] + 1
		}
		slab, err := f.ReadSlab(varName, start, count)
		if err != nil {
			return object.Value{}, err
		}
		return slabToArray(slab)
	}
}

// netcdfWholeReader builds the reader for (file, variable) in full.
func netcdfWholeReader(rec *trace.Recorder) env.Reader {
	return func(arg object.Value) (object.Value, error) {
		if arg.Kind != object.KTuple || len(arg.Elems) != 2 ||
			arg.Elems[0].Kind != object.KString || arg.Elems[1].Kind != object.KString {
			return object.Value{}, fmt.Errorf("NETCDF: expected (file, variable)")
		}
		f, err := netcdf.Open(arg.Elems[0].S)
		if err != nil {
			return object.Value{}, err
		}
		defer f.Close()
		defer recordIO(rec, f)
		slab, err := f.ReadAll(arg.Elems[1].S)
		if err != nil {
			return object.Value{}, err
		}
		return slabToArray(slab)
	}
}

// slabToArray converts a numeric NetCDF slab into an AQL array of reals.
func slabToArray(slab *netcdf.Slab) (object.Value, error) {
	if slab.Type == netcdf.Char {
		return object.Value{}, fmt.Errorf("netcdf: char variables have no array representation; read them as attributes")
	}
	data := make([]object.Value, len(slab.Values))
	for i, f := range slab.Values {
		if !object.IsFinite(f) {
			data[i] = object.Bottom("non-finite value in NetCDF data")
			continue
		}
		data[i] = object.Real(f)
	}
	shape := slab.Shape
	if len(shape) == 0 {
		shape = []int{1}
	}
	return object.Array(shape, data)
}

// RegisterNetCDFWriter registers the NETCDF writer: `writeval E using
// NETCDF at (file, variable)` writes a k-dimensional array of reals (or
// nats) as a double variable in a new classic-format file, with dimensions
// named dim1..dimk. Together with the readers this closes the loop: AQL
// results can feed other NetCDF tools.
func RegisterNetCDFWriter(e *env.Env) {
	e.RegisterWriter("NETCDF", func(arg, data object.Value) error {
		if arg.Kind != object.KTuple || len(arg.Elems) != 2 ||
			arg.Elems[0].Kind != object.KString || arg.Elems[1].Kind != object.KString {
			return fmt.Errorf("NETCDF writer: expected (file, variable)")
		}
		if data.Kind != object.KArray {
			return fmt.Errorf("NETCDF writer: expected an array, got %s", data.Kind)
		}
		vals := make([]float64, len(data.Data))
		for i, v := range data.Data {
			f, err := v.AsReal()
			if err != nil {
				return fmt.Errorf("NETCDF writer: element %d: %w", i, err)
			}
			vals[i] = f
		}
		b := netcdf.NewBuilder()
		dims := make([]int, len(data.Shape))
		for d, n := range data.Shape {
			id, err := b.AddDim(fmt.Sprintf("dim%d", d+1), n)
			if err != nil {
				return fmt.Errorf("NETCDF writer: %w", err)
			}
			dims[d] = id
		}
		if err := b.AddVar(arg.Elems[1].S, netcdf.Double, dims, nil, vals); err != nil {
			return fmt.Errorf("NETCDF writer: %w", err)
		}
		return b.WriteFile(arg.Elems[0].S)
	})
}

// RegisterPrint registers the PRINT writer: `writeval E using PRINT at
// label` pretty-prints the value to w with the given label.
func RegisterPrint(e *env.Env, w io.Writer) {
	e.RegisterWriter("PRINT", func(arg, data object.Value) error {
		label := ""
		if arg.Kind == object.KString {
			label = arg.S + " = "
		}
		_, err := fmt.Fprintf(w, "%s%s\n", label, data.Pretty(24))
		return err
	})
}

// RegisterExchange registers the EXCHANGE reader and writer for the
// complex-object data exchange format of section 3: any driver that
// produces this format can feed the system (section 4.1).
func RegisterExchange(e *env.Env) {
	e.RegisterReader("EXCHANGE", func(arg object.Value) (object.Value, error) {
		if arg.Kind != object.KString {
			return object.Value{}, fmt.Errorf("EXCHANGE: expected a file name")
		}
		f, err := os.Open(arg.S)
		if err != nil {
			return object.Value{}, err
		}
		defer f.Close()
		return exchange.Read(f)
	})
	e.RegisterWriter("EXCHANGE", func(arg, data object.Value) error {
		if arg.Kind != object.KString {
			return fmt.Errorf("EXCHANGE: expected a file name")
		}
		f, err := os.Create(arg.S)
		if err != nil {
			return err
		}
		if err := exchange.Write(f, data); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
}
