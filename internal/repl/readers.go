package repl

import (
	"fmt"
	"io"
	"os"

	"context"

	"github.com/aqldb/aql/internal/env"
	"github.com/aqldb/aql/internal/exchange"
	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/object"
)

// registerNetCDF registers the NetCDF readers of section 4.1: NETCDF1,
// NETCDF2, NETCDF3 and NETCDF4 input k-dimensional subslabs. Each takes
// (filename, variable, lower, upper) where lower and upper are inclusive
// index bounds — a nat for k = 1, k-tuples of nats otherwise — exactly as
// the session example uses NETCDF3. A fifth reader, NETCDF, reads a whole
// variable at its natural rank.
//
// Files open through the session's per-path handle cache and stay open for
// the session (Session.Close releases them), so repeated reads of one
// dataset parse the header once. By default the readers are lazy: they
// validate the request against the header and bind a tiled lazy array that
// fetches cells on demand through the session's tile cache — queries over
// variables larger than RAM touch only the tiles they subscript. With
// SetLazyReads(false) they materialize whole slabs as they historically
// did. Both modes produce byte-identical values.
func (s *Session) registerNetCDF() {
	for k := 1; k <= 4; k++ {
		s.Env.RegisterReader(fmt.Sprintf("NETCDF%d", k), s.netcdfSlabReader(k))
	}
	s.Env.RegisterReader("NETCDF", s.netcdfWholeReader())
}

// errCharVariable matches the historical eager-path diagnostic exactly.
var errCharVariable = fmt.Errorf("netcdf: char variables have no array representation; read them as attributes")

// netcdfSlabReader builds the k-dimensional subslab reader.
func (s *Session) netcdfSlabReader(k int) env.Reader {
	return func(arg object.Value) (object.Value, error) {
		if arg.Kind != object.KTuple || len(arg.Elems) != 4 {
			return object.Value{}, fmt.Errorf("NETCDF%d: expected (file, variable, lower, upper)", k)
		}
		if arg.Elems[0].Kind != object.KString || arg.Elems[1].Kind != object.KString {
			return object.Value{}, fmt.Errorf("NETCDF%d: file and variable must be strings", k)
		}
		path, varName := arg.Elems[0].S, arg.Elems[1].S
		lower, err := object.IndexOf(arg.Elems[2], k)
		if err != nil {
			return object.Value{}, fmt.Errorf("NETCDF%d: lower bound: %w", k, err)
		}
		upper, err := object.IndexOf(arg.Elems[3], k)
		if err != nil {
			return object.Value{}, fmt.Errorf("NETCDF%d: upper bound: %w", k, err)
		}
		f, err := s.io.open(path)
		if err != nil {
			return object.Value{}, err
		}
		v, err := f.Var(varName)
		if err != nil {
			return object.Value{}, err
		}
		if len(v.Dims) != k {
			return object.Value{}, fmt.Errorf("NETCDF%d: variable %q has rank %d", k, varName, len(v.Dims))
		}
		start := make([]int, k)
		count := make([]int, k)
		for d := 0; d < k; d++ {
			if upper[d] < lower[d] {
				return object.Value{}, fmt.Errorf("NETCDF%d: empty bound range in dimension %d", k, d+1)
			}
			start[d] = lower[d]
			count[d] = upper[d] - lower[d] + 1
		}
		if !s.LazyReads() {
			slab, err := f.ReadSlab(varName, start, count)
			if err != nil {
				return object.Value{}, err
			}
			return slabToArray(slab)
		}
		return s.lazySlab(f, varName, start, count)
	}
}

// netcdfWholeReader builds the reader for (file, variable) in full.
func (s *Session) netcdfWholeReader() env.Reader {
	return func(arg object.Value) (object.Value, error) {
		if arg.Kind != object.KTuple || len(arg.Elems) != 2 ||
			arg.Elems[0].Kind != object.KString || arg.Elems[1].Kind != object.KString {
			return object.Value{}, fmt.Errorf("NETCDF: expected (file, variable)")
		}
		path, varName := arg.Elems[0].S, arg.Elems[1].S
		f, err := s.io.open(path)
		if err != nil {
			return object.Value{}, err
		}
		if !s.LazyReads() {
			slab, err := f.ReadAll(varName)
			if err != nil {
				return object.Value{}, err
			}
			return slabToArray(slab)
		}
		v, err := f.Var(varName)
		if err != nil {
			return object.Value{}, err
		}
		shape := f.Shape(v)
		start := make([]int, len(shape))
		return s.lazySlab(f, varName, start, shape)
	}
}

// lazySlab validates the slab request against the header and binds a lazy
// array over it. The slab's flat row-major cell space maps to variable
// cells run by run: within one slab row (the innermost dimension) cells are
// contiguous in the variable too, so each tile fetch decomposes into
// innermost-dimension runs served by ReadCellRangeCtx.
func (s *Session) lazySlab(f *netcdf.File, varName string, start, count []int) (object.Value, error) {
	v, err := f.Var(varName)
	if err != nil {
		return object.Value{}, err
	}
	if v.Type == netcdf.Char {
		return object.Value{}, errCharVariable
	}
	varShape := f.Shape(v)
	if len(start) != len(varShape) || len(count) != len(varShape) {
		return object.Value{}, fmt.Errorf("netcdf: %s has rank %d; start/count have rank %d/%d",
			varName, len(varShape), len(start), len(count))
	}
	size := 1
	for d := range varShape {
		if start[d] < 0 || count[d] < 0 || start[d]+count[d] > varShape[d] {
			return object.Value{}, fmt.Errorf("netcdf: %s: slab [%d, %d) exceeds dimension %d of length %d",
				varName, start[d], start[d]+count[d], d, varShape[d])
		}
		size *= count[d]
	}

	// Scalar variables materialize eagerly: one cell, nothing to tile.
	if len(varShape) == 0 {
		slab, err := f.ReadSlab(varName, start, count)
		if err != nil {
			return object.Value{}, err
		}
		return slabToArray(slab)
	}

	shape := append([]int(nil), count...)
	rank := len(shape)
	inner := shape[rank-1]
	// Flat strides of the variable's cell space, for mapping slab rows to
	// variable cell offsets.
	varStrides := make([]int, rank)
	stride := 1
	for d := rank - 1; d >= 0; d-- {
		varStrides[d] = stride
		stride *= varShape[d]
	}

	// Bind-time validation: the slab's maximal cell must be inside the
	// file, so a truncated data region fails the readval (as the eager
	// path does), not the first tile fetch mid-query.
	if size > 0 {
		lastOff := 0
		for d := range shape {
			lastOff += (start[d] + shape[d] - 1) * varStrides[d]
		}
		if err := f.ValidateCellRange(varName, lastOff, 1); err != nil {
			return object.Value{}, err
		}
	}

	fullWidth := true
	for d := range varShape {
		if start[d] != 0 || count[d] != varShape[d] {
			fullWidth = false
			break
		}
	}

	s.io.mu.Lock()
	cache := s.io.cache
	s.io.mu.Unlock()

	fetch := func(ctx context.Context, off, n int) ([]object.Value, error) {
		if fullWidth {
			// Whole-variable read: slab space IS variable space.
			vals, err := f.ReadCellRangeCtx(ctx, varName, off, n)
			if err != nil {
				return nil, err
			}
			return floatCells(vals), nil
		}
		out := make([]object.Value, 0, n)
		for p := off; p < off+n; {
			row := p / inner
			col := p % inner
			run := inner - col
			if rem := off + n - p; run > rem {
				run = rem
			}
			// Variable-space flat offset of (slab row, col).
			vOff := (start[rank-1] + col) * varStrides[rank-1]
			rest := row
			for d := rank - 2; d >= 0; d-- {
				vOff += (start[d] + rest%shape[d]) * varStrides[d]
				rest /= shape[d]
			}
			vals, err := f.ReadCellRangeCtx(ctx, varName, vOff, run)
			if err != nil {
				return nil, err
			}
			out = append(out, floatCells(vals)...)
			p += run
		}
		return out, nil
	}
	return object.LazyArray(shape, cache.NewArray(size, fetch))
}

// floatCells converts raw NetCDF values to AQL cells with the same
// non-finite mapping as the eager slabToArray path.
func floatCells(vals []float64) []object.Value {
	out := make([]object.Value, len(vals))
	for i, f := range vals {
		if !object.IsFinite(f) {
			out[i] = object.Bottom("non-finite value in NetCDF data")
			continue
		}
		out[i] = object.Real(f)
	}
	return out
}

// slabToArray converts a numeric NetCDF slab into an AQL array of reals.
func slabToArray(slab *netcdf.Slab) (object.Value, error) {
	if slab.Type == netcdf.Char {
		return object.Value{}, errCharVariable
	}
	data := floatCells(slab.Values)
	shape := slab.Shape
	if len(shape) == 0 {
		shape = []int{1}
	}
	return object.Array(shape, data)
}

// RegisterNetCDFWriter registers the NETCDF writer: `writeval E using
// NETCDF at (file, variable)` writes a k-dimensional array of reals (or
// nats) as a double variable in a new classic-format file, with dimensions
// named dim1..dimk. Together with the readers this closes the loop: AQL
// results can feed other NetCDF tools.
func RegisterNetCDFWriter(e *env.Env) {
	e.RegisterWriter("NETCDF", func(arg, data object.Value) error {
		if arg.Kind != object.KTuple || len(arg.Elems) != 2 ||
			arg.Elems[0].Kind != object.KString || arg.Elems[1].Kind != object.KString {
			return fmt.Errorf("NETCDF writer: expected (file, variable)")
		}
		if data.Kind != object.KArray {
			return fmt.Errorf("NETCDF writer: expected an array, got %s", data.Kind)
		}
		cells, err := data.Cells()
		if err != nil {
			return fmt.Errorf("NETCDF writer: %w", err)
		}
		vals := make([]float64, len(cells))
		for i, v := range cells {
			f, err := v.AsReal()
			if err != nil {
				return fmt.Errorf("NETCDF writer: element %d: %w", i, err)
			}
			vals[i] = f
		}
		b := netcdf.NewBuilder()
		dims := make([]int, len(data.Shape))
		for d, n := range data.Shape {
			id, err := b.AddDim(fmt.Sprintf("dim%d", d+1), n)
			if err != nil {
				return fmt.Errorf("NETCDF writer: %w", err)
			}
			dims[d] = id
		}
		if err := b.AddVar(arg.Elems[1].S, netcdf.Double, dims, nil, vals); err != nil {
			return fmt.Errorf("NETCDF writer: %w", err)
		}
		return b.WriteFile(arg.Elems[0].S)
	})
}

// RegisterPrint registers the PRINT writer: `writeval E using PRINT at
// label` pretty-prints the value to w with the given label.
func RegisterPrint(e *env.Env, w io.Writer) {
	e.RegisterWriter("PRINT", func(arg, data object.Value) error {
		label := ""
		if arg.Kind == object.KString {
			label = arg.S + " = "
		}
		_, err := fmt.Fprintf(w, "%s%s\n", label, data.Pretty(24))
		return err
	})
}

// RegisterExchange registers the EXCHANGE reader and writer for the
// complex-object data exchange format of section 3: any driver that
// produces this format can feed the system (section 4.1).
func RegisterExchange(e *env.Env) {
	e.RegisterReader("EXCHANGE", func(arg object.Value) (object.Value, error) {
		if arg.Kind != object.KString {
			return object.Value{}, fmt.Errorf("EXCHANGE: expected a file name")
		}
		f, err := os.Open(arg.S)
		if err != nil {
			return object.Value{}, err
		}
		defer f.Close()
		return exchange.Read(f)
	})
	e.RegisterWriter("EXCHANGE", func(arg, data object.Value) error {
		if arg.Kind != object.KString {
			return fmt.Errorf("EXCHANGE: expected a file name")
		}
		f, err := os.Create(arg.S)
		if err != nil {
			return err
		}
		if err := exchange.Write(f, data); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
}
