package repl

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unsafe"

	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/object"
)

// writeNC2D writes a 6x8 double variable "v" (with two non-finite cells)
// and returns the file path.
func writeNC2D(t *testing.T, dir string) string {
	t.Helper()
	b := netcdf.NewBuilder()
	d0, _ := b.AddDim("x", 6)
	d1, _ := b.AddDim("y", 8)
	data := make([]float64, 48)
	for i := range data {
		data[i] = float64(i) * 0.25
	}
	data[7] = math.NaN()
	data[31] = math.Inf(1)
	if err := b.AddVar("v", netcdf.Double, []int{d0, d1}, nil, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "grid.nc")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeNC1D writes a 1-D double variable "series" of n cells valued i*0.5.
func writeNC1D(t *testing.T, dir string, n int) string {
	t.Helper()
	b := netcdf.NewBuilder()
	d0, _ := b.AddDim("x", n)
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	if err := b.AddVar("series", netcdf.Double, []int{d0}, nil, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "series.nc")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCorpus executes the statement corpus on a fresh session configured by
// cfg and returns one rendered outcome (value or error text) per statement.
func runCorpus(t *testing.T, cfg func(*Session), stmts []string) []string {
	t.Helper()
	s := newSession(t)
	defer s.Close()
	cfg(s)
	out := make([]string, len(stmts))
	for i, stmt := range stmts {
		res, err := s.Exec(stmt)
		if err != nil {
			out[i] = "error: " + err.Error()
			continue
		}
		var b strings.Builder
		for _, r := range res {
			if r.HasValue {
				fmt.Fprintf(&b, "%s : %s = %s\n", r.Name, r.Type, r.Value)
			}
		}
		out[i] = b.String()
	}
	return out
}

// TestLazyEagerDifferential holds lazy tiled execution byte-identical to
// eager materialized execution — values, ⊥ diagnostics, and errors — on
// both engines, with a tile size small enough that every query crosses
// many tile boundaries.
func TestLazyEagerDifferential(t *testing.T) {
	dir := t.TempDir()
	grid := writeNC2D(t, dir)
	series := writeNC1D(t, dir, 100)

	stmts := []string{
		fmt.Sprintf(`readval \V using NETCDF at (%q, "v");`, grid),
		fmt.Sprintf(`readval \S using NETCDF2 at (%q, "v", (1,2), (4,6));`, grid),
		fmt.Sprintf(`readval \W using NETCDF at (%q, "series");`, series),
		`V;`,
		`S;`,
		`[[ V[i, j] * 2.0 | \i < 6, \j < 8 ]];`,
		`V[0, 7];`, // the NaN cell: ⊥ with its diagnostic
		`V[3, 7];`,
		`[[ W[i] + W[99 - i] | \i < 100 ]];`,
		`summap(fn \i => W[i] * 0.5)!(gen!100);`,
		`V[9, 9];`, // out-of-bounds subscript: same error lazily
	}

	type mode struct {
		name string
		cfg  func(*Session)
	}
	modes := []mode{
		{"eager-compiled", func(s *Session) { s.SetLazyReads(false) }},
		{"lazy-compiled", func(s *Session) { s.SetTileConfig(8, 0, false) }},
		{"eager-interp", func(s *Session) { s.SetLazyReads(false); s.Engine = EngineInterp }},
		{"lazy-interp", func(s *Session) { s.SetTileConfig(8, 0, false); s.Engine = EngineInterp }},
	}
	results := make([][]string, len(modes))
	for i, m := range modes {
		results[i] = runCorpus(t, m.cfg, stmts)
	}
	for i := 1; i < len(modes); i++ {
		for j := range stmts {
			if results[i][j] != results[0][j] {
				t.Errorf("%s diverges from %s on %q:\n got: %s\nwant: %s",
					modes[i].name, modes[0].name, stmts[j], results[i][j], results[0][j])
			}
		}
	}
}

// TestParallelTabulationSharesTileCache pins the compiled engine to 8
// tabulation workers all faulting tiles of one shared cache; run with
// -race this is the concurrency acceptance test, and the result must stay
// byte-identical to the eager baseline.
func TestParallelTabulationSharesTileCache(t *testing.T) {
	dir := t.TempDir()
	path := writeNC1D(t, dir, 4096)
	read := fmt.Sprintf(`readval \W using NETCDF at (%q, "series");`, path)
	q := `[[ W[i] + W[4095 - i] | \i < 4096 ]];`

	eager := runCorpus(t, func(s *Session) { s.SetLazyReads(false); s.Workers = 8 }, []string{read, q})

	s := newSession(t)
	defer s.Close()
	s.Workers = 8
	s.SetTileConfig(32, 0, false)
	if _, err := s.Exec(read); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%s : %s = %s\n", res[0].Name, res[0].Type, res[0].Value)
	if got != eager[1] {
		t.Errorf("parallel lazy tabulation diverges:\n got: %s\nwant: %s", got, eager[1])
	}
	st := s.TileCache().Stats()
	if st.TileMisses == 0 || st.TileHits == 0 {
		t.Errorf("tile counters hits=%d misses=%d, want both non-zero", st.TileHits, st.TileMisses)
	}
}

// TestOutOfCoreBudgetResidency is the headline acceptance test: a query
// over a variable several times the cache budget completes with peak cache
// residency within budget and a byte-identical result.
func TestOutOfCoreBudgetResidency(t *testing.T) {
	dir := t.TempDir()
	const n = 64 * 64 // 4096 cells, 64 tiles of 64 cells
	path := writeNC1D(t, dir, n)
	read := fmt.Sprintf(`readval \W using NETCDF at (%q, "series");`, path)
	q := `summap(fn \i => W[i])!(gen!4096);`

	eager := runCorpus(t, func(s *Session) { s.SetLazyReads(false) }, []string{read, q})

	cellBytes := int64(unsafe.Sizeof(object.Value{}))
	budget := 4 * 64 * cellBytes // room for 4 of the 64 tiles
	s := newSession(t)
	defer s.Close()
	s.SetTileConfig(64, budget, false)
	if _, err := s.Exec(read); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%s : %s = %s\n", res[0].Name, res[0].Type, res[0].Value)
	if got != eager[1] {
		t.Errorf("out-of-core scan diverges:\n got: %s\nwant: %s", got, eager[1])
	}
	if peak := s.TileCache().PeakResident(); peak > budget {
		t.Errorf("peak residency %d exceeds budget %d", peak, budget)
	}
	st := s.TileCache().Stats()
	if st.Evictions == 0 {
		t.Error("no evictions while scanning 16x the budget")
	}
	rep := s.Trace.Last()
	if rep.IO.TileMisses == 0 || rep.IO.BytesScanned == 0 {
		t.Errorf("report IO misses=%d scanned=%d, want non-zero", rep.IO.TileMisses, rep.IO.BytesScanned)
	}
}

// injectFaulty rebinds the session's handle for path over a FaultyReaderAt
// so tests control the fault schedule of subsequent tile fetches, and
// returns the injector.
func injectFaulty(t *testing.T, s *Session, path string) *netcdf.FaultyReaderAt {
	t.Helper()
	osf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	faulty := netcdf.NewFaultyReaderAt(osf)
	f, err := netcdf.Read(netcdf.NewRetryingReaderAt(faulty, netcdf.RetryConfig{MaxRetries: 2}))
	if err != nil {
		t.Fatal(err)
	}
	s.io.mu.Lock()
	s.io.files[path] = &openFile{f: f, closer: osf}
	s.io.mu.Unlock()
	return faulty
}

// TestLazyFaultMidTile injects mid-scan read faults: a transient fault is
// retried invisibly (byte-identical result, retry counters recorded); a
// persistent fault surfaces as a query error — not a panic, not a cached
// wrong value — and the next query, with the fault gone, succeeds.
func TestLazyFaultMidTile(t *testing.T) {
	dir := t.TempDir()
	path := writeNC1D(t, dir, 256)

	s := newSession(t)
	defer s.Close()
	// One-tile budget, no prefetch: every scan demand-fetches all 16 tiles
	// from storage in order, so the fault schedule lands deterministically
	// mid-scan instead of being absorbed by cache hits.
	cellBytes := int64(unsafe.Sizeof(object.Value{}))
	s.SetTileConfig(16, 16*cellBytes, true)
	faulty := injectFaulty(t, s, path)
	if _, err := s.Exec(fmt.Sprintf(`readval \W using NETCDF at (%q, "series");`, path)); err != nil {
		t.Fatal(err)
	}
	baseline, _, err := s.Query(`summap(fn \i => W[i])!(gen!256)`)
	if err != nil {
		t.Fatal(err)
	}

	// Transient: fail the 3rd and 4th reads after this point, mid-scan.
	faulty.SetSchedule(3, netcdf.Fault{Err: netcdf.ErrInjected}, netcdf.Fault{Short: true})
	v, _, err := s.Query(`summap(fn \i => W[i])!(gen!256)`)
	if err != nil {
		t.Fatalf("transient mid-tile fault not retried: %v", err)
	}
	if v.String() != baseline.String() {
		t.Errorf("value after transient fault = %s, want %s", v, baseline)
	}
	rep := s.Trace.Last()
	if rep.IO.Retries == 0 || rep.IO.Faults == 0 {
		t.Errorf("report retries=%d faults=%d, want non-zero", rep.IO.Retries, rep.IO.Faults)
	}

	// Persistent: more consecutive failures than the retry budget. The
	// query fails with the typed injected error.
	persistent := make([]netcdf.Fault, 16)
	for i := range persistent {
		persistent[i] = netcdf.Fault{Err: netcdf.ErrInjected}
	}
	faulty.SetSchedule(0, persistent...)
	if _, _, err := s.Query(`summap(fn \i => W[i])!(gen!256)`); err == nil {
		t.Fatal("persistent fault produced a value")
	} else if !strings.Contains(err.Error(), "injected") {
		t.Errorf("persistent fault error = %v, want injected I/O fault", err)
	}

	// The failed tiles were not cached: with the schedule cleared the same
	// query refetches and matches the baseline.
	faulty.SetSchedule(0)
	v, _, err = s.Query(`summap(fn \i => W[i])!(gen!256)`)
	if err != nil {
		t.Fatalf("query after fault cleared: %v", err)
	}
	if v.String() != baseline.String() {
		t.Errorf("value after fault cleared = %s, want %s", v, baseline)
	}
}

// TestTruncatedFileFailsAtBind cuts a file inside its data region: the
// lazy readval must fail at bind time (like the eager read), not surface
// a mid-query fetch error later.
func TestTruncatedFileFailsAtBind(t *testing.T) {
	dir := t.TempDir()
	whole := writeNC1D(t, dir, 64)
	data, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.nc")
	if err := os.WriteFile(cut, data[:len(data)-16], 0o644); err != nil {
		t.Fatal(err)
	}
	s := newSession(t)
	defer s.Close()
	_, err = s.Exec(fmt.Sprintf(`readval \W using NETCDF at (%q, "series");`, cut))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("lazy readval of truncated file = %v, want bind-time truncation error", err)
	}
}

// TestValDeclSpillsOverBudget binds an oversized intermediate: the val is
// spilled to disk (lazy, within budget) and reads back byte-identical —
// including ⊥ cell diagnostics (from non-finite NetCDF cells; tabulation
// itself is ⊥-strict, so a mixed array must come from a reader).
func TestValDeclSpillsOverBudget(t *testing.T) {
	dir := t.TempDir()
	b := netcdf.NewBuilder()
	d0, _ := b.AddDim("x", 1000)
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	data[3] = 1.5
	data[700] = math.NaN() // an embedded ⊥ cell with its diagnostic
	if err := b.AddVar("series", netcdf.Double, []int{d0}, nil, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "big.nc")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	// Eager reads: readval binds W as a materialized array with ⊥ cells;
	// `val \X = W;` then carries that oversized eager array into maybeSpill.
	stmts := []string{
		fmt.Sprintf(`readval \W using NETCDF at (%q, "series");`, path),
		`val \X = W;`,
	}
	queries := []string{`X;`, `X[700];`, `X[3];`}

	eager := runCorpus(t, func(s *Session) { s.SetLazyReads(false); s.SetSpill(false) },
		append(append([]string{}, stmts...), queries...))

	cellBytes := int64(unsafe.Sizeof(object.Value{}))
	s := newSession(t)
	defer s.Close()
	s.SetLazyReads(false)
	s.SetTileConfig(64, 128*cellBytes, false) // 1000 cells is well over budget
	for _, stmt := range stmts {
		if _, err := s.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	x, ok := s.Env.Val("X")
	if !ok {
		t.Fatal("X not bound")
	}
	if !x.IsLazy() {
		t.Fatal("oversized val was not spilled to a lazy binding")
	}
	rep := s.Trace.Last()
	if rep.IO.SpillBytesWritten == 0 {
		t.Errorf("val decl report records no spill bytes: %+v", rep.IO)
	}
	for i, q := range queries {
		res, err := s.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got := fmt.Sprintf("%s : %s = %s\n", res[0].Name, res[0].Type, res[0].Value)
		if got != eager[len(stmts)+i] {
			t.Errorf("spilled %s diverges:\n got: %s\nwant: %s", q, got, eager[len(stmts)+i])
		}
	}
	if st := s.TileCache().Stats(); st.SpillBytesRead == 0 {
		t.Error("reading the spilled val recorded no spill bytes read")
	}
}

// TestIOCommand exercises the :io command: status, lazy toggle, retune.
func TestIOCommand(t *testing.T) {
	s := newSession(t)
	defer s.Close()
	ctx := context.Background()
	out, err := s.Command(ctx, ":io")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lazy reads: true", "tile size: 4096", "tiles:", "bytes:"} {
		if !strings.Contains(out, want) {
			t.Errorf(":io missing %q:\n%s", want, out)
		}
	}
	if out, err = s.Command(ctx, ":io lazy off"); err != nil || !strings.Contains(out, "lazy reads: false") {
		t.Errorf(":io lazy off = %q, %v", out, err)
	}
	if out, err = s.Command(ctx, ":io tile 128 65536"); err != nil || !strings.Contains(out, "tile size: 128 cells, budget: 65536") {
		t.Errorf(":io tile = %q, %v", out, err)
	}
	if _, err := s.Command(ctx, ":io bogus"); err == nil {
		t.Error(":io bogus should error")
	}
	out, err = s.Command(ctx, ":help")
	if err != nil || !strings.Contains(out, ":io") {
		t.Errorf(":help missing :io, err=%v", err)
	}
}

// TestExplainAnalyzeTiles checks that :explain analyze over a lazy array
// reports estimated vs. actual tiles.
func TestExplainAnalyzeTiles(t *testing.T) {
	dir := t.TempDir()
	path := writeNC1D(t, dir, 256)
	s := newSession(t)
	defer s.Close()
	s.SetTileConfig(16, 0, false) // 16 tiles
	if _, err := s.Exec(fmt.Sprintf(`readval \W using NETCDF at (%q, "series");`, path)); err != nil {
		t.Fatal(err)
	}
	out, err := s.Command(context.Background(), `:explain analyze [[ W[i] | \i < 256 ]]`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tiles: est 16 (full scan), fetched 16") {
		t.Errorf(":explain analyze missing tile row:\n%s", out)
	}
}

// TestSessionCloseReleasesHandles binds a lazy array, closes the session,
// and checks the handle cache and tile cache are released.
func TestSessionCloseReleasesHandles(t *testing.T) {
	dir := t.TempDir()
	path := writeNC1D(t, dir, 64)
	s := newSession(t)
	if _, err := s.Exec(fmt.Sprintf(`readval \W using NETCDF at (%q, "series");`, path)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query(`W[10]`); err != nil {
		t.Fatal(err)
	}
	if got := s.io.openPaths(); len(got) != 1 {
		t.Fatalf("open paths = %v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.io.openPaths(); len(got) != 0 {
		t.Errorf("paths still open after Close: %v", got)
	}
}

// TestLazyPreviewDoesNotMaterialize pins the REPL-echo behavior: rendering
// a truncated preview of a lazy array (what the REPL prints after every
// readval) must fetch only the cells it shows, and must not memoize the
// whole array into memory — a later scan still reads through the tile
// cache. Before the cell-at-a-time renderer, the first echo materialized
// the entire variable and every subsequent query bypassed the cache.
func TestLazyPreviewDoesNotMaterialize(t *testing.T) {
	dir := t.TempDir()
	path := writeNC1D(t, dir, 4096)
	s := newSession(t)
	defer s.Close()
	cellBytes := int64(unsafe.Sizeof(object.Value{}))
	s.SetTileConfig(64, 4*64*cellBytes, false) // 64 tiles of data, room for 4
	if _, err := s.Exec(fmt.Sprintf(`readval \V using NETCDF at (%q, "series");`, path)); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Env.Val("V")
	if !ok || !v.IsLazy() {
		t.Fatal("V should be lazy after readval")
	}
	if got := v.Pretty(12); !strings.HasPrefix(got, "[[(0):0.0, (1):0.5") || !strings.HasSuffix(got, ", ...]]") {
		t.Fatalf("preview = %s", got)
	}
	st := s.io.cache.Stats()
	if fetched := st.TileMisses + st.Prefetches; fetched > 3 {
		t.Errorf("12-cell preview fetched %d tiles, want at most demand + readahead", fetched)
	}
	if _, _, err := s.Query(`summap(fn \i => V[i])!(gen!4096)`); err != nil {
		t.Fatal(err)
	}
	st = s.io.cache.Stats()
	if fetched := st.TileMisses + st.Prefetches; fetched < 64 {
		t.Errorf("scan after preview fetched %d tiles total, want >= 64 (preview materialized the array?)", fetched)
	}
}
