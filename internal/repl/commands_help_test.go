package repl

import (
	"context"
	"strings"
	"testing"
)

// TestHelpListsEveryCommand walks the command table and asserts every
// registered command (with its usage and summary) appears in :help, so a
// new command can't silently miss the help text.
func TestHelpListsEveryCommand(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	help, err := s.Command(context.Background(), ":help")
	if err != nil {
		t.Fatalf(":help: %v", err)
	}
	names := CommandNames()
	if len(names) == 0 {
		t.Fatal("no commands registered")
	}
	for _, name := range names {
		c := commands[name]
		if !strings.Contains(help, c.usage) {
			t.Errorf(":help is missing the usage line for %s (%q)", name, c.usage)
		}
		if !strings.Contains(help, c.summary) {
			t.Errorf(":help is missing the summary for %s (%q)", name, c.summary)
		}
	}
}

// TestCommandTableComplete pins the commands the ISSUE and docs promise, so
// a table edit can't silently drop one.
func TestCommandTableComplete(t *testing.T) {
	want := []string{":explain", ":profile", ":stats", ":top", ":fleet", ":prof", ":engine", ":prepare", ":exec", ":help"}
	have := map[string]bool{}
	for _, name := range CommandNames() {
		have[name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("command table is missing %s", name)
		}
	}
}

// TestEveryCommandRuns smoke-runs each registered command through the
// dispatcher (with a benign argument where one is required), so table
// entries can't rot unexercised.
func TestEveryCommandRuns(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	args := map[string]string{
		":explain": " 1 + 1",
		":profile": " 1 + 1",
		":exec":    " n=1",
	}
	// :exec runs before :prepare in sorted order; give it a statement.
	if _, err := s.Command(context.Background(), ":prepare $n + 1"); err != nil {
		t.Fatalf(":prepare: %v", err)
	}
	for _, name := range CommandNames() {
		out, err := s.Command(context.Background(), name+args[name])
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if out == "" {
			t.Errorf("%s produced no output", name)
		}
	}
}
