// Package repl drives the AQL query pipeline of section 4.1 of the paper:
//
//	parse -> desugar (figure 2) -> macro substitution -> typecheck ->
//	optimize (section 5) -> evaluate -> complex object
//
// and implements the top-level declaration forms of the read-eval-print
// loop: val, macro, readval, writeval, and bare queries. A Session holds
// the open environment; both "views" of the system — the host-language API
// and the AQL loop — operate on the same Session, as the SML prototype's
// two read-eval-print loops did.
package repl

import (
	"context"
	"fmt"
	"os"
	"runtime/debug"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/desugar"
	"github.com/aqldb/aql/internal/env"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/parser"
	"github.com/aqldb/aql/internal/tile"
	"github.com/aqldb/aql/internal/trace"
	"github.com/aqldb/aql/internal/typecheck"
	"github.com/aqldb/aql/internal/types"
)

// Session is a live AQL session.
type Session struct {
	Env *env.Env
	// SkipOptimizer evaluates un-normalized queries; the benchmark harness
	// uses it to measure the optimizer's effect.
	SkipOptimizer bool
	// MaxSteps, when positive, aborts queries that exceed the step budget;
	// a guard for interactive use. Superseded by Limits.MaxSteps but kept
	// for compatibility; either tripping aborts the query.
	MaxSteps int64
	// Limits bounds the resources of each query evaluated by this session
	// (steps, cells, recursion depth, wall-clock). The zero value is
	// unlimited; violations surface as *eval.ResourceError.
	Limits eval.Limits
	// LastSteps reports the evaluator steps of the most recent query,
	// including queries aborted by a budget, cancellation, or panic.
	LastSteps int64
	// LastCells reports the collection/array cells charged by the most
	// recent query, on the same terms as LastSteps.
	LastCells int64
	// Trace is the session's observability recorder: every top-level
	// statement produces a trace.QueryReport with per-phase wall times,
	// evaluator counters, NetCDF I/O counters and the optimizer rule
	// trace. Created enabled (with no sink) by New; disable with
	// Trace.SetEnabled(false), or point it somewhere with Trace.SetSink.
	Trace *trace.Recorder
	// Engine selects the execution engine for queries: EngineCompiled
	// (the default — slot-resolved closures with parallel tabulation,
	// internal/compile) or EngineInterp (the reference tree-walking
	// interpreter). Set it directly or via SetEngine for validation.
	Engine string
	// Profiling selects operator-level span profiling for evaluations:
	// eval.ProfOff (the default; zero overhead), eval.ProfSampled (coarse
	// operators, one in eval.SampleInterval invocations measured) or
	// eval.ProfFull (every operator, exact attribution). Set it directly or
	// via SetProfiling for name validation.
	Profiling eval.ProfLevel
	// Workers caps the compiled engine's tabulation fan-out; 0 means
	// GOMAXPROCS. Tests pin it to exercise many workers sharing the tile
	// cache regardless of the host's core count.
	Workers int
	// Fleet accumulates cross-query aggregates (latency histogram, phase
	// and I/O totals, rule firing counts, slow-query log); Flight is the
	// ring of the last N full reports. Both are wired into Trace as sinks
	// by New and survive SetTraceSink.
	Fleet  *trace.Aggregator
	Flight *trace.FlightRecorder
	// QErrorThreshold is the q-error above which :explain analyze flags a
	// per-operator misestimate; <= 0 selects trace.DefaultQErrorThreshold.
	QErrorThreshold float64
	// userSink is the caller-provided sink composed alongside Fleet/Flight.
	userSink trace.Sink
	// prepared is the loop's current prepared statement (:prepare / :exec).
	prepared *Prepared
	// io is the session's out-of-core state: open NetCDF handles, the
	// shared tile cache, spill, and per-statement I/O attribution. See
	// iostate.go; released by Close.
	io *ioState
}

// Execution engine names for Session.Engine.
const (
	// EngineInterp is the reference tree-walking interpreter
	// (eval.Evaluator).
	EngineInterp = "interp"
	// EngineCompiled is the compiled engine (compile.Engine): the AST is
	// lowered to slot-resolved Go closures and large tabulations fan out
	// across GOMAXPROCS workers.
	EngineCompiled = "compiled"
)

// PanicError wraps a panic recovered at the session boundary: an internal
// invariant violation (object.Compare on unordered kinds, types.Elem on a
// non-collection, a buggy registered primitive) surfaces as an error that
// carries the query source instead of crashing a process serving other
// queries.
type PanicError struct {
	Src   string // the query source, when known
	Val   any    // the recovered panic value
	Stack []byte // stack trace captured at the recovery point
}

// Error renders the panic with the offending query.
func (e *PanicError) Error() string {
	if e.Src != "" {
		return fmt.Sprintf("aql: internal error evaluating %q: %v", e.Src, e.Val)
	}
	return fmt.Sprintf("aql: internal error: %v", e.Val)
}

// Result is the outcome of one top-level statement, carrying what the
// paper's loop echoes: the declared name, its type, and its value.
type Result struct {
	Kind     string // "val", "macro", "readval", "writeval", "query"
	Name     string
	Type     *types.Type
	Value    object.Value
	HasValue bool
	// Source is the pretty-printed definition, set for macros so the loop
	// can echo what was registered.
	Source string
}

// New returns a session with the standard environment: builtins, the
// standard primitives, the standard macros of section 3 (dom, rng, subseq,
// zip, transpose, ...), the NetCDF readers, and the exchange-format
// reader/writer.
func New() (*Session, error) {
	s := &Session{Env: env.New(), Trace: trace.NewRecorder(nil), Engine: EngineCompiled,
		io: newIOState(tile.Config{})}
	s.registerNetCDF()
	RegisterNetCDFWriter(s.Env)
	RegisterExchange(s.Env)
	RegisterPrint(s.Env, os.Stdout)
	if _, err := s.Exec(StandardMacros); err != nil {
		return nil, fmt.Errorf("repl: standard macros: %w", err)
	}
	if _, err := s.Exec(ODMGMacros); err != nil {
		return nil, fmt.Errorf("repl: ODMG macros: %w", err)
	}
	// The setup statements above went through the instrumented pipeline;
	// drop them so :stats and the metrics endpoint report only user work.
	// The fleet sinks are installed after the reset for the same reason.
	s.Trace.Reset()
	s.Fleet = trace.NewAggregator(0)
	s.Flight = trace.NewFlightRecorder(0)
	s.Trace.SetSink(trace.MultiSink{s.Fleet, s.Flight})
	return s, nil
}

// SetTraceSink points the session's trace reports at sink while keeping the
// fleet aggregator and flight recorder attached; use it instead of calling
// Trace.SetSink directly, which would detach them.
func (s *Session) SetTraceSink(sink trace.Sink) {
	s.userSink = sink
	s.Trace.SetSink(trace.MultiSink{s.Fleet, s.Flight, s.userSink})
}

// SetProfiling selects the session's span-profiling level by name ("off",
// "sampled", "full"), rejecting unknown names.
func (s *Session) SetProfiling(level string) error {
	l, err := eval.ParseProfLevel(level)
	if err != nil {
		return err
	}
	s.Profiling = l
	return nil
}

// StandardMacros defines the derived operators that section 3 lists as
// programmer-convenience macros, written in AQL itself.
const StandardMacros = `
macro \dom = fn \A => gen!(len!A);
macro \rng = fn \A => {x | [_ : \x] <- A};
macro \subseq = fn (\A, \i, \j) => [[ A[i+k] | \k < (j+1)-i ]];
macro \zip = fn (\A, \B) => [[ (A[m], B[m]) | \m < min!{len!A, len!B} ]];
macro \zip_3 = fn (\A, \B, \C) =>
  [[ (A[m], B[m], C[m]) | \m < min!{len!A, len!B, len!C} ]];
macro \reverse = fn \A => [[ A[len!A - i - 1] | \i < len!A ]];
macro \evenpos = fn \A => [[ A[i*2] | \i < len!A / 2 ]];
macro \oddpos = fn \A => [[ A[i*2+1] | \i < len!A / 2 ]];
macro \transpose = fn \M => [[ M[i, j] | \j < dim_2_2!M, \i < dim_1_2!M ]];
macro \proj_col = fn (\M, \c) => [[ M[i, c] | \i < dim_1_2!M ]];
macro \proj_row = fn (\M, \r) => [[ M[r, j] | \j < dim_2_2!M ]];
macro \fst = fn (\a, _) => a;
macro \snd = fn (_, \b) => b;
macro \filter = fn (\P, \X) => {x | \x <- X, P!x};
macro \forall_in = fn (\P, \X) => count!{x | \x <- X, not P!x} = 0;
macro \exists_in = fn (\P, \X) => count!{x | \x <- X, P!x} > 0;
macro \append = fn (\A, \B) =>
  [[ if i < len!A then A[i] else B[i - len!A] | \i < len!A + len!B ]];
macro \sort = fn \X =>
  let val \g = index_1!{(i - 1, x) | (\x, \i) <- rank!X}
  in [[ get!(g[j]) | \j < len!g ]] end;
`

// ODMGMacros simulates the ODMG-93 one-dimensional array operations —
// creating, inserting, updating, subscripting and resizing — in AQL, as
// section 7 claims is easy ("Our array query language can also easily
// simulate all ODMG array primitives"). ODMG arrays are mutable; the
// simulations are the standard persistent versions, each a single
// tabulation.
const ODMGMacros = `
macro \odmg_create = fn (\n, \v) => [[ v | \i < n ]];
macro \odmg_subscript = fn (\A, \i) => A[i];
macro \odmg_update = fn (\A, \i, \v) =>
  [[ if j = i then v else A[j] | \j < len!A ]];
macro \odmg_insert = fn (\A, \i, \v) =>
  [[ if j < i then A[j] else if j = i then v else A[j-1] | \j < len!A + 1 ]];
macro \odmg_remove = fn (\A, \i) =>
  [[ if j < i then A[j] else A[j+1] | \j < len!A - 1 ]];
macro \odmg_resize = fn (\A, \n, \fill) =>
  [[ if i < len!A then A[i] else fill | \i < n ]];
`

// Compile runs parse, desugar, macro expansion and typechecking on a
// single expression, returning the core query and its type. The optimizer
// is NOT applied; see Optimize.
func (s *Session) Compile(src string) (ast.Expr, *types.Type, error) {
	sp := s.Trace.StartPhase(trace.PhaseParse)
	se, err := parser.ParseExpr(src)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	return s.compileSurface(se)
}

func (s *Session) compileSurface(se parser.Expr) (ast.Expr, *types.Type, error) {
	sp := s.Trace.StartPhase(trace.PhaseDesugar)
	core, err := desugar.Expr(se)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	sp = s.Trace.StartPhase(trace.PhaseMacro)
	core = s.Env.ExpandMacros(core)
	sp.End()
	sp = s.Trace.StartPhase(trace.PhaseTypecheck)
	typ, err := typecheck.Infer(core, s.Env.GlobalTypes())
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	return core, typ, nil
}

// Optimize applies the session's optimizer unless SkipOptimizer is set.
// While a trace report is open, the optimizer's rule-firing hook feeds the
// report, and whole-query AST node counts are recorded around the rewrite;
// node counting is skipped entirely otherwise.
func (s *Session) Optimize(core ast.Expr) ast.Expr {
	if s.SkipOptimizer {
		return core
	}
	o := s.Env.Optimizer
	if !s.Trace.Active() {
		return o.Optimize(core)
	}
	sp := s.Trace.StartPhase(trace.PhaseOptimize)
	defer sp.End()
	before := ast.CountNodes(core)
	o.Trace = s.Trace.RuleFired
	defer func() { o.Trace = nil }()
	out := o.Optimize(core)
	s.Trace.RecordNodes(before, ast.CountNodes(out))
	return out
}

// Eval evaluates a core query against the session's globals.
func (s *Session) Eval(core ast.Expr) (object.Value, error) {
	return s.EvalCtx(context.Background(), core)
}

// EvalCtx evaluates a core query under ctx: cancelling ctx or exceeding
// its deadline aborts evaluation with a *eval.ResourceError.
func (s *Session) EvalCtx(ctx context.Context, core ast.Expr) (object.Value, error) {
	return s.evalGuarded(ctx, core, "")
}

// evalGuarded is the session's guardrail boundary: it applies the resource
// limits, threads the context, records step/cell consumption even for
// aborted queries, and converts internal panics into a *PanicError so one
// bad query can never crash a process serving others.
func (s *Session) evalGuarded(ctx context.Context, core ast.Expr, src string) (v object.Value, err error) {
	eng := s.newEngine()
	sp := s.Trace.StartPhase(trace.PhaseEval)
	// Lazy-array tile I/O during this evaluation is attributed to this
	// statement through a per-query collector carried in the context; the
	// long-lived file handles' counters are attributed as watermark deltas.
	ctx, tiles := tile.WithCollector(ctx)
	defer func() {
		c := eng.Counters()
		s.LastSteps = c.Steps
		s.LastCells = c.Cells
		sp.End()
		// Work counters are reported even for aborted or panicking
		// queries — exactly like LastSteps/LastCells.
		s.Trace.RecordEngine(eng.Name())
		s.Trace.RecordEval(trace.EvalCounters{
			Steps:       c.Steps,
			Cells:       c.Cells,
			Tabulations: c.Tabs,
			SetOps:      c.SetOps,
			Iterations:  c.Iters,
		})
		io := TileIOCounters(tiles.Snapshot())
		io.Add(s.io.fileDelta())
		s.Trace.RecordIO(io)
		if sp, ok := eng.(eval.SpanProfiler); ok {
			if root := sp.SpanTree(); root != nil {
				s.Trace.RecordSpans(convertSpan(root), sp.Profiling().String())
			}
		}
		if r := recover(); r != nil {
			v = object.Value{}
			if me, ok := r.(*object.MaterializeError); ok {
				// A lazy array failed to materialize inside an interface
				// with no error return (Compare, String): surface the
				// underlying I/O error, not an internal-error panic.
				err = fmt.Errorf("aql: materializing lazy array for %q: %w", src, me.Err)
				return
			}
			err = &PanicError{Src: src, Val: r, Stack: debug.Stack()}
		}
	}()
	return eng.EvalExpr(ctx, core)
}

// newEngine constructs the session's selected execution engine over the
// current globals and limits. A fresh engine per evaluation keeps counters
// per-query and lets val declarations change what globals later queries
// see, exactly as the interpreter-only path always worked.
func (s *Session) newEngine() eval.Engine {
	if s.Engine == EngineInterp {
		ev := eval.New(s.Env.Globals())
		ev.MaxSteps = s.MaxSteps
		ev.Limits = s.Limits
		ev.SetProfiling(s.Profiling)
		return ev
	}
	e := compile.New(s.Env.Globals())
	e.MaxSteps = s.MaxSteps
	e.Limits = s.Limits
	e.Workers = s.Workers
	e.SetProfiling(s.Profiling)
	return e
}

// convertSpan copies an engine span tree into the trace package's mirror
// type (trace stays decoupled from the engines).
func convertSpan(n *eval.SpanNode) *trace.SpanNode {
	if n == nil {
		return nil
	}
	out := &trace.SpanNode{
		Op:             n.Op,
		Invocations:    n.Invocations,
		Measured:       n.Measured,
		WallCum:        n.WallCum,
		WallSelf:       n.WallSelf,
		Steps:          n.Steps,
		Cells:          n.Cells,
		Tabulations:    n.Tabs,
		SetOps:         n.SetOps,
		Iterations:     n.Iters,
		WorkersDropped: n.WorkersDropped,
	}
	for _, w := range n.Workers {
		out.Workers = append(out.Workers, trace.WorkerSpan{
			Worker: w.Worker, Start: w.Start, End: w.End, Busy: w.Busy, Steps: w.Steps,
		})
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, convertSpan(c))
	}
	return out
}

// SetEngine selects the session's execution engine by name, rejecting
// unknown names.
func (s *Session) SetEngine(name string) error {
	switch name {
	case EngineInterp, EngineCompiled:
		s.Engine = name
		return nil
	}
	return fmt.Errorf("repl: unknown engine %q (have %q, %q)", name, EngineCompiled, EngineInterp)
}

// Query runs the full pipeline on a single expression and binds the result
// to `it`, as the read-eval-print loop does.
func (s *Session) Query(src string) (object.Value, *types.Type, error) {
	return s.QueryCtx(context.Background(), src)
}

// QueryCtx is Query under a context: cancellation and deadlines interrupt
// the evaluation (not just the wait for it).
func (s *Session) QueryCtx(ctx context.Context, src string) (object.Value, *types.Type, error) {
	s.Trace.Begin(src)
	v, typ, err := s.queryInner(ctx, src)
	s.Trace.End(err)
	return v, typ, err
}

func (s *Session) queryInner(ctx context.Context, src string) (object.Value, *types.Type, error) {
	core, typ, err := s.Compile(src)
	if err != nil {
		return object.Value{}, nil, err
	}
	v, err := s.evalGuarded(ctx, s.Optimize(core), src)
	if err != nil {
		return object.Value{}, nil, err
	}
	s.Env.SetVal("it", v, typ)
	return v, typ, nil
}

// Exec runs a sequence of top-level statements.
func (s *Session) Exec(src string) ([]Result, error) {
	return s.ExecCtx(context.Background(), src)
}

// ExecCtx is Exec under a context; a cancelled statement aborts the
// sequence, returning the results completed so far.
func (s *Session) ExecCtx(ctx context.Context, src string) ([]Result, error) {
	stmts, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	var results []Result
	for _, stmt := range stmts {
		r, err := s.execStmt(ctx, stmt)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// execStmt runs one statement under an open trace report labelled with the
// statement's shape, so readval I/O and val-declaration evaluations are
// attributed per statement in :stats and the metrics endpoint.
func (s *Session) execStmt(ctx context.Context, stmt parser.Stmt) (Result, error) {
	s.Trace.Begin(stmtLabel(stmt))
	r, err := s.execStmtInner(ctx, stmt)
	s.Trace.End(err)
	return r, err
}

// stmtLabel renders a compact per-statement label for trace reports.
func stmtLabel(stmt parser.Stmt) string {
	switch n := stmt.(type) {
	case *parser.ValDecl:
		return "val " + n.Name
	case *parser.MacroDecl:
		return "macro " + n.Name
	case *parser.ReadVal:
		return fmt.Sprintf("readval %s using %s", n.Name, n.Reader)
	case *parser.WriteVal:
		return "writeval using " + n.Writer
	case *parser.ExprStmt:
		return parser.Print(n.E)
	}
	return fmt.Sprintf("%T", stmt)
}

func (s *Session) execStmtInner(ctx context.Context, stmt parser.Stmt) (Result, error) {
	switch n := stmt.(type) {
	case *parser.ValDecl:
		core, typ, err := s.compileSurface(n.E)
		if err != nil {
			return Result{}, fmt.Errorf("val %s: %w", n.Name, err)
		}
		v, err := s.evalGuarded(ctx, s.Optimize(core), parser.Print(n.E))
		if err != nil {
			return Result{}, fmt.Errorf("val %s: %w", n.Name, err)
		}
		// Oversized array bindings spill to disk and rebind lazily; the
		// type was computed from the core expression, so typing never
		// touches the cells.
		v = s.maybeSpill(ctx, v)
		s.Env.SetVal(n.Name, v, typ)
		return Result{Kind: "val", Name: n.Name, Type: typ, Value: v, HasValue: true}, nil

	case *parser.MacroDecl:
		core, typ, err := s.compileSurface(n.E)
		if err != nil {
			return Result{}, fmt.Errorf("macro %s: %w", n.Name, err)
		}
		// Macros are substituted un-normalized; the optimizer sees the
		// whole query after substitution (section 4.1's pipeline order).
		s.Env.DefineMacro(n.Name, core, typ)
		return Result{Kind: "macro", Name: n.Name, Type: typ, Source: parser.Print(n.E)}, nil

	case *parser.ReadVal:
		reader, err := s.Env.Reader(n.Reader)
		if err != nil {
			return Result{}, err
		}
		core, _, err := s.compileSurface(n.At)
		if err != nil {
			return Result{}, fmt.Errorf("readval %s: %w", n.Name, err)
		}
		arg, err := s.evalGuarded(ctx, s.Optimize(core), parser.Print(n.At))
		if err != nil {
			return Result{}, fmt.Errorf("readval %s: %w", n.Name, err)
		}
		v, err := reader(arg)
		// Header parsing and eager slab reads happen inside the reader
		// call; attribute that I/O to this statement (lazy tile fetches are
		// attributed later, to the queries that trigger them).
		s.Trace.RecordIO(s.io.fileDelta())
		if err != nil {
			return Result{}, fmt.Errorf("readval %s using %s: %w", n.Name, n.Reader, err)
		}
		typ, err := typecheck.TypeOf(v)
		if err != nil {
			return Result{}, fmt.Errorf("readval %s: %w", n.Name, err)
		}
		s.Env.SetVal(n.Name, v, typ)
		return Result{Kind: "readval", Name: n.Name, Type: typ, Value: v, HasValue: true}, nil

	case *parser.WriteVal:
		writer, err := s.Env.Writer(n.Writer)
		if err != nil {
			return Result{}, err
		}
		dataCore, _, err := s.compileSurface(n.E)
		if err != nil {
			return Result{}, fmt.Errorf("writeval: %w", err)
		}
		data, err := s.evalGuarded(ctx, s.Optimize(dataCore), parser.Print(n.E))
		if err != nil {
			return Result{}, fmt.Errorf("writeval: %w", err)
		}
		atCore, _, err := s.compileSurface(n.At)
		if err != nil {
			return Result{}, fmt.Errorf("writeval: %w", err)
		}
		arg, err := s.evalGuarded(ctx, s.Optimize(atCore), parser.Print(n.At))
		if err != nil {
			return Result{}, fmt.Errorf("writeval: %w", err)
		}
		if err := writer(arg, data); err != nil {
			return Result{}, fmt.Errorf("writeval using %s: %w", n.Writer, err)
		}
		return Result{Kind: "writeval"}, nil

	case *parser.ExprStmt:
		core, typ, err := s.compileSurface(n.E)
		if err != nil {
			return Result{}, err
		}
		v, err := s.evalGuarded(ctx, s.Optimize(core), parser.Print(n.E))
		if err != nil {
			return Result{}, err
		}
		// Bind `it`, as the SML-style loop does.
		s.Env.SetVal("it", v, typ)
		return Result{Kind: "query", Name: "it", Type: typ, Value: v, HasValue: true}, nil
	}
	return Result{}, fmt.Errorf("repl: unhandled statement %T", stmt)
}
