package repl

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/desugar"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/parser"
	"github.com/aqldb/aql/internal/trace"
	"github.com/aqldb/aql/internal/typecheck"
	"github.com/aqldb/aql/internal/types"
)

// BindError is an argument-binding failure of a prepared execution: a
// placeholder left unbound, an argument naming no placeholder, or a value
// whose type does not unify with the placeholder's inferred type. It is a
// client error, raised before any evaluation work happens.
type BindError struct {
	Name string // the placeholder or argument name, without the $
	Msg  string
}

func (e *BindError) Error() string { return "bind: " + e.Msg }

// Prepared is a parameterized statement compiled once and executable many
// times with different argument frames. The template is carried through the
// whole pipeline — parse, desugar, macro expansion, typecheck (placeholders
// are typed here; a mismatched later bind is a typed error, not an
// evaluation failure), optimization, and (on the compiled engine) lowering
// to a Program whose placeholders read per-execution argument slots — so
// repeated executions pay only binding and evaluation.
//
// A Prepared tracks the environment epoch it was compiled under; executing
// after a `val` rebinding (or reader registration) transparently re-prepares
// against the current globals, exactly as the server's plan cache stops
// serving plans from older epochs.
type Prepared struct {
	s *Session

	mu sync.Mutex
	// Text is the source template, verbatim.
	Text string
	// Core is the optimized core query the executions evaluate.
	Core ast.Expr
	// Type is the template's inferred result type.
	Type *types.Type
	// Params maps each $name placeholder to its inferred type; Exec unifies
	// every submitted argument against these.
	Params map[string]*types.Type

	prog  *compile.Program // nil on the interpreter engine
	epoch uint64
}

// Prepare compiles src as a parameterized statement. Placeholders ($name)
// may appear anywhere a scalar expression may; a template with no
// placeholders is simply a statement prepared for re-execution.
func (s *Session) Prepare(src string) (*Prepared, error) {
	s.Trace.Begin(":prepare " + src)
	p, err := s.prepare(src)
	s.Trace.End(err)
	return p, err
}

// prepare is the trace-phase-instrumented pipeline of Prepare, shared with
// Exec's epoch-triggered re-preparation.
func (s *Session) prepare(src string) (*Prepared, error) {
	sp := s.Trace.StartPhase(trace.PhaseParse)
	se, err := parser.ParseExpr(src)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = s.Trace.StartPhase(trace.PhaseDesugar)
	core, err := desugar.Expr(se)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = s.Trace.StartPhase(trace.PhaseMacro)
	core = s.Env.ExpandMacros(core)
	sp.End()
	sp = s.Trace.StartPhase(trace.PhaseTypecheck)
	typ, params, err := typecheck.InferParams(core, s.Env.GlobalTypes())
	sp.End()
	if err != nil {
		return nil, err
	}
	opt := s.Optimize(core)
	p := &Prepared{s: s, Text: src, Core: opt, Type: typ, Params: params, epoch: s.Env.Epoch()}
	if s.Engine != EngineInterp {
		p.prog = compile.NewProgram(opt, s.Env.Globals(), s.Limits)
	}
	return p, nil
}

// ParamNames returns the statement's placeholder names, sorted.
func (p *Prepared) ParamNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.Params))
	for name := range p.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Exec runs the prepared statement with args as its argument frame and binds
// the result to `it`, as a bare query does. Binding is strict — every
// placeholder must be bound, every argument must name a placeholder, and
// every value must unify with the placeholder's inferred type — with
// failures reported as *BindError before evaluation starts. Concurrent Exec
// calls on one Prepared are independent executions of the shared plan.
func (p *Prepared) Exec(ctx context.Context, args map[string]object.Value) (object.Value, error) {
	s := p.s
	core, prog, typ, err := p.snapshot(args)
	if err != nil {
		return object.Value{}, err
	}
	s.Trace.Begin(p.Text)
	v, err := p.execGuarded(ctx, core, prog, args)
	s.Trace.End(err)
	if err != nil {
		return object.Value{}, err
	}
	s.Env.SetVal("it", v, typ)
	return v, nil
}

// snapshot re-prepares if the environment moved past the plan's epoch, then
// binds args against the (current) parameter types and returns the plan
// pieces one execution needs, all under the statement's lock.
func (p *Prepared) snapshot(args map[string]object.Value) (ast.Expr, *compile.Program, *types.Type, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.s.Env.Epoch(); e != p.epoch {
		np, err := p.s.prepare(p.Text)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("re-preparing after environment change: %w", err)
		}
		p.Core, p.Type, p.Params, p.prog, p.epoch = np.Core, np.Type, np.Params, np.prog, np.epoch
	}
	if err := bindCheck(p.Params, args); err != nil {
		return nil, nil, nil, err
	}
	return p.Core, p.prog, p.Type, nil
}

// bindCheck enforces strict binding of args against the inferred parameter
// types. One substitution is shared across all placeholders of the call, so
// placeholders whose types share a type variable (the two sides of `$a = $b`)
// must be bound at consistent types.
func bindCheck(params map[string]*types.Type, args map[string]object.Value) error {
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := args[name]; !ok {
			return &BindError{Name: name,
				Msg: fmt.Sprintf("missing argument for parameter $%s", name)}
		}
	}
	extra := make([]string, 0)
	for name := range args {
		if _, ok := params[name]; !ok {
			extra = append(extra, name)
		}
	}
	if len(extra) > 0 {
		sort.Strings(extra)
		return &BindError{Name: extra[0],
			Msg: fmt.Sprintf("argument %q does not name a parameter of the query", extra[0])}
	}
	sub := types.Subst{}
	for _, name := range names {
		at, err := typecheck.TypeOf(args[name])
		if err != nil {
			return &BindError{Name: name, Msg: fmt.Sprintf("argument $%s: %v", name, err)}
		}
		want := sub.Apply(params[name])
		if err := sub.Unify(want, at); err != nil {
			return &BindError{Name: name,
				Msg: fmt.Sprintf("argument $%s: expected %s, got %s", name, want, at)}
		}
	}
	return nil
}

// execGuarded is one prepared execution under the session's guardrails:
// resource limits, counter recording (even for aborted executions) and the
// panic boundary, mirroring evalGuarded. The compiled engine executes the
// shared Program with args as the execution's argument frame; the
// interpreter threads args through the evaluator's Params field.
func (p *Prepared) execGuarded(ctx context.Context, core ast.Expr, prog *compile.Program, args map[string]object.Value) (v object.Value, err error) {
	s := p.s
	sp := s.Trace.StartPhase(trace.PhaseEval)
	var cnt eval.Counters
	defer func() {
		s.LastSteps = cnt.Steps
		s.LastCells = cnt.Cells
		sp.End()
		s.Trace.RecordEval(trace.EvalCounters{
			Steps:       cnt.Steps,
			Cells:       cnt.Cells,
			Tabulations: cnt.Tabs,
			SetOps:      cnt.SetOps,
			Iterations:  cnt.Iters,
		})
		if r := recover(); r != nil {
			v = object.Value{}
			err = &PanicError{Src: p.Text, Val: r, Stack: debug.Stack()}
		}
	}()
	if prog != nil {
		s.Trace.RecordEngine(EngineCompiled)
		v, cnt, err = prog.Execute(ctx, compile.ExecOpts{
			Limits: s.Limits, MaxSteps: s.MaxSteps, Args: args,
		})
		return v, err
	}
	ev := eval.New(s.Env.Globals())
	ev.MaxSteps = s.MaxSteps
	ev.Limits = s.Limits
	ev.Params = args
	s.Trace.RecordEngine(EngineInterp)
	v, err = ev.EvalExpr(ctx, core)
	cnt = ev.Counters()
	return v, err
}
