package repl

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"context"

	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/tile"
	"github.com/aqldb/aql/internal/trace"
)

// ioState is the session's out-of-core I/O machinery: the per-session cache
// of open NetCDF files (opened once, read lazily for the session's
// lifetime, closed by Session.Close), the shared tile cache, and the
// watermark bookkeeping that attributes cumulative file counters to
// statements as deltas.
type ioState struct {
	mu    sync.Mutex
	files map[string]*openFile
	// watermark holds the last reported cumulative file counters; deltas
	// against it attribute I/O to the statement that caused it without
	// double-counting across the long-lived handles. Each increment is
	// reported exactly once, so fleet totals stay exact even when
	// concurrent queries blur per-statement attribution.
	watermark trace.IOCounters

	cache *tile.Cache
	// lazy selects on-demand tiled reads for the NetCDF readers; when
	// false the readers materialize whole slabs exactly as they
	// historically did (still through the session file cache).
	lazy bool
	// spill enables spilling oversized val bindings to the tile cache's
	// spill file.
	spill bool
}

type openFile struct {
	f      *netcdf.File
	closer *os.File
}

func newIOState(cfg tile.Config) *ioState {
	return &ioState{
		files: make(map[string]*openFile),
		cache: tile.New(cfg),
		lazy:  true,
		spill: true,
	}
}

// open returns the session's handle for path, opening (and retaining) it on
// first use. The reader stack is wrapped in a RetryingReaderAt by default,
// so every session read gets transient-failure retry and per-call context
// cancellation (ReadAtCtx) during tile fetches.
func (io *ioState) open(path string) (*netcdf.File, error) {
	io.mu.Lock()
	defer io.mu.Unlock()
	if of, ok := io.files[path]; ok {
		return of.f, nil
	}
	osf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := netcdf.NewRetryingReaderAt(osf, netcdf.RetryConfig{})
	f, err := netcdf.Read(r)
	if err != nil {
		osf.Close()
		return nil, err
	}
	io.files[path] = &openFile{f: f, closer: osf}
	return f, nil
}

// fileDelta returns the growth of the cumulative file counters since the
// last call and advances the watermark.
func (io *ioState) fileDelta() trace.IOCounters {
	io.mu.Lock()
	defer io.mu.Unlock()
	var cum trace.IOCounters
	for _, of := range io.files {
		st := of.f.IOStats()
		cum.Add(trace.IOCounters{
			SlabReads:   st.SlabReads,
			BytesRead:   st.BytesRead,
			CacheHits:   st.CacheHits,
			CacheMisses: st.CacheMisses,
			Prefetches:  st.Prefetches,
			Retries:     st.Retries,
			Faults:      st.Faults,
		})
	}
	delta := trace.IOCounters{
		SlabReads:   cum.SlabReads - io.watermark.SlabReads,
		BytesRead:   cum.BytesRead - io.watermark.BytesRead,
		CacheHits:   cum.CacheHits - io.watermark.CacheHits,
		CacheMisses: cum.CacheMisses - io.watermark.CacheMisses,
		Prefetches:  cum.Prefetches - io.watermark.Prefetches,
		Retries:     cum.Retries - io.watermark.Retries,
		Faults:      cum.Faults - io.watermark.Faults,
	}
	io.watermark = cum
	return delta
}

// close releases all open files and the tile cache (including its spill
// file). Lazy arrays created by this session must not be read afterwards.
func (io *ioState) close() error {
	io.mu.Lock()
	defer io.mu.Unlock()
	var first error
	for _, of := range io.files {
		if err := of.closer.Close(); err != nil && first == nil {
			first = err
		}
	}
	io.files = make(map[string]*openFile)
	if err := io.cache.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// openPaths lists the session's open NetCDF files, sorted.
func (io *ioState) openPaths() []string {
	io.mu.Lock()
	defer io.mu.Unlock()
	paths := make([]string, 0, len(io.files))
	for p := range io.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// TileIOCounters converts a tile counter snapshot into the trace mirror.
// The server uses it to fold per-request collector snapshots into its own
// recorder, exactly as evalGuarded does for session statements.
func TileIOCounters(c tile.Counters) trace.IOCounters {
	return trace.IOCounters{
		TileHits:           c.TileHits,
		TileMisses:         c.TileMisses,
		TilePrefetches:     c.Prefetches,
		TilePrefetchUseful: c.PrefetchUseful,
		BytesScanned:       c.BytesScanned,
		BytesReturned:      c.BytesReturned,
		SpillBytesWritten:  c.SpillBytesWritten,
		SpillBytesRead:     c.SpillBytesRead,
	}
}

// IOFileDelta returns the growth of the session's cumulative NetCDF file
// counters since the last delta and advances the shared watermark. The
// server calls it once per request so each increment lands on exactly one
// report; under concurrent requests the attribution is approximate but the
// fleet totals stay exact.
func (s *Session) IOFileDelta() trace.IOCounters { return s.io.fileDelta() }

// IOFileTotals returns the cumulative NetCDF file counters across the
// session's open handles without advancing the watermark — the live-totals
// view that /metrics exports.
func (s *Session) IOFileTotals() trace.IOCounters {
	s.io.mu.Lock()
	defer s.io.mu.Unlock()
	var cum trace.IOCounters
	for _, of := range s.io.files {
		st := of.f.IOStats()
		cum.Add(trace.IOCounters{
			SlabReads:   st.SlabReads,
			BytesRead:   st.BytesRead,
			CacheHits:   st.CacheHits,
			CacheMisses: st.CacheMisses,
			Prefetches:  st.Prefetches,
			Retries:     st.Retries,
			Faults:      st.Faults,
		})
	}
	return cum
}

// Close releases the session's out-of-core resources: open NetCDF handles,
// the tile cache, and the spill file. Call it when the session ends; lazy
// values bound in the environment must not be read afterwards.
func (s *Session) Close() error {
	if s.io == nil {
		return nil
	}
	return s.io.close()
}

// TileCache exposes the session's shared tile cache (stats, residency) for
// commands, tests and benchmarks.
func (s *Session) TileCache() *tile.Cache { return s.io.cache }

// SetTileConfig replaces the session's tile cache with one of the given
// tile size (cells) and budget (bytes); zero values select the defaults.
// Call it before data is read: lazy arrays bound under the previous cache
// keep reading through it, so reconfiguring mid-session splits the budget
// accounting until those bindings are dropped.
func (s *Session) SetTileConfig(tileCells int, budget int64, noPrefetch bool) {
	s.io.mu.Lock()
	defer s.io.mu.Unlock()
	old := s.io.cache
	s.io.cache = tile.New(tile.Config{TileCells: tileCells, Budget: budget, NoPrefetch: noPrefetch})
	_ = old // previous cache stays alive for values still backed by it
}

// SetLazyReads selects lazy (tiled, on-demand) NetCDF reads; passing false
// restores whole-slab materialization. Both modes share the session file
// cache. Lazy is the default.
func (s *Session) SetLazyReads(lazy bool) {
	s.io.mu.Lock()
	defer s.io.mu.Unlock()
	s.io.lazy = lazy
}

// LazyReads reports whether the session's NetCDF readers are lazy.
func (s *Session) LazyReads() bool {
	s.io.mu.Lock()
	defer s.io.mu.Unlock()
	return s.io.lazy
}

// SetSpill enables or disables spilling oversized val bindings.
func (s *Session) SetSpill(on bool) {
	s.io.mu.Lock()
	defer s.io.mu.Unlock()
	s.io.spill = on
}

// maybeSpill spills an eager array binding whose accounted in-memory size
// exceeds the tile-cache budget, binding a lazy spill-backed value in its
// place. Spill failures (unencodable cells, disk errors) fall back to the
// eager value: spilling is an optimization, never a semantics change.
// Counters are folded into the open trace report.
func (s *Session) maybeSpill(ctx context.Context, v object.Value) object.Value {
	s.io.mu.Lock()
	spill, cache := s.io.spill, s.io.cache
	s.io.mu.Unlock()
	if !spill || v.Kind != object.KArray || v.IsLazy() || !cache.OverBudget(v.Size()) {
		return v
	}
	ctx, col := tile.WithCollector(ctx)
	spilled, err := cache.SpillArray(ctx, v)
	s.Trace.RecordIO(TileIOCounters(col.Snapshot()))
	if err != nil {
		return v
	}
	return spilled
}

// IOStatus is a human-readable summary of the session's out-of-core state
// for the :io command.
func (s *Session) IOStatus() string {
	cache := s.TileCache()
	cfg := cache.Config()
	st := cache.Stats()
	out := fmt.Sprintf("lazy reads: %v\ntile size: %d cells, budget: %d bytes\nresident: %d bytes (peak %d)\n",
		s.LazyReads(), cfg.TileCells, cfg.Budget, cache.Resident(), cache.PeakResident())
	out += fmt.Sprintf("tiles: %d hits, %d misses, %d prefetched (%d useful), %d evicted\n",
		st.TileHits, st.TileMisses, st.Prefetches, st.PrefetchUseful, st.Evictions)
	out += fmt.Sprintf("bytes: %d scanned, %d returned, spill %d written / %d read\n",
		st.BytesScanned, st.BytesReturned, st.SpillBytesWritten, st.SpillBytesRead)
	if paths := s.io.openPaths(); len(paths) > 0 {
		out += "open files:\n"
		for _, p := range paths {
			out += "  " + p + "\n"
		}
	}
	return out
}
