package netcdf

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// buildTestFile writes a 20x5 double variable "t" and returns its path and
// row-major data.
func buildTestFile(t *testing.T) (string, []float64) {
	t.Helper()
	nb := NewBuilder()
	d0, _ := nb.AddDim("x", 20)
	d1, _ := nb.AddDim("y", 5)
	data := make([]float64, 20*5)
	for i := range data {
		data[i] = float64(i)
	}
	if err := nb.AddVar("t", Double, []int{d0, d1}, nil, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "io.nc")
	if err := nb.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestIOStatsSlabCounters(t *testing.T) {
	path, data := buildTestFile(t)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if st := f.IOStats(); st != (IOStats{}) {
		t.Fatalf("fresh file has stats %+v", st)
	}
	if _, err := f.ReadAll("t"); err != nil {
		t.Fatal(err)
	}
	st := f.IOStats()
	if st.SlabReads != 1 {
		t.Fatalf("SlabReads = %d, want 1", st.SlabReads)
	}
	if want := int64(len(data) * 8); st.BytesRead != want {
		t.Fatalf("BytesRead = %d, want %d", st.BytesRead, want)
	}

	// A second, partial read accumulates.
	if _, err := f.ReadSlab("t", []int{0, 0}, []int{3, 5}); err != nil {
		t.Fatal(err)
	}
	st = f.IOStats()
	if st.SlabReads != 2 {
		t.Fatalf("SlabReads = %d, want 2", st.SlabReads)
	}
	if want := int64((len(data) + 3*5) * 8); st.BytesRead != want {
		t.Fatalf("BytesRead = %d, want %d", st.BytesRead, want)
	}

	// Empty slabs are not counted as reads.
	if _, err := f.ReadSlab("t", []int{0, 0}, []int{0, 5}); err != nil {
		t.Fatal(err)
	}
	if got := f.IOStats().SlabReads; got != 2 {
		t.Fatalf("empty slab counted: SlabReads = %d", got)
	}
}

func TestIOStatsCollectsCacheCounters(t *testing.T) {
	path, _ := buildTestFile(t)
	f, err := OpenCached(path, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if _, err := f.ReadAll("t"); err != nil {
			t.Fatal(err)
		}
	}
	st := f.IOStats()
	if st.CacheMisses == 0 {
		t.Fatalf("no cache misses recorded: %+v", st)
	}
	if st.CacheHits == 0 {
		t.Fatalf("repeated reads produced no cache hits: %+v", st)
	}
	if st.CacheHits != f.Cache.Stats.Hits || st.CacheMisses != f.Cache.Stats.Misses {
		t.Fatalf("IOStats %+v disagrees with Cache.Stats %+v", st, f.Cache.Stats)
	}
}

func TestIOStatsCollectsRetryAndFaultCounters(t *testing.T) {
	path, _ := buildTestFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Schedule one injected failure on the first data read (header reads
	// happen during parse, before we install the schedule — so parse on a
	// clean stack, then retrofit faults by building the stack first and
	// scheduling only beyond the header reads is fragile; instead, build
	// the stack with a generous clean prefix).
	faulty := NewFaultyReaderAt(bytes.NewReader(raw))
	retrying := NewRetryingReaderAt(faulty, RetryConfig{MaxRetries: 3, BaseDelay: time.Microsecond})
	f, err := Read(retrying)
	if err != nil {
		t.Fatal(err)
	}
	// Inject failures for the next two reads, now that the header is
	// parsed.
	faulty.mu.Lock()
	faulty.schedule = make([]Fault, faulty.calls, faulty.calls+2)
	faulty.schedule = append(faulty.schedule, Fault{Err: ErrInjected}, Fault{Err: ErrInjected})
	faulty.mu.Unlock()

	if _, err := f.ReadAll("t"); err != nil {
		t.Fatal(err)
	}
	st := f.IOStats()
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if st.Faults != 2 {
		t.Fatalf("Faults = %d, want 2", st.Faults)
	}
	if st.SlabReads != 1 || st.BytesRead == 0 {
		t.Fatalf("slab counters missing through wrapper stack: %+v", st)
	}
}

func TestIOStatsAdd(t *testing.T) {
	a := IOStats{SlabReads: 1, BytesRead: 10, CacheHits: 2}
	a.Add(IOStats{SlabReads: 2, BytesRead: 5, Retries: 1, Faults: 3})
	want := IOStats{SlabReads: 3, BytesRead: 15, CacheHits: 2, Retries: 1, Faults: 3}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}
