package netcdf

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

// buildBytes serializes a builder to a byte slice.
func buildBytes(t *testing.T, b *Builder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func parse(t *testing.T, data []byte) *File {
	t.Helper()
	f, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return f
}

func TestGoldenMinimalFile(t *testing.T) {
	// A file with one dimension x(2) and one int variable v(x) = {7, 8},
	// assembled by hand from the classic format specification.
	var want []byte
	w32 := func(v uint32) { want = binary.BigEndian.AppendUint32(want, v) }
	want = append(want, 'C', 'D', 'F', 1)
	w32(0)    // numrecs
	w32(0x0A) // NC_DIMENSION
	w32(1)    // 1 dim
	w32(1)    // name length
	want = append(want, 'x', 0, 0, 0)
	w32(2) // dim length
	w32(0) // gatt ABSENT
	w32(0)
	w32(0x0B) // NC_VARIABLE
	w32(1)    // 1 var
	w32(1)    // name length
	want = append(want, 'v', 0, 0, 0)
	w32(1) // ndims
	w32(0) // dimid 0
	w32(0) // vatt ABSENT
	w32(0)
	w32(4) // NC_INT
	w32(8) // vsize
	begin := uint32(len(want) + 4)
	w32(begin)
	w32(7)
	w32(8)

	b := NewBuilder()
	x, err := b.AddDim("x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddVar("v", Int, []int{x}, nil, []float64{7, 8}); err != nil {
		t.Fatal(err)
	}
	got := buildBytes(t, b)
	if !bytes.Equal(got, want) {
		t.Errorf("writer bytes differ from the specification:\n got  %x\n want %x", got, want)
	}
	// And the reader parses the hand-built bytes.
	f := parse(t, want)
	slab, err := f.ReadAll("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(slab.Values) != 2 || slab.Values[0] != 7 || slab.Values[1] != 8 {
		t.Errorf("values = %v", slab.Values)
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, typ := range []Type{Byte, Short, Int, Float, Double} {
		b := NewBuilder()
		d, _ := b.AddDim("n", 5)
		vals := []float64{1, -2, 3, -4, 5}
		if typ == Byte {
			vals = []float64{1, -2, 3, -4, 5}
		}
		if err := b.AddVar("v", typ, []int{d}, nil, vals); err != nil {
			t.Fatal(err)
		}
		f := parse(t, buildBytes(t, b))
		slab, err := f.ReadAll("v")
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		for i, want := range vals {
			if slab.Values[i] != want {
				t.Errorf("%s[%d] = %v, want %v", typ, i, slab.Values[i], want)
			}
		}
	}
}

func TestRoundTripChar(t *testing.T) {
	b := NewBuilder()
	d, _ := b.AddDim("len", 8)
	if err := b.AddCharVar("s", []int{d}, nil, []byte("NYC temp")); err != nil {
		t.Fatal(err)
	}
	f := parse(t, buildBytes(t, b))
	slab, err := f.ReadAll("s")
	if err != nil {
		t.Fatal(err)
	}
	if string(slab.Text) != "NYC temp" {
		t.Errorf("text = %q", slab.Text)
	}
}

func TestRoundTripMultiDim(t *testing.T) {
	b := NewBuilder()
	ti, _ := b.AddDim("time", 4)
	la, _ := b.AddDim("lat", 3)
	lo, _ := b.AddDim("lon", 2)
	data := make([]float64, 4*3*2)
	for i := range data {
		data[i] = float64(i) / 4
	}
	if err := b.AddVar("temp", Double, []int{ti, la, lo}, nil, data); err != nil {
		t.Fatal(err)
	}
	f := parse(t, buildBytes(t, b))
	slab, err := f.ReadAll("temp")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range data {
		if slab.Values[i] != want {
			t.Fatalf("temp[%d] = %v, want %v", i, slab.Values[i], want)
		}
	}
}

func TestHyperslab(t *testing.T) {
	// temp[t][y] = 10*t + y over 5x4; read the slab t in [1,4), y in [2,4).
	b := NewBuilder()
	ti, _ := b.AddDim("t", 5)
	yi, _ := b.AddDim("y", 4)
	data := make([]float64, 20)
	for t2 := 0; t2 < 5; t2++ {
		for y := 0; y < 4; y++ {
			data[t2*4+y] = float64(10*t2 + y)
		}
	}
	if err := b.AddVar("temp", Float, []int{ti, yi}, nil, data); err != nil {
		t.Fatal(err)
	}
	f := parse(t, buildBytes(t, b))
	slab, err := f.ReadSlab("temp", []int{1, 2}, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{12, 13, 22, 23, 32, 33}
	if len(slab.Values) != len(want) {
		t.Fatalf("slab size %d, want %d", len(slab.Values), len(want))
	}
	for i := range want {
		if slab.Values[i] != want[i] {
			t.Errorf("slab[%d] = %v, want %v", i, slab.Values[i], want[i])
		}
	}
	if slab.Shape[0] != 3 || slab.Shape[1] != 2 {
		t.Errorf("shape = %v", slab.Shape)
	}
}

func TestHyperslabErrors(t *testing.T) {
	b := NewBuilder()
	d, _ := b.AddDim("n", 3)
	if err := b.AddVar("v", Int, []int{d}, nil, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f := parse(t, buildBytes(t, b))
	if _, err := f.ReadSlab("v", []int{2}, []int{2}); err == nil {
		t.Error("out-of-range slab should error")
	}
	if _, err := f.ReadSlab("v", []int{0, 0}, []int{1, 1}); err == nil {
		t.Error("rank mismatch should error")
	}
	if _, err := f.ReadSlab("nope", []int{0}, []int{1}); err == nil {
		t.Error("missing variable should error")
	}
}

func TestRecordVariables(t *testing.T) {
	// Two record variables: interleaving exercises the record block layout.
	b := NewBuilder()
	ti, _ := b.AddRecordDim("time", 3)
	la, _ := b.AddDim("lat", 2)
	temp := []float64{1, 2, 3, 4, 5, 6} // 3 records x 2
	wind := []float64{10, 20, 30}       // 3 records x scalar-per-record
	if err := b.AddVar("temp", Double, []int{ti, la}, nil, temp); err != nil {
		t.Fatal(err)
	}
	if err := b.AddVar("wind", Short, []int{ti}, nil, wind); err != nil {
		t.Fatal(err)
	}
	f := parse(t, buildBytes(t, b))
	if f.NumRecs != 3 {
		t.Fatalf("numrecs = %d", f.NumRecs)
	}
	slab, err := f.ReadAll("temp")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range temp {
		if slab.Values[i] != want {
			t.Errorf("temp[%d] = %v, want %v", i, slab.Values[i], want)
		}
	}
	wslab, err := f.ReadAll("wind")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range wind {
		if wslab.Values[i] != want {
			t.Errorf("wind[%d] = %v, want %v", i, wslab.Values[i], want)
		}
	}
	// A record-sliced hyperslab.
	mid, err := f.ReadSlab("temp", []int{1, 0}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Values[0] != 3 || mid.Values[1] != 4 {
		t.Errorf("record slab = %v", mid.Values)
	}
}

func TestAttributes(t *testing.T) {
	b := NewBuilder()
	b.AddGlobalAttr(Attr{Name: "title", Type: Char, Values: "June temperatures"})
	b.AddGlobalAttr(Attr{Name: "version", Type: Int, Values: []int32{3}})
	d, _ := b.AddDim("n", 1)
	attrs := []Attr{
		{Name: "units", Type: Char, Values: "degF"},
		{Name: "valid_range", Type: Double, Values: []float64{-100, 150}},
	}
	if err := b.AddVar("temp", Double, []int{d}, attrs, []float64{72}); err != nil {
		t.Fatal(err)
	}
	f := parse(t, buildBytes(t, b))
	if len(f.GlobalAttr) != 2 || f.GlobalAttr[0].Name != "title" {
		t.Fatalf("global attrs = %+v", f.GlobalAttr)
	}
	if f.GlobalAttr[0].Values.(string) != "June temperatures" {
		t.Errorf("title = %v", f.GlobalAttr[0].Values)
	}
	v, err := f.Var("temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Attrs) != 2 || v.Attrs[0].Values.(string) != "degF" {
		t.Errorf("var attrs = %+v", v.Attrs)
	}
	vr := v.Attrs[1].Values.([]float64)
	if vr[0] != -100 || vr[1] != 150 {
		t.Errorf("valid_range = %v", vr)
	}
}

func TestVersion2(t *testing.T) {
	b := NewBuilder()
	if err := b.SetVersion(2); err != nil {
		t.Fatal(err)
	}
	d, _ := b.AddDim("n", 3)
	if err := b.AddVar("v", Int, []int{d}, nil, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data := buildBytes(t, b)
	if data[3] != 2 {
		t.Fatalf("version byte = %d", data[3])
	}
	f := parse(t, data)
	if f.Version != 2 {
		t.Fatalf("parsed version = %d", f.Version)
	}
	slab, err := f.ReadAll("v")
	if err != nil {
		t.Fatal(err)
	}
	if slab.Values[2] != 3 {
		t.Errorf("values = %v", slab.Values)
	}
}

func TestOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.nc")
	b := NewBuilder()
	d, _ := b.AddDim("n", 2)
	if err := b.AddVar("v", Double, []int{d}, nil, []float64{1.5, 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	slab, err := f.ReadAll("v")
	if err != nil {
		t.Fatal(err)
	}
	if slab.Values[0] != 1.5 || slab.Values[1] != 2.5 {
		t.Errorf("values = %v", slab.Values)
	}
}

func TestBadInput(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not netcdf"),
		{'C', 'D', 'F', 9, 0, 0, 0, 0},
		{'C', 'D', 'F', 1}, // truncated
	}
	for _, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("Read(%q) should error", data)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddDim("n", 0); err == nil {
		t.Error("zero-length fixed dim should error")
	}
	if _, err := b.AddRecordDim("t", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddRecordDim("t2", 2); err == nil {
		t.Error("second record dim should error")
	}
	d, _ := b.AddDim("n", 2)
	if err := b.AddVar("v", Int, []int{d}, nil, []float64{1}); err == nil {
		t.Error("wrong data size should error")
	}
	if err := b.AddVar("v", Char, []int{d}, nil, nil); err == nil {
		t.Error("AddVar with Char should error")
	}
	if err := b.AddVar("v", Int, []int{9}, nil, nil); err == nil {
		t.Error("bad dim id should error")
	}
	if err := b.SetVersion(3); err == nil {
		t.Error("bad version should error")
	}
}

func TestPropRoundTripRandomSlabs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		b := NewBuilder()
		rank := rng.Intn(3) + 1
		shape := make([]int, rank)
		dims := make([]int, rank)
		size := 1
		for d := 0; d < rank; d++ {
			shape[d] = rng.Intn(5) + 1
			size *= shape[d]
			id, err := b.AddDim(string(rune('a'+d)), shape[d])
			if err != nil {
				t.Fatal(err)
			}
			dims[d] = id
		}
		data := make([]float64, size)
		for i := range data {
			data[i] = math.Round(rng.Float64()*1000) / 8
		}
		if err := b.AddVar("v", Double, dims, nil, data); err != nil {
			t.Fatal(err)
		}
		f := parse(t, buildBytes(t, b))
		// Random subslab.
		start := make([]int, rank)
		count := make([]int, rank)
		for d := 0; d < rank; d++ {
			start[d] = rng.Intn(shape[d])
			count[d] = rng.Intn(shape[d]-start[d]) + 1
		}
		slab, err := f.ReadSlab("v", start, count)
		if err != nil {
			t.Fatal(err)
		}
		// Verify against direct indexing.
		idx := make([]int, rank)
		var walk func(d int, pos *int)
		walk = func(d int, pos *int) {
			if d == rank {
				lin := 0
				for j := 0; j < rank; j++ {
					lin = lin*shape[j] + start[j] + idx[j]
				}
				if slab.Values[*pos] != data[lin] {
					t.Fatalf("trial %d: slab mismatch at %v", trial, idx)
				}
				*pos++
				return
			}
			for i := 0; i < count[d]; i++ {
				idx[d] = i
				walk(d+1, pos)
			}
		}
		pos := 0
		walk(0, &pos)
	}
}
