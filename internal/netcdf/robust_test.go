package netcdf

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// richFile builds a well-formed file with attributes, a fixed variable and
// a record variable — enough header structure that truncating it at any
// point exercises a different parser stage.
func richFile(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder()
	b.AddGlobalAttr(Attr{Name: "title", Type: Char, Values: "robustness corpus"})
	rec, err := b.AddRecordDim("time", 4)
	if err != nil {
		t.Fatal(err)
	}
	x, err := b.AddDim("x", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddVar("fixedv", Double, []int{x},
		[]Attr{{Name: "units", Type: Char, Values: "degF"}},
		[]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddVar("recv", Int, []int{rec, x}, nil,
		[]float64{0, 1, 2, 10, 11, 12, 20, 21, 22, 30, 31, 32}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTruncatedFilesRejected cuts a valid file at every length and demands
// that the reader either fails with an error or returns correct data —
// never panics, and never fabricates values. A variable whose data region
// lies entirely before the cut is legitimately readable; one whose region
// is cut must be rejected.
func TestTruncatedFilesRejected(t *testing.T) {
	full := richFile(t)
	f0, err := Read(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]float64{}
	for _, name := range []string{"fixedv", "recv"} {
		slab, err := f0.ReadAll(name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = slab.Values
	}
	for cut := 0; cut < len(full); cut++ {
		data := full[:cut]
		f, err := Read(bytes.NewReader(data))
		if err != nil {
			continue // rejected: fine
		}
		for _, name := range []string{"fixedv", "recv"} {
			if _, verr := f.Var(name); verr != nil {
				continue
			}
			slab, rerr := f.ReadAll(name)
			if rerr != nil {
				continue // rejected: fine
			}
			// A successful read of a truncated file must mean the data was
			// genuinely all there, with every value intact.
			w := want[name]
			if len(slab.Values) != len(w) {
				t.Errorf("cut=%d: ReadAll(%s) returned %d values, want %d or an error",
					cut, name, len(slab.Values), len(w))
				continue
			}
			for i := range w {
				if slab.Values[i] != w[i] {
					t.Errorf("cut=%d: ReadAll(%s)[%d] = %v, want %v — fabricated data",
						cut, name, i, slab.Values[i], w[i])
					break
				}
			}
		}
	}
}

// TestTruncatedHeaderMessage spot-checks that a header cut mid-structure
// produces a descriptive "truncated" error rather than a raw EOF.
func TestTruncatedHeaderMessage(t *testing.T) {
	full := richFile(t)
	// Cut inside the header: past magic+numrecs, inside the dim list.
	_, err := Read(bytes.NewReader(full[:16]))
	if err == nil {
		t.Fatal("16-byte header accepted")
	}
	if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "netcdf") {
		t.Errorf("error %q should be descriptive", err)
	}
}

// TestDataTruncationCaughtBeforeAllocation verifies the slab bounds check:
// a file whose header is intact but whose data region is cut must fail
// with the truncation diagnostic, up front, not EOF deep in the read loop.
func TestDataTruncationCaughtBeforeAllocation(t *testing.T) {
	full := richFile(t)
	f0, err := Read(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	v, err := f0.Var("recv")
	if err != nil {
		t.Fatal(err)
	}
	// Keep the header and the fixed variable, drop the record data tail.
	cut := v.begin + 4 // one int of twelve
	f, err := Read(bytes.NewReader(full[:cut]))
	if err != nil {
		t.Skipf("header itself rejected at this cut: %v", err)
	}
	_, err = f.ReadAll("recv")
	if err == nil {
		t.Fatal("ReadAll on truncated data succeeded")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("error %q should carry the truncation diagnostic", err)
	}
}

// patch returns a copy of data with a big-endian uint32 written at off.
func patch(data []byte, off int, val uint32) []byte {
	out := append([]byte(nil), data...)
	binary.BigEndian.PutUint32(out[off:], val)
	return out
}

// TestHugeHeaderCountsRejected patches absurd counts into the header and
// checks the parser refuses them before allocating: the element count of a
// list can never exceed the file size.
func TestHugeHeaderCountsRejected(t *testing.T) {
	full := richFile(t)

	// numrecs at offset 4: claim two billion records.
	if _, err := Read(bytes.NewReader(patch(full, 4, 2_000_000_000))); err == nil {
		t.Error("two-billion-record file accepted")
	}

	// Dim-list count at offset 12 (after magic, numrecs, NC_DIMENSION tag).
	if _, err := Read(bytes.NewReader(patch(full, 12, 0x40000000))); err == nil {
		t.Error("billion-entry dimension list accepted")
	}
}

// TestNegativeAndHugeVsizeRejected patches a variable's begin offset past
// the end of file.
func TestNegativeAndHugeVsizeRejected(t *testing.T) {
	full := richFile(t)
	f0, err := Read(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	v, err := f0.Var("fixedv")
	if err != nil {
		t.Fatal(err)
	}
	// The begin word sits 4 bytes before the data start in CDF-1 (it is the
	// last header field of the variable entry); find it by value instead of
	// hard-coding layout: scan for the encoded begin offset.
	target := uint32(v.begin)
	var enc [4]byte
	binary.BigEndian.PutUint32(enc[:], target)
	idx := bytes.Index(full, enc[:])
	if idx < 0 {
		t.Skip("could not locate begin word")
	}
	bad := patch(full, idx, uint32(len(full))+1024)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("variable beginning past EOF accepted")
	}
}

// TestReadAllStillWorksThroughWrappers makes sure the size plumbing keeps
// valid files readable through the cache layer (Size must pass through, or
// the new bounds checks would reject valid slabs with fsize == -1 checks
// disabled — the happy path must stay happy).
func TestReadAllStillWorksThroughWrappers(t *testing.T) {
	full := richFile(t)
	cached := NewCachedReaderAt(bytes.NewReader(full), 64, 8)
	f, err := Read(cached)
	if err != nil {
		t.Fatal(err)
	}
	if f.fsize != int64(len(full)) {
		t.Errorf("fsize through cache = %d, want %d", f.fsize, len(full))
	}
	slab, err := f.ReadAll("recv")
	if err != nil {
		t.Fatal(err)
	}
	if len(slab.Values) != 12 || slab.Values[11] != 32 {
		t.Errorf("values = %v", slab.Values)
	}
}
