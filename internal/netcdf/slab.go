package netcdf

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Slab is the result of a hyperslab read: a dense row-major block of
// numeric values. Char variables are returned as Text instead.
type Slab struct {
	Shape  []int
	Type   Type
	Values []float64 // numeric types, converted to float64
	Text   []byte    // Char only
}

// Size returns the number of elements in the slab.
func (s *Slab) Size() int {
	n := 1
	for _, d := range s.Shape {
		n *= d
	}
	return n
}

// ReadAll reads a variable's entire data.
func (f *File) ReadAll(varName string) (*Slab, error) {
	v, err := f.Var(varName)
	if err != nil {
		return nil, err
	}
	shape := f.Shape(v)
	start := make([]int, len(shape))
	return f.ReadSlab(varName, start, shape)
}

// ReadSlab reads the hyperslab of the variable starting at the multi-index
// start with extent count in each dimension — the subslab operation the
// AQL NETCDF readers expose (section 4.1).
func (f *File) ReadSlab(varName string, start, count []int) (*Slab, error) {
	v, err := f.Var(varName)
	if err != nil {
		return nil, err
	}
	shape := f.Shape(v)
	if len(start) != len(shape) || len(count) != len(shape) {
		return nil, fmt.Errorf("netcdf: %s has rank %d; start/count have rank %d/%d",
			varName, len(shape), len(start), len(count))
	}
	total := 1
	for d := range shape {
		if start[d] < 0 || count[d] < 0 || start[d]+count[d] > shape[d] {
			return nil, fmt.Errorf("netcdf: %s: slab [%d, %d) exceeds dimension %d of length %d",
				varName, start[d], start[d]+count[d], d, shape[d])
		}
		total *= count[d]
	}
	tsize := int64(v.Type.Size())
	// When the data source's size is known, reject slabs that extend past
	// end-of-file before allocating or reading anything: a header may be
	// intact while the data region is truncated or the declared shapes are
	// corrupt, and the failure must be a descriptive error, not a huge
	// allocation followed by an EOF deep in the read loop.
	if f.fsize >= 0 && total > 0 {
		last := make([]int, len(shape))
		for d := range shape {
			last[d] = start[d] + count[d] - 1
		}
		if end, err := f.elementOffset(v, shape, last); err == nil && end+tsize > f.fsize {
			return nil, fmt.Errorf("netcdf: %s: slab ends at byte %d but file has only %d bytes (truncated?)",
				varName, end+tsize, f.fsize)
		}
	}
	slab := &Slab{Shape: append([]int(nil), count...), Type: v.Type}
	// Cap the up-front allocation: a corrupt header can claim a dimension
	// of billions of elements, and the first read past EOF will fail long
	// before that much data exists. Growth beyond the cap is incremental.
	capHint := total
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	if v.Type == Char {
		slab.Text = make([]byte, 0, capHint)
	} else {
		slab.Values = make([]float64, 0, capHint)
	}
	if total == 0 {
		return slab, nil
	}

	f.stats.slabReads.Add(1)

	rank := len(shape)
	if rank == 0 {
		// Scalar variable.
		buf := make([]byte, tsize)
		if _, err := f.r.ReadAt(buf, v.begin); err != nil {
			return nil, fmt.Errorf("netcdf: %s: read scalar: %w", varName, err)
		}
		f.stats.bytesRead.Add(tsize)
		if v.Type == Char {
			slab.Text = buf
		} else {
			slab.Values = []float64{decodeScalar(v.Type, buf)}
		}
		return slab, nil
	}

	// innerLen is the contiguous run along the innermost dimension, and
	// outer counts the dimensions iterated run by run. For a rank-1 record
	// variable the innermost dimension IS the record dimension, whose
	// elements are interleaved with other record variables, so runs
	// degenerate to single elements and every dimension is "outer".
	innerLen := count[rank-1]
	outer := rank - 1
	if f.isRecord(v) && rank == 1 {
		innerLen = 1
		outer = rank
	}
	// Runs are read in bounded chunks so a corrupt header cannot force a
	// huge buffer allocation.
	const maxRunBytes = 1 << 22
	chunkElems := innerLen
	if int64(chunkElems)*tsize > maxRunBytes {
		chunkElems = int(maxRunBytes / tsize)
		if chunkElems == 0 {
			chunkElems = 1
		}
	}
	buf := make([]byte, int64(chunkElems)*tsize)

	// Iterate over the outer indices of the slab.
	idx := make([]int, rank) // slab-relative; dims >= outer stay 0
	abs := make([]int, rank)
	for {
		// Absolute element index of the run start.
		for d := range abs {
			abs[d] = start[d] + idx[d]
		}
		off, err := f.elementOffset(v, shape, abs)
		if err != nil {
			return nil, err
		}
		for done := 0; done < innerLen; done += chunkElems {
			n := chunkElems
			if innerLen-done < n {
				n = innerLen - done
			}
			chunk := buf[:int64(n)*tsize]
			if _, err := f.r.ReadAt(chunk, off+int64(done)*tsize); err != nil {
				return nil, fmt.Errorf("netcdf: %s: read at %d: %w", varName, off, err)
			}
			f.stats.bytesRead.Add(int64(len(chunk)))
			if v.Type == Char {
				slab.Text = append(slab.Text, chunk...)
			} else {
				for i := 0; i < n; i++ {
					slab.Values = append(slab.Values, decodeScalar(v.Type, chunk[int64(i)*tsize:]))
				}
			}
		}
		// Advance the outer indices.
		d := outer - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < count[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
	return slab, nil
}

// elementOffset computes the byte offset of the element at absolute index
// abs of variable v, accounting for record interleaving.
func (f *File) elementOffset(v *Var, shape, abs []int) (int64, error) {
	tsize := int64(v.Type.Size())
	if f.isRecord(v) {
		rec := int64(abs[0])
		lin := int64(0)
		for d := 1; d < len(shape); d++ {
			lin = lin*int64(shape[d]) + int64(abs[d])
		}
		return v.begin + rec*f.recSize + lin*tsize, nil
	}
	lin := int64(0)
	for d := 0; d < len(shape); d++ {
		lin = lin*int64(shape[d]) + int64(abs[d])
	}
	return v.begin + lin*tsize, nil
}

func decodeScalar(typ Type, b []byte) float64 {
	switch typ {
	case Byte:
		return float64(int8(b[0]))
	case Short:
		return float64(int16(binary.BigEndian.Uint16(b)))
	case Int:
		return float64(int32(binary.BigEndian.Uint32(b)))
	case Float:
		return float64(math.Float32frombits(binary.BigEndian.Uint32(b)))
	case Double:
		return math.Float64frombits(binary.BigEndian.Uint64(b))
	}
	return 0
}
