package netcdf

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestFaultyReaderSchedule(t *testing.T) {
	data := []byte("abcdefgh")
	fr := NewFaultyReaderAt(bytes.NewReader(data),
		Fault{},                        // call 0: clean
		Fault{Err: ErrInjected},        // call 1: fails
		Fault{Short: true},             // call 2: short read
		Fault{Delay: time.Microsecond}, // call 3: delayed but clean
	)
	buf := make([]byte, 4)

	if _, err := fr.ReadAt(buf, 0); err != nil {
		t.Fatalf("call 0: %v", err)
	}
	if _, err := fr.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 1: err = %v, want ErrInjected", err)
	}
	if n, err := fr.ReadAt(buf, 0); n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("call 2: n=%d err=%v, want short read of 2 with ErrInjected", n, err)
	}
	if _, err := fr.ReadAt(buf, 0); err != nil {
		t.Fatalf("call 3: %v", err)
	}
	// Beyond the schedule: pass-through.
	if _, err := fr.ReadAt(buf, 4); err != nil {
		t.Fatalf("call 4: %v", err)
	}
	if fr.Calls() != 5 || fr.Injected() != 2 {
		t.Errorf("Calls=%d Injected=%d, want 5 and 2", fr.Calls(), fr.Injected())
	}
}

func TestRetryingReaderRecoversTransientFaults(t *testing.T) {
	data := []byte("the quick brown fox")
	fr := NewFaultyReaderAt(bytes.NewReader(data),
		Fault{Err: ErrInjected},
		Fault{Err: ErrInjected},
	)
	rr := NewRetryingReaderAt(fr, RetryConfig{BaseDelay: time.Microsecond})
	buf := make([]byte, len(data))
	n, err := rr.ReadAt(buf, 0)
	if err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Errorf("data corrupted: %q", buf)
	}
	if rr.Retries() < 2 {
		t.Errorf("Retries = %d, want >= 2", rr.Retries())
	}
}

func TestRetryingReaderShortReadRetried(t *testing.T) {
	data := []byte("0123456789")
	fr := NewFaultyReaderAt(bytes.NewReader(data), Fault{Short: true})
	rr := NewRetryingReaderAt(fr, RetryConfig{BaseDelay: time.Microsecond})
	buf := make([]byte, len(data))
	n, err := rr.ReadAt(buf, 0)
	if err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if rr.Retries() == 0 {
		t.Error("short read should have been retried")
	}
}

func TestRetryingReaderPermanentErrorNotRetried(t *testing.T) {
	data := []byte("tiny")
	rr := NewRetryingReaderAt(bytes.NewReader(data), RetryConfig{BaseDelay: time.Microsecond})
	buf := make([]byte, 64)
	// Reading past EOF is permanent: no amount of retrying grows the file.
	_, err := rr.ReadAt(buf, 0)
	if err == nil {
		t.Fatal("read past EOF succeeded")
	}
	if rr.Retries() != 0 {
		t.Errorf("Retries = %d on a permanent error, want 0", rr.Retries())
	}
}

func TestRetryingReaderBudgetExhausted(t *testing.T) {
	faults := make([]Fault, 16)
	for i := range faults {
		faults[i] = Fault{Err: ErrInjected}
	}
	fr := NewFaultyReaderAt(bytes.NewReader([]byte("x")), faults...)
	rr := NewRetryingReaderAt(fr, RetryConfig{MaxRetries: 3, BaseDelay: time.Microsecond})
	_, err := rr.ReadAt(make([]byte, 1), 0)
	if err == nil {
		t.Fatal("exhausted retries should fail")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("final error %v should wrap the cause", err)
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("final error %q should report the attempt count", err)
	}
}

// TestReadSlabThroughFaultyStorage is the end-to-end scenario: a NetCDF
// file on flaky storage, read through the retry layer, survives injected
// transient faults and returns correct data.
func TestReadSlabThroughFaultyStorage(t *testing.T) {
	full := richFile(t)
	fr := NewFaultyReaderAt(bytes.NewReader(full),
		Fault{Err: ErrInjected}, // first header read fails
		Fault{},
		Fault{Short: true}, // a later read is torn
	)
	rr := NewRetryingReaderAt(fr, RetryConfig{BaseDelay: time.Microsecond})
	f, err := Read(rr)
	if err != nil {
		t.Fatalf("Read through faulty storage: %v", err)
	}
	if f.fsize != int64(len(full)) {
		t.Errorf("fsize through retry+fault layers = %d, want %d", f.fsize, len(full))
	}
	slab, err := f.ReadSlab("recv", []int{1, 0}, []int{2, 3})
	if err != nil {
		t.Fatalf("ReadSlab: %v", err)
	}
	want := []float64{10, 11, 12, 20, 21, 22}
	for i, w := range want {
		if slab.Values[i] != w {
			t.Errorf("slab[%d] = %v, want %v", i, slab.Values[i], w)
		}
	}
	if rr.Retries() < 1 {
		t.Errorf("Retries = %d, want >= 1 (faults were scheduled)", rr.Retries())
	}
	if fr.Injected() < 1 {
		t.Errorf("Injected = %d, want >= 1", fr.Injected())
	}
}

// TestFaultyReaderConcurrentUse exercises the mutex under -race.
func TestFaultyReaderConcurrentUse(t *testing.T) {
	data := bytes.Repeat([]byte("ab"), 512)
	faults := make([]Fault, 8)
	for i := range faults {
		faults[i] = Fault{Err: ErrInjected}
	}
	fr := NewFaultyReaderAt(bytes.NewReader(data), faults...)
	rr := NewRetryingReaderAt(fr, RetryConfig{BaseDelay: time.Microsecond})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			buf := make([]byte, 16)
			for i := 0; i < 32; i++ {
				if _, err := rr.ReadAt(buf, int64(i*16)); err != nil && !errors.Is(err, io.EOF) {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

// TestRetryingReaderCancelledBackoff: cancelling the policy context while
// a retry backoff is sleeping returns promptly — well before the schedule
// would have slept out — with an error wrapping both the read failure and
// the cancellation.
func TestRetryingReaderCancelledBackoff(t *testing.T) {
	faults := make([]Fault, 64)
	for i := range faults {
		faults[i] = Fault{Err: ErrInjected}
	}
	fr := NewFaultyReaderAt(bytes.NewReader([]byte("x")), faults...)
	ctx, cancel := context.WithCancel(context.Background())
	rr := NewRetryingReaderAt(fr, RetryConfig{
		MaxRetries: 8,
		BaseDelay:  time.Hour, // would block forever if Sleep were unconditional
		Context:    ctx,
	})

	done := make(chan error, 1)
	go func() {
		_, err := rr.ReadAt(make([]byte, 1), 0)
		done <- err
	}()

	// Let the first attempt fail and enter its one-hour backoff.
	for rr.Retries() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v should wrap context.Canceled", err)
		}
		if !errors.Is(err, ErrInjected) {
			t.Errorf("error %v should wrap the read failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ReadAt did not return after cancellation")
	}
	if fr.Calls() != 1 {
		t.Errorf("Calls = %d after cancel during first backoff, want 1", fr.Calls())
	}
}

// TestRetryingReaderContextPreCancelled: an already-cancelled context still
// allows the first attempt (only backoffs consult it), so a clean read
// succeeds.
func TestRetryingReaderContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := []byte("payload")
	rr := NewRetryingReaderAt(bytes.NewReader(data), RetryConfig{Context: ctx})
	buf := make([]byte, len(data))
	if n, err := rr.ReadAt(buf, 0); err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v; a cancelled context must not block fault-free reads", n, err)
	}
}
