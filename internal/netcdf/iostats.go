package netcdf

import "io"

// IOStats aggregates the I/O behaviour of one File: what the slab reader
// asked for, and what the reader-wrapper stack underneath it did to serve
// those requests. It is the observability surface PR 1 left buried — cache
// statistics were only reachable by holding the concrete *CachedReaderAt,
// and retry counts by holding the *RetryingReaderAt.
type IOStats struct {
	// SlabReads counts hyperslab requests served (ReadSlab / ReadAll /
	// scalar reads).
	SlabReads int64
	// BytesRead counts external data bytes delivered to slab decoding
	// (header parsing is not counted).
	BytesRead int64
	// CacheHits, CacheMisses and Prefetches report block-cache behaviour
	// when a CachedReaderAt is in the reader stack.
	CacheHits   int64
	CacheMisses int64
	Prefetches  int64
	// Retries counts transient-failure re-reads by any RetryingReaderAt
	// in the stack.
	Retries int64
	// Faults counts injected faults observed by any FaultyReaderAt in the
	// stack (fault-injection tests and soak runs).
	Faults int64
}

// Add accumulates other into s.
func (s *IOStats) Add(other IOStats) {
	s.SlabReads += other.SlabReads
	s.BytesRead += other.BytesRead
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.Prefetches += other.Prefetches
	s.Retries += other.Retries
	s.Faults += other.Faults
}

// unwrapper is implemented by the reader wrappers of this package so
// IOStats can walk an arbitrarily layered stack (e.g. retrying over cached
// over faulty over file).
type unwrapper interface {
	Underlying() io.ReaderAt
}

// Underlying returns the reader the cache wraps.
func (c *CachedReaderAt) Underlying() io.ReaderAt { return c.r }

// Underlying returns the reader the retry layer wraps.
func (r *RetryingReaderAt) Underlying() io.ReaderAt { return r.r }

// Underlying returns the reader the fault injector wraps.
func (f *FaultyReaderAt) Underlying() io.ReaderAt { return f.r }

// IOStats reports the file's cumulative I/O counters: the slab reads and
// bytes this File served, plus cache/retry/fault counters collected by
// walking the reader-wrapper stack. Sessions read it after each NetCDF
// readval to attribute I/O to the query that caused it.
func (f *File) IOStats() IOStats {
	s := IOStats{
		SlabReads: f.stats.slabReads.Load(),
		BytesRead: f.stats.bytesRead.Load(),
	}
	r := f.r
	for depth := 0; r != nil && depth < 16; depth++ {
		switch v := r.(type) {
		case *CachedReaderAt:
			s.CacheHits += v.Stats.Hits
			s.CacheMisses += v.Stats.Misses
			s.Prefetches += v.Stats.Prefetches
		case *RetryingReaderAt:
			s.Retries += v.Retries()
		case *FaultyReaderAt:
			s.Faults += v.Injected()
		}
		u, ok := r.(unwrapper)
		if !ok {
			break
		}
		r = u.Underlying()
	}
	return s
}
