package netcdf

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// rangeFile builds a file with a plain 2-D double variable and an
// interleaved pair of record variables, returning its bytes.
func rangeFile(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder()
	dx, _ := b.AddDim("x", 3)
	dy, _ := b.AddDim("y", 4)
	plain := make([]float64, 12)
	for i := range plain {
		plain[i] = float64(i) * 0.5
	}
	if err := b.AddVar("plain", Double, []int{dx, dy}, nil, plain); err != nil {
		t.Fatal(err)
	}
	rec, _ := b.AddRecordDim("t", 5)
	ra := make([]float64, 5*4)
	rb := make([]float64, 5*4)
	for i := range ra {
		ra[i] = 100 + float64(i)
		rb[i] = 200 + float64(i)
	}
	// Two record variables force per-record interleaving in the data
	// region: record r of "recA" and "recB" are adjacent, not the whole
	// variables.
	if err := b.AddVar("recA", Double, []int{rec, dy}, nil, ra); err != nil {
		t.Fatal(err)
	}
	if err := b.AddVar("recB", Int, []int{rec, dy}, nil, rb); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadCellRange(t *testing.T) {
	f, err := Read(bytes.NewReader(rangeFile(t)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		varName string
		base    float64
		size    int
	}{
		{"plain", 0, 12}, // base*0.5 handled below
		{"recA", 100, 20},
		{"recB", 200, 20},
	} {
		want := func(i int) float64 {
			if tc.varName == "plain" {
				return float64(i) * 0.5
			}
			return tc.base + float64(i)
		}
		// Every (start, n) sub-range must agree with the flat expectation,
		// including ranges spanning record boundaries mid-record.
		for start := 0; start <= tc.size; start++ {
			for n := 0; start+n <= tc.size; n += 3 {
				got, err := f.ReadCellRangeCtx(context.Background(), tc.varName, start, n)
				if err != nil {
					t.Fatalf("%s[%d,%d): %v", tc.varName, start, start+n, err)
				}
				if len(got) != n {
					t.Fatalf("%s[%d,%d): %d cells", tc.varName, start, start+n, len(got))
				}
				for i, v := range got {
					if v != want(start+i) {
						t.Fatalf("%s[%d] = %v, want %v", tc.varName, start+i, v, want(start+i))
					}
				}
			}
		}
	}
}

func TestReadCellRangeValidation(t *testing.T) {
	data := rangeFile(t)
	f, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadCellRangeCtx(nil, "plain", 10, 3); err == nil {
		t.Error("range past variable extent succeeded")
	}
	if _, err := f.ReadCellRangeCtx(nil, "plain", -1, 1); err == nil {
		t.Error("negative start succeeded")
	}
	if _, err := f.ReadCellRangeCtx(nil, "nope", 0, 1); err == nil {
		t.Error("unknown variable succeeded")
	}
	if err := f.ValidateCellRange("plain", 0, 12); err != nil {
		t.Errorf("full-extent validate failed: %v", err)
	}

	// A file truncated inside the data region: the header still parses,
	// but validation of the tail cells reports truncation without reading.
	cut := data[:len(data)-24]
	tf, err := Read(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	err = tf.ValidateCellRange("recB", 0, 20)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated-file validate = %v, want truncation error", err)
	}
}

func TestReadCellRangeCtxCancel(t *testing.T) {
	f, err := Read(bytes.NewReader(rangeFile(t)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.ReadCellRangeCtx(ctx, "plain", 0, 12); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled range read = %v, want context.Canceled", err)
	}
}

// TestReadCellRangeFaultRetry drives a mid-range injected fault through the
// retrying reader: a transient fault is retried invisibly; a persistent one
// surfaces the injected error to the caller.
func TestReadCellRangeFaultRetry(t *testing.T) {
	data := rangeFile(t)

	// Transient: the first data read fails once, then passes.
	faulty := NewFaultyReaderAt(bytes.NewReader(data))
	retrying := NewRetryingReaderAt(faulty, RetryConfig{})
	f, err := Read(retrying)
	if err != nil {
		t.Fatal(err)
	}
	headerCalls := faulty.Calls()
	faulty.mu.Lock()
	faulty.schedule = make([]Fault, headerCalls+1)
	faulty.schedule[headerCalls] = Fault{Err: ErrInjected}
	faulty.mu.Unlock()

	got, err := f.ReadCellRangeCtx(context.Background(), "plain", 0, 12)
	if err != nil {
		t.Fatalf("transient fault not retried: %v", err)
	}
	for i, v := range got {
		if v != float64(i)*0.5 {
			t.Fatalf("cell %d = %v after retry", i, v)
		}
	}
	if retrying.Retries() == 0 {
		t.Error("no retries recorded for a transient fault")
	}
	st := f.IOStats()
	if st.Retries == 0 || st.Faults == 0 {
		t.Errorf("IOStats retries/faults = %d/%d, want non-zero", st.Retries, st.Faults)
	}

	// Persistent: every attempt fails; the typed injected error surfaces.
	faulty2 := NewFaultyReaderAt(bytes.NewReader(data))
	retrying2 := NewRetryingReaderAt(faulty2, RetryConfig{MaxRetries: 2})
	f2, err := Read(retrying2)
	if err != nil {
		t.Fatal(err)
	}
	n := faulty2.Calls()
	sched := make([]Fault, n+16)
	for i := n; i < int64(len(sched)); i++ {
		sched[i] = Fault{Err: ErrInjected}
	}
	faulty2.mu.Lock()
	faulty2.schedule = sched
	faulty2.mu.Unlock()
	if _, err := f2.ReadCellRangeCtx(context.Background(), "plain", 0, 12); !errors.Is(err, ErrInjected) {
		t.Errorf("persistent fault = %v, want ErrInjected", err)
	}
}
