package netcdf

import (
	"fmt"
	"io"
	"os"
)

// CachedReaderAt wraps an io.ReaderAt with a fixed-size LRU block cache and
// sequential readahead — the "good predictive caching" that section 7 of
// the paper lists as future work for more direct access to external
// arrays. Strided hyperslab reads touch each file block many times (once
// per contiguous run); caching the blocks turns the re-reads into memory
// copies, and the readahead hides latency on row-major scans.
//
// A CachedReaderAt is not safe for concurrent use; a File reads its data
// source sequentially per slab request.
type CachedReaderAt struct {
	r         io.ReaderAt
	blockSize int64
	capacity  int

	blocks map[int64]*cacheBlock // by block number
	// Doubly-linked LRU list; head is most recent.
	head, tail *cacheBlock

	lastBlock int64 // last block served, for sequential detection

	// Stats counts cache behaviour for the benchmarks and tests.
	Stats CacheStats
}

// CacheStats reports cache behaviour.
type CacheStats struct {
	Hits       int64
	Misses     int64
	Prefetches int64
}

type cacheBlock struct {
	num        int64
	data       []byte
	prev, next *cacheBlock
}

// NewCachedReaderAt wraps r with a cache of numBlocks blocks of blockSize
// bytes each.
func NewCachedReaderAt(r io.ReaderAt, blockSize, numBlocks int) *CachedReaderAt {
	if blockSize <= 0 {
		blockSize = 1 << 16
	}
	if numBlocks <= 0 {
		numBlocks = 64
	}
	return &CachedReaderAt{
		r:         r,
		blockSize: int64(blockSize),
		capacity:  numBlocks,
		blocks:    map[int64]*cacheBlock{},
		lastBlock: -2,
	}
}

// Size exposes the underlying reader's size so the header parser's
// bounds checks keep working through the cache layer.
func (c *CachedReaderAt) Size() int64 { return readerSize(c.r) }

// ReadAt implements io.ReaderAt through the cache.
func (c *CachedReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n := 0
	for n < len(p) {
		blockNum := (off + int64(n)) / c.blockSize
		blk, err := c.fetch(blockNum, true)
		if err != nil {
			if n > 0 && err == io.EOF {
				return n, io.ErrUnexpectedEOF
			}
			return n, err
		}
		inner := (off + int64(n)) - blockNum*c.blockSize
		if inner >= int64(len(blk.data)) {
			return n, io.ErrUnexpectedEOF
		}
		copied := copy(p[n:], blk.data[inner:])
		n += copied
		// Predictive readahead: if this block follows the previous access,
		// warm the next block.
		if blockNum == c.lastBlock+1 {
			if _, err := c.fetch(blockNum+1, false); err == nil {
				c.Stats.Prefetches++
			}
		}
		c.lastBlock = blockNum
	}
	return n, nil
}

// fetch returns the block, loading it on a miss. demand marks an
// application-driven access (counted in hits/misses); prefetches are not.
func (c *CachedReaderAt) fetch(num int64, demand bool) (*cacheBlock, error) {
	if blk, ok := c.blocks[num]; ok {
		if demand {
			c.Stats.Hits++
		}
		c.moveToFront(blk)
		return blk, nil
	}
	if demand {
		c.Stats.Misses++
	}
	data := make([]byte, c.blockSize)
	n, err := c.r.ReadAt(data, num*c.blockSize)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if n == 0 {
		return nil, io.EOF
	}
	blk := &cacheBlock{num: num, data: data[:n]}
	c.blocks[num] = blk
	c.pushFront(blk)
	if len(c.blocks) > c.capacity {
		c.evict()
	}
	return blk, nil
}

func (c *CachedReaderAt) pushFront(blk *cacheBlock) {
	blk.prev = nil
	blk.next = c.head
	if c.head != nil {
		c.head.prev = blk
	}
	c.head = blk
	if c.tail == nil {
		c.tail = blk
	}
}

func (c *CachedReaderAt) unlink(blk *cacheBlock) {
	if blk.prev != nil {
		blk.prev.next = blk.next
	} else {
		c.head = blk.next
	}
	if blk.next != nil {
		blk.next.prev = blk.prev
	} else {
		c.tail = blk.prev
	}
	blk.prev, blk.next = nil, nil
}

func (c *CachedReaderAt) moveToFront(blk *cacheBlock) {
	if c.head == blk {
		return
	}
	c.unlink(blk)
	c.pushFront(blk)
}

func (c *CachedReaderAt) evict() {
	lru := c.tail
	if lru == nil {
		return
	}
	c.unlink(lru)
	delete(c.blocks, lru.num)
}

// OpenCached opens a NetCDF file with a block cache between the parser and
// the disk. blockSize and numBlocks of 0 select defaults (64 KiB × 64).
// The returned file's Cache field exposes the cache for statistics.
func OpenCached(path string, blockSize, numBlocks int) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netcdf: %w", err)
	}
	cached := NewCachedReaderAt(f, blockSize, numBlocks)
	nc, err := Read(cached)
	if err != nil {
		f.Close()
		return nil, err
	}
	nc.closer = f
	nc.Cache = cached
	return nc, nil
}
