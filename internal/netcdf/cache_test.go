package netcdf

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// countingReaderAt counts underlying reads, for cache-effect assertions.
type countingReaderAt struct {
	r     *bytes.Reader
	reads int
	bytes int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	c.reads++
	n, err := c.r.ReadAt(p, off)
	c.bytes += int64(n)
	return n, err
}

func TestCachedReadAtCorrectness(t *testing.T) {
	raw := make([]byte, 100000)
	for i := range raw {
		raw[i] = byte(i * 31)
	}
	under := &countingReaderAt{r: bytes.NewReader(raw)}
	c := NewCachedReaderAt(under, 1024, 16)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		off := rng.Intn(len(raw) - 1)
		n := rng.Intn(2000) + 1
		if off+n > len(raw) {
			n = len(raw) - off
		}
		buf := make([]byte, n)
		got, err := c.ReadAt(buf, int64(off))
		if err != nil {
			t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
		}
		if got != n || !bytes.Equal(buf, raw[off:off+n]) {
			t.Fatalf("ReadAt(%d, %d) returned wrong data", off, n)
		}
	}
	if c.Stats.Hits == 0 {
		t.Error("no cache hits over 500 random reads")
	}
}

func TestCachedReadAtPastEOF(t *testing.T) {
	raw := []byte("0123456789")
	c := NewCachedReaderAt(bytes.NewReader(raw), 4, 4)
	buf := make([]byte, 4)
	if _, err := c.ReadAt(buf, 100); err == nil {
		t.Error("read past EOF should error")
	}
	// A read crossing EOF errors too.
	if _, err := c.ReadAt(buf, 8); err == nil {
		t.Error("read crossing EOF should error")
	}
	// A read within bounds near the end works.
	if n, err := c.ReadAt(buf[:2], 8); err != nil || n != 2 || buf[0] != '8' {
		t.Errorf("tail read = %d, %v", n, err)
	}
}

func TestCacheEviction(t *testing.T) {
	raw := make([]byte, 64*10)
	under := &countingReaderAt{r: bytes.NewReader(raw)}
	c := NewCachedReaderAt(under, 64, 2) // room for only 2 blocks
	buf := make([]byte, 8)
	// Touch blocks 0, 1, 2 — 0 must be evicted.
	for _, blk := range []int64{0, 1, 2} {
		if _, err := c.ReadAt(buf, blk*64); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.blocks) > 2 {
		t.Errorf("cache holds %d blocks, capacity 2", len(c.blocks))
	}
	misses := c.Stats.Misses
	if _, err := c.ReadAt(buf, 0); err != nil { // block 0 again: a miss
		t.Fatal(err)
	}
	if c.Stats.Misses != misses+1 {
		t.Error("evicted block not re-fetched")
	}
}

func TestSequentialReadahead(t *testing.T) {
	raw := make([]byte, 64*32)
	under := &countingReaderAt{r: bytes.NewReader(raw)}
	c := NewCachedReaderAt(under, 64, 16)
	buf := make([]byte, 64)
	// A sequential scan: after the pattern is detected, each block should
	// already be warm from readahead.
	for blk := int64(0); blk < 10; blk++ {
		if _, err := c.ReadAt(buf, blk*64); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats.Prefetches == 0 {
		t.Error("sequential scan triggered no readahead")
	}
	if c.Stats.Hits < 5 {
		t.Errorf("sequential scan had only %d hits; readahead ineffective", c.Stats.Hits)
	}
}

func TestOpenCachedMatchesOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.nc")
	b := NewBuilder()
	ti, _ := b.AddDim("t", 50)
	la, _ := b.AddDim("y", 20)
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i) / 3
	}
	if err := b.AddVar("v", Double, []int{ti, la}, nil, data); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	plain, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cached, err := OpenCached(path, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	if cached.Cache == nil {
		t.Fatal("Cache field not set")
	}

	for _, slab := range [][4]int{{0, 0, 50, 20}, {10, 5, 7, 3}, {49, 19, 1, 1}} {
		a, err := plain.ReadSlab("v", []int{slab[0], slab[1]}, []int{slab[2], slab[3]})
		if err != nil {
			t.Fatal(err)
		}
		b2, err := cached.ReadSlab("v", []int{slab[0], slab[1]}, []int{slab[2], slab[3]})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Values {
			if a.Values[i] != b2.Values[i] {
				t.Fatalf("slab %v: cached read differs at %d", slab, i)
			}
		}
	}
	// Repeated reads hit the cache.
	before := cached.Cache.Stats.Hits
	if _, err := cached.ReadSlab("v", []int{0, 0}, []int{50, 20}); err != nil {
		t.Fatal(err)
	}
	if cached.Cache.Stats.Hits <= before {
		t.Error("repeated slab read produced no cache hits")
	}
}

func TestCacheReducesUnderlyingReads(t *testing.T) {
	// A strided column read touches each block once per row without a
	// cache; with it, the underlying file sees each block at most twice
	// (load + possible readahead overlap).
	dir := t.TempDir()
	path := filepath.Join(dir, "s.nc")
	b := NewBuilder()
	ti, _ := b.AddDim("t", 400)
	la, _ := b.AddDim("y", 100)
	data := make([]float64, 400*100)
	if err := b.AddVar("v", Double, []int{ti, la}, nil, data); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	colRead := func(r *countingReaderAt, useCache bool) int {
		f, err := Read(ioReaderAt(r, useCache))
		if err != nil {
			t.Fatal(err)
		}
		// Column 7: one element per row — maximally strided.
		if _, err := f.ReadSlab("v", []int{0, 7}, []int{400, 1}); err != nil {
			t.Fatal(err)
		}
		return r.reads
	}
	rawReads := colRead(&countingReaderAt{r: bytes.NewReader(content)}, false)
	cachedReads := colRead(&countingReaderAt{r: bytes.NewReader(content)}, true)
	if cachedReads*4 > rawReads {
		t.Errorf("cache ineffective on strided read: %d raw vs %d cached underlying reads",
			rawReads, cachedReads)
	}
}

func ioReaderAt(r *countingReaderAt, cached bool) interface {
	ReadAt([]byte, int64) (int, error)
} {
	if cached {
		return NewCachedReaderAt(r, 4096, 64)
	}
	return r
}
