package netcdf

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error delivered by a FaultyReaderAt fault.
var ErrInjected = errors.New("netcdf: injected I/O fault")

// Fault describes the outcome of a single ReadAt call on a FaultyReaderAt.
// The zero Fault is a clean pass-through, so a schedule like
// {{}, {Err: ErrInjected}, {}} fails exactly the second read.
type Fault struct {
	// Err, when non-nil, fails the call with this error without touching
	// the underlying reader.
	Err error
	// Short, when true, delivers only half the requested bytes and
	// reports Err (or ErrInjected when Err is nil), simulating a
	// torn/partial read from flaky storage.
	Short bool
	// Delay is slept before the call is served (or failed), simulating
	// storage latency.
	Delay time.Duration
}

// FaultyReaderAt wraps an io.ReaderAt with a deterministic fault schedule:
// the n-th ReadAt call receives the n-th Fault; calls beyond the schedule
// pass through untouched. It exists for tests that need reproducible I/O
// failure sequences and for soak-testing retry logic against simulated
// flaky storage. Safe for concurrent use.
type FaultyReaderAt struct {
	r io.ReaderAt

	mu       sync.Mutex
	schedule []Fault
	calls    int64
	injected int64
}

// NewFaultyReaderAt wraps r with the given per-call fault schedule.
func NewFaultyReaderAt(r io.ReaderAt, schedule ...Fault) *FaultyReaderAt {
	return &FaultyReaderAt{r: r, schedule: schedule}
}

// ReadAt implements io.ReaderAt, applying the next scheduled fault.
func (f *FaultyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	var ft Fault
	if int(f.calls) < len(f.schedule) {
		ft = f.schedule[f.calls]
	}
	f.calls++
	if ft.Err != nil || ft.Short {
		f.injected++
	}
	f.mu.Unlock()

	if ft.Delay > 0 {
		time.Sleep(ft.Delay)
	}
	if ft.Err != nil && !ft.Short {
		return 0, ft.Err
	}
	if ft.Short {
		err := ft.Err
		if err == nil {
			err = ErrInjected
		}
		n, rerr := f.r.ReadAt(p[:len(p)/2], off)
		if rerr != nil {
			return n, rerr
		}
		return n, err
	}
	return f.r.ReadAt(p, off)
}

// SetSchedule replaces the fault schedule relative to the current call
// count: the next skip calls pass through untouched, then the given faults
// apply one per call, and calls beyond them pass through again. Tests use
// it to stage faults mid-stream after header parsing has consumed an
// unknown number of reads.
func (f *FaultyReaderAt) SetSchedule(skip int, schedule ...Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.schedule = append(make([]Fault, int(f.calls)+skip), schedule...)
}

// Calls reports the total number of ReadAt calls observed.
func (f *FaultyReaderAt) Calls() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Injected reports how many calls had a fault injected.
func (f *FaultyReaderAt) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Size exposes the underlying reader's size so the header parser's
// bounds checks keep working through the fault layer.
func (f *FaultyReaderAt) Size() int64 { return readerSize(f.r) }

// RetryConfig tunes a RetryingReaderAt. The zero value selects the
// defaults noted on each field.
type RetryConfig struct {
	// MaxRetries is the number of re-attempts after the first failure
	// (default 4, so up to 5 attempts total).
	MaxRetries int
	// BaseDelay is the backoff before the first retry (default 1ms); it
	// doubles per retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 100ms).
	MaxDelay time.Duration
	// IsTransient classifies errors worth retrying. The default treats
	// io.EOF and io.ErrUnexpectedEOF as permanent (re-reading a short
	// file cannot help) and everything else as transient.
	IsTransient func(error) bool
	// Context, when non-nil, bounds every backoff sleep: cancelling it
	// makes an in-backoff ReadAt return promptly with the last read error
	// joined with the context's, instead of sleeping out the schedule.
	// (io.ReaderAt has no per-call context, so the policy carries it.)
	Context context.Context
}

func (c *RetryConfig) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 4
}

func (c *RetryConfig) baseDelay() time.Duration {
	if c.BaseDelay > 0 {
		return c.BaseDelay
	}
	return time.Millisecond
}

func (c *RetryConfig) maxDelay() time.Duration {
	if c.MaxDelay > 0 {
		return c.MaxDelay
	}
	return 100 * time.Millisecond
}

func (c *RetryConfig) isTransient(err error) bool {
	if c.IsTransient != nil {
		return c.IsTransient(err)
	}
	return !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF)
}

// RetryingReaderAt wraps an io.ReaderAt and retries transient read errors
// with capped exponential backoff — an opt-in resilience layer for NetCDF
// files on flaky storage (network filesystems, object-store gateways):
//
//	f, _ := os.Open(path)
//	nc, err := netcdf.Read(netcdf.NewRetryingReaderAt(f, netcdf.RetryConfig{}))
//
// Safe for concurrent use; the retry counter is atomic.
type RetryingReaderAt struct {
	r       io.ReaderAt
	cfg     RetryConfig
	retries int64 // atomic
}

// NewRetryingReaderAt wraps r with the given retry policy.
func NewRetryingReaderAt(r io.ReaderAt, cfg RetryConfig) *RetryingReaderAt {
	return &RetryingReaderAt{r: r, cfg: cfg}
}

// ReadAt implements io.ReaderAt, retrying transient failures. A short read
// with a transient error is retried from scratch (ReadAt is stateless, so
// re-reading the full range is safe). Permanent errors and budget
// exhaustion return the last error, wrapped with the attempt count.
func (r *RetryingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	delay := r.cfg.baseDelay()
	maxRetries := r.cfg.maxRetries()
	var n int
	var err error
	for attempt := 0; ; attempt++ {
		n, err = r.r.ReadAt(p, off)
		if err == nil || !r.cfg.isTransient(err) {
			return n, err
		}
		if attempt >= maxRetries {
			return n, fmt.Errorf("netcdf: read failed after %d attempts: %w", attempt+1, err)
		}
		atomic.AddInt64(&r.retries, 1)
		if serr := r.sleep(delay); serr != nil {
			return n, fmt.Errorf("netcdf: read cancelled during retry backoff after %d attempts: %w",
				attempt+1, errors.Join(err, serr))
		}
		delay *= 2
		if max := r.cfg.maxDelay(); delay > max {
			delay = max
		}
	}
}

// ReadAtCtx is ReadAt with a per-call context that bounds backoff sleeps
// and is checked before each attempt, so a cancelled query aborts an
// in-flight tile fetch instead of sleeping out the retry schedule. The
// per-call context takes precedence over RetryConfig.Context.
func (r *RetryingReaderAt) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	if ctx == nil {
		return r.ReadAt(p, off)
	}
	delay := r.cfg.baseDelay()
	maxRetries := r.cfg.maxRetries()
	var n int
	var err error
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return n, fmt.Errorf("netcdf: read cancelled after %d attempts: %w",
				attempt, errors.Join(err, cerr))
		}
		n, err = r.r.ReadAt(p, off)
		if err == nil || !r.cfg.isTransient(err) {
			return n, err
		}
		if attempt >= maxRetries {
			return n, fmt.Errorf("netcdf: read failed after %d attempts: %w", attempt+1, err)
		}
		atomic.AddInt64(&r.retries, 1)
		if serr := sleepCtx(ctx, delay); serr != nil {
			return n, fmt.Errorf("netcdf: read cancelled during retry backoff after %d attempts: %w",
				attempt+1, errors.Join(err, serr))
		}
		delay *= 2
		if max := r.cfg.maxDelay(); delay > max {
			delay = max
		}
	}
}

// sleepCtx waits out one backoff delay, cut short by ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sleep waits out one backoff delay, cut short by the policy context.
func (r *RetryingReaderAt) sleep(d time.Duration) error {
	ctx := r.cfg.Context
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retries reports how many retry attempts have been made.
func (r *RetryingReaderAt) Retries() int64 { return atomic.LoadInt64(&r.retries) }

// Size exposes the underlying reader's size so the header parser's
// bounds checks keep working through the retry layer.
func (r *RetryingReaderAt) Size() int64 { return readerSize(r.r) }
