// Package netcdf implements the NetCDF classic binary format (CDF-1, and
// CDF-2's 64-bit offsets) from scratch: a header parser, hyperslab reads,
// and a writer, sufficient to serve as the AQL system's data driver for
// "legacy" scientific data (section 4.1 of the paper, "I/O and the NetCDF
// Interface").
//
// The format implemented here follows the classic file format specification
// (Rew, Davis & Emmerson, NetCDF User's Guide):
//
//	file    := magic numrecs dim_list gatt_list var_list data
//	magic   := 'C' 'D' 'F' version          (version 1 or 2)
//	lists   := tag count entries | ABSENT   (ABSENT = two zero words)
//	dim     := name length                  (length 0 marks the record dim)
//	attr    := name nc_type nelems values   (values padded to 4 bytes)
//	var     := name ndims dimids vatt_list nc_type vsize begin
//
// Fixed-size variable data lives at each variable's begin offset in row-major
// order; record variables are interleaved per record. All values are
// big-endian; names and values are padded to 4-byte boundaries.
package netcdf

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"
)

// Type is a NetCDF external data type.
type Type int32

// The six classic external types.
const (
	Byte   Type = 1 // NC_BYTE: 8-bit signed
	Char   Type = 2 // NC_CHAR: 8-bit character
	Short  Type = 3 // NC_SHORT: 16-bit signed
	Int    Type = 4 // NC_INT: 32-bit signed
	Float  Type = 5 // NC_FLOAT: 32-bit IEEE
	Double Type = 6 // NC_DOUBLE: 64-bit IEEE
)

// Size returns the external size of the type in bytes.
func (t Type) Size() int {
	switch t {
	case Byte, Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Double:
		return 8
	}
	return 0
}

// String returns the CDL name of the type.
func (t Type) String() string {
	switch t {
	case Byte:
		return "byte"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return fmt.Sprintf("type(%d)", int32(t))
}

// list tags in the header.
const (
	tagDimension = 0x0A
	tagVariable  = 0x0B
	tagAttribute = 0x0C
)

// Dim is a named dimension. Len == 0 marks the record (unlimited)
// dimension; its effective length is File.NumRecs.
type Dim struct {
	Name string
	Len  int
}

// Attr is a (name, typed values) attribute. Values holds []int8, []int16,
// []int32, []float32, []float64 or, for Char, a string.
type Attr struct {
	Name   string
	Type   Type
	Values any
}

// Var is a variable: a typed multidimensional array over dimensions.
type Var struct {
	Name  string
	Type  Type
	Dims  []int // indices into File.Dims, outermost first
	Attrs []Attr

	vsize int64 // per the spec: external size, padded (per record if record var)
	begin int64 // byte offset of the variable's data
}

// File is a parsed NetCDF file.
type File struct {
	Version    int // 1 (classic) or 2 (64-bit offset)
	NumRecs    int
	Dims       []Dim
	GlobalAttr []Attr
	Vars       []Var

	r       io.ReaderAt
	closer  io.Closer
	recSize int64 // bytes per record across all record variables
	recDim  int   // index of the record dimension, -1 if none
	fsize   int64 // total size of the data source, -1 if unknown

	// Cache is non-nil when the file was opened with OpenCached; it
	// exposes the block cache's statistics. IOStats folds these in, so
	// most callers never need the concrete cache.
	Cache *CachedReaderAt

	// stats accumulates slab-read counters; read via IOStats, which also
	// collects cache/retry/fault counters from the reader stack. The
	// counters are atomic because tile-backed lazy arrays fetch slabs from
	// concurrent tabulation workers sharing one File.
	stats struct {
		slabReads atomic.Int64
		bytesRead atomic.Int64
	}
}

// Open opens and parses a NetCDF file on disk.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netcdf: %w", err)
	}
	nc, err := Read(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	nc.closer = f
	return nc, nil
}

// Read parses a NetCDF header from r. Variable data is read lazily through
// r on each slab request.
//
// When the total size of r is discoverable (os.File, bytes.Reader,
// io.SectionReader, the reader wrappers of this package, or anything
// implementing Size() int64 or Stat()), every header-declared count,
// offset and record count is validated against it before any allocation,
// so a truncated or corrupt file is rejected with a descriptive error
// rather than a panic or a multi-gigabyte allocation.
func Read(r io.ReaderAt) (*File, error) {
	p := &headerParser{r: r, size: readerSize(r)}
	return p.parse()
}

// readerSize reports the total byte size of r, or -1 if undiscoverable.
func readerSize(r io.ReaderAt) int64 {
	switch v := r.(type) {
	case interface{ Size() int64 }:
		return v.Size()
	case interface{ Stat() (os.FileInfo, error) }:
		if fi, err := v.Stat(); err == nil {
			return fi.Size()
		}
	}
	return -1
}

// Close releases the underlying file, if Open created it.
func (f *File) Close() error {
	if f.closer != nil {
		return f.closer.Close()
	}
	return nil
}

// Var returns the named variable.
func (f *File) Var(name string) (*Var, error) {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i], nil
		}
	}
	return nil, fmt.Errorf("netcdf: no variable %q", name)
}

// Shape returns the lengths of the variable's dimensions, with the record
// dimension resolved to the current record count.
func (f *File) Shape(v *Var) []int {
	shape := make([]int, len(v.Dims))
	for i, d := range v.Dims {
		if d == f.recDim {
			shape[i] = f.NumRecs
		} else {
			shape[i] = f.Dims[d].Len
		}
	}
	return shape
}

// isRecord reports whether v uses the record dimension (necessarily first).
func (f *File) isRecord(v *Var) bool {
	return len(v.Dims) > 0 && v.Dims[0] == f.recDim && f.recDim >= 0
}

// --- header parsing -------------------------------------------------------

type headerParser struct {
	r    io.ReaderAt
	off  int64
	size int64 // total data-source size, -1 if unknown
}

func (p *headerParser) errf(format string, args ...any) error {
	return fmt.Errorf("netcdf: offset %d: %s", p.off, fmt.Sprintf(format, args...))
}

func (p *headerParser) bytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, p.errf("negative read length %d", n)
	}
	// Validate against the file size BEFORE allocating: a corrupt header
	// can declare a count whose value block would be gigabytes; without
	// this check the allocation happens before the read fails at EOF.
	if p.size >= 0 && p.off+int64(n) > p.size {
		return nil, p.errf("truncated file: need %d bytes, only %d remain", n, p.size-p.off)
	}
	buf := make([]byte, n)
	if _, err := p.r.ReadAt(buf, p.off); err != nil {
		return nil, p.errf("read %d bytes: %v", n, err)
	}
	p.off += int64(n)
	return buf, nil
}

func (p *headerParser) u32() (uint32, error) {
	b, err := p.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (p *headerParser) i32() (int32, error) {
	u, err := p.u32()
	return int32(u), err
}

func (p *headerParser) i64() (int64, error) {
	b, err := p.bytes(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(b)), nil
}

// name reads a length-prefixed, 4-byte-padded name.
func (p *headerParser) name() (string, error) {
	n, err := p.i32()
	if err != nil {
		return "", err
	}
	if n < 0 || n > 1<<20 {
		return "", p.errf("implausible name length %d", n)
	}
	b, err := p.bytes(int(pad4(int64(n))))
	if err != nil {
		return "", err
	}
	return string(b[:n]), nil
}

func pad4(n int64) int64 {
	if r := n % 4; r != 0 {
		return n + 4 - r
	}
	return n
}

func (p *headerParser) parse() (*File, error) {
	magic, err := p.bytes(4)
	if err != nil {
		return nil, err
	}
	if magic[0] != 'C' || magic[1] != 'D' || magic[2] != 'F' {
		return nil, p.errf("not a NetCDF classic file (magic %q)", magic[:3])
	}
	version := int(magic[3])
	if version != 1 && version != 2 {
		return nil, p.errf("unsupported NetCDF version %d (only classic and 64-bit offset)", version)
	}
	numRecsU, err := p.u32()
	if err != nil {
		return nil, err
	}
	numRecs := int(int32(numRecsU))
	if numRecsU == 0xFFFFFFFF {
		// STREAMING sentinel; record count must be derived from file size.
		numRecs = -1
	}
	f := &File{Version: version, NumRecs: numRecs, recDim: -1, r: p.r, fsize: p.size}

	// dim_list
	dims, err := p.list(tagDimension)
	if err != nil {
		return nil, err
	}
	for i := 0; i < dims; i++ {
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		length, err := p.i32()
		if err != nil {
			return nil, err
		}
		if length < 0 {
			return nil, p.errf("negative dimension length %d", length)
		}
		if length == 0 {
			if f.recDim >= 0 {
				return nil, p.errf("multiple record dimensions")
			}
			f.recDim = i
		}
		f.Dims = append(f.Dims, Dim{Name: name, Len: int(length)})
	}

	// gatt_list
	gatts, err := p.attrs()
	if err != nil {
		return nil, err
	}
	f.GlobalAttr = gatts

	// var_list
	nvars, err := p.list(tagVariable)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nvars; i++ {
		v, err := p.variable(f)
		if err != nil {
			return nil, err
		}
		f.Vars = append(f.Vars, v)
	}

	// Record size: the sum of record variables' vsizes (with the
	// single-record-variable special case where vsize may be unpadded).
	for i := range f.Vars {
		if f.isRecord(&f.Vars[i]) {
			f.recSize += f.Vars[i].vsize
		}
	}
	if numRecs == -1 {
		return nil, p.errf("streaming record counts are not supported")
	}
	// The record data must physically fit in the file; division avoids
	// overflow for absurd header values. This rejects the corrupt-numrecs
	// OOM class: shapes derived from NumRecs size later allocations.
	if p.size >= 0 && f.recSize > 0 && int64(numRecs) > p.size/f.recSize {
		return nil, p.errf("record count %d needs %d bytes per record but file has only %d bytes",
			numRecs, f.recSize, p.size)
	}
	return f, nil
}

// list reads a list header (tag + count), allowing the ABSENT form.
func (p *headerParser) list(wantTag int32) (int, error) {
	tag, err := p.i32()
	if err != nil {
		return 0, err
	}
	count, err := p.i32()
	if err != nil {
		return 0, err
	}
	if tag == 0 && count == 0 {
		return 0, nil // ABSENT
	}
	if tag != wantTag {
		return 0, p.errf("expected list tag %#x, got %#x", wantTag, tag)
	}
	if count < 0 || count > 1<<20 {
		return 0, p.errf("implausible list count %d", count)
	}
	// Every list entry (dimension, attribute, variable) occupies at least 8
	// bytes in the header, so a count the file cannot physically hold is
	// rejected before any per-entry allocation.
	if p.size >= 0 && int64(count)*8 > p.size {
		return 0, p.errf("list count %d exceeds file size %d", count, p.size)
	}
	return int(count), nil
}

func (p *headerParser) attrs() ([]Attr, error) {
	n, err := p.list(tagAttribute)
	if err != nil {
		return nil, err
	}
	var attrs []Attr
	for i := 0; i < n; i++ {
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		typI, err := p.i32()
		if err != nil {
			return nil, err
		}
		typ := Type(typI)
		if typ.Size() == 0 {
			return nil, p.errf("attribute %q: bad type %d", name, typI)
		}
		count, err := p.i32()
		if err != nil {
			return nil, err
		}
		if count < 0 || count > 1<<24 {
			return nil, p.errf("attribute %q: implausible count %d", name, count)
		}
		if p.size >= 0 && int64(count)*int64(typ.Size()) > p.size {
			return nil, p.errf("attribute %q: %d values of %s exceed file size %d",
				name, count, typ, p.size)
		}
		raw, err := p.bytes(int(pad4(int64(count) * int64(typ.Size()))))
		if err != nil {
			return nil, err
		}
		vals, err := decodeValues(typ, raw, int(count))
		if err != nil {
			return nil, p.errf("attribute %q: %v", name, err)
		}
		attrs = append(attrs, Attr{Name: name, Type: typ, Values: vals})
	}
	return attrs, nil
}

func (p *headerParser) variable(f *File) (Var, error) {
	name, err := p.name()
	if err != nil {
		return Var{}, err
	}
	ndims, err := p.i32()
	if err != nil {
		return Var{}, err
	}
	if ndims < 0 || int(ndims) > len(f.Dims) {
		return Var{}, p.errf("variable %q: bad rank %d", name, ndims)
	}
	dims := make([]int, ndims)
	for j := range dims {
		d, err := p.i32()
		if err != nil {
			return Var{}, err
		}
		if d < 0 || int(d) >= len(f.Dims) {
			return Var{}, p.errf("variable %q: bad dimension id %d", name, d)
		}
		dims[j] = int(d)
		if int(d) == f.recDim && j != 0 {
			return Var{}, p.errf("variable %q: record dimension must be outermost", name)
		}
	}
	attrs, err := p.attrs()
	if err != nil {
		return Var{}, err
	}
	typI, err := p.i32()
	if err != nil {
		return Var{}, err
	}
	typ := Type(typI)
	if typ.Size() == 0 {
		return Var{}, p.errf("variable %q: bad type %d", name, typI)
	}
	vsize, err := p.i32()
	if err != nil {
		return Var{}, err
	}
	var begin int64
	if f.Version == 1 {
		b, err := p.i32()
		if err != nil {
			return Var{}, err
		}
		begin = int64(b)
	} else {
		begin, err = p.i64()
		if err != nil {
			return Var{}, err
		}
	}
	if begin < 0 || (p.size >= 0 && begin > p.size) {
		return Var{}, p.errf("variable %q: data offset %d beyond file size %d", name, begin, p.size)
	}
	vs := int64(uint32(vsize))
	if p.size >= 0 && vs > p.size {
		return Var{}, p.errf("variable %q: vsize %d exceeds file size %d", name, vs, p.size)
	}
	return Var{Name: name, Type: typ, Dims: dims, Attrs: attrs,
		vsize: vs, begin: begin}, nil
}

// decodeValues converts big-endian external data into a Go slice (or string
// for Char).
func decodeValues(typ Type, raw []byte, count int) (any, error) {
	if count*typ.Size() > len(raw) {
		return nil, fmt.Errorf("short value block: %d values of %s in %d bytes", count, typ, len(raw))
	}
	switch typ {
	case Char:
		return string(raw[:count]), nil
	case Byte:
		out := make([]int8, count)
		for i := range out {
			out[i] = int8(raw[i])
		}
		return out, nil
	case Short:
		out := make([]int16, count)
		for i := range out {
			out[i] = int16(binary.BigEndian.Uint16(raw[2*i:]))
		}
		return out, nil
	case Int:
		out := make([]int32, count)
		for i := range out {
			out[i] = int32(binary.BigEndian.Uint32(raw[4*i:]))
		}
		return out, nil
	case Float:
		out := make([]float32, count)
		for i := range out {
			out[i] = math.Float32frombits(binary.BigEndian.Uint32(raw[4*i:]))
		}
		return out, nil
	case Double:
		out := make([]float64, count)
		for i := range out {
			out[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[8*i:]))
		}
		return out, nil
	}
	return nil, fmt.Errorf("bad type %d", typ)
}
