package netcdf

import (
	"context"
	"fmt"
)

// ReadCellRangeCtx reads n cells of a numeric variable starting at flat
// row-major cell index start, decoding them to float64. It is the fetch
// primitive of the tile subsystem: a tile is exactly a contiguous run of
// the flattened cell space, so the tile cache can fault in [start, start+n)
// without reconstructing a multidimensional hyperslab. For non-record
// variables the range is one contiguous byte run; for record variables it
// decomposes into one contiguous run per record (records of different
// variables are interleaved at recSize strides). ctx is checked between
// chunk reads and passed through to readers that support per-call
// cancellation (RetryingReaderAt.ReadAtCtx).
func (f *File) ReadCellRangeCtx(ctx context.Context, varName string, start, n int) ([]float64, error) {
	v, err := f.validateCellRange(varName, start, n)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	shape := f.Shape(v)
	tsize := int64(v.Type.Size())
	cellsPerRec := recordCells(f, v, shape)

	out := make([]float64, 0, n)
	f.stats.slabReads.Add(1)
	if cellsPerRec > 0 {
		// One contiguous run per record touched by the range.
		for off := start; off < start+n; {
			rec := off / cellsPerRec
			inner := off % cellsPerRec
			run := cellsPerRec - inner
			if rem := start + n - off; run > rem {
				run = rem
			}
			base := v.begin + int64(rec)*f.recSize + int64(inner)*tsize
			if err := f.readRun(ctx, varName, base, run, tsize, v.Type, &out); err != nil {
				return nil, err
			}
			off += run
		}
		return out, nil
	}
	if err := f.readRun(ctx, varName, v.begin+int64(start)*tsize, n, tsize, v.Type, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ValidateCellRange checks that cell range [start, start+n) of a numeric
// variable lies within the variable's declared extent and — when the data
// source's size is known — within the file, without reading any data. The
// lazy readers call it at bind time so a truncated or corrupt data region
// fails the readval, exactly as an eager whole-slab read would, instead of
// surfacing mid-query at the first tile fetch.
func (f *File) ValidateCellRange(varName string, start, n int) error {
	_, err := f.validateCellRange(varName, start, n)
	return err
}

func (f *File) validateCellRange(varName string, start, n int) (*Var, error) {
	v, err := f.Var(varName)
	if err != nil {
		return nil, err
	}
	if v.Type == Char {
		return nil, fmt.Errorf("netcdf: %s: cell-range reads are for numeric variables, not char", varName)
	}
	shape := f.Shape(v)
	size := 1
	for _, d := range shape {
		size *= d
	}
	if start < 0 || n < 0 || start+n > size {
		return nil, fmt.Errorf("netcdf: %s: cell range [%d, %d) exceeds variable size %d",
			varName, start, start+n, size)
	}
	if n == 0 {
		return v, nil
	}
	tsize := int64(v.Type.Size())
	cellsPerRec := recordCells(f, v, shape)
	// Reject ranges that extend past end-of-file, same contract as
	// ReadSlab: truncated data regions fail with a descriptive error, not
	// an EOF deep in the read loop.
	if f.fsize >= 0 {
		end := v.begin + int64(start+n)*tsize
		if cellsPerRec > 0 {
			lastRec := int64((start + n - 1) / cellsPerRec)
			lastInner := int64((start + n - 1) % cellsPerRec)
			end = v.begin + lastRec*f.recSize + (lastInner+1)*tsize
		}
		if end > f.fsize {
			return nil, fmt.Errorf("netcdf: %s: cell range ends at byte %d but file has only %d bytes (truncated?)",
				varName, end, f.fsize)
		}
	}
	return v, nil
}

// recordCells returns the cell count of one record of v, or 0 for
// non-record (fully contiguous) variables.
func recordCells(f *File, v *Var, shape []int) int {
	if !f.isRecord(v) || len(shape) == 0 {
		return 0
	}
	n := 1
	for _, d := range shape[1:] {
		n *= d
	}
	return n
}

// readRun reads one contiguous run of count cells at byte offset base,
// decoding into out. Reads are chunked so a huge tile size cannot force a
// matching buffer allocation, with a ctx check before each chunk.
func (f *File) readRun(ctx context.Context, varName string, base int64, count int, tsize int64, typ Type, out *[]float64) error {
	const maxRunBytes = 1 << 22
	chunkElems := count
	if int64(chunkElems)*tsize > maxRunBytes {
		chunkElems = int(maxRunBytes / tsize)
		if chunkElems == 0 {
			chunkElems = 1
		}
	}
	buf := make([]byte, int64(chunkElems)*tsize)
	for done := 0; done < count; done += chunkElems {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("netcdf: %s: read cancelled: %w", varName, err)
			}
		}
		c := chunkElems
		if count-done < c {
			c = count - done
		}
		chunk := buf[:int64(c)*tsize]
		if _, err := f.readAtCtx(ctx, chunk, base+int64(done)*tsize); err != nil {
			return fmt.Errorf("netcdf: %s: read at %d: %w", varName, base, err)
		}
		f.stats.bytesRead.Add(int64(len(chunk)))
		for i := 0; i < c; i++ {
			*out = append(*out, decodeScalar(typ, chunk[int64(i)*tsize:]))
		}
	}
	return nil
}

// ctxReaderAt is implemented by readers that accept a per-call context
// (RetryingReaderAt); readAtCtx routes through it when available so query
// cancellation aborts in-flight fetches mid-backoff.
type ctxReaderAt interface {
	ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error)
}

func (f *File) readAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	if ctx != nil {
		if rc, ok := f.r.(ctxReaderAt); ok {
			return rc.ReadAtCtx(ctx, p, off)
		}
	}
	return f.r.ReadAt(p, off)
}
