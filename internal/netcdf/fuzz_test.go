package netcdf

import (
	"bytes"
	"testing"
)

// FuzzRead asserts the header parser never panics or over-allocates on
// arbitrary bytes (truncations, corrupt counts, bad tags).
func FuzzRead(f *testing.F) {
	// Seed with a valid file and mutations of it.
	b := NewBuilder()
	d, _ := b.AddDim("x", 3)
	_ = b.AddVar("v", Int, []int{d}, nil, []float64{1, 2, 3})
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for cut := 1; cut < len(valid); cut += 7 {
		f.Add(valid[:cut])
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[8] = 0xFF // implausible list count
	f.Add(corrupt)
	f.Add([]byte("CDF\x01"))
	f.Add([]byte("CDF\x02\x00\x00\x00\x00"))
	f.Add([]byte("not netcdf"))

	f.Fuzz(func(t *testing.T, data []byte) {
		nc, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A file the parser accepts must tolerate slab reads of every
		// variable without panicking.
		for _, v := range nc.Vars {
			shape := nc.Shape(&v)
			start := make([]int, len(shape))
			_, _ = nc.ReadSlab(v.Name, start, shape)
		}
	})
}
