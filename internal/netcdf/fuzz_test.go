package netcdf

import (
	"bytes"
	"testing"
)

// FuzzRead asserts the header parser never panics or over-allocates on
// arbitrary bytes (truncations, corrupt counts, bad tags).
func FuzzRead(f *testing.F) {
	// Seed with a valid file and mutations of it.
	b := NewBuilder()
	d, _ := b.AddDim("x", 3)
	_ = b.AddVar("v", Int, []int{d}, nil, []float64{1, 2, 3})
	var buf bytes.Buffer
	if err := b.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for cut := 1; cut < len(valid); cut += 7 {
		f.Add(valid[:cut])
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[8] = 0xFF // implausible list count
	f.Add(corrupt)
	f.Add([]byte("CDF\x01"))
	f.Add([]byte("CDF\x02\x00\x00\x00\x00"))
	f.Add([]byte("not netcdf"))

	// A richer seed: attributes, a record dimension and an interleaved
	// record variable exercise the header paths plain files miss.
	rb := NewBuilder()
	rb.AddGlobalAttr(Attr{Name: "title", Type: Char, Values: "fuzz corpus"})
	rb.AddGlobalAttr(Attr{Name: "version", Type: Int, Values: []int32{2}})
	rec, _ := rb.AddRecordDim("t", 3)
	rx, _ := rb.AddDim("y", 2)
	_ = rb.AddVar("fv", Double, []int{rx},
		[]Attr{{Name: "units", Type: Char, Values: "degF"}}, []float64{1.5, -2.5})
	_ = rb.AddVar("rv", Short, []int{rec, rx}, nil, []float64{1, 2, 3, 4, 5, 6})
	_ = rb.AddCharVar("name", []int{rx}, nil, []byte("ab"))
	var rbuf bytes.Buffer
	if err := rb.Encode(&rbuf); err != nil {
		f.Fatal(err)
	}
	rich := rbuf.Bytes()
	f.Add(rich)
	// Truncated variants: every prefix stride hits a different parser stage.
	for cut := 1; cut < len(rich); cut += 5 {
		f.Add(rich[:cut])
	}
	// Truncated inside the data region: the header parses but cell-range
	// reads (the tile fetch path) run against a short file.
	f.Add(rich[:len(rich)-4])
	f.Add(rich[:len(rich)-9])
	// Single-bit flips across the header region.
	for off := 0; off < len(rich) && off < 96; off += 3 {
		flipped := append([]byte(nil), rich...)
		flipped[off] ^= 0x80
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		nc, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A file the parser accepts must tolerate slab reads and
		// tile-style cell-range reads of every variable without panicking.
		for _, v := range nc.Vars {
			shape := nc.Shape(&v)
			start := make([]int, len(shape))
			_, _ = nc.ReadSlab(v.Name, start, shape)
			size := 1
			for _, d := range shape {
				size *= d
			}
			if err := nc.ValidateCellRange(v.Name, 0, size); err == nil {
				_, _ = nc.ReadCellRangeCtx(nil, v.Name, 0, size)
			}
			// Misaligned sub-ranges exercise the record-run decomposition.
			if size > 2 {
				_, _ = nc.ReadCellRangeCtx(nil, v.Name, 1, size-2)
			}
		}
	})
}
