package netcdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Builder constructs a NetCDF classic file in memory and serializes it.
// It exists both for tests (round-tripping the reader) and so that the
// example programs can synthesize genuine .nc inputs for the AQL driver —
// our stand-in for the paper's real climate files.
type Builder struct {
	version int
	dims    []Dim
	gattrs  []Attr
	vars    []builderVar
	recDim  int
	numRecs int
}

type builderVar struct {
	name  string
	typ   Type
	dims  []int
	attrs []Attr
	data  []float64 // numeric payload, row-major
	text  []byte    // Char payload
}

// NewBuilder returns an empty classic-format (CDF-1) builder.
func NewBuilder() *Builder {
	return &Builder{version: 1, recDim: -1}
}

// SetVersion selects 1 (classic, 32-bit offsets) or 2 (64-bit offsets).
func (b *Builder) SetVersion(v int) error {
	if v != 1 && v != 2 {
		return fmt.Errorf("netcdf: unsupported version %d", v)
	}
	b.version = v
	return nil
}

// AddDim adds a fixed dimension and returns its id.
func (b *Builder) AddDim(name string, length int) (int, error) {
	if length <= 0 {
		return 0, fmt.Errorf("netcdf: dimension %q must have positive length", name)
	}
	b.dims = append(b.dims, Dim{Name: name, Len: length})
	return len(b.dims) - 1, nil
}

// AddRecordDim adds the record (unlimited) dimension with the given current
// record count and returns its id. At most one is allowed.
func (b *Builder) AddRecordDim(name string, numRecs int) (int, error) {
	if b.recDim >= 0 {
		return 0, fmt.Errorf("netcdf: a record dimension already exists")
	}
	if numRecs < 0 {
		return 0, fmt.Errorf("netcdf: negative record count")
	}
	b.recDim = len(b.dims)
	b.numRecs = numRecs
	b.dims = append(b.dims, Dim{Name: name, Len: 0})
	return b.recDim, nil
}

// AddGlobalAttr attaches a global attribute.
func (b *Builder) AddGlobalAttr(a Attr) { b.gattrs = append(b.gattrs, a) }

// AddVar adds a numeric variable over the given dimension ids with its
// row-major data. The data length must match the variable's total size
// (with the record dimension contributing the builder's record count).
func (b *Builder) AddVar(name string, typ Type, dimIDs []int, attrs []Attr, data []float64) error {
	if typ == Char {
		return fmt.Errorf("netcdf: use AddCharVar for char data")
	}
	if typ.Size() == 0 {
		return fmt.Errorf("netcdf: bad type %d", typ)
	}
	size, err := b.varSize(name, dimIDs)
	if err != nil {
		return err
	}
	if size != len(data) {
		return fmt.Errorf("netcdf: variable %q needs %d values, got %d", name, size, len(data))
	}
	b.vars = append(b.vars, builderVar{name: name, typ: typ, dims: append([]int(nil), dimIDs...), attrs: attrs, data: data})
	return nil
}

// AddCharVar adds a char variable with its raw bytes.
func (b *Builder) AddCharVar(name string, dimIDs []int, attrs []Attr, text []byte) error {
	size, err := b.varSize(name, dimIDs)
	if err != nil {
		return err
	}
	if size != len(text) {
		return fmt.Errorf("netcdf: variable %q needs %d chars, got %d", name, size, len(text))
	}
	b.vars = append(b.vars, builderVar{name: name, typ: Char, dims: append([]int(nil), dimIDs...), attrs: attrs, text: text})
	return nil
}

func (b *Builder) varSize(name string, dimIDs []int) (int, error) {
	size := 1
	for j, d := range dimIDs {
		if d < 0 || d >= len(b.dims) {
			return 0, fmt.Errorf("netcdf: variable %q: bad dimension id %d", name, d)
		}
		if d == b.recDim {
			if j != 0 {
				return 0, fmt.Errorf("netcdf: variable %q: record dimension must be outermost", name)
			}
			size *= b.numRecs
		} else {
			size *= b.dims[d].Len
		}
	}
	return size, nil
}

// WriteFile serializes the file to disk.
func (b *Builder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("netcdf: %w", err)
	}
	if err := b.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Encode serializes the file to w.
func (b *Builder) Encode(w io.Writer) error {
	// Plan the layout: header size, then fixed variables, then the record
	// block.
	header := b.encodeHeaderWithOffsets(nil) // first pass with zero offsets to size it
	offset := pad4(int64(len(header)))

	begins := make([]int64, len(b.vars))
	// Fixed variables first.
	for i := range b.vars {
		v := &b.vars[i]
		if b.usesRecord(v) {
			continue
		}
		begins[i] = offset
		offset += pad4(b.fixedSize(v))
	}
	// Record variables, interleaved per record.
	for i := range b.vars {
		v := &b.vars[i]
		if !b.usesRecord(v) {
			continue
		}
		begins[i] = offset
		offset += b.recordSlot(v)
	}

	header = b.encodeHeaderWithOffsets(begins)
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(header); err != nil {
		return err
	}
	// Padding between header and data.
	for n := int64(len(header)); n%4 != 0; n++ {
		bw.WriteByte(0)
	}

	// Fixed variable data.
	for i := range b.vars {
		v := &b.vars[i]
		if b.usesRecord(v) {
			continue
		}
		if err := b.writeValues(bw, v, 0, b.elemCount(v)); err != nil {
			return err
		}
		for n := b.fixedSize(v); n%4 != 0; n++ {
			bw.WriteByte(0)
		}
	}
	// Record data: for each record, each record variable's slice.
	perRec := make([]int, len(b.vars))
	for i := range b.vars {
		v := &b.vars[i]
		if b.usesRecord(v) && b.numRecs > 0 {
			perRec[i] = b.elemCount(v) / b.numRecs
		}
	}
	for r := 0; r < b.numRecs; r++ {
		for i := range b.vars {
			v := &b.vars[i]
			if !b.usesRecord(v) {
				continue
			}
			if err := b.writeValues(bw, v, r*perRec[i], perRec[i]); err != nil {
				return err
			}
			slot := int64(perRec[i]) * int64(v.typ.Size())
			for n := slot; n < b.recordSlot(v); n++ {
				bw.WriteByte(0)
			}
		}
	}
	return bw.Flush()
}

func (b *Builder) usesRecord(v *builderVar) bool {
	return len(v.dims) > 0 && v.dims[0] == b.recDim && b.recDim >= 0
}

// elemCount is the total number of elements currently stored for v.
func (b *Builder) elemCount(v *builderVar) int {
	if v.typ == Char {
		return len(v.text)
	}
	return len(v.data)
}

// fixedSize is the unpadded byte size of a fixed variable's data.
func (b *Builder) fixedSize(v *builderVar) int64 {
	return int64(b.elemCount(v)) * int64(v.typ.Size())
}

// recordSlot is the padded per-record byte size of a record variable.
func (b *Builder) recordSlot(v *builderVar) int64 {
	per := int64(0)
	if b.numRecs > 0 {
		per = int64(b.elemCount(v)/b.numRecs) * int64(v.typ.Size())
	} else {
		// No records yet: compute from dimensions.
		n := int64(1)
		for _, d := range v.dims[1:] {
			n *= int64(b.dims[d].Len)
		}
		per = n * int64(v.typ.Size())
	}
	return pad4(per)
}

// vsize per the spec: the padded data size (per record for record vars).
func (b *Builder) vsizeOf(v *builderVar) int64 {
	if b.usesRecord(v) {
		return b.recordSlot(v)
	}
	return pad4(b.fixedSize(v))
}

func (b *Builder) writeValues(w *bufio.Writer, v *builderVar, from, n int) error {
	if v.typ == Char {
		_, err := w.Write(v.text[from : from+n])
		return err
	}
	var buf [8]byte
	for _, f := range v.data[from : from+n] {
		switch v.typ {
		case Byte:
			w.WriteByte(byte(int8(f)))
		case Short:
			binary.BigEndian.PutUint16(buf[:2], uint16(int16(f)))
			w.Write(buf[:2])
		case Int:
			binary.BigEndian.PutUint32(buf[:4], uint32(int32(f)))
			w.Write(buf[:4])
		case Float:
			binary.BigEndian.PutUint32(buf[:4], math.Float32bits(float32(f)))
			w.Write(buf[:4])
		case Double:
			binary.BigEndian.PutUint64(buf[:8], math.Float64bits(f))
			w.Write(buf[:8])
		default:
			return fmt.Errorf("netcdf: bad type %d", v.typ)
		}
	}
	return nil
}

// encodeHeaderWithOffsets builds the header bytes; begins may be nil during
// the sizing pass.
func (b *Builder) encodeHeaderWithOffsets(begins []int64) []byte {
	var out []byte
	w32 := func(v int32) { out = binary.BigEndian.AppendUint32(out, uint32(v)) }
	w64 := func(v int64) { out = binary.BigEndian.AppendUint64(out, uint64(v)) }
	name := func(s string) {
		w32(int32(len(s)))
		out = append(out, s...)
		for len(out)%4 != 0 {
			out = append(out, 0)
		}
	}
	attrs := func(list []Attr) {
		if len(list) == 0 {
			w32(0)
			w32(0)
			return
		}
		w32(tagAttribute)
		w32(int32(len(list)))
		for _, a := range list {
			name(a.Name)
			w32(int32(a.Type))
			raw, count := encodeValues(a.Type, a.Values)
			w32(int32(count))
			out = append(out, raw...)
			for len(out)%4 != 0 {
				out = append(out, 0)
			}
		}
	}

	out = append(out, 'C', 'D', 'F', byte(b.version))
	w32(int32(b.numRecs))
	// dim_list
	if len(b.dims) == 0 {
		w32(0)
		w32(0)
	} else {
		w32(tagDimension)
		w32(int32(len(b.dims)))
		for _, d := range b.dims {
			name(d.Name)
			w32(int32(d.Len))
		}
	}
	attrs(b.gattrs)
	// var_list
	if len(b.vars) == 0 {
		w32(0)
		w32(0)
	} else {
		w32(tagVariable)
		w32(int32(len(b.vars)))
		for i := range b.vars {
			v := &b.vars[i]
			name(v.name)
			w32(int32(len(v.dims)))
			for _, d := range v.dims {
				w32(int32(d))
			}
			attrs(v.attrs)
			w32(int32(v.typ))
			w32(int32(b.vsizeOf(v)))
			var begin int64
			if begins != nil {
				begin = begins[i]
			}
			if b.version == 1 {
				w32(int32(begin))
			} else {
				w64(begin)
			}
		}
	}
	return out
}

// encodeValues serializes attribute values, returning the raw bytes and the
// element count.
func encodeValues(typ Type, values any) ([]byte, int) {
	var out []byte
	switch typ {
	case Char:
		s, _ := values.(string)
		return []byte(s), len(s)
	case Byte:
		vs, _ := values.([]int8)
		for _, v := range vs {
			out = append(out, byte(v))
		}
		return out, len(vs)
	case Short:
		vs, _ := values.([]int16)
		for _, v := range vs {
			out = binary.BigEndian.AppendUint16(out, uint16(v))
		}
		return out, len(vs)
	case Int:
		vs, _ := values.([]int32)
		for _, v := range vs {
			out = binary.BigEndian.AppendUint32(out, uint32(v))
		}
		return out, len(vs)
	case Float:
		vs, _ := values.([]float32)
		for _, v := range vs {
			out = binary.BigEndian.AppendUint32(out, math.Float32bits(v))
		}
		return out, len(vs)
	case Double:
		vs, _ := values.([]float64)
		for _, v := range vs {
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
		}
		return out, len(vs)
	}
	return nil, 0
}
