package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Admission defaults, used when Config leaves the fields zero.
const (
	DefaultMaxConcurrent = 8
	DefaultMaxQueued     = 32
	DefaultQueueTimeout  = 2 * time.Second
)

// AdmissionKind distinguishes why admission rejected a request.
type AdmissionKind string

const (
	// AdmissionQueueFull: the wait queue was at capacity; the request was
	// turned away immediately (HTTP 429).
	AdmissionQueueFull AdmissionKind = "queue_full"
	// AdmissionQueueTimeout: the request waited its full queue timeout
	// without an execution slot freeing up (HTTP 503).
	AdmissionQueueTimeout AdmissionKind = "queue_timeout"
	// AdmissionCancelled: the client went away while the request was still
	// queued.
	AdmissionCancelled AdmissionKind = "cancelled"
)

// AdmissionError is the typed rejection returned when a request does not
// get an execution slot.
type AdmissionError struct {
	Kind AdmissionKind
	// Waited is how long the request spent queued before rejection.
	Waited time.Duration
}

func (e *AdmissionError) Error() string {
	switch e.Kind {
	case AdmissionQueueFull:
		return "admission: queue full"
	case AdmissionQueueTimeout:
		return fmt.Sprintf("admission: no slot within %s", e.Waited.Round(time.Millisecond))
	default:
		return "admission: cancelled while queued"
	}
}

// AdmissionStats is a snapshot of the admission controller's counters and
// current occupancy.
type AdmissionStats struct {
	MaxConcurrent int   `json:"max_concurrent"`
	MaxQueued     int   `json:"max_queued"`
	Active        int   `json:"active"`
	Queued        int   `json:"queued"`
	Admitted      int64 `json:"admitted"`
	RejectedFull  int64 `json:"rejected_queue_full"`
	RejectedWait  int64 `json:"rejected_queue_timeout"`
	Cancelled     int64 `json:"cancelled_while_queued"`
}

// admission bounds in-flight query executions with a semaphore and a
// bounded wait queue: at most maxConcurrent requests execute, at most
// maxQueued more wait (up to queueTimeout each), and anything beyond that
// is rejected immediately with a typed error. All methods are safe for
// concurrent use.
type admission struct {
	slots        chan struct{} // execution slots; acquire = send
	queueTimeout time.Duration
	maxQueued    int

	queued       atomic.Int64
	admitted     atomic.Int64
	rejectedFull atomic.Int64
	rejectedWait atomic.Int64
	cancelled    atomic.Int64

	queueWait waitHist
}

func newAdmission(maxConcurrent, maxQueued int, queueTimeout time.Duration) *admission {
	if maxConcurrent <= 0 {
		maxConcurrent = DefaultMaxConcurrent
	}
	if maxQueued <= 0 {
		maxQueued = DefaultMaxQueued
	}
	if queueTimeout <= 0 {
		queueTimeout = DefaultQueueTimeout
	}
	return &admission{
		slots:        make(chan struct{}, maxConcurrent),
		maxQueued:    maxQueued,
		queueTimeout: queueTimeout,
	}
}

// acquire blocks until the request holds an execution slot, up to the queue
// timeout, and returns a release func plus the time spent queued (zero on
// the fast path). The error, when non-nil, is an *AdmissionError; the
// caller maps its Kind to an HTTP status. Every wait — admitted or not —
// feeds the queue-wait histogram, so /metrics separates queueing delay
// from evaluation time under overload.
func (a *admission) acquire(ctx context.Context) (release func(), waited time.Duration, err error) {
	// A client that is already gone is never admitted, even when a slot is
	// free: running its query would only be torn down again by the eval
	// context, skewing the admitted/active counters meanwhile.
	if ctx.Err() != nil {
		a.cancelled.Add(1)
		return nil, 0, &AdmissionError{Kind: AdmissionCancelled}
	}

	// Fast path: a slot is free right now.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.queueWait.observe(0)
		return a.release, 0, nil
	default:
	}

	// Queue, if there is room. Turned-away requests never waited, so they
	// do not feed the histogram.
	if q := a.queued.Add(1); q > int64(a.maxQueued) {
		a.queued.Add(-1)
		a.rejectedFull.Add(1)
		return nil, 0, &AdmissionError{Kind: AdmissionQueueFull}
	}
	defer a.queued.Add(-1)

	start := time.Now()
	t := time.NewTimer(a.queueTimeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		waited = time.Since(start)
		a.queueWait.observe(waited)
		return a.release, waited, nil
	case <-t.C:
		a.rejectedWait.Add(1)
		waited = time.Since(start)
		a.queueWait.observe(waited)
		return nil, waited, &AdmissionError{Kind: AdmissionQueueTimeout, Waited: waited}
	case <-ctx.Done():
		a.cancelled.Add(1)
		waited = time.Since(start)
		a.queueWait.observe(waited)
		return nil, waited, &AdmissionError{Kind: AdmissionCancelled, Waited: waited}
	}
}

// queueWaitBuckets are the histogram's upper bounds in seconds; a final
// implicit +Inf bucket catches the rest. The range spans "never queued"
// through the default queue timeout.
var queueWaitBuckets = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// waitHist is a fixed-bucket, lock-free duration histogram in the
// Prometheus cumulative-exposition shape.
type waitHist struct {
	counts [len(queueWaitBuckets) + 1]atomic.Int64
	sumNS  atomic.Int64
}

func (h *waitHist) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for ; i < len(queueWaitBuckets); i++ {
		if sec <= queueWaitBuckets[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
}

// WaitHistogram is a snapshot of the queue-wait histogram: Counts[i] is the
// cumulative count at le=Buckets[i], with Counts[len(Buckets)] the +Inf
// (total) count.
type WaitHistogram struct {
	Buckets []float64
	Counts  []int64
	Sum     time.Duration
}

func (h *waitHist) snapshot() WaitHistogram {
	out := WaitHistogram{Buckets: queueWaitBuckets[:], Counts: make([]int64, len(h.counts))}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out.Counts[i] = cum
	}
	out.Sum = time.Duration(h.sumNS.Load())
	return out
}

// QueueWaitHistogram snapshots the admission queue-wait histogram.
func (a *admission) queueWaitHistogram() WaitHistogram { return a.queueWait.snapshot() }

func (a *admission) release() { <-a.slots }

// stats snapshots counters and occupancy.
func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		MaxConcurrent: cap(a.slots),
		MaxQueued:     a.maxQueued,
		Active:        len(a.slots),
		Queued:        int(a.queued.Load()),
		Admitted:      a.admitted.Load(),
		RejectedFull:  a.rejectedFull.Load(),
		RejectedWait:  a.rejectedWait.Load(),
		Cancelled:     a.cancelled.Load(),
	}
}
