package server

import (
	"fmt"
	"sync"
	"testing"
)

// TestPlanCacheEvictionRace: a tiny cache thrashed by concurrent queries —
// every request cycles through more distinct plans than the cache holds, so
// entries are constantly evicted while other goroutines still execute the
// evicted Programs. Compiled Programs are immutable, so an eviction must
// never affect an in-flight execution; run under -race this doubles as a
// data-race check on get/put/evict and on shared Program execution.
func TestPlanCacheEvictionRace(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: 2, MaxConcurrent: 16, MaxQueued: 256})

	const distinct = 8
	queries := make([]string, distinct)
	for k := range queries {
		queries[k] = fmt.Sprintf("%d * 7 + 1", k)
	}

	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w + i) % distinct
				qr, status, err := postQuery(ts, QueryRequest{Query: queries[k]})
				if err != nil {
					t.Errorf("worker %d iter %d: %v (status %d)", w, i, err, status)
					return
				}
				want := fmt.Sprintf("%d", k*7+1)
				if qr.Value != want {
					t.Errorf("worker %d: %q = %q, want %s", w, queries[k], qr.Value, want)
					return
				}
				if qr.Eval.Steps == 0 {
					t.Errorf("worker %d: zero step count on %q", w, queries[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()

	cs := s.cache.stats()
	if cs.Evictions == 0 {
		t.Error("cache was never evicted; the test did not thrash")
	}
	if cs.Size > 2 {
		t.Errorf("cache size %d exceeds capacity 2", cs.Size)
	}
	if cs.Hits+cs.Misses != workers*iters {
		t.Errorf("hits %d + misses %d != %d lookups", cs.Hits, cs.Misses, workers*iters)
	}
}
