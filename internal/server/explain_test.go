package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/aqldb/aql/internal/trace"
)

// TestDebugExplainEndpoint: /debug/explain/{id} serves the joined
// estimate-vs-actual table of a recorded query as JSON, by request id or
// trace id, with Card values round-tripping as numbers or "unknown".
func TestDebugExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	qr, _ := postQueryHeaders(t, ts, QueryRequest{Query: `[[ i*i | \i < 40 ]]`},
		map[string]string{"X-Request-ID": "explain-me"})

	for _, id := range []string{"explain-me", qr.TraceID} {
		resp, err := http.Get(ts.URL + "/debug/explain/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/explain/%s = %d: %s", id, resp.StatusCode, b)
		}
		var tab trace.ExplainTable
		if err := json.Unmarshal(b, &tab); err != nil {
			t.Fatalf("explain table not JSON: %v", err)
		}
		// Server programs execute unprofiled closures, so the join runs in
		// root mode: one row of whole-query totals.
		if tab.Mode != "root" {
			t.Fatalf("mode = %q, want root", tab.Mode)
		}
		if len(tab.Rows) != 1 {
			t.Fatalf("rows = %d, want 1", len(tab.Rows))
		}
		row := tab.Rows[0]
		if !row.EstCells.Known || row.EstCells.N != 40 {
			t.Errorf("est cells = %v, want known 40", row.EstCells)
		}
		if row.ActCells != 40 {
			t.Errorf("act cells = %d, want 40", row.ActCells)
		}
		if row.EstCost.Known && row.QError != 1 {
			t.Errorf("known est cost scored q=%v, want exact 1", row.QError)
		}
	}

	// Unknown ids 404 with a structured error.
	resp, err := http.Get(ts.URL + "/debug/explain/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp.StatusCode)
	}
}

// TestDebugExplainUnknownCards: a parameter-bounded template's estimates
// must surface the explicit "unknown" marker through the JSON API, never a
// fabricated number.
func TestDebugExplainUnknownCards(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postQueryHeaders(t, ts, QueryRequest{
		Query: `[[ i * $a | \i < $n ]]`,
		Args:  map[string]string{"a": "3", "n": "5"},
	}, map[string]string{"X-Request-ID": "param-explain"})

	resp, err := http.Get(ts.URL + "/debug/explain/param-explain")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/explain/param-explain = %d: %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), `"unknown"`) {
		t.Errorf("parameter-dependent table carries no unknown marker: %s", b)
	}
	var tab trace.ExplainTable
	if err := json.Unmarshal(b, &tab); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if tab.Rows[0].EstCells.Known {
		t.Errorf("parameter-bounded est cells = %v, want unknown", tab.Rows[0].EstCells)
	}
}

// TestDebugPlanStatsGolden pins the complete JSON field set of the
// /debug/planstats document. Every field here is documented in DESIGN.md
// §10 — a new field must be added both places, and a renamed field breaks
// dashboards, so this list is deliberately brittle.
func TestDebugPlanStatsGolden(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// One report exercising every optional field group: an error, a cache
	// hit, spans, shards (remote + local, retries, hedges) and a joined
	// explain table with a flagged misestimate.
	spans := &trace.SpanNode{Op: "ArrayTab", Invocations: 1, Steps: 10, Cells: 50,
		WallCum: time.Millisecond, WallSelf: time.Millisecond}
	rep := &trace.QueryReport{
		Query: "q", Err: "boom", Cached: true,
		Start: time.Unix(1000, 0), Wall: 10 * time.Millisecond,
		Eval:  trace.EvalCounters{Steps: 10, Cells: 50},
		Spans: spans, ProfLevel: trace.ProfFull,
		Shards: []trace.ShardSpan{
			{Shard: 0, Worker: "http://w1", Attempts: 2, Hedged: true, Wall: 2 * time.Millisecond},
			{Shard: 1, Worker: "local", Attempts: 1, Wall: time.Millisecond},
		},
		Explain: &trace.ExplainTable{Misestimates: 1, WorstQError: 3.5, WorstOp: "ArrayTab"},
	}
	s.planStats.Observe("golden@e1", rep)

	resp, err := http.Get(ts.URL + "/debug/planstats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Plans []map[string]json.RawMessage `json:"plans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(doc.Plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(doc.Plans))
	}
	var got []string
	for k := range doc.Plans[0] {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{
		"balance_ewma",
		"cache_hits",
		"cells_ewma",
		"cells_last",
		"cells_total",
		"errors",
		"key",
		"last_seen",
		"latency_ewma_ns",
		"latency_last_ns",
		"misestimates",
		"queries",
		"self_time_by_op",
		"shard_hedges",
		"shard_retries",
		"shards_local",
		"shards_planned",
		"shards_remote",
		"worst_q_error_ewma",
		"worst_q_error_last",
		"worst_q_error_op",
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("planstats field set drifted:\n got %v\nwant %v", got, want)
	}
}

// TestMisestimateMetrics: the aqld_plan_misestimate_* family is always
// exposed, and a flagged misestimate increments it with the offending
// query's trace id attached as an OpenMetrics exemplar.
func TestMisestimateMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if _, _, err := postQuery(ts, QueryRequest{Query: "1 + 2"}); err != nil {
		t.Fatal(err)
	}

	scrape := func() string {
		req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
		req.Header.Set("Accept", "application/openmetrics-text")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	out := scrape()
	for _, want := range []string{
		"aqld_plan_misestimate_ops_total 0",
		"aqld_plan_misestimate_queries_total 0",
		"aqld_plan_misestimate_worst_q_error 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("clean scrape missing %q", want)
		}
	}

	// Exact-or-unknown estimates cannot misestimate on a single node, so
	// inject a flagged report the way the query path would record one.
	s.mis.observe(&trace.QueryReport{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		Start:   time.Unix(1000, 0), Wall: time.Millisecond,
		Explain: &trace.ExplainTable{Misestimates: 2, WorstQError: 5.0, WorstOp: "ArrayTab"},
	})
	out = scrape()
	if !strings.Contains(out, "aqld_plan_misestimate_ops_total 2") {
		t.Errorf("ops counter not incremented:\n%s", out)
	}
	if !strings.Contains(out, "aqld_plan_misestimate_queries_total 1") {
		t.Errorf("queries counter not incremented")
	}
	if !strings.Contains(out, "aqld_plan_misestimate_worst_q_error 5") {
		t.Errorf("worst q-error gauge not updated")
	}
	if !strings.Contains(out, `trace_id="4bf92f3577b34da6a3ce929d0e0e4736"`) {
		t.Errorf("misestimate counter carries no trace_id exemplar:\n%s", out)
	}
}
