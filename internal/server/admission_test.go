package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestAdmissionKinds exercises the controller directly, where the three
// rejection kinds are deterministic.
func TestAdmissionKinds(t *testing.T) {
	a := newAdmission(1, 1, 60*time.Millisecond)

	release, _, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Slot held, queue empty: the next acquire queues, then times out.
	_, _, err = a.acquire(context.Background())
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Kind != AdmissionQueueTimeout {
		t.Fatalf("queued acquire: got %v, want queue_timeout", err)
	}

	// Slot held, one request parked in the queue: a third is turned away
	// immediately.
	parked := make(chan error, 1)
	go func() {
		_, _, err := a.acquire(context.Background())
		parked <- err
	}()
	waitFor(t, func() bool { return a.stats().Queued == 1 })
	_, _, err = a.acquire(context.Background())
	if !errors.As(err, &ae) || ae.Kind != AdmissionQueueFull {
		t.Fatalf("overflow acquire: got %v, want queue_full", err)
	}
	if err := <-parked; !errors.As(err, &ae) || ae.Kind != AdmissionQueueTimeout {
		t.Fatalf("parked acquire: got %v, want queue_timeout", err)
	}

	// A queued request whose client goes away reports cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, _, err = a.acquire(ctx)
	if !errors.As(err, &ae) || ae.Kind != AdmissionCancelled {
		t.Fatalf("cancelled acquire: got %v, want cancelled", err)
	}

	// Releasing the slot lets a fresh acquire through instantly.
	release()
	release2, _, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	release2()

	s := a.stats()
	if s.Admitted != 2 || s.RejectedWait != 2 || s.RejectedFull != 1 || s.Cancelled != 1 {
		t.Fatalf("stats = %+v, want admitted 2, queue_timeout 2, queue_full 1, cancelled 1", s)
	}
	if s.Active != 0 || s.Queued != 0 {
		t.Fatalf("occupancy leaked: %+v", s)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionOverHTTP saturates a 1-slot server and checks that every
// outcome is one of the typed statuses, with at least one typed rejection —
// the end-to-end face of the unit-level kinds above.
func TestAdmissionOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: 1, QueueTimeout: 50 * time.Millisecond})

	const n = 6
	var wg sync.WaitGroup
	statuses := make([]int, n)
	kinds := make([]string, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body, _ := json.Marshal(QueryRequest{Query: slowQuery})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				statuses[g] = -1
				return
			}
			defer resp.Body.Close()
			statuses[g] = resp.StatusCode
			if resp.StatusCode != http.StatusOK {
				var er ErrorResponse
				if json.NewDecoder(resp.Body).Decode(&er) == nil {
					kinds[g] = er.Error.Kind
				}
			}
		}(g)
	}
	wg.Wait()

	counts := map[int]int{}
	for g, st := range statuses {
		counts[st]++
		switch st {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("request %d: unexpected status %d (%s)", g, st, kinds[g])
		}
		if st == http.StatusTooManyRequests && kinds[g] != "admission:queue_full" {
			t.Errorf("request %d: 429 with kind %q", g, kinds[g])
		}
		if st == http.StatusServiceUnavailable && kinds[g] != "admission:queue_timeout" {
			t.Errorf("request %d: 503 with kind %q", g, kinds[g])
		}
	}
	if counts[http.StatusOK] < 1 {
		t.Errorf("no request succeeded: %v", counts)
	}
	if counts[http.StatusTooManyRequests]+counts[http.StatusServiceUnavailable] < 1 {
		t.Errorf("saturating a 1-slot server produced no admission rejections: %v", counts)
	}
}

// TestCacheLRUEviction: the cache evicts least-recently-used plans at
// capacity and counts it.
func TestCacheLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: 2})

	run := func(q string) *QueryResponse {
		t.Helper()
		r, _, err := postQuery(ts, QueryRequest{Query: q})
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		return r
	}
	run("1 + 1") // cache: [A]
	run("2 + 2") // cache: [B A]
	run("1 + 1") // hit, cache: [A B]
	run("3 + 3") // evicts B, cache: [C A]
	if r := run("1 + 1"); !r.Cached {
		t.Error("recently used plan was evicted")
	}
	if r := run("2 + 2"); r.Cached {
		t.Error("least recently used plan survived past capacity")
	}
	cs := s.CacheStats()
	if cs.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", cs.Evictions)
	}
	if cs.Size > 2 {
		t.Errorf("cache size = %d, capacity 2", cs.Size)
	}
}

// TestPlanCacheUnit covers the container directly: keying on epoch and the
// invalidation sweep.
func TestPlanCacheUnit(t *testing.T) {
	c := newPlanCache(4)
	p := &plan{}
	c.put(planKey{"q", 1}, p)
	if _, ok := c.get(planKey{"q", 2}); ok {
		t.Fatal("plan served across epochs")
	}
	if got, ok := c.get(planKey{"q", 1}); !ok || got != p {
		t.Fatal("plan not served at its own epoch")
	}
	c.put(planKey{"r", 2}, &plan{})
	if n := c.invalidateBefore(2); n != 1 {
		t.Fatalf("invalidateBefore dropped %d plans, want 1", n)
	}
	if _, ok := c.get(planKey{"q", 1}); ok {
		t.Fatal("stale plan survived the sweep")
	}
	if _, ok := c.get(planKey{"r", 2}); !ok {
		t.Fatal("current plan dropped by the sweep")
	}
	st := c.stats()
	if st.Invalidations != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestNormalizeQuery pins the keying canonicalization.
func TestNormalizeQuery(t *testing.T) {
	cases := map[string]string{
		"1 + 2":           "1 + 2",
		"  1   +\n\t2 ; ": "1 + 2",
		"1+2;":            "1+2", // token-level spacing is preserved
		// String literals are copied verbatim: internal whitespace, escaped
		// quotes and semicolons are all significant.
		`f ! "a  b"`:      `f ! "a  b"`,
		"f !\n\t\"a  b\"": `f ! "a  b"`,
		`f ! "a \" b;"`:   `f ! "a \" b;"`,
		`f!";"`:           `f!";"`, // the ; is inside the literal, not trailing
		// Comments collapse to one separator, like whitespace.
		"1 (* c *) + 2":       "1 + 2",
		"1(* c *)+2":          "1 +2",
		"1 (* a (* b *) *) 2": "1 2",
		// Unterminated comment: not lexable, text left for the parser.
		"1 + (* oops": "1 + (* oops",
	}
	for in, want := range cases {
		if got := NormalizeQuery(in); got != want {
			t.Errorf("NormalizeQuery(%q) = %q, want %q", in, got, want)
		}
	}
	// Distinct literals must never collide on one plan-cache key.
	if NormalizeQuery(`f!"a  b"`) == NormalizeQuery(`f!"a b"`) {
		t.Error(`queries f!"a  b" and f!"a b" normalized to the same key`)
	}
	_ = fmt.Sprint() // keep fmt imported if cases change
}

// TestAcquirePreCancelled: a request whose client is already gone is never
// admitted, even with free slots.
func TestAcquirePreCancelled(t *testing.T) {
	a := newAdmission(2, 2, time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := a.acquire(ctx)
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Kind != AdmissionCancelled {
		t.Fatalf("pre-cancelled acquire: got %v, want cancelled", err)
	}
	s := a.stats()
	if s.Admitted != 0 || s.Cancelled != 1 || s.Active != 0 {
		t.Fatalf("stats = %+v, want admitted 0, cancelled 1, active 0", s)
	}
}
