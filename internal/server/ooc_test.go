package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/trace"
)

// metricValue extracts the value of a series line like
// `aqld_io_tiles_total{outcome="miss"} 16` from an exposition body.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("/metrics missing series %q", series)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %q value %q: %v", series, m[1], err)
	}
	return v
}

// TestMetricsTileIO drives a lazily-read NetCDF variable through the query
// endpoint and checks the aqld_io_* series report the tile traffic: hits,
// misses, prefetches, and bytes scanned vs. returned all non-zero.
func TestMetricsTileIO(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	dir := t.TempDir()
	b := netcdf.NewBuilder()
	d0, _ := b.AddDim("x", 256)
	data := make([]float64, 256)
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	if err := b.AddVar("series", netcdf.Double, []int{d0}, nil, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "series.nc")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	s.sess.SetTileConfig(16, 0, false) // 16 tiles, ample budget
	if _, err := s.sess.Exec(fmt.Sprintf(`readval \W using NETCDF at (%q, "series");`, path)); err != nil {
		t.Fatal(err)
	}

	qr, _, err := postQuery(ts, QueryRequest{Query: `summap(fn \i => W[i])!(gen!256)`})
	if err != nil {
		t.Fatal(err)
	}
	// sum of 0.5*i for i<256 = 0.5 * 255*256/2
	if qr.Value != "16320.0" {
		t.Fatalf("query value = %s, want 16320.0", qr.Value)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)

	for _, series := range []string{
		`aqld_io_tiles_total{outcome="hit"}`,
		`aqld_io_tiles_total{outcome="miss"}`,
		`aqld_io_tile_bytes_total{direction="scanned"}`,
		`aqld_io_tile_bytes_total{direction="returned"}`,
		`aqld_io_slab_reads_total`,
		`aqld_io_bytes_read_total`,
		`aqld_io_cache_resident_bytes`,
	} {
		if v := metricValue(t, text, series); v <= 0 {
			t.Errorf("%s = %v, want > 0", series, v)
		}
	}
	// A sequential scan prefetches all but the first tile, and every
	// prefetched tile is later demanded.
	useful := metricValue(t, text, `aqld_io_tile_prefetches_total{useful="true"}`)
	if useful <= 0 {
		t.Errorf("prefetches useful = %v, want > 0", useful)
	}
	// The headers for spill/retry series are present even when zero.
	for _, want := range []string{
		"# TYPE aqld_io_spill_bytes_total counter",
		"# TYPE aqld_io_retries_total counter",
		"# TYPE aqld_io_faults_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The per-request report carried the tile counters too.
	dresp, err := http.Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var reports []trace.QueryReport
	if err := json.NewDecoder(dresp.Body).Decode(&reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no reports in flight recorder")
	}
	last := reports[len(reports)-1]
	if last.IO.TileMisses == 0 || last.IO.BytesScanned == 0 {
		t.Errorf("request report IO = %+v, want non-zero tile misses and bytes scanned", last.IO)
	}
}
