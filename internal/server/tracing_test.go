package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/trace"
)

// postQueryHeaders fires one query with extra request headers and returns
// the decoded response plus the response headers.
func postQueryHeaders(t *testing.T, ts *httptest.Server, req QueryRequest, hdr map[string]string) (*QueryResponse, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /query = %d: %s", resp.StatusCode, b)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &qr, resp.Header
}

// TestRequestIDHonored: a client-supplied X-Request-ID is sanitized, echoed
// on the response, and stamps the flight-recorder report.
func TestRequestIDHonored(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	qr, hdr := postQueryHeaders(t, ts, QueryRequest{Query: "1 + 2"},
		map[string]string{"X-Request-ID": "load-test:42"})
	if qr.ID != "load-test:42" {
		t.Fatalf("response id = %q, want the supplied id", qr.ID)
	}
	if hdr.Get("X-Request-ID") != "load-test:42" {
		t.Fatalf("X-Request-ID header = %q", hdr.Get("X-Request-ID"))
	}
	rep, ok := s.sess.Flight.Find("load-test:42")
	if !ok {
		t.Fatal("flight recorder has no report under the supplied id")
	}
	if rep.Query != "1 + 2" {
		t.Fatalf("report under id = %q", rep.Query)
	}

	// Hostile ids are sanitized before they are echoed anywhere.
	qr, hdr = postQueryHeaders(t, ts, QueryRequest{Query: "2 + 2"},
		map[string]string{"X-Request-ID": "a b\t<script>x=1;</script>"})
	if qr.ID != "abscriptx1script" {
		t.Fatalf("sanitized id = %q", qr.ID)
	}
	if hdr.Get("X-Request-ID") != qr.ID {
		t.Fatalf("echoed header %q != body id %q", hdr.Get("X-Request-ID"), qr.ID)
	}

	// An id that sanitizes to nothing falls back to a server-minted one.
	qr, _ = postQueryHeaders(t, ts, QueryRequest{Query: "3 + 3"},
		map[string]string{"X-Request-ID": " !!! ??? "})
	if !strings.HasPrefix(qr.ID, "q") || len(qr.ID) != 7 {
		t.Fatalf("minted id = %q, want q%%06d", qr.ID)
	}
}

// TestTraceparentHonoredAndMinted: an inbound W3C traceparent is adopted as
// the query's trace identity; without one the server mints a valid context.
// Either way the response carries the id in the body and the header.
func TestTraceparentHonoredAndMinted(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	qr, hdr := postQueryHeaders(t, ts, QueryRequest{Query: "1 + 2"},
		map[string]string{"traceparent": inbound})
	if qr.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %q, want the inbound one", qr.TraceID)
	}
	tc, ok := trace.ParseTraceparent(hdr.Get("traceparent"))
	if !ok || tc.TraceID != qr.TraceID {
		t.Fatalf("response traceparent %q does not carry the trace id", hdr.Get("traceparent"))
	}
	if rep, ok := s.sess.Flight.Find(qr.TraceID); !ok || rep.TraceID != qr.TraceID {
		t.Fatal("report not findable by trace id")
	}

	// No inbound context: the server mints one.
	qr, hdr = postQueryHeaders(t, ts, QueryRequest{Query: "2 + 3"}, nil)
	if len(qr.TraceID) != 32 {
		t.Fatalf("minted trace id = %q", qr.TraceID)
	}
	if tc, ok := trace.ParseTraceparent(hdr.Get("traceparent")); !ok || tc.TraceID != qr.TraceID {
		t.Fatalf("minted traceparent header = %q", hdr.Get("traceparent"))
	}

	// A malformed inbound header is ignored, not adopted.
	qr, _ = postQueryHeaders(t, ts, QueryRequest{Query: "3 + 4"},
		map[string]string{"traceparent": "00-zzzz-bad-01"})
	if len(qr.TraceID) != 32 || strings.Contains(qr.TraceID, "z") {
		t.Fatalf("malformed traceparent adopted: %q", qr.TraceID)
	}
}

// TestDebugTraceEndpoint: /debug/trace/{id} serves a recorded query as
// Chrome trace-event JSON, by request id or trace id; unknown ids 404.
func TestDebugTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	qr, _ := postQueryHeaders(t, ts, QueryRequest{Query: "1 + 2"},
		map[string]string{"X-Request-ID": "trace-me"})

	for _, id := range []string{"trace-me", qr.TraceID} {
		resp, err := http.Get(ts.URL + "/debug/trace/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/trace/%s = %d", id, resp.StatusCode)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
			OtherData   map[string]any   `json:"otherData"`
		}
		if err := json.Unmarshal(b, &doc); err != nil {
			t.Fatalf("trace export not JSON: %v", err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Fatal("trace export has no events")
		}
		if doc.OtherData["id"] != "trace-me" {
			t.Fatalf("otherData = %v", doc.OtherData)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/trace/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp.StatusCode)
	}
}

// TestDebugPlanStats: executions aggregate into /debug/planstats under the
// plan-cache key, surviving repeated runs and keeping cache-hit counts.
func TestDebugPlanStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		if _, _, err := postQuery(ts, QueryRequest{Query: "[[ i*i | \\i < 50 ]]"}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/planstats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap trace.PlanStatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(snap.Plans) != 1 {
		t.Fatalf("planstats tracks %d plans, want 1", len(snap.Plans))
	}
	p := snap.Plans[0]
	if !strings.Contains(p.Key, "@e") || !strings.Contains(p.Key, "i*i") {
		t.Fatalf("plan key = %q, want normalized query @ epoch", p.Key)
	}
	if p.Queries != 3 || p.CacheHits != 2 {
		t.Fatalf("plan profile = %d queries, %d hits", p.Queries, p.CacheHits)
	}
	if p.CellsLast != 50 || p.CellsEWMA == 0 {
		t.Fatalf("cells = last %d ewma %v", p.CellsLast, p.CellsEWMA)
	}
	if p.LatencyEWMA <= 0 {
		t.Fatalf("latency EWMA = %v", p.LatencyEWMA)
	}
}

// TestShardCarriesTrace: POST /shard adopts the request's trace id and
// returns a well-formed span subtree alongside the counters.
func TestShardCarriesTrace(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, _ := json.Marshal(map[string]any{
		"query": "[[ i+1 | \\i < 32 ]]", "shape": []int{32}, "start": 0, "end": 32,
		"trace_id": traceID, "parent_span": "00f067aa0ba902b7",
	})
	resp, err := http.Post(ts.URL+"/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr struct {
		ID          string `json:"id"`
		TraceID     string `json:"trace_id"`
		QueueWaitNS int64  `json:"queue_wait_ns"`
		Spans       *struct {
			Op       string `json:"op"`
			WallNS   int64  `json:"wall_ns"`
			SelfNS   int64  `json:"self_ns"`
			Children []struct {
				Op     string `json:"op"`
				WallNS int64  `json:"wall_ns"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || resp.StatusCode != 200 {
		t.Fatalf("shard response: status %d, err %v", resp.StatusCode, err)
	}
	if sr.TraceID != traceID {
		t.Fatalf("shard trace id = %q", sr.TraceID)
	}
	if sr.Spans == nil || sr.Spans.Op != trace.SpanWorker {
		t.Fatalf("shard spans = %+v, want a worker root", sr.Spans)
	}
	var kids int64
	evalSeen := false
	for _, c := range sr.Spans.Children {
		kids += c.WallNS
		evalSeen = evalSeen || c.Op == trace.SpanEval
	}
	if !evalSeen {
		t.Fatal("worker tree has no eval child")
	}
	if sr.Spans.WallNS < kids {
		t.Fatalf("worker root wall %d < children %d", sr.Spans.WallNS, kids)
	}
	if rep, ok := s.sess.Flight.Find(sr.ID); !ok || rep.TraceID != traceID || rep.Mode != "shard" {
		t.Fatalf("worker report = %+v, %v", rep, ok)
	}
}
