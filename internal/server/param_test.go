package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestParameterizedQueryBasic: a template with args executes, and the
// template text — not the argument values — keys the plan cache, so every
// subsequent argument set is a cache hit.
func TestParameterizedQueryBasic(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	tmpl := `[[ i * $a + $b | \i < 10 ]]`

	first, _, err := postQuery(ts, QueryRequest{Query: tmpl,
		Args: map[string]string{"a": "3", "b": "1"}})
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if first.Value != `[[1, 4, 7, 10, 13, 16, 19, 22, 25, 28]]` {
		t.Fatalf("first value = %s", first.Value)
	}
	if first.Cached {
		t.Fatal("first execution of a template reported cached")
	}

	// Same template, different args — and different layout, which must
	// still normalize onto the same plan.
	second, _, err := postQuery(ts, QueryRequest{Query: "  [[ i * $a + $b | \\i < 10 ]] ;",
		Args: map[string]string{"a": "0", "b": "5"}})
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if !second.Cached {
		t.Fatal("second argument set missed the template's cached plan")
	}
	if second.Value != `[[5, 5, 5, 5, 5, 5, 5, 5, 5, 5]]` {
		t.Fatalf("second value = %s (argument frame leaked?)", second.Value)
	}

	cs := s.CacheStats()
	if cs.Hits < 1 || cs.Size != 1 {
		t.Fatalf("cache stats = %+v, want 1 entry with >= 1 hit", cs)
	}

	// The prepared result matches the literal substitution byte-for-byte,
	// counters included.
	lit, _, err := postQuery(ts, QueryRequest{Query: `[[ i * 3 + 1 | \i < 10 ]]`})
	if err != nil {
		t.Fatalf("literal: %v", err)
	}
	if lit.Value != first.Value {
		t.Errorf("literal value %s != prepared %s", lit.Value, first.Value)
	}
	if lit.Eval != first.Eval {
		t.Errorf("literal counters %+v != prepared %+v", lit.Eval, first.Eval)
	}
}

// TestParameterizedBindErrors: the three bind failure modes are 400s with
// the right kind, caught before evaluation.
func TestParameterizedBindErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tmpl := `$n + 1`

	cases := []struct {
		name     string
		args     map[string]string
		kind     string
		fragment string
	}{
		{"missing", nil, "request", "missing argument for parameter $n"},
		{"unknown", map[string]string{"n": "1", "zz": "2"}, "request", `"zz" does not name a parameter`},
		{"mismatch", map[string]string{"n": `"hello"`}, "type", "expected nat, got string"},
		{"undecodable", map[string]string{"n": "[[;]]"}, "request", "argument $n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, status, err := postQuery(ts, QueryRequest{Query: tmpl, Args: c.args})
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (err %v)", status, err)
			}
			ie, ok := err.(*errorInfoError)
			if !ok {
				t.Fatalf("err = %v, want ErrorInfo", err)
			}
			if ie.Info.Kind != c.kind {
				t.Errorf("kind = %q, want %q", ie.Info.Kind, c.kind)
			}
			if !strings.Contains(ie.Info.Message, c.fragment) {
				t.Errorf("message = %q, want substring %q", ie.Info.Message, c.fragment)
			}
		})
	}

	// Valid bind still works after the failures (no cache poisoning).
	qr, _, err := postQuery(ts, QueryRequest{Query: tmpl, Args: map[string]string{"n": "41"}})
	if err != nil {
		t.Fatalf("valid bind: %v", err)
	}
	if qr.Value != "42" {
		t.Fatalf("value = %s, want 42", qr.Value)
	}
}

// TestParameterizedStructuredArgs: arguments are full exchange-format
// values, not just scalars — a set argument binds where a set is inferred.
func TestParameterizedStructuredArgs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	qr, _, err := postQuery(ts, QueryRequest{Query: `{x * x | \x <- $xs}`,
		Args: map[string]string{"xs": `{1, 2, 3}`}})
	if err != nil {
		t.Fatalf("structured arg: %v", err)
	}
	if qr.Value != `{1, 4, 9}` {
		t.Fatalf("value = %s, want {1, 4, 9}", qr.Value)
	}
}

// TestParameterizedValRebindInvalidates: epoch keying applies to templates
// exactly as to plain queries — a val rebinding must not serve a stale
// parameterized plan.
func TestParameterizedValRebindInvalidates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	setVal := func(body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/val/K", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /val/K: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /val/K: status %d", resp.StatusCode)
		}
	}
	setVal("10")
	tmpl := `K + $a`
	qr, _, err := postQuery(ts, QueryRequest{Query: tmpl, Args: map[string]string{"a": "5"}})
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if qr.Value != "15" {
		t.Fatalf("value = %s, want 15", qr.Value)
	}
	setVal("100")
	qr, _, err = postQuery(ts, QueryRequest{Query: tmpl, Args: map[string]string{"a": "5"}})
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if qr.Value != "105" {
		t.Fatalf("value = %s, want 105 (stale parameterized plan served)", qr.Value)
	}
	if qr.Cached {
		t.Error("post-rebind execution reported cached (epoch keying broken)")
	}
}
