package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/exchange"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/trace"
)

// handleShard is the worker half of scatter-gather execution: POST /shard
// executes one contiguous row-major range of a tabulation. The request
// flows through the same admission controller and prepared-plan cache as
// /query — a shard is a query whose element loop has been range-restricted
// — so worker capacity protection and plan reuse need no separate
// machinery. Errors use the shard envelope (exchange.ShardErrorEnvelope)
// with the same kind vocabulary as /query.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req exchange.ShardRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeShardError(w, http.StatusBadRequest, "request", "bad shard body: "+err.Error(), -1, "")
		return
	}
	if err := req.Validate(); err != nil {
		writeShardError(w, http.StatusBadRequest, "request", err.Error(), -1, "")
		return
	}

	// Trace context: the coordinator ships it in the body (authoritative)
	// and as a traceparent header; either identifies this shard's report as
	// part of the distributed query's trace.
	traceID := req.TraceID
	if traceID == "" {
		if tc, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
			traceID = tc.TraceID
		}
	}

	ctx := r.Context()
	release, waited, err := s.adm.acquire(ctx)
	if err != nil {
		status, info := admissionHTTP(err)
		writeShardError(w, status, info.Kind, info.Message, -1, "")
		return
	}
	defer release()

	id := fmt.Sprintf("s%06d", s.qid.Add(1))
	norm := NormalizeQuery(req.Query)

	// Shard executions record like queries: the worker's fleet totals and
	// flight recorder reflect shard work, attributable via the "shard"
	// mode stamp and the shared trace id.
	rec := trace.NewRecorder(trace.MultiSink{s.sess.Fleet, s.sess.Flight})
	rec.Begin(norm)
	rec.RecordID(id)
	rec.RecordTraceID(traceID)
	rec.RecordMode("shard")
	rec.RecordQueueWait(waited)

	p, _, hit, err := s.plan(norm, rec)
	if err != nil {
		rec.End(err)
		info, status := compileHTTP(err)
		writeShardError(w, status, info.Kind, info.Message, -1, id)
		return
	}
	rec.RecordCached(hit)
	if !p.prog.Rangeable() {
		rec.End(errors.New("shard: not rangeable"))
		writeShardError(w, http.StatusBadRequest, "shard:not_rangeable",
			"query's top-level expression is not a tabulation", -1, id)
		return
	}

	opts := s.execOpts(QueryRequest{MaxSteps: req.MaxSteps, TimeoutMS: req.TimeoutMS})
	if len(p.params) > 0 || len(req.Args) > 0 {
		// The coordinator ships the coordinator-validated argument frame with
		// every shard; re-validating here keeps a worker safe against a
		// direct (or buggy) caller. Bind failures are deterministic client
		// errors — the coordinator will not retry them elsewhere.
		bound, bindErr := bindArgs(p, req.Args)
		if bindErr != nil {
			rec.End(errors.New(bindErr.Message))
			writeShardError(w, http.StatusBadRequest, bindErr.Kind, bindErr.Message, -1, id)
			return
		}
		opts.Args = bound
	}
	sp := rec.StartPhase(trace.PhaseEval)
	res, err := executeRangeGuarded(ctx, p.prog, opts, req.Shape, req.Start, req.End, norm)
	sp.End()
	rec.RecordEngine("compiled")
	if res != nil {
		rec.RecordEval(trace.EvalCounters{
			Steps:       res.Counters.Steps,
			Cells:       res.Counters.Cells,
			Tabulations: res.Counters.Tabs,
			SetOps:      res.Counters.SetOps,
			Iterations:  res.Counters.Iters,
		})
	}
	rep := rec.End(err)
	if err != nil {
		info, status := execHTTP(err)
		off := int64(-1)
		var rerr *compile.RangeError
		if errors.As(err, &rerr) {
			off = rerr.Off
		}
		writeShardError(w, status, info.Kind, info.Message, off, id)
		return
	}

	cnt := exchange.ShardCounters{
		Steps:       res.Counters.Steps,
		Cells:       res.Counters.Cells,
		Tabulations: res.Counters.Tabs,
		SetOps:      res.Counters.SetOps,
		Iterations:  res.Counters.Iters,
	}
	resp := exchange.ShardResponse{
		ID:          id,
		Cached:      hit,
		BottomOff:   res.BottomOff,
		Eval:        cnt,
		TraceID:     traceID,
		QueueWaitNS: int64(waited),
		Spans:       workerSpanTree(rep, waited, cnt),
	}
	if res.BottomOff >= 0 {
		// The ⊥ decides the whole tabulation; its diagnostic travels as a
		// separate field because the exchange reader (correctly) drops
		// comments, which is where Write puts ⊥ payloads.
		resp.BottomMsg = res.Bottom.S
	} else {
		vec := object.Value{Kind: object.KArray, Shape: []int{len(res.Values)}, Data: res.Values}
		text, werr := exchange.WriteString(vec)
		if werr != nil {
			writeShardError(w, http.StatusInternalServerError, "encode", werr.Error(), -1, id)
			return
		}
		resp.Values = text
	}
	writeJSON(w, http.StatusOK, resp)
}

// workerSpanTree builds the phase-level span subtree a worker returns for
// stitching: a "worker" root spanning queue wait plus pipeline, with one
// child per phase that actually ran (a plan-cache hit therefore shows no
// prepare children) and the eval child carrying all of the shard's
// counters. Programs compile unprofiled closures, so the worker's tree is
// phase-granular, not operator-granular — the coordinator's stitching
// invariants (exact counter sums, self-time consistency) hold regardless.
func workerSpanTree(rep *trace.QueryReport, waited time.Duration, cnt exchange.ShardCounters) *exchange.Span {
	root := &exchange.Span{Op: trace.SpanWorker, WallNS: int64(rep.Wall + waited)}
	var kids int64
	add := func(op string, wall int64, eval exchange.ShardCounters) {
		root.Children = append(root.Children, &exchange.Span{Op: op, WallNS: wall, SelfNS: wall, Eval: eval})
		kids += wall
	}
	if waited > 0 {
		add(trace.SpanQueueWait, int64(waited), exchange.ShardCounters{})
	}
	for _, p := range rep.Phases {
		if p.Name == trace.PhaseEval {
			continue
		}
		add(p.Name, int64(p.Wall), exchange.ShardCounters{})
	}
	add(trace.SpanEval, int64(rep.Phase(trace.PhaseEval)), cnt)
	if self := root.WallNS - kids; self > 0 {
		root.SelfNS = self
	}
	return root
}

// executeRangeGuarded is ExecuteRange behind the server's panic boundary,
// mirroring executeGuarded.
func executeRangeGuarded(ctx context.Context, prog *compile.Program, opts compile.ExecOpts, shape []int, start, end int64, src string) (res *compile.RangeResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &repl.PanicError{Src: src, Val: r, Stack: debug.Stack()}
		}
	}()
	return prog.ExecuteRange(ctx, opts, shape, start, end)
}

func writeShardError(w http.ResponseWriter, status int, kind, msg string, off int64, id string) {
	writeJSON(w, status, exchange.ShardErrorEnvelope{Error: exchange.ShardErrorInfo{
		Kind: kind, Message: msg, Off: off, ID: id,
	}})
}
