package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"

	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/exchange"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/trace"
)

// handleShard is the worker half of scatter-gather execution: POST /shard
// executes one contiguous row-major range of a tabulation. The request
// flows through the same admission controller and prepared-plan cache as
// /query — a shard is a query whose element loop has been range-restricted
// — so worker capacity protection and plan reuse need no separate
// machinery. Errors use the shard envelope (exchange.ShardErrorEnvelope)
// with the same kind vocabulary as /query.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req exchange.ShardRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeShardError(w, http.StatusBadRequest, "request", "bad shard body: "+err.Error(), -1, "")
		return
	}
	if err := req.Validate(); err != nil {
		writeShardError(w, http.StatusBadRequest, "request", err.Error(), -1, "")
		return
	}

	ctx := r.Context()
	release, _, err := s.adm.acquire(ctx)
	if err != nil {
		status, info := admissionHTTP(err)
		writeShardError(w, status, info.Kind, info.Message, -1, "")
		return
	}
	defer release()

	id := fmt.Sprintf("s%06d", s.qid.Add(1))
	norm := NormalizeQuery(req.Query)

	// Shard executions record like queries: the worker's fleet totals and
	// flight recorder reflect shard work, attributable via the "shard"
	// mode stamp.
	rec := trace.NewRecorder(trace.MultiSink{s.sess.Fleet, s.sess.Flight})
	rec.Begin(norm)
	rec.RecordMode("shard")

	p, hit, err := s.plan(norm, rec)
	if err != nil {
		rec.End(err)
		info, status := compileHTTP(err)
		writeShardError(w, status, info.Kind, info.Message, -1, id)
		return
	}
	rec.RecordCached(hit)
	if !p.prog.Rangeable() {
		rec.End(errors.New("shard: not rangeable"))
		writeShardError(w, http.StatusBadRequest, "shard:not_rangeable",
			"query's top-level expression is not a tabulation", -1, id)
		return
	}

	opts := s.execOpts(QueryRequest{MaxSteps: req.MaxSteps, TimeoutMS: req.TimeoutMS})
	sp := rec.StartPhase(trace.PhaseEval)
	res, err := executeRangeGuarded(ctx, p.prog, opts, req.Shape, req.Start, req.End, norm)
	sp.End()
	rec.RecordEngine("compiled")
	if res != nil {
		rec.RecordEval(trace.EvalCounters{
			Steps:       res.Counters.Steps,
			Cells:       res.Counters.Cells,
			Tabulations: res.Counters.Tabs,
			SetOps:      res.Counters.SetOps,
			Iterations:  res.Counters.Iters,
		})
	}
	rec.End(err)
	if err != nil {
		info, status := execHTTP(err)
		off := int64(-1)
		var rerr *compile.RangeError
		if errors.As(err, &rerr) {
			off = rerr.Off
		}
		writeShardError(w, status, info.Kind, info.Message, off, id)
		return
	}

	resp := exchange.ShardResponse{
		ID:        id,
		Cached:    hit,
		BottomOff: res.BottomOff,
		Eval: exchange.ShardCounters{
			Steps:       res.Counters.Steps,
			Cells:       res.Counters.Cells,
			Tabulations: res.Counters.Tabs,
			SetOps:      res.Counters.SetOps,
			Iterations:  res.Counters.Iters,
		},
	}
	if res.BottomOff >= 0 {
		// The ⊥ decides the whole tabulation; its diagnostic travels as a
		// separate field because the exchange reader (correctly) drops
		// comments, which is where Write puts ⊥ payloads.
		resp.BottomMsg = res.Bottom.S
	} else {
		vec := object.Value{Kind: object.KArray, Shape: []int{len(res.Values)}, Data: res.Values}
		text, werr := exchange.WriteString(vec)
		if werr != nil {
			writeShardError(w, http.StatusInternalServerError, "encode", werr.Error(), -1, id)
			return
		}
		resp.Values = text
	}
	writeJSON(w, http.StatusOK, resp)
}

// executeRangeGuarded is ExecuteRange behind the server's panic boundary,
// mirroring executeGuarded.
func executeRangeGuarded(ctx context.Context, prog *compile.Program, opts compile.ExecOpts, shape []int, start, end int64, src string) (res *compile.RangeResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &repl.PanicError{Src: src, Val: r, Stack: debug.Stack()}
		}
	}()
	return prog.ExecuteRange(ctx, opts, shape, start, end)
}

func writeShardError(w http.ResponseWriter, status int, kind, msg string, off int64, id string) {
	writeJSON(w, status, exchange.ShardErrorEnvelope{Error: exchange.ShardErrorInfo{
		Kind: kind, Message: msg, Off: off, ID: id,
	}})
}
