package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/trace"
)

// slowQuery is CPU-heavy enough (≈4M summation iterations) to still be
// in flight when a test cancels it or piles more requests behind it, yet
// allocates nothing pathological.
const slowQuery = `summap(fn \i => summap(fn \j => i*j)!(gen!2000))!(gen!2000)`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sess, err := repl.New()
	if err != nil {
		t.Fatalf("repl.New: %v", err)
	}
	s := New(sess, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// postQuery fires one query and decodes the response; a non-2xx status
// returns the decoded ErrorResponse as err via errorInfoError.
func postQuery(ts *httptest.Server, req QueryRequest) (*QueryResponse, int, error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			return nil, resp.StatusCode, fmt.Errorf("undecodable error body: %w", err)
		}
		return nil, resp.StatusCode, &errorInfoError{er.Error}
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, resp.StatusCode, err
	}
	return &qr, resp.StatusCode, nil
}

type errorInfoError struct{ Info ErrorInfo }

func (e *errorInfoError) Error() string { return e.Info.Kind + ": " + e.Info.Message }

func TestQueryBasicAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	first, _, err := postQuery(ts, QueryRequest{Query: "1 + 2"})
	if err != nil {
		t.Fatalf("first query: %v", err)
	}
	if first.Value != "3" || first.Type != "nat" {
		t.Fatalf("first query: got (%s : %s), want (3 : nat)", first.Value, first.Type)
	}
	if first.Cached {
		t.Fatal("first execution of a query reported cached")
	}

	// Same query, different layout: normalization must hit the same plan.
	second, _, err := postQuery(ts, QueryRequest{Query: "  1 +\n\t2  ;"})
	if err != nil {
		t.Fatalf("second query: %v", err)
	}
	if !second.Cached {
		t.Fatal("second execution did not hit the plan cache")
	}
	if second.Value != "3" {
		t.Fatalf("cached execution value = %s, want 3", second.Value)
	}
}

// TestStringLiteralWhitespaceSignificant: normalization must not rewrite
// string literals — a query is executed exactly as submitted, and literals
// differing only in internal whitespace get distinct plans.
func TestStringLiteralWhitespaceSignificant(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	wide, _, err := postQuery(ts, QueryRequest{Query: `  "a  b"  ;`})
	if err != nil {
		t.Fatalf("wide literal: %v", err)
	}
	if wide.Value != `"a  b"` {
		t.Fatalf("wide literal value = %s, want %q (double space preserved)", wide.Value, `"a  b"`)
	}
	narrow, _, err := postQuery(ts, QueryRequest{Query: `"a b"`})
	if err != nil {
		t.Fatalf("narrow literal: %v", err)
	}
	if narrow.Cached {
		t.Fatal(`"a b" hit the plan cached for "a  b": distinct literals collided on one key`)
	}
	if narrow.Value != `"a b"` {
		t.Fatalf("narrow literal value = %s, want %q", narrow.Value, `"a b"`)
	}
	// Layout outside the literal is still insignificant: same plan.
	again, _, err := postQuery(ts, QueryRequest{Query: "\n\"a  b\"\t;"})
	if err != nil {
		t.Fatalf("re-run wide literal: %v", err)
	}
	if !again.Cached || again.Value != wide.Value {
		t.Fatalf("re-run wide literal: cached=%v value=%s, want a hit with %s", again.Cached, again.Value, wide.Value)
	}
}

// TestCacheHitSkipsPrepare is the acceptance check for the prepared-plan
// cache: a hit's phase timings must contain NO prepare phases at all —
// parse, desugar, macro expansion, typecheck, optimize and compile ran
// exactly once, at prepare time.
func TestCacheHitSkipsPrepare(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	const q = `{d | \d <- gen!30, d % 7 = 0}`
	first, _, err := postQuery(ts, QueryRequest{Query: q})
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	hit, _, err := postQuery(ts, QueryRequest{Query: q})
	if err != nil {
		t.Fatalf("cached query: %v", err)
	}
	if !hit.Cached {
		t.Fatal("second execution was not a cache hit")
	}

	phases := func(r *QueryResponse) map[string]int64 {
		m := map[string]int64{}
		for _, p := range r.Phases {
			m[p.Name] = int64(p.Wall)
		}
		return m
	}
	cold, hot := phases(first), phases(hit)
	prepare := []string{
		trace.PhaseParse, trace.PhaseDesugar, trace.PhaseMacro,
		trace.PhaseTypecheck, trace.PhaseOptimize, trace.PhaseCompile,
	}
	for _, ph := range prepare {
		if _, ok := cold[ph]; !ok {
			t.Errorf("cold execution missing %s phase", ph)
		}
		if d, ok := hot[ph]; ok {
			t.Errorf("cache hit ran %s for %dns; prepare phases must not run on hits", ph, d)
		}
	}
	if _, ok := hot[trace.PhaseEval]; !ok {
		t.Error("cache hit missing eval phase")
	}
	if first.Value != hit.Value {
		t.Errorf("cold and cached values diverge: %s vs %s", first.Value, hit.Value)
	}
}

// TestConcurrentMixedLoad is the concurrent-load acceptance test: ≥8
// requests in flight mixing cache hits, misses and mid-flight
// cancellations, run under -race in CI. Every outcome must be a well-typed
// success or a typed error, and values must be exact.
func TestConcurrentMixedLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 4, MaxQueued: 64, QueueTimeout: time.Minute})

	// Warm one plan so the load mixes hits with misses.
	warm, _, err := postQuery(ts, QueryRequest{Query: "summap(fn \\i => i)!(gen!1000)"})
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}

	const (
		nHits    = 8 // re-run the warmed plan
		nMisses  = 8 // distinct queries, each a cold prepare
		nCancels = 4 // slow queries cancelled mid-flight
	)
	var wg sync.WaitGroup
	errs := make(chan error, nHits+nMisses+nCancels)

	for g := 0; g < nHits; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, _, err := postQuery(ts, QueryRequest{Query: "summap(fn \\i => i)!(gen!1000)"})
			if err != nil {
				errs <- fmt.Errorf("hit request: %w", err)
				return
			}
			if r.Value != warm.Value {
				errs <- fmt.Errorf("hit value = %s, want %s", r.Value, warm.Value)
			}
		}()
	}
	for g := 0; g < nMisses; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// n + sum(0..99) = n + 4950, a distinct query text per g.
			r, _, err := postQuery(ts, QueryRequest{Query: fmt.Sprintf("%d + summap(fn \\i => i)!(gen!100)", g)})
			if err != nil {
				errs <- fmt.Errorf("miss request %d: %w", g, err)
				return
			}
			if want := fmt.Sprint(g + 4950); r.Value != want {
				errs <- fmt.Errorf("miss %d value = %s, want %s", g, r.Value, want)
			}
		}(g)
	}
	for g := 0; g < nCancels; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			body, _ := json.Marshal(QueryRequest{Query: slowQuery})
			req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/query", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				// The query finished under 20ms (possible on a fast machine
				// once the plan is cached); that is not a failure.
				resp.Body.Close()
				return
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				errs <- fmt.Errorf("cancelled request failed oddly: %w", err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cs := s.CacheStats()
	if cs.Hits < nHits {
		t.Errorf("cache hits = %d, want >= %d", cs.Hits, nHits)
	}
	if cs.Misses < nMisses {
		t.Errorf("cache misses = %d, want >= %d", cs.Misses, nMisses)
	}

	// The environment must still be fully serviceable afterwards.
	r, _, err := postQuery(ts, QueryRequest{Query: "6 * 7"})
	if err != nil || r.Value != "42" {
		t.Fatalf("post-load query: %v (value %v)", err, r)
	}
}

// TestCancellationAbortsEvaluation drives the handler synchronously with a
// context that expires mid-evaluation: the response must be the typed
// resource:cancelled error, proving the request context threads into the
// evaluator rather than merely abandoning the response.
func TestCancellationAbortsEvaluation(t *testing.T) {
	s, _ := newTestServer(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	body, _ := json.Marshal(QueryRequest{Query: slowQuery})
	req := httptest.NewRequest("POST", "/query", bytes.NewReader(body)).WithContext(ctx)
	rr := httptest.NewRecorder()
	start := time.Now()
	s.ServeHTTP(rr, req)

	if rr.Code == http.StatusOK {
		t.Skipf("slow query finished in %s before the 30ms cancel; machine too fast for this guard", time.Since(start))
	}
	var er ErrorResponse
	if err := json.NewDecoder(rr.Body).Decode(&er); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if er.Error.Kind != "resource:cancelled" && er.Error.Kind != "resource:timeout" {
		t.Fatalf("got error kind %q, want resource:cancelled", er.Error.Kind)
	}
	if rr.Code != statusClientClosedRequest && rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("got status %d, want %d", rr.Code, statusClientClosedRequest)
	}
}

// TestPerRequestBudgets: a request's max_steps tightens only that request.
func TestPerRequestBudgets(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, status, err := postQuery(ts, QueryRequest{Query: "summap(fn \\i => i)!(gen!10000)", MaxSteps: 50})
	var ee *errorInfoError
	if !errors.As(err, &ee) || ee.Info.Kind != "resource:steps" {
		t.Fatalf("budgeted request: got %v (status %d), want resource:steps", err, status)
	}
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("budgeted request status = %d, want 422", status)
	}

	// The same (cached) plan with no budget succeeds.
	r, _, err := postQuery(ts, QueryRequest{Query: "summap(fn \\i => i)!(gen!10000)"})
	if err != nil {
		t.Fatalf("unbudgeted request: %v", err)
	}
	if r.Value != "49995000" {
		t.Fatalf("value = %s, want 49995000", r.Value)
	}
}

// TestValRebindInvalidatesPlans: binding a val bumps the environment epoch,
// so cached plans against the old environment are never served again.
func TestValRebindInvalidatesPlans(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	setVal := func(name, body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/val/"+name, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /val/%s: %v", name, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /val/%s: status %d: %s", name, resp.StatusCode, b)
		}
	}

	setVal("x", "40")
	r, _, err := postQuery(ts, QueryRequest{Query: "x + 2"})
	if err != nil || r.Value != "42" {
		t.Fatalf("x + 2 with x=40: %v (value %v)", err, r)
	}
	// Warm the cache, then rebind.
	if r, _, _ = postQuery(ts, QueryRequest{Query: "x + 2"}); !r.Cached {
		t.Fatal("second x + 2 was not a hit")
	}
	setVal("x", "100")
	r, _, err = postQuery(ts, QueryRequest{Query: "x + 2"})
	if err != nil {
		t.Fatalf("x + 2 after rebind: %v", err)
	}
	if r.Cached {
		t.Fatal("query served a stale plan after val rebind")
	}
	if r.Value != "102" {
		t.Fatalf("x + 2 after rebind = %s, want 102", r.Value)
	}
	if inv := s.CacheStats().Invalidations; inv < 1 {
		t.Errorf("invalidations = %d, want >= 1", inv)
	}

	// GET /val round-trips through the exchange format.
	resp, err := http.Get(ts.URL + "/val/x")
	if err != nil {
		t.Fatalf("GET /val/x: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if got := strings.TrimSpace(string(b)); got != "100" {
		t.Fatalf("GET /val/x = %q, want 100", got)
	}
}

// TestValBodyGuards: oversized and overdeep exchange bodies are rejected
// with the typed limit error, not materialized.
func TestValBodyGuards(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	deep := strings.Repeat("(1, ", valMaxDepth+2) + "1" + strings.Repeat(")", valMaxDepth+2)
	resp, err := http.Post(ts.URL+"/val/deep", "text/plain", strings.NewReader(deep))
	if err != nil {
		t.Fatalf("POST deep val: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("deep val status = %d, want 413", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if er.Error.Kind != "exchange:depth" {
		t.Fatalf("deep val kind = %q, want exchange:depth", er.Error.Kind)
	}

	big := strings.Repeat("1", maxValBody+2)
	resp2, err := http.Post(ts.URL+"/val/big", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatalf("POST big val: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("big val status = %d, want 413", resp2.StatusCode)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&er); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if er.Error.Kind != "exchange:bytes" {
		t.Fatalf("big val kind = %q, want exchange:bytes", er.Error.Kind)
	}
}

// TestCompileHTTPClassification: error kinds come from the PrepareError
// phase tag, never from substrings of the message — a message mentioning
// "parse" inside a type error (or vice versa) cannot misclassify.
func TestCompileHTTPClassification(t *testing.T) {
	info, status := compileHTTP(&PrepareError{Phase: "type", Err: errors.New(`cannot parse operand "parse"`)})
	if info.Kind != "type" || status != http.StatusBadRequest {
		t.Fatalf("tagged type error: kind %q status %d, want type/400", info.Kind, status)
	}
	info, _ = compileHTTP(&PrepareError{Phase: "parse", Err: errors.New("expected a type after colon")})
	if info.Kind != "parse" {
		t.Fatalf("tagged parse error: kind %q, want parse", info.Kind)
	}
	info, _ = compileHTTP(errors.New("type: parse: untagged"))
	if info.Kind != "compile" {
		t.Fatalf("untagged error: kind %q, want compile", info.Kind)
	}
}

// TestBadQueries: malformed bodies and queries map to 400 with typed kinds.
func TestBadQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  QueryRequest
		kind string
	}{
		{"parse error", QueryRequest{Query: "1 +"}, "parse"},
		{"type error", QueryRequest{Query: `1 + "two"`}, "type"},
		{"empty", QueryRequest{Query: "   "}, "request"},
	}
	for _, c := range cases {
		_, status, err := postQuery(ts, c.req)
		var ee *errorInfoError
		if !errors.As(err, &ee) {
			t.Errorf("%s: got %v, want typed error", c.name, err)
			continue
		}
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, status)
		}
		if ee.Info.Kind != c.kind {
			t.Errorf("%s: kind = %q, want %q", c.name, ee.Info.Kind, c.kind)
		}
	}
}

// TestMetricsExposition: /metrics must expose the plan-cache and admission
// series alongside the fleet metrics.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 2; i++ {
		if _, _, err := postQuery(ts, QueryRequest{Query: "1 + 2"}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, want := range []string{
		`aqld_plan_cache_events_total{event="hit"} 1`,
		`aqld_plan_cache_events_total{event="miss"} 1`,
		`aqld_plan_cache_entries 1`,
		`aqld_admission_total{outcome="admitted"} 2`,
		"aql_queries_total", // the fleet exposition is present too
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugQueriesCarriesReports: served queries appear in the flight
// recorder with the cached flag.
func TestDebugQueriesCarriesReports(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 2; i++ {
		if _, _, err := postQuery(ts, QueryRequest{Query: "2 + 3"}); err != nil {
			t.Fatalf("query: %v", err)
		}
	}
	resp, err := http.Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatalf("GET /debug/queries: %v", err)
	}
	defer resp.Body.Close()
	var reports []trace.QueryReport
	if err := json.NewDecoder(resp.Body).Decode(&reports); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(reports) != 2 {
		t.Fatalf("flight recorder has %d reports, want 2", len(reports))
	}
	if reports[0].Cached || !reports[1].Cached {
		t.Fatalf("cached flags = %v/%v, want false/true", reports[0].Cached, reports[1].Cached)
	}
}
