// Package server implements aqld, the concurrent AQL query server: an
// HTTP/JSON front end hosting one shared session environment and serving
// concurrent /query requests on the compiled execution engine.
//
// Three mechanisms make one environment safe and fast to share:
//
//   - A prepared-plan cache. Each distinct query text is parsed,
//     typechecked, optimized and compiled to a slot-resolved closure
//     program exactly once; requests for the same query execute the cached
//     compile.Program directly. Entries are keyed by the normalized query
//     text plus the environment epoch, so rebinding a val or registering a
//     reader (which bumps the epoch) atomically retires every plan compiled
//     against the old environment.
//
//   - Admission control. A semaphore bounds concurrently executing
//     queries, a bounded queue absorbs bursts, and requests beyond both are
//     rejected with typed errors mapped to HTTP 429 (queue full) and 503
//     (queue timeout). The request context threads into evaluation, so a
//     client disconnect aborts the query itself, not just the response.
//
//   - Per-request observability. Every request gets its own
//     trace.Recorder whose finished report flows into the shared fleet
//     aggregator and flight recorder — the same sinks the REPL uses — and
//     back to the client as phase timings in the response. A cache hit
//     carries zero parse/typecheck/optimize/compile phases by
//     construction: those phases simply never run.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/cluster"
	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/desugar"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/exchange"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/parser"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/tile"
	"github.com/aqldb/aql/internal/trace"
	"github.com/aqldb/aql/internal/typecheck"
)

// Request body and /val body caps.
const (
	maxQueryBody = 1 << 20 // 1 MiB of query JSON
	maxValBody   = 16 << 20
	valMaxDepth  = 10_000 // exchange nesting guard for POST /val bodies
)

// Config tunes a Server. Zero fields take the package defaults.
type Config struct {
	// CacheSize bounds the prepared-plan cache (entries).
	CacheSize int
	// MaxConcurrent / MaxQueued / QueueTimeout configure admission control.
	MaxConcurrent int
	MaxQueued     int
	QueueTimeout  time.Duration
	// Limits is the per-request resource budget. MaxDepth is compiled into
	// cached plans; the other fields are per-execution defaults a request
	// may tighten (never exceed) with its own max_steps / timeout_ms.
	Limits eval.Limits
	// Workers caps per-query local tabulation fan-out (0 = GOMAXPROCS). A
	// coordinator node typically sets 1 so local fallback doesn't contend
	// with dispatching.
	Workers int
	// Coordinator, when non-nil, enables scatter-gather execution: queries
	// whose prepared plan is range-partitionable are scattered across its
	// workers instead of executing in-process. See internal/cluster.
	Coordinator *cluster.Coordinator
	// QErrorThreshold is the q-error above which a per-operator estimate is
	// flagged as a misestimate in joined explain tables (<= 0 selects
	// trace.DefaultQErrorThreshold).
	QErrorThreshold float64
}

// Server is the aqld HTTP handler. Create with New, serve with net/http.
type Server struct {
	sess *repl.Session
	cfg  Config

	cache *planCache
	adm   *admission
	// planStats aggregates per-plan runtime profiles keyed by plan-cache
	// key; served on /debug/planstats.
	planStats *trace.PlanStatsStore

	// envMu makes (epoch, globals snapshot) reads atomic with respect to
	// environment mutations: prepares hold RLock across reading the epoch
	// and snapshotting globals; POST /val holds Lock across SetVal and the
	// cache sweep. Without it a rebind landing between the two reads could
	// cache a new-environment plan under an old-epoch key.
	envMu sync.RWMutex

	qid atomic.Int64

	// mis aggregates estimate-vs-actual misestimates across requests for
	// the aqld_plan_misestimate_* metric family.
	mis misestimates

	mux *http.ServeMux
}

// misestimates is the server-wide misestimate ledger: flagged-operator and
// affected-query counters, the worst q-error seen, and a trace_id exemplar
// pointing at the most recent offending query.
type misestimates struct {
	mu      sync.Mutex
	ops     int64
	queries int64
	worst   float64
	ex      *trace.Exemplar
}

// observe folds one finished report's joined table into the ledger.
func (m *misestimates) observe(rep *trace.QueryReport) {
	if rep == nil || rep.Explain == nil || rep.Explain.Misestimates == 0 {
		return
	}
	m.mu.Lock()
	m.ops += int64(rep.Explain.Misestimates)
	m.queries++
	if rep.Explain.WorstQError > m.worst {
		m.worst = rep.Explain.WorstQError
	}
	if rep.TraceID != "" {
		m.ex = &trace.Exemplar{
			TraceID: rep.TraceID,
			Value:   rep.Explain.WorstQError,
			Ts:      float64(rep.Start.Add(rep.Wall).UnixNano()) / 1e9,
		}
	}
	m.mu.Unlock()
}

// New wraps a session (its environment, fleet aggregator and flight
// recorder) in a query server. The session must not be used for concurrent
// REPL work while the server is running; the server owns it.
func New(sess *repl.Session, cfg Config) *Server {
	s := &Server{
		sess:      sess,
		cfg:       cfg,
		cache:     newPlanCache(cfg.CacheSize),
		adm:       newAdmission(cfg.MaxConcurrent, cfg.MaxQueued, cfg.QueueTimeout),
		planStats: trace.NewPlanStatsStore(0),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /shard", s.handleShard)
	mux.HandleFunc("GET /val/{name}", s.handleValGet)
	mux.HandleFunc("POST /val/{name}", s.handleValSet)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	mux.HandleFunc("GET /debug/server", s.handleDebugServer)
	mux.HandleFunc("GET /debug/planstats", s.handleDebugPlanStats)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleDebugTrace)
	mux.HandleFunc("GET /debug/explain/{id}", s.handleDebugExplain)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	s.mux = mux
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// CacheStats exposes the plan cache counters (tests and /debug/server).
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// AdmissionStats exposes the admission counters.
func (s *Server) AdmissionStats() AdmissionStats { return s.adm.stats() }

// PlanStats exposes the per-plan stats store (tests and benchmarks).
func (s *Server) PlanStats() *trace.PlanStatsStore { return s.planStats }

// QueryRequest is the POST /query body.
type QueryRequest struct {
	Query string `json:"query"`
	// MaxSteps, when positive, tightens the server's per-request step
	// budget for this query; it cannot exceed the configured budget.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// TimeoutMS likewise tightens the evaluation wall-clock budget.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Args binds the query's $name placeholders for this execution, each
	// value in the complex-object exchange format. Binding is strict: every
	// placeholder must be bound, every argument must name a placeholder the
	// query mentions, and each value must unify with the placeholder's
	// inferred type — violations are 400s, never mid-query eval errors.
	Args map[string]string `json:"args,omitempty"`
}

// QueryResponse is the POST /query success body.
type QueryResponse struct {
	ID string `json:"id"`
	// TraceID is the distributed trace id the query ran under: honored from
	// the request's traceparent header, or minted by the server. Fetch the
	// stitched trace with GET /debug/trace/{trace_id}.
	TraceID string `json:"trace_id,omitempty"`
	Cached  bool   `json:"cached"`
	Type    string `json:"type"`
	// Value is the result in the complex-object data exchange format.
	Value  string             `json:"value"`
	WallNS int64              `json:"wall_ns"`
	Phases []trace.PhaseTime  `json:"phases"`
	Eval   trace.EvalCounters `json:"eval"`
	// QueueWaitNS is time spent queued in admission control before
	// execution began; 0 when a slot was free immediately.
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	// Mode and Shards describe coordinator execution (see
	// trace.QueryReport.Mode); absent on non-coordinator servers.
	Mode   string            `json:"mode,omitempty"`
	Shards []trace.ShardSpan `json:"shards,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorInfo `json:"error"`
}

// ErrorInfo is a typed error: Kind classifies it machine-readably.
//
//	parse | type | resource:steps | resource:cells | resource:depth |
//	resource:timeout | resource:cancelled | admission:queue_full |
//	admission:queue_timeout | panic | request
type ErrorInfo struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// ID is set when the error occurred inside an identified query.
	ID string `json:"id,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxQueryBody)
	var req QueryRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorInfo{Kind: "request", Message: "bad request body: " + err.Error()})
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, ErrorInfo{Kind: "request", Message: "empty query"})
		return
	}

	// Request identity: a sanitized client X-Request-ID wins (so the caller
	// can correlate the response, the slow log and the flight recorder with
	// its own systems); otherwise the server mints one. Echoed on every
	// response, success or error.
	id := trace.SanitizeRequestID(r.Header.Get("X-Request-ID"))
	if id == "" {
		id = fmt.Sprintf("q%06d", s.qid.Add(1))
	}
	w.Header().Set("X-Request-ID", id)

	// Trace context: honor an inbound W3C traceparent, else mint a root.
	tc, ok := trace.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		tc = trace.NewTraceContext()
	}
	w.Header().Set("traceparent", tc.Traceparent())

	ctx := r.Context()
	release, waited, err := s.adm.acquire(ctx)
	if err != nil {
		status, info := admissionHTTP(err)
		info.ID = id
		writeError(w, status, info)
		return
	}
	defer release()

	resp, errInfo, status := s.runQuery(ctx, id, tc, req, waited)
	if errInfo != nil {
		errInfo.ID = id
		writeError(w, status, *errInfo)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// runQuery executes one admitted request: plan-cache lookup or prepare,
// then execution on a fresh machine, all recorded on a per-request recorder
// whose report feeds the shared fleet/flight sinks and the per-plan stats
// store.
func (s *Server) runQuery(ctx context.Context, id string, tc trace.TraceContext, req QueryRequest, waited time.Duration) (*QueryResponse, *ErrorInfo, int) {
	norm := NormalizeQuery(req.Query)

	rec := trace.NewRecorder(trace.MultiSink{s.sess.Fleet, s.sess.Flight})
	rec.Begin(norm)
	rec.RecordID(id)
	rec.RecordTraceID(tc.TraceID)
	rec.RecordQueueWait(waited)

	p, key, hit, err := s.plan(norm, rec)
	if err != nil {
		rec.End(err)
		info, status := compileHTTP(err)
		return nil, &info, status
	}
	rec.RecordCached(hit)

	opts := s.execOpts(req)
	if len(p.params) > 0 || len(req.Args) > 0 {
		bound, bindErr := bindArgs(p, req.Args)
		if bindErr != nil {
			rec.End(errors.New(bindErr.Message))
			return nil, bindErr, http.StatusBadRequest
		}
		opts.Args = bound
	}
	var v object.Value
	var counters eval.Counters
	var mode string
	var shards []trace.ShardSpan
	var stitched *trace.SpanNode
	// Lazy-array tile I/O during this request is attributed to it through a
	// per-request collector in the context, mirroring the session's
	// evalGuarded; file-handle counters arrive as watermark deltas.
	ctx, tiles := tile.WithCollector(ctx)
	sp := rec.StartPhase(trace.PhaseEval)
	if s.cfg.Coordinator != nil && p.prog.Rangeable() {
		// Scatter-gather path: the coordinator's merge contract guarantees
		// the value and counters below are byte-identical to what the
		// in-process branch would produce.
		var res *cluster.Result
		res, err = s.cfg.Coordinator.ExecuteTraced(ctx, p.prog, norm, opts, tc)
		if err == nil {
			v, counters, mode, shards = res.Value, res.Counters, res.Mode, res.Shards
			stitched = res.Spans
		}
	} else {
		v, counters, err = executeGuarded(ctx, p.prog, opts, norm)
	}
	sp.End()
	rec.RecordEngine("compiled")
	rec.RecordMode(mode)
	rec.RecordShards(shards)
	tcnt := trace.EvalCounters{
		Steps:       counters.Steps,
		Cells:       counters.Cells,
		Tabulations: counters.Tabs,
		SetOps:      counters.SetOps,
		Iterations:  counters.Iters,
	}
	rec.RecordEval(tcnt)
	io := repl.TileIOCounters(tiles.Snapshot())
	io.Add(s.sess.IOFileDelta())
	rec.RecordIO(io)
	if stitched != nil {
		// Record the stitched multi-node tree only when it verifies against
		// the merged counters: a skewed tree (a buggy worker's payload)
		// degrades to the flat report rather than serving wrong attribution.
		if trace.CheckStitched(stitched, tcnt) == nil {
			rec.RecordSpans(stitched, trace.ProfStitched)
		}
	}
	// Join the plan's prepare-time estimates against the recorded actuals
	// before the report is finalized, so the table rides every copy of it
	// (flight recorder, sinks, per-plan stats).
	rec.JoinExplain(p.prog.Estimates(), s.cfg.QErrorThreshold)
	rep := rec.End(err)
	s.planStats.Observe(key.String(), rep)
	s.mis.observe(rep)
	if err != nil {
		info, status := execHTTP(err)
		return nil, &info, status
	}

	text, err := exchange.WriteString(v)
	if err != nil {
		return nil, &ErrorInfo{Kind: "encode", Message: err.Error()}, http.StatusInternalServerError
	}
	return &QueryResponse{
		ID:          id,
		TraceID:     tc.TraceID,
		Cached:      hit,
		Type:        p.typ.String(),
		Value:       text,
		WallNS:      int64(rep.Wall),
		Phases:      rep.Phases,
		Eval:        rep.Eval,
		QueueWaitNS: int64(waited),
		Mode:        mode,
		Shards:      shards,
	}, nil, 0
}

// plan returns the prepared plan for the normalized query, preparing and
// caching it on a miss. The prepare phases (parse/desugar/macro/typecheck/
// optimize/compile) are timed on rec only when they actually run, which is
// what makes a hit's report carry zero prepare time.
func (s *Server) plan(norm string, rec *trace.Recorder) (*plan, planKey, bool, error) {
	// The epoch read and the prepare must see one environment state; see
	// envMu. The read lock is held across the whole prepare — prepares are
	// pure CPU (no I/O), and val rebinds are rare control operations.
	s.envMu.RLock()
	defer s.envMu.RUnlock()

	key := planKey{query: norm, epoch: s.sess.Env.Epoch()}
	if p, ok := s.cache.get(key); ok {
		return p, key, true, nil
	}

	p, err := s.prepare(norm, rec)
	if err != nil {
		return nil, key, false, err
	}
	s.cache.put(key, p)
	return p, key, false, nil
}

// PrepareError tags an error from one prepare phase with the phase that
// produced it, so HTTP mapping classifies by type rather than by matching
// substrings of the message (which a user-written identifier or literal
// could defeat).
type PrepareError struct {
	Phase string // "parse" | "desugar" | "type"
	Err   error
}

func (e *PrepareError) Error() string { return e.Err.Error() }
func (e *PrepareError) Unwrap() error { return e.Err }

// prepare runs the front half of the pipeline and compiles the result into
// a reusable Program. It mirrors repl.Session.Compile/Optimize but records
// on the per-request recorder and uses the optimizer's per-call trace hook,
// so concurrent prepares never share mutable trace state.
func (s *Server) prepare(norm string, rec *trace.Recorder) (*plan, error) {
	env := s.sess.Env

	sp := rec.StartPhase(trace.PhaseParse)
	se, err := parser.ParseExpr(norm)
	sp.End()
	if err != nil {
		return nil, &PrepareError{Phase: "parse", Err: err}
	}
	sp = rec.StartPhase(trace.PhaseDesugar)
	core, err := desugar.Expr(se)
	sp.End()
	if err != nil {
		return nil, &PrepareError{Phase: "desugar", Err: err}
	}
	sp = rec.StartPhase(trace.PhaseMacro)
	core = env.ExpandMacros(core)
	sp.End()
	sp = rec.StartPhase(trace.PhaseTypecheck)
	typ, params, err := typecheck.InferParams(core, env.GlobalTypes())
	sp.End()
	if err != nil {
		return nil, &PrepareError{Phase: "type", Err: err}
	}

	sp = rec.StartPhase(trace.PhaseOptimize)
	before := ast.CountNodes(core)
	var rules []trace.RuleFiring
	optimized := env.Optimizer.OptimizeTraced(core, func(phase, rule string, nb, na int) {
		rec.RuleFired(phase, rule, nb, na)
		if len(rules) < 1024 {
			rules = append(rules, trace.RuleFiring{Phase: phase, Rule: rule, NodesBefore: nb, NodesAfter: na})
		}
	})
	after := ast.CountNodes(optimized)
	rec.RecordNodes(before, after)
	sp.End()

	sp = rec.StartPhase(trace.PhaseCompile)
	prog := compile.NewProgram(optimized, env.Globals(), eval.Limits{MaxDepth: s.cfg.Limits.MaxDepth})
	sp.End()

	return &plan{prog: prog, typ: typ, params: params, rules: rules, nodesBefore: before, nodesAfter: after}, nil
}

// execOpts derives one execution's resource budget: the server's configured
// limits, tightened (never widened) by the request's own bounds.
func (s *Server) execOpts(req QueryRequest) compile.ExecOpts {
	lim := s.cfg.Limits
	if req.MaxSteps > 0 && (lim.MaxSteps == 0 || req.MaxSteps < lim.MaxSteps) {
		lim.MaxSteps = req.MaxSteps
	}
	if req.TimeoutMS > 0 {
		t := time.Duration(req.TimeoutMS) * time.Millisecond
		if lim.Timeout == 0 || t < lim.Timeout {
			lim.Timeout = t
		}
	}
	return compile.ExecOpts{Limits: lim, Workers: s.cfg.Workers}
}

// executeGuarded is the server's panic boundary, mirroring the session's
// evalGuarded: a panicking query yields a *repl.PanicError (and counters up
// to the panic), never a crashed server.
func executeGuarded(ctx context.Context, prog *compile.Program, opts compile.ExecOpts, src string) (v object.Value, c eval.Counters, err error) {
	defer func() {
		if r := recover(); r != nil {
			v = object.Value{}
			if me, ok := r.(*object.MaterializeError); ok {
				// A lazy array failed to materialize inside an interface
				// with no error return: surface the I/O error, not an
				// internal-error panic.
				err = fmt.Errorf("aql: materializing lazy array for %q: %w", src, me.Err)
				return
			}
			err = &repl.PanicError{Src: src, Val: r, Stack: debug.Stack()}
		}
	}()
	return prog.Execute(ctx, opts)
}

// --- /val -------------------------------------------------------------------

func (s *Server) handleValGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v, ok := s.sess.Env.Val(name)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorInfo{Kind: "request", Message: "no val " + name})
		return
	}
	text, err := exchange.WriteString(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrorInfo{Kind: "encode", Message: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, text)
}

// handleValSet binds a top-level val from an exchange-format body. The
// environment epoch bump retires every cached plan; the explicit sweep
// frees their memory immediately.
func (s *Server) handleValSet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// exchange.ReadLimits bounds both bytes read (it never buffers more than
	// MaxBytes+1) and nesting depth, and returns a typed *LimitError. No
	// http.MaxBytesReader wrapper here: it would trip first with an untyped
	// read error, making the 413 exchange:bytes path unreachable.
	v, err := exchange.ReadLimits(r.Body, exchange.Limits{MaxBytes: maxValBody, MaxDepth: valMaxDepth})
	if err != nil {
		var le *exchange.LimitError
		if errors.As(err, &le) {
			writeError(w, http.StatusRequestEntityTooLarge, ErrorInfo{Kind: "exchange:" + le.Kind, Message: err.Error()})
			return
		}
		writeError(w, http.StatusBadRequest, ErrorInfo{Kind: "exchange", Message: err.Error()})
		return
	}
	typ, err := typecheck.TypeOf(v)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorInfo{Kind: "type", Message: err.Error()})
		return
	}

	s.envMu.Lock()
	s.sess.Env.SetVal(name, v, typ)
	epoch := s.sess.Env.Epoch()
	s.cache.invalidateBefore(epoch)
	s.envMu.Unlock()

	writeJSON(w, http.StatusOK, map[string]any{"name": name, "type": typ.String(), "epoch": epoch})
}

// --- observability endpoints ------------------------------------------------

// handleMetrics serves the fleet's metrics exposition with the server's
// own plan-cache, admission and cluster families appended. The classic
// Prometheus text format is the default; an Accept header asking for
// application/openmetrics-text negotiates OpenMetrics 1.0, which adds
// trace-id exemplars on the latency histograms and the # EOF terminator.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	om := trace.AcceptsOpenMetrics(r.Header.Get("Accept"))
	if om {
		w.Header().Set("Content-Type", trace.OpenMetricsContentType)
	} else {
		w.Header().Set("Content-Type", trace.PrometheusContentType)
	}
	b := trace.NewMetricWriter(w, om)
	snap := s.sess.Fleet.Snapshot()
	if om {
		if err := trace.WriteOpenMetrics(w, snap); err != nil {
			return
		}
	} else if err := trace.WritePrometheus(w, snap); err != nil {
		return
	}
	cs := s.cache.stats()
	as := s.adm.stats()
	b.Header("aqld_plan_cache_entries", "gauge", "Prepared plans currently cached.")
	b.Val("aqld_plan_cache_entries", "", int64(cs.Size))
	b.Header("aqld_plan_cache_events_total", "counter", "Plan cache events by kind.")
	b.Val("aqld_plan_cache_events_total", `event="hit"`, cs.Hits)
	b.Val("aqld_plan_cache_events_total", `event="miss"`, cs.Misses)
	b.Val("aqld_plan_cache_events_total", `event="eviction"`, cs.Evictions)
	b.Val("aqld_plan_cache_events_total", `event="invalidation"`, cs.Invalidations)
	b.Header("aqld_admission_active", "gauge", "Queries currently executing.")
	b.Val("aqld_admission_active", "", int64(as.Active))
	b.Header("aqld_admission_queued", "gauge", "Queries currently waiting for a slot.")
	b.Val("aqld_admission_queued", "", int64(as.Queued))
	b.Header("aqld_admission_total", "counter", "Admission outcomes by kind.")
	b.Val("aqld_admission_total", `outcome="admitted"`, as.Admitted)
	b.Val("aqld_admission_total", `outcome="queue_full"`, as.RejectedFull)
	b.Val("aqld_admission_total", `outcome="queue_timeout"`, as.RejectedWait)
	b.Val("aqld_admission_total", `outcome="cancelled"`, as.Cancelled)
	qh := s.adm.queueWaitHistogram()
	b.Header("aqld_admission_queue_seconds", "histogram", "Time spent queued for an execution slot.")
	for i, le := range qh.Buckets {
		b.Val("aqld_admission_queue_seconds_bucket", `le="`+strconv.FormatFloat(le, 'g', -1, 64)+`"`, qh.Counts[i])
	}
	b.Val("aqld_admission_queue_seconds_bucket", `le="+Inf"`, qh.Counts[len(qh.Buckets)])
	b.Valf("aqld_admission_queue_seconds_sum", "", qh.Sum.Seconds())
	b.Val("aqld_admission_queue_seconds_count", "", qh.Counts[len(qh.Buckets)])
	// Out-of-core I/O: live totals from the session's tile cache and its
	// open NetCDF handles. The tile series answer hit rate, prefetch
	// efficiency and I/O amplification (bytes scanned vs. returned); the
	// file series are the cumulative netcdf.IOStats counters that per-query
	// reports carry as deltas.
	ts := s.sess.TileCache().Stats()
	ft := s.sess.IOFileTotals()
	b.Header("aqld_io_tiles_total", "counter", "Tile cache lookups by outcome.")
	b.Val("aqld_io_tiles_total", `outcome="hit"`, ts.TileHits)
	b.Val("aqld_io_tiles_total", `outcome="miss"`, ts.TileMisses)
	b.Val("aqld_io_tiles_total", `outcome="eviction"`, ts.Evictions)
	b.Header("aqld_io_tile_prefetches_total", "counter", "Tiles prefetched ahead of sequential scans, by usefulness.")
	b.Val("aqld_io_tile_prefetches_total", `useful="true"`, ts.PrefetchUseful)
	b.Val("aqld_io_tile_prefetches_total", `useful="unknown"`, ts.Prefetches-ts.PrefetchUseful)
	b.Header("aqld_io_tile_bytes_total", "counter", "Tile bytes moved: scanned from storage vs. returned to queries.")
	b.Val("aqld_io_tile_bytes_total", `direction="scanned"`, ts.BytesScanned)
	b.Val("aqld_io_tile_bytes_total", `direction="returned"`, ts.BytesReturned)
	b.Header("aqld_io_spill_bytes_total", "counter", "Spill-file bytes written and read back.")
	b.Val("aqld_io_spill_bytes_total", `direction="written"`, ts.SpillBytesWritten)
	b.Val("aqld_io_spill_bytes_total", `direction="read"`, ts.SpillBytesRead)
	b.Header("aqld_io_cache_resident_bytes", "gauge", "Bytes currently resident in the tile cache.")
	b.Val("aqld_io_cache_resident_bytes", "", s.sess.TileCache().Resident())
	b.Header("aqld_io_cache_peak_bytes", "gauge", "Peak tile-cache residency since start.")
	b.Val("aqld_io_cache_peak_bytes", "", s.sess.TileCache().PeakResident())
	b.Header("aqld_io_slab_reads_total", "counter", "NetCDF slab/range reads issued.")
	b.Val("aqld_io_slab_reads_total", "", ft.SlabReads)
	b.Header("aqld_io_bytes_read_total", "counter", "Bytes read from NetCDF data regions.")
	b.Val("aqld_io_bytes_read_total", "", ft.BytesRead)
	b.Header("aqld_io_retries_total", "counter", "Transient read failures retried by the reader stack.")
	b.Val("aqld_io_retries_total", "", ft.Retries)
	b.Header("aqld_io_faults_total", "counter", "Reader faults observed (injected or real).")
	b.Val("aqld_io_faults_total", "", ft.Faults)
	s.mis.mu.Lock()
	misOps, misQueries, misWorst, misEx := s.mis.ops, s.mis.queries, s.mis.worst, s.mis.ex
	s.mis.mu.Unlock()
	b.Header("aqld_plan_misestimate_ops_total", "counter",
		"Operators whose estimate-vs-actual q-error exceeded the threshold.")
	b.ValEx("aqld_plan_misestimate_ops_total", "", misOps, misEx)
	b.Header("aqld_plan_misestimate_queries_total", "counter",
		"Queries with at least one flagged misestimate.")
	b.ValEx("aqld_plan_misestimate_queries_total", "", misQueries, misEx)
	b.Header("aqld_plan_misestimate_worst_q_error", "gauge",
		"Worst estimate-vs-actual q-error observed since start.")
	b.Valf("aqld_plan_misestimate_worst_q_error", "", misWorst)
	if coord := s.cfg.Coordinator; coord != nil {
		st := coord.Stats()
		b.Header("aqld_cluster_queries_total", "counter", "Scatter-gather query executions.")
		b.Val("aqld_cluster_queries_total", "", st.Queries.Load())
		b.Header("aqld_cluster_shards_total", "counter", "Shards dispatched, by terminal executor.")
		b.Val("aqld_cluster_shards_total", `executor="remote"`, st.RemoteShards.Load())
		b.Val("aqld_cluster_shards_total", `executor="local"`, st.LocalShards.Load())
		b.Header("aqld_cluster_events_total", "counter", "Robustness-envelope events by kind.")
		b.Val("aqld_cluster_events_total", `event="retry"`, st.Retries.Load())
		b.Val("aqld_cluster_events_total", `event="hedge"`, st.Hedges.Load())
		b.Val("aqld_cluster_events_total", `event="hedge_win"`, st.HedgeWins.Load())
		b.Val("aqld_cluster_events_total", `event="breaker_open"`, st.BreakerOpens.Load())
		b.Val("aqld_cluster_events_total", `event="breaker_close"`, st.BreakerCloses.Load())
		b.Val("aqld_cluster_events_total", `event="degraded"`, st.DegradedTotal.Load())
		b.Histogram("aqld_cluster_shard_seconds",
			"Shard round-trip time, first dispatch to winning response.", coord.ShardLatency())
	}
	b.WriteEOF()
}

func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sess.Flight.Reports())
}

// handleDebugPlanStats dumps the per-plan stats store: one aggregated
// runtime profile per plan-cache key.
func (s *Server) handleDebugPlanStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.planStats.Snapshot())
}

// handleDebugTrace serves one retained query report as Chrome trace-event
// JSON, looked up by request id or trace id — load the body straight into
// chrome://tracing or Perfetto.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.sess.Flight.Find(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrorInfo{Kind: "request",
			Message: "no retained report with id or trace id " + r.PathValue("id")})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WriteChromeTrace(w, &rep)
}

// handleDebugExplain serves the joined estimate-vs-actual table of one
// flight-recorded query as JSON, looked up by request id or trace id. 404
// when no report is retained under the id, or the retained report carries
// no joined table (e.g. the query failed before execution).
func (s *Server) handleDebugExplain(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.sess.Flight.Find(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrorInfo{Kind: "request",
			Message: "no retained report with id or trace id " + r.PathValue("id")})
		return
	}
	if rep.Explain == nil {
		writeError(w, http.StatusNotFound, ErrorInfo{Kind: "request",
			Message: "no explain table recorded for " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, rep.Explain)
}

func (s *Server) handleDebugServer(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"plan_cache": s.cache.stats(),
		"admission":  s.adm.stats(),
		"epoch":      s.sess.Env.Epoch(),
	})
}

// --- error mapping ----------------------------------------------------------

// admissionHTTP maps a typed admission rejection to status + body.
func admissionHTTP(err error) (int, ErrorInfo) {
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		return http.StatusInternalServerError, ErrorInfo{Kind: "admission", Message: err.Error()}
	}
	info := ErrorInfo{Kind: "admission:" + string(ae.Kind), Message: ae.Error()}
	switch ae.Kind {
	case AdmissionQueueFull:
		return http.StatusTooManyRequests, info
	case AdmissionQueueTimeout:
		return http.StatusServiceUnavailable, info
	default: // client went away while queued; status is best-effort
		return statusClientClosedRequest, info
	}
}

// compileHTTP maps prepare-phase errors (parse/desugar/type) to 400, keyed
// by the PrepareError phase tag.
func compileHTTP(err error) (ErrorInfo, int) {
	kind := "compile"
	var pe *PrepareError
	if errors.As(err, &pe) {
		kind = pe.Phase
	}
	return ErrorInfo{Kind: kind, Message: err.Error()}, http.StatusBadRequest
}

// statusClientClosedRequest is the de-facto (nginx) status for "client
// disconnected before the response"; no standard code exists.
const statusClientClosedRequest = 499

// execHTTP maps execution errors to status + body: resource errors carry
// their kind, panics map to 500.
func execHTTP(err error) (ErrorInfo, int) {
	var re *eval.ResourceError
	if errors.As(err, &re) {
		info := ErrorInfo{Kind: "resource:" + string(re.Kind), Message: err.Error()}
		switch re.Kind {
		case eval.ResourceTimeout:
			return info, http.StatusGatewayTimeout
		case eval.ResourceCancelled:
			return info, statusClientClosedRequest
		default: // steps / cells / depth: the query exceeded its budget
			return info, http.StatusUnprocessableEntity
		}
	}
	var pe *repl.PanicError
	if errors.As(err, &pe) {
		return ErrorInfo{Kind: "panic", Message: pe.Error()}, http.StatusInternalServerError
	}
	// A worker's deterministic shard failure carries the worker's own kind
	// and status; re-serve them (the same plan fails the same way here).
	var se *cluster.ShardError
	if errors.As(err, &se) {
		status := se.Status
		if status == 0 {
			status = http.StatusBadGateway
		}
		return ErrorInfo{Kind: se.Kind, Message: se.Message}, status
	}
	return ErrorInfo{Kind: "eval", Message: err.Error()}, http.StatusUnprocessableEntity
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, info ErrorInfo) {
	writeJSON(w, status, ErrorResponse{Error: info})
}
