package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/aqldb/aql/internal/exchange"
	"github.com/aqldb/aql/internal/object"
)

// postShard fires one /shard request; a non-2xx status returns the decoded
// shard error envelope.
func postShard(t *testing.T, ts *httptest.Server, req exchange.ShardRequest) (*exchange.ShardResponse, int, *exchange.ShardErrorEnvelope) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /shard: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er exchange.ShardErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("undecodable shard error body (status %d): %v", resp.StatusCode, err)
		}
		return nil, resp.StatusCode, &er
	}
	var sr exchange.ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("undecodable shard response: %v", err)
	}
	return &sr, resp.StatusCode, nil
}

// TestShardExecute: a valid range request returns the range's elements in
// exchange format with per-shard counters, and a repeat request hits the
// worker's plan cache.
func TestShardExecute(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := exchange.ShardRequest{
		Query: `[[ i * i | \i < 20 ]]`,
		Shape: []int{20},
		Start: 5,
		End:   12,
	}

	sr, status, er := postShard(t, ts, req)
	if er != nil {
		t.Fatalf("shard failed: status %d %+v", status, er)
	}
	if sr.BottomOff != -1 {
		t.Fatalf("bottom_off = %d, want -1", sr.BottomOff)
	}
	v, err := exchange.ReadString(sr.Values)
	if err != nil {
		t.Fatalf("values not exchange-parseable: %v\n%s", err, sr.Values)
	}
	if v.Kind != object.KArray || len(v.Data) != 7 {
		t.Fatalf("decoded %d elements of kind %v, want 7-element vector", len(v.Data), v.Kind)
	}
	for j, el := range v.Data {
		i := int64(j + 5)
		if n, err := el.AsNat(); err != nil || n != i*i {
			t.Errorf("element %d = %v, want %d", j, el, i*i)
		}
	}
	if sr.Eval.Steps == 0 {
		t.Error("shard charged zero steps")
	}
	if sr.Cached {
		t.Error("first shard execution reported a plan-cache hit")
	}

	sr2, _, er2 := postShard(t, ts, req)
	if er2 != nil {
		t.Fatalf("second shard failed: %+v", er2)
	}
	if !sr2.Cached {
		t.Error("repeat shard execution missed the plan cache")
	}
	if sr2.Values != sr.Values || sr2.Eval != sr.Eval {
		t.Error("repeat shard execution differed from the first")
	}
}

// TestShardBottom: a range containing a ⊥ element answers with the first
// ⊥'s absolute offset and its diagnostic, and no values.
func TestShardBottom(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Division by zero is ⊥ at offsets 0, 3, 6, 9: the first ⊥ of range
	// [5, 10) is 6, reported as an absolute row-major offset.
	sr, status, er := postShard(t, ts, exchange.ShardRequest{
		Query: `[[ 6 / (i % 3) | \i < 10 ]]`,
		Shape: []int{10},
		Start: 5,
		End:   10,
	})
	if er != nil {
		t.Fatalf("shard failed: status %d %+v", status, er)
	}
	if sr.BottomOff != 6 {
		t.Errorf("bottom_off = %d, want 6", sr.BottomOff)
	}
	if sr.BottomMsg == "" {
		t.Error("⊥ shard shipped no diagnostic")
	}
	if sr.Values != "" {
		t.Errorf("⊥ shard shipped values: %q", sr.Values)
	}
}

// TestShardRejects: malformed envelopes, non-tabulation queries, and
// compile failures map to typed 4xx shard errors.
func TestShardRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		req    exchange.ShardRequest
		status int
		kind   string
	}{
		{"empty query", exchange.ShardRequest{Shape: []int{4}, End: 4}, 400, "request"},
		{"empty shape", exchange.ShardRequest{Query: "1", End: 1}, 400, "request"},
		{"range outside space", exchange.ShardRequest{Query: "1", Shape: []int{4}, Start: 2, End: 9}, 400, "request"},
		{"not rangeable", exchange.ShardRequest{Query: "1 + 1", Shape: []int{1}, End: 1}, 400, "shard:not_rangeable"},
		{"parse error", exchange.ShardRequest{Query: "[[ ,", Shape: []int{1}, End: 1}, 400, "parse"},
		{"type error", exchange.ShardRequest{Query: `[[ i + true | \i < 4 ]]`, Shape: []int{4}, End: 4}, 400, "type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, status, er := postShard(t, ts, tc.req)
			if er == nil {
				t.Fatal("expected a shard error")
			}
			if status != tc.status || er.Error.Kind != tc.kind {
				t.Errorf("status %d kind %q, want %d %q (message %q)",
					status, er.Error.Kind, tc.status, tc.kind, er.Error.Message)
			}
		})
	}
}

// TestShardBudget: the request's MaxSteps tightens the worker budget for
// this shard alone, tripping with the /query resource vocabulary.
func TestShardBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := exchange.ShardRequest{
		Query:    `[[ i * i | \i < 1000 ]]`,
		Shape:    []int{1000},
		Start:    0,
		End:      1000,
		MaxSteps: 10,
	}
	_, status, er := postShard(t, ts, req)
	if er == nil {
		t.Fatal("expected a budget trip")
	}
	if status != http.StatusUnprocessableEntity || er.Error.Kind != "resource:steps" {
		t.Errorf("status %d kind %q, want 422 resource:steps", status, er.Error.Kind)
	}

	// The same shard with headroom succeeds: the budget was per-request.
	req.MaxSteps = 0
	if _, status, er := postShard(t, ts, req); er != nil {
		t.Fatalf("unbudgeted shard failed: status %d %+v", status, er)
	}
}
