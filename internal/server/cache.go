package server

import (
	"container/list"
	"strings"
	"sync"

	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/trace"
	"github.com/aqldb/aql/internal/types"
)

// DefaultCacheSize is the prepared-plan cache capacity when Config leaves
// it unset.
const DefaultCacheSize = 256

// NormalizeQuery canonicalizes query text for plan-cache keying: leading
// and trailing space, internal runs of whitespace, and a trailing statement
// semicolon are insignificant. Queries differing only in layout therefore
// share one prepared plan.
func NormalizeQuery(src string) string {
	return strings.TrimSpace(strings.TrimSuffix(strings.Join(strings.Fields(src), " "), ";"))
}

// planKey identifies a prepared plan: the normalized query text plus the
// environment epoch its globals snapshot was taken at. A `val` rebinding or
// a reader registration bumps the epoch, so stale plans can never be served
// — they simply stop being found.
type planKey struct {
	query string
	epoch uint64
}

// plan is one cache entry: the compiled program, its inferred type, and the
// prepare-time observability (phase times, optimizer trace, node counts)
// that /debug/queries reports alongside hits.
type plan struct {
	prog *compile.Program
	typ  *types.Type
	// prepare observability, captured once at prepare time.
	rules       []trace.RuleFiring
	nodesBefore int
	nodesAfter  int
}

// CacheStats is a snapshot of the plan cache's counters.
type CacheStats struct {
	Size          int   `json:"size"`
	Capacity      int   `json:"capacity"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// planCache is an LRU of prepared plans with hit/miss/eviction counters.
// All methods are safe for concurrent use.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[planKey]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry

	hits, misses, evictions, invalidations int64
}

type cacheEntry struct {
	key planKey
	p   *plan
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &planCache{cap: capacity, entries: map[planKey]*list.Element{}, lru: list.New()}
}

// get returns the cached plan for key, counting a hit or miss.
func (c *planCache) get(key planKey) (*plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).p, true
}

// put inserts a plan, evicting the least recently used entry at capacity.
// A concurrent insert of the same key wins-last; both plans are equivalent
// (same query, same epoch), so either is correct.
func (c *planCache) put(key planKey, p *plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).p = p
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, p: p})
	for len(c.entries) > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// invalidateBefore drops every plan prepared under an epoch older than
// epoch, returning how many were dropped. Epoch keying already prevents
// stale plans from being served; this sweep just frees their memory
// eagerly and feeds the invalidation counter.
func (c *planCache) invalidateBefore(epoch uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.key.epoch < epoch {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			n++
		}
		el = next
	}
	c.invalidations += int64(n)
	return n
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:          len(c.entries),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
