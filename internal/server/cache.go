package server

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"unicode"

	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/trace"
	"github.com/aqldb/aql/internal/types"
)

// DefaultCacheSize is the prepared-plan cache capacity when Config leaves
// it unset.
const DefaultCacheSize = 256

// NormalizeQuery canonicalizes query text for plan-cache keying: comments
// and runs of inter-token whitespace collapse to a single space, leading and
// trailing separators are dropped, and a trailing statement semicolon is
// insignificant. Queries differing only in layout therefore share one
// prepared plan. The pass is lexer-aware: string literals (which may contain
// significant whitespace, quotes and escapes) are copied verbatim, so the
// normalized text is always semantically identical to the submitted query
// and distinct literals never collide on one key.
func NormalizeQuery(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	sep := false // a whitespace/comment run is pending
	for i := 0; i < len(src); {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			sep = true
			i++
		case c == '(' && i+1 < len(src) && src[i+1] == '*':
			// Nesting (* ... *) comment, as in the scanner. An unterminated
			// comment cannot be lexed; leave the text to the parser verbatim.
			depth, j := 1, i+2
			for depth > 0 {
				if j >= len(src) {
					return strings.TrimSpace(src)
				}
				switch {
				case src[j] == '(' && j+1 < len(src) && src[j+1] == '*':
					depth++
					j += 2
				case src[j] == '*' && j+1 < len(src) && src[j+1] == ')':
					depth--
					j += 2
				default:
					j++
				}
			}
			sep = true
			i = j
		case c == '"':
			// String literal: copied byte-for-byte, honoring \-escapes the
			// way scan.str does. An unterminated literal copies to the end;
			// the parser reports it on the unchanged text.
			if sep && b.Len() > 0 {
				b.WriteByte(' ')
			}
			sep = false
			b.WriteByte(c)
			i++
			for i < len(src) {
				ch := src[i]
				b.WriteByte(ch)
				i++
				if ch == '\\' && i < len(src) {
					b.WriteByte(src[i])
					i++
					continue
				}
				if ch == '"' {
					break
				}
			}
		default:
			if sep && b.Len() > 0 {
				b.WriteByte(' ')
			}
			sep = false
			b.WriteByte(c)
			i++
		}
	}
	// The trailing semicolon, if any, is outside every string literal (those
	// were consumed whole above, and each ends with a quote).
	return strings.TrimSpace(strings.TrimSuffix(b.String(), ";"))
}

// planKey identifies a prepared plan: the normalized query text plus the
// environment epoch its globals snapshot was taken at. A `val` rebinding or
// a reader registration bumps the epoch, so stale plans can never be served
// — they simply stop being found.
type planKey struct {
	query string
	epoch uint64
}

// String renders the key for external keying: the per-plan stats store
// aggregates under exactly the identity the cache serves plans by, so a
// rebound environment (epoch bump) starts a fresh profile.
func (k planKey) String() string {
	return k.query + "@e" + strconv.FormatUint(k.epoch, 10)
}

// plan is one cache entry: the compiled program, its inferred type, and the
// prepare-time observability (phase times, optimizer trace, node counts)
// that /debug/queries reports alongside hits.
type plan struct {
	prog *compile.Program
	typ  *types.Type
	// params maps each $name placeholder to its inferred type; bind-time
	// argument checking unifies submitted values against these. Empty for
	// non-parameterized queries.
	params map[string]*types.Type
	// prepare observability, captured once at prepare time.
	rules       []trace.RuleFiring
	nodesBefore int
	nodesAfter  int
}

// CacheStats is a snapshot of the plan cache's counters.
type CacheStats struct {
	Size          int   `json:"size"`
	Capacity      int   `json:"capacity"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// planCache is an LRU of prepared plans with hit/miss/eviction counters.
// All methods are safe for concurrent use.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[planKey]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry

	hits, misses, evictions, invalidations int64
}

type cacheEntry struct {
	key planKey
	p   *plan
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &planCache{cap: capacity, entries: map[planKey]*list.Element{}, lru: list.New()}
}

// get returns the cached plan for key, counting a hit or miss.
func (c *planCache) get(key planKey) (*plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).p, true
}

// put inserts a plan, evicting the least recently used entry at capacity.
// A concurrent insert of the same key wins-last; both plans are equivalent
// (same query, same epoch), so either is correct.
func (c *planCache) put(key planKey, p *plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).p = p
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, p: p})
	for len(c.entries) > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// invalidateBefore drops every plan prepared under an epoch older than
// epoch, returning how many were dropped. Epoch keying already prevents
// stale plans from being served; this sweep just frees their memory
// eagerly and feeds the invalidation counter.
func (c *planCache) invalidateBefore(epoch uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.key.epoch < epoch {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			n++
		}
		el = next
	}
	c.invalidations += int64(n)
	return n
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:          len(c.entries),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
