package server

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aqldb/aql/internal/exchange"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/typecheck"
	"github.com/aqldb/aql/internal/types"
)

// bindArgs turns the request's exchange-encoded argument map into the typed
// argument frame of one execution of a parameterized plan. Binding is
// strict — the three failure modes below are client errors (400), caught
// before any evaluation work happens:
//
//   - a placeholder the request leaves unbound (kind "request"),
//   - an argument naming no placeholder of the query (kind "request"),
//   - a value whose type does not unify with the placeholder's inferred
//     type (kind "type").
//
// Type checking shares one substitution across all of the call's
// placeholders, so placeholders whose inferred types share a type variable
// (e.g. the two sides of `$a = $b`) must be bound at consistent types.
//
// Known limitation: deferred constraint classes (numeric, orderable) are
// solved at prepare time, not re-checked per bind. In practice the solved
// placeholder types are already concrete wherever those constraints bit
// (unconstrained numeric variables default to nat), so unification still
// rejects the mismatches a user can express.
func bindArgs(p *plan, args map[string]string) (map[string]object.Value, *ErrorInfo) {
	// Deterministic order for error messages and unification.
	names := make([]string, 0, len(p.params))
	for name := range p.params {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		if _, ok := args[name]; !ok {
			return nil, &ErrorInfo{Kind: "request",
				Message: fmt.Sprintf("missing argument for parameter $%s", name)}
		}
	}
	extra := make([]string, 0)
	for name := range args {
		if _, ok := p.params[name]; !ok {
			extra = append(extra, name)
		}
	}
	if len(extra) > 0 {
		sort.Strings(extra)
		return nil, &ErrorInfo{Kind: "request",
			Message: fmt.Sprintf("argument %q does not name a parameter of the query", extra[0])}
	}

	sub := types.Subst{}
	out := make(map[string]object.Value, len(names))
	for _, name := range names {
		v, err := exchange.ReadLimits(strings.NewReader(args[name]),
			exchange.Limits{MaxBytes: maxQueryBody, MaxDepth: valMaxDepth})
		if err != nil {
			return nil, &ErrorInfo{Kind: "request",
				Message: fmt.Sprintf("argument $%s: %v", name, err)}
		}
		at, err := typecheck.TypeOf(v)
		if err != nil {
			return nil, &ErrorInfo{Kind: "type",
				Message: fmt.Sprintf("argument $%s: %v", name, err)}
		}
		want := sub.Apply(p.params[name])
		if err := sub.Unify(want, at); err != nil {
			return nil, &ErrorInfo{Kind: "type",
				Message: fmt.Sprintf("argument $%s: expected %s, got %s", name, want, at)}
		}
		out[name] = v
	}
	return out, nil
}

