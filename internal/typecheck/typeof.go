package typecheck

import (
	"fmt"

	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/types"
)

// TypeOf computes the type of a complex object, for registering vals (data
// read from files, literals) in the global type environment. Empty
// collections get type-variable element types; since globals are treated as
// type schemes, an empty set can later be used at any element type.
//
// Function values carry no type information and must be registered with an
// explicit type (as the paper's RegisterCO does); TypeOf rejects them.
func TypeOf(v object.Value) (*types.Type, error) {
	n := 0
	return typeOf(v, &n)
}

func typeOf(v object.Value, fresh *int) (*types.Type, error) {
	newVar := func() *types.Type {
		*fresh++
		return types.Var(fmt.Sprintf("v%d", *fresh))
	}
	switch v.Kind {
	case object.KBool:
		return types.Bool, nil
	case object.KNat:
		return types.Nat, nil
	case object.KReal:
		return types.Real, nil
	case object.KString:
		return types.String, nil
	case object.KBase:
		return types.Base(v.Base), nil
	case object.KBottom:
		return newVar(), nil
	case object.KTuple:
		elts := make([]*types.Type, len(v.Elems))
		for i, e := range v.Elems {
			t, err := typeOf(e, fresh)
			if err != nil {
				return nil, err
			}
			elts[i] = t
		}
		return types.Tuple(elts...), nil
	case object.KSet, object.KBag:
		elem, err := elemType(v.Elems, fresh)
		if err != nil {
			return nil, err
		}
		if v.Kind == object.KBag {
			return types.Bag(elem), nil
		}
		return types.Set(elem), nil
	case object.KArray:
		if v.IsLazy() {
			// Lazy arrays are numeric NetCDF variables (or spilled copies
			// of them): typed without materializing the cells. Cells are
			// reals, with ⊥ for non-finite values — same element type a
			// materialized read would produce.
			return types.Array(types.Real, len(v.Shape)), nil
		}
		elem, err := elemType(v.Data, fresh)
		if err != nil {
			return nil, err
		}
		return types.Array(elem, len(v.Shape)), nil
	case object.KFunc:
		return nil, fmt.Errorf("typecheck: function values must be registered with an explicit type")
	}
	return nil, fmt.Errorf("typecheck: cannot type %s value", v.Kind)
}

// elemType computes the common type of a collection's elements by unifying
// the types of all of them (elements may disagree in variable positions,
// e.g. a set containing {} and {1}).
func elemType(elems []object.Value, fresh *int) (*types.Type, error) {
	if len(elems) == 0 {
		*fresh++
		return types.Var(fmt.Sprintf("v%d", *fresh)), nil
	}
	s := types.Subst{}
	acc, err := typeOf(elems[0], fresh)
	if err != nil {
		return nil, err
	}
	for _, e := range elems[1:] {
		t, err := typeOf(e, fresh)
		if err != nil {
			return nil, err
		}
		if err := s.Unify(acc, t); err != nil {
			return nil, fmt.Errorf("typecheck: heterogeneous collection: %w", err)
		}
	}
	return s.Apply(acc), nil
}
