package typecheck

import (
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/desugar"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/parser"
	"github.com/aqldb/aql/internal/types"
)

// BuiltinTypes mirrors eval.Builtins for the checker.
func builtinTypes() map[string]*types.Type {
	return map[string]*types.Type{
		"min":    types.MustParse("{'a} -> 'a"),
		"max":    types.MustParse("{'a} -> 'a"),
		"member": types.MustParse("'a * {'a} -> bool"),
		"not":    types.MustParse("bool -> bool"),
		"count":  types.MustParse("{'a} -> nat"),
	}
}

// inferSrc parses, desugars and infers the type of src.
func inferSrc(t *testing.T, src string, globals map[string]*types.Type) (*types.Type, error) {
	t.Helper()
	se, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	core, err := desugar.Expr(se)
	if err != nil {
		t.Fatalf("desugar %q: %v", src, err)
	}
	g := builtinTypes()
	for k, v := range globals {
		g[k] = v
	}
	return Infer(core, g)
}

func wantType(t *testing.T, src, want string, globals map[string]*types.Type) {
	t.Helper()
	got, err := inferSrc(t, src, globals)
	if err != nil {
		t.Fatalf("Infer(%q): %v", src, err)
	}
	if got.String() != want {
		t.Errorf("Infer(%q) = %s, want %s", src, got, want)
	}
}

func wantError(t *testing.T, src, fragment string, globals map[string]*types.Type) {
	t.Helper()
	got, err := inferSrc(t, src, globals)
	if err == nil {
		t.Fatalf("Infer(%q) = %s, want error containing %q", src, got, fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("Infer(%q) error = %q, want fragment %q", src, err, fragment)
	}
}

func TestLiteralTypes(t *testing.T) {
	wantType(t, "42", "nat", nil)
	wantType(t, "85.0", "real", nil)
	wantType(t, `"hello"`, "string", nil)
	wantType(t, "true", "bool", nil)
	wantType(t, "(1, true)", "nat * bool", nil)
	wantType(t, "{1, 2}", "{nat}", nil)
	wantType(t, "{|1|}", "{|nat|}", nil)
	wantType(t, "[[1, 2, 3]]", "[[nat]]", nil)
	wantType(t, "[[2, 2; 1.0, 2.0, 3.0, 4.0]]", "[[real]]_2", nil)
}

func TestFunctionTypes(t *testing.T) {
	wantType(t, `fn \x => x + 1`, "nat -> nat", nil)
	wantType(t, `fn (\a, \b) => a * b + 0.0`, "(real * real) -> real", nil)
	wantType(t, `fn \x => {x}`, "'t1 -> {'t1}", nil)
	wantType(t, `(fn \x => x + 1)!41`, "nat", nil)
}

func TestComprehensionTypes(t *testing.T) {
	wantType(t, `{x + 1 | \x <- gen!10}`, "{nat}", nil)
	wantType(t, `{(x, y) | \x <- gen!2, \y <- gen!3}`, "{nat * nat}", nil)
	wantType(t, `{x | \x <- gen!10, x > 5}`, "{nat}", nil)
}

func TestArrayConstructTypes(t *testing.T) {
	M := types.MustParse("[[real]]_2")
	wantType(t, "dim_2!M", "nat * nat", map[string]*types.Type{"M": M})
	wantType(t, "M[1, 2]", "real", map[string]*types.Type{"M": M})
	wantType(t, "len![[1]]", "nat", nil)
	wantType(t, `index_1!{(1, "a")}`, "[[{string}]]", nil)
	wantType(t, `index_2!{((1, 2), "a")}`, "[[{string}]]_2", nil)
	wantType(t, `summap(fn \i => i)!(gen!5)`, "nat", nil)
	// Tabulation via a surface comprehension is not array syntax; check the
	// core node directly.
	tab := &ast.ArrayTab{
		Head:   &ast.Var{Name: "i"},
		Idx:    []string{"i", "j"},
		Bounds: []ast.Expr{&ast.NatLit{Val: 2}, &ast.NatLit{Val: 3}},
	}
	typ, err := Infer(tab, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ.String() != "[[nat]]_2" {
		t.Errorf("tabulation type = %s", typ)
	}
}

func TestNumericDefaulting(t *testing.T) {
	// x + x with x otherwise unconstrained defaults to nat.
	wantType(t, `fn \x => x + x`, "nat -> nat", nil)
	// But a real literal forces real.
	wantType(t, `fn \x => x + 1.5`, "real -> real", nil)
}

func TestPolymorphicGlobals(t *testing.T) {
	// min is used at two different element types in one query.
	wantType(t, `(min!{1, 2}, min!{"a", "b"})`, "nat * string", nil)
}

func TestSessionMacroType(t *testing.T) {
	// The paper reports: typ days_since_1_1 : nat * nat * nat -> nat.
	months := types.MustParse("[[nat]]")
	src := `fn (\m,\d,\y) =>
	          d + summap(fn \i => months[i])!(gen!m) +
	          if m > 2 and y % 4 = 0 then 1 else 0`
	wantType(t, src, "(nat * nat * nat) -> nat", map[string]*types.Type{"months": months})
}

func TestSessionQueryType(t *testing.T) {
	// The paper reports: typ it : {nat}.
	globals := map[string]*types.Type{
		"T":           types.MustParse("[[real]]_3"),
		"june_sunset": types.MustParse("(real * real * nat) -> nat"),
		"NYlat":       types.Real,
		"NYlon":       types.Real,
	}
	src := `{d | [(\h,_,_):\t] <- T, \d == h/24+1,
	          h > june_sunset!(NYlat, NYlon, d), t > 85.0}`
	wantType(t, src, "{nat}", globals)
}

func TestTypeErrors(t *testing.T) {
	wantError(t, `1 + true`, "cannot unify", nil)
	wantError(t, `if 1 then 2 else 3`, "if condition", nil)
	wantError(t, `if true then 1 else "s"`, "if branches", nil)
	wantError(t, `{1} = {|1|}`, "cannot unify", nil)
	wantError(t, `gen!true`, "gen", nil)
	wantError(t, `nope`, "unknown identifier", nil)
	wantError(t, `(fn \x => x!x)!(fn \x => x)`, "occurs check", nil)
	wantError(t, `min!{fn \x => x} < min!{fn \x => x}`, "orderable", nil)
	wantError(t, `1 + "s" + 2`, "cannot unify", nil)
	wantError(t, `summap(fn \x => "s")!(gen!3)`, "nat or real", nil)
	wantError(t, `[[1]][0, 1]`, "cannot unify", nil)
}

func TestBagTypes(t *testing.T) {
	wantType(t, `{| x | \x <- {|1, 2|} |}`, "{|nat|}", nil)
	wantError(t, `{| x | \x <- {1, 2} |}`, "cannot unify", nil)
}

func TestRankUnionType(t *testing.T) {
	e := &ast.RankUnion{
		Head:    &ast.Singleton{Elem: &ast.Tuple{Elems: []ast.Expr{&ast.Var{Name: "x"}, &ast.Var{Name: "i"}}}},
		Var:     "x",
		RankVar: "i",
		Over:    &ast.Gen{N: &ast.NatLit{Val: 5}},
	}
	typ, err := Infer(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ.String() != "{nat * nat}" {
		t.Errorf("rank type = %s", typ)
	}
}

func TestTypeOf(t *testing.T) {
	tests := []struct {
		v    object.Value
		want string
	}{
		{object.Nat(1), "nat"},
		{object.Real(1), "real"},
		{object.True, "bool"},
		{object.String_("s"), "string"},
		{object.Tuple(object.Nat(1), object.Real(2)), "nat * real"},
		{object.Set(object.Nat(1)), "{nat}"},
		{object.Bag(object.Nat(1)), "{|nat|}"},
		{object.NatVector(1, 2), "[[nat]]"},
		{object.MustArray([]int{1, 1}, []object.Value{object.Real(0)}), "[[real]]_2"},
		{object.Base("temp", "x"), "temp"},
	}
	for _, tt := range tests {
		got, err := TypeOf(tt.v)
		if err != nil {
			t.Fatalf("TypeOf(%s): %v", tt.v, err)
		}
		if got.String() != tt.want {
			t.Errorf("TypeOf(%s) = %s, want %s", tt.v, got, tt.want)
		}
	}
}

func TestTypeOfEmptyAndNested(t *testing.T) {
	got, err := TypeOf(object.EmptySet)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != types.KindSet || got.Elem().Kind != types.KindVar {
		t.Errorf("TypeOf({}) = %s, want a set of a type variable", got)
	}
	// {{}, {1}} unifies element types to {nat}.
	v := object.Set(object.EmptySet, object.Set(object.Nat(1)))
	got, err = TypeOf(v)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "{{nat}}" {
		t.Errorf("TypeOf({{},{1}}) = %s", got)
	}
	// Heterogeneous collections are rejected.
	if _, err := TypeOf(object.Set(object.Nat(1), object.True)); err == nil {
		t.Error("heterogeneous set should be rejected")
	}
	// Functions need explicit types.
	if _, err := TypeOf(object.Func(func(v object.Value) (object.Value, error) { return v, nil })); err == nil {
		t.Error("function values should be rejected")
	}
}

func TestEmptySetUsableAtAnyType(t *testing.T) {
	// An empty-set global can appear where {nat} is needed.
	empty, err := TypeOf(object.EmptySet)
	if err != nil {
		t.Fatal(err)
	}
	wantType(t, `count!(E union {1})`, "nat", map[string]*types.Type{"E": empty})
}

func TestMoreErrorPaths(t *testing.T) {
	wantError(t, `{1} union {|1|}`, "cannot unify", nil)
	wantError(t, `get!5`, "get", nil)
	wantError(t, `pi_1_2!5`, "projection", nil)
	wantError(t, `dim_2![[1, 2]]`, "dim_2", nil)
	wantError(t, `index_1!{1}`, "index_1", nil)
	wantError(t, `[[1, "a"]]`, "element", nil)
	wantError(t, `[[true; 1]]`, "dimension", nil)
	wantError(t, `{x | \x <- 5}`, "big union", nil)
	wantError(t, `summap(fn \x => x)!5`, "sum source", nil)
	wantError(t, `{| 1 | \x <- {|2|} |} union {1}`, "cannot unify", nil)
}

func TestSubscriptArityFromIndexTuple(t *testing.T) {
	// The array's type is unknown (lambda parameter); the tuple pins k.
	typ, err := inferSrc(t, `fn \M => M[1, 2, 3]`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ.String() != "[['t2]]_3 -> 't2" && typ.String()[:2] != "[[" {
		t.Errorf("type = %s", typ)
	}
	// A non-nat component in the index is rejected.
	wantError(t, `fn \M => M[1, true]`, "must be nat", nil)
}

func TestBottomTypesAsAnything(t *testing.T) {
	wantType(t, `if true then 1 else _|_`, "nat", nil)
	wantType(t, `_|_ union {1}`, "{nat}", nil)
}
