// Package typecheck implements the type system of NRCA (figure 1 of the
// paper) as a unification-based inference pass over the core calculus.
//
// The paper's calculus is simply typed, but the surface language omits
// annotations: lambda parameters, empty literals and ⊥ get their types by
// inference. Registered globals (external primitives, macros, vals) act as
// type schemes — any type variables in their declared types are freshened at
// each use, which gives the derived operators their natural polymorphism
// (min : {'a} -> 'a and so on) without a full Hindley–Milner let rule.
//
// Arithmetic is overloaded at nat and real: operand types are unified and
// constrained to be numeric; unconstrained numeric variables default to nat,
// matching the paper's presentation where ℕ is the numeric type.
package typecheck

import (
	"fmt"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/types"
)

// Checker carries inference state. A Checker is single-use: create one per
// query with New, call Infer once, then read the solved type.
type Checker struct {
	subst   types.Subst
	fresh   int
	globals map[string]*types.Type
	numeric []*types.Type // types constrained to be nat or real
	ordered []*types.Type // types constrained to be orderable (no functions)
	params  map[string]*types.Type // $name placeholders, typed once per name
}

// New returns a checker that resolves free variables against the given
// global type environment.
func New(globals map[string]*types.Type) *Checker {
	if globals == nil {
		globals = map[string]*types.Type{}
	}
	return &Checker{subst: types.Subst{}, globals: globals}
}

// Infer computes the type of a closed-except-globals expression, solving
// all constraints. The returned type may still contain type variables if
// the query is polymorphic (e.g. the bare empty set).
func Infer(e ast.Expr, globals map[string]*types.Type) (*types.Type, error) {
	c := New(globals)
	t, err := c.infer(e, nil)
	if err != nil {
		return nil, err
	}
	if err := c.solve(); err != nil {
		return nil, err
	}
	return c.subst.Apply(t), nil
}

// InferParams is Infer for parameterized queries: alongside the query type it
// returns the solved type of every $name placeholder. A placeholder gets one
// type variable on first occurrence and reuses it on repeats, so a single
// $name used at two incompatible types is a prepare-time error, not a
// bind-time one.
func InferParams(e ast.Expr, globals map[string]*types.Type) (*types.Type, map[string]*types.Type, error) {
	c := New(globals)
	t, err := c.infer(e, nil)
	if err != nil {
		return nil, nil, err
	}
	if err := c.solve(); err != nil {
		return nil, nil, err
	}
	params := make(map[string]*types.Type, len(c.params))
	for name, pt := range c.params {
		params[name] = c.subst.Apply(pt)
	}
	return c.subst.Apply(t), params, nil
}

// tenv is the local type environment (lambda and comprehension binders).
type tenv struct {
	name string
	typ  *types.Type
	next *tenv
}

func (e *tenv) bind(name string, t *types.Type) *tenv {
	return &tenv{name: name, typ: t, next: e}
}

func (e *tenv) lookup(name string) (*types.Type, bool) {
	for ; e != nil; e = e.next {
		if e.name == name {
			return e.typ, true
		}
	}
	return nil, false
}

func (c *Checker) newVar() *types.Type {
	c.fresh++
	return types.Var(fmt.Sprintf("t%d", c.fresh))
}

// freshen renames every type variable in a global's declared type, so the
// global behaves as a type scheme.
func (c *Checker) freshen(t *types.Type) *types.Type {
	vars := map[string]bool{}
	t.FreeVars(vars)
	if len(vars) == 0 {
		return t
	}
	ren := types.Subst{}
	for v := range vars {
		ren[v] = c.newVar()
	}
	return ren.Apply(t)
}

func (c *Checker) unify(a, b *types.Type, what string) error {
	if err := c.subst.Unify(a, b); err != nil {
		return fmt.Errorf("typecheck: %s: %w", what, err)
	}
	return nil
}

// solve applies the deferred constraints: numeric types must be nat or real
// (unbound variables default to nat); ordered types must not contain
// function types.
func (c *Checker) solve() error {
	for _, t := range c.numeric {
		r := c.subst.Apply(t)
		switch r.Kind {
		case types.KindNat, types.KindReal:
		case types.KindVar:
			c.subst[r.Name] = types.Nat
		default:
			return fmt.Errorf("typecheck: arithmetic requires nat or real, got %s", r)
		}
	}
	for _, t := range c.ordered {
		r := c.subst.Apply(t)
		if !r.IsObject() {
			return fmt.Errorf("typecheck: comparison requires an orderable object type, got %s", r)
		}
	}
	return nil
}

func (c *Checker) infer(e ast.Expr, env *tenv) (*types.Type, error) {
	switch n := e.(type) {
	case *ast.Var:
		if t, ok := env.lookup(n.Name); ok {
			return t, nil
		}
		if t, ok := c.globals[n.Name]; ok {
			return c.freshen(t), nil
		}
		return nil, fmt.Errorf("typecheck: unknown identifier %q", n.Name)

	case *ast.Param:
		if t, ok := c.params[n.Name]; ok {
			return t, nil
		}
		if c.params == nil {
			c.params = map[string]*types.Type{}
		}
		t := c.newVar()
		c.params[n.Name] = t
		return t, nil

	case *ast.Lam:
		a := c.newVar()
		body, err := c.infer(n.Body, env.bind(n.Param, a))
		if err != nil {
			return nil, err
		}
		return types.Func(a, body), nil

	case *ast.App:
		f, err := c.infer(n.Fn, env)
		if err != nil {
			return nil, err
		}
		a, err := c.infer(n.Arg, env)
		if err != nil {
			return nil, err
		}
		r := c.newVar()
		if err := c.unify(f, types.Func(a, r), "application"); err != nil {
			return nil, err
		}
		return r, nil

	case *ast.Tuple:
		elts := make([]*types.Type, len(n.Elems))
		for i, x := range n.Elems {
			t, err := c.infer(x, env)
			if err != nil {
				return nil, err
			}
			elts[i] = t
		}
		return types.Tuple(elts...), nil

	case *ast.Proj:
		t, err := c.infer(n.Tuple, env)
		if err != nil {
			return nil, err
		}
		elts := make([]*types.Type, n.K)
		for i := range elts {
			elts[i] = c.newVar()
		}
		if err := c.unify(t, types.Tuple(elts...), fmt.Sprintf("projection pi_%d,%d", n.I, n.K)); err != nil {
			return nil, err
		}
		return elts[n.I-1], nil

	case *ast.EmptySet:
		return types.Set(c.newVar()), nil

	case *ast.Singleton:
		t, err := c.infer(n.Elem, env)
		if err != nil {
			return nil, err
		}
		return types.Set(t), nil

	case *ast.Union:
		l, err := c.infer(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := c.infer(n.R, env)
		if err != nil {
			return nil, err
		}
		if err := c.unify(l, r, "union"); err != nil {
			return nil, err
		}
		if err := c.unify(l, types.Set(c.newVar()), "union"); err != nil {
			return nil, err
		}
		return l, nil

	case *ast.BigUnion:
		over, err := c.infer(n.Over, env)
		if err != nil {
			return nil, err
		}
		a := c.newVar()
		if err := c.unify(over, types.Set(a), "big union source"); err != nil {
			return nil, err
		}
		head, err := c.infer(n.Head, env.bind(n.Var, a))
		if err != nil {
			return nil, err
		}
		if err := c.unify(head, types.Set(c.newVar()), "big union body"); err != nil {
			return nil, err
		}
		return head, nil

	case *ast.Get:
		t, err := c.infer(n.Set, env)
		if err != nil {
			return nil, err
		}
		a := c.newVar()
		if err := c.unify(t, types.Set(a), "get"); err != nil {
			return nil, err
		}
		return a, nil

	case *ast.BoolLit:
		return types.Bool, nil

	case *ast.If:
		cond, err := c.infer(n.Cond, env)
		if err != nil {
			return nil, err
		}
		if err := c.unify(cond, types.Bool, "if condition"); err != nil {
			return nil, err
		}
		th, err := c.infer(n.Then, env)
		if err != nil {
			return nil, err
		}
		el, err := c.infer(n.Else, env)
		if err != nil {
			return nil, err
		}
		if err := c.unify(th, el, "if branches"); err != nil {
			return nil, err
		}
		return th, nil

	case *ast.Cmp:
		l, err := c.infer(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := c.infer(n.R, env)
		if err != nil {
			return nil, err
		}
		if err := c.unify(l, r, fmt.Sprintf("comparison %s", n.Op)); err != nil {
			return nil, err
		}
		c.ordered = append(c.ordered, l)
		return types.Bool, nil

	case *ast.NatLit:
		return types.Nat, nil
	case *ast.RealLit:
		return types.Real, nil
	case *ast.StringLit:
		return types.String, nil

	case *ast.Arith:
		l, err := c.infer(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := c.infer(n.R, env)
		if err != nil {
			return nil, err
		}
		if err := c.unify(l, r, fmt.Sprintf("arithmetic %s", n.Op)); err != nil {
			return nil, err
		}
		c.numeric = append(c.numeric, l)
		return l, nil

	case *ast.Gen:
		t, err := c.infer(n.N, env)
		if err != nil {
			return nil, err
		}
		if err := c.unify(t, types.Nat, "gen"); err != nil {
			return nil, err
		}
		return types.Set(types.Nat), nil

	case *ast.Sum:
		over, err := c.infer(n.Over, env)
		if err != nil {
			return nil, err
		}
		a := c.newVar()
		if err := c.unify(over, types.Set(a), "sum source"); err != nil {
			return nil, err
		}
		head, err := c.infer(n.Head, env.bind(n.Var, a))
		if err != nil {
			return nil, err
		}
		c.numeric = append(c.numeric, head)
		return head, nil

	case *ast.ArrayTab:
		e2 := env
		for _, iv := range n.Idx {
			e2 = e2.bind(iv, types.Nat)
		}
		for j, b := range n.Bounds {
			t, err := c.infer(b, env)
			if err != nil {
				return nil, err
			}
			if err := c.unify(t, types.Nat, fmt.Sprintf("tabulation bound %d", j+1)); err != nil {
				return nil, err
			}
		}
		head, err := c.infer(n.Head, e2)
		if err != nil {
			return nil, err
		}
		return types.Array(head, len(n.Idx)), nil

	case *ast.Subscript:
		arrT, err := c.infer(n.Arr, env)
		if err != nil {
			return nil, err
		}
		idxT, err := c.infer(n.Index, env)
		if err != nil {
			return nil, err
		}
		k, err := c.subscriptArity(arrT, idxT)
		if err != nil {
			return nil, err
		}
		a := c.newVar()
		if err := c.unify(arrT, types.Array(a, k), "subscript array"); err != nil {
			return nil, err
		}
		if err := c.unify(idxT, types.NatTuple(k), "subscript index"); err != nil {
			return nil, err
		}
		return a, nil

	case *ast.Dim:
		t, err := c.infer(n.Arr, env)
		if err != nil {
			return nil, err
		}
		if err := c.unify(t, types.Array(c.newVar(), n.K), fmt.Sprintf("dim_%d", n.K)); err != nil {
			return nil, err
		}
		return types.NatTuple(n.K), nil

	case *ast.Index:
		t, err := c.infer(n.Set, env)
		if err != nil {
			return nil, err
		}
		a := c.newVar()
		want := types.Set(types.Tuple(types.NatTuple(n.K), a))
		if err := c.unify(t, want, fmt.Sprintf("index_%d", n.K)); err != nil {
			return nil, err
		}
		return types.Array(types.Set(a), n.K), nil

	case *ast.MkArray:
		for j, d := range n.Dims {
			t, err := c.infer(d, env)
			if err != nil {
				return nil, err
			}
			if err := c.unify(t, types.Nat, fmt.Sprintf("array literal dimension %d", j+1)); err != nil {
				return nil, err
			}
		}
		a := c.newVar()
		for i, x := range n.Elems {
			t, err := c.infer(x, env)
			if err != nil {
				return nil, err
			}
			if err := c.unify(t, a, fmt.Sprintf("array literal element %d", i)); err != nil {
				return nil, err
			}
		}
		return types.Array(a, len(n.Dims)), nil

	case *ast.Bottom:
		return c.newVar(), nil

	case *ast.EmptyBag:
		return types.Bag(c.newVar()), nil

	case *ast.SingletonBag:
		t, err := c.infer(n.Elem, env)
		if err != nil {
			return nil, err
		}
		return types.Bag(t), nil

	case *ast.BagUnion:
		l, err := c.infer(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := c.infer(n.R, env)
		if err != nil {
			return nil, err
		}
		if err := c.unify(l, r, "bag union"); err != nil {
			return nil, err
		}
		if err := c.unify(l, types.Bag(c.newVar()), "bag union"); err != nil {
			return nil, err
		}
		return l, nil

	case *ast.BigBagUnion:
		over, err := c.infer(n.Over, env)
		if err != nil {
			return nil, err
		}
		a := c.newVar()
		if err := c.unify(over, types.Bag(a), "big bag union source"); err != nil {
			return nil, err
		}
		head, err := c.infer(n.Head, env.bind(n.Var, a))
		if err != nil {
			return nil, err
		}
		if err := c.unify(head, types.Bag(c.newVar()), "big bag union body"); err != nil {
			return nil, err
		}
		return head, nil

	case *ast.RankUnion:
		return c.rank(n.Over, n.Var, n.RankVar, n.Head, env, false)

	case *ast.RankBagUnion:
		return c.rank(n.Over, n.Var, n.RankVar, n.Head, env, true)
	}
	return nil, fmt.Errorf("typecheck: unhandled node %s", ast.NodeName(e))
}

func (c *Checker) rank(over ast.Expr, varName, rankVar string, head ast.Expr, env *tenv, bag bool) (*types.Type, error) {
	ot, err := c.infer(over, env)
	if err != nil {
		return nil, err
	}
	a := c.newVar()
	coll := types.Set
	if bag {
		coll = types.Bag
	}
	if err := c.unify(ot, coll(a), "ranked union source"); err != nil {
		return nil, err
	}
	ht, err := c.infer(head, env.bind(varName, a).bind(rankVar, types.Nat))
	if err != nil {
		return nil, err
	}
	if err := c.unify(ht, coll(c.newVar()), "ranked union body"); err != nil {
		return nil, err
	}
	return ht, nil
}

// subscriptArity determines the dimensionality of a subscript from whatever
// is known about the array or index type. The paper writes e[e1,...,ek]
// with k syntactically evident; after desugaring, k is recovered from the
// solved types.
func (c *Checker) subscriptArity(arrT, idxT *types.Type) (int, error) {
	if r := c.subst.Apply(arrT); r.Kind == types.KindArray {
		return r.Dims, nil
	}
	switch r := c.subst.Apply(idxT); r.Kind {
	case types.KindNat:
		return 1, nil
	case types.KindTuple:
		for _, e := range r.Elts {
			if c.subst.Apply(e).Kind != types.KindNat && c.subst.Apply(e).Kind != types.KindVar {
				return 0, fmt.Errorf("typecheck: subscript index components must be nat, got %s", r)
			}
		}
		return len(r.Elts), nil
	case types.KindVar:
		// Neither side pins the dimensionality; default to 1, the common
		// case, and let unification reject if it is wrong.
		return 1, nil
	default:
		return 0, fmt.Errorf("typecheck: subscript index must be nat or a tuple of nats, got %s", r)
	}
}
