// Package cluster implements fault-tolerant scatter-gather execution of
// parallel-eligible tabulations: a coordinator partitions the element space
// of a range-partitionable prepared plan (compile.Program.Rangeable) into
// contiguous row-major shards, ships each to worker aqld processes over the
// HTTP/JSON + exchange transport, and merges values, counters and spans
// back into exactly the single-node result.
//
// The merge contract is inherited from the engine's parallel tabulation
// kernel and makes every robustness mechanism safe by construction:
//
//   - Shards are disjoint contiguous ranges and elements are pure in the
//     index valuation, so re-executing a shard — a retry after a failure, a
//     hedge racing a straggler — recomputes identical values and identical
//     counters. The coordinator takes counters from exactly one winning
//     attempt per shard; merged totals equal single-node totals no matter
//     how many attempts failed, raced or were abandoned.
//   - A ⊥ element poisons the whole tabulation; the first ⊥ in row-major
//     order wins. Workers report (offset, diagnostic) of their shard's
//     first ⊥ and the coordinator takes the minimum offset.
//   - Deterministic evaluation errors carry their row-major offset; the
//     lowest offset across shards is the error a serial scan hits first.
//     Resource errors (cancellation, budget trips at the coordinator)
//     abort the scatter.
//
// Failure handling: per-shard deadlines with capped exponential backoff
// retry, hedged re-dispatch of stragglers (first response wins, loser
// cancelled), per-worker circuit breakers with health-probe re-admission,
// and graceful degradation — shards whose attempts are exhausted (or that
// find no admissible worker) run locally; a query whose every shard ran
// locally is annotated "degraded:local".
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aqldb/aql/internal/compile"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/exchange"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/trace"
)

// Config configures a Coordinator. The zero value of each field selects
// the documented default.
type Config struct {
	// Workers are the base URLs of worker aqld processes.
	Workers []string
	// Transport ships shards; nil means HTTPTransport.
	Transport Transport
	// MinCells is the smallest element space worth scattering; below it the
	// query runs locally. Default 4096.
	MinCells int64
	// ShardsPerWorker sets the shard count as len(Workers)*ShardsPerWorker
	// (capped at the element count); >1 smooths load imbalance and shrinks
	// the retry unit. Default 2.
	ShardsPerWorker int
	// MaxAttempts caps remote dispatches per shard (retries and hedges each
	// consume one) before the shard falls back to local execution.
	// Default 4.
	MaxAttempts int
	// BaseBackoff and MaxBackoff bound the capped exponential backoff
	// between a shard's attempts. Defaults 25ms and 1s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeAfter launches a second dispatch of a shard on another worker
	// when the first has not answered within this duration; the first
	// complete response wins and the loser is cancelled. 0 disables
	// hedging.
	HedgeAfter time.Duration
	// ShardTimeout bounds each dispatch attempt; 0 means no per-attempt
	// deadline (the query context still applies).
	ShardTimeout time.Duration
	// BreakerThreshold consecutive dispatch failures open a worker's
	// circuit breaker; BreakerCooldown later a single health probe may
	// re-admit it. Defaults 3 and 2s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.Transport == nil {
		cfg.Transport = &HTTPTransport{}
	}
	if cfg.MinCells == 0 {
		cfg.MinCells = 4096
	}
	if cfg.ShardsPerWorker <= 0 {
		cfg.ShardsPerWorker = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	return cfg
}

// probeTimeout bounds a circuit breaker's half-open health probe.
const probeTimeout = time.Second

// Coordinator scatters range-partitionable programs across workers. Safe
// for concurrent Execute calls.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	breakers map[string]*breaker
	next     int // round-robin cursor over cfg.Workers

	stats Stats
	// shardLatency is the shard round-trip (first dispatch to winning
	// response) distribution, with trace-id exemplars; exported on /metrics
	// as aqld_cluster_shard_seconds.
	shardLatency trace.ExemplarHistogram
}

// New returns a Coordinator over cfg.Workers.
func New(cfg Config) *Coordinator {
	return &Coordinator{cfg: cfg.withDefaults(), breakers: map[string]*breaker{}}
}

// Workers returns the configured worker URLs.
func (c *Coordinator) Workers() []string { return c.cfg.Workers }

// Stats are the coordinator's cumulative dispatch counters, exported on
// /metrics as aqld_cluster_*.
type Stats struct {
	Queries       atomic.Int64 // scatter-gather executions (local-mode short-circuits excluded)
	Shards        atomic.Int64 // shards planned
	RemoteShards  atomic.Int64 // shards answered by a worker
	LocalShards   atomic.Int64 // shards that fell back to local execution
	Retries       atomic.Int64 // re-dispatches after a failed attempt
	Hedges        atomic.Int64 // hedge dispatches launched
	HedgeWins     atomic.Int64 // hedges whose response won
	BreakerOpens  atomic.Int64 // breaker open transitions
	BreakerCloses atomic.Int64 // successful probe re-admissions
	DegradedTotal atomic.Int64 // queries answered entirely locally after failures
}

// Stats returns a pointer to the live counters (read with .Load()).
func (c *Coordinator) Stats() *Stats { return &c.stats }

// ShardLatency returns a snapshot of the shard round-trip histogram.
func (c *Coordinator) ShardLatency() trace.HistogramSnapshot { return c.shardLatency.Snapshot() }

// Result is one coordinator execution.
type Result struct {
	Value    object.Value
	Counters eval.Counters
	// Mode is "distributed" (every shard remote), "distributed:partial"
	// (some shards local), "degraded:local" (every shard local, after
	// failures) or "local" (not scattered: below MinCells, no workers
	// configured, or a ⊥ bound).
	Mode string
	// Shards holds one dispatch record per shard, in shard order; nil in
	// local mode.
	Shards []trace.ShardSpan
	// Spans is the stitched whole-query span tree of a scattered execution:
	// a "scatter" root over the plan prologue and one "shard" subtree per
	// shard, each holding its dispatch attempts with the winning attempt
	// carrying the worker's own span tree. Nil in local mode. Summing self
	// counters over the tree reproduces Counters exactly (trace.CheckStitched
	// verifies).
	Spans *trace.SpanNode
}

// shardOutcome is one shard's terminal state.
type shardOutcome struct {
	span      trace.ShardSpan
	values    []object.Value
	bottomOff int64
	bottom    object.Value
	counters  eval.Counters
	err       error // deterministic failure; resource failures go through abort()
	errOff    int64 // row-major offset of err, or MaxInt64 when unpositioned
}

// Execute runs prog — whose normalized source is query, as workers must
// re-prepare it — under the scatter-gather envelope. The result is
// byte-identical to prog.Execute with exactly-equal counters whenever
// execution succeeds, whatever failures were survived along the way.
func (c *Coordinator) Execute(ctx context.Context, prog *compile.Program, query string, opts compile.ExecOpts) (*Result, error) {
	return c.ExecuteTraced(ctx, prog, query, opts, trace.TraceContext{})
}

// ExecuteTraced is Execute under a distributed trace context: the trace id
// is propagated on every shard dispatch (body fields and traceparent
// header), worker span subtrees are stitched into Result.Spans, and shard
// round-trips land in the exemplar histogram linked to tc.TraceID. A zero
// tc disables propagation but still builds the stitched tree.
func (c *Coordinator) ExecuteTraced(ctx context.Context, prog *compile.Program, query string, opts compile.ExecOpts, tc trace.TraceContext) (*Result, error) {
	if !prog.Rangeable() {
		return nil, fmt.Errorf("cluster: program is not range-partitionable")
	}
	t0 := time.Now()
	plan, err := prog.PlanShards(ctx, opts)
	if err != nil {
		return nil, err
	}
	planWall := time.Since(t0)
	if plan.Bottom.IsBottom() {
		// A ⊥ bound decides the query during planning; nothing to scatter.
		return &Result{Value: plan.Bottom, Counters: plan.Counters, Mode: "local"}, nil
	}
	if plan.Size < c.cfg.MinCells || len(c.cfg.Workers) == 0 {
		v, cnt, err := prog.Execute(ctx, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Value: v, Counters: cnt, Mode: "local"}, nil
	}

	// A parameterized execution's argument frame is identical for every
	// shard (elements are pure in the index valuation AND the frame), so it
	// is encoded exactly once and shipped verbatim on each dispatch.
	encArgs, err := encodeArgs(opts.Args)
	if err != nil {
		return nil, err
	}

	c.stats.Queries.Add(1)
	nshards := len(c.cfg.Workers) * c.cfg.ShardsPerWorker
	if int64(nshards) > plan.Size {
		nshards = int(plan.Size)
	}
	c.stats.Shards.Add(int64(nshards))

	// The scatter context lets a resource failure in any shard abort the
	// rest promptly; the first such error is the query's error (siblings'
	// induced cancellations are ignored), mirroring the in-process parallel
	// kernel's failed-flag protocol.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var abortOnce sync.Once
	var abortErr error
	abort := func(err error) {
		abortOnce.Do(func() {
			abortErr = err
			cancel()
		})
	}

	outs := make([]shardOutcome, nshards)
	var wg sync.WaitGroup
	base, rem := plan.Size/int64(nshards), plan.Size%int64(nshards)
	off := int64(0)
	for i := 0; i < nshards; i++ {
		length := base
		if int64(i) < rem {
			length++
		}
		start, end := off, off+length
		off = end
		wg.Add(1)
		go func(i int, start, end int64) {
			defer wg.Done()
			outs[i] = c.runShard(sctx, abort, prog, query, opts, encArgs, plan.Shape, i, start, end, tc)
		}(i, start, end)
	}
	wg.Wait()
	if abortErr != nil {
		return nil, abortErr
	}

	// Merge. Deterministic errors first: the lowest offset is the error a
	// serial scan hits first (⊥s never stop the scan, so an error wins over
	// any ⊥ regardless of their relative offsets).
	var firstErr error
	firstErrOff := int64(math.MaxInt64)
	for i := range outs {
		if outs[i].err != nil && (firstErr == nil || outs[i].errOff < firstErrOff) {
			firstErr, firstErrOff = outs[i].err, outs[i].errOff
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	merged := plan.Counters
	spans := make([]trace.ShardSpan, nshards)
	remote, local := 0, 0
	bottomOff := int64(-1)
	var bottom object.Value
	data := make([]object.Value, plan.Size)
	for i := range outs {
		o := &outs[i]
		spans[i] = o.span
		if o.span.Worker == "local" {
			local++
		} else {
			remote++
		}
		merged.Steps += o.counters.Steps
		merged.Cells += o.counters.Cells
		merged.Tabs += o.counters.Tabs
		merged.SetOps += o.counters.SetOps
		merged.Iters += o.counters.Iters
		if o.bottomOff >= 0 && (bottomOff < 0 || o.bottomOff < bottomOff) {
			bottomOff, bottom = o.bottomOff, o.bottom
		}
		if o.values != nil {
			copy(data[o.span.Start:o.span.End], o.values)
		}
	}
	mode := "distributed"
	switch {
	case local > 0 && remote > 0:
		mode = "distributed:partial"
	case local > 0 && remote == 0:
		mode = "degraded:local"
		c.stats.DegradedTotal.Add(1)
	}
	res := &Result{Counters: merged, Mode: mode, Shards: spans}
	if bottomOff >= 0 {
		res.Value = bottom
	} else {
		res.Value = object.Value{Kind: object.KArray, Shape: plan.Shape, Data: data}
	}

	// Stitch the whole-query span tree: scatter root over the plan prologue
	// and every shard subtree. Only the plan node and each shard's winning
	// attempt carry counters, so summing self counters over the tree
	// reproduces the merged totals exactly.
	root := trace.NewSpan(trace.SpanScatter, "coordinator", time.Since(t0))
	planSpan := trace.NewSpan(trace.SpanPlan, "coordinator", planWall)
	planSpan.SetCounters(toTraceCounters(plan.Counters)).FinalizeSelf()
	root.Children = append(root.Children, planSpan)
	for i := range spans {
		if spans[i].Spans != nil {
			root.Children = append(root.Children, spans[i].Spans)
		}
	}
	res.Spans = root.FinalizeSelf()
	return res, nil
}

// toTraceCounters converts engine counters to the trace mirror.
func toTraceCounters(c eval.Counters) trace.EvalCounters {
	return trace.EvalCounters{Steps: c.Steps, Cells: c.Cells, Tabulations: c.Tabs,
		SetOps: c.SetOps, Iterations: c.Iters}
}

// encodeArgs renders a parameterized execution's argument frame in the
// exchange text format for the shard wire envelope. Frames originate from
// decoded wire values or validated API bindings, so encoding failures are
// internal errors, not user errors.
func encodeArgs(args map[string]object.Value) (map[string]string, error) {
	if len(args) == 0 {
		return nil, nil
	}
	enc := make(map[string]string, len(args))
	for name, v := range args {
		text, err := exchange.WriteString(v)
		if err != nil {
			return nil, fmt.Errorf("cluster: encoding argument $%s: %w", name, err)
		}
		enc[name] = text
	}
	return enc, nil
}

// runShard drives one shard to a terminal outcome: remote attempts with
// backoff, hedging and breaker bookkeeping, then local fallback. Every
// dispatch attempt leaves an AttemptSpan on the shard's dispatch record,
// and the winning execution's span subtree is stitched under its attempt.
func (c *Coordinator) runShard(ctx context.Context, abort func(error), prog *compile.Program, query string, opts compile.ExecOpts, encArgs map[string]string, shape []int, shard int, start, end int64, tc trace.TraceContext) shardOutcome {
	t0 := time.Now()
	out := shardOutcome{bottomOff: -1, errOff: math.MaxInt64}
	out.span = trace.ShardSpan{Shard: shard, Start: start, End: end}
	req := exchange.ShardRequest{
		Query: query, Shape: shape, Start: start, End: end,
		Shard: shard, MaxSteps: opts.MaxSteps, Args: encArgs,
	}
	if opts.Limits.Timeout > 0 {
		req.TimeoutMS = opts.Limits.Timeout.Milliseconds()
	}

	attempt := 0
	backoff := c.cfg.BaseBackoff
	for attempt < c.cfg.MaxAttempts {
		if ctx.Err() != nil {
			abort(resourceCancelled(ctx))
			return out
		}
		worker, ok := c.pickWorker(ctx, "")
		if !ok {
			break // every worker circuit-open: degrade this shard
		}
		resp, winner, hedged, derr := c.dispatch(ctx, worker, &req, &attempt, t0, &out.span, tc)
		out.span.Hedged = out.span.Hedged || hedged
		if derr == nil {
			values, bottomOff, bottom, counters, perr := decodeShard(resp, start, end)
			if perr == nil {
				c.breakerFor(winner).onSuccess()
				out.values, out.bottomOff, out.bottom, out.counters = values, bottomOff, bottom, counters
				out.span.Worker, out.span.Attempts, out.span.Wall = winner, attempt, time.Since(t0)
				out.span.QueueWait = time.Duration(resp.QueueWaitNS)
				out.span.Spans = stitchShard(&out.span, workerSubtree(resp, winner, toTraceCounters(counters)))
				c.stats.RemoteShards.Add(1)
				c.shardLatency.Observe(out.span.Wall, tc.TraceID, time.Now())
				return out
			}
			// A response that doesn't decode to the requested range is a
			// transport failure of the winning worker: retry. Its attempt
			// span loses the "won" it was marked with on response receipt.
			derr = perr
			c.recordFailure(winner)
			demoteWonAttempt(&out.span, perr.Error())
		}
		if ctx.Err() != nil {
			abort(resourceCancelled(ctx))
			return out
		}
		if se, ok := derr.(*ShardError); ok && !se.Retryable() {
			// Deterministic on any worker; propagate with its offset.
			out.err = se
			if se.Off >= 0 {
				out.errOff = se.Off
			}
			out.span.Worker, out.span.Attempts, out.span.Wall = winner, attempt, time.Since(t0)
			return out
		}
		if attempt < c.cfg.MaxAttempts {
			c.stats.Retries.Add(1)
			if !sleepCtx(ctx, backoff) {
				abort(resourceCancelled(ctx))
				return out
			}
			backoff *= 2
			if backoff > c.cfg.MaxBackoff {
				backoff = c.cfg.MaxBackoff
			}
		}
	}

	// Remote attempts exhausted (or no admissible worker): run the range
	// in-process. Values and counters are identical by the purity argument,
	// so degradation changes availability, never answers.
	c.stats.LocalShards.Add(1)
	lt0 := time.Now()
	res, err := prog.ExecuteRange(ctx, opts, shape, start, end)
	out.span.Worker, out.span.Attempts, out.span.Wall = "local", attempt, time.Since(t0)
	if err != nil {
		var re *eval.ResourceError
		if errors.As(err, &re) || ctx.Err() != nil {
			abort(err)
			return out
		}
		out.err = err
		var rerr *compile.RangeError
		if errors.As(err, &rerr) {
			out.errOff = rerr.Off
		}
		return out
	}
	out.values, out.bottomOff, out.bottom, out.counters = res.Values, res.BottomOff, res.Bottom, res.Counters
	lwall := time.Since(lt0)
	out.span.AttemptSpans = append(out.span.AttemptSpans, trace.AttemptSpan{
		Attempt: attempt, Worker: "local", Outcome: "won",
		StartOff: lt0.Sub(t0), Wall: lwall,
	})
	local := trace.NewSpan(trace.SpanEval, "local", lwall)
	local.SetCounters(toTraceCounters(out.counters)).FinalizeSelf()
	out.span.Spans = stitchShard(&out.span, local)
	c.shardLatency.Observe(out.span.Wall, tc.TraceID, time.Now())
	return out
}

// demoteWonAttempt flips the shard's most recent "won" attempt span to
// "lost" (a winning response that failed to decode is a transport failure).
func demoteWonAttempt(span *trace.ShardSpan, errText string) {
	for i := len(span.AttemptSpans) - 1; i >= 0; i-- {
		if span.AttemptSpans[i].Outcome == "won" {
			span.AttemptSpans[i].Outcome = "lost"
			span.AttemptSpans[i].Err = errText
			return
		}
	}
}

// stitchShard builds one shard's span subtree from its dispatch record: a
// "shard" node whose children are the attempt spans in launch order, with
// winTree — the winning execution's span subtree — grafted under the "won"
// attempt. Counters live only inside winTree, preserving the merge
// contract's "counters from exactly one attempt" in the tree.
func stitchShard(span *trace.ShardSpan, winTree *trace.SpanNode) *trace.SpanNode {
	root := trace.NewSpan(trace.SpanShard, "", span.Wall)
	for _, a := range span.AttemptSpans {
		an := trace.NewSpan(trace.SpanAttempt, a.Worker, a.Wall)
		an.Outcome, an.StartOff = a.Outcome, a.StartOff
		if a.Outcome == "won" && winTree != nil {
			an.Children = append(an.Children, winTree)
		}
		root.Children = append(root.Children, an.FinalizeSelf())
	}
	return root.FinalizeSelf()
}

// Defensive caps on worker-returned span subtrees: a buggy (or hostile)
// worker must not be able to balloon coordinator memory through its trace
// payload.
const (
	maxWorkerSpanDepth = 32
	maxWorkerSpanNodes = 4096
)

// workerSubtree converts the winning worker's wire span tree into the
// trace mirror, labelled with the worker's name at every node. A response
// without spans — or whose spans fail the stitching invariants against the
// shard's decoded counters — gets a synthetic "eval" span instead, so the
// stitched tree stays well-formed whatever the worker sent.
func workerSubtree(resp *exchange.ShardResponse, worker string, counters trace.EvalCounters) *trace.SpanNode {
	if resp.Spans != nil {
		budget := maxWorkerSpanNodes
		if n := convertSpan(resp.Spans, worker, maxWorkerSpanDepth, &budget); n != nil {
			if trace.CheckStitched(n, counters) == nil {
				return n
			}
		}
	}
	n := trace.NewSpan(trace.SpanEval, worker, 0)
	return n.SetCounters(counters).FinalizeSelf()
}

// convertSpan maps one wire span node (and its children, depth- and
// node-capped) into the trace mirror.
func convertSpan(s *exchange.Span, node string, depth int, budget *int) *trace.SpanNode {
	if s == nil || depth <= 0 || *budget <= 0 {
		return nil
	}
	*budget--
	n := trace.NewSpan(s.Op, node, time.Duration(s.WallNS))
	n.WallSelf = time.Duration(s.SelfNS)
	n.SetCounters(trace.EvalCounters{
		Steps: s.Eval.Steps, Cells: s.Eval.Cells, Tabulations: s.Eval.Tabulations,
		SetOps: s.Eval.SetOps, Iterations: s.Eval.Iterations,
	})
	for _, ch := range s.Children {
		if cn := convertSpan(ch, node, depth-1, budget); cn != nil {
			n.Children = append(n.Children, cn)
		}
	}
	return n
}

// dispatch performs one attempt round for a shard: a primary dispatch,
// plus — when HedgeAfter elapses first and another worker is admissible —
// one hedged dispatch. The first successful response wins and the loser is
// cancelled; with no success, the last failure is returned. Every dispatch
// consumes one attempt number (chaos schedules key on it) and counts
// toward the shard's attempt budget. Each dispatch leaves an AttemptSpan
// on span in launch order: the used response is "won", completed failures
// are "lost", and anything still in flight when the round ends — a hedge
// loser, or everything on cancellation — is "cancelled".
func (c *Coordinator) dispatch(ctx context.Context, primary string, req *exchange.ShardRequest, attempt *int, t0 time.Time, span *trace.ShardSpan, tc trace.TraceContext) (resp *exchange.ShardResponse, winner string, hedged bool, err error) {
	type dispResult struct {
		resp   *exchange.ShardResponse
		err    error
		worker string
		idx    int
	}
	type attemptState struct {
		num     int
		worker  string
		start   time.Time
		hedge   bool
		outcome string // "" while in flight
		wall    time.Duration
		errText string
	}
	ch := make(chan dispResult, 2)
	var states []*attemptState
	var cancels []context.CancelFunc
	defer func() {
		for _, cf := range cancels {
			cf()
		}
		for _, st := range states {
			if st.outcome == "" {
				st.outcome, st.wall = "cancelled", time.Since(st.start)
			}
			span.AttemptSpans = append(span.AttemptSpans, trace.AttemptSpan{
				Attempt: st.num, Worker: st.worker, Outcome: st.outcome, Hedge: st.hedge,
				StartOff: st.start.Sub(t0), Wall: st.wall, Err: st.errText,
			})
		}
	}()
	launch := func(worker string, hedge bool) {
		r := *req
		r.Attempt = *attempt
		*attempt++
		if tc.TraceID != "" {
			r.TraceID = tc.TraceID
			r.ParentSpan = trace.NewSpanID()
		}
		idx := len(states)
		states = append(states, &attemptState{num: r.Attempt, worker: worker, start: time.Now(), hedge: hedge})
		actx := ctx
		var cf context.CancelFunc
		if c.cfg.ShardTimeout > 0 {
			actx, cf = context.WithTimeout(ctx, c.cfg.ShardTimeout)
		} else {
			actx, cf = context.WithCancel(ctx)
		}
		cancels = append(cancels, cf)
		go func() {
			sr, serr := c.cfg.Transport.Shard(actx, worker, &r)
			ch <- dispResult{resp: sr, err: serr, worker: worker, idx: idx}
		}()
	}
	launch(primary, false)
	inflight := 1
	var hedgeTimer <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedgeTimer = t.C
	}
	var lastErr error
	lastWorker := primary
	for inflight > 0 {
		select {
		case r := <-ch:
			inflight--
			st := states[r.idx]
			st.wall = time.Since(st.start)
			if r.err == nil {
				st.outcome = "won"
				if hedged && r.worker != primary {
					c.stats.HedgeWins.Add(1)
				}
				return r.resp, r.worker, hedged, nil
			}
			st.outcome, st.errText = "lost", r.err.Error()
			lastErr, lastWorker = r.err, r.worker
			if se, ok := r.err.(*ShardError); ok {
				if !se.Retryable() {
					// Deterministic: no point waiting for a racing hedge to
					// fail the same way.
					return nil, r.worker, hedged, se
				}
				c.recordFailure(r.worker)
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if *attempt >= c.cfg.MaxAttempts {
				continue
			}
			if w, ok := c.pickWorker(ctx, primary); ok {
				hedged = true
				c.stats.Hedges.Add(1)
				launch(w, true)
				inflight++
			}
		case <-ctx.Done():
			return nil, lastWorker, hedged, ctx.Err()
		}
	}
	return nil, lastWorker, hedged, lastErr
}

// pickWorker round-robins over admissible workers, skipping exclude and
// circuit-open workers; a breaker past its cooldown gets one synchronous
// health probe and is re-admitted on success.
func (c *Coordinator) pickWorker(ctx context.Context, exclude string) (string, bool) {
	n := len(c.cfg.Workers)
	if n == 0 {
		return "", false
	}
	c.mu.Lock()
	first := c.next
	c.next++
	c.mu.Unlock()
	for i := 0; i < n; i++ {
		w := c.cfg.Workers[(first+i)%n]
		if w == exclude {
			continue
		}
		switch c.breakerFor(w).allow(time.Now()) {
		case breakerClosed:
			return w, true
		case breakerProbe:
			pctx, pcancel := context.WithTimeout(ctx, probeTimeout)
			perr := c.cfg.Transport.Healthz(pctx, w)
			pcancel()
			c.breakerFor(w).probeResult(perr == nil, time.Now())
			if perr == nil {
				c.stats.BreakerCloses.Add(1)
				return w, true
			}
		case breakerOpen:
		}
	}
	return "", false
}

func (c *Coordinator) breakerFor(w string) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[w]
	if b == nil {
		b = newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
		c.breakers[w] = b
	}
	return b
}

// recordFailure folds one dispatch failure into the worker's breaker.
func (c *Coordinator) recordFailure(w string) {
	if c.breakerFor(w).onFailure(time.Now()) {
		c.stats.BreakerOpens.Add(1)
	}
}

// decodeShard turns a worker's response into merge inputs, validating that
// it actually answers [start, end); a mismatch is a transport-class error
// (retryable on another attempt).
func decodeShard(resp *exchange.ShardResponse, start, end int64) (values []object.Value, bottomOff int64, bottom object.Value, counters eval.Counters, err error) {
	counters = eval.Counters{
		Steps:  resp.Eval.Steps,
		Cells:  resp.Eval.Cells,
		Tabs:   resp.Eval.Tabulations,
		SetOps: resp.Eval.SetOps,
		Iters:  resp.Eval.Iterations,
	}
	if resp.BottomOff >= 0 {
		if resp.BottomOff < start || resp.BottomOff >= end {
			return nil, -1, object.Value{}, counters, &ShardError{Kind: "transport",
				Message: fmt.Sprintf("cluster: shard ⊥ offset %d outside [%d, %d)", resp.BottomOff, start, end), Off: -1}
		}
		return nil, resp.BottomOff, object.Bottom(resp.BottomMsg), counters, nil
	}
	v, rerr := exchange.ReadString(resp.Values)
	if rerr != nil {
		return nil, -1, object.Value{}, counters, &ShardError{Kind: "transport",
			Message: "cluster: undecodable shard values: " + rerr.Error(), Off: -1}
	}
	if v.Kind != object.KArray || len(v.Shape) != 1 || int64(len(v.Data)) != end-start {
		return nil, -1, object.Value{}, counters, &ShardError{Kind: "transport",
			Message: fmt.Sprintf("cluster: shard values shape mismatch: want vector of %d", end-start), Off: -1}
	}
	return v.Data, -1, object.Value{}, counters, nil
}

// sleepCtx sleeps d unless ctx is done first; reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// resourceCancelled wraps the context error in the evaluator's resource
// vocabulary so server-side classification stays uniform; the deadline
// flavour maps to the timeout kind, exactly as the engine's own interrupt
// check does.
func resourceCancelled(ctx context.Context) error {
	cause := ctx.Err()
	if errors.Is(cause, context.DeadlineExceeded) {
		return &eval.ResourceError{Kind: eval.ResourceTimeout, Cause: cause}
	}
	return &eval.ResourceError{Kind: eval.ResourceCancelled, Cause: cause}
}
