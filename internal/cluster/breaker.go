package cluster

import (
	"sync"
	"time"
)

// breaker is a per-worker circuit breaker. Consecutive dispatch failures
// beyond a threshold open it; while open the worker receives no shards.
// After a cooldown one caller at a time is admitted to run a health probe:
// a successful probe closes the breaker, a failed one restarts the
// cooldown. State transitions are the usual closed → open → half-open
// (probe) → closed/open cycle.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	fails     int // consecutive failures while closed
	open      bool
	openedAt  time.Time
	probing   bool // a caller holds the half-open probe slot
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// state is what allow tells its caller to do.
type breakerState int

const (
	breakerClosed breakerState = iota // dispatch normally
	breakerOpen                       // skip this worker
	breakerProbe                      // caller owns the half-open probe: health-check, then report
)

// allow returns the action for a caller that wants to use the worker. At
// most one caller receives breakerProbe per cooldown window.
func (b *breaker) allow(now time.Time) breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return breakerClosed
	}
	if b.probing || now.Sub(b.openedAt) < b.cooldown {
		return breakerOpen
	}
	b.probing = true
	return breakerProbe
}

// probeResult reports the outcome of a health probe issued after
// breakerProbe: success closes the breaker, failure re-opens it for another
// cooldown.
func (b *breaker) probeResult(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.open = false
		b.fails = 0
	} else {
		b.openedAt = now
	}
}

// onSuccess records a successful dispatch, resetting the failure streak.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.fails = 0
	b.open = false
	b.mu.Unlock()
}

// onFailure records a failed dispatch; returns true when this failure
// opened the breaker.
func (b *breaker) onFailure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open {
		return false
	}
	b.fails++
	if b.fails >= b.threshold {
		b.open = true
		b.openedAt = now
		return true
	}
	return false
}

// isOpen reports whether the breaker currently rejects dispatches.
func (b *breaker) isOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}
