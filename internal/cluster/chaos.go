package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/aqldb/aql/internal/exchange"
)

// ChaosTransport is the HTTP analogue of netcdf.FaultyReaderAt: a Transport
// wrapper that injects failures deterministically, keyed by (shard index,
// attempt number), so every retry/hedge/breaker path is testable without
// real network flakiness. Faults are one-shot by construction — each
// (shard, attempt) pair is dispatched at most once, and retries/hedges get
// fresh attempt numbers — so a schedule reads as "attempt k of shard s
// fails this way".
type ChaosTransport struct {
	// Inner is the real transport faults wrap around.
	Inner Transport

	mu       sync.Mutex
	schedule map[[2]int]ChaosFault
	down     map[string]bool

	// Dispatches counts Shard calls that reached the transport (including
	// faulted ones); Faults counts injected failures.
	dispatches int
	faults     int
}

// ChaosFault is one injected failure.
type ChaosFault struct {
	Kind ChaosFaultKind
	// Delay is how long FaultDelay stalls (cancellable); it also delays
	// FaultErr/FaultDrop when set, to model slow failures.
	Delay time.Duration
}

// ChaosFaultKind enumerates the failure modes.
type ChaosFaultKind int

const (
	// FaultErr fails the dispatch before any work happens (connection
	// refused).
	FaultErr ChaosFaultKind = iota
	// FaultDelay stalls the dispatch, then lets it through — a straggler.
	FaultDelay
	// FaultDrop performs the dispatch (the worker does the work) but drops
	// the response on the floor — the hardest case for exactly-once
	// counters, since the work happened but must not be counted.
	FaultDrop
	// FaultGarble performs the dispatch but truncates the response values,
	// which the coordinator must detect and treat as a transport failure.
	FaultGarble
)

// Fail schedules a fault for the given (shard, attempt) dispatch.
func (c *ChaosTransport) Fail(shard, attempt int, f ChaosFault) {
	c.mu.Lock()
	if c.schedule == nil {
		c.schedule = map[[2]int]ChaosFault{}
	}
	c.schedule[[2]int{shard, attempt}] = f
	c.mu.Unlock()
}

// SetDown marks a worker unreachable (every dispatch and health probe
// fails) until SetDown(worker, false).
func (c *ChaosTransport) SetDown(worker string, down bool) {
	c.mu.Lock()
	if c.down == nil {
		c.down = map[string]bool{}
	}
	c.down[worker] = down
	c.mu.Unlock()
}

// Counts returns (dispatches, injected faults) so far.
func (c *ChaosTransport) Counts() (dispatches, faults int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dispatches, c.faults
}

// Shard implements Transport with fault injection.
func (c *ChaosTransport) Shard(ctx context.Context, worker string, req *exchange.ShardRequest) (*exchange.ShardResponse, error) {
	c.mu.Lock()
	c.dispatches++
	if c.down[worker] {
		c.faults++
		c.mu.Unlock()
		return nil, &ShardError{Worker: worker, Kind: "transport", Message: "chaos: worker down", Off: -1}
	}
	fault, ok := c.schedule[[2]int{req.Shard, req.Attempt}]
	if ok {
		c.faults++
	}
	c.mu.Unlock()
	if !ok {
		return c.Inner.Shard(ctx, worker, req)
	}
	if fault.Delay > 0 {
		t := time.NewTimer(fault.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	switch fault.Kind {
	case FaultErr:
		return nil, &ShardError{Worker: worker, Kind: "transport",
			Message: fmt.Sprintf("chaos: injected error (shard %d attempt %d)", req.Shard, req.Attempt), Off: -1}
	case FaultDelay:
		return c.Inner.Shard(ctx, worker, req)
	case FaultDrop:
		if _, err := c.Inner.Shard(ctx, worker, req); err != nil {
			return nil, err
		}
		return nil, &ShardError{Worker: worker, Kind: "transport",
			Message: fmt.Sprintf("chaos: connection dropped after response (shard %d attempt %d)", req.Shard, req.Attempt), Off: -1}
	case FaultGarble:
		resp, err := c.Inner.Shard(ctx, worker, req)
		if err != nil {
			return nil, err
		}
		if len(resp.Values) > 0 {
			resp.Values = resp.Values[:len(resp.Values)/2]
		} else {
			resp.Values = "[[garbage"
		}
		return resp, nil
	default:
		return nil, fmt.Errorf("cluster: unknown chaos fault kind %d", fault.Kind)
	}
}

// Healthz implements Transport; down workers fail their probes.
func (c *ChaosTransport) Healthz(ctx context.Context, worker string) error {
	c.mu.Lock()
	down := c.down[worker]
	c.mu.Unlock()
	if down {
		return fmt.Errorf("cluster: chaos: worker %s down", worker)
	}
	return c.Inner.Healthz(ctx, worker)
}
