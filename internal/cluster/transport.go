package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/aqldb/aql/internal/exchange"
)

// Transport ships shard requests to workers. The production implementation
// is HTTPTransport; tests swap in ChaosTransport to inject failures
// deterministically.
type Transport interface {
	// Shard executes req on the given worker and returns its response. A
	// non-nil error is either a *ShardError (classified transport or worker
	// failure) or a context error.
	Shard(ctx context.Context, worker string, req *exchange.ShardRequest) (*exchange.ShardResponse, error)
	// Healthz probes the worker's liveness; used by circuit-breaker
	// half-open probes.
	Healthz(ctx context.Context, worker string) error
}

// ShardError is a classified shard dispatch failure.
type ShardError struct {
	// Worker is the base URL (or test name) of the worker that failed.
	Worker string
	// Status is the HTTP status of the worker's error response; 0 for
	// transport-level failures (connection refused, dropped, garbled body).
	Status int
	// Kind and Message mirror the worker's error envelope; for transport
	// failures Kind is "transport".
	Kind    string
	Message string
	// Off is the row-major offset of a deterministic evaluation error on
	// the worker, -1 when the failure is not tied to an element.
	Off int64
}

func (e *ShardError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("cluster: worker %s: %s (%d): %s", e.Worker, e.Kind, e.Status, e.Message)
	}
	return fmt.Sprintf("cluster: worker %s: %s: %s", e.Worker, e.Kind, e.Message)
}

// Retryable reports whether another attempt (on this or another worker)
// could succeed. Transport failures, 5xx and admission backpressure (429)
// are retryable; other 4xx are deterministic — the same plan would fail the
// same way anywhere — so the coordinator propagates them instead.
func (e *ShardError) Retryable() bool {
	return e.Status == 0 || e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

// HTTPTransport dispatches shards over HTTP/JSON to worker aqld processes,
// the same surface every other aqld client speaks.
type HTTPTransport struct {
	// Client is the HTTP client to use; nil means a default client with a
	// 30s overall timeout (per-attempt deadlines come from the request
	// context, which overrides this when shorter).
	Client *http.Client
}

var defaultClient = &http.Client{Timeout: 30 * time.Second}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return defaultClient
}

// maxShardBody caps how much of a worker response the coordinator reads.
const maxShardBody = 64 << 20

// Shard implements Transport: POST {worker}/shard.
func (t *HTTPTransport) Shard(ctx context.Context, worker string, req *exchange.ShardRequest) (*exchange.ShardResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, &ShardError{Worker: worker, Kind: "transport", Message: err.Error(), Off: -1}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimRight(worker, "/")+"/shard", bytes.NewReader(body))
	if err != nil {
		return nil, &ShardError{Worker: worker, Kind: "transport", Message: err.Error(), Off: -1}
	}
	hreq.Header.Set("Content-Type", "application/json")
	if req.TraceID != "" && req.ParentSpan != "" {
		// W3C trace context: proxies and middleboxes between coordinator and
		// worker see the trace id too (the body copy is authoritative).
		hreq.Header.Set("traceparent", "00-"+req.TraceID+"-"+req.ParentSpan+"-01")
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		// Respect cancellation: the caller distinguishes its own deadline
		// from worker failure by the context error.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &ShardError{Worker: worker, Kind: "transport", Message: err.Error(), Off: -1}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, &ShardError{Worker: worker, Kind: "transport", Message: err.Error(), Off: -1}
	}
	if resp.StatusCode != http.StatusOK {
		se := &ShardError{Worker: worker, Status: resp.StatusCode, Kind: "transport", Off: -1}
		var env exchange.ShardErrorEnvelope
		if json.Unmarshal(data, &env) == nil && env.Error.Kind != "" {
			se.Kind, se.Message, se.Off = env.Error.Kind, env.Error.Message, env.Error.Off
		} else {
			se.Message = strings.TrimSpace(string(data))
		}
		return nil, se
	}
	var sr exchange.ShardResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, &ShardError{Worker: worker, Kind: "transport", Message: "undecodable shard response: " + err.Error(), Off: -1}
	}
	return &sr, nil
}

// Healthz implements Transport: GET {worker}/healthz.
func (t *HTTPTransport) Healthz(ctx context.Context, worker string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(worker, "/")+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: worker %s health probe: status %d", worker, resp.StatusCode)
	}
	return nil
}
