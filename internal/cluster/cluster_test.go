// Chaos-differential tests: coordinator + real worker aqld servers, with a
// ChaosTransport injecting deterministic failures. The invariant under test
// is the PR's core contract — any chaos schedule that eventually succeeds
// yields byte-identical values and exact counter totals versus single-node
// execution, and with every worker down the query still answers via
// degraded local execution with the report saying so.
package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/aqldb/aql/internal/cluster"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/server"
)

// tabQuery is a parallel-eligible pure tabulation: no globals, so every
// node (coordinator, workers, single-node reference) prepares an identical
// plan from the text alone.
const tabQuery = `[[ (i*i + 11*i + 7) % 97 | \i < 5000 ]]`

func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	sess, err := repl.New()
	if err != nil {
		t.Fatalf("repl.New: %v", err)
	}
	ts := httptest.NewServer(server.New(sess, server.Config{}))
	t.Cleanup(ts.Close)
	return ts
}

func newCoordServer(t *testing.T, coord *cluster.Coordinator) *httptest.Server {
	t.Helper()
	sess, err := repl.New()
	if err != nil {
		t.Fatalf("repl.New: %v", err)
	}
	ts := httptest.NewServer(server.New(sess, server.Config{Coordinator: coord}))
	t.Cleanup(ts.Close)
	return ts
}

// fastCfg returns a test-speed cluster config over the given workers: tiny
// backoffs, everything shardable, 2 shards per worker.
func fastCfg(tr cluster.Transport, workers ...string) cluster.Config {
	return cluster.Config{
		Workers:          workers,
		Transport:        tr,
		MinCells:         1,
		ShardsPerWorker:  2,
		MaxAttempts:      4,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	}
}

func postQuery(t *testing.T, ts *httptest.Server, query string) (*server.QueryResponse, int, *server.ErrorResponse) {
	t.Helper()
	body, _ := json.Marshal(server.QueryRequest{Query: query})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("undecodable error body (status %d): %v", resp.StatusCode, err)
		}
		return nil, resp.StatusCode, &er
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("undecodable response: %v", err)
	}
	return &qr, resp.StatusCode, nil
}

// reference runs the query on a plain single-node server.
func reference(t *testing.T, query string) *server.QueryResponse {
	t.Helper()
	ref := newWorker(t)
	qr, _, er := postQuery(t, ref, query)
	if er != nil {
		t.Fatalf("reference query failed: %+v", er)
	}
	return qr
}

// assertIdentical asserts the distributed response equals the single-node
// one byte-for-byte in value and exactly in counters.
func assertIdentical(t *testing.T, got, want *server.QueryResponse) {
	t.Helper()
	if got.Value != want.Value {
		t.Errorf("value differs from single-node:\n got %.120s\nwant %.120s", got.Value, want.Value)
	}
	if got.Eval != want.Eval {
		t.Errorf("counters differ from single-node:\n got %+v\nwant %+v", got.Eval, want.Eval)
	}
	if got.Type != want.Type {
		t.Errorf("type = %s, want %s", got.Type, want.Type)
	}
}

// TestChaosDifferential: every eventually-succeeding chaos schedule yields
// the single-node answer exactly. Schedules are keyed by (shard, attempt)
// so each run is deterministic; with 2 workers and 2 shards per worker
// there are shards 0..3, and each shard's dispatches number attempts from
// 0.
func TestChaosDifferential(t *testing.T) {
	want := reference(t, tabQuery)

	schedules := map[string]map[[2]int]cluster.ChaosFault{
		"no-faults": {},
		"first-attempt-error": {
			{0, 0}: {Kind: cluster.FaultErr},
		},
		"every-shard-first-attempt-errors": {
			{0, 0}: {Kind: cluster.FaultErr},
			{1, 0}: {Kind: cluster.FaultErr},
			{2, 0}: {Kind: cluster.FaultErr},
			{3, 0}: {Kind: cluster.FaultErr},
		},
		"response-dropped-after-work": {
			// The worker completes the shard but the response is lost: the
			// retry must not double-count the first execution's work.
			{1, 0}: {Kind: cluster.FaultDrop},
		},
		"garbled-response": {
			{2, 0}: {Kind: cluster.FaultGarble},
		},
		"straggler-then-clean-retry": {
			{3, 0}: {Kind: cluster.FaultErr, Delay: 20 * time.Millisecond},
		},
		"compound-drop-then-error": {
			{0, 0}: {Kind: cluster.FaultDrop},
			{0, 1}: {Kind: cluster.FaultErr},
			{2, 0}: {Kind: cluster.FaultGarble},
			{3, 0}: {Kind: cluster.FaultDrop},
		},
	}
	for name, schedule := range schedules {
		t.Run(name, func(t *testing.T) {
			w1, w2 := newWorker(t), newWorker(t)
			chaos := &cluster.ChaosTransport{Inner: &cluster.HTTPTransport{}}
			for k, f := range schedule {
				chaos.Fail(k[0], k[1], f)
			}
			coord := cluster.New(fastCfg(chaos, w1.URL, w2.URL))
			ts := newCoordServer(t, coord)

			got, _, er := postQuery(t, ts, tabQuery)
			if er != nil {
				t.Fatalf("distributed query failed: %+v", er)
			}
			assertIdentical(t, got, want)
			if got.Mode != "distributed" {
				t.Errorf("mode = %q, want distributed", got.Mode)
			}
			if len(got.Shards) != 4 {
				t.Errorf("shards = %d, want 4", len(got.Shards))
			}
			if len(schedule) > 0 {
				if r := coord.Stats().Retries.Load(); r == 0 {
					t.Error("chaos schedule injected faults but no retries were counted")
				}
			}
		})
	}
}

// TestAllWorkersDownDegradesToLocal: with every worker unreachable the
// query still answers — identically — and both the response and the
// coordinator stats report degradation.
func TestAllWorkersDownDegradesToLocal(t *testing.T) {
	want := reference(t, tabQuery)

	chaos := &cluster.ChaosTransport{Inner: &cluster.HTTPTransport{}}
	chaos.SetDown("http://w1.invalid", true)
	chaos.SetDown("http://w2.invalid", true)
	cfg := fastCfg(chaos, "http://w1.invalid", "http://w2.invalid")
	cfg.MaxAttempts = 2
	coord := cluster.New(cfg)
	ts := newCoordServer(t, coord)

	got, _, er := postQuery(t, ts, tabQuery)
	if er != nil {
		t.Fatalf("degraded query failed: %+v", er)
	}
	assertIdentical(t, got, want)
	if got.Mode != "degraded:local" {
		t.Errorf("mode = %q, want degraded:local", got.Mode)
	}
	for _, sp := range got.Shards {
		if sp.Worker != "local" {
			t.Errorf("shard %d executed on %q, want local", sp.Shard, sp.Worker)
		}
	}
	if coord.Stats().DegradedTotal.Load() != 1 {
		t.Errorf("degraded stat = %d, want 1", coord.Stats().DegradedTotal.Load())
	}
	if coord.Stats().BreakerOpens.Load() == 0 {
		t.Error("unreachable workers never opened a breaker")
	}

	// The /metrics surface reports the degradation.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), `aqld_cluster_events_total{event="degraded"} 1`) {
		t.Error("metrics missing degraded counter")
	}
}

// TestWorkerKilledMidQuery is the CI cluster-chaos scenario: two live
// workers, one hard-killed while every shard's first attempt is in flight.
// Retries must land on the survivor (or fall back locally) with no counter
// drift.
func TestWorkerKilledMidQuery(t *testing.T) {
	want := reference(t, tabQuery)

	w1, w2 := newWorker(t), newWorker(t)
	chaos := &cluster.ChaosTransport{Inner: &cluster.HTTPTransport{}}
	// Hold every first attempt in flight long enough for the kill below to
	// land mid-query.
	for shard := 0; shard < 4; shard++ {
		chaos.Fail(shard, 0, cluster.ChaosFault{Kind: cluster.FaultDelay, Delay: 100 * time.Millisecond})
	}
	coord := cluster.New(fastCfg(chaos, w1.URL, w2.URL))
	ts := newCoordServer(t, coord)

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(30 * time.Millisecond) // first attempts are now in their delay window
		w1.CloseClientConnections()
		w1.Close()
	}()
	got, _, er := postQuery(t, ts, tabQuery)
	<-done
	if er != nil {
		t.Fatalf("query failed after worker kill: %+v", er)
	}
	assertIdentical(t, got, want)
	switch got.Mode {
	case "distributed", "distributed:partial", "degraded:local":
	default:
		t.Errorf("mode = %q", got.Mode)
	}
}

// TestHedgingStraggler: a shard whose first attempt stalls far beyond
// HedgeAfter is re-dispatched to the other worker; the hedge wins, the
// result is exact, and exactly one attempt's counters are merged.
func TestHedgingStraggler(t *testing.T) {
	want := reference(t, tabQuery)

	w1, w2 := newWorker(t), newWorker(t)
	chaos := &cluster.ChaosTransport{Inner: &cluster.HTTPTransport{}}
	chaos.Fail(0, 0, cluster.ChaosFault{Kind: cluster.FaultDelay, Delay: 2 * time.Second})
	cfg := fastCfg(chaos, w1.URL, w2.URL)
	cfg.HedgeAfter = 20 * time.Millisecond
	coord := cluster.New(cfg)
	ts := newCoordServer(t, coord)

	start := time.Now()
	got, _, er := postQuery(t, ts, tabQuery)
	if er != nil {
		t.Fatalf("hedged query failed: %+v", er)
	}
	assertIdentical(t, got, want)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedge did not rescue the straggler: query took %s", elapsed)
	}
	if coord.Stats().Hedges.Load() == 0 {
		t.Error("no hedge was launched")
	}
	if coord.Stats().HedgeWins.Load() == 0 {
		t.Error("hedge never won against a 2s straggler")
	}
	hedged := false
	for _, sp := range got.Shards {
		hedged = hedged || sp.Hedged
	}
	if !hedged {
		t.Error("no shard span marked hedged")
	}
}

// TestBreakerReadmission: a worker that comes back after its breaker opened
// is re-admitted by a health probe once the cooldown elapses.
func TestBreakerReadmission(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	chaos := &cluster.ChaosTransport{Inner: &cluster.HTTPTransport{}}
	chaos.SetDown(w1.URL, true)
	coord := cluster.New(fastCfg(chaos, w1.URL, w2.URL))
	ts := newCoordServer(t, coord)

	want := reference(t, tabQuery)
	got, _, er := postQuery(t, ts, tabQuery)
	if er != nil {
		t.Fatalf("query with one worker down failed: %+v", er)
	}
	assertIdentical(t, got, want)
	if coord.Stats().BreakerOpens.Load() == 0 {
		t.Fatal("dead worker never opened its breaker")
	}

	// Revive the worker, let the cooldown pass, and check it serves again.
	chaos.SetDown(w1.URL, false)
	time.Sleep(80 * time.Millisecond)
	servedByW1 := false
	for i := 0; i < 10 && !servedByW1; i++ {
		got, _, er = postQuery(t, ts, tabQuery)
		if er != nil {
			t.Fatalf("post-revival query failed: %+v", er)
		}
		assertIdentical(t, got, want)
		for _, sp := range got.Shards {
			if sp.Worker == w1.URL {
				servedByW1 = true
			}
		}
	}
	if !servedByW1 {
		t.Error("revived worker never served a shard again")
	}
	if coord.Stats().BreakerCloses.Load() == 0 {
		t.Error("breaker never re-closed after revival")
	}
}

// TestBottomMergeOverCluster: per-offset ⊥s (out-of-bounds subscripts over
// a val) merge to the row-major-first ⊥ with its diagnostic intact across
// the wire, byte-identical to single-node.
func TestBottomMergeOverCluster(t *testing.T) {
	// Every node binds the same vector val, so plans agree everywhere.
	vec := make([]string, 100)
	for i := range vec {
		vec[i] = fmt.Sprint(i)
	}
	valBody := "[[" + strings.Join(vec, ", ") + "]]"
	bind := func(ts *httptest.Server) {
		resp, err := http.Post(ts.URL+"/val/A", "text/plain", strings.NewReader(valBody))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("bind val: err=%v status=%v", err, resp)
		}
		resp.Body.Close()
	}
	const query = `[[ A[i] | \i < 6000 ]]` // offsets >= 100 are out-of-bounds ⊥

	ref := newWorker(t)
	bind(ref)
	want, _, er := postQuery(t, ref, query)
	if er != nil {
		t.Fatalf("reference: %+v", er)
	}
	if !strings.HasPrefix(want.Value, "_|_") {
		t.Fatalf("reference value = %.60s, want ⊥", want.Value)
	}

	w1, w2 := newWorker(t), newWorker(t)
	bind(w1)
	bind(w2)
	chaos := &cluster.ChaosTransport{Inner: &cluster.HTTPTransport{}}
	chaos.Fail(0, 0, cluster.ChaosFault{Kind: cluster.FaultDrop}) // shard 0 holds the first ⊥; make it retry too
	coord := cluster.New(fastCfg(chaos, w1.URL, w2.URL))
	ts := newCoordServer(t, coord)
	bind(ts)

	got, _, er := postQuery(t, ts, query)
	if er != nil {
		t.Fatalf("distributed ⊥ query failed: %+v", er)
	}
	assertIdentical(t, got, want)
	if got.Mode != "distributed" {
		t.Errorf("mode = %q, want distributed", got.Mode)
	}
}

// TestWorkerBudgetTripPropagates: a worker-side deterministic failure (its
// per-shard step budget trips with HTTP 422 resource:steps) is not
// retryable — the same plan fails the same way on any worker — so the
// coordinator propagates the worker's kind and status to the client.
func TestWorkerBudgetTripPropagates(t *testing.T) {
	mk := func() *httptest.Server {
		s, err := repl.New()
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(s, server.Config{Limits: eval.Limits{MaxSteps: 100}}))
		t.Cleanup(ts.Close)
		return ts
	}
	w1, w2 := mk(), mk()
	coord := cluster.New(fastCfg(&cluster.HTTPTransport{}, w1.URL, w2.URL))
	ts := newCoordServer(t, coord)

	_, status, er := postQuery(t, ts, tabQuery)
	if er == nil {
		t.Fatal("expected worker budget trip to propagate, got success")
	}
	if status != http.StatusUnprocessableEntity || er.Error.Kind != "resource:steps" {
		t.Errorf("status %d kind %q, want 422 resource:steps", status, er.Error.Kind)
	}
	if coord.Stats().Retries.Load() != 0 {
		t.Errorf("deterministic worker failure was retried %d times", coord.Stats().Retries.Load())
	}
}
