package cluster_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/aqldb/aql/internal/cluster"
	"github.com/aqldb/aql/internal/trace"
)

// TestDebugExplainClusterRoundTrip: a scattered query's joined
// estimate-vs-actual table round-trips through GET /debug/explain/{id}
// with the per-shard worker actuals merged in — at least two worker
// shards, whose cells sum to the whole query's exact total.
func TestDebugExplainClusterRoundTrip(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	coord := cluster.New(fastCfg(&cluster.HTTPTransport{}, w1.URL, w2.URL))
	ts := newCoordServer(t, coord)

	// A head that allocates (a bag singleton per element) charges cells on
	// the workers, so the per-shard actuals carry real cell counts — the
	// array's own 5000-cell charge lands once, on the coordinator's plan
	// prologue, never double-counted by any shard.
	const allocQuery = `[[ {| i % 7 |} | \i < 5000 ]]`
	qr, _, er := postQuery(t, ts, allocQuery)
	if er != nil {
		t.Fatalf("distributed query failed: %+v", er)
	}
	if qr.Mode != "distributed" {
		t.Fatalf("mode = %q, want distributed", qr.Mode)
	}

	resp, err := http.Get(ts.URL + "/debug/explain/" + qr.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/explain/%s = %d", qr.TraceID, resp.StatusCode)
	}
	var tab trace.ExplainTable
	if err := json.NewDecoder(resp.Body).Decode(&tab); err != nil {
		t.Fatalf("decode: %v", err)
	}

	// The coordinator's programs execute unprofiled, so the estimate joins
	// in root mode against the merged flat counters — which are exact, so
	// the statically-known cell estimate must agree to the cell.
	if tab.Mode != "root" {
		t.Fatalf("join mode = %q, want root", tab.Mode)
	}
	// 5000 array cells + 5000 singleton cells, both statically known.
	row := tab.Rows[0]
	if !row.EstCells.Known || row.EstCells.N != 10000 {
		t.Errorf("est cells = %v, want known 10000", row.EstCells)
	}
	if row.ActCells != 10000 {
		t.Errorf("act cells = %d, want the exact merged total 10000", row.ActCells)
	}

	// Per-shard worker actuals: >= 2 distinct workers, the singletons'
	// cells summing to the element count (every shard's work counted once,
	// none twice).
	if len(tab.Shards) < 2 {
		t.Fatalf("shard actuals = %d rows, want >= 2", len(tab.Shards))
	}
	workers := map[string]bool{}
	var cells, steps int64
	for _, sh := range tab.Shards {
		workers[sh.Worker] = true
		cells += sh.Cells
		steps += sh.Steps
		if sh.Steps <= 0 {
			t.Errorf("shard %d on %s reports %d steps", sh.Shard, sh.Worker, sh.Steps)
		}
	}
	if len(workers) < 2 {
		t.Errorf("shard actuals span %d distinct workers, want >= 2: %v", len(workers), workers)
	}
	if cells != 5000 {
		t.Errorf("shard cells sum to %d, want 5000 (one singleton per element)", cells)
	}
	if steps >= row.ActSelfSteps {
		t.Errorf("shard steps sum to %d, want < total %d (the plan prologue runs on the coordinator)", steps, row.ActSelfSteps)
	}
}
