// Parameterized scatter-gather: the coordinator ships the argument frame
// with every shard dispatch, so one template plan on each worker serves
// every argument set — and the merged result stays byte-identical to a
// single-node execution with the same frame, even under chaos.
package cluster_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/aqldb/aql/internal/cluster"
	"github.com/aqldb/aql/internal/server"
)

// paramTabQuery is tabQuery with the coefficients lifted to placeholders:
// one template, per-execution argument frames.
const paramTabQuery = `[[ (i*i + $a*i + $b) % 97 | \i < 5000 ]]`

func postQueryReq(t *testing.T, ts *httptest.Server, req server.QueryRequest) (*server.QueryResponse, int, *server.ErrorResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("undecodable error body (status %d): %v", resp.StatusCode, err)
		}
		return nil, resp.StatusCode, &er
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("undecodable response: %v", err)
	}
	return &qr, resp.StatusCode, nil
}

// TestParameterizedDistributedDifferential: a parameterized query scattered
// over two workers answers byte-identically (value, counters, type) to a
// single-node execution with the same argument frame, for several frames
// through one coordinator — and the second frame onward hits every node's
// template-keyed plan cache.
func TestParameterizedDistributedDifferential(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	coord := cluster.New(fastCfg(&cluster.HTTPTransport{}, w1.URL, w2.URL))
	ts := newCoordServer(t, coord)
	ref := newWorker(t)

	frames := []map[string]string{
		{"a": "11", "b": "7"},
		{"a": "3", "b": "0"},
		{"a": "0", "b": "96"},
	}
	for i, args := range frames {
		req := server.QueryRequest{Query: paramTabQuery, Args: args}
		want, _, er := postQueryReq(t, ref, req)
		if er != nil {
			t.Fatalf("single-node reference (frame %d): %+v", i, er)
		}
		got, _, er := postQueryReq(t, ts, req)
		if er != nil {
			t.Fatalf("distributed (frame %d): %+v", i, er)
		}
		assertIdentical(t, got, want)
		if got.Mode != "distributed" {
			t.Errorf("frame %d: mode = %q, want distributed", i, got.Mode)
		}
		if i > 0 && !got.Cached {
			t.Errorf("frame %d: coordinator missed the template's cached plan", i)
		}
	}
	// The literal substitution of the first frame must agree with its
	// parameterized execution exactly.
	lit := strings.NewReplacer("$a", "11", "$b", "7").Replace(paramTabQuery)
	wantLit, _, er := postQueryReq(t, ref, server.QueryRequest{Query: lit})
	if er != nil {
		t.Fatalf("literal reference: %+v", er)
	}
	gotParam, _, er := postQueryReq(t, ref, server.QueryRequest{Query: paramTabQuery,
		Args: map[string]string{"a": "11", "b": "7"}})
	if er != nil {
		t.Fatalf("param reference: %+v", er)
	}
	if gotParam.Value != wantLit.Value {
		t.Errorf("parameterized value differs from literal substitution")
	}
	if gotParam.Eval != wantLit.Eval {
		t.Errorf("parameterized counters %+v != literal %+v", gotParam.Eval, wantLit.Eval)
	}
}

// TestParameterizedChaosDifferential: retries and garbled responses must
// re-ship the argument frame intact — an eventually-succeeding chaos
// schedule still reproduces the single-node answer exactly.
func TestParameterizedChaosDifferential(t *testing.T) {
	req := server.QueryRequest{Query: paramTabQuery,
		Args: map[string]string{"a": "11", "b": "7"}}
	ref := newWorker(t)
	want, _, er := postQueryReq(t, ref, req)
	if er != nil {
		t.Fatalf("reference: %+v", er)
	}

	w1, w2 := newWorker(t), newWorker(t)
	chaos := &cluster.ChaosTransport{Inner: &cluster.HTTPTransport{}}
	chaos.Fail(0, 0, cluster.ChaosFault{Kind: cluster.FaultErr})
	chaos.Fail(2, 0, cluster.ChaosFault{Kind: cluster.FaultGarble})
	chaos.Fail(3, 0, cluster.ChaosFault{Kind: cluster.FaultErr, Delay: 5 * time.Millisecond})
	coord := cluster.New(fastCfg(chaos, w1.URL, w2.URL))
	ts := newCoordServer(t, coord)

	got, _, er := postQueryReq(t, ts, req)
	if er != nil {
		t.Fatalf("distributed under chaos: %+v", er)
	}
	assertIdentical(t, got, want)
	if coord.Stats().Retries.Load() == 0 {
		t.Error("chaos schedule injected faults but no retries were counted")
	}
}

// TestParameterizedShardBindRejected: a worker re-validates the frame; a
// direct shard request with a type-mismatched argument is a deterministic
// 400, not an evaluation failure.
func TestParameterizedShardBindRejected(t *testing.T) {
	w := newWorker(t)
	body, _ := json.Marshal(map[string]any{
		"query": paramTabQuery,
		"shape": []int{5000},
		"start": 0, "end": 10,
		"args": map[string]string{"a": `"oops"`, "b": "7"},
	})
	resp, err := http.Post(w.URL+"/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /shard: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Kind    string `json:"kind"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("undecodable error body: %v", err)
	}
	if env.Error.Kind != "type" || !strings.Contains(env.Error.Message, "$a") {
		t.Errorf("error = %+v, want kind type naming $a", env.Error)
	}
}
