// Stitched-trace tests: a coordinator plus real worker servers must
// assemble one span tree for the whole distributed query — worker subtrees
// grafted under the coordinator's shard spans, retry and hedge attempts as
// annotated siblings — whose counters sum exactly to the flat merged
// totals, even under injected chaos. The degraded path is covered too: with
// every worker down, the aqld_cluster_* series still expose the event and
// the exposition stays grammatical in both negotiated formats.
package cluster_test

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/aqldb/aql/internal/cluster"
	"github.com/aqldb/aql/internal/trace"
)

// coordReport fetches the coordinator's flight-recorder report for the
// query that just ran (the newest distributed-mode report).
func coordReport(t *testing.T, url string) *trace.QueryReport {
	t.Helper()
	resp, err := http.Get(url + "/debug/queries")
	if err != nil {
		t.Fatalf("GET /debug/queries: %v", err)
	}
	defer resp.Body.Close()
	var reports []trace.QueryReport
	if err := json.NewDecoder(resp.Body).Decode(&reports); err != nil {
		t.Fatalf("decode reports: %v", err)
	}
	for i := len(reports) - 1; i >= 0; i-- {
		if len(reports[i].Shards) > 0 {
			return &reports[i]
		}
	}
	t.Fatal("no coordinator report in the flight recorder")
	return nil
}

// TestStitchedTraceTwoWorkers: a chaos schedule that forces a retry on one
// shard and a hedge on another still yields one stitched span tree with
// exact counter sums, at least two live worker subtrees, and the hedge
// loser recorded as a cancelled attempt.
func TestStitchedTraceTwoWorkers(t *testing.T) {
	want := reference(t, tabQuery)

	w1, w2 := newWorker(t), newWorker(t)
	chaos := &cluster.ChaosTransport{Inner: &cluster.HTTPTransport{}}
	chaos.Fail(0, 0, cluster.ChaosFault{Kind: cluster.FaultErr})                           // shard 0 retries
	chaos.Fail(1, 0, cluster.ChaosFault{Kind: cluster.FaultDelay, Delay: 2 * time.Second}) // shard 1 hedges
	cfg := fastCfg(chaos, w1.URL, w2.URL)
	cfg.HedgeAfter = 20 * time.Millisecond
	coord := cluster.New(cfg)
	ts := newCoordServer(t, coord)

	got, _, er := postQuery(t, ts, tabQuery)
	if er != nil {
		t.Fatalf("distributed query failed: %+v", er)
	}
	assertIdentical(t, got, want)

	rep := coordReport(t, ts.URL)
	if rep.Spans == nil {
		t.Fatal("coordinator report has no stitched span tree")
	}
	if rep.ProfLevel != trace.ProfStitched {
		t.Fatalf("prof level = %q, want %q", rep.ProfLevel, trace.ProfStitched)
	}
	if err := trace.CheckStitched(rep.Spans, rep.Eval); err != nil {
		t.Fatalf("stitched invariants violated: %v", err)
	}
	if rep.Eval != want.Eval {
		t.Fatalf("flat counters %+v != single-node %+v", rep.Eval, want.Eval)
	}

	var workers, cancelled, lost, shards int
	workerNodes := map[string]bool{}
	rep.Spans.Walk(func(n *trace.SpanNode) {
		switch n.Op {
		case trace.SpanWorker:
			workers++
			workerNodes[n.Node] = true
		case trace.SpanShard:
			shards++
		case trace.SpanAttempt:
			switch n.Outcome {
			case "cancelled":
				cancelled++
			case "lost":
				lost++
			}
		}
	})
	if shards != 4 {
		t.Errorf("stitched tree has %d shard spans, want 4", shards)
	}
	if workers < 2 || len(workerNodes) < 2 {
		t.Errorf("stitched tree has %d worker subtrees over %d nodes, want >= 2 distinct",
			workers, len(workerNodes))
	}
	if cancelled == 0 {
		t.Error("hedge loser not recorded as a cancelled attempt span")
	}
	if lost == 0 {
		t.Error("failed first attempt not recorded as a lost attempt span")
	}

	// The same trace is exportable as Chrome trace-event JSON by trace id.
	if rep.TraceID == "" {
		t.Fatal("coordinator report has no trace id")
	}
	resp, err := http.Get(ts.URL + "/debug/trace/" + rep.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace/{trace_id} = %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace export not JSON: %v", err)
	}
	var sawWorker, sawCancelled bool
	for _, e := range doc.TraceEvents {
		sawWorker = sawWorker || e.Name == trace.SpanWorker
		sawCancelled = sawCancelled || e.Name == "attempt (cancelled)"
	}
	if !sawWorker || !sawCancelled {
		t.Errorf("export missing worker/cancelled spans (worker=%v cancelled=%v)", sawWorker, sawCancelled)
	}
}

// omLineRe matches one exposition line: comment, EOF, or a sample with an
// optional OpenMetrics exemplar.
var omLineRe = regexp.MustCompile(`^(# (HELP|TYPE|EOF).*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ #]+( # \{[^{}]*\} [^ ]+ [0-9]+\.[0-9]+)?)$`)

// TestDegradedLocalClusterMetrics: with every worker down the query still
// answers in degraded:local mode, the aqld_cluster_* series expose the
// degradation and the local shard executions, and the exposition is
// grammatical in both the classic and the OpenMetrics format.
func TestDegradedLocalClusterMetrics(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	chaos := &cluster.ChaosTransport{Inner: &cluster.HTTPTransport{}}
	chaos.SetDown(w1.URL, true)
	chaos.SetDown(w2.URL, true)
	cfg := fastCfg(chaos, w1.URL, w2.URL)
	cfg.MaxAttempts = 1
	coord := cluster.New(cfg)
	ts := newCoordServer(t, coord)

	got, _, er := postQuery(t, ts, tabQuery)
	if er != nil {
		t.Fatalf("degraded query failed: %+v", er)
	}
	if got.Mode != "degraded:local" {
		t.Fatalf("mode = %q, want degraded:local", got.Mode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	classic, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`aqld_cluster_queries_total 1`,
		`aqld_cluster_shards_total{executor="local"} 4`,
		`aqld_cluster_shards_total{executor="remote"} 0`,
		`aqld_cluster_events_total{event="degraded"} 1`,
		"# TYPE aqld_cluster_shard_seconds histogram",
		"aqld_cluster_shard_seconds_count 4",
	} {
		if !strings.Contains(string(classic), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(string(classic), "# EOF") || strings.Contains(string(classic), "# {") {
		t.Error("classic exposition leaked OpenMetrics syntax")
	}

	// The OpenMetrics negotiation: same series, exemplar-capable grammar,
	// terminated by # EOF.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("negotiated Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(string(om), "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		t.Fatalf("OpenMetrics exposition not terminated by # EOF: %q", lines[len(lines)-1])
	}
	exemplars := 0
	for i, line := range lines {
		if !omLineRe.MatchString(line) {
			t.Fatalf("line %d not valid OpenMetrics: %q", i+1, line)
		}
		if strings.HasPrefix(line, "# TYPE ") && strings.Contains(line, "_total ") {
			t.Errorf("line %d: OpenMetrics family keeps _total: %q", i+1, line)
		}
		if strings.Contains(line, " # {") {
			exemplars++
			if !strings.Contains(line, `trace_id="`) {
				t.Errorf("line %d: exemplar without trace_id: %q", i+1, line)
			}
		}
	}
	// The degraded query ran under a (minted) trace context, so its local
	// shard observations carry exemplars on the cluster histogram.
	if exemplars == 0 {
		t.Error("no exemplars in the OpenMetrics exposition")
	}
	if !strings.Contains(string(om), "aqld_cluster_shard_seconds_bucket") {
		t.Error("OpenMetrics exposition missing the cluster shard histogram")
	}
}
