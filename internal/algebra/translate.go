package algebra

import (
	"fmt"
	"strings"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
)

// Translate compiles a core-calculus expression into an algebra arrow,
// eliminating variables the way relational algebra eliminates the
// variables of relational calculus (section 6).
//
// envVars lists the free variables bound by the arrow's input, innermost
// last; the input value is the left-nested pair ((((), x1), x2), ..., xn).
// globals resolves the remaining free variables: non-function values
// become constants, function values may appear only in application
// position (the algebra is first-order — as are the calculi of [19] that
// the paper builds on).
func Translate(e ast.Expr, envVars []string, globals map[string]object.Value) (Term, error) {
	t := &translator{globals: globals}
	return t.tr(e, envVars)
}

type translator struct {
	globals map[string]object.Value
}

// lookup builds the projection path for a variable: Snd ∘ Fst^k, where k
// is the distance from the right end of the environment.
func (t *translator) lookup(name string, env []string) (Term, bool) {
	for i := len(env) - 1; i >= 0; i-- {
		if env[i] != name {
			continue
		}
		var path Term = Snd{}
		for k := len(env) - 1 - i; k > 0; k-- {
			path = Compose{G: path, F: Fst{}}
		}
		return path, true
	}
	return nil, false
}

func (t *translator) tr(e ast.Expr, env []string) (Term, error) {
	switch n := e.(type) {
	case *ast.Var:
		if path, ok := t.lookup(n.Name, env); ok {
			return path, nil
		}
		if v, ok := t.globals[n.Name]; ok {
			if v.Kind == object.KFunc {
				return nil, fmt.Errorf("algebra: function %q may only be applied (the algebra is first-order)", n.Name)
			}
			return ConstOf{V: v}, nil
		}
		return nil, fmt.Errorf("algebra: unbound variable %q", n.Name)

	case *ast.Lam:
		return nil, fmt.Errorf("algebra: bare lambda has no first-order arrow form")

	case *ast.App:
		arg, err := t.tr(n.Arg, env)
		if err != nil {
			return nil, err
		}
		switch fn := n.Fn.(type) {
		case *ast.Lam:
			// Let-binding: body over the extended environment, fed (γ, arg).
			body, err := t.tr(fn.Body, append(append([]string{}, env...), fn.Param))
			if err != nil {
				return nil, err
			}
			return Compose{G: body, F: PairOf{Fs: []Term{Ident{}, arg}}}, nil
		case *ast.Var:
			if _, shadowed := t.lookup(fn.Name, env); !shadowed {
				if v, ok := t.globals[fn.Name]; ok && v.Kind == object.KFunc {
					return Prim{Name: fn.Name, Fn: v.Fn, Arg: arg}, nil
				}
			}
		}
		return nil, fmt.Errorf("algebra: application of a computed function has no first-order arrow form")

	case *ast.Tuple:
		if len(n.Elems) == 0 {
			return ConstOf{V: object.Unit}, nil
		}
		fs := make([]Term, len(n.Elems))
		for i, x := range n.Elems {
			f, err := t.tr(x, env)
			if err != nil {
				return nil, err
			}
			fs[i] = f
		}
		return PairOf{Fs: fs}, nil

	case *ast.Proj:
		inner, err := t.tr(n.Tuple, env)
		if err != nil {
			return nil, err
		}
		return Compose{G: ProjAt{I: n.I, K: n.K}, F: inner}, nil

	case *ast.EmptySet:
		return EmptyOf{}, nil

	case *ast.Singleton:
		inner, err := t.tr(n.Elem, env)
		if err != nil {
			return nil, err
		}
		return SingOf{F: inner}, nil

	case *ast.Union:
		l, err := t.tr(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := t.tr(n.R, env)
		if err != nil {
			return nil, err
		}
		return UnionOf{L: l, R: r}, nil

	case *ast.BigUnion:
		over, err := t.tr(n.Over, env)
		if err != nil {
			return nil, err
		}
		head, err := t.tr(n.Head, append(append([]string{}, env...), n.Var))
		if err != nil {
			return nil, err
		}
		return Ext{F: head, Over: over}, nil

	case *ast.Get:
		inner, err := t.tr(n.Set, env)
		if err != nil {
			return nil, err
		}
		return GetOf{F: inner}, nil

	case *ast.BoolLit:
		return ConstOf{V: object.Bool(n.Val)}, nil
	case *ast.NatLit:
		return ConstOf{V: object.Nat(n.Val)}, nil
	case *ast.RealLit:
		return ConstOf{V: object.Real(n.Val)}, nil
	case *ast.StringLit:
		return ConstOf{V: object.String_(n.Val)}, nil

	case *ast.If:
		c, err := t.tr(n.Cond, env)
		if err != nil {
			return nil, err
		}
		th, err := t.tr(n.Then, env)
		if err != nil {
			return nil, err
		}
		el, err := t.tr(n.Else, env)
		if err != nil {
			return nil, err
		}
		return CondOf{C: c, T: th, E: el}, nil

	case *ast.Cmp:
		l, err := t.tr(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := t.tr(n.R, env)
		if err != nil {
			return nil, err
		}
		return CmpOf{Op: n.Op, L: l, R: r}, nil

	case *ast.Arith:
		l, err := t.tr(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := t.tr(n.R, env)
		if err != nil {
			return nil, err
		}
		return ArithOf{Op: n.Op, L: l, R: r}, nil

	case *ast.Gen:
		inner, err := t.tr(n.N, env)
		if err != nil {
			return nil, err
		}
		return GenOf{F: inner}, nil

	case *ast.Sum:
		over, err := t.tr(n.Over, env)
		if err != nil {
			return nil, err
		}
		head, err := t.tr(n.Head, append(append([]string{}, env...), n.Var))
		if err != nil {
			return nil, err
		}
		return SumOf{F: head, Over: over}, nil

	case *ast.ArrayTab:
		bounds := make([]Term, len(n.Bounds))
		for j, b := range n.Bounds {
			f, err := t.tr(b, env)
			if err != nil {
				return nil, err
			}
			bounds[j] = f
		}
		k := len(n.Idx)
		head := n.Head
		idxName := ast.Fresh("alg")
		if k == 1 {
			head = ast.Subst(head, n.Idx[0], &ast.Var{Name: idxName})
		} else {
			// The MkArr combinator supplies the whole index tuple; the
			// calculus head sees the components, so rewrite i_j into
			// π_{j,k}(idx).
			for j, iv := range n.Idx {
				head = ast.Subst(head, iv, &ast.Proj{I: j + 1, K: k, Tuple: &ast.Var{Name: idxName}})
			}
		}
		f, err := t.tr(head, append(append([]string{}, env...), idxName))
		if err != nil {
			return nil, err
		}
		return MkArr{F: f, Bounds: bounds}, nil

	case *ast.Subscript:
		arr, err := t.tr(n.Arr, env)
		if err != nil {
			return nil, err
		}
		idx, err := t.tr(n.Index, env)
		if err != nil {
			return nil, err
		}
		return SubOf{Arr: arr, Index: idx}, nil

	case *ast.Dim:
		inner, err := t.tr(n.Arr, env)
		if err != nil {
			return nil, err
		}
		return DimOf{K: n.K, F: inner}, nil

	case *ast.Index:
		inner, err := t.tr(n.Set, env)
		if err != nil {
			return nil, err
		}
		return IndexOf{K: n.K, F: inner}, nil

	case *ast.MkArray:
		dims := make([]Term, len(n.Dims))
		for j, d := range n.Dims {
			f, err := t.tr(d, env)
			if err != nil {
				return nil, err
			}
			dims[j] = f
		}
		elems := make([]Term, len(n.Elems))
		for i, x := range n.Elems {
			f, err := t.tr(x, env)
			if err != nil {
				return nil, err
			}
			elems[i] = f
		}
		return LitArr{Dims: dims, Elems: elems}, nil

	case *ast.Bottom:
		return BottomOf{}, nil
	}
	return nil, fmt.Errorf("algebra: %s has no arrow form (the NRCA algebra covers sets and arrays, not bags or ranked unions)", ast.NodeName(e))
}

// LitArr is the arrow form of the row-major literal construct.
type LitArr struct {
	Dims  []Term
	Elems []Term
}

// Apply evaluates dimensions and elements and assembles the array; a
// mismatched element count is ⊥, as in the calculus.
func (l LitArr) Apply(in object.Value) (object.Value, error) {
	shape := make([]int, len(l.Dims))
	size := 1
	for j, d := range l.Dims {
		v, err := d.Apply(in)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		n, err := v.AsNat()
		if err != nil {
			return object.Value{}, fmt.Errorf("algebra: literal dimension %d: %w", j+1, err)
		}
		shape[j] = int(n)
		size *= int(n)
	}
	if size != len(l.Elems) {
		return object.Bottom("algebra: array literal shape mismatch"), nil
	}
	data := make([]object.Value, len(l.Elems))
	for i, f := range l.Elems {
		v, err := f.Apply(in)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		data[i] = v
	}
	return object.Array(shape, data)
}

func (l LitArr) String() string {
	parts := make([]string, len(l.Elems))
	for i, f := range l.Elems {
		parts[i] = f.String()
	}
	return "lit_arr[" + strings.Join(parts, ", ") + "]"
}

// EnvValue packs bindings into the left-nested environment pair that
// translated arrows expect.
func EnvValue(vals ...object.Value) object.Value {
	acc := object.Unit
	for _, v := range vals {
		acc = object.Tuple(acc, v)
	}
	return acc
}

// Size returns the number of combinators in a term, for the tests'
// translation-growth checks.
func Size(t Term) int {
	switch n := t.(type) {
	case Compose:
		return 1 + Size(n.F) + Size(n.G)
	case PairOf:
		s := 1
		for _, f := range n.Fs {
			s += Size(f)
		}
		return s
	case Prim:
		return 1 + Size(n.Arg)
	case CondOf:
		return 1 + Size(n.C) + Size(n.T) + Size(n.E)
	case CmpOf:
		return 1 + Size(n.L) + Size(n.R)
	case ArithOf:
		return 1 + Size(n.L) + Size(n.R)
	case SingOf:
		return 1 + Size(n.F)
	case UnionOf:
		return 1 + Size(n.L) + Size(n.R)
	case Ext:
		return 1 + Size(n.F) + Size(n.Over)
	case GetOf:
		return 1 + Size(n.F)
	case GenOf:
		return 1 + Size(n.F)
	case SumOf:
		return 1 + Size(n.F) + Size(n.Over)
	case MkArr:
		s := 1 + Size(n.F)
		for _, b := range n.Bounds {
			s += Size(b)
		}
		return s
	case SubOf:
		return 1 + Size(n.Arr) + Size(n.Index)
	case DimOf:
		return 1 + Size(n.F)
	case IndexOf:
		return 1 + Size(n.F)
	case LitArr:
		s := 1
		for _, f := range n.Dims {
			s += Size(f)
		}
		for _, f := range n.Elems {
			s += Size(f)
		}
		return s
	}
	return 1
}
