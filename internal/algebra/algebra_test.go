package algebra

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

func v(name string) ast.Expr                       { return &ast.Var{Name: name} }
func nat(n int64) ast.Expr                         { return &ast.NatLit{Val: n} }
func sing(e ast.Expr) ast.Expr                     { return &ast.Singleton{Elem: e} }
func arith(op ast.ArithOp, l, r ast.Expr) ast.Expr { return &ast.Arith{Op: op, L: l, R: r} }
func cmp(op ast.CmpOp, l, r ast.Expr) ast.Expr     { return &ast.Cmp{Op: op, L: l, R: r} }
func tup(es ...ast.Expr) ast.Expr                  { return &ast.Tuple{Elems: es} }

// both evaluates e in the calculus and through the algebra translation,
// and checks the results agree.
func both(t *testing.T, e ast.Expr, envVars []string, envVals []object.Value,
	globals map[string]object.Value) object.Value {
	t.Helper()
	g := eval.Builtins()
	for k, val := range globals {
		g[k] = val
	}
	// Calculus evaluation.
	ev := eval.New(g)
	var env *eval.Env
	for i, name := range envVars {
		env = env.Bind(name, envVals[i])
	}
	want, err := ev.Eval(e, env)
	if err != nil {
		t.Fatalf("calculus eval %s: %v", e, err)
	}
	// Algebra evaluation.
	term, err := Translate(e, envVars, g)
	if err != nil {
		t.Fatalf("translate %s: %v", e, err)
	}
	got, err := term.Apply(EnvValue(envVals...))
	if err != nil {
		t.Fatalf("algebra eval %s: %v", term, err)
	}
	if !object.Equal(got, want) {
		t.Fatalf("algebra disagrees with calculus:\n expr  %s\n term  %s\n want  %s\n got   %s",
			e, term, want, got)
	}
	return got
}

func TestScalars(t *testing.T) {
	both(t, nat(42), nil, nil, nil)
	both(t, arith(ast.OpAdd, nat(2), nat(3)), nil, nil, nil)
	both(t, arith(ast.OpSub, nat(2), nat(5)), nil, nil, nil) // monus
	both(t, cmp(ast.OpLt, nat(1), nat(2)), nil, nil, nil)
	both(t, &ast.If{Cond: cmp(ast.OpLt, nat(2), nat(1)), Then: nat(10), Else: nat(20)}, nil, nil, nil)
	both(t, &ast.StringLit{Val: "x"}, nil, nil, nil)
	both(t, &ast.RealLit{Val: 2.5}, nil, nil, nil)
	both(t, &ast.BoolLit{Val: true}, nil, nil, nil)
}

func TestEnvironmentPaths(t *testing.T) {
	// Variables at several depths.
	e := tup(v("x"), v("y"), v("z"))
	got := both(t, e, []string{"x", "y", "z"},
		[]object.Value{object.Nat(1), object.Nat(2), object.Nat(3)}, nil)
	if !object.Equal(got, object.Tuple(object.Nat(1), object.Nat(2), object.Nat(3))) {
		t.Errorf("got %s", got)
	}
	// Shadowing: the innermost binding wins.
	shadow := &ast.BigUnion{
		Head: sing(v("x")),
		Var:  "x",
		Over: &ast.Gen{N: nat(3)},
	}
	got2 := both(t, shadow, []string{"x"}, []object.Value{object.Nat(99)}, nil)
	if !object.Equal(got2, object.Set(object.Nat(0), object.Nat(1), object.Nat(2))) {
		t.Errorf("shadowing broken: %s", got2)
	}
}

func TestSetsAndAggregates(t *testing.T) {
	S := object.Set(object.Nat(1), object.Nat(2), object.Nat(3))
	G := map[string]object.Value{"S": S}
	both(t, &ast.BigUnion{Head: sing(arith(ast.OpMul, v("x"), v("x"))), Var: "x", Over: v("S")},
		nil, nil, G)
	both(t, &ast.Sum{Head: v("x"), Var: "x", Over: v("S")}, nil, nil, G)
	both(t, &ast.Get{Set: sing(nat(9))}, nil, nil, nil)
	both(t, &ast.Union{L: sing(nat(1)), R: v("S")}, nil, nil, G)
	both(t, &ast.Gen{N: nat(5)}, nil, nil, nil)
	both(t, &ast.EmptySet{}, nil, nil, nil)
}

func TestLetViaApp(t *testing.T) {
	// (λx. x + x)(21)
	e := &ast.App{
		Fn:  &ast.Lam{Param: "x", Body: arith(ast.OpAdd, v("x"), v("x"))},
		Arg: nat(21),
	}
	got := both(t, e, nil, nil, nil)
	if got.N != 42 {
		t.Errorf("let = %s", got)
	}
}

func TestPrimitiveApplication(t *testing.T) {
	e := &ast.App{Fn: v("min"), Arg: &ast.Union{L: sing(nat(5)), R: sing(nat(3))}}
	got := both(t, e, nil, nil, nil)
	if got.N != 3 {
		t.Errorf("min = %s", got)
	}
}

func TestHigherOrderRejected(t *testing.T) {
	// A bare lambda value has no arrow form.
	if _, err := Translate(&ast.Lam{Param: "x", Body: v("x")}, nil, nil); err == nil {
		t.Error("bare lambda translated")
	}
	// A computed function applied.
	e := &ast.App{Fn: &ast.Get{Set: v("S")}, Arg: nat(1)}
	if _, err := Translate(e, nil, map[string]object.Value{"S": object.EmptySet}); err == nil {
		t.Error("computed function application translated")
	}
	// Bags are outside the NRCA algebra.
	if _, err := Translate(&ast.EmptyBag{}, nil, nil); err == nil {
		t.Error("bag construct translated")
	}
}

func TestMkArr(t *testing.T) {
	// The paper's mk_arr: [[ i*i | i < 5 ]].
	e := &ast.ArrayTab{
		Head:   arith(ast.OpMul, v("i"), v("i")),
		Idx:    []string{"i"},
		Bounds: []ast.Expr{nat(5)},
	}
	got := both(t, e, nil, nil, nil)
	if !object.Equal(got, object.NatVector(0, 1, 4, 9, 16)) {
		t.Errorf("mk_arr = %s", got)
	}
	// Multidimensional.
	e2 := &ast.ArrayTab{
		Head:   arith(ast.OpAdd, arith(ast.OpMul, v("i"), nat(10)), v("j")),
		Idx:    []string{"i", "j"},
		Bounds: []ast.Expr{nat(2), nat(2)},
	}
	got2 := both(t, e2, nil, nil, nil)
	want := object.MustArray([]int{2, 2}, []object.Value{
		object.Nat(0), object.Nat(1), object.Nat(10), object.Nat(11)})
	if !object.Equal(got2, want) {
		t.Errorf("mk_arr 2d = %s", got2)
	}
}

func TestArrayOps(t *testing.T) {
	A := object.NatVector(5, 6, 7)
	G := map[string]object.Value{"A": A}
	both(t, &ast.Subscript{Arr: v("A"), Index: nat(1)}, nil, nil, G)
	both(t, &ast.Dim{K: 1, Arr: v("A")}, nil, nil, G)
	both(t, &ast.Subscript{Arr: v("A"), Index: nat(99)}, nil, nil, G) // ⊥ agrees
	idx := object.Set(
		object.Tuple(object.Nat(0), object.String_("a")),
		object.Tuple(object.Nat(2), object.String_("b")))
	both(t, &ast.Index{K: 1, Set: v("S")}, nil, nil, map[string]object.Value{"S": idx})
	both(t, &ast.MkArray{
		Dims:  []ast.Expr{nat(2), nat(2)},
		Elems: []ast.Expr{nat(1), nat(2), nat(3), nat(4)},
	}, nil, nil, nil)
	// Mismatched literal is ⊥ on both sides.
	both(t, &ast.MkArray{Dims: []ast.Expr{nat(3)}, Elems: []ast.Expr{nat(1)}}, nil, nil, nil)
}

// TestDerivedOperations runs the paper's derived array operations through
// the algebra.
func TestDerivedOperations(t *testing.T) {
	A := object.NatVector(1, 2, 3, 4, 5)
	G := map[string]object.Value{"A": A}
	// reverse
	reverse := &ast.ArrayTab{
		Head: &ast.Subscript{Arr: v("A"), Index: arith(ast.OpSub,
			arith(ast.OpSub, &ast.Dim{K: 1, Arr: v("A")}, v("i")), nat(1))},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{&ast.Dim{K: 1, Arr: v("A")}},
	}
	got := both(t, reverse, nil, nil, G)
	if !object.Equal(got, object.NatVector(5, 4, 3, 2, 1)) {
		t.Errorf("reverse = %s", got)
	}
	// transpose via the algebra
	M := object.MustArray([]int{2, 3}, []object.Value{
		object.Nat(1), object.Nat(2), object.Nat(3),
		object.Nat(4), object.Nat(5), object.Nat(6)})
	transpose := &ast.ArrayTab{
		Head: &ast.Subscript{Arr: v("M"), Index: tup(v("i"), v("j"))},
		Idx:  []string{"j", "i"},
		Bounds: []ast.Expr{
			&ast.Proj{I: 2, K: 2, Tuple: &ast.Dim{K: 2, Arr: v("M")}},
			&ast.Proj{I: 1, K: 2, Tuple: &ast.Dim{K: 2, Arr: v("M")}},
		},
	}
	got2 := both(t, transpose, nil, nil, map[string]object.Value{"M": M})
	if got2.Shape[0] != 3 || got2.Shape[1] != 2 {
		t.Errorf("transpose shape = %v", got2.Shape)
	}
}

// TestPropCalculusAlgebraAgree generates random first-order expressions
// and checks the two evaluators agree — the empirical content of the
// paper's "they can be translated into each other".
func TestPropCalculusAlgebraAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(19960604))
	for trial := 0; trial < 300; trial++ {
		e := randomFirstOrder(rng, 4, nil)
		g := eval.Builtins()
		ev := eval.New(g)
		want, err := ev.Eval(e, nil)
		if err != nil {
			t.Fatalf("trial %d: calculus: %v\n%s", trial, err, e)
		}
		term, err := Translate(e, nil, g)
		if err != nil {
			t.Fatalf("trial %d: translate: %v\n%s", trial, err, e)
		}
		got, err := term.Apply(object.Unit)
		if err != nil {
			t.Fatalf("trial %d: algebra: %v\n%s", trial, err, term)
		}
		if !object.Equal(got, want) {
			t.Fatalf("trial %d: %s\n calculus %s\n algebra  %s", trial, e, want, got)
		}
	}
}

// randomFirstOrder builds random nat-valued expressions with binders.
func randomFirstOrder(rng *rand.Rand, depth int, scope []string) ast.Expr {
	if depth <= 0 {
		if len(scope) > 0 && rng.Intn(2) == 0 {
			return v(scope[rng.Intn(len(scope))])
		}
		return nat(int64(rng.Intn(5)))
	}
	switch rng.Intn(7) {
	case 0:
		return arith([]ast.ArithOp{ast.OpAdd, ast.OpSub, ast.OpMul}[rng.Intn(3)],
			randomFirstOrder(rng, depth-1, scope), randomFirstOrder(rng, depth-1, scope))
	case 1:
		return &ast.If{
			Cond: cmp(ast.OpLe, randomFirstOrder(rng, depth-1, scope), randomFirstOrder(rng, depth-1, scope)),
			Then: randomFirstOrder(rng, depth-1, scope),
			Else: randomFirstOrder(rng, depth-1, scope),
		}
	case 2:
		x := ast.Fresh("ra")
		return &ast.Sum{
			Head: randomFirstOrder(rng, depth-1, append(scope, x)),
			Var:  x,
			Over: &ast.Gen{N: randomFirstOrder(rng, depth-1, scope)},
		}
	case 3:
		i := ast.Fresh("ri")
		return &ast.Subscript{
			Arr: &ast.ArrayTab{
				Head:   randomFirstOrder(rng, depth-1, append(scope, i)),
				Idx:    []string{i},
				Bounds: []ast.Expr{arith(ast.OpAdd, randomFirstOrder(rng, depth-1, scope), nat(1))},
			},
			Index: randomFirstOrder(rng, depth-1, scope),
		}
	case 4:
		x := ast.Fresh("rl")
		return &ast.App{
			Fn:  &ast.Lam{Param: x, Body: randomFirstOrder(rng, depth-1, append(scope, x))},
			Arg: randomFirstOrder(rng, depth-1, scope),
		}
	case 5:
		i := ast.Fresh("rd")
		return &ast.Dim{K: 1, Arr: &ast.ArrayTab{
			Head:   randomFirstOrder(rng, depth-1, append(scope, i)),
			Idx:    []string{i},
			Bounds: []ast.Expr{randomFirstOrder(rng, depth-1, scope)},
		}}
	default:
		x := ast.Fresh("rs")
		return &ast.Sum{
			Head: nat(1),
			Var:  x,
			Over: &ast.BigUnion{
				Head: sing(randomFirstOrder(rng, depth-1, append(scope, x))),
				Var:  x,
				Over: &ast.Gen{N: nat(int64(rng.Intn(4)))},
			},
		}
	}
}

func TestTermStringsAndSize(t *testing.T) {
	e := &ast.BigUnion{Head: sing(arith(ast.OpAdd, v("x"), nat(1))), Var: "x", Over: &ast.Gen{N: nat(3)}}
	term, err := Translate(e, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := term.String()
	for _, frag := range []string{"ext", "gen", "eta"} {
		if !strings.Contains(s, frag) {
			t.Errorf("term rendering %q missing %q", s, frag)
		}
	}
	if Size(term) < 5 {
		t.Errorf("size = %d, suspiciously small", Size(term))
	}
}

func TestTermApplyKindErrors(t *testing.T) {
	// Arrows fed the wrong kind of value report errors rather than panic.
	cases := []Term{
		ProjAt{I: 1, K: 2},
		CondOf{C: Ident{}, T: Ident{}, E: Ident{}},
		Ext{F: Ident{}, Over: Ident{}},
		GetOf{F: Ident{}},
		GenOf{F: Ident{}},
		SumOf{F: Ident{}, Over: Ident{}},
		DimOf{K: 1, F: Ident{}},
		IndexOf{K: 1, F: Ident{}},
		SubOf{Arr: Ident{}, Index: Ident{}},
	}
	for _, term := range cases {
		if _, err := term.Apply(object.String_("wrong")); err == nil {
			t.Errorf("%s accepted a string input", term)
		}
	}
}

func TestBottomThreadsThroughCombinators(t *testing.T) {
	bot := BottomOf{}
	cases := []Term{
		Compose{G: Ident{}, F: bot},
		PairOf{Fs: []Term{bot, Ident{}}},
		SingOf{F: bot},
		UnionOf{L: bot, R: EmptyOf{}},
		CmpOf{Op: ast.OpEq, L: bot, R: bot},
		ArithOf{Op: ast.OpAdd, L: bot, R: bot},
		GetOf{F: bot},
		GenOf{F: bot},
		CondOf{C: bot, T: Ident{}, E: Ident{}},
		Prim{Name: "p", Fn: func(v object.Value) (object.Value, error) { return v, nil }, Arg: bot},
		SubOf{Arr: bot, Index: bot},
		DimOf{K: 1, F: bot},
		IndexOf{K: 1, F: bot},
		MkArr{F: Ident{}, Bounds: []Term{bot}},
		LitArr{Dims: []Term{bot}, Elems: nil},
	}
	for _, term := range cases {
		got, err := term.Apply(object.Unit)
		if err != nil {
			t.Errorf("%s errored: %v", term, err)
			continue
		}
		if !got.IsBottom() {
			t.Errorf("%s = %s, want bottom", term, got)
		}
	}
}

func TestTranslateUnboundVariable(t *testing.T) {
	if _, err := Translate(v("nope"), nil, nil); err == nil {
		t.Error("unbound variable translated")
	}
}
