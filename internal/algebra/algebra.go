// Package algebra implements the algebra of functions corresponding to
// NRCA — the variable-free combinator form that section 6 of the paper
// uses to prove Theorem 6.1:
//
//	"To prove the equivalence modulo these translations, we use the
//	algebras of functions that correspond to our calculi. They are derived
//	in the same manner as relational algebra is derived from relational
//	calculus. ... For NRCA we derive a similar algebra by adding a number
//	of functions to handle the array operations. For example, there is a
//	function mk_arr(f) : N → [t], provided f is of type N → t."
//
// An algebra term denotes a function from an environment value to a result;
// variables are compiled away into projection paths, exactly as relational
// algebra eliminates the variables of relational calculus. The environment
// is a left-nested pair: translating under binders extends it on the right,
// and a variable occurrence becomes Snd ∘ Fst^k.
//
// The package provides the term language, its evaluator, and the standard
// translation from the core calculus; the tests verify that translation
// preserves semantics on the paper's derived operations and on random
// expressions.
package algebra

import (
	"fmt"
	"strings"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// Term is an algebra arrow: a function of one complex-object input.
type Term interface {
	// Apply evaluates the arrow at the input value.
	Apply(in object.Value) (object.Value, error)
	String() string
}

// --- Plumbing combinators ----------------------------------------------------

// Ident is the identity arrow.
type Ident struct{}

func (Ident) Apply(in object.Value) (object.Value, error) { return in, nil }
func (Ident) String() string                              { return "id" }

// Compose is g ∘ f (f first).
type Compose struct{ G, F Term }

func (c Compose) Apply(in object.Value) (object.Value, error) {
	mid, err := c.F.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if mid.IsBottom() {
		return mid, nil
	}
	return c.G.Apply(mid)
}
func (c Compose) String() string { return fmt.Sprintf("(%s . %s)", c.G, c.F) }

// Fst and Snd are the pair projections (the environment spine).
type Fst struct{}

func (Fst) Apply(in object.Value) (object.Value, error) { return in.Proj(0) }
func (Fst) String() string                              { return "fst" }

// Snd is the second pair projection.
type Snd struct{}

func (Snd) Apply(in object.Value) (object.Value, error) { return in.Proj(1) }
func (Snd) String() string                              { return "snd" }

// PairOf is the tupling ⟨f1, ..., fk⟩: x ↦ (f1 x, ..., fk x).
type PairOf struct{ Fs []Term }

func (p PairOf) Apply(in object.Value) (object.Value, error) {
	elems := make([]object.Value, len(p.Fs))
	for i, f := range p.Fs {
		v, err := f.Apply(in)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		elems[i] = v
	}
	return object.Tuple(elems...), nil
}

func (p PairOf) String() string {
	parts := make([]string, len(p.Fs))
	for i, f := range p.Fs {
		parts[i] = f.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// ProjAt is π_{i,k} as an arrow.
type ProjAt struct{ I, K int }

func (p ProjAt) Apply(in object.Value) (object.Value, error) {
	if in.Kind != object.KTuple || len(in.Elems) != p.K {
		return object.Value{}, fmt.Errorf("algebra: pi_%d,%d of %s", p.I, p.K, in.Kind)
	}
	return in.Proj(p.I - 1)
}
func (p ProjAt) String() string { return fmt.Sprintf("pi_%d,%d", p.I, p.K) }

// ConstOf is the constant arrow x ↦ v.
type ConstOf struct{ V object.Value }

func (c ConstOf) Apply(object.Value) (object.Value, error) { return c.V, nil }
func (c ConstOf) String() string                           { return "const(" + c.V.String() + ")" }

// Prim applies a named external primitive to the arrow's result.
type Prim struct {
	Name string
	Fn   func(object.Value) (object.Value, error)
	Arg  Term
}

func (p Prim) Apply(in object.Value) (object.Value, error) {
	v, err := p.Arg.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if v.IsBottom() {
		return v, nil
	}
	return p.Fn(v)
}
func (p Prim) String() string { return fmt.Sprintf("%s(%s)", p.Name, p.Arg) }

// --- Booleans, comparison, arithmetic ------------------------------------------

// CondOf is the conditional combinator: if C then T else E, all over the
// same input.
type CondOf struct{ C, T, E Term }

func (c CondOf) Apply(in object.Value) (object.Value, error) {
	b, err := c.C.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if b.IsBottom() {
		return b, nil
	}
	bb, err := b.AsBool()
	if err != nil {
		return object.Value{}, fmt.Errorf("algebra: cond: %w", err)
	}
	if bb {
		return c.T.Apply(in)
	}
	return c.E.Apply(in)
}
func (c CondOf) String() string { return fmt.Sprintf("cond(%s; %s; %s)", c.C, c.T, c.E) }

// CmpOf compares the results of two arrows with the lifted linear order.
type CmpOf struct {
	Op   ast.CmpOp
	L, R Term
}

func (c CmpOf) Apply(in object.Value) (object.Value, error) {
	l, err := c.L.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if l.IsBottom() {
		return l, nil
	}
	r, err := c.R.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if r.IsBottom() {
		return r, nil
	}
	cv := object.Compare(l, r)
	switch c.Op {
	case ast.OpEq:
		return object.Bool(cv == 0), nil
	case ast.OpNe:
		return object.Bool(cv != 0), nil
	case ast.OpLt:
		return object.Bool(cv < 0), nil
	case ast.OpGt:
		return object.Bool(cv > 0), nil
	case ast.OpLe:
		return object.Bool(cv <= 0), nil
	case ast.OpGe:
		return object.Bool(cv >= 0), nil
	}
	return object.Value{}, fmt.Errorf("algebra: bad comparison %q", c.Op)
}
func (c CmpOf) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// ArithOf applies an arithmetic operator to two arrows' results.
type ArithOf struct {
	Op   ast.ArithOp
	L, R Term
}

func (a ArithOf) Apply(in object.Value) (object.Value, error) {
	l, err := a.L.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if l.IsBottom() {
		return l, nil
	}
	r, err := a.R.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if r.IsBottom() {
		return r, nil
	}
	return eval.Arith(a.Op, l, r)
}
func (a ArithOf) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// --- Sets ------------------------------------------------------------------------

// EmptyOf is x ↦ {}.
type EmptyOf struct{}

func (EmptyOf) Apply(object.Value) (object.Value, error) { return object.EmptySet, nil }
func (EmptyOf) String() string                           { return "empty" }

// SingOf is η: x ↦ {F x}.
type SingOf struct{ F Term }

func (s SingOf) Apply(in object.Value) (object.Value, error) {
	v, err := s.F.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if v.IsBottom() {
		return v, nil
	}
	return object.Set(v), nil
}
func (s SingOf) String() string { return fmt.Sprintf("eta(%s)", s.F) }

// UnionOf is F x ∪ G x.
type UnionOf struct{ L, R Term }

func (u UnionOf) Apply(in object.Value) (object.Value, error) {
	l, err := u.L.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if l.IsBottom() {
		return l, nil
	}
	r, err := u.R.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if r.IsBottom() {
		return r, nil
	}
	return object.Union(l, r)
}
func (u UnionOf) String() string { return fmt.Sprintf("(%s union %s)", u.L, u.R) }

// Ext is the extension combinator (the algebra's counterpart of the big
// union): input γ, with Over : γ → {s} and F : (γ, x) → {t},
//
//	Ext(F, Over)(γ) = ⋃ { F(γ, x) | x ∈ Over(γ) }.
type Ext struct{ F, Over Term }

func (e Ext) Apply(in object.Value) (object.Value, error) {
	s, err := e.Over.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if s.IsBottom() {
		return s, nil
	}
	if s.Kind != object.KSet {
		return object.Value{}, fmt.Errorf("algebra: ext over %s", s.Kind)
	}
	var all []object.Value
	for _, x := range s.Elems {
		v, err := e.F.Apply(object.Tuple(in, x))
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		if v.Kind != object.KSet {
			return object.Value{}, fmt.Errorf("algebra: ext body produced %s", v.Kind)
		}
		all = append(all, v.Elems...)
	}
	return object.Set(all...), nil
}
func (e Ext) String() string { return fmt.Sprintf("ext(%s; %s)", e.F, e.Over) }

// GetOf is get ∘ F.
type GetOf struct{ F Term }

func (g GetOf) Apply(in object.Value) (object.Value, error) {
	s, err := g.F.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if s.IsBottom() {
		return s, nil
	}
	if s.Kind != object.KSet {
		return object.Value{}, fmt.Errorf("algebra: get of %s", s.Kind)
	}
	if len(s.Elems) != 1 {
		return object.Bottom("algebra: get of a non-singleton"), nil
	}
	return s.Elems[0], nil
}
func (g GetOf) String() string { return fmt.Sprintf("get(%s)", g.F) }

// --- Naturals ----------------------------------------------------------------------

// GenOf is gen ∘ F.
type GenOf struct{ F Term }

func (g GenOf) Apply(in object.Value) (object.Value, error) {
	v, err := g.F.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if v.IsBottom() {
		return v, nil
	}
	n, err := v.AsNat()
	if err != nil {
		return object.Value{}, fmt.Errorf("algebra: gen: %w", err)
	}
	elems := make([]object.Value, n)
	for i := int64(0); i < n; i++ {
		elems[i] = object.Nat(i)
	}
	return object.SetFromSorted(elems), nil
}
func (g GenOf) String() string { return fmt.Sprintf("gen(%s)", g.F) }

// SumOf is the summation combinator: Σ { F(γ, x) | x ∈ Over(γ) }.
type SumOf struct{ F, Over Term }

func (s SumOf) Apply(in object.Value) (object.Value, error) {
	set, err := s.Over.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if set.IsBottom() {
		return set, nil
	}
	if set.Kind != object.KSet {
		return object.Value{}, fmt.Errorf("algebra: sum over %s", set.Kind)
	}
	var accN int64
	var accR float64
	isReal := false
	for _, x := range set.Elems {
		v, err := s.F.Apply(object.Tuple(in, x))
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		switch v.Kind {
		case object.KNat:
			accN += v.N
			accR += float64(v.N)
		case object.KReal:
			isReal = true
			accR += v.R
		default:
			return object.Value{}, fmt.Errorf("algebra: sum of %s", v.Kind)
		}
	}
	if isReal {
		return object.Real(accR), nil
	}
	return object.Nat(accN), nil
}
func (s SumOf) String() string { return fmt.Sprintf("sum(%s; %s)", s.F, s.Over) }

// --- Arrays: the paper's mk_arr, subscripting, dims, index --------------------------

// MkArr is the paper's mk_arr(f) generalized to k dimensions and an
// environment: with Bounds : γ → N each and F : (γ, (i1,...,ik)) → t,
//
//	MkArr(F, Bounds)(γ) = [[ F(γ, idx) | idx < Bounds(γ) ]].
type MkArr struct {
	F      Term
	Bounds []Term
}

func (m MkArr) Apply(in object.Value) (object.Value, error) {
	shape := make([]int, len(m.Bounds))
	for j, b := range m.Bounds {
		v, err := b.Apply(in)
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() {
			return v, nil
		}
		n, err := v.AsNat()
		if err != nil {
			return object.Value{}, fmt.Errorf("algebra: mk_arr bound %d: %w", j+1, err)
		}
		shape[j] = int(n)
	}
	var bottom object.Value
	sawBottom := false
	arr, err := object.Tabulate(shape, func(idx []int) (object.Value, error) {
		var iv object.Value
		if len(idx) == 1 {
			iv = object.Nat(int64(idx[0]))
		} else {
			elems := make([]object.Value, len(idx))
			for d, i := range idx {
				elems[d] = object.Nat(int64(i))
			}
			iv = object.Tuple(elems...)
		}
		v, err := m.F.Apply(object.Tuple(in, iv))
		if err != nil {
			return object.Value{}, err
		}
		if v.IsBottom() && !sawBottom {
			bottom, sawBottom = v, true
		}
		return v, nil
	})
	if err != nil {
		return object.Value{}, err
	}
	if sawBottom {
		return bottom, nil
	}
	return arr, nil
}

func (m MkArr) String() string {
	parts := make([]string, len(m.Bounds))
	for i, b := range m.Bounds {
		parts[i] = b.String()
	}
	return fmt.Sprintf("mk_arr(%s; %s)", m.F, strings.Join(parts, ", "))
}

// SubOf subscripts Arr's result at Index's result.
type SubOf struct{ Arr, Index Term }

func (s SubOf) Apply(in object.Value) (object.Value, error) {
	a, err := s.Arr.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if a.IsBottom() {
		return a, nil
	}
	i, err := s.Index.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if i.IsBottom() {
		return i, nil
	}
	return object.SubValue(a, i)
}
func (s SubOf) String() string { return fmt.Sprintf("sub(%s; %s)", s.Arr, s.Index) }

// DimOf is dim_k ∘ F.
type DimOf struct {
	K int
	F Term
}

func (d DimOf) Apply(in object.Value) (object.Value, error) {
	a, err := d.F.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if a.IsBottom() {
		return a, nil
	}
	if a.Kind == object.KArray && len(a.Shape) != d.K {
		return object.Value{}, fmt.Errorf("algebra: dim_%d of rank-%d array", d.K, len(a.Shape))
	}
	return object.DimValue(a)
}
func (d DimOf) String() string { return fmt.Sprintf("dim_%d(%s)", d.K, d.F) }

// IndexOf is index_k ∘ F.
type IndexOf struct {
	K int
	F Term
}

func (ix IndexOf) Apply(in object.Value) (object.Value, error) {
	s, err := ix.F.Apply(in)
	if err != nil {
		return object.Value{}, err
	}
	if s.IsBottom() {
		return s, nil
	}
	return object.Index(s, ix.K)
}
func (ix IndexOf) String() string { return fmt.Sprintf("index_%d(%s)", ix.K, ix.F) }

// BottomOf is x ↦ ⊥.
type BottomOf struct{}

func (BottomOf) Apply(object.Value) (object.Value, error) {
	return object.Bottom("algebra: explicit bottom"), nil
}
func (BottomOf) String() string { return "bottom" }
