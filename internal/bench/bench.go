// Package bench defines the workloads for the experiment suite in
// DESIGN.md. Both the testing.B benchmarks (bench_test.go at the module
// root) and the report harness (cmd/aqlbench) build their measurements
// from these definitions so that the two always agree on what is measured.
//
// The paper has no numeric results tables; its measurable claims are the
// complexity statements of sections 1-3 and the optimizer effects of
// section 5. Each workload here regenerates one of them.
package bench

import (
	"fmt"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/rank"
	"github.com/aqldb/aql/internal/repl"
	"github.com/aqldb/aql/internal/types"
	"github.com/aqldb/aql/internal/weather"
)

// Engine, when non-empty, selects the execution engine ("interp" or
// "compiled") every MustSession installs; cmd/aqlbench sets it from its
// -engine flag so one binary can measure either engine.
var Engine string

// Profiling, when non-empty, sets the operator-profiling level ("off",
// "sampled" or "full") every MustSession installs; cmd/aqlbench sets it
// from its -proflevel flag so the experiments can emit span-annotated
// reports (or prove the off-level adds nothing).
var Profiling string

// MustSession returns a standard session or panics; benchmarks have no
// error channel worth threading.
func MustSession() *repl.Session {
	s, err := repl.New()
	if err != nil {
		panic(err)
	}
	if Engine != "" {
		if err := s.SetEngine(Engine); err != nil {
			panic(err)
		}
	}
	if Profiling != "" {
		if err := s.SetProfiling(Profiling); err != nil {
			panic(err)
		}
	}
	return s
}

// --- E4: the motivating query ---------------------------------------------------

// MotivatingQuery is the section 1 query, verbatim.
const MotivatingQuery = `{d | \d <- gen!30,
  \WS' == evenpos!(proj_col!(WS, 0)),
  \TRW == zip_3!(T, RH, WS'),
  \A == subseq!(TRW, d*24, d*24+23),
  heatindex!(A) > threshold}`

// SetupWeather binds T, RH, WS and threshold in the session from the
// synthetic June.
func SetupWeather(s *repl.Session) {
	m := weather.Generate(weather.DefaultConfig())
	s.Env.SetVal("T", realVector(m.T), types.MustParse("[[real]]"))
	s.Env.SetVal("RH", realVector(m.RH), types.MustParse("[[real]]"))
	ws := make([]object.Value, len(m.WS))
	for i, f := range m.WS {
		ws[i] = object.Real(f)
	}
	arr, err := object.Array([]int{m.Cfg.Days * 48, m.Cfg.Altitudes}, ws)
	if err != nil {
		panic(err)
	}
	s.Env.SetVal("WS", arr, types.MustParse("[[real]]_2"))
	s.Env.SetVal("threshold", object.Real(105), types.Real)
}

func realVector(fs []float64) object.Value {
	data := make([]object.Value, len(fs))
	for i, f := range fs {
		data[i] = object.Real(f)
	}
	return object.Vector(data...)
}

// --- E6: zip with arrays is O(n); without arrays it is a join ---------------------

// ZipArrayQuery zips two length-n arrays with the array macro (linear).
const ZipArrayQuery = `zip!(A, B)`

// ZipSetsQuery performs the same pairing over the graph encodings of the
// arrays with a set join — the best a language without arrays can do
// declaratively, and quadratic under naive evaluation (section 1's claim).
const ZipSetsQuery = `{(i, (a, b)) | (\i, \a) <- G, (i, \b) <- H}`

// SetupZip binds A, B (arrays) and G, H (their graphs) of length n.
func SetupZip(s *repl.Session, n int) {
	a := make([]object.Value, n)
	b := make([]object.Value, n)
	for i := range a {
		a[i] = object.Nat(int64((i*7919 + 13) % 1000))
		b[i] = object.Nat(int64((i*104729 + 7) % 1000))
	}
	A, B := object.Vector(a...), object.Vector(b...)
	s.Env.SetVal("A", A, types.MustParse("[[nat]]"))
	s.Env.SetVal("B", B, types.MustParse("[[nat]]"))
	G, err := rank.TranslateValue(A)
	if err != nil {
		panic(err)
	}
	H, err := rank.TranslateValue(B)
	if err != nil {
		panic(err)
	}
	s.Env.SetVal("G", G, types.MustParse("{nat * nat}"))
	s.Env.SetVal("H", H, types.MustParse("{nat * nat}"))
}

// --- E7: hist vs hist' -------------------------------------------------------------

// HistMacros defines both versions of section 2's histogram.
const HistMacros = `
macro \hist = fn \e =>
  [[ summap(fn \j => if e[j] = i then 1 else 0)!(dom!e)
     | \i < max!(rng!e) + 1 ]];
macro \hist' = fn \e =>
  let val \g = index_1!{p | [\j : \x] <- e, \p == (x, j)}
  in [[ count!(g[i]) | \i < len!g ]] end;
`

// SetupHist binds A: a length-n array of naturals below m, with the range
// pinned so both versions see the same m buckets.
func SetupHist(s *repl.Session, n, m int) {
	data := make([]object.Value, n)
	for i := range data {
		data[i] = object.Nat(int64((i * 7919) % m))
	}
	data[0] = object.Nat(int64(m - 1))
	s.Env.SetVal("A", object.Vector(data...), types.MustParse("[[nat]]"))
}

// --- E8: literal arrays: monoid append vs the row-major construct -------------------

// AppendChainExpr builds [[0]] @ [[1]] @ ... @ [[n-1]] with the append
// tabulation of section 3 — the O(n²) way to write a literal. Each
// intermediate array is let-bound ((λa. ...)(chain)) so it is evaluated
// once, matching the call-by-value cost model behind the paper's O(n²)
// claim; inlining the chains textually would instead be exponential.
func AppendChainExpr(n int) ast.Expr {
	appendOf := func(a, b ast.Expr) ast.Expr {
		// [[ if i < len(a) then a[i] else b[i - len(a)] | i < len a + len b ]]
		return &ast.ArrayTab{
			Head: &ast.If{
				Cond: &ast.Cmp{Op: ast.OpLt, L: &ast.Var{Name: "i"}, R: &ast.Dim{K: 1, Arr: a}},
				Then: &ast.Subscript{Arr: a, Index: &ast.Var{Name: "i"}},
				Else: &ast.Subscript{Arr: b, Index: &ast.Arith{
					Op: ast.OpSub, L: &ast.Var{Name: "i"}, R: &ast.Dim{K: 1, Arr: a}}},
			},
			Idx: []string{"i"},
			Bounds: []ast.Expr{&ast.Arith{
				Op: ast.OpAdd, L: &ast.Dim{K: 1, Arr: a}, R: &ast.Dim{K: 1, Arr: b}}},
		}
	}
	out := ast.Expr(&ast.MkArray{Dims: []ast.Expr{&ast.NatLit{Val: 1}},
		Elems: []ast.Expr{&ast.NatLit{Val: 0}}})
	for i := 1; i < n; i++ {
		single := &ast.MkArray{Dims: []ast.Expr{&ast.NatLit{Val: 1}},
			Elems: []ast.Expr{&ast.NatLit{Val: int64(i)}}}
		a := ast.Fresh("chain")
		out = &ast.App{
			Fn:  &ast.Lam{Param: a, Body: appendOf(&ast.Var{Name: a}, single)},
			Arg: out,
		}
	}
	return out
}

// RowMajorExpr builds [[n; 0, 1, ..., n-1]] — the O(n) literal construct
// that section 3 adds for exactly this reason.
func RowMajorExpr(n int) ast.Expr {
	elems := make([]ast.Expr, n)
	for i := range elems {
		elems[i] = &ast.NatLit{Val: int64(i)}
	}
	return &ast.MkArray{Dims: []ast.Expr{&ast.NatLit{Val: int64(n)}}, Elems: elems}
}

// --- E9: the array rules avoid materialization ---------------------------------------

// BetaPExpr is [[ i*i | i < n ]][k]: β^p reduces it to a constant-time
// guard regardless of n.
func BetaPExpr(n int) ast.Expr {
	return &ast.Subscript{
		Arr: &ast.ArrayTab{
			Head:   &ast.Arith{Op: ast.OpMul, L: &ast.Var{Name: "i"}, R: &ast.Var{Name: "i"}},
			Idx:    []string{"i"},
			Bounds: []ast.Expr{&ast.NatLit{Val: int64(n)}},
		},
		Index: &ast.NatLit{Val: int64(n / 2)},
	}
}

// EtaPExpr is [[ A[i] | i < len A ]]: η^p collapses the retabulation.
func EtaPExpr() ast.Expr {
	return &ast.ArrayTab{
		Head:   &ast.Subscript{Arr: &ast.Var{Name: "A"}, Index: &ast.Var{Name: "i"}},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{&ast.Dim{K: 1, Arr: &ast.Var{Name: "A"}}},
	}
}

// DeltaPExpr is len([[ i*i | i < n ]]): δ^p avoids the tabulation.
func DeltaPExpr(n int) ast.Expr {
	return &ast.Dim{K: 1, Arr: &ast.ArrayTab{
		Head:   &ast.Arith{Op: ast.OpMul, L: &ast.Var{Name: "i"}, R: &ast.Var{Name: "i"}},
		Idx:    []string{"i"},
		Bounds: []ast.Expr{&ast.NatLit{Val: int64(n)}},
	}}
}

// SetupVector binds A to a length-n vector.
func SetupVector(s *repl.Session, n int) {
	data := make([]object.Value, n)
	for i := range data {
		data[i] = object.Nat(int64(i))
	}
	s.Env.SetVal("A", object.Vector(data...), types.MustParse("[[nat]]"))
}

// --- E10/E11: fusion queries ----------------------------------------------------------

// TransposeQuery transposes a tabulation; the optimizer re-indexes it in
// place (E10).
const TransposeQuery = `transpose![[ i * 10 + j | \i < m, \j < n ]]`

// SetupTranspose binds the dimension vals.
func SetupTranspose(s *repl.Session, m, n int) {
	s.Env.SetVal("m", object.Nat(int64(m)), types.Nat)
	s.Env.SetVal("n", object.Nat(int64(n)), types.Nat)
}

// The two orderings of E11; after normalization they evaluate with the
// same cost.
const (
	ZipThenSubseqQuery = `subseq!(zip!(A, B), lo, hi)`
	SubseqThenZipQuery = `zip!(subseq!(A, lo, hi), subseq!(B, lo, hi))`
)

// SetupZipSubseq binds A, B, lo, hi.
func SetupZipSubseq(s *repl.Session, n int) {
	SetupZip(s, n)
	s.Env.SetVal("lo", object.Nat(int64(n/4)), types.Nat)
	s.Env.SetVal("hi", object.Nat(int64(3*n/4)), types.Nat)
}

// --- E19: execution engines -------------------------------------------------------------

// The engine-comparison workloads are tabulation-heavy by design — the
// compiled engine's case — and are written as val declarations so their
// results are bound (the optimizer's δ^p would erase an unobserved
// tabulation, and a benchmark of dead code measures nothing).

// EngineSetup binds n and two n×n matrices for the matmul workload.
const EngineSetup = `val n = 60;
val A = [[ (i*j + 7) % 93 | \i < n, \j < n ]];
val B = [[ (i+j) % 41 | \i < n, \j < n ]];`

// PureTabQuery materializes one large flat tabulation: per-element work is
// tiny, so it isolates the per-node execution overhead of an engine.
const PureTabQuery = `val T = [[ (i*i + 7) % 93 | \i < 300000 ]];`

// MatmulQuery is the dense matrix product of section 3, with closure
// application, set generation and summation in the inner loop.
const MatmulQuery = `val C = [[ summap(fn \k => A[i,k] * B[k,j])!(gen!n) | \i < n, \j < n ]];`

// --- Measurement helper -----------------------------------------------------------------

// Steps compiles (optionally optimizes) and evaluates a query, returning
// the evaluator step count — the machine-independent cost measure used in
// EXPERIMENTS.md.
func Steps(s *repl.Session, src string, optimize bool) (int64, error) {
	core, _, err := s.Compile(src)
	if err != nil {
		return 0, fmt.Errorf("bench: %s: %w", src, err)
	}
	if optimize {
		core = s.Env.Optimizer.Optimize(core)
	}
	if _, err := s.Eval(core); err != nil {
		return 0, err
	}
	return s.LastSteps, nil
}
