// Package weather synthesizes the meteorological inputs of the paper's
// motivating example (section 1): a month of NYC June weather as
//
//   - T:  a one-dimensional array of hourly surface temperatures,
//   - RH: a one-dimensional array of hourly relative humidities,
//   - WS: a two-dimensional array of half-hourly wind speeds over a range
//     of altitudes (note the extra dimension and the finer gridding).
//
// The paper used real observations; this generator is the substitution
// documented in DESIGN.md. It produces a deterministic diurnal model —
// a sinusoidal daily temperature cycle with per-day offsets, humidity
// anticorrelated with temperature, and altitude-increasing wind — so the
// downstream query exercises exactly the same code paths (regridding,
// projection, zip_3, subseq, external heat-index filter) as real data
// would, with known "unbearably hot" days for verification.
package weather

import (
	"fmt"
	"math"
	"path/filepath"

	"github.com/aqldb/aql/internal/netcdf"
)

// Config parameterizes the synthetic month.
type Config struct {
	Days      int   // days in the month (30 for June)
	Altitudes int   // number of altitude levels in WS
	HotDays   []int // 0-based days made dangerously hot
	Seed      int64 // perturbation seed
}

// DefaultConfig is the motivating example's June: 30 days, 5 altitude
// levels, with days 11, 17 and 18 unbearably hot.
func DefaultConfig() Config {
	return Config{Days: 30, Altitudes: 5, HotDays: []int{11, 17, 18}, Seed: 1996}
}

// Month is the generated data.
type Month struct {
	Cfg Config
	T   []float64 // hourly temperature (°F), Days*24 values
	RH  []float64 // hourly relative humidity (%), Days*24 values
	WS  []float64 // half-hourly wind speed (mph), row-major (Days*48) x Altitudes
}

// Generate builds the month.
func Generate(cfg Config) *Month {
	hot := map[int]bool{}
	for _, d := range cfg.HotDays {
		hot[d] = true
	}
	hours := cfg.Days * 24
	m := &Month{
		Cfg: cfg,
		T:   make([]float64, hours),
		RH:  make([]float64, hours),
		WS:  make([]float64, cfg.Days*48*cfg.Altitudes),
	}
	rng := newLCG(cfg.Seed)
	for h := 0; h < hours; h++ {
		day := h / 24
		hourOfDay := float64(h % 24)
		// Diurnal cycle peaking at 15:00.
		base := 78 + 9*math.Sin(2*math.Pi*(hourOfDay-9)/24)
		if hot[day] {
			base += 14 // a heat wave day
		}
		jitter := rng.symmetric() * 1.5
		m.T[h] = base + jitter
		// Humidity anticorrelated with temperature; hot days are also muggy.
		rh := 95 - 0.75*(m.T[h]-60)
		if hot[day] {
			rh += 18
		}
		m.RH[h] = clamp(rh+rng.symmetric()*4, 20, 100)
	}
	for s := 0; s < cfg.Days*48; s++ {
		hourOfDay := float64(s%48) / 2
		for a := 0; a < cfg.Altitudes; a++ {
			// Wind strengthens with altitude and in the afternoon.
			w := 4 + 2.5*float64(a) + 2*math.Sin(2*math.Pi*(hourOfDay-12)/24)
			m.WS[s*cfg.Altitudes+a] = math.Max(0, w+rng.symmetric())
		}
	}
	return m
}

// WriteNetCDF writes T, RH and WS as three NetCDF classic files in dir,
// named temp.nc, rh.nc and wind.nc, returning their paths. The files are
// genuine .nc bytes readable by any NetCDF implementation.
func (m *Month) WriteNetCDF(dir string) (tPath, rhPath, wsPath string, err error) {
	tPath = filepath.Join(dir, "temp.nc")
	rhPath = filepath.Join(dir, "rh.nc")
	wsPath = filepath.Join(dir, "wind.nc")

	write1d := func(path, name, units string, data []float64) error {
		b := netcdf.NewBuilder()
		dim, err := b.AddDim("time", len(data))
		if err != nil {
			return err
		}
		attrs := []netcdf.Attr{{Name: "units", Type: netcdf.Char, Values: units}}
		if err := b.AddVar(name, netcdf.Double, []int{dim}, attrs, data); err != nil {
			return err
		}
		return b.WriteFile(path)
	}
	if err = write1d(tPath, "temp", "degF", m.T); err != nil {
		return "", "", "", fmt.Errorf("weather: %w", err)
	}
	if err = write1d(rhPath, "rh", "percent", m.RH); err != nil {
		return "", "", "", fmt.Errorf("weather: %w", err)
	}
	b := netcdf.NewBuilder()
	td, err := b.AddDim("halfhour", m.Cfg.Days*48)
	if err != nil {
		return "", "", "", fmt.Errorf("weather: %w", err)
	}
	ad, err := b.AddDim("altitude", m.Cfg.Altitudes)
	if err != nil {
		return "", "", "", fmt.Errorf("weather: %w", err)
	}
	attrs := []netcdf.Attr{{Name: "units", Type: netcdf.Char, Values: "mph"}}
	if err = b.AddVar("wind", netcdf.Double, []int{td, ad}, attrs, m.WS); err != nil {
		return "", "", "", fmt.Errorf("weather: %w", err)
	}
	if err = b.WriteFile(wsPath); err != nil {
		return "", "", "", fmt.Errorf("weather: %w", err)
	}
	return tPath, rhPath, wsPath, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// lcg is a small deterministic generator so the data does not depend on
// math/rand's version-specific stream.
type lcg struct{ state uint64 }

func newLCG(seed int64) *lcg {
	return &lcg{state: uint64(seed)*6364136223846793005 + 1442695040888963407}
}

func (l *lcg) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state
}

// symmetric returns a value in [-1, 1).
func (l *lcg) symmetric() float64 {
	return float64(l.next()>>11)/float64(1<<53)*2 - 1
}
