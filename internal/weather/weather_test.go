package weather

import (
	"path/filepath"
	"testing"

	"github.com/aqldb/aql/internal/netcdf"
	"github.com/aqldb/aql/internal/prim"
)

func TestGenerateShapes(t *testing.T) {
	cfg := DefaultConfig()
	m := Generate(cfg)
	if len(m.T) != 720 || len(m.RH) != 720 {
		t.Fatalf("T/RH lengths = %d/%d, want 720", len(m.T), len(m.RH))
	}
	if len(m.WS) != 30*48*cfg.Altitudes {
		t.Fatalf("WS length = %d", len(m.WS))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	for i := range a.T {
		if a.T[i] != b.T[i] {
			t.Fatal("generation is not deterministic")
		}
	}
}

func TestPhysicalPlausibility(t *testing.T) {
	m := Generate(DefaultConfig())
	for h, temp := range m.T {
		if temp < 40 || temp > 115 {
			t.Fatalf("T[%d] = %.1f out of plausible range", h, temp)
		}
		if m.RH[h] < 15 || m.RH[h] > 100 {
			t.Fatalf("RH[%d] = %.1f out of range", h, m.RH[h])
		}
	}
	for i, w := range m.WS {
		if w < 0 || w > 60 {
			t.Fatalf("WS[%d] = %.1f out of range", i, w)
		}
	}
	// Wind increases with altitude on average.
	cfg := DefaultConfig()
	var lo, hi float64
	for s := 0; s < cfg.Days*48; s++ {
		lo += m.WS[s*cfg.Altitudes]
		hi += m.WS[s*cfg.Altitudes+cfg.Altitudes-1]
	}
	if hi <= lo {
		t.Error("wind should increase with altitude")
	}
}

func TestHotDaysAreUnbearable(t *testing.T) {
	cfg := DefaultConfig()
	m := Generate(cfg)
	hot := map[int]bool{}
	for _, d := range cfg.HotDays {
		hot[d] = true
	}
	// Day-maximum heat index must separate hot days from normal ones.
	for d := 0; d < cfg.Days; d++ {
		maxHI := -1e9
		for h := d * 24; h < (d+1)*24; h++ {
			if hi := prim.HeatIndex(m.T[h], m.RH[h]); hi > maxHI {
				maxHI = hi
			}
		}
		if hot[d] && maxHI < 105 {
			t.Errorf("hot day %d has max heat index %.1f < 105", d, maxHI)
		}
		if !hot[d] && maxHI >= 105 {
			t.Errorf("normal day %d has max heat index %.1f >= 105", d, maxHI)
		}
	}
}

func TestWriteNetCDF(t *testing.T) {
	dir := t.TempDir()
	m := Generate(DefaultConfig())
	tPath, rhPath, wsPath, err := m.WriteNetCDF(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(tPath) != "temp.nc" {
		t.Errorf("tPath = %s", tPath)
	}
	// The files parse and round-trip the data.
	f, err := netcdf.Open(tPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	slab, err := f.ReadAll("temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(slab.Values) != len(m.T) {
		t.Fatalf("read %d temps, want %d", len(slab.Values), len(m.T))
	}
	for i := range m.T {
		if slab.Values[i] != m.T[i] {
			t.Fatalf("temp[%d] = %v, want %v", i, slab.Values[i], m.T[i])
		}
	}
	w, err := netcdf.Open(wsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	wv, err := w.Var("wind")
	if err != nil {
		t.Fatal(err)
	}
	if len(wv.Dims) != 2 {
		t.Errorf("wind rank = %d, want 2", len(wv.Dims))
	}
	if _, err := netcdf.Open(rhPath); err != nil {
		t.Fatal(err)
	}
}
