package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStringRendering(t *testing.T) {
	tests := []struct {
		typ  *Type
		want string
	}{
		{Bool, "bool"},
		{Nat, "nat"},
		{Real, "real"},
		{String, "string"},
		{Unit, "unit"},
		{Base("temp"), "temp"},
		{Set(Nat), "{nat}"},
		{Bag(Nat), "{|nat|}"},
		{Array(Real, 1), "[[real]]"},
		{Array(Real, 3), "[[real]]_3"},
		{Tuple(Nat, Bool), "nat * bool"},
		{Tuple(Nat, Tuple(Bool, Real)), "nat * (bool * real)"},
		{Func(Nat, Bool), "nat -> bool"},
		{Func(Tuple(Real, Real, Nat), Nat), "(real * real * nat) -> nat"},
		{Func(Nat, Func(Nat, Nat)), "nat -> nat -> nat"},
		{Func(Func(Nat, Nat), Nat), "(nat -> nat) -> nat"},
		{Set(Tuple(Nat, Set(Nat))), "{nat * {nat}}"},
		{Array(Tuple(Real, Real, Real), 2), "[[real * real * real]]_2"},
		{Var("a"), "'a"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"bool", "nat", "real", "string", "temp",
		"{nat}", "{|nat|}", "[[real]]", "[[real]]_3",
		"nat * bool", "nat * (bool * real)", "nat * bool * real",
		"nat -> bool", "(real * real * nat) -> nat",
		"nat -> nat -> nat", "(nat -> nat) -> nat",
		"{nat * {nat}}", "[[real * real * real]]_2",
		"[[{nat}]]_2", "{[[nat]]_4}", "'a", "'a -> {'b}",
	}
	for _, src := range srcs {
		typ, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		back, err := Parse(typ.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", typ.String(), err)
		}
		if !Equal(typ, back) {
			t.Errorf("round trip of %q: got %s then %s", src, typ, back)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "{nat", "[[nat]", "[[nat]]_0", "nat *", "-> nat", "(nat", "{|nat}", "nat )", "'",
	}
	for _, src := range bad {
		if typ, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) = %s, want error", src, typ)
		}
	}
}

func TestEqual(t *testing.T) {
	a := Array(Tuple(Nat, Real), 2)
	b := Array(Tuple(Nat, Real), 2)
	if !Equal(a, b) {
		t.Error("structurally equal arrays reported unequal")
	}
	if Equal(a, Array(Tuple(Nat, Real), 3)) {
		t.Error("arrays of different dimensionality reported equal")
	}
	if Equal(Set(Nat), Bag(Nat)) {
		t.Error("set and bag reported equal")
	}
	if Equal(Base("a"), Base("b")) {
		t.Error("distinct base types reported equal")
	}
	if Equal(nil, Nat) || !Equal(nil, nil) {
		t.Error("nil handling wrong")
	}
}

func TestTupleConventions(t *testing.T) {
	if Tuple() != Unit {
		t.Error("0-ary tuple should be Unit")
	}
	if Tuple(Nat) != Nat {
		t.Error("1-ary tuple should be its component")
	}
	if got := Tuple(Nat, Nat).Arity(); got != 2 {
		t.Errorf("Arity = %d, want 2", got)
	}
	if got := Nat.Arity(); got != 1 {
		t.Errorf("Arity(nat) = %d, want 1", got)
	}
	if got := Unit.Arity(); got != 0 {
		t.Errorf("Arity(unit) = %d, want 0", got)
	}
}

func TestNatTuple(t *testing.T) {
	if NatTuple(1) != Nat {
		t.Error("NatTuple(1) should be Nat")
	}
	want := Tuple(Nat, Nat, Nat)
	if !Equal(NatTuple(3), want) {
		t.Errorf("NatTuple(3) = %s, want %s", NatTuple(3), want)
	}
}

func TestIsObjectAndOrderable(t *testing.T) {
	if !Set(Tuple(Nat, Array(Real, 2))).IsObject() {
		t.Error("nested object type reported non-object")
	}
	if Func(Nat, Nat).IsObject() {
		t.Error("function type reported object")
	}
	if Set(Func(Nat, Nat)).IsObject() {
		t.Error("set of functions reported object")
	}
	if !Array(Set(Nat), 2).Orderable() {
		t.Error("array of sets should be orderable")
	}
	if Var("a").Orderable() {
		t.Error("type variable should not be orderable")
	}
}

func TestUnify(t *testing.T) {
	s := Subst{}
	// 'a * nat  ~  bool * 'b
	if err := s.Unify(Tuple(Var("a"), Nat), Tuple(Bool, Var("b"))); err != nil {
		t.Fatalf("Unify: %v", err)
	}
	if got := s.Apply(Var("a")); !Equal(got, Bool) {
		t.Errorf("'a = %s, want bool", got)
	}
	if got := s.Apply(Var("b")); !Equal(got, Nat) {
		t.Errorf("'b = %s, want nat", got)
	}
}

func TestUnifyTransitive(t *testing.T) {
	s := Subst{}
	if err := s.Unify(Var("a"), Var("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Unify(Var("b"), Set(Nat)); err != nil {
		t.Fatal(err)
	}
	if got := s.Apply(Var("a")); !Equal(got, Set(Nat)) {
		t.Errorf("'a = %s, want {nat}", got)
	}
}

func TestUnifyOccursCheck(t *testing.T) {
	s := Subst{}
	if err := s.Unify(Var("a"), Set(Var("a"))); err == nil {
		t.Error("expected occurs-check failure for 'a ~ {'a}")
	}
}

func TestUnifyMismatch(t *testing.T) {
	cases := [][2]*Type{
		{Nat, Bool},
		{Set(Nat), Bag(Nat)},
		{Array(Nat, 1), Array(Nat, 2)},
		{Tuple(Nat, Nat), Tuple(Nat, Nat, Nat)},
		{Base("a"), Base("b")},
	}
	for _, c := range cases {
		s := Subst{}
		if err := s.Unify(c[0], c[1]); err == nil {
			t.Errorf("Unify(%s, %s) succeeded, want error", c[0], c[1])
		}
	}
}

func TestSubstApplyIdempotentOnGround(t *testing.T) {
	s := Subst{"a": Nat}
	g := Array(Tuple(Real, Set(Bool)), 2)
	if s.Apply(g) != g {
		t.Error("Apply should return ground types unchanged (same pointer)")
	}
}

// genType builds a deterministic ground type from a seed; used by the
// property test below.
func genType(seed uint64, depth int) *Type {
	bases := []*Type{Bool, Nat, Real, String, Base("b0"), Base("b1")}
	if depth <= 0 {
		return bases[seed%uint64(len(bases))]
	}
	switch seed % 5 {
	case 0:
		return bases[(seed/5)%uint64(len(bases))]
	case 1:
		return Set(genType(seed/5, depth-1))
	case 2:
		return Bag(genType(seed/5, depth-1))
	case 3:
		return Array(genType(seed/5, depth-1), int(seed/7%3)+1)
	default:
		return Tuple(genType(seed/5, depth-1), genType(seed/11, depth-1))
	}
}

func TestPropParsePrintIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		typ := genType(seed, 4)
		back, err := Parse(typ.String())
		return err == nil && Equal(typ, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropUnifyReflexive(t *testing.T) {
	f := func(seed uint64) bool {
		typ := genType(seed, 4)
		s := Subst{}
		return s.Unify(typ, typ) == nil && len(s) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFreeVars(t *testing.T) {
	typ := Func(Var("a"), Set(Tuple(Var("b"), Var("a"))))
	vars := map[string]bool{}
	typ.FreeVars(vars)
	if len(vars) != 2 || !vars["a"] || !vars["b"] {
		t.Errorf("FreeVars = %v, want {a, b}", vars)
	}
	if !strings.Contains(typ.String(), "'a") {
		t.Errorf("variable rendering missing quote: %s", typ)
	}
}
