package types

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a type written in the paper's concrete syntax, as produced by
// Type.String:
//
//	bool | nat | real | string | ident          base types
//	t1 * t2 * ... * tk                           products
//	{t}                                          sets
//	{|t|}                                        bags
//	[[t]] | [[t]]_k                              arrays
//	t1 -> t2                                     functions (right associative)
//	(t)                                          grouping
//	't                                           type variables
func Parse(src string) (*Type, error) {
	p := &typeParser{src: src}
	t, err := p.arrow()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("type %q: trailing input at offset %d", src, p.pos)
	}
	return t, nil
}

// MustParse is Parse that panics on error; for tests and static tables.
func MustParse(src string) *Type {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

type typeParser struct {
	src string
	pos int
}

func (p *typeParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *typeParser) has(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *typeParser) errf(format string, args ...any) error {
	return fmt.Errorf("type %q at offset %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

// arrow ::= product ('->' arrow)?
func (p *typeParser) arrow() (*Type, error) {
	left, err := p.product()
	if err != nil {
		return nil, err
	}
	if p.has("->") {
		right, err := p.arrow()
		if err != nil {
			return nil, err
		}
		return Func(left, right), nil
	}
	return left, nil
}

// product ::= atom ('*' atom)*
func (p *typeParser) product() (*Type, error) {
	first, err := p.atom()
	if err != nil {
		return nil, err
	}
	elts := []*Type{first}
	for p.has("*") {
		next, err := p.atom()
		if err != nil {
			return nil, err
		}
		elts = append(elts, next)
	}
	if len(elts) == 1 {
		return first, nil
	}
	return Tuple(elts...), nil
}

func (p *typeParser) atom() (*Type, error) {
	p.skipSpace()
	switch {
	case p.has("[["):
		elem, err := p.arrow()
		if err != nil {
			return nil, err
		}
		if !p.has("]]") {
			return nil, p.errf("expected ]]")
		}
		k := 1
		if p.has("_") {
			n, err := p.number()
			if err != nil {
				return nil, err
			}
			k = n
		}
		if k < 1 {
			return nil, p.errf("array dimensionality must be >= 1, got %d", k)
		}
		return Array(elem, k), nil
	case p.has("{|"):
		elem, err := p.arrow()
		if err != nil {
			return nil, err
		}
		if !p.has("|}") {
			return nil, p.errf("expected |}")
		}
		return Bag(elem), nil
	case p.has("{"):
		elem, err := p.arrow()
		if err != nil {
			return nil, err
		}
		if !p.has("}") {
			return nil, p.errf("expected }")
		}
		return Set(elem), nil
	case p.has("("):
		t, err := p.arrow()
		if err != nil {
			return nil, err
		}
		if !p.has(")") {
			return nil, p.errf("expected )")
		}
		return t, nil
	case p.has("'"):
		name := p.ident()
		if name == "" {
			return nil, p.errf("expected type-variable name after '")
		}
		return Var(name), nil
	default:
		name := p.ident()
		switch name {
		case "":
			return nil, p.errf("expected a type")
		case "bool":
			return Bool, nil
		case "nat", "int": // the paper's session output prints nat as int in places
			return Nat, nil
		case "real":
			return Real, nil
		case "string":
			return String, nil
		case "unit":
			return Unit, nil
		default:
			return Base(name), nil
		}
	}
}

func (p *typeParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || c == '_' || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *typeParser) number() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && unicode.IsDigit(rune(p.src[p.pos])) {
		p.pos++
	}
	if start == p.pos {
		return 0, p.errf("expected a number")
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return 0, p.errf("bad number: %v", err)
	}
	return n, nil
}
