package desugar

import (
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/parser"
)

// pipe parses and desugars src.
func pipe(t *testing.T, src string) ast.Expr {
	t.Helper()
	se, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	core, err := Expr(se)
	if err != nil {
		t.Fatalf("desugar %q: %v", src, err)
	}
	return core
}

// evalSrc runs src end to end (parse, desugar, evaluate) with the given
// globals.
func evalSrc(t *testing.T, src string, globals map[string]object.Value) object.Value {
	t.Helper()
	core := pipe(t, src)
	g := eval.Builtins()
	for k, v := range globals {
		g[k] = v
	}
	got, err := eval.New(g).Eval(core, nil)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return got
}

func expectVal(t *testing.T, src string, globals map[string]object.Value, want object.Value) {
	t.Helper()
	got := evalSrc(t, src, globals)
	if !object.Equal(got, want) {
		t.Errorf("%q = %s, want %s", src, got, want)
	}
}

// --- E2: the translation tables of figure 2 --------------------------------

func TestFig2ComprehensionTranslation(t *testing.T) {
	// {e1 | \x <- e2} translates to U{ {e1} | x in e2 }.
	core := pipe(t, `{x + 1 | \x <- S}`)
	want := &ast.BigUnion{
		Head: &ast.Singleton{Elem: &ast.Arith{Op: ast.OpAdd, L: &ast.Var{Name: "x"}, R: &ast.NatLit{Val: 1}}},
		Var:  "x",
		Over: &ast.Var{Name: "S"},
	}
	if !ast.AlphaEqual(core, want) {
		t.Errorf("got %s, want %s", core, want)
	}
}

func TestFig2FilterTranslation(t *testing.T) {
	// {e1 | e2} => if e2 then {e1} else {}
	core := pipe(t, `{x | x > 2}`)
	want := &ast.If{
		Cond: &ast.Cmp{Op: ast.OpGt, L: &ast.Var{Name: "x"}, R: &ast.NatLit{Val: 2}},
		Then: &ast.Singleton{Elem: &ast.Var{Name: "x"}},
		Else: &ast.EmptySet{},
	}
	if !ast.AlphaEqual(core, want) {
		t.Errorf("got %s, want %s", core, want)
	}
}

func TestFig2EmptyQualifiers(t *testing.T) {
	// {e | } has no qualifier syntax in the grammar; a literal {e} is the
	// same thing.
	core := pipe(t, `{42}`)
	want := &ast.Singleton{Elem: &ast.NatLit{Val: 42}}
	if !ast.AlphaEqual(core, want) {
		t.Errorf("got %s, want %s", core, want)
	}
}

// --- Comprehension semantics end to end -------------------------------------

func TestCartesianProduct(t *testing.T) {
	// {(x,y) | \x <- A, \y <- B} (section 3's A × B).
	A := object.Set(object.Nat(1), object.Nat(2))
	B := object.Set(object.Nat(10), object.Nat(20))
	want := object.Set(
		object.Tuple(object.Nat(1), object.Nat(10)),
		object.Tuple(object.Nat(1), object.Nat(20)),
		object.Tuple(object.Nat(2), object.Nat(10)),
		object.Tuple(object.Nat(2), object.Nat(20)))
	expectVal(t, `{(x,y) | \x <- A, \y <- B}`, map[string]object.Value{"A": A, "B": B}, want)
}

func TestIntersectionViaMem(t *testing.T) {
	// {x | \x <- A, x mem B} (section 3's A ∩ B).
	A := object.Set(object.Nat(1), object.Nat(2), object.Nat(3))
	B := object.Set(object.Nat(2), object.Nat(3), object.Nat(4))
	want := object.Set(object.Nat(2), object.Nat(3))
	expectVal(t, `{x | \x <- A, x mem B}`, map[string]object.Value{"A": A, "B": B}, want)
}

func TestNaturalJoinWithPatterns(t *testing.T) {
	// {(x, y, z) | (\x, \y) <- R, (y, \z) <- S} — the paper's join example.
	R := object.Set(
		object.Tuple(object.Nat(1), object.Nat(10)),
		object.Tuple(object.Nat(2), object.Nat(20)))
	S := object.Set(
		object.Tuple(object.Nat(10), object.String_("a")),
		object.Tuple(object.Nat(30), object.String_("b")))
	want := object.Set(object.Tuple(object.Nat(1), object.Nat(10), object.String_("a")))
	expectVal(t, `{(x, y, z) | (\x, \y) <- R, (y, \z) <- S}`,
		map[string]object.Value{"R": R, "S": S}, want)
}

func TestConstantPattern(t *testing.T) {
	// {x | (_, 0, \x) <- R} — the paper's constant-pattern example.
	R := object.Set(
		object.Tuple(object.Nat(1), object.Nat(0), object.String_("keep")),
		object.Tuple(object.Nat(2), object.Nat(5), object.String_("drop")))
	want := object.Set(object.String_("keep"))
	expectVal(t, `{x | (_, 0, \x) <- R}`, map[string]object.Value{"R": R}, want)
}

func TestBindingShorthand(t *testing.T) {
	// \y == e binds y to the value of e.
	want := object.Set(object.Nat(9))
	expectVal(t, `{y | \x == 2, \y == x*x+5}`, nil, want)
}

func TestNestWithPatterns(t *testing.T) {
	// nest = λ\X. {(x, {y | (x, \y) <- X}) | (\x, _) <- X} (section 3).
	X := object.Set(
		object.Tuple(object.Nat(1), object.String_("a")),
		object.Tuple(object.Nat(1), object.String_("b")),
		object.Tuple(object.Nat(2), object.String_("c")))
	want := object.Set(
		object.Tuple(object.Nat(1), object.Set(object.String_("a"), object.String_("b"))),
		object.Tuple(object.Nat(2), object.Set(object.String_("c"))))
	expectVal(t, `(fn \X => {(x, {y | (x, \y) <- X}) | (\x, _) <- X})!X`,
		map[string]object.Value{"X": X}, want)
}

func TestArrayGenerator1D(t *testing.T) {
	// {i | [\i : \x] <- A, x > 90} — positions with values over 90.
	A := object.NatVector(95, 10, 99, 50)
	want := object.Set(object.Nat(0), object.Nat(2))
	expectVal(t, `{i | [\i : \x] <- A, x > 90}`, map[string]object.Value{"A": A}, want)
}

func TestArrayGenerator3D(t *testing.T) {
	// The session query's generator shape: [(\h,_,_) : \t] <- T over a
	// 3-dimensional array.
	data := make([]object.Value, 4)
	for i := range data {
		data[i] = object.Real(float64(80 + i*2)) // 80, 82, 84, 86
	}
	T := object.MustArray([]int{4, 1, 1}, data)
	want := object.Set(object.Nat(3)) // only T[3,0,0] = 86 > 85
	expectVal(t, `{h | [(\h,_,_) : \t] <- T, t > 85.0}`, map[string]object.Value{"T": T}, want)
}

func TestBagComprehension(t *testing.T) {
	// Bag comprehensions preserve multiplicity.
	B := object.Bag(object.Nat(1), object.Nat(1), object.Nat(2))
	want := object.Bag(object.Nat(2), object.Nat(2), object.Nat(4))
	expectVal(t, `{| x * 2 | \x <- B |}`, map[string]object.Value{"B": B}, want)
}

// --- Lambda patterns, let blocks ----------------------------------------------

func TestFnPatterns(t *testing.T) {
	expectVal(t, `(fn \x => x + 1)!41`, nil, object.Nat(42))
	expectVal(t, `(fn (\a, \b) => a * b)!(6, 7)`, nil, object.Nat(42))
	expectVal(t, `(fn (\a, (\b, \c)) => a + b * c)!(2, (4, 10))`, nil, object.Nat(42))
	expectVal(t, `(fn _ => 5)!99`, nil, object.Nat(5))
	expectVal(t, `(fn (\a, _, \c) => a + c)!(1, 100, 2)`, nil, object.Nat(3))
}

func TestFnPatternRejectsConstants(t *testing.T) {
	se, err := parser.ParseExpr(`fn (\a, 0) => a`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Expr(se); err == nil {
		t.Error("constants in lambda patterns should be rejected")
	}
}

func TestLetBlocks(t *testing.T) {
	expectVal(t, `let val \x = 6 in x * 7 end`, nil, object.Nat(42))
	expectVal(t, `let val \x = 2 val \y = x + 3 in x * y end`, nil, object.Nat(10))
	expectVal(t, `let val (\a, \b) = (3, 4) in a * a + b * b end`, nil, object.Nat(25))
}

// --- Operators, specials ----------------------------------------------------

func TestLogicalOperators(t *testing.T) {
	expectVal(t, `true and false`, nil, object.False)
	expectVal(t, `true or false`, nil, object.True)
	expectVal(t, `not true`, nil, object.False)
	expectVal(t, `1 < 2 and 2 < 3`, nil, object.True)
	// and/or are macros over if, so they short-circuit: the second operand
	// of `false and X` is never evaluated.
	expectVal(t, `false and (1 / 0 = 1)`, nil, object.False)
	expectVal(t, `true or (1 / 0 = 1)`, nil, object.True)
}

func TestCoreConstructNames(t *testing.T) {
	expectVal(t, `gen!3`, nil, object.Set(object.Nat(0), object.Nat(1), object.Nat(2)))
	expectVal(t, `get!{7}`, nil, object.Nat(7))
	expectVal(t, `len![[4, 5, 6]]`, nil, object.Nat(3))
	M := object.MustArray([]int{2, 3}, make([]object.Value, 6))
	expectVal(t, `dim_2!M`, map[string]object.Value{"M": M}, object.Tuple(object.Nat(2), object.Nat(3)))
	expectVal(t, `dim_1_2!M`, map[string]object.Value{"M": M}, object.Nat(2))
	expectVal(t, `dim_2_2!M`, map[string]object.Value{"M": M}, object.Nat(3))
	expectVal(t, `pi_1_2!(8, 9)`, nil, object.Nat(8))
	expectVal(t, `pi_2_2!(8, 9)`, nil, object.Nat(9))
	// index_1 groups by key with holes (the paper's example).
	expectVal(t, `index_1!{(1, "a"), (3, "b"), (1, "c")}`, nil,
		object.Vector(object.EmptySet,
			object.Set(object.String_("a"), object.String_("c")),
			object.EmptySet, object.Set(object.String_("b"))))
	// graph is the inverse direction.
	expectVal(t, `graph![[7, 8]]`, nil,
		object.Set(object.Tuple(object.Nat(0), object.Nat(7)),
			object.Tuple(object.Nat(1), object.Nat(8))))
}

func TestSummap(t *testing.T) {
	// summap(f)!e = Σ{f(x) | x ∈ e} (section 4.2).
	expectVal(t, `summap(fn \i => i * i)!(gen!4)`, nil, object.Nat(14))
}

func TestSubscripts(t *testing.T) {
	A := object.NatVector(10, 20, 30)
	expectVal(t, `A[1]`, map[string]object.Value{"A": A}, object.Nat(20))
	M := object.MustArray([]int{2, 2}, []object.Value{
		object.Nat(1), object.Nat(2), object.Nat(3), object.Nat(4)})
	expectVal(t, `M[1, 0]`, map[string]object.Value{"M": M}, object.Nat(3))
	got := evalSrc(t, `A[7]`, map[string]object.Value{"A": A})
	if !got.IsBottom() {
		t.Errorf("A[7] = %s, want bottom", got)
	}
}

func TestArrayLiterals(t *testing.T) {
	expectVal(t, `[[1, 2, 3]]`, nil, object.NatVector(1, 2, 3))
	expectVal(t, `[[]]`, nil, object.Vector())
	expectVal(t, `[[2, 2; 1, 2, 3, 4]]`, nil, object.MustArray([]int{2, 2},
		[]object.Value{object.Nat(1), object.Nat(2), object.Nat(3), object.Nat(4)}))
	// Dimensions may be computed.
	expectVal(t, `[[1+1; 5, 6]]`, nil, object.NatVector(5, 6))
}

func TestMonthsMacroBody(t *testing.T) {
	// The days_since_1_1 macro body from the session (section 4.2), with
	// months inline.
	src := `let val \months = [[0,31,28,31,30,31,30,31,31,30,31,30]] in
	        (fn (\m, \d, \y) =>
	           d + summap(fn \i => months[i])!(gen!m) +
	           if m > 2 and y % 4 = 0 then 1 else 0)!(6, 1, 96)
	        end`
	// days since Jan 1 for June 1 in a leap year 96: 0+31+28+31+30+31 = 151,
	// +1 for d, +1 leap = 153.
	expectVal(t, src, nil, object.Nat(153))
}

// --- The motivating example (E4), reduced --------------------------------------

func TestMotivatingQueryShape(t *testing.T) {
	// A scaled-down version of the introduction's query over 3 "days" of
	// 4 "hours": the structure (generators, bindings, external predicate)
	// is identical; heatindex is just a sum here.
	T := object.RealVector(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	heatindex := object.Func(func(v object.Value) (object.Value, error) {
		total := 0.0
		for _, x := range v.Data {
			f, err := x.AsReal()
			if err != nil {
				return object.Value{}, err
			}
			total += f
		}
		return object.Real(total), nil
	})
	subseq := object.Func(func(v object.Value) (object.Value, error) {
		arr := v.Elems[0]
		i, _ := v.Elems[1].AsNat()
		j, _ := v.Elems[2].AsNat()
		n := int(j - i + 1)
		data := make([]object.Value, 0, n)
		for k := int(i); k <= int(j) && k < len(arr.Data); k++ {
			data = append(data, arr.Data[k])
		}
		return object.Vector(data...), nil
	})
	src := `{d | \d <- gen!3,
	          \A == subseq!(T, d*4, d*4+3),
	          heatindex!(A) > 25.0}`
	got := evalSrc(t, src, map[string]object.Value{
		"T": T, "heatindex": heatindex, "subseq": subseq})
	// Day sums: 1+2+3+4=10, 5+6+7+8=26, 9+10+11+12=42. Days 1 and 2 exceed 25.
	want := object.Set(object.Nat(1), object.Nat(2))
	if !object.Equal(got, want) {
		t.Errorf("query = %s, want %s", got, want)
	}
}

func TestSurfaceTabulation(t *testing.T) {
	expectVal(t, `[[ i * 2 | \i < 4 ]]`, nil, object.NatVector(0, 2, 4, 6))
	got := evalSrc(t, `[[ i * 10 + j | \i < 2, \j < 3 ]]`, nil)
	want := object.MustArray([]int{2, 3}, []object.Value{
		object.Nat(0), object.Nat(1), object.Nat(2),
		object.Nat(10), object.Nat(11), object.Nat(12)})
	if !object.Equal(got, want) {
		t.Errorf("2-d tabulation = %s, want %s", got, want)
	}
	// The paper's subseq as a one-liner.
	A := object.NatVector(10, 20, 30, 40, 50)
	expectVal(t, `(fn (\A, \i, \j) => [[ A[i+k] | \k < (j+1)-i ]])!(A, 1, 3)`,
		map[string]object.Value{"A": A}, object.NatVector(20, 30, 40))
}
