// Package desugar translates AQL surface syntax into the core calculus,
// implementing both translation tables of figure 2 of the paper:
//
//	{e1 | \x <- e2, GF}  =>  U{ {e1 | GF} | x in e2 }
//	{e1 | e2, GF}        =>  if e2 then {e1 | GF} else {}
//	{e | }               =>  {e}
//
// and the pattern translations
//
//	fn _ => e            =>  \z. e
//	fn (P1,...,Pn) => e  =>  \z. ((\P1. ... ((\Pn. e)(pi_n,n z)))...)(pi_1,n z)
//	U{e1 | P' <- e2}     =>  U{ (\P'.e1)(z) | \z <- e2 }
//	U{e1 | P <- e2}      =>  U{ if z = CX then e1 else {} | NewP <- e2 }
//
// where CX is the leftmost constant or non-binding variable of P and NewP
// is P with that occurrence replaced by a fresh binding variable.
//
// Blocks desugar as let val P = e1 in e2 end => (\P. e2)(e1), and the array
// generator [P1 : P2] <- A of section 3 desugars into index generators over
// gen(dim(A)) plus bindings, with the dimensionality k taken from the arity
// of the index pattern P1.
package desugar

import (
	"fmt"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/parser"
)

// Expr translates a surface expression into the core calculus.
func Expr(e parser.Expr) (ast.Expr, error) {
	return expr(e)
}

func expr(e parser.Expr) (ast.Expr, error) {
	switch n := e.(type) {
	case *parser.Ident:
		return &ast.Var{Name: n.Name}, nil
	case *parser.NatLit:
		return &ast.NatLit{Val: n.Val}, nil
	case *parser.RealLit:
		return &ast.RealLit{Val: n.Val}, nil
	case *parser.StringLit:
		return &ast.StringLit{Val: n.Val}, nil
	case *parser.BoolLit:
		return &ast.BoolLit{Val: n.Val}, nil
	case *parser.BottomLit:
		return &ast.Bottom{}, nil
	case *parser.ParamE:
		return &ast.Param{Name: n.Name}, nil

	case *parser.TupleE:
		elems := make([]ast.Expr, len(n.Elems))
		for i, x := range n.Elems {
			d, err := expr(x)
			if err != nil {
				return nil, err
			}
			elems[i] = d
		}
		return &ast.Tuple{Elems: elems}, nil

	case *parser.SetE:
		// {a, b, c} = {a} ∪ {b} ∪ {c} (section 3).
		var out ast.Expr = &ast.EmptySet{}
		for i := len(n.Elems) - 1; i >= 0; i-- {
			d, err := expr(n.Elems[i])
			if err != nil {
				return nil, err
			}
			s := &ast.Singleton{Elem: d}
			if _, isEmpty := out.(*ast.EmptySet); isEmpty {
				out = s
			} else {
				out = &ast.Union{L: s, R: out}
			}
		}
		return out, nil

	case *parser.BagE:
		var out ast.Expr = &ast.EmptyBag{}
		for i := len(n.Elems) - 1; i >= 0; i-- {
			d, err := expr(n.Elems[i])
			if err != nil {
				return nil, err
			}
			s := &ast.SingletonBag{Elem: d}
			if _, isEmpty := out.(*ast.EmptyBag); isEmpty {
				out = s
			} else {
				out = &ast.BagUnion{L: s, R: out}
			}
		}
		return out, nil

	case *parser.ArrayE:
		dims := n.Dims
		if dims == nil {
			// A plain [[e1, ..., en]] literal: the efficient row-major
			// construct with the single dimension n (section 3 adds this
			// construct precisely so literals need not be built by O(n²)
			// monoid appends).
			dims = []parser.Expr{&parser.NatLit{Val: int64(len(n.Elems))}}
		}
		dn := make([]ast.Expr, len(dims))
		for i, d := range dims {
			x, err := expr(d)
			if err != nil {
				return nil, err
			}
			dn[i] = x
		}
		en := make([]ast.Expr, len(n.Elems))
		for i, el := range n.Elems {
			x, err := expr(el)
			if err != nil {
				return nil, err
			}
			en[i] = x
		}
		return &ast.MkArray{Dims: dn, Elems: en}, nil

	case *parser.TabE:
		head, err := expr(n.Head)
		if err != nil {
			return nil, err
		}
		bounds := make([]ast.Expr, len(n.Bounds))
		for i, b := range n.Bounds {
			d, err := expr(b)
			if err != nil {
				return nil, err
			}
			bounds[i] = d
		}
		return &ast.ArrayTab{Head: head, Idx: n.Idx, Bounds: bounds}, nil

	case *parser.Comp:
		return comp(n)

	case *parser.Fn:
		body, err := expr(n.Body)
		if err != nil {
			return nil, err
		}
		return lamPat(n.Pat, body)

	case *parser.Let:
		// let val P1 = e1 ... in e end => (\P1. (... e))(e1), innermost last.
		body, err := expr(n.Body)
		if err != nil {
			return nil, err
		}
		out := body
		for i := len(n.Decls) - 1; i >= 0; i-- {
			d := n.Decls[i]
			bound, err := expr(d.E)
			if err != nil {
				return nil, err
			}
			lam, err := lamPat(d.Pat, out)
			if err != nil {
				return nil, err
			}
			out = &ast.App{Fn: lam, Arg: bound}
		}
		return out, nil

	case *parser.IfE:
		c, err := expr(n.Cond)
		if err != nil {
			return nil, err
		}
		th, err := expr(n.Then)
		if err != nil {
			return nil, err
		}
		el, err := expr(n.Else)
		if err != nil {
			return nil, err
		}
		return &ast.If{Cond: c, Then: th, Else: el}, nil

	case *parser.Bin:
		return binop(n)

	case *parser.Not:
		d, err := expr(n.E)
		if err != nil {
			return nil, err
		}
		return &ast.If{Cond: d, Then: &ast.BoolLit{Val: false}, Else: &ast.BoolLit{Val: true}}, nil

	case *parser.AppE:
		return appE(n)

	case *parser.SubE:
		arr, err := expr(n.Arr)
		if err != nil {
			return nil, err
		}
		var index ast.Expr
		if len(n.Indices) == 1 {
			index, err = expr(n.Indices[0])
			if err != nil {
				return nil, err
			}
		} else {
			elems := make([]ast.Expr, len(n.Indices))
			for i, x := range n.Indices {
				d, err := expr(x)
				if err != nil {
					return nil, err
				}
				elems[i] = d
			}
			index = &ast.Tuple{Elems: elems}
		}
		return &ast.Subscript{Arr: arr, Index: index}, nil

	case *parser.SumMap:
		// summap(f)!e = Σ{ f(x) | x ∈ e }.
		f, err := expr(n.F)
		if err != nil {
			return nil, err
		}
		over, err := expr(n.Over)
		if err != nil {
			return nil, err
		}
		z := ast.Fresh("s")
		return &ast.Sum{Head: &ast.App{Fn: f, Arg: &ast.Var{Name: z}}, Var: z, Over: over}, nil
	}
	return nil, fmt.Errorf("desugar: unhandled surface node %T", e)
}

// binop desugars infix operators. `and` and `or` become conditionals (they
// are macros in the paper, section 3); `mem` becomes the member primitive.
func binop(n *parser.Bin) (ast.Expr, error) {
	l, err := expr(n.L)
	if err != nil {
		return nil, err
	}
	r, err := expr(n.R)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "and":
		return &ast.If{Cond: l, Then: r, Else: &ast.BoolLit{Val: false}}, nil
	case "or":
		return &ast.If{Cond: l, Then: &ast.BoolLit{Val: true}, Else: r}, nil
	case "mem":
		return &ast.App{Fn: &ast.Var{Name: "member"}, Arg: &ast.Tuple{Elems: []ast.Expr{l, r}}}, nil
	case "union":
		return &ast.Union{L: l, R: r}, nil
	case "uplus":
		return &ast.BagUnion{L: l, R: r}, nil
	case "+", "-", "*", "/", "%":
		return &ast.Arith{Op: ast.ArithOp(n.Op), L: l, R: r}, nil
	case "=", "<>", "<", ">", "<=", ">=":
		return &ast.Cmp{Op: ast.CmpOp(n.Op), L: l, R: r}, nil
	}
	return nil, fmt.Errorf("desugar: unknown operator %q", n.Op)
}

// appE desugars f!e, recognizing the core-construct names gen, get, len,
// dim_k, index_k, and pi_i_k. These are reserved: they always denote the
// core constructs, as in the paper's concrete syntax.
func appE(n *parser.AppE) (ast.Expr, error) {
	arg, err := expr(n.Arg)
	if err != nil {
		return nil, err
	}
	if id, ok := n.Fn.(*parser.Ident); ok {
		switch {
		case id.Name == "gen":
			return &ast.Gen{N: arg}, nil
		case id.Name == "get":
			return &ast.Get{Set: arg}, nil
		case id.Name == "len":
			return &ast.Dim{K: 1, Arr: arg}, nil
		case id.Name == "graph":
			// graph(A) for 1-d arrays; graph_k via dim pattern below.
			return graphExpr(arg, 1), nil
		}
		if k, ok := suffixNum(id.Name, "dim_"); ok {
			return &ast.Dim{K: k, Arr: arg}, nil
		}
		if k, ok := suffixNum(id.Name, "index_"); ok {
			return &ast.Index{K: k, Set: arg}, nil
		}
		if k, ok := suffixNum(id.Name, "graph_"); ok {
			return graphExpr(arg, k), nil
		}
		if i, k, ok := projNums(id.Name); ok {
			return &ast.Proj{I: i, K: k, Tuple: arg}, nil
		}
		if i, k, ok := dimProjNums(id.Name); ok {
			// dim_i_k = pi_i,k ∘ dim_k (section 2's abbreviation).
			return &ast.Proj{I: i, K: k, Tuple: &ast.Dim{K: k, Arr: arg}}, nil
		}
	}
	fn, err := expr(n.Fn)
	if err != nil {
		return nil, err
	}
	return &ast.App{Fn: fn, Arg: arg}, nil
}

// graphExpr builds graph_k(e) = U{ {(i, a[i])} | i ∈ dom_k(a) } with the
// argument bound once.
func graphExpr(arg ast.Expr, k int) ast.Expr {
	a := ast.Fresh("g")
	av := func() ast.Expr { return &ast.Var{Name: a} }
	idxVars := make([]string, k)
	for j := range idxVars {
		idxVars[j] = ast.Fresh("gi")
	}
	var idxExpr ast.Expr
	if k == 1 {
		idxExpr = &ast.Var{Name: idxVars[0]}
	} else {
		elems := make([]ast.Expr, k)
		for j := range elems {
			elems[j] = &ast.Var{Name: idxVars[j]}
		}
		idxExpr = &ast.Tuple{Elems: elems}
	}
	body := &ast.Singleton{Elem: &ast.Tuple{Elems: []ast.Expr{
		idxExpr, &ast.Subscript{Arr: av(), Index: idxExpr},
	}}}
	out := ast.Expr(body)
	for j := k - 1; j >= 0; j-- {
		var bound ast.Expr
		if k == 1 {
			bound = &ast.Dim{K: 1, Arr: av()}
		} else {
			bound = &ast.Proj{I: j + 1, K: k, Tuple: &ast.Dim{K: k, Arr: av()}}
		}
		out = &ast.BigUnion{Head: out, Var: idxVars[j], Over: &ast.Gen{N: bound}}
	}
	return &ast.App{Fn: &ast.Lam{Param: a, Body: out}, Arg: arg}
}

// suffixNum matches names like dim_3 against a prefix, returning the
// numeric suffix.
func suffixNum(name, prefix string) (int, bool) {
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return 0, false
	}
	n := 0
	for _, c := range name[len(prefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if n < 1 {
		return 0, false
	}
	return n, true
}

// projNums matches pi_i_k.
func projNums(name string) (i, k int, ok bool) {
	return twoNums(name, "pi_")
}

// dimProjNums matches dim_i_k (two numeric components).
func dimProjNums(name string) (i, k int, ok bool) {
	return twoNums(name, "dim_")
}

func twoNums(name, prefix string) (int, int, bool) {
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return 0, 0, false
	}
	rest := name[len(prefix):]
	sep := -1
	for j := 0; j < len(rest); j++ {
		if rest[j] == '_' {
			sep = j
			break
		}
	}
	if sep <= 0 || sep == len(rest)-1 {
		return 0, 0, false
	}
	a, ok1 := atoi(rest[:sep])
	b, ok2 := atoi(rest[sep+1:])
	if !ok1 || !ok2 || a < 1 || b < 2 || a > b {
		return 0, 0, false
	}
	return a, b, true
}

func atoi(s string) (int, bool) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, len(s) > 0
}
