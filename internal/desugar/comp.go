package desugar

import (
	"fmt"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/parser"
)

// comp desugars a comprehension by the first table of figure 2, processing
// qualifiers left to right. Bag comprehensions use the bag constructs
// throughout (section 6's NBC).
func comp(c *parser.Comp) (ast.Expr, error) {
	return compQuals(c.Head, c.Quals, c.Bag)
}

func compQuals(head parser.Expr, quals []parser.Qual, bag bool) (ast.Expr, error) {
	if len(quals) == 0 {
		// {e | } => {e}
		h, err := expr(head)
		if err != nil {
			return nil, err
		}
		if bag {
			return &ast.SingletonBag{Elem: h}, nil
		}
		return &ast.Singleton{Elem: h}, nil
	}
	rest := quals[1:]
	switch q := quals[0].(type) {
	case *parser.FilterQ:
		// {e1 | e2, GF} => if e2 then {e1 | GF} else {}
		cond, err := expr(q.E)
		if err != nil {
			return nil, err
		}
		inner, err := compQuals(head, rest, bag)
		if err != nil {
			return nil, err
		}
		return &ast.If{Cond: cond, Then: inner, Else: emptyColl(bag)}, nil

	case *parser.GenQ:
		src, err := expr(q.Src)
		if err != nil {
			return nil, err
		}
		inner, err := compQuals(head, rest, bag)
		if err != nil {
			return nil, err
		}
		return genTrans(q.Pat, src, inner, bag)

	case *parser.BindQ:
		// P == e is shorthand for P <- {e} (section 3).
		src, err := expr(q.E)
		if err != nil {
			return nil, err
		}
		inner, err := compQuals(head, rest, bag)
		if err != nil {
			return nil, err
		}
		var single ast.Expr
		if bag {
			single = &ast.SingletonBag{Elem: src}
		} else {
			single = &ast.Singleton{Elem: src}
		}
		return genTrans(q.Pat, single, inner, bag)

	case *parser.ArrGenQ:
		// [P1 : P2] <- A: iterate the array's domain. The dimensionality k
		// is the arity of the index pattern P1.
		return arrGen(q, head, rest, bag)
	}
	return nil, fmt.Errorf("desugar: unhandled qualifier %T", quals[0])
}

func emptyColl(bag bool) ast.Expr {
	if bag {
		return &ast.EmptyBag{}
	}
	return &ast.EmptySet{}
}

// genTrans translates the generator P <- src with continuation inner,
// following the second table of figure 2: constants and non-binding
// variables in P peel off into equality filters on a fresh binding
// variable; what remains is a lambda pattern handled by lamPat.
func genTrans(p parser.Pat, src, inner ast.Expr, bag bool) (ast.Expr, error) {
	// Fast path: a bare binding variable.
	if pv, ok := p.(*parser.PVar); ok {
		return bigUnion(inner, pv.Name, src, bag), nil
	}
	if isLamPat(p) {
		// U{e1 | P' <- e2} => U{ (\P'.e1)(z) | \z <- e2 }
		z := ast.Fresh("p")
		lam, err := lamPat(p, inner)
		if err != nil {
			return nil, err
		}
		body := &ast.App{Fn: lam, Arg: &ast.Var{Name: z}}
		return bigUnion(body, z, src, bag), nil
	}
	// U{e1 | P <- e2} => U{ if z = CX then e1 else {} | NewP <- e2 }
	// where CX is the leftmost constant or non-binding variable of P.
	z := ast.Fresh("c")
	newP, cx, err := replaceLeftmost(p, z)
	if err != nil {
		return nil, err
	}
	guarded := &ast.If{
		Cond: &ast.Cmp{Op: ast.OpEq, L: &ast.Var{Name: z}, R: cx},
		Then: inner,
		Else: emptyColl(bag),
	}
	return genTrans(newP, src, guarded, bag)
}

func bigUnion(head ast.Expr, varName string, over ast.Expr, bag bool) ast.Expr {
	if bag {
		return &ast.BigBagUnion{Head: head, Var: varName, Over: over}
	}
	return &ast.BigUnion{Head: head, Var: varName, Over: over}
}

// isLamPat reports whether p is a lambda pattern: only binding variables,
// wildcards and tuples of lambda patterns (P' in the paper's grammar).
func isLamPat(p parser.Pat) bool {
	switch n := p.(type) {
	case *parser.PVar, *parser.PWild:
		return true
	case *parser.PTuple:
		for _, sub := range n.Elems {
			if !isLamPat(sub) {
				return false
			}
		}
		return true
	}
	return false
}

// replaceLeftmost returns p with its leftmost constant or non-binding
// variable replaced by the fresh binding variable z, together with the
// core expression CX that the replaced occurrence denotes.
func replaceLeftmost(p parser.Pat, z string) (parser.Pat, ast.Expr, error) {
	switch n := p.(type) {
	case *parser.PConst:
		cx, err := expr(n.E)
		if err != nil {
			return nil, nil, err
		}
		return &parser.PVar{Name: z}, cx, nil
	case *parser.PRef:
		return &parser.PVar{Name: z}, &ast.Var{Name: n.Name}, nil
	case *parser.PTuple:
		for i, sub := range n.Elems {
			if isLamPat(sub) {
				continue
			}
			newSub, cx, err := replaceLeftmost(sub, z)
			if err != nil {
				return nil, nil, err
			}
			elems := make([]parser.Pat, len(n.Elems))
			copy(elems, n.Elems)
			elems[i] = newSub
			return &parser.PTuple{Elems: elems}, cx, nil
		}
	}
	return nil, nil, fmt.Errorf("desugar: pattern has no constant to replace")
}

// lamPat builds λP.e for a lambda pattern P (figure 2):
//
//	λ\x.e            => \x. e
//	λ_.e             => \z. e            (z fresh)
//	λ(P1,...,Pn).e   => \z. ((λP1. ... ((λPn. e)(pi_n,n z)) ...)(pi_1,n z))
func lamPat(p parser.Pat, body ast.Expr) (*ast.Lam, error) {
	switch n := p.(type) {
	case *parser.PVar:
		return &ast.Lam{Param: n.Name, Body: body}, nil
	case *parser.PWild:
		return &ast.Lam{Param: ast.Fresh("w"), Body: body}, nil
	case *parser.PTuple:
		z := ast.Fresh("t")
		k := len(n.Elems)
		if k == 0 {
			// Unit pattern: nothing to bind.
			return &ast.Lam{Param: z, Body: body}, nil
		}
		// Innermost first: (λPn.e)(pi_n z), then wrap with Pn-1, etc.
		out := body
		for i := k - 1; i >= 0; i-- {
			lam, err := lamPat(n.Elems[i], out)
			if err != nil {
				return nil, err
			}
			var proj ast.Expr
			if k == 1 {
				proj = &ast.Var{Name: z}
			} else {
				proj = &ast.Proj{I: i + 1, K: k, Tuple: &ast.Var{Name: z}}
			}
			out = &ast.App{Fn: lam, Arg: proj}
		}
		return &ast.Lam{Param: z, Body: out}, nil
	case *parser.PConst, *parser.PRef:
		return nil, fmt.Errorf("desugar: constants and non-binding variables are not allowed in lambda patterns")
	}
	return nil, fmt.Errorf("desugar: unhandled pattern %T", p)
}

// arrGen desugars the array generator [P1 : P2] <- A (section 3):
//
//	[\i : \x] <- A  ==  \i <- dom(A), \x <- {A[i]}
//
// generalized to k dimensions (k = arity of P1) by iterating each dimension
// with gen(dim_j,k(A)) and binding the index tuple. The source A is bound
// once so it is not re-evaluated per element.
func arrGen(q *parser.ArrGenQ, head parser.Expr, rest []parser.Qual, bag bool) (ast.Expr, error) {
	src, err := expr(q.Src)
	if err != nil {
		return nil, err
	}
	k := 1
	if pt, ok := q.IdxPat.(*parser.PTuple); ok {
		k = len(pt.Elems)
	}
	arr := ast.Fresh("a")
	arrV := func() ast.Expr { return &ast.Var{Name: arr} }

	idxVars := make([]string, k)
	for j := range idxVars {
		idxVars[j] = ast.Fresh("i")
	}
	var idxExpr ast.Expr
	if k == 1 {
		idxExpr = &ast.Var{Name: idxVars[0]}
	} else {
		elems := make([]ast.Expr, k)
		for j := range elems {
			elems[j] = &ast.Var{Name: idxVars[j]}
		}
		idxExpr = &ast.Tuple{Elems: elems}
	}

	inner, err := compQuals(head, rest, bag)
	if err != nil {
		return nil, err
	}

	// Innermost: bind P2 to the element, then P1 to the index (both via the
	// singleton-generator translation so arbitrary patterns work).
	elemSingle := singleton(&ast.Subscript{Arr: arrV(), Index: idxExpr}, bag)
	withVal, err := genTrans(q.ValPat, elemSingle, inner, bag)
	if err != nil {
		return nil, err
	}
	withIdx, err := genTrans(q.IdxPat, singleton(idxExpr, bag), withVal, bag)
	if err != nil {
		return nil, err
	}

	// Wrap with the index loops, innermost dimension last.
	out := withIdx
	for j := k - 1; j >= 0; j-- {
		var bound ast.Expr
		if k == 1 {
			bound = &ast.Dim{K: 1, Arr: arrV()}
		} else {
			bound = &ast.Proj{I: j + 1, K: k, Tuple: &ast.Dim{K: k, Arr: arrV()}}
		}
		out = bigUnion(out, idxVars[j], &ast.Gen{N: bound}, bag)
	}
	// Bind the array once.
	return &ast.App{Fn: &ast.Lam{Param: arr, Body: out}, Arg: src}, nil
}

func singleton(e ast.Expr, bag bool) ast.Expr {
	if bag {
		return &ast.SingletonBag{Elem: e}
	}
	return &ast.Singleton{Elem: e}
}
