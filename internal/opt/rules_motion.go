package opt

import (
	"github.com/aqldb/aql/internal/ast"
)

// MotionRules returns the code-motion phase (mentioned as a later phase in
// section 5): loop-invariant collection-valued subexpressions of loop
// bodies are hoisted into a binding evaluated once. The β guard in the
// normalization phase deliberately refuses to re-inline such bindings, so
// hoisted work stays hoisted.
func MotionRules() []Rule {
	return []Rule{
		{Name: "loop-invariant-hoist", Apply: hoistRule},
	}
}

// hoistRule rewrites a loop whose body contains an expensive subexpression
// E with no free occurrence of the loop variables into
//
//	(λz. loop-with-E-replaced-by-z)(E)
//
// replacing all alpha-equal occurrences of E in the body at once (a
// by-product is common-subexpression elimination across the body).
func hoistRule(e ast.Expr) (ast.Expr, bool) {
	var bound []string
	switch n := e.(type) {
	case *ast.BigUnion:
		bound = []string{n.Var}
	case *ast.BigBagUnion:
		bound = []string{n.Var}
	case *ast.Sum:
		bound = []string{n.Var}
	case *ast.RankUnion:
		bound = []string{n.Var, n.RankVar}
	case *ast.RankBagUnion:
		bound = []string{n.Var, n.RankVar}
	case *ast.ArrayTab:
		bound = n.Idx
	default:
		return e, false
	}
	head := e.Children()[0]
	target := findInvariant(head, bound)
	if target == nil {
		return e, false
	}
	z := ast.Fresh("h")
	newHead, n := replaceAll(head, target, &ast.Var{Name: z})
	if n == 0 {
		return e, false
	}
	kids := e.Children()
	newKids := make([]ast.Expr, len(kids))
	copy(newKids, kids)
	newKids[0] = newHead
	return &ast.App{
		Fn:  &ast.Lam{Param: z, Body: e.WithChildren(newKids)},
		Arg: target,
	}, true
}

// expensive reports whether evaluating e repeatedly is worth a hoist:
// loops, collection constructions and applications are; scalars and
// variable references are not.
func expensive(e ast.Expr) bool {
	switch e.(type) {
	case *ast.BigUnion, *ast.BigBagUnion, *ast.Sum, *ast.RankUnion,
		*ast.RankBagUnion, *ast.ArrayTab, *ast.Index, *ast.Gen, *ast.App,
		*ast.Union, *ast.BagUnion, *ast.MkArray, *ast.Get:
		return true
	}
	return false
}

// findInvariant returns the outermost expensive subexpression of e that
// uses none of the blocked variables (the loop's own variables plus every
// binder between the loop body and the occurrence), or nil.
func findInvariant(e ast.Expr, blocked []string) ast.Expr {
	if expensive(e) && noneFree(blocked, e) {
		return e
	}
	kids := e.Children()
	binders := e.Binders()
	for i, kid := range kids {
		inner := blocked
		if len(binders[i]) > 0 {
			inner = make([]string, 0, len(blocked)+len(binders[i]))
			inner = append(inner, blocked...)
			inner = append(inner, binders[i]...)
		}
		if found := findInvariant(kid, inner); found != nil {
			return found
		}
	}
	return nil
}

func noneFree(names []string, e ast.Expr) bool {
	free := ast.FreeVars(e)
	for _, n := range names {
		if free[n] {
			return false
		}
	}
	return true
}

// replaceAll replaces every alpha-equal occurrence of target in e with
// repl, skipping occurrences under binders that capture a free variable of
// target or of repl.
func replaceAll(e, target, repl ast.Expr) (ast.Expr, int) {
	avoid := ast.FreeVars(target)
	for v := range ast.FreeVars(repl) {
		avoid[v] = true
	}
	return replaceAllGo(e, target, repl, avoid)
}

func replaceAllGo(e, target, repl ast.Expr, avoid map[string]bool) (ast.Expr, int) {
	if ast.AlphaEqual(e, target) {
		return repl, 1
	}
	kids := e.Children()
	if len(kids) == 0 {
		return e, 0
	}
	binders := e.Binders()
	total := 0
	newKids := make([]ast.Expr, len(kids))
	changed := false
	for i, kid := range kids {
		captured := false
		for _, b := range binders[i] {
			if avoid[b] {
				captured = true
				break
			}
		}
		if captured {
			newKids[i] = kid
			continue
		}
		nk, n := replaceAllGo(kid, target, repl, avoid)
		newKids[i] = nk
		total += n
		if nk != kid {
			changed = true
		}
	}
	if !changed {
		return e, 0
	}
	return e.WithChildren(newKids), total
}
