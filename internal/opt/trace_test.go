package opt

import (
	"fmt"
	"testing"

	"github.com/aqldb/aql/internal/ast"
)

// firing mirrors trace.RuleFiring without importing the trace package (opt
// must not depend on it; the hook is a plain function field).
type firing struct {
	phase, rule             string
	nodesBefore, nodesAfter int
}

// collectTrace optimizes e on a fresh optimizer, recording every rule
// firing through the Trace hook.
func collectTrace(e ast.Expr) []firing {
	o := New()
	var got []firing
	o.Trace = func(phase, rule string, nb, na int) {
		got = append(got, firing{phase, rule, nb, na})
	}
	o.Optimize(e)
	return got
}

// TestRuleTraceDeterministic asserts the determinism guarantee the
// Optimize doc comment makes: the same input query yields the identical
// sequence of rule firings — same rules, same order, same subtree sizes —
// across fresh optimizer instances. Phases and rules live in slices and
// the traversal is first-match-wins bottom-up, so any divergence means
// iteration order leaked in (e.g. ranging over a map of rules).
func TestRuleTraceDeterministic(t *testing.T) {
	// A query that exercises all three phases: a subscripted tabulation
	// (beta^p), a dimension of a tabulation (delta^p), constraint folding,
	// and loop motion candidates.
	queries := []ast.Expr{
		sub(tab(arith(ast.OpMul, v("i"), v("i")), []string{"i"}, nat(10)), nat(4)),
		dim(1, tab(v("i"), []string{"i"}, nat(7))),
		tab(sub(tab(arith(ast.OpAdd, v("i"), nat(1)), []string{"i"}, nat(9)), v("j")),
			[]string{"j"}, nat(9)),
	}
	for qi, q := range queries {
		t.Run(fmt.Sprintf("query%d", qi), func(t *testing.T) {
			first := collectTrace(q)
			if len(first) == 0 {
				t.Fatalf("query %d fired no rules; pick a better specimen", qi)
			}
			for run := 1; run < 5; run++ {
				again := collectTrace(q)
				if len(again) != len(first) {
					t.Fatalf("run %d fired %d rules, first run fired %d", run, len(again), len(first))
				}
				for i := range first {
					if first[i] != again[i] {
						t.Fatalf("run %d firing %d = %+v, first run had %+v", run, i, again[i], first[i])
					}
				}
			}
		})
	}
}

// TestTraceHookReceivesSubtreeCounts checks the hook's node counts
// describe the rewritten subtree: before > 0, after > 0, and for beta^p on
// a closed tabulation the rewrite must not grow the fuel accounting
// (sanity on the numbers' plausibility, not exact sizes).
func TestTraceHookReceivesSubtreeCounts(t *testing.T) {
	q := sub(tab(arith(ast.OpMul, v("i"), v("i")), []string{"i"}, nat(10)), nat(4))
	for _, f := range collectTrace(q) {
		if f.nodesBefore <= 0 || f.nodesAfter <= 0 {
			t.Errorf("firing %+v has non-positive node counts", f)
		}
		if f.phase == "" || f.rule == "" {
			t.Errorf("firing %+v missing phase/rule name", f)
		}
	}
}

// TestStatsSnapshotIsACopy guards the StatsSnapshot contract: mutating the
// returned map must not corrupt the optimizer's live counters.
func TestStatsSnapshotIsACopy(t *testing.T) {
	o := New()
	o.Optimize(sub(tab(v("i"), []string{"i"}, nat(5)), nat(2)))
	snap := o.StatsSnapshot()
	if len(snap) == 0 {
		t.Fatal("no firings recorded")
	}
	for k := range snap {
		snap[k] = -999
	}
	snap["bogus"] = 1
	for k, n := range o.StatsSnapshot() {
		if n < 0 {
			t.Fatalf("mutating snapshot leaked into live stats: %s = %d", k, n)
		}
		if k == "bogus" {
			t.Fatal("snapshot key insertion leaked into live stats")
		}
	}
}
