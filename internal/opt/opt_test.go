package opt

import (
	"math/rand"
	"testing"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// Shorthand constructors.
func v(name string) ast.Expr                       { return &ast.Var{Name: name} }
func nat(n int64) ast.Expr                         { return &ast.NatLit{Val: n} }
func app(f, a ast.Expr) ast.Expr                   { return &ast.App{Fn: f, Arg: a} }
func lam(p string, b ast.Expr) ast.Expr            { return &ast.Lam{Param: p, Body: b} }
func sing(e ast.Expr) ast.Expr                     { return &ast.Singleton{Elem: e} }
func arith(op ast.ArithOp, l, r ast.Expr) ast.Expr { return &ast.Arith{Op: op, L: l, R: r} }
func cmp(op ast.CmpOp, l, r ast.Expr) ast.Expr     { return &ast.Cmp{Op: op, L: l, R: r} }
func proj(i, k int, e ast.Expr) ast.Expr           { return &ast.Proj{I: i, K: k, Tuple: e} }
func dim(k int, a ast.Expr) ast.Expr               { return &ast.Dim{K: k, Arr: a} }
func sub(a, i ast.Expr) ast.Expr                   { return &ast.Subscript{Arr: a, Index: i} }
func tup(es ...ast.Expr) ast.Expr                  { return &ast.Tuple{Elems: es} }
func tab(h ast.Expr, idx []string, bs ...ast.Expr) *ast.ArrayTab {
	return &ast.ArrayTab{Head: h, Idx: idx, Bounds: bs}
}

func optimize(e ast.Expr) ast.Expr { return New().Optimize(e) }

// --- The β^p, η^p, δ^p rules in isolation (E9's rewrites) --------------------

func TestBetaP(t *testing.T) {
	// [[ i*2 | i < n ]][k] ~> if k < n then k*2 else ⊥
	e := sub(tab(arith(ast.OpMul, v("i"), nat(2)), []string{"i"}, v("n")), v("k"))
	got := optimize(e)
	want := &ast.If{
		Cond: cmp(ast.OpLt, v("k"), v("n")),
		Then: arith(ast.OpMul, v("k"), nat(2)),
		Else: &ast.Bottom{},
	}
	if !ast.AlphaEqual(got, want) {
		t.Errorf("beta-p: got %s, want %s", got, want)
	}
}

func TestBetaPMultiDim(t *testing.T) {
	// [[ i+j | i < m, j < n ]][(a, b)] ~>
	//   if a < m then if b < n then a+b else ⊥ else ⊥
	e := sub(tab(arith(ast.OpAdd, v("i"), v("j")), []string{"i", "j"}, v("m"), v("n")),
		tup(v("a"), v("b")))
	got := optimize(e)
	want := &ast.If{
		Cond: cmp(ast.OpLt, v("a"), v("m")),
		Then: &ast.If{
			Cond: cmp(ast.OpLt, v("b"), v("n")),
			Then: arith(ast.OpAdd, v("a"), v("b")),
			Else: &ast.Bottom{},
		},
		Else: &ast.Bottom{},
	}
	if !ast.AlphaEqual(got, want) {
		t.Errorf("beta-p 2d: got %s, want %s", got, want)
	}
}

func TestEtaP(t *testing.T) {
	// [[ A[i] | i < len(A) ]] ~> A
	e := tab(sub(v("A"), v("i")), []string{"i"}, dim(1, v("A")))
	got := optimize(e)
	if !ast.AlphaEqual(got, v("A")) {
		t.Errorf("eta-p: got %s, want A", got)
	}
	// 2-dimensional variant.
	e2 := tab(sub(v("M"), tup(v("i"), v("j"))), []string{"i", "j"},
		proj(1, 2, dim(2, v("M"))), proj(2, 2, dim(2, v("M"))))
	if got := optimize(e2); !ast.AlphaEqual(got, v("M")) {
		t.Errorf("eta-p 2d: got %s, want M", got)
	}
	// Swapped indices must NOT reduce (that's a transpose, not identity).
	e3 := tab(sub(v("M"), tup(v("j"), v("i"))), []string{"i", "j"},
		proj(1, 2, dim(2, v("M"))), proj(2, 2, dim(2, v("M"))))
	if got := optimize(e3); ast.AlphaEqual(got, v("M")) {
		t.Error("eta-p must not fire on transposed subscripts")
	}
}

func TestDeltaP(t *testing.T) {
	// len([[ e | i < n ]]) ~> n
	e := dim(1, tab(arith(ast.OpMul, v("i"), v("i")), []string{"i"}, v("n")))
	if got := optimize(e); !ast.AlphaEqual(got, v("n")) {
		t.Errorf("delta-p: got %s, want n", got)
	}
	// dim_2([[ e | i < m, j < n ]]) ~> (m, n)
	e2 := dim(2, tab(v("i"), []string{"i", "j"}, v("m"), v("n")))
	if got := optimize(e2); !ast.AlphaEqual(got, tup(v("m"), v("n"))) {
		t.Errorf("delta-p 2d: got %s, want (m, n)", got)
	}
}

// --- E10: the transpose rule is derivable from the minimal rule set ------------

// transposeOf builds transpose(arg) with the section 2 definition:
// λA.[[ A[i,j] | j < dim_2,2(A), i < dim_1,2(A) ]].
func transposeOf(arg ast.Expr) ast.Expr {
	body := tab(
		sub(v("A"), tup(v("i"), v("j"))),
		[]string{"j", "i"},
		proj(2, 2, dim(2, v("A"))),
		proj(1, 2, dim(2, v("A"))),
	)
	return app(lam("A", body), arg)
}

func TestTransposeDerivation(t *testing.T) {
	// transpose([[ i*10+j | i < m, j < n ]]) must normalize to
	// [[ i*10+j | j < n, i < m ]] with all redundant checks eliminated —
	// the full derivation of section 5.
	inner := tab(arith(ast.OpAdd, arith(ast.OpMul, v("i"), nat(10)), v("j")),
		[]string{"i", "j"}, v("m"), v("n"))
	got := optimize(transposeOf(inner))
	want := tab(arith(ast.OpAdd, arith(ast.OpMul, v("i"), nat(10)), v("j")),
		[]string{"j", "i"}, v("n"), v("m"))
	if !ast.AlphaEqual(got, want) {
		t.Errorf("transpose derivation:\n got  %s\n want %s", got, want)
	}
}

func TestTransposeDerivationSemantics(t *testing.T) {
	// And the derived form computes the actual transpose.
	inner := tab(arith(ast.OpAdd, arith(ast.OpMul, v("i"), nat(10)), v("j")),
		[]string{"i", "j"}, nat(2), nat(3))
	opt := optimize(transposeOf(inner))
	ev := eval.New(nil)
	got, err := ev.Eval(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := object.MustArray([]int{3, 2}, []object.Value{
		object.Nat(0), object.Nat(10),
		object.Nat(1), object.Nat(11),
		object.Nat(2), object.Nat(12)})
	if !object.Equal(got, want) {
		t.Errorf("optimized transpose = %s, want %s", got, want)
	}
}

// --- E11: zip ∘ subseq and subseq ∘ zip normalize to the same query -------------

// subseqOf builds subseq(a, i, j) = [[ a[i+k] | k < (j+1)-i ]].
func subseqOf(a, i, j ast.Expr) ast.Expr {
	return tab(
		sub(a, arith(ast.OpAdd, i, v("k"))),
		[]string{"k"},
		arith(ast.OpSub, arith(ast.OpAdd, j, nat(1)), i),
	)
}

// zipOf builds zip(x, y) = [[ (x[m], y[m]) | m < min{len x, len y} ]].
func zipOf(x, y ast.Expr) ast.Expr {
	return tab(
		tup(sub(x, v("m")), sub(y, v("m"))),
		[]string{"m"},
		app(v("min"), &ast.Union{L: sing(dim(1, x)), R: sing(dim(1, y))}),
	)
}

// stripGuard removes one residual bound-check of the form
// `if c then e else ⊥`, returning e.
func stripGuard(e ast.Expr) ast.Expr {
	if n, ok := e.(*ast.If); ok {
		if _, isBot := n.Else.(*ast.Bottom); isBot {
			return n.Then
		}
	}
	return e
}

// unhoist β-reduces top-level (λz.e)(arg) bindings introduced by the code
// motion phase, for normal-form comparison only.
func unhoist(e ast.Expr) ast.Expr {
	for {
		a, ok := e.(*ast.App)
		if !ok {
			return e
		}
		l, ok := a.Fn.(*ast.Lam)
		if !ok {
			return e
		}
		e = ast.Subst(l.Body, l.Param, a.Arg)
	}
}

func TestZipSubseqNormalization(t *testing.T) {
	// Left: zip(subseq(A,i,j), subseq(B,i,j)). Right: subseq(zip(A,B), i, j).
	left := unhoist(optimize(zipOf(subseqOf(v("A"), v("i"), v("j")), subseqOf(v("B"), v("i"), v("j")))))
	right := unhoist(optimize(subseqOf(zipOf(v("A"), v("B")), v("i"), v("j"))))

	lt, ok := left.(*ast.ArrayTab)
	if !ok {
		t.Fatalf("left did not normalize to a tabulation: %s", left)
	}
	rt, ok := right.(*ast.ArrayTab)
	if !ok {
		t.Fatalf("right did not normalize to a tabulation: %s", right)
	}
	// Same bounds.
	if !ast.AlphaEqual(lt.Bounds[0], rt.Bounds[0]) {
		t.Errorf("bounds differ:\n left  %s\n right %s", lt.Bounds[0], rt.Bounds[0])
	}
	// Same body up to extra constant-time bound checks (the paper's exact
	// claim); strip at most one residual guard from each side.
	lh := stripGuard(ast.Subst(lt.Head, lt.Idx[0], v("%z")))
	rh := stripGuard(ast.Subst(rt.Head, rt.Idx[0], v("%z")))
	if !ast.AlphaEqual(lh, rh) {
		t.Errorf("bodies differ beyond a residual guard:\n left  %s\n right %s", lh, rh)
	}
}

func TestZipSubseqSemanticsAgree(t *testing.T) {
	// Both orders produce the same value, optimized or not.
	A := object.NatVector(10, 20, 30, 40, 50)
	B := object.NatVector(1, 2, 3, 4, 5)
	mk := func(e ast.Expr, optimized bool) object.Value {
		if optimized {
			e = optimize(e)
		}
		ev := eval.New(eval.Builtins())
		env := (*eval.Env)(nil).Bind("A", A).Bind("B", B)
		got, err := ev.Eval(e, env)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	lhs := zipOf(subseqOf(v("A"), nat(1), nat(3)), subseqOf(v("B"), nat(1), nat(3)))
	rhs := subseqOf(zipOf(v("A"), v("B")), nat(1), nat(3))
	want := object.Vector(
		object.Tuple(object.Nat(20), object.Nat(2)),
		object.Tuple(object.Nat(30), object.Nat(3)),
		object.Tuple(object.Nat(40), object.Nat(4)))
	for _, e := range []ast.Expr{lhs, rhs} {
		for _, o := range []bool{false, true} {
			if got := mk(e, o); !object.Equal(got, want) {
				t.Errorf("optimized=%v: got %s, want %s", o, got, want)
			}
		}
	}
}

// --- E12: constraint elimination -----------------------------------------------

func TestConstraintEliminationInTab(t *testing.T) {
	// [[ if i < n then e else ⊥ | i < n ]] ~> [[ e | i < n ]]
	e := tab(&ast.If{
		Cond: cmp(ast.OpLt, v("i"), v("n")),
		Then: arith(ast.OpMul, v("i"), nat(2)),
		Else: &ast.Bottom{},
	}, []string{"i"}, v("n"))
	got := optimize(e)
	want := tab(arith(ast.OpMul, v("i"), nat(2)), []string{"i"}, v("n"))
	if !ast.AlphaEqual(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestConstraintEliminationInGenLoop(t *testing.T) {
	// U{ if i < n then {i} else {} | i ∈ gen(n) } ~> U{ {i} | i ∈ gen(n) }
	e := &ast.BigUnion{
		Head: &ast.If{
			Cond: cmp(ast.OpLt, v("i"), v("n")),
			Then: sing(v("i")),
			Else: &ast.EmptySet{},
		},
		Var:  "i",
		Over: &ast.Gen{N: v("n")},
	}
	got := optimize(e)
	want := &ast.BigUnion{Head: sing(v("i")), Var: "i", Over: &ast.Gen{N: v("n")}}
	if !ast.AlphaEqual(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestConstraintEliminationInConditionals(t *testing.T) {
	// if c then (if c then a else b) else d ~> if c then a else d
	c := cmp(ast.OpLt, v("x"), v("y"))
	e := &ast.If{
		Cond: c,
		Then: &ast.If{Cond: cmp(ast.OpLt, v("x"), v("y")), Then: v("a"), Else: v("b")},
		Else: v("d"),
	}
	got := optimize(e)
	want := &ast.If{Cond: c, Then: v("a"), Else: v("d")}
	if !ast.AlphaEqual(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
	// In the else branch the condition is known false.
	e2 := &ast.If{
		Cond: c,
		Then: v("a"),
		Else: &ast.If{Cond: cmp(ast.OpLt, v("x"), v("y")), Then: v("b"), Else: v("d")},
	}
	got2 := optimize(e2)
	want2 := &ast.If{Cond: c, Then: v("a"), Else: v("d")}
	if !ast.AlphaEqual(got2, want2) {
		t.Errorf("got %s, want %s", got2, want2)
	}
}

func TestConstraintEliminationRespectsScope(t *testing.T) {
	// The i < n inside a *different* binder for i must not be replaced.
	inner := tab(&ast.If{Cond: cmp(ast.OpLt, v("i"), v("n")), Then: v("i"), Else: nat(0)},
		[]string{"i"}, v("q")) // inner i shadows outer i; bound q ≠ n
	e := tab(dim(1, inner), []string{"i"}, v("n"))
	got := optimize(e)
	// After delta-p the inner tabulation's length is q; the guard must
	// survive wherever the inner i-binder kept it. What must NOT happen is
	// the inner check being rewritten to true.
	if containsBoolLit(got, true) {
		t.Errorf("inner shadowed bound check was eliminated: %s", got)
	}
}

func containsBoolLit(e ast.Expr, val bool) bool {
	if b, ok := e.(*ast.BoolLit); ok && b.Val == val {
		return true
	}
	for _, k := range e.Children() {
		if containsBoolLit(k, val) {
			return true
		}
	}
	return false
}

// --- NRC rules --------------------------------------------------------------------

func TestBetaGuard(t *testing.T) {
	// (λh. [[ h[i] + len(h) | i < 10 ]])(EXPENSIVE) with EXPENSIVE a set
	// loop must NOT be inlined (h occurs inside the tabulation body).
	expensive := &ast.Index{K: 1, Set: &ast.BigUnion{
		Head: sing(tup(v("x"), v("x"))), Var: "x", Over: v("S")}}
	e := app(lam("h", tab(arith(ast.OpAdd, sub(v("h"), v("i")), dim(1, v("h"))),
		[]string{"i"}, nat(10))), expensive)
	got := optimize(e)
	if _, stillApp := got.(*ast.App); !stillApp {
		t.Errorf("expensive argument was inlined into a loop: %s", got)
	}
	// But cheap arguments are inlined.
	e2 := app(lam("x", arith(ast.OpAdd, v("x"), v("x"))), v("y"))
	if got := optimize(e2); !ast.AlphaEqual(got, arith(ast.OpAdd, v("y"), v("y"))) {
		t.Errorf("variable argument not inlined: %s", got)
	}
	// Single-use arguments are inlined regardless of cost.
	e3 := app(lam("x", sing(v("x"))), expensive)
	if got := optimize(e3); !ast.AlphaEqual(got, sing(expensive)) {
		t.Errorf("single-use argument not inlined: %s", got)
	}
}

func TestVerticalFusion(t *testing.T) {
	// U{ {x} | x ∈ U{ {y+1} | y ∈ S } } ~> U{ {y+1} | y ∈ S } (after
	// fusion and the singleton rule).
	e := &ast.BigUnion{
		Head: sing(v("x")),
		Var:  "x",
		Over: &ast.BigUnion{Head: sing(arith(ast.OpAdd, v("y"), nat(1))), Var: "y", Over: v("S")},
	}
	got := optimize(e)
	want := &ast.BigUnion{Head: sing(arith(ast.OpAdd, v("y"), nat(1))), Var: "y", Over: v("S")}
	if !ast.AlphaEqual(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestFilterPromotion(t *testing.T) {
	// U{ if c then {x} else {} | x ∈ S } with c independent of x
	// ~> if c then U{ {x} | x ∈ S } else {}.
	c := cmp(ast.OpLt, v("a"), v("b"))
	e := &ast.BigUnion{
		Head: &ast.If{Cond: c, Then: sing(v("x")), Else: &ast.EmptySet{}},
		Var:  "x",
		Over: v("S"),
	}
	got := optimize(e)
	wantThen := &ast.BigUnion{Head: sing(v("x")), Var: "x", Over: v("S")}
	want := &ast.If{Cond: c, Then: wantThen, Else: &ast.EmptySet{}}
	if !ast.AlphaEqual(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
	// Dependent filters stay inside.
	e2 := &ast.BigUnion{
		Head: &ast.If{Cond: cmp(ast.OpLt, v("x"), v("b")), Then: sing(v("x")), Else: &ast.EmptySet{}},
		Var:  "x",
		Over: v("S"),
	}
	if got := optimize(e2); !ast.AlphaEqual(got, e2) {
		t.Errorf("dependent filter moved: %s", got)
	}
}

func TestHorizontalFusion(t *testing.T) {
	e := &ast.Union{
		L: &ast.BigUnion{Head: sing(arith(ast.OpAdd, v("x"), nat(1))), Var: "x", Over: v("S")},
		R: &ast.BigUnion{Head: sing(arith(ast.OpMul, v("y"), nat(2))), Var: "y", Over: v("S")},
	}
	got := optimize(e)
	want := &ast.BigUnion{
		Head: &ast.Union{
			L: sing(arith(ast.OpAdd, v("x"), nat(1))),
			R: sing(arith(ast.OpMul, v("x"), nat(2))),
		},
		Var:  "x",
		Over: v("S"),
	}
	if !ast.AlphaEqual(got, want) {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestConstantFolding(t *testing.T) {
	if got := optimize(arith(ast.OpAdd, nat(2), nat(3))); !ast.AlphaEqual(got, nat(5)) {
		t.Errorf("2+3 = %s", got)
	}
	// Monus folds to 0.
	if got := optimize(arith(ast.OpSub, nat(2), nat(5))); !ast.AlphaEqual(got, nat(0)) {
		t.Errorf("2-5 = %s", got)
	}
	// Division by zero folds to ⊥.
	if got := optimize(arith(ast.OpDiv, nat(1), nat(0))); !ast.AlphaEqual(got, &ast.Bottom{}) {
		t.Errorf("1/0 = %s", got)
	}
	if got := optimize(cmp(ast.OpLt, nat(1), nat(2))); !ast.AlphaEqual(got, &ast.BoolLit{Val: true}) {
		t.Errorf("1<2 = %s", got)
	}
	// if with folded condition.
	e := &ast.If{Cond: cmp(ast.OpLt, nat(1), nat(2)), Then: v("a"), Else: v("b")}
	if got := optimize(e); !ast.AlphaEqual(got, v("a")) {
		t.Errorf("if-fold = %s", got)
	}
}

func TestGetSingleton(t *testing.T) {
	if got := optimize(&ast.Get{Set: sing(v("x"))}); !ast.AlphaEqual(got, v("x")) {
		t.Errorf("get({x}) = %s", got)
	}
}

// --- Code motion -------------------------------------------------------------------

func TestLoopInvariantHoisting(t *testing.T) {
	// [[ i + count(U{{x} | x ∈ S}) | i < n ]]: the big union is invariant
	// and must be hoisted out of the tabulation.
	invariant := app(v("count"), &ast.BigUnion{Head: sing(v("x")), Var: "x", Over: v("S")})
	e := tab(arith(ast.OpAdd, v("i"), invariant), []string{"i"}, v("n"))
	got := optimize(e)
	appNode, ok := got.(*ast.App)
	if !ok {
		t.Fatalf("no hoist: %s", got)
	}
	if !ast.AlphaEqual(appNode.Arg, invariant) {
		t.Errorf("hoisted %s, want %s", appNode.Arg, invariant)
	}
	lamNode := appNode.Fn.(*ast.Lam)
	tabNode, ok := lamNode.Body.(*ast.ArrayTab)
	if !ok {
		t.Fatalf("hoist shape: %s", got)
	}
	if ast.Size(tabNode.Head) > 5 {
		t.Errorf("loop body still contains the invariant: %s", tabNode.Head)
	}
}

func TestHoistingPreservesSemantics(t *testing.T) {
	invariant := app(v("count"), &ast.BigUnion{Head: sing(v("x")), Var: "x", Over: v("S")})
	e := tab(arith(ast.OpAdd, v("i"), invariant), []string{"i"}, nat(4))
	S := object.Set(object.Nat(7), object.Nat(8), object.Nat(9))
	run := func(x ast.Expr) object.Value {
		ev := eval.New(eval.Builtins())
		got, err := ev.Eval(x, (*eval.Env)(nil).Bind("S", S))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if a, b := run(e), run(optimize(e)); !object.Equal(a, b) {
		t.Errorf("hoisting changed semantics: %s vs %s", a, b)
	}
}

// --- E16: dynamic rule registration ------------------------------------------------

func TestDynamicRuleRegistration(t *testing.T) {
	// Register reverse(reverse(x)) ~> x as a user rule, as section 4.1's
	// open architecture allows.
	o := New()
	o.AddRule("normalize", Rule{
		Name: "reverse-reverse",
		Apply: func(e ast.Expr) (ast.Expr, bool) {
			outer, ok := e.(*ast.App)
			if !ok {
				return e, false
			}
			f1, ok := outer.Fn.(*ast.Var)
			if !ok || f1.Name != "reverse" {
				return e, false
			}
			inner, ok := outer.Arg.(*ast.App)
			if !ok {
				return e, false
			}
			f2, ok := inner.Fn.(*ast.Var)
			if !ok || f2.Name != "reverse" {
				return e, false
			}
			return inner.Arg, true
		},
	})
	e := app(v("reverse"), app(v("reverse"), v("A")))
	if got := o.Optimize(e); !ast.AlphaEqual(got, v("A")) {
		t.Errorf("user rule did not fire: %s", got)
	}
	if o.Stats["reverse-reverse"] != 1 {
		t.Errorf("stats = %v", o.Stats)
	}
	// A brand-new phase can be added too.
	o2 := New()
	o2.AddRule("post", Rule{Name: "noop", Apply: func(e ast.Expr) (ast.Expr, bool) { return e, false }})
	if len(o2.Phases) != 5 {
		t.Errorf("phases = %d, want 5", len(o2.Phases))
	}
}

// --- Property: optimization preserves semantics --------------------------------------

// randomExpr builds a random well-typed-enough expression over nat arrays
// and sets; evaluation may produce ⊥ but must not error.
func randomExpr(rng *rand.Rand, depth int, idxVars []string) ast.Expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return nat(int64(rng.Intn(5)))
		case 1:
			if len(idxVars) > 0 {
				return v(idxVars[rng.Intn(len(idxVars))])
			}
			return nat(int64(rng.Intn(5)))
		default:
			return nat(int64(rng.Intn(3) + 1))
		}
	}
	switch rng.Intn(8) {
	case 0:
		return arith([]ast.ArithOp{ast.OpAdd, ast.OpSub, ast.OpMul}[rng.Intn(3)],
			randomExpr(rng, depth-1, idxVars), randomExpr(rng, depth-1, idxVars))
	case 1:
		return &ast.If{
			Cond: cmp(ast.OpLt, randomExpr(rng, depth-1, idxVars), randomExpr(rng, depth-1, idxVars)),
			Then: randomExpr(rng, depth-1, idxVars),
			Else: randomExpr(rng, depth-1, idxVars),
		}
	case 2:
		iv := ast.Fresh("ri")
		return dim(1, tab(randomExpr(rng, depth-1, append(idxVars, iv)), []string{iv},
			randomExpr(rng, depth-1, idxVars)))
	case 3:
		iv := ast.Fresh("ri")
		return sub(
			tab(randomExpr(rng, depth-1, append(idxVars, iv)), []string{iv},
				randomExpr(rng, depth-1, idxVars)),
			randomExpr(rng, depth-1, idxVars))
	case 4:
		iv := ast.Fresh("rs")
		return &ast.Sum{
			Head: randomExpr(rng, depth-1, append(idxVars, iv)),
			Var:  iv,
			Over: &ast.Gen{N: randomExpr(rng, depth-1, idxVars)},
		}
	case 5:
		x := ast.Fresh("rx")
		return app(lam(x, arith(ast.OpAdd, v(x), randomExpr(rng, depth-1, idxVars))),
			randomExpr(rng, depth-1, idxVars))
	case 6:
		return &ast.Get{Set: sing(randomExpr(rng, depth-1, idxVars))}
	default:
		return proj(rng.Intn(2)+1, 2, tup(randomExpr(rng, depth-1, idxVars),
			randomExpr(rng, depth-1, idxVars)))
	}
}

func TestPropOptimizationPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	o := New()
	for n := 0; n < 400; n++ {
		e := randomExpr(rng, 4, nil)
		opt := o.Optimize(e)
		evA := eval.New(eval.Builtins())
		evB := eval.New(eval.Builtins())
		a, errA := evA.Eval(e, nil)
		b, errB := evB.Eval(opt, nil)
		if errA != nil || errB != nil {
			t.Fatalf("case %d: eval errors: %v / %v\n orig %s\n opt  %s", n, errA, errB, e, opt)
		}
		// δ^p may drop a ⊥ buried in a dead tabulation (the paper accepts
		// this); treat original-⊥ as compatible with any optimized result.
		if a.IsBottom() {
			continue
		}
		if !object.Equal(a, b) {
			t.Fatalf("case %d: semantics changed:\n orig %s = %s\n opt  %s = %s",
				n, e, a, opt, b)
		}
	}
}

func TestOptimizerTermination(t *testing.T) {
	// A pathological nest of redexes must terminate within the budget.
	e := ast.Expr(v("x"))
	for i := 0; i < 30; i++ {
		e = app(lam("x", arith(ast.OpAdd, v("x"), v("x"))), e)
	}
	o := New()
	o.MaxApplications = 2000
	_ = o.Optimize(e) // must return, not hang
}
