package opt

import (
	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/eval"
	"github.com/aqldb/aql/internal/object"
)

// NormalizeRules returns the normalization rule base: the equational theory
// of NRC ([7, 34]; the Kleisli rules of [5]) plus the array rules of
// section 5 (in rules_array.go) and arithmetic simplification from the
// extension of NRC with arithmetic [18].
func NormalizeRules() []Rule {
	rules := []Rule{
		{Name: "beta", Apply: betaRule},
		{Name: "pi", Apply: piRule},
		{Name: "if-fold", Apply: ifFoldRule},
		{Name: "union-empty", Apply: unionEmptyRule},
		{Name: "union-idempotent", Apply: unionIdempotentRule},
		{Name: "minmax-singleton", Apply: minMaxSingletonRule},
		{Name: "bigunion-empty", Apply: bigUnionEmptyRule},
		{Name: "bigunion-singleton", Apply: bigUnionSingletonRule},
		{Name: "bigunion-union", Apply: bigUnionUnionRule},
		{Name: "vertical-fusion", Apply: verticalFusionRule},
		{Name: "horizontal-fusion", Apply: horizontalFusionRule},
		{Name: "filter-promotion", Apply: filterPromotionRule},
		{Name: "if-source-hoist", Apply: ifSourceHoistRule},
		{Name: "get-singleton", Apply: getSingletonRule},
		{Name: "sum-empty", Apply: sumEmptyRule},
		{Name: "sum-singleton", Apply: sumSingletonRule},
		{Name: "const-fold-arith", Apply: constFoldArithRule},
		{Name: "const-fold-cmp", Apply: constFoldCmpRule},
	}
	return append(rules, ArrayRules()...)
}

// CleanupRules returns the conditional-folding subset, used by the
// constraint-elimination phase to consume introduced true/false constants.
func CleanupRules() []Rule {
	return []Rule{
		{Name: "if-fold", Apply: ifFoldRule},
		{Name: "const-fold-cmp", Apply: constFoldCmpRule},
	}
}

// --- β with a work-duplication guard ------------------------------------------

// betaRule implements (λx.e1)(e2) ~> e1{x := e2}, guarded so run-time work
// is never duplicated: fire if e2 is cheap to re-evaluate, if e2 is a
// tabulation or lambda (which further rules consume), or if x is used at
// most once outside loop bodies.
func betaRule(e ast.Expr) (ast.Expr, bool) {
	app, ok := e.(*ast.App)
	if !ok {
		return e, false
	}
	lam, ok := app.Fn.(*ast.Lam)
	if !ok {
		return e, false
	}
	if inlineOK(app.Arg) || occurrences(lam.Body, lam.Param, false) <= 1 {
		return ast.Subst(lam.Body, lam.Param, app.Arg), true
	}
	return e, false
}

// inlineOK reports whether an argument may be inlined into any number of
// occurrences: atoms cost nothing to re-evaluate; lambdas and tabulations
// are consumed by later rules (β/β^p/δ^p fusion); small scalar expressions
// (arithmetic, projections, subscripts) re-evaluate in constant time. The
// size cap on the scalar case keeps repeated inlining from compounding
// exponentially (e.g. chains of (λx.x+x) applications).
func inlineOK(e ast.Expr) bool {
	if atomicExpr(e) {
		return true
	}
	return cheapExpr(e) && ast.Size(e) <= 12
}

func atomicExpr(e ast.Expr) bool {
	switch n := e.(type) {
	case *ast.Var, *ast.Param, *ast.NatLit, *ast.RealLit, *ast.StringLit, *ast.BoolLit,
		*ast.Bottom, *ast.EmptySet, *ast.EmptyBag, *ast.Lam, *ast.ArrayTab:
		return true
	case *ast.Tuple:
		for _, x := range n.Elems {
			if !atomicExpr(x) && !cheapExpr(x) {
				return false
			}
		}
		return ast.Size(e) <= 16
	}
	return false
}

// cheapExpr covers constant-time scalar computations over atoms.
func cheapExpr(e ast.Expr) bool {
	switch n := e.(type) {
	case *ast.Proj:
		return atomicExpr(n.Tuple) || cheapExpr(n.Tuple)
	case *ast.Dim:
		return atomicExpr(n.Arr) || cheapExpr(n.Arr)
	case *ast.Arith:
		return (atomicExpr(n.L) || cheapExpr(n.L)) && (atomicExpr(n.R) || cheapExpr(n.R))
	case *ast.Cmp:
		return (atomicExpr(n.L) || cheapExpr(n.L)) && (atomicExpr(n.R) || cheapExpr(n.R))
	case *ast.Subscript:
		return (atomicExpr(n.Arr) || cheapExpr(n.Arr)) && (atomicExpr(n.Index) || cheapExpr(n.Index))
	}
	return false
}

// occurrences counts free occurrences of name in e; any occurrence inside a
// loop body (the head of a big union, sum, ranked union or tabulation)
// counts as 2, since inlining there multiplies evaluations.
func occurrences(e ast.Expr, name string, inLoop bool) int {
	if v, ok := e.(*ast.Var); ok {
		if v.Name != name {
			return 0
		}
		if inLoop {
			return 2
		}
		return 1
	}
	kids := e.Children()
	binders := e.Binders()
	loopHead := -1
	switch e.(type) {
	case *ast.BigUnion, *ast.Sum, *ast.BigBagUnion, *ast.RankUnion,
		*ast.RankBagUnion, *ast.ArrayTab:
		loopHead = 0 // child 0 is the body evaluated per element
	}
	total := 0
	for i, kid := range kids {
		shadowed := false
		for _, b := range binders[i] {
			if b == name {
				shadowed = true
				break
			}
		}
		if shadowed {
			continue
		}
		total += occurrences(kid, name, inLoop || i == loopHead)
	}
	return total
}

// --- products -----------------------------------------------------------------

// piRule implements π_{i,k}(e1, ..., ek) ~> ei.
func piRule(e ast.Expr) (ast.Expr, bool) {
	p, ok := e.(*ast.Proj)
	if !ok {
		return e, false
	}
	t, ok := p.Tuple.(*ast.Tuple)
	if !ok || len(t.Elems) != p.K {
		return e, false
	}
	return t.Elems[p.I-1], true
}

// --- conditionals --------------------------------------------------------------

// ifFoldRule folds conditionals with constant conditions and the
// if-c-then-true-else-false idiom.
func ifFoldRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.If)
	if !ok {
		return e, false
	}
	if b, ok := n.Cond.(*ast.BoolLit); ok {
		if b.Val {
			return n.Then, true
		}
		return n.Else, true
	}
	tb, okT := n.Then.(*ast.BoolLit)
	eb, okE := n.Else.(*ast.BoolLit)
	if okT && okE && tb.Val && !eb.Val {
		// if c then true else false ~> c
		return n.Cond, true
	}
	return e, false
}

// --- sets -----------------------------------------------------------------------

// unionEmptyRule: {} ∪ e ~> e and e ∪ {} ~> e (and the bag analogues).
func unionEmptyRule(e ast.Expr) (ast.Expr, bool) {
	switch n := e.(type) {
	case *ast.Union:
		if _, ok := n.L.(*ast.EmptySet); ok {
			return n.R, true
		}
		if _, ok := n.R.(*ast.EmptySet); ok {
			return n.L, true
		}
	case *ast.BagUnion:
		if _, ok := n.L.(*ast.EmptyBag); ok {
			return n.R, true
		}
		if _, ok := n.R.(*ast.EmptyBag); ok {
			return n.L, true
		}
	}
	return e, false
}

// unionIdempotentRule: e ∪ e ~> e (sets are idempotent; bags are not).
// Syntactic (alpha) equality only — the general problem is undecidable.
func unionIdempotentRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.Union)
	if !ok {
		return e, false
	}
	if ast.AlphaEqual(n.L, n.R) {
		return n.L, true
	}
	return e, false
}

// minMaxSingletonRule: min{e} ~> e and max{e} ~> e. min and max are known
// primitives, so rules specific to them may be applied (section 3's second
// reason for promoting derived operators to primitives).
func minMaxSingletonRule(e ast.Expr) (ast.Expr, bool) {
	app, ok := e.(*ast.App)
	if !ok {
		return e, false
	}
	v, ok := app.Fn.(*ast.Var)
	if !ok || (v.Name != "min" && v.Name != "max") {
		return e, false
	}
	s, ok := app.Arg.(*ast.Singleton)
	if !ok {
		return e, false
	}
	return s.Elem, true
}

// bigUnionEmptyRule: U{e | x ∈ {}} ~> {} and U{{} | x ∈ e} ~> {}.
func bigUnionEmptyRule(e ast.Expr) (ast.Expr, bool) {
	switch n := e.(type) {
	case *ast.BigUnion:
		if _, ok := n.Over.(*ast.EmptySet); ok {
			return &ast.EmptySet{}, true
		}
		if _, ok := n.Head.(*ast.EmptySet); ok {
			return &ast.EmptySet{}, true
		}
	case *ast.BigBagUnion:
		if _, ok := n.Over.(*ast.EmptyBag); ok {
			return &ast.EmptyBag{}, true
		}
		if _, ok := n.Head.(*ast.EmptyBag); ok {
			return &ast.EmptyBag{}, true
		}
	}
	return e, false
}

// bigUnionSingletonRule: U{e1 | x ∈ {e2}} ~> e1{x := e2}, with the same
// duplication guard as β.
func bigUnionSingletonRule(e ast.Expr) (ast.Expr, bool) {
	switch n := e.(type) {
	case *ast.BigUnion:
		if s, ok := n.Over.(*ast.Singleton); ok {
			if inlineOK(s.Elem) || occurrences(n.Head, n.Var, false) <= 1 {
				return ast.Subst(n.Head, n.Var, s.Elem), true
			}
		}
	case *ast.BigBagUnion:
		if s, ok := n.Over.(*ast.SingletonBag); ok {
			if inlineOK(s.Elem) || occurrences(n.Head, n.Var, false) <= 1 {
				return ast.Subst(n.Head, n.Var, s.Elem), true
			}
		}
	}
	return e, false
}

// bigUnionUnionRule: U{e1 | x ∈ e2 ∪ e3} ~> U{e1 | x ∈ e2} ∪ U{e1 | x ∈ e3}.
func bigUnionUnionRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.BigUnion)
	if !ok {
		return e, false
	}
	u, ok := n.Over.(*ast.Union)
	if !ok {
		return e, false
	}
	return &ast.Union{
		L: &ast.BigUnion{Head: n.Head, Var: n.Var, Over: u.L},
		R: &ast.BigUnion{Head: n.Head, Var: n.Var, Over: u.R},
	}, true
}

// verticalFusionRule: U{e1 | x ∈ U{e2 | y ∈ e3}} ~>
// U{U{e1 | x ∈ e2} | y ∈ e3} (y renamed if free in e1).
func verticalFusionRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.BigUnion)
	if !ok {
		return e, false
	}
	inner, ok := n.Over.(*ast.BigUnion)
	if !ok {
		return e, false
	}
	y, innerHead := inner.Var, inner.Head
	if ast.IsFree(y, n.Head) || y == n.Var {
		fresh := ast.Fresh(y)
		innerHead = ast.Subst(innerHead, y, &ast.Var{Name: fresh})
		y = fresh
	}
	return &ast.BigUnion{
		Head: &ast.BigUnion{Head: n.Head, Var: n.Var, Over: innerHead},
		Var:  y,
		Over: inner.Over,
	}, true
}

// horizontalFusionRule: U{e1 | x ∈ S} ∪ U{e2 | y ∈ S} ~>
// U{e1 ∪ e2{y := x} | x ∈ S} when both loops range over the syntactically
// same source ([5]'s horizontal fusion).
func horizontalFusionRule(e ast.Expr) (ast.Expr, bool) {
	u, ok := e.(*ast.Union)
	if !ok {
		return e, false
	}
	l, okL := u.L.(*ast.BigUnion)
	r, okR := u.R.(*ast.BigUnion)
	if !okL || !okR || !ast.AlphaEqual(l.Over, r.Over) {
		return e, false
	}
	rHead := r.Head
	if r.Var != l.Var {
		if ast.IsFree(l.Var, r.Head) {
			// Renaming r.Var to l.Var would capture this free occurrence.
			return e, false
		}
		rHead = ast.Subst(rHead, r.Var, &ast.Var{Name: l.Var})
	}
	return &ast.BigUnion{
		Head: &ast.Union{L: l.Head, R: rHead},
		Var:  l.Var,
		Over: l.Over,
	}, true
}

// filterPromotionRule: U{if c then e else {} | x ∈ S} with x not free in c
// ~> if c then U{e | x ∈ S} else {} — the classic filter promotion of [5].
func filterPromotionRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.BigUnion)
	if !ok {
		return e, false
	}
	cond, ok := n.Head.(*ast.If)
	if !ok {
		return e, false
	}
	if _, isEmpty := cond.Else.(*ast.EmptySet); !isEmpty {
		return e, false
	}
	if ast.IsFree(n.Var, cond.Cond) {
		return e, false
	}
	return &ast.If{
		Cond: cond.Cond,
		Then: &ast.BigUnion{Head: cond.Then, Var: n.Var, Over: n.Over},
		Else: &ast.EmptySet{},
	}, true
}

// ifSourceHoistRule: U{e | x ∈ if c then a else b} ~>
// if c then U{e | x ∈ a} else U{e | x ∈ b}.
func ifSourceHoistRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.BigUnion)
	if !ok {
		return e, false
	}
	cond, ok := n.Over.(*ast.If)
	if !ok {
		return e, false
	}
	return &ast.If{
		Cond: cond.Cond,
		Then: &ast.BigUnion{Head: n.Head, Var: n.Var, Over: cond.Then},
		Else: &ast.BigUnion{Head: n.Head, Var: n.Var, Over: cond.Else},
	}, true
}

// getSingletonRule: get({e}) ~> e.
func getSingletonRule(e ast.Expr) (ast.Expr, bool) {
	g, ok := e.(*ast.Get)
	if !ok {
		return e, false
	}
	s, ok := g.Set.(*ast.Singleton)
	if !ok {
		return e, false
	}
	return s.Elem, true
}

// sumEmptyRule: Σ{e | x ∈ {}} ~> 0.
func sumEmptyRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.Sum)
	if !ok {
		return e, false
	}
	if _, ok := n.Over.(*ast.EmptySet); ok {
		return &ast.NatLit{Val: 0}, true
	}
	return e, false
}

// sumSingletonRule: Σ{e1 | x ∈ {e2}} ~> e1{x := e2} (guarded as β).
func sumSingletonRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.Sum)
	if !ok {
		return e, false
	}
	s, ok := n.Over.(*ast.Singleton)
	if !ok {
		return e, false
	}
	if inlineOK(s.Elem) || occurrences(n.Head, n.Var, false) <= 1 {
		return ast.Subst(n.Head, n.Var, s.Elem), true
	}
	return e, false
}

// --- constant folding ------------------------------------------------------------

// constFoldArithRule folds arithmetic on numeric literals, using the
// evaluator's own Arith so monus and division-by-zero semantics agree.
func constFoldArithRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.Arith)
	if !ok {
		return e, false
	}
	l, okL := litValue(n.L)
	r, okR := litValue(n.R)
	if !okL || !okR {
		return e, false
	}
	v, err := eval.Arith(n.Op, l, r)
	if err != nil {
		return e, false
	}
	return litExpr(v)
}

// constFoldCmpRule folds comparisons on literals.
func constFoldCmpRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.Cmp)
	if !ok {
		return e, false
	}
	l, okL := litValue(n.L)
	r, okR := litValue(n.R)
	if !okL || !okR {
		return e, false
	}
	c := object.Compare(l, r)
	var b bool
	switch n.Op {
	case ast.OpEq:
		b = c == 0
	case ast.OpNe:
		b = c != 0
	case ast.OpLt:
		b = c < 0
	case ast.OpGt:
		b = c > 0
	case ast.OpLe:
		b = c <= 0
	case ast.OpGe:
		b = c >= 0
	default:
		return e, false
	}
	return &ast.BoolLit{Val: b}, true
}

// litValue extracts the object denoted by a scalar literal node.
func litValue(e ast.Expr) (object.Value, bool) {
	switch n := e.(type) {
	case *ast.NatLit:
		return object.Nat(n.Val), true
	case *ast.RealLit:
		return object.Real(n.Val), true
	case *ast.StringLit:
		return object.String_(n.Val), true
	case *ast.BoolLit:
		return object.Bool(n.Val), true
	}
	return object.Value{}, false
}

// litExpr converts a scalar object back into a literal node.
func litExpr(v object.Value) (ast.Expr, bool) {
	switch v.Kind {
	case object.KNat:
		return &ast.NatLit{Val: v.N}, true
	case object.KReal:
		return &ast.RealLit{Val: v.R}, true
	case object.KString:
		return &ast.StringLit{Val: v.S}, true
	case object.KBool:
		return &ast.BoolLit{Val: v.B}, true
	case object.KBottom:
		return &ast.Bottom{}, true
	}
	return nil, false
}
