package opt

import (
	"github.com/aqldb/aql/internal/ast"
)

// ArrayRules returns the three array rules of section 5 — β^p, η^p, δ^p —
// generalized to k dimensions, plus literal-array folding.
func ArrayRules() []Rule {
	return []Rule{
		{Name: "beta-p", Apply: betaPRule},
		{Name: "eta-p", Apply: etaPRule},
		{Name: "delta-p", Apply: deltaPRule},
		{Name: "mkarray-dim", Apply: mkArrayDimRule},
		{Name: "mkarray-sub", Apply: mkArraySubRule},
	}
}

// betaPRule is the partial β rule:
//
//	[[e1 | i < e2]][e3]  ~>  if e3 < e2 then e1{i := e3} else ⊥
//
// k-dimensionally, the index is a k-tuple and the guard is the conjunction
// of the per-dimension bound checks:
//
//	[[e | i1 < n1, ..., ik < nk]][(a1,...,ak)] ~>
//	   if a1 < n1 then (... if ak < nk then e{i := a} else ⊥ ...) else ⊥
//
// The rule saves time and space by avoiding materialization of the
// intermediary array (section 5).
func betaPRule(e ast.Expr) (ast.Expr, bool) {
	sub, ok := e.(*ast.Subscript)
	if !ok {
		return e, false
	}
	tab, ok := sub.Arr.(*ast.ArrayTab)
	if !ok {
		return e, false
	}
	k := len(tab.Idx)
	// Per-dimension index expressions.
	idxExprs := make([]ast.Expr, k)
	if k == 1 {
		idxExprs[0] = sub.Index
	} else if t, ok := sub.Index.(*ast.Tuple); ok && len(t.Elems) == k {
		copy(idxExprs, t.Elems)
	} else {
		// The index is a k-tuple-valued expression that is not a literal
		// tuple; project each component.
		for j := 0; j < k; j++ {
			idxExprs[j] = &ast.Proj{I: j + 1, K: k, Tuple: sub.Index}
		}
	}
	// The index expressions are substituted into the body and also appear
	// in the guards; only inline when that duplication is harmless.
	for _, ie := range idxExprs {
		if !inlineOK(ie) {
			return e, false
		}
	}
	// Substitute indices into the head. The substitution must be
	// simultaneous: the index expressions may mention variables named like
	// the tabulation's own binders (e.g. transpose composed with itself),
	// so rename the binders to fresh names first.
	body := tab.Head
	fresh := make([]string, k)
	for j, name := range tab.Idx {
		fresh[j] = ast.Fresh(name)
		body = ast.Subst(body, name, &ast.Var{Name: fresh[j]})
	}
	for j := range tab.Idx {
		body = ast.Subst(body, fresh[j], idxExprs[j])
	}
	// Wrap with bound checks, outermost dimension first.
	out := body
	for j := k - 1; j >= 0; j-- {
		out = &ast.If{
			Cond: &ast.Cmp{Op: ast.OpLt, L: idxExprs[j], R: tab.Bounds[j]},
			Then: out,
			Else: &ast.Bottom{},
		}
	}
	return out, true
}

// etaPRule is the partial η rule:
//
//	[[e[i] | i < len(e)]]  ~>  e
//
// k-dimensionally, the head must be e[(i1,...,ik)] and the j-th bound must
// be π_{j,k}(dim_k(e)), with the index variables not free in e. The rule
// avoids retabulating an existing array (section 5).
func etaPRule(e ast.Expr) (ast.Expr, bool) {
	tab, ok := e.(*ast.ArrayTab)
	if !ok {
		return e, false
	}
	k := len(tab.Idx)
	sub, ok := tab.Head.(*ast.Subscript)
	if !ok {
		return e, false
	}
	arr := sub.Arr
	// The index variables must not be free in the subject array.
	for _, iv := range tab.Idx {
		if ast.IsFree(iv, arr) {
			return e, false
		}
	}
	// The subscript must be exactly the index variables in order.
	if k == 1 {
		v, ok := sub.Index.(*ast.Var)
		if !ok || v.Name != tab.Idx[0] {
			return e, false
		}
		// The bound must be len(arr).
		d, ok := tab.Bounds[0].(*ast.Dim)
		if !ok || d.K != 1 || !ast.AlphaEqual(d.Arr, arr) {
			return e, false
		}
		return arr, true
	}
	t, ok := sub.Index.(*ast.Tuple)
	if !ok || len(t.Elems) != k {
		return e, false
	}
	for j, x := range t.Elems {
		v, ok := x.(*ast.Var)
		if !ok || v.Name != tab.Idx[j] {
			return e, false
		}
	}
	for j, b := range tab.Bounds {
		p, ok := b.(*ast.Proj)
		if !ok || p.I != j+1 || p.K != k {
			return e, false
		}
		d, ok := p.Tuple.(*ast.Dim)
		if !ok || d.K != k || !ast.AlphaEqual(d.Arr, arr) {
			return e, false
		}
	}
	return arr, true
}

// deltaPRule is the domain-extraction rule:
//
//	dim_k([[e | i1 < e1, ..., ik < ek]])  ~>  (e1, ..., ek)
//
// It avoids tabulating an array only to measure it. As the paper notes,
// the rule is sound only if the tabulation body is error-free; like the
// paper's optimizer, we apply it unconditionally and accept that a query
// whose sole effect was a ⊥ buried in a dead tabulation loses it.
func deltaPRule(e ast.Expr) (ast.Expr, bool) {
	d, ok := e.(*ast.Dim)
	if !ok {
		return e, false
	}
	tab, ok := d.Arr.(*ast.ArrayTab)
	if !ok || len(tab.Idx) != d.K {
		return e, false
	}
	if d.K == 1 {
		return tab.Bounds[0], true
	}
	elems := make([]ast.Expr, d.K)
	copy(elems, tab.Bounds)
	return &ast.Tuple{Elems: elems}, true
}

// mkArrayDimRule: dim_k([[n1,...,nk; ...]]) ~> (n1,...,nk) when the literal
// is well-formed (dimension expressions are literals whose product matches
// the element count).
func mkArrayDimRule(e ast.Expr) (ast.Expr, bool) {
	d, ok := e.(*ast.Dim)
	if !ok {
		return e, false
	}
	mk, ok := d.Arr.(*ast.MkArray)
	if !ok || len(mk.Dims) != d.K {
		return e, false
	}
	dims, ok := literalDims(mk)
	if !ok {
		return e, false
	}
	size := 1
	for _, n := range dims {
		size *= int(n)
	}
	if size != len(mk.Elems) {
		return e, false // the literal is ⊥; leave it to the evaluator
	}
	if d.K == 1 {
		return &ast.NatLit{Val: dims[0]}, true
	}
	elems := make([]ast.Expr, d.K)
	for j, n := range dims {
		elems[j] = &ast.NatLit{Val: n}
	}
	return &ast.Tuple{Elems: elems}, true
}

// mkArraySubRule: [[n1,...,nk; e0,...]][c] ~> e_offset for constant
// in-bounds subscripts of well-formed literals.
func mkArraySubRule(e ast.Expr) (ast.Expr, bool) {
	sub, ok := e.(*ast.Subscript)
	if !ok {
		return e, false
	}
	mk, ok := sub.Arr.(*ast.MkArray)
	if !ok {
		return e, false
	}
	dims, ok := literalDims(mk)
	if !ok {
		return e, false
	}
	size := 1
	for _, n := range dims {
		size *= int(n)
	}
	if size != len(mk.Elems) {
		return e, false
	}
	k := len(dims)
	var idx []int64
	if k == 1 {
		n, ok := sub.Index.(*ast.NatLit)
		if !ok {
			return e, false
		}
		idx = []int64{n.Val}
	} else {
		t, ok := sub.Index.(*ast.Tuple)
		if !ok || len(t.Elems) != k {
			return e, false
		}
		for _, x := range t.Elems {
			n, ok := x.(*ast.NatLit)
			if !ok {
				return e, false
			}
			idx = append(idx, n.Val)
		}
	}
	off := int64(0)
	for j, i := range idx {
		if i < 0 || i >= dims[j] {
			return &ast.Bottom{}, true // constant out-of-bounds subscript
		}
		off = off*dims[j] + i
	}
	return mk.Elems[off], true
}

func literalDims(mk *ast.MkArray) ([]int64, bool) {
	dims := make([]int64, len(mk.Dims))
	for j, d := range mk.Dims {
		n, ok := d.(*ast.NatLit)
		if !ok || n.Val < 0 {
			return nil, false
		}
		dims[j] = n.Val
	}
	return dims, true
}
