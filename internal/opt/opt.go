// Package opt implements the AQL optimizer (section 5 of the paper): a
// phased rewriting engine whose rule bases are extensible at runtime.
//
// The standard optimizer has three phases, mirroring the paper:
//
//  1. "normalize" — the equational theory of NRC (β for functions, π for
//     products, vertical and horizontal fusion of set loops, filter
//     promotion, conditional and arithmetic simplification) extended with
//     the three array rules of section 5:
//
//     (β^p)  [[e1 | i < e2]][e3]  ~>  if e3 < e2 then e1{i := e3} else ⊥
//     (η^p)  [[e[i] | i < len(e)]]  ~>  e
//     (δ^p)  len([[e1 | i < e2]])  ~>  e2
//
//  2. "constraints" — the redundant bound-check elimination rules of
//     section 5 (true/false propagation into tabulation bodies, gen loops
//     and conditional branches), plus the conditional folding needed to
//     consume the introduced constants.
//
//  3. "motion" — code motion: loop-invariant collection-valued expressions
//     are hoisted out of tabulation and set-loop bodies.
//
// β-reduction is guarded so normalization never duplicates run-time work:
// an argument is inlined only if it is cheap to re-evaluate, if it is a
// tabulation (which the array rules then fuse away), or if the variable is
// used at most once and not inside a loop body. Hoisted bindings therefore
// stay hoisted.
package opt

import (
	"fmt"
	"sync"

	"github.com/aqldb/aql/internal/ast"
)

// Rule is a single rewrite rule. Apply inspects the root of e and either
// returns the rewritten expression with fired = true, or e unchanged.
type Rule struct {
	Name  string
	Apply func(e ast.Expr) (out ast.Expr, fired bool)
}

// Phase is a named, ordered rule base applied to a fixpoint.
type Phase struct {
	Name  string
	Rules []Rule
}

// Optimizer is a sequence of phases. The zero value is an empty optimizer;
// New returns the paper's standard configuration.
type Optimizer struct {
	Phases []Phase
	// MaxApplications bounds the total number of rule firings per
	// Optimize call, guarding against non-terminating user rules.
	MaxApplications int
	// Stats counts rule firings by name, accumulated across Optimize
	// calls. Reset by ResetStats. Callers wanting a stable view should use
	// StatsSnapshot, which copies under the stats lock; concurrent
	// Optimize calls update the counters under the same lock, so parallel
	// sessions sharing an optimizer never corrupt the map.
	Stats map[string]int
	// Trace, when non-nil, observes every rule firing: the phase it fired
	// in, the rule name, and the node count of the rewritten subtree
	// before and after. Node counting only happens while Trace is
	// installed, so the hook costs nothing when unset. Unlike Stats, the
	// hook is a plain field: install it before sharing the optimizer
	// across goroutines, or pass a per-call hook to OptimizeTraced.
	Trace func(phase, rule string, nodesBefore, nodesAfter int)

	// statsMu guards Stats (concurrent Optimize calls fire rules in
	// parallel; the rewrite itself is purely functional over the AST).
	statsMu sync.Mutex
}

// New returns the standard three-phase optimizer.
func New() *Optimizer {
	return &Optimizer{
		Phases: []Phase{
			{Name: "normalize", Rules: NormalizeRules()},
			{Name: "constraints", Rules: append(ConstraintRules(), CleanupRules()...)},
			// Constraint elimination exposes new normal-form redexes (e.g.
			// η^p applies only once the β^p guards are gone), so normalize
			// once more before code motion.
			{Name: "renormalize", Rules: NormalizeRules()},
			{Name: "motion", Rules: MotionRules()},
		},
		MaxApplications: 100000,
		Stats:           map[string]int{},
	}
}

// NewNormalizeOnly returns an optimizer with just the normalization phase;
// used by the benchmarks to isolate phase effects.
func NewNormalizeOnly() *Optimizer {
	return &Optimizer{
		Phases:          []Phase{{Name: "normalize", Rules: NormalizeRules()}},
		MaxApplications: 100000,
		Stats:           map[string]int{},
	}
}

// AddRule appends a rule to the named phase, creating the phase if absent —
// the dynamic rule registration of section 4.1.
func (o *Optimizer) AddRule(phase string, r Rule) {
	for i := range o.Phases {
		if o.Phases[i].Name == phase {
			o.Phases[i].Rules = append(o.Phases[i].Rules, r)
			return
		}
	}
	o.Phases = append(o.Phases, Phase{Name: phase, Rules: []Rule{r}})
}

// ResetStats clears the firing counters.
func (o *Optimizer) ResetStats() {
	o.statsMu.Lock()
	o.Stats = map[string]int{}
	o.statsMu.Unlock()
}

// StatsSnapshot returns a copy of the cumulative firing counters, so
// callers can neither corrupt the live counts nor observe them mid-update.
func (o *Optimizer) StatsSnapshot() map[string]int {
	o.statsMu.Lock()
	defer o.statsMu.Unlock()
	out := make(map[string]int, len(o.Stats))
	for k, v := range o.Stats {
		out[k] = v
	}
	return out
}

// countFiring bumps a rule's firing counter under the stats lock.
func (o *Optimizer) countFiring(rule string) {
	o.statsMu.Lock()
	if o.Stats == nil {
		o.Stats = map[string]int{}
	}
	o.Stats[rule]++
	o.statsMu.Unlock()
}

// Optimize rewrites e through all phases. It never fails: if the
// application budget runs out the current state is returned.
//
// Rule application order is deterministic: phases run in slice order, each
// phase's rules are tried in slice order at every node of a bottom-up
// traversal, and the first matching rule wins. Two Optimize calls on equal
// inputs therefore produce identical rewrites AND identical Trace
// sequences — which is what makes EXPLAIN output stable and diffable.
func (o *Optimizer) Optimize(e ast.Expr) ast.Expr {
	return o.OptimizeTraced(e, o.Trace)
}

// OptimizeTraced is Optimize with a per-call firing hook, taking precedence
// over the shared Trace field (pass nil for no trace). Because the hook is
// an argument rather than shared state, concurrent OptimizeTraced calls on
// one optimizer are safe: the rewrite is purely functional over the AST and
// the firing counters are lock-protected. The query server uses this to
// record per-request rule traces without racing on the Trace field.
func (o *Optimizer) OptimizeTraced(e ast.Expr, hook func(phase, rule string, nodesBefore, nodesAfter int)) ast.Expr {
	fuel := o.MaxApplications
	if fuel <= 0 {
		fuel = 100000
	}
	for _, ph := range o.Phases {
		e = o.runPhase(e, ph, &fuel, hook)
	}
	return e
}

// runPhase applies the phase's rules bottom-up in repeated passes until a
// full pass fires nothing.
func (o *Optimizer) runPhase(e ast.Expr, ph Phase, fuel *int, hook func(string, string, int, int)) ast.Expr {
	for pass := 0; pass < 200; pass++ {
		out, fired := o.pass(e, ph, fuel, hook)
		e = out
		if !fired || *fuel <= 0 {
			return e
		}
	}
	return e
}

// pass transforms e bottom-up once, applying the first matching rule at
// each node repeatedly (bounded) before moving up.
func (o *Optimizer) pass(e ast.Expr, ph Phase, fuel *int, hook func(string, string, int, int)) (ast.Expr, bool) {
	anyFired := false
	kids := e.Children()
	if len(kids) > 0 {
		newKids := make([]ast.Expr, len(kids))
		changed := false
		for i, kid := range kids {
			nk, fired := o.pass(kid, ph, fuel, hook)
			newKids[i] = nk
			if fired {
				anyFired = true
			}
			if nk != kid {
				changed = true
			}
		}
		if changed {
			e = e.WithChildren(newKids)
		}
	}
	for local := 0; local < 20 && *fuel > 0; local++ {
		fired := false
		for _, r := range ph.Rules {
			out, ok := r.Apply(e)
			if !ok {
				continue
			}
			*fuel--
			o.countFiring(r.Name)
			if hook != nil {
				// Node counts are subtree-local: the firing rewrote e
				// into out, and counting those two subtrees is cheap
				// relative to the rewrite itself.
				hook(ph.Name, r.Name, ast.CountNodes(e), ast.CountNodes(out))
			}
			anyFired, fired = true, true
			// The rewrite may expose redexes below the new root; re-run
			// the bottom-up pass on it.
			out, _ = o.pass(out, ph, fuel, hook)
			e = out
			break
		}
		if !fired {
			break
		}
	}
	return e, anyFired
}

// String describes the optimizer's configuration.
func (o *Optimizer) String() string {
	s := "optimizer["
	for i, ph := range o.Phases {
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprintf("%s(%d rules)", ph.Name, len(ph.Rules))
	}
	return s + "]"
}
