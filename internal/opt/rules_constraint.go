package opt

import (
	"github.com/aqldb/aql/internal/ast"
)

// ConstraintRules returns the redundant-constraint-elimination rules of
// section 5:
//
//	[[ (...(i_j < e_j)...) | i1 < e1, ..., ik < ek ]] ~>
//	    [[ (...true...) | i1 < e1, ..., ik < ek ]]
//	U{ (...(i < e)...) | i ∈ gen(e) } ~> U{ (...true...) | i ∈ gen(e) }
//	if e then (...e...) else e'       ~> if e then (...true...) else e'
//	if e then e' else (...e...)       ~> if e then e' else (...false...)
//
// Bound checking in general is undecidable (Proposition 5.1); these rules
// remove the checks that the β^p rule itself introduces, which is what the
// transpose and zip/subseq derivations of section 5 require. Replacement
// respects scope: an occurrence under a binder that captures any free
// variable of the known-true condition is left alone.
func ConstraintRules() []Rule {
	return []Rule{
		{Name: "tab-bound-elim", Apply: tabBoundElimRule},
		{Name: "gen-bound-elim", Apply: genBoundElimRule},
		{Name: "if-cond-elim", Apply: ifCondElimRule},
	}
}

// tabBoundElimRule replaces i_j < e_j inside a tabulation head with true.
func tabBoundElimRule(e ast.Expr) (ast.Expr, bool) {
	tab, ok := e.(*ast.ArrayTab)
	if !ok {
		return e, false
	}
	head := tab.Head
	fired := false
	for j, iv := range tab.Idx {
		check := &ast.Cmp{Op: ast.OpLt, L: &ast.Var{Name: iv}, R: tab.Bounds[j]}
		if newHead, n := replaceBool(head, check, true); n > 0 {
			head, fired = newHead, true
		}
	}
	if !fired {
		return e, false
	}
	out := &ast.ArrayTab{Head: head, Idx: tab.Idx, Bounds: tab.Bounds}
	return out, true
}

// genBoundElimRule replaces i < e inside the body of a loop over gen(e)
// with true (set and bag unions and summation).
func genBoundElimRule(e ast.Expr) (ast.Expr, bool) {
	var head ast.Expr
	var varName string
	var over ast.Expr
	switch n := e.(type) {
	case *ast.BigUnion:
		head, varName, over = n.Head, n.Var, n.Over
	case *ast.BigBagUnion:
		head, varName, over = n.Head, n.Var, n.Over
	case *ast.Sum:
		head, varName, over = n.Head, n.Var, n.Over
	default:
		return e, false
	}
	g, ok := over.(*ast.Gen)
	if !ok {
		return e, false
	}
	check := &ast.Cmp{Op: ast.OpLt, L: &ast.Var{Name: varName}, R: g.N}
	newHead, count := replaceBool(head, check, true)
	if count == 0 {
		return e, false
	}
	kids := e.Children()
	newKids := make([]ast.Expr, len(kids))
	copy(newKids, kids)
	newKids[0] = newHead
	return e.WithChildren(newKids), true
}

// ifCondElimRule replaces occurrences of the condition inside the branches
// of a conditional with the known constant.
func ifCondElimRule(e ast.Expr) (ast.Expr, bool) {
	n, ok := e.(*ast.If)
	if !ok {
		return e, false
	}
	if _, isLit := n.Cond.(*ast.BoolLit); isLit {
		return e, false // nothing informative to propagate
	}
	thenB, c1 := replaceBool(n.Then, n.Cond, true)
	elseB, c2 := replaceBool(n.Else, n.Cond, false)
	if c1+c2 == 0 {
		return e, false
	}
	return &ast.If{Cond: n.Cond, Then: thenB, Else: elseB}, true
}

// replaceBool replaces every occurrence of target (up to alpha-equality)
// inside e with the boolean constant val, skipping occurrences under
// binders that capture a free variable of target. It returns the rewritten
// expression and the number of replacements.
func replaceBool(e ast.Expr, target ast.Expr, val bool) (ast.Expr, int) {
	targetFree := ast.FreeVars(target)
	return replaceBoolGo(e, target, targetFree, val)
}

func replaceBoolGo(e, target ast.Expr, targetFree map[string]bool, val bool) (ast.Expr, int) {
	if ast.AlphaEqual(e, target) {
		return &ast.BoolLit{Val: val}, 1
	}
	kids := e.Children()
	if len(kids) == 0 {
		return e, 0
	}
	binders := e.Binders()
	total := 0
	newKids := make([]ast.Expr, len(kids))
	changed := false
	for i, kid := range kids {
		captured := false
		for _, b := range binders[i] {
			if targetFree[b] {
				captured = true
				break
			}
		}
		if captured {
			newKids[i] = kid
			continue
		}
		nk, n := replaceBoolGo(kid, target, targetFree, val)
		newKids[i] = nk
		total += n
		if nk != kid {
			changed = true
		}
	}
	if !changed {
		return e, 0
	}
	return e.WithChildren(newKids), total
}
