// Package rank implements the expressiveness constructions of section 6 of
// the paper, which characterize what arrays add to a complex-object query
// language:
//
//   - Theorem 6.1: NRCA (the array calculus) has the same expressive power
//     as NRC^aggr(gen) — the nested relational calculus with arithmetic,
//     summation and the gen construct. The key ingredient is the object
//     translation (·)° that encodes a k-dimensional array as the set of its
//     (index, value) pairs (its graph).
//
//   - Theorem 6.2: NRC_r (NRC plus naturals, gen, and the ranked union
//     ⋃_r) and its bag analogue NBC_r also have the power of NRCA: adding
//     arrays amounts to adding ranking uniformly across collections.
//
// The package provides fragment checkers (which syntactically verify that a
// core expression stays inside NRC^aggr(gen), NRC_r or NBC_r), the object
// translation and its inverse, and the rank operator itself. The
// accompanying tests demonstrate the theorems empirically: array queries
// and their translated counterparts agree on random inputs.
package rank

import (
	"fmt"

	"github.com/aqldb/aql/internal/ast"
	"github.com/aqldb/aql/internal/object"
	"github.com/aqldb/aql/internal/types"
)

// Fragment names a sublanguage of the core calculus.
type Fragment int

// The fragments of section 6.
const (
	NRC        Fragment = iota // pure nested relational calculus (sets)
	NRCAggr                    // NRC + arithmetic + summation ("theoretical SQL")
	NRCAggrGen                 // NRC^aggr + gen — Theorem 6.1's equivalent of NRCA
	NRCr                       // NRC + naturals + gen + ⋃_r — Theorem 6.2
	NBCr                       // bag analogue of NRC_r
)

// String names the fragment.
func (f Fragment) String() string {
	switch f {
	case NRC:
		return "NRC"
	case NRCAggr:
		return "NRC^aggr"
	case NRCAggrGen:
		return "NRC^aggr(gen)"
	case NRCr:
		return "NRC_r"
	case NBCr:
		return "NBC_r"
	}
	return fmt.Sprintf("fragment(%d)", int(f))
}

// Check verifies that e lies inside the fragment, returning an error naming
// the first construct outside it. Arithmetic comparisons and the linear
// order are available in every fragment (they are NRC primitives over base
// types, lifted by [21]).
func Check(e ast.Expr, f Fragment) error {
	name := ast.NodeName(e)
	switch e.(type) {
	// Available everywhere: functions, products, booleans, comparisons.
	case *ast.Var, *ast.Lam, *ast.App, *ast.Tuple, *ast.Proj,
		*ast.BoolLit, *ast.If, *ast.Cmp, *ast.StringLit, *ast.RealLit,
		*ast.Get, *ast.Bottom:

	// Set constructs: in all set-based fragments.
	case *ast.EmptySet, *ast.Singleton, *ast.Union, *ast.BigUnion:
		if f == NBCr {
			return fmt.Errorf("rank: %s is a set construct, outside %s", name, f)
		}

	// Naturals and arithmetic.
	case *ast.NatLit, *ast.Arith:
		if f == NRC {
			return fmt.Errorf("rank: %s requires arithmetic, outside %s", name, f)
		}

	// Summation: NRC^aggr and above; definable in NRC_r/NBC_r, so allowed.
	case *ast.Sum:
		if f == NRC {
			return fmt.Errorf("rank: summation is outside %s", f)
		}

	// gen: NRC^aggr(gen), NRC_r, NBC_r.
	case *ast.Gen:
		if f == NRC || f == NRCAggr {
			return fmt.Errorf("rank: gen is outside %s", f)
		}

	// Ranked unions.
	case *ast.RankUnion:
		if f != NRCr {
			return fmt.Errorf("rank: ⋃_r is only in NRC_r, not %s", f)
		}
	case *ast.RankBagUnion:
		if f != NBCr {
			return fmt.Errorf("rank: ⊎_r is only in NBC_r, not %s", f)
		}

	// Bag constructs.
	case *ast.EmptyBag, *ast.SingletonBag, *ast.BagUnion, *ast.BigBagUnion:
		if f != NBCr {
			return fmt.Errorf("rank: %s is a bag construct, outside %s", name, f)
		}

	// Array constructs: never inside the array-free fragments.
	case *ast.ArrayTab, *ast.Subscript, *ast.Dim, *ast.Index, *ast.MkArray:
		return fmt.Errorf("rank: %s is an array construct, outside %s", name, f)

	default:
		return fmt.Errorf("rank: unhandled node %s", name)
	}
	for _, kid := range e.Children() {
		if err := Check(kid, f); err != nil {
			return err
		}
	}
	return nil
}

// --- The object translation (·)° of Theorem 6.1 -----------------------------

// TranslateValue implements the object translation of Theorem 6.1: every
// array in the object becomes the set of its (index, translated value)
// pairs — its graph. Non-array structure is preserved (the paper's
// error-flag component is unnecessary here because we translate proper
// values; ⊥ stays ⊥).
func TranslateValue(v object.Value) (object.Value, error) {
	switch v.Kind {
	case object.KBool, object.KNat, object.KReal, object.KString,
		object.KBase, object.KBottom:
		return v, nil
	case object.KTuple:
		elems := make([]object.Value, len(v.Elems))
		for i, e := range v.Elems {
			t, err := TranslateValue(e)
			if err != nil {
				return object.Value{}, err
			}
			elems[i] = t
		}
		return object.Tuple(elems...), nil
	case object.KSet, object.KBag:
		elems := make([]object.Value, len(v.Elems))
		for i, e := range v.Elems {
			t, err := TranslateValue(e)
			if err != nil {
				return object.Value{}, err
			}
			elems[i] = t
		}
		if v.Kind == object.KBag {
			return object.Bag(elems...), nil
		}
		return object.Set(elems...), nil
	case object.KArray:
		g, err := object.Graph(v)
		if err != nil {
			return object.Value{}, err
		}
		elems := make([]object.Value, len(g.Elems))
		for i, pair := range g.Elems {
			tv, err := TranslateValue(pair.Elems[1])
			if err != nil {
				return object.Value{}, err
			}
			elems[i] = object.Tuple(pair.Elems[0], tv)
		}
		return object.Set(elems...), nil
	}
	return object.Value{}, fmt.Errorf("rank: cannot translate %s value", v.Kind)
}

// UntranslateValue inverts TranslateValue at the given NRCA type: sets of
// (index, value) pairs at array positions are folded back into dense
// arrays. The type directs the inversion — exactly the "modulo some
// translation between the type systems" caveat of Theorem 6.1.
func UntranslateValue(v object.Value, typ *types.Type) (object.Value, error) {
	switch typ.Kind {
	case types.KindBool, types.KindNat, types.KindReal, types.KindString, types.KindBase:
		return v, nil
	case types.KindTuple:
		if v.Kind != object.KTuple || len(v.Elems) != len(typ.Elts) {
			return object.Value{}, fmt.Errorf("rank: %s value does not match %s", v.Kind, typ)
		}
		elems := make([]object.Value, len(v.Elems))
		for i, e := range v.Elems {
			u, err := UntranslateValue(e, typ.Elts[i])
			if err != nil {
				return object.Value{}, err
			}
			elems[i] = u
		}
		return object.Tuple(elems...), nil
	case types.KindSet, types.KindBag:
		if v.Kind != object.KSet && v.Kind != object.KBag {
			return object.Value{}, fmt.Errorf("rank: %s value at collection type %s", v.Kind, typ)
		}
		elems := make([]object.Value, len(v.Elems))
		for i, e := range v.Elems {
			u, err := UntranslateValue(e, typ.Elem())
			if err != nil {
				return object.Value{}, err
			}
			elems[i] = u
		}
		if typ.Kind == types.KindBag {
			return object.Bag(elems...), nil
		}
		return object.Set(elems...), nil
	case types.KindArray:
		if v.Kind != object.KSet {
			return object.Value{}, fmt.Errorf("rank: array encodings are sets, got %s", v.Kind)
		}
		k := typ.Dims
		// Determine the shape from the maximal index in each dimension.
		shape := make([]int, k)
		idxs := make([][]int, len(v.Elems))
		for n, pair := range v.Elems {
			if pair.Kind != object.KTuple || len(pair.Elems) != 2 {
				return object.Value{}, fmt.Errorf("rank: array encoding element is not a pair")
			}
			idx, err := object.IndexOf(pair.Elems[0], k)
			if err != nil {
				return object.Value{}, err
			}
			idxs[n] = idx
			for d, i := range idx {
				if i+1 > shape[d] {
					shape[d] = i + 1
				}
			}
		}
		size := 1
		for _, n := range shape {
			size *= n
		}
		if size != len(v.Elems) {
			return object.Value{}, fmt.Errorf("rank: encoding of %d pairs does not fill shape %v", len(v.Elems), shape)
		}
		data := make([]object.Value, size)
		for n, pair := range v.Elems {
			u, err := UntranslateValue(pair.Elems[1], typ.Elem())
			if err != nil {
				return object.Value{}, err
			}
			off := 0
			for d, i := range idxs[n] {
				off = off*shape[d] + i
			}
			data[off] = u
		}
		return object.Array(shape, data)
	}
	return object.Value{}, fmt.Errorf("rank: cannot untranslate at type %s", typ)
}

// --- Derived operators of section 6 ------------------------------------------

// RankExpr builds rank(X) = ⋃_r{ {(x, i)} | x_i ∈ X }: the set of (element,
// 1-based rank) pairs in the linear order of X.
func RankExpr(set ast.Expr) ast.Expr {
	return &ast.RankUnion{
		Head: &ast.Singleton{Elem: &ast.Tuple{Elems: []ast.Expr{
			&ast.Var{Name: "x"}, &ast.Var{Name: "i"}}}},
		Var:     "x",
		RankVar: "i",
		Over:    set,
	}
}

// BagRankExpr is the NBC_r analogue over bags; equal elements receive
// consecutive ranks.
func BagRankExpr(bag ast.Expr) ast.Expr {
	return &ast.RankBagUnion{
		Head: &ast.SingletonBag{Elem: &ast.Tuple{Elems: []ast.Expr{
			&ast.Var{Name: "x"}, &ast.Var{Name: "i"}}}},
		Var:     "x",
		RankVar: "i",
		Over:    bag,
	}
}
